// Property and metamorphic tests over the public API: facts that must
// hold across whole families of configurations — determinism whatever the
// worker count, hop-count behavior under field scaling, and the paper's
// headline dominance claim — rather than point values of single runs.
package roborepair_test

import (
	"encoding/json"
	"testing"

	"roborepair"
)

func propConfig(alg roborepair.Algorithm, robots int, seed int64) roborepair.Config {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = alg
	cfg.Robots = robots
	cfg.SimTime = 3000
	cfg.MeanLifetime = 1500 // enough failures inside the short horizon
	cfg.Seed = seed
	return cfg
}

// TestDeterminismSerialVsParallel: the same (config, seed) must produce
// byte-identical Results whether run one at a time or fanned out over a
// worker pool — the property every golden file, sweep CSV, and figure in
// this repo relies on.
func TestDeterminismSerialVsParallel(t *testing.T) {
	var cfgs []roborepair.Config
	for _, alg := range []roborepair.Algorithm{roborepair.Centralized, roborepair.Fixed, roborepair.Dynamic} {
		for seed := int64(1); seed <= 2; seed++ {
			cfg := propConfig(alg, 4, seed)
			cfg.Reliability.Enabled = true
			cfg.Invariants.Enabled = true
			cfgs = append(cfgs, cfg)
		}
	}
	parallel, err := roborepair.RunMany(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		serial, err := roborepair.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(parallel[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%v seed %d: serial and parallel runs diverged:\nserial:   %s\nparallel: %s",
				cfg.Algorithm, cfg.Seed, a, b)
		}
	}
}

// meanHops averages AvgReportHops for one algorithm/scale over seeds.
func meanHops(t *testing.T, alg roborepair.Algorithm, robots int, seeds int64) float64 {
	t.Helper()
	var cfgs []roborepair.Config
	for seed := int64(1); seed <= seeds; seed++ {
		cfgs = append(cfgs, propConfig(alg, robots, seed))
	}
	res, err := roborepair.RunMany(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res {
		sum += r.AvgReportHops
	}
	return sum / float64(len(res))
}

// TestScaleMetamorphicReportHops: quadrupling the field at constant
// sensor density (robots 4 → 16) must stretch the centralized
// algorithm's report paths — reports still cross the field to one
// manager — while the distributed algorithms' stay flat, because their
// cell size is scale-invariant. Consequently centralized reports the
// most hops at every scale (the paper's Figure 3 shape).
func TestScaleMetamorphicReportHops(t *testing.T) {
	const seeds = 3
	hops := map[roborepair.Algorithm][2]float64{}
	for _, alg := range []roborepair.Algorithm{roborepair.Centralized, roborepair.Fixed, roborepair.Dynamic} {
		hops[alg] = [2]float64{
			meanHops(t, alg, 4, seeds),
			meanHops(t, alg, 16, seeds),
		}
	}
	for scale, robots := range []int{4, 16} {
		c := hops[roborepair.Centralized][scale]
		for _, alg := range []roborepair.Algorithm{roborepair.Fixed, roborepair.Dynamic} {
			if d := hops[alg][scale]; d >= c {
				t.Errorf("%d robots: %v report hops %.3f not below centralized %.3f", robots, alg, d, c)
			}
		}
	}
	// Growth ratios: centralized must grow markedly; the distributed
	// algorithms must stay near flat. The 1.2 threshold sits between the
	// observed ~1.7 centralized growth and ~1.0 distributed growth.
	if g := hops[roborepair.Centralized][1] / hops[roborepair.Centralized][0]; g < 1.2 {
		t.Errorf("centralized report hops did not grow with the field: ratio %.3f", g)
	}
	for _, alg := range []roborepair.Algorithm{roborepair.Fixed, roborepair.Dynamic} {
		if g := hops[alg][1] / hops[alg][0]; g > 1.2 {
			t.Errorf("%v report hops grew with the field: ratio %.3f (cells should be scale-invariant)", alg, g)
		}
	}
}

// TestPaperDominanceTravel: the paper's headline motion-overhead claim —
// under sustained load the dynamic algorithm's seed-averaged travel per
// failure does not exceed the centralized algorithm's, because robots
// serve their own Voronoi cells instead of commuting from a shared
// queue. A long horizon (24000 s at 800 s mean lifetime) averages out
// the per-seed variance that dominates short runs.
func TestPaperDominanceTravel(t *testing.T) {
	const seeds = 6
	var cfgs []roborepair.Config
	for _, alg := range []roborepair.Algorithm{roborepair.Centralized, roborepair.Dynamic} {
		for seed := int64(1); seed <= seeds; seed++ {
			cfg := propConfig(alg, 4, seed)
			cfg.SimTime = 24000
			cfg.MeanLifetime = 800
			cfgs = append(cfgs, cfg)
		}
	}
	res, err := roborepair.RunMany(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cent, dyn float64
	for i, r := range res {
		if i < seeds {
			cent += r.AvgTravelPerFailure
		} else {
			dyn += r.AvgTravelPerFailure
		}
	}
	cent /= seeds
	dyn /= seeds
	if dyn > cent {
		t.Fatalf("dynamic travel %.1f m/failure exceeds centralized %.1f at high failure rate", dyn, cent)
	}
	t.Logf("travel per failure: centralized %.1f, dynamic %.1f (margin %.1f%%)", cent, dyn, 100*(cent-dyn)/cent)
}
