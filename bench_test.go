// Benchmark harness: one benchmark per evaluation artifact of the paper.
//
//   - BenchmarkFig2_*: Figure 2 — average robot traveling distance per
//     failure, reported as the custom metric "m/failure".
//   - BenchmarkFig3_*: Figure 3 — average message hops per failure,
//     reported as "report-hops" (and "request-hops" for centralized).
//   - BenchmarkFig4_*: Figure 4 — location-update transmissions per
//     failure, reported as "updtx/failure".
//   - BenchmarkAblation*: the §4.3.1 partition and §4.3.2 broadcast
//     ablations plus the queue-policy extension.
//
// Benchmarks use a 4000 s horizon (1/16 of the paper's) so `go test
// -bench=.` completes in minutes; the cmd/figures tool regenerates the
// figures at the full horizon. Absolute values are smaller at short
// horizons (fewer queued repairs), but the cross-algorithm ordering — the
// paper's claim — is preserved, and each bench prints it.
package roborepair_test

import (
	"testing"

	"roborepair"
	"roborepair/internal/relocation"
)

const benchSimTime = 4000

func benchConfig(alg roborepair.Algorithm, robots int, seed int64) roborepair.Config {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = alg
	cfg.Robots = robots
	cfg.SimTime = benchSimTime
	cfg.Seed = seed
	return cfg
}

// runCells runs one simulation per b.N iteration (varying the seed) and
// returns the averaged results.
func runCells(b *testing.B, mutate func(*roborepair.Config), alg roborepair.Algorithm, robots int) (travel, reportHops, requestHops, updateTx float64) {
	b.Helper()
	var n int
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(alg, robots, int64(i+1))
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := roborepair.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		travel += res.AvgTravelPerFailure
		reportHops += res.AvgReportHops
		requestHops += res.AvgRequestHops
		updateTx += res.LocUpdateTxPerFailure
		n++
	}
	f := float64(n)
	return travel / f, reportHops / f, requestHops / f, updateTx / f
}

// --- Figure 2: motion overhead ---------------------------------------

func benchFig2(b *testing.B, alg roborepair.Algorithm, robots int) {
	travel, _, _, _ := runCells(b, nil, alg, robots)
	b.ReportMetric(travel, "m/failure")
	b.ReportMetric(0, "ns/op") // the domain metric is the result, not latency
}

func BenchmarkFig2_Fixed_4(b *testing.B)        { benchFig2(b, roborepair.Fixed, 4) }
func BenchmarkFig2_Fixed_9(b *testing.B)        { benchFig2(b, roborepair.Fixed, 9) }
func BenchmarkFig2_Fixed_16(b *testing.B)       { benchFig2(b, roborepair.Fixed, 16) }
func BenchmarkFig2_Dynamic_4(b *testing.B)      { benchFig2(b, roborepair.Dynamic, 4) }
func BenchmarkFig2_Dynamic_9(b *testing.B)      { benchFig2(b, roborepair.Dynamic, 9) }
func BenchmarkFig2_Dynamic_16(b *testing.B)     { benchFig2(b, roborepair.Dynamic, 16) }
func BenchmarkFig2_Centralized_4(b *testing.B)  { benchFig2(b, roborepair.Centralized, 4) }
func BenchmarkFig2_Centralized_9(b *testing.B)  { benchFig2(b, roborepair.Centralized, 9) }
func BenchmarkFig2_Centralized_16(b *testing.B) { benchFig2(b, roborepair.Centralized, 16) }

// --- Figure 3: message hops per failure -------------------------------

func benchFig3(b *testing.B, alg roborepair.Algorithm, robots int) {
	_, reportHops, requestHops, _ := runCells(b, nil, alg, robots)
	b.ReportMetric(reportHops, "report-hops")
	if alg == roborepair.Centralized {
		b.ReportMetric(requestHops, "request-hops")
	}
	b.ReportMetric(0, "ns/op")
}

func BenchmarkFig3_Centralized_4(b *testing.B)  { benchFig3(b, roborepair.Centralized, 4) }
func BenchmarkFig3_Centralized_9(b *testing.B)  { benchFig3(b, roborepair.Centralized, 9) }
func BenchmarkFig3_Centralized_16(b *testing.B) { benchFig3(b, roborepair.Centralized, 16) }
func BenchmarkFig3_Dynamic_4(b *testing.B)      { benchFig3(b, roborepair.Dynamic, 4) }
func BenchmarkFig3_Dynamic_9(b *testing.B)      { benchFig3(b, roborepair.Dynamic, 9) }
func BenchmarkFig3_Dynamic_16(b *testing.B)     { benchFig3(b, roborepair.Dynamic, 16) }
func BenchmarkFig3_Fixed_4(b *testing.B)        { benchFig3(b, roborepair.Fixed, 4) }
func BenchmarkFig3_Fixed_9(b *testing.B)        { benchFig3(b, roborepair.Fixed, 9) }
func BenchmarkFig3_Fixed_16(b *testing.B)       { benchFig3(b, roborepair.Fixed, 16) }

// --- Figure 4: location-update transmissions per failure --------------

func benchFig4(b *testing.B, alg roborepair.Algorithm, robots int) {
	_, _, _, updateTx := runCells(b, nil, alg, robots)
	b.ReportMetric(updateTx, "updtx/failure")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkFig4_Dynamic_4(b *testing.B)      { benchFig4(b, roborepair.Dynamic, 4) }
func BenchmarkFig4_Dynamic_9(b *testing.B)      { benchFig4(b, roborepair.Dynamic, 9) }
func BenchmarkFig4_Dynamic_16(b *testing.B)     { benchFig4(b, roborepair.Dynamic, 16) }
func BenchmarkFig4_Fixed_4(b *testing.B)        { benchFig4(b, roborepair.Fixed, 4) }
func BenchmarkFig4_Fixed_9(b *testing.B)        { benchFig4(b, roborepair.Fixed, 9) }
func BenchmarkFig4_Fixed_16(b *testing.B)       { benchFig4(b, roborepair.Fixed, 16) }
func BenchmarkFig4_Centralized_4(b *testing.B)  { benchFig4(b, roborepair.Centralized, 4) }
func BenchmarkFig4_Centralized_9(b *testing.B)  { benchFig4(b, roborepair.Centralized, 9) }
func BenchmarkFig4_Centralized_16(b *testing.B) { benchFig4(b, roborepair.Centralized, 16) }

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationHexPartition reproduces the §4.3.1 claim that hexagonal
// partitioning changes the fixed algorithm's overheads negligibly.
func BenchmarkAblationHexPartition(b *testing.B) {
	travel, _, _, updateTx := runCells(b, func(c *roborepair.Config) {
		c.Partition = roborepair.PartitionHex
	}, roborepair.Fixed, 9)
	b.ReportMetric(travel, "m/failure")
	b.ReportMetric(updateTx, "updtx/failure")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkAblationSquarePartition is the square baseline for the hex
// ablation at the same scale.
func BenchmarkAblationSquarePartition(b *testing.B) {
	travel, _, _, updateTx := runCells(b, nil, roborepair.Fixed, 9)
	b.ReportMetric(travel, "m/failure")
	b.ReportMetric(updateTx, "updtx/failure")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkAblationEfficientBroadcast measures the §4.3.2 relay-set
// optimization on the dynamic algorithm's flooding bill.
func BenchmarkAblationEfficientBroadcast(b *testing.B) {
	_, _, _, updateTx := runCells(b, func(c *roborepair.Config) {
		c.EfficientBroadcast = true
	}, roborepair.Dynamic, 9)
	b.ReportMetric(updateTx, "updtx/failure")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkAblationBlindBroadcast is the blind-flooding baseline.
func BenchmarkAblationBlindBroadcast(b *testing.B) {
	_, _, _, updateTx := runCells(b, nil, roborepair.Dynamic, 9)
	b.ReportMetric(updateTx, "updtx/failure")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkAblationNearestFirstQueue swaps the paper's FCFS robot queue
// for nearest-task-first scheduling.
func BenchmarkAblationNearestFirstQueue(b *testing.B) {
	travel, _, _, _ := runCells(b, func(c *roborepair.Config) {
		c.NearestFirstQueue = true
	}, roborepair.Dynamic, 9)
	b.ReportMetric(travel, "m/failure")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkAblationUpdateThreshold40 doubles the 20 m location-update
// threshold (§4.2 trade-off).
func BenchmarkAblationUpdateThreshold40(b *testing.B) {
	_, _, _, updateTx := runCells(b, func(c *roborepair.Config) {
		c.UpdateThreshold = 40
	}, roborepair.Dynamic, 9)
	b.ReportMetric(updateTx, "updtx/failure")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkBaselineRelocation measures the Wang et al. [13] sensor
// self-relocation baseline (related-work comparison): cascaded movement
// per failure on the paper's 4-robot field.
func BenchmarkBaselineRelocation(b *testing.B) {
	var total, maxHop float64
	var n int
	for i := 0; i < b.N; i++ {
		cfg := relocation.DefaultConfig()
		cfg.Seed = int64(i + 1)
		st, err := relocation.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += st.CascadeTotalPerFailure
		maxHop += st.CascadeMaxHopPerFailure
		n++
	}
	b.ReportMetric(total/float64(n), "m/failure")
	b.ReportMetric(maxHop/float64(n), "maxhop-m")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// seconds per wall-clock second on the paper's largest configuration.
// allocs/op is the tracked number — the event pool, the medium's scratch
// buffer, and interned counters all exist to keep it flat as the
// simulated horizon grows.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const simTime = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(roborepair.Dynamic, 16, int64(i+1))
		cfg.SimTime = simTime
		if _, err := roborepair.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(simTime*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
}

// BenchmarkSimulatorThroughputTelemetry is the same workload with the full
// telemetry layer on (histograms, five gauges at the default cadence).
// Compare against BenchmarkSimulatorThroughput to measure the enabled
// overhead; the target is <10% on both ns/op and sim-s/s.
func BenchmarkSimulatorThroughputTelemetry(b *testing.B) {
	const simTime = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(roborepair.Dynamic, 16, int64(i+1))
		cfg.SimTime = simTime
		cfg.Telemetry.Enabled = true
		if _, err := roborepair.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(simTime*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
}

// BenchmarkSimulatorThroughputFTDC is the same workload with the flight
// recorder armed — the always-on capture path. Compare against
// BenchmarkSimulatorThroughput: the target is ≤2% wall clock and
// setup-only allocations (the recorder preallocates its column buffers
// and appends allocation-free; only chunk flushes add a handful).
func BenchmarkSimulatorThroughputFTDC(b *testing.B) {
	const simTime = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(roborepair.Dynamic, 16, int64(i+1))
		cfg.SimTime = simTime
		cfg.Recorder.Enabled = true
		if _, err := roborepair.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(simTime*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
}

// BenchmarkSimulatorThroughputInvariants is the same workload with the
// conservation-law checker on (kernel audit, radio auditor, kinematics,
// per-site lifecycle tracking). Compare against
// BenchmarkSimulatorThroughput to measure the enabled overhead; with the
// checker disabled the throughput benchmark itself must stay within 2%
// of pre-checker builds — the hooks compile to nil checks.
func BenchmarkSimulatorThroughputInvariants(b *testing.B) {
	const simTime = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(roborepair.Dynamic, 16, int64(i+1))
		cfg.SimTime = simTime
		cfg.Invariants.Enabled = true
		if _, err := roborepair.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(simTime*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
}
