// Command invck sweeps the conservation-law checker across the full
// algorithm × fault-plan × seed grid and reports every violation, for CI
// and pre-release smoke runs: all three coordination algorithms, each
// under no chaos, a loss burst, a regional blackout, a manager crash, and
// frame corruption at three rates, over several seeds.
//
// Usage:
//
//	invck                        # default grid: every algorithm × 7 plans × 5 seeds
//	invck -seeds 3 -simtime 4000 # smaller smoke grid
//	invck -battery 60000         # energy layer live; adds drain plans to the grid
//	invck -csv grid.csv          # also dump one CSV row per run
//
// Any violation prints a diagnostic and exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"roborepair"
	"roborepair/internal/analysis"
	"roborepair/internal/chaos"
	"roborepair/internal/checkpoint"
	"roborepair/internal/ftdc"
	"roborepair/internal/invariant"
	"roborepair/internal/runner"
	"roborepair/internal/scenario"
	"roborepair/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "invck:", err)
		os.Exit(1)
	}
}

// plans builds the chaos schedule for one horizon: windows are fractions
// of the simulated time and the blackout sits mid-field, so the grid
// scales with -simtime instead of silently missing short runs.
func plans(simtime, side float64) map[string]*chaos.FaultPlan {
	burst := fmt.Sprintf("burst@%g-%g=0.3", simtime/4, simtime/2)
	blackout := fmt.Sprintf("blackout@%g-%g=%g,%g,%g", simtime/4, simtime/2, side/2, side/2, side/4)
	mgr := fmt.Sprintf("mgr@%g", simtime/4)
	out := map[string]*chaos.FaultPlan{"none": nil}
	specs := map[string]string{"burst": burst, "blackout": blackout, "mgr-crash": mgr}
	// Frame-corruption plans use the default mix mode so every mutation
	// (bit flips, truncation, garbage, duplication, replay) hits each cell.
	for name, rate := range map[string]float64{"corrupt-1": 0.01, "corrupt-5": 0.05, "corrupt-20": 0.20} {
		specs[name] = fmt.Sprintf("corrupt@%g-%g=%g", simtime/4, simtime/2, rate)
	}
	for name, spec := range specs {
		p, err := chaos.Parse(spec)
		if err != nil {
			panic(fmt.Sprintf("invck: bad built-in plan %q: %v", spec, err))
		}
		out[name] = p
	}
	return out
}

// tag identifies one grid cell for reporting.
type tag struct {
	plan string
}

func run(args []string) error {
	fs := flag.NewFlagSet("invck", flag.ContinueOnError)
	seeds := fs.Int("seeds", 5, "seeds per cell")
	simtime := fs.Float64("simtime", 8000, "simulated seconds per run")
	robots := fs.Int("robots", 4, "robots per run")
	procs := fs.Int("procs", 0, "parallel workers (0 = GOMAXPROCS)")
	battery := fs.Float64("battery", 0, "per-robot battery capacity in joules (0 = energy layer off); adds drain plans to the grid")
	recharge := fs.Float64("recharge", 250, "depot recharge watts when -battery is set (0 = starvation mode)")
	csvPath := fs.String("csv", "", "also write one CSV row per run to this file")
	progress := fs.Bool("progress", false, "print live grid progress to stderr")
	snapshotDir := fs.String("snapshot-dir", "", "on violation, bank the snapshot nearest the first breach here and replay it with a tail trace")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := roborepair.DefaultConfig()
	base.SimTime = *simtime
	base.Robots = *robots
	base.MeanLifetime = *simtime / 2 // enough failures inside the horizon
	base.Reliability.Enabled = true
	base.Invariants.Enabled = true

	algs := roborepair.Algorithms() // every registered algorithm, including extensions
	planNames := []string{"none", "burst", "blackout", "mgr-crash", "corrupt-1", "corrupt-5", "corrupt-20"}
	grid := plans(*simtime, base.FieldSide())
	if *battery > 0 {
		base.Battery = &roborepair.BatteryConfig{CapacityJ: *battery, RechargeW: *recharge}
		// With the energy layer live, adversarial drain windows join the
		// grid: a fleet-wide slow drain and a single-robot hard drain.
		for name, spec := range map[string]string{
			"drain-fleet": fmt.Sprintf("drain@%g-%g=0.5", *simtime/4, *simtime/2),
			"drain-one":   fmt.Sprintf("drain@%g-%g=2,0", *simtime/4, *simtime/2),
		} {
			p, err := chaos.Parse(spec)
			if err != nil {
				panic(fmt.Sprintf("invck: bad built-in plan %q: %v", spec, err))
			}
			grid[name] = p
		}
		planNames = append(planNames, "drain-fleet", "drain-one")
	}

	var jobs []runner.Job
	for _, alg := range algs {
		for _, pn := range planNames {
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				cfg := base
				cfg.Algorithm = alg
				cfg.Seed = seed
				cfg.Faults = grid[pn]
				jobs = append(jobs, runner.Job{Config: cfg, Tag: tag{plan: pn}})
			}
		}
	}

	ropts := runner.Options{Procs: *procs}
	if *progress {
		ropts.Progress = runner.ProgressWriter(os.Stderr)
		ropts.ProgressEvery = 250 * time.Millisecond
	}
	results, stats, err := runner.Run(jobs, ropts)
	if err != nil {
		return err
	}

	violations := 0
	for _, r := range results {
		for _, v := range r.Res.Violations {
			violations++
			fmt.Fprintf(os.Stderr, "invck: %s/%s/seed=%d: %s\n",
				r.Job.Config.Algorithm, r.Job.Tag.(tag).plan, r.Job.Config.Seed, v)
		}
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, results); err != nil {
			return err
		}
	}
	fmt.Printf("invck: %d runs (%d algorithms × %d plans × %d seeds) in %.1fs: %d violations\n",
		stats.Runs, len(algs), len(planNames), *seeds, stats.Wall.Seconds(), violations)
	if violations > 0 {
		if *snapshotDir != "" {
			if err := replayFirstViolation(results, *snapshotDir, *simtime); err != nil {
				fmt.Fprintln(os.Stderr, "invck: replay:", err)
			}
		}
		return fmt.Errorf("%d invariant violations", violations)
	}
	return nil
}

// replayFirstViolation takes the first violated run, deterministically
// re-derives the snapshot nearest (strictly before) its earliest breach,
// banks it in dir for offline debugging, then restores it with a tail
// trace and replays past the violation so the events leading up to the
// breach print without re-tracing the whole run.
func replayFirstViolation(results []runner.Result, dir string, simtime float64) error {
	for _, r := range results {
		v, ok := invariant.First(r.Res.Violations)
		if !ok {
			continue
		}
		every := sim.Duration(simtime / 16)
		snap, err := scenario.NearestSnapshot(r.Job.Config, v.At, every)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("violation-%s-%s-seed%d.ckpt",
			r.Job.Config.Algorithm, r.Job.Tag.(tag).plan, r.Job.Config.Seed))
		if err := checkpoint.WriteFile(path, snap); err != nil {
			return err
		}
		w, err := scenario.RestoreOpts(snap, scenario.RestoreOptions{TailTraceCapacity: 4096})
		if err != nil {
			return err
		}
		w.Sched.Run(v.At.Add(1))
		fmt.Fprintf(os.Stderr,
			"invck: first violation at %v (%s); snapshot at t=%.0f banked in %s; replayed tail:\n",
			v.At, v.Law, snap.T, path)
		fmt.Fprint(os.Stderr, w.Trace.Render(40))
		// Bank the flight recording leading into the breach alongside the
		// snapshot: re-run the same deterministic configuration with the
		// recorder armed, stopping just past the violation.
		rcfg := r.Job.Config
		rcfg.Recorder = ftdc.Config{Enabled: true}
		rw, err := scenario.New(rcfg)
		if err != nil {
			return err
		}
		rw.Sched.Run(v.At.Add(1))
		fpath := strings.TrimSuffix(path, ".ckpt") + ".ftdc"
		if err := rw.Recorder.WriteFile(fpath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "invck: flight recording through the breach banked in %s (decode with ftdcdump)\n", fpath)
		return nil
	}
	return nil
}

// writeCSV dumps one row per run and re-validates the file through the
// shared artifact checker, so the tool cannot emit a CSV it would itself
// reject.
func writeCSV(path string, results []runner.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "algorithm,plan,seed,failures,repairs,violations,corrupted,malformed,replay_rejected")
	for _, r := range results {
		fmt.Fprintf(f, "%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
			r.Job.Config.Algorithm, r.Job.Tag.(tag).plan, r.Job.Config.Seed,
			r.Res.FailuresInjected, r.Res.Repairs, len(r.Res.Violations),
			r.Res.CorruptedFrames, r.Res.DroppedMalformed, r.Res.ReplayRejected)
	}
	if err := f.Close(); err != nil {
		return err
	}
	check, err := os.Open(path)
	if err != nil {
		return err
	}
	defer check.Close()
	if err := analysis.CheckCSV(check, "violations", "corrupted", "malformed", "replay_rejected"); err != nil {
		return fmt.Errorf("%s: emitted CSV failed validation: %w", path, err)
	}
	return nil
}
