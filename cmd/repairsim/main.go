// Command repairsim runs one sensor-replacement simulation and prints its
// results.
//
// Usage:
//
//	repairsim -alg dynamic -robots 9 -simtime 64000 -seed 1 [-v]
//
// Robustness runs inject a fault plan and enable the reliability protocol:
//
//	repairsim -alg dynamic -reliable -fault 'robot@4000=0;burst@4000-8000=0.05'
//
// Energy-constrained runs give each robot a finite battery: dispatches are
// admission-checked against the remaining charge, robots detour to the
// depot charger when low (or die in place without one), and drain windows
// become live chaos:
//
//	repairsim -alg dynamic -battery 30000 -recharge 250 -fault 'drain@4000-8000=0.5'
//
// Checkpoint/restore: periodically snapshot the full simulator state, then
// resume a killed run — or replay its tail with a fresh trace for
// debugging — from the latest snapshot:
//
//	repairsim -alg dynamic -checkpoint run.ckpt -checkpoint-every 8000
//	repairsim -restore run.ckpt
//	repairsim -restore run.ckpt -tail-trace 200   # print the continuation's events
//
// Flight recording: -ftdc arms the always-on black box and writes the
// whole run's compact binary time series, decodable with ftdcdump:
//
//	repairsim -alg dynamic -ftdc run.ftdc && ftdcdump run.ftdc
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"strings"

	"roborepair"
	"roborepair/internal/chaos"
	"roborepair/internal/checkpoint"
	"roborepair/internal/scenario"
	"roborepair/internal/sim"
	"roborepair/internal/telemetry"
)

// algNames renders the registered algorithm names for flag help.
func algNames() string {
	names := make([]string, 0, 8)
	for _, a := range roborepair.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, "|")
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repairsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repairsim", flag.ContinueOnError)
	cfg := roborepair.DefaultConfig()

	algName := fs.String("alg", cfg.Algorithm.String(), "algorithm: "+algNames())
	fs.IntVar(&cfg.Robots, "robots", cfg.Robots, "number of maintenance robots")
	fs.Float64Var(&cfg.SimTime, "simtime", cfg.SimTime, "simulated seconds")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	fs.Float64Var(&cfg.MeanLifetime, "lifetime", cfg.MeanLifetime, "mean sensor lifetime (s)")
	fs.Float64Var(&cfg.UpdateThreshold, "threshold", cfg.UpdateThreshold, "robot location-update threshold (m)")
	fs.Float64Var(&cfg.LossP, "loss", 0, "per-reception loss probability")
	fs.IntVar(&cfg.SensorsPerRobot, "density", cfg.SensorsPerRobot, "sensors per robot's worth of area")
	hex := fs.Bool("hex", false, "use hexagonal partition (fixed algorithm)")
	efficient := fs.Bool("efficient-broadcast", false, "enable the §4.3.2 relay-set optimization")
	fs.Float64Var(&cfg.SensingRange, "sensing", 0, "sensing radius (m); >0 tracks coverage")
	fs.IntVar(&cfg.CargoCapacity, "cargo", 0, "robot cargo capacity; 0 = unlimited")
	fault := fs.String("fault", "", "fault plan, e.g. 'robot@4000=0;burst@4000-8000=0.05;blackout@2000-3000=100,100,80;mgr@9000;corrupt@4000-8000=0.05,mix;drain@4000-8000=0.5,2'")
	fs.BoolVar(&cfg.Reliability.Enabled, "reliable", false, "enable the repair-reliability protocol (retransmission, heartbeats, failover)")
	battery := fs.Float64("battery", 0, "per-robot battery capacity in joules (0 = energy layer off)")
	recharge := fs.Float64("recharge", 250, "depot recharge watts when -battery is set (0 = starvation mode)")
	fs.BoolVar(&cfg.Invariants.Enabled, "invariants", false, "run the conservation-law checker; violations print and exit nonzero")
	telemetryOn := fs.Bool("telemetry", false, "enable telemetry and print its summary")
	prom := fs.String("prom", "", "write metrics in Prometheus text format to this file (implies -telemetry)")
	timeseries := fs.String("timeseries", "", "write the gauge time series to this CSV file (implies -telemetry)")
	chromeTrace := fs.String("chrome-trace", "", "write a Chrome trace_event JSON to this file, for chrome://tracing or ui.perfetto.dev (implies -telemetry)")
	ftdcPath := fs.String("ftdc", "", "write the run's flight-recorder capture (compact binary time series) to this file; decode with ftdcdump")
	verbose := fs.Bool("v", false, "dump the full metrics registry")
	asJSON := fs.Bool("json", false, "emit results as JSON")
	ckptPath := fs.String("checkpoint", "", "snapshot the full simulator state to this file periodically (atomic replace; the file holds the latest snapshot)")
	ckptEvery := fs.Float64("checkpoint-every", 0, "snapshot period in simulated seconds (0 = simtime/8)")
	restorePath := fs.String("restore", "", "resume from a snapshot file instead of starting fresh; the configuration comes from the snapshot and config flags are ignored")
	tailTrace := fs.Int("tail-trace", 0, "with -restore: record the continuation in a trace ring of this capacity and print it (replay-from-snapshot debugging)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *prom != "" || *timeseries != "" || *chromeTrace != "" {
		*telemetryOn = true
	}
	cfg.Telemetry.Enabled = *telemetryOn
	cfg.Recorder.Enabled = *ftdcPath != ""
	if *chromeTrace != "" && cfg.TraceCapacity == 0 {
		cfg.TraceCapacity = -1 // the exporter needs the full causal log
	}
	if *fault != "" {
		plan, err := chaos.Parse(*fault)
		if err != nil {
			return err
		}
		cfg.Faults = plan
	}

	alg, err := roborepair.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	cfg.Algorithm = alg
	if *hex {
		cfg.Partition = roborepair.PartitionHex
	}
	cfg.EfficientBroadcast = *efficient
	if *battery > 0 {
		cfg.Battery = &roborepair.BatteryConfig{CapacityJ: *battery, RechargeW: *recharge}
	}

	var w *roborepair.World
	var res roborepair.Results
	switch {
	case *restorePath != "":
		snap, err := checkpoint.ReadFile(*restorePath)
		if err != nil {
			return err
		}
		w, err = scenario.RestoreOpts(snap, scenario.RestoreOptions{TailTraceCapacity: *tailTrace})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "repairsim: restored %s at t=%.0f s, running to %.0f s\n",
			*restorePath, snap.T, w.Cfg.SimTime)
		res = w.Run()
	case *ckptPath != "":
		w, err = roborepair.NewWorld(cfg)
		if err != nil {
			return err
		}
		every := *ckptEvery
		if every <= 0 {
			every = cfg.SimTime / 8
		}
		res, err = w.RunCheckpointed(scenario.CheckpointOptions{
			Every: sim.Duration(every),
			OnSnapshot: func(s *checkpoint.Snapshot) error {
				return checkpoint.WriteFile(*ckptPath, s)
			},
		})
		if err != nil {
			return err
		}
	default:
		w, err = roborepair.NewWorld(cfg)
		if err != nil {
			return err
		}
		res = w.Run()
	}
	if *restorePath != "" && *tailTrace != 0 {
		fmt.Print(w.Trace.Render(*tailTrace))
	}
	if err := export(w, res, *prom, *timeseries, *chromeTrace); err != nil {
		return err
	}
	if *ftdcPath != "" {
		if res.Recording == nil {
			// Reachable only via -restore from a snapshot taken without the
			// recorder armed: the configuration comes from the snapshot.
			return fmt.Errorf("-ftdc: the restored run was not recording")
		}
		if err := res.Recording.WriteFile(*ftdcPath); err != nil {
			return err
		}
	}
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "violation:", v)
		}
		return fmt.Errorf("%d invariant violations", len(res.Violations))
	}
	if *asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Println(res.Summary())
	fmt.Printf("total travel: %.1f m   report delivery: %.3f   repair ratio: %.3f   avg repair delay: %.1f s\n",
		res.TotalTravel, res.ReportDeliveryRatio(), res.RepairRatio(), res.AvgRepairDelay)
	if cfg.SensingRange > 0 {
		fmt.Printf("coverage: mean %.3f   min %.3f (sensing radius %.0f m)\n",
			res.MeanCoverage, res.MinCoverage, cfg.SensingRange)
	}
	if cfg.Faults != nil || cfg.Reliability.Enabled {
		fmt.Printf("degradation: unrepaired %d   dup repairs %d   stranded %d (requeued %d)   "+
			"retx %d (abandoned %d)   redispatches %d   takeovers %d   mean recovery %.1f s\n",
			res.UnrepairedFailures, res.DuplicateRepairs, res.StrandedTasks, res.RequeuedTasks,
			res.ReportRetx, res.ReportsAbandoned, res.Redispatches, res.ManagerTakeovers,
			res.MeanFaultRecovery)
		if res.CorruptedFrames > 0 {
			fmt.Printf("hostile channel: corrupted %d   dropped malformed %d   replay-rejected %d\n",
				res.CorruptedFrames, res.DroppedMalformed, res.ReplayRejected)
		}
	}
	if w.Cfg.Battery != nil {
		fmt.Printf("energy: spent %.0f J   deaths %d   recharges %d   handoffs %d\n",
			res.EnergySpentJ, res.RobotDeaths, res.Recharges, res.TaskHandoffs)
	}
	if *telemetryOn {
		fmt.Print(res.Telemetry.Summary())
	}
	if *verbose {
		fmt.Print(res.Registry.Dump())
	}
	if cfg.Invariants.Enabled {
		fmt.Println("invariants: ok")
	}
	return nil
}

// export writes the requested telemetry artifacts.
func export(w *roborepair.World, res roborepair.Results, prom, timeseries, chromeTrace string) error {
	writeFile := func(path string, render func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if prom != "" {
		err := writeFile(prom, func(f *os.File) error {
			return telemetry.WritePrometheus(f, res.Registry, res.Telemetry)
		})
		if err != nil {
			return err
		}
	}
	if timeseries != "" {
		err := writeFile(timeseries, func(f *os.File) error {
			return res.Telemetry.WriteCSV(f)
		})
		if err != nil {
			return err
		}
	}
	if chromeTrace != "" {
		opt := telemetry.ChromeOptions{Collector: res.Telemetry}
		if w.Manager != nil {
			opt.ManagerID = w.Manager.ID()
		}
		err := writeFile(chromeTrace, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, w.Trace, opt)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
