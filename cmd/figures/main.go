// Command figures regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	figures -fig all              # Figures 2, 3, 4 + run summary
//	figures -fig 2                # one figure
//	figures -fig hex              # §4.3.1 partition ablation
//	figures -fig bcast            # §4.3.2 efficient-broadcast ablation
//	figures -fig threshold        # location-update threshold sweep
//	figures -simtime 16000 -seeds 2   # faster, noisier
//	figures -csv                  # CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"roborepair"
	"roborepair/internal/core"
	"roborepair/internal/figures"
	"roborepair/internal/report"
	"roborepair/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fig := fs.String("fig", "all", "2|3|4|all|hex|bcast|threshold|coverage")
	simtime := fs.Float64("simtime", 64000, "simulated seconds per run")
	seeds := fs.Int("seeds", 1, "number of seeds averaged per cell")
	robotsFlag := fs.String("robots", "4,9,16", "comma-separated robot counts")
	procs := fs.Int("procs", 0, "parallel workers (0 = GOMAXPROCS)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	quiet := fs.Bool("q", false, "suppress per-run progress lines")
	cpuprofile := fs.String("cpuprofile", "", "write CPU profile to file")
	memprofile := fs.String("memprofile", "", "write heap profile to file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	prof, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		}
	}()

	base := roborepair.DefaultConfig()
	base.SimTime = *simtime

	robots, err := parseInts(*robotsFlag)
	if err != nil {
		return err
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	opts := figures.RunOptions{
		Procs:    *procs,
		Progress: func(line string) { fmt.Fprintln(os.Stderr, "  "+line) },
		OnStats:  func(s runner.Stats) { fmt.Fprintln(os.Stderr, "  "+s.String()) },
	}
	if *quiet {
		opts.Progress = nil
	}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			return
		}
		fmt.Println(t.String())
	}

	switch *fig {
	case "2", "3", "4", "all":
		grid, err := figures.RunGrid(base, figures.AllAlgorithms, robots, seedList, opts)
		if err != nil {
			return err
		}
		switch *fig {
		case "2":
			emit(grid.Fig2Table())
		case "3":
			emit(grid.Fig3Table())
		case "4":
			emit(grid.Fig4Table())
		default:
			emit(grid.Fig2Table())
			emit(grid.Fig3Table())
			emit(grid.Fig4Table())
			emit(grid.SummaryTable())
		}
	case "hex":
		t, err := figures.AblationHex(base, robots, seedList, opts)
		if err != nil {
			return err
		}
		emit(t)
	case "bcast":
		t, err := figures.AblationBroadcast(base, robots, seedList, opts)
		if err != nil {
			return err
		}
		emit(t)
	case "threshold":
		t, err := figures.ThresholdSweep(base, core.Dynamic, robots[0],
			[]float64{5, 10, 20, 40, 60}, seedList, opts)
		if err != nil {
			return err
		}
		emit(t)
	case "coverage":
		t, err := figures.CoverageComparison(base, robots[0], seedList, opts)
		if err != nil {
			return err
		}
		emit(t)
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("robot count %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
