package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The e2e test re-execs this test binary as the sweep CLI: TestMain
// diverts to run() when the child-mode env var is set, so a real process
// can be SIGKILLed mid-grid without shelling out to `go build`.
const childEnv = "SWEEP_E2E_ARGS"

func TestMain(m *testing.M) {
	if args := os.Getenv(childEnv); args != "" {
		if err := run(strings.Split(args, "\n")); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// sweepChild launches this binary in child mode with the given CLI args,
// stdout captured to outPath.
func sweepChild(t *testing.T, outPath string, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { out.Close() })
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), childEnv+"="+strings.Join(args, "\n"))
	cmd.Stdout = out
	cmd.Stderr = os.Stderr
	return cmd
}

// TestSweepKillMinusNineResume is the crash-safety acceptance test: a grid
// killed with SIGKILL mid-flight, re-invoked with -resume, completes with
// a final CSV byte-identical to an uninterrupted run's.
func TestSweepKillMinusNineResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real processes")
	}
	dir := t.TempDir()
	journal := filepath.Join(dir, "grid.journal")
	grid := []string{
		"-param", "robots", "-values", "4", "-algs", "dynamic,fixed",
		"-seeds", "3", "-simtime", "3000", "-procs", "1", "-reliable",
	}

	// Uninterrupted reference.
	refCSV := filepath.Join(dir, "ref.csv")
	if err := sweepChild(t, refCSV, grid...).Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Journaled run, SIGKILLed once at least one job has landed durably.
	victimCSV := filepath.Join(dir, "victim.csv")
	victim := sweepChild(t, victimCSV, append(grid, "-journal", journal)...)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if raw, err := os.ReadFile(journal); err == nil && bytes.Count(raw, []byte{'\n'}) >= 2 {
			break // header + ≥1 entry fsynced
		}
		if time.Now().After(deadline) {
			victim.Process.Kill()
			victim.Wait()
			t.Fatal("journal never accumulated an entry")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err := victim.Wait()
	if err == nil {
		t.Log("victim finished before the kill landed; resume still must be byte-identical")
	}

	// Resume and compare byte for byte.
	resumedCSV := filepath.Join(dir, "resumed.csv")
	if err := sweepChild(t, resumedCSV, append(grid, "-journal", journal, "-resume")...).Run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	ref, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resumedCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, resumed) {
		t.Errorf("resumed CSV differs from uninterrupted CSV:\n--- uninterrupted\n%s\n--- resumed\n%s", ref, resumed)
	}
}

// TestSweepJournalMismatchFailsWithNote: resuming against a journal from a
// different grid must not silently mix results — the run exits nonzero and
// the output stream carries an explicit note instead of rows.
func TestSweepJournalMismatchFailsWithNote(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	journal := filepath.Join(dir, "grid.journal")
	gridA := []string{"-param", "robots", "-values", "4", "-algs", "dynamic",
		"-seeds", "1", "-simtime", "1000", "-journal", journal}
	if err := sweepChild(t, filepath.Join(dir, "a.csv"), gridA...).Run(); err != nil {
		t.Fatalf("first grid: %v", err)
	}
	// Same journal, different grid (seed count changed).
	gridB := []string{"-param", "robots", "-values", "4", "-algs", "dynamic",
		"-seeds", "2", "-simtime", "1000", "-journal", journal, "-resume"}
	bCSV := filepath.Join(dir, "b.csv")
	err := sweepChild(t, bCSV, gridB...).Run()
	if err == nil {
		t.Fatal("mismatched journal accepted (exit 0)")
	}
	out, rerr := os.ReadFile(bCSV)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Contains(out, []byte("# resume aborted")) {
		t.Errorf("output lacks the partial-results note:\n%s", out)
	}
	if bytes.Contains(out, []byte("dynamic,robots")) {
		t.Errorf("mismatched resume still emitted data rows:\n%s", out)
	}
}
