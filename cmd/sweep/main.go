// Command sweep runs parameter sweeps over the simulator and emits one
// CSV row per run, suitable for plotting.
//
// Usage:
//
//	sweep -param robots -values 1,2,4,9,16 -algs dynamic,fixed
//	sweep -param lifetime -values 4000,8000,16000,32000
//	sweep -param threshold -values 5,10,20,40
//	sweep -param loss -values 0,0.05,0.1,0.2
//	sweep -param density -values 25,50,100
//	sweep -seeds 8 -procs 4       # parallel grid, identical CSV to -procs 1
//
// Robustness experiments inject a fault plan and enable the reliability
// protocol; the CSV gains the degradation columns (unrepaired, stranded,
// retransmissions, takeovers, ...):
//
//	sweep -param loss -values 0,0.1 -reliable \
//	      -fault 'robot@4000=0;burst@4000-8000=0.05;mgr@9000'
//
// Long grids survive being killed: -journal records every completed run
// durably, and a second invocation with the same flags resumes mid-flight,
// re-running only unfinished jobs while the final CSV stays byte-identical
// to an uninterrupted run. -checkpoint-dir additionally snapshots each
// running job so even partial runs resume from their last snapshot:
//
//	sweep -seeds 32 -journal grid.journal -checkpoint-dir ckpt -checkpoint-every 4000
//	# ... killed ...
//	sweep -seeds 32 -journal grid.journal -checkpoint-dir ckpt -checkpoint-every 4000 -resume
//
// Anomaly triage: -ftdc arms a bounded black-box flight recorder on every
// run; any run that panics or violates invariants leaves a compact .ftdc
// dump of its last samples, decodable offline with ftdcdump:
//
//	sweep -seeds 8 -invariants -ftdc dumps/
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"roborepair"
	"roborepair/internal/chaos"
	"roborepair/internal/runner"
	"roborepair/internal/telemetry"
)

// algNames renders the registered algorithm names for flag help.
func algNames() string {
	names := make([]string, 0, 8)
	for _, a := range roborepair.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, "|")
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// cell tags a job with the swept parameter value; algorithm and seed are
// already part of the job's config.
type cell struct {
	value float64
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	param := fs.String("param", "robots", "robots|cargo|sensing|lifetime|threshold|loss|density")
	values := fs.String("values", "4,9,16", "comma-separated values of the swept parameter")
	algsFlag := fs.String("algs", "centralized,fixed,dynamic",
		"algorithms to sweep: comma-separated registered names, or 'all' ("+algNames()+")")
	simtime := fs.Float64("simtime", 16000, "simulated seconds per run")
	seeds := fs.Int("seeds", 1, "seeds per configuration")
	procs := fs.Int("procs", 0, "parallel workers (0 = GOMAXPROCS)")
	stats := fs.Bool("stats", false, "print engine throughput to stderr")
	fault := fs.String("fault", "", "fault plan, e.g. 'robot@4000=0;burst@4000-8000=0.05;blackout@2000-3000=100,100,80;mgr@9000;corrupt@4000-8000=0.05,mix;drain@4000-8000=0.5'")
	reliable := fs.Bool("reliable", false, "enable the repair-reliability protocol (retransmission, heartbeats, failover)")
	battery := fs.Float64("battery", 0, "per-robot battery capacity in joules (0 = energy layer off); adds the energy columns")
	recharge := fs.Float64("recharge", 250, "depot recharge watts when -battery is set (0 = starvation mode)")
	invariants := fs.Bool("invariants", false, "run the conservation-law checker per run; adds a violations column and exits nonzero on any")
	telemetryOn := fs.Bool("telemetry", false, "enable per-run telemetry collection")
	timeseries := fs.String("timeseries", "", "write per-run gauge time series to this CSV file (implies -telemetry)")
	sampleEvery := fs.Float64("sample-every", 0, "gauge sampling cadence in sim seconds (0 = default 250)")
	progress := fs.Bool("progress", false, "print live grid progress to stderr")
	journalPath := fs.String("journal", "", "journal completed runs to this file (crash-safe; an existing matching journal is resumed)")
	resume := fs.Bool("resume", false, "require -journal to already exist and resume it (error when absent)")
	ckptDir := fs.String("checkpoint-dir", "", "snapshot each running job's simulator state into this directory (with -checkpoint-every)")
	ckptEvery := fs.Float64("checkpoint-every", 0, "per-job snapshot period in simulated seconds (0 = no mid-job snapshots)")
	ftdcDir := fs.String("ftdc", "", "arm black-box flight recording on every run; runs that panic or violate invariants dump job-NNNNNN.ftdc here (decode with ftdcdump)")
	kernel := fs.String("kernel", "", "event-queue kernel: ladder (default) or heap")
	scale := fs.Int("scale", 1, "multiply sensors-per-robot by this factor, growing the field to keep density (stress runs)")
	cpuprofile := fs.String("cpuprofile", "", "write CPU profile to file")
	memprofile := fs.String("memprofile", "", "write heap profile to file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	vals, err := parseFloats(*values)
	if err != nil {
		return err
	}
	var plan *chaos.FaultPlan
	if *fault != "" {
		plan, err = chaos.Parse(*fault)
		if err != nil {
			return err
		}
	}
	var algs []roborepair.Algorithm
	if *algsFlag == "all" {
		algs = roborepair.Algorithms()
	} else {
		for _, name := range strings.Split(*algsFlag, ",") {
			a, err := roborepair.ParseAlgorithm(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			algs = append(algs, a)
		}
	}

	prof, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}()

	var jobs []runner.Job
	for _, alg := range algs {
		for _, v := range vals {
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				cfg := roborepair.DefaultConfig()
				cfg.Algorithm = alg
				cfg.SimTime = *simtime
				cfg.Seed = seed
				cfg.Faults = plan
				cfg.Kernel = *kernel
				if *scale > 1 {
					// Same sensor density on a larger field: more nodes,
					// more events, unchanged per-node physics.
					cfg.SensorsPerRobot *= *scale
					cfg.AreaPerRobotSide *= math.Sqrt(float64(*scale))
				}
				cfg.Reliability.Enabled = *reliable
				cfg.Invariants.Enabled = *invariants
				if *battery > 0 {
					cfg.Battery = &roborepair.BatteryConfig{CapacityJ: *battery, RechargeW: *recharge}
				}
				if *telemetryOn || *timeseries != "" {
					cfg.Telemetry.Enabled = true
					cfg.Telemetry.SamplePeriodS = *sampleEvery
				}
				if err := apply(&cfg, *param, v); err != nil {
					return err
				}
				jobs = append(jobs, runner.Job{Config: cfg, Tag: cell{value: v}})
			}
		}
	}

	ropts := runner.Options{Procs: *procs, CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, FTDCDir: *ftdcDir}
	if *progress {
		ropts.Progress = runner.ProgressWriter(os.Stderr)
		ropts.ProgressEvery = 250 * time.Millisecond
	}
	if *resume && *journalPath == "" {
		return fmt.Errorf("-resume requires -journal")
	}
	if *journalPath != "" {
		if *timeseries != "" {
			// Journaled results round-trip through JSON, which cannot carry
			// the live telemetry collector a resumed -timeseries would need.
			return fmt.Errorf("-journal cannot be combined with -timeseries")
		}
		if *resume {
			if _, err := os.Stat(*journalPath); err != nil {
				return fmt.Errorf("-resume: %w", err)
			}
		}
		j, err := runner.OpenJournal(*journalPath, jobs)
		if err != nil {
			if errors.Is(err, runner.ErrJournalMismatch) {
				// The journal's completed runs belong to some other grid: no
				// row of this sweep can be trusted from it. Say so in the
				// output stream, then fail.
				fmt.Printf("# resume aborted, no rows emitted: %v\n", err)
			}
			return err
		}
		defer j.Close()
		if *resume && j.Completed() > 0 {
			fmt.Fprintf(os.Stderr, "sweep: resuming %s: %d/%d runs already journaled\n",
				*journalPath, j.Completed(), len(jobs))
		}
		ropts.Journal = j
	}
	results, st, err := runner.Run(jobs, ropts)
	if st.FTDCDumps > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d anomalous runs dumped flight recordings to %s (decode with ftdcdump)\n",
			st.FTDCDumps, *ftdcDir)
	}
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintln(os.Stderr, st.String())
	}
	dropped := 0
	for _, r := range results {
		dropped += r.Res.TelemetryDropped
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "sweep: warning: %d telemetry samples lost to ring eviction; "+
			"the -timeseries CSV is truncated — sample less often (-sample-every)\n", dropped)
	}
	if *timeseries != "" {
		if err := writeTimeSeries(*timeseries, *param, results); err != nil {
			return err
		}
	}

	header := "algorithm,param,value,seed,failures,reports_delivered,repairs," +
		"travel_per_failure_m,report_hops,request_hops,update_tx_per_failure,repair_delay_s"
	degraded := plan != nil || *reliable
	if degraded {
		header += ",unrepaired,dup_repairs,stranded,requeued,report_retx,abandoned,redispatches,takeovers,recovery_s"
	}
	if *battery > 0 {
		header += ",robot_deaths,recharges,handoffs,energy_spent_j"
	}
	if *invariants {
		header += ",violations"
	}
	fmt.Println(header)
	violations := 0
	for _, r := range results {
		res := r.Res
		fmt.Printf("%s,%s,%g,%d,%d,%d,%d,%.2f,%.3f,%.3f,%.2f,%.1f",
			r.Job.Config.Algorithm, *param, r.Job.Tag.(cell).value, r.Job.Config.Seed,
			res.FailuresInjected, res.ReportsDelivered, res.Repairs,
			res.AvgTravelPerFailure, res.AvgReportHops, res.AvgRequestHops,
			res.LocUpdateTxPerFailure, res.AvgRepairDelay)
		if degraded {
			fmt.Printf(",%d,%d,%d,%d,%d,%d,%d,%d,%.1f",
				res.UnrepairedFailures, res.DuplicateRepairs, res.StrandedTasks,
				res.RequeuedTasks, res.ReportRetx, res.ReportsAbandoned,
				res.Redispatches, res.ManagerTakeovers, res.MeanFaultRecovery)
		}
		if *battery > 0 {
			fmt.Printf(",%d,%d,%d,%.0f",
				res.RobotDeaths, res.Recharges, res.TaskHandoffs, res.EnergySpentJ)
		}
		if *invariants {
			fmt.Printf(",%d", len(res.Violations))
			violations += len(res.Violations)
			for _, v := range res.Violations {
				fmt.Fprintln(os.Stderr, "violation:", v)
			}
		}
		fmt.Println()
	}
	if violations > 0 {
		return fmt.Errorf("%d invariant violations across the grid", violations)
	}
	return nil
}

// writeTimeSeries dumps every run's sampled gauge series into one CSV,
// each row prefixed with the run-identifying columns. Results arrive in
// stable input order and sampling is driven by sim time, so the file is
// byte-identical whatever the worker count.
func writeTimeSeries(path, param string, results []runner.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	wroteHeader := false
	for _, r := range results {
		if r.Err != nil || r.Res.Telemetry == nil {
			continue
		}
		sp := r.Res.Telemetry.Sampler()
		if !wroteHeader {
			if err := telemetry.WriteTimeSeriesHeader(f, sp, "algorithm,param,value,seed,"); err != nil {
				return err
			}
			wroteHeader = true
		}
		prefix := fmt.Sprintf("%s,%s,%g,%d,",
			r.Job.Config.Algorithm, param, r.Job.Tag.(cell).value, r.Job.Config.Seed)
		if err := telemetry.WriteTimeSeriesRows(f, sp, prefix); err != nil {
			return err
		}
	}
	return f.Close()
}

func apply(cfg *roborepair.Config, param string, v float64) error {
	switch param {
	case "robots":
		cfg.Robots = int(v)
	case "lifetime":
		cfg.MeanLifetime = v
	case "threshold":
		cfg.UpdateThreshold = v
	case "loss":
		cfg.LossP = v
	case "density":
		cfg.SensorsPerRobot = int(v)
	case "cargo":
		cfg.CargoCapacity = int(v)
	case "sensing":
		cfg.SensingRange = v
	default:
		return fmt.Errorf("unknown -param %q", param)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
