// Command telemetryck validates exported telemetry artifacts, for smoke
// tests and CI: a Chrome trace_event JSON must parse and carry well-formed
// events, a Prometheus text file must scrape (every line a comment or a
// `name[{labels}] value` sample), and a time-series CSV must be
// rectangular with a t_s column. The format checks themselves live in
// internal/analysis, shared with invck.
//
// Usage:
//
//	telemetryck -chrome trace.json -prom metrics.txt -csv series.csv
//
// Any failed check prints a diagnostic and exits nonzero; missing flags
// skip their check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"roborepair/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "telemetryck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("telemetryck", flag.ContinueOnError)
	chrome := ""
	prom := ""
	csv := ""
	fs.StringVar(&chrome, "chrome", "", "Chrome trace_event JSON file to validate")
	fs.StringVar(&prom, "prom", "", "Prometheus text exposition file to validate")
	fs.StringVar(&csv, "csv", "", "time-series CSV file to validate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if chrome == "" && prom == "" && csv == "" {
		return fmt.Errorf("nothing to check; pass -chrome, -prom, and/or -csv")
	}
	checks := []struct {
		path  string
		check func(io.Reader) error
	}{
		{chrome, analysis.CheckChromeTrace},
		{prom, analysis.CheckPrometheus},
		{csv, func(r io.Reader) error { return analysis.CheckCSV(r, "t_s") }},
	}
	for _, c := range checks {
		if c.path == "" {
			continue
		}
		if err := checkFile(c.path, c.check); err != nil {
			return fmt.Errorf("%s: %w", c.path, err)
		}
		fmt.Printf("%s: ok\n", c.path)
	}
	return nil
}

func checkFile(path string, check func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return check(f)
}
