// Command telemetryck validates exported telemetry artifacts, for smoke
// tests and CI: a Chrome trace_event JSON must parse and carry well-formed
// events, a Prometheus text file must scrape (every line a comment or a
// `name[{labels}] value` sample), and a time-series CSV must be
// rectangular with a t_s column. The format checks themselves live in
// internal/analysis, shared with invck.
//
// Usage:
//
//	telemetryck -chrome trace.json -prom metrics.txt -csv series.csv
//
// Any failed check prints a diagnostic and exits nonzero; missing flags
// skip their check. A Prometheus file reporting nonzero
// roborepair_telemetry_dropped_rows_total (gauge samples lost to ring
// eviction) prints a truncation warning to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"roborepair/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "telemetryck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("telemetryck", flag.ContinueOnError)
	chrome := ""
	prom := ""
	csv := ""
	fs.StringVar(&chrome, "chrome", "", "Chrome trace_event JSON file to validate")
	fs.StringVar(&prom, "prom", "", "Prometheus text exposition file to validate")
	fs.StringVar(&csv, "csv", "", "time-series CSV file to validate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if chrome == "" && prom == "" && csv == "" {
		return fmt.Errorf("nothing to check; pass -chrome, -prom, and/or -csv")
	}
	checks := []struct {
		path  string
		check func(io.Reader) error
	}{
		{chrome, analysis.CheckChromeTrace},
		{prom, analysis.CheckPrometheus},
		{csv, func(r io.Reader) error { return analysis.CheckCSV(r, "t_s") }},
	}
	for _, c := range checks {
		if c.path == "" {
			continue
		}
		if err := checkFile(c.path, c.check); err != nil {
			return fmt.Errorf("%s: %w", c.path, err)
		}
		fmt.Printf("%s: ok\n", c.path)
	}
	if prom != "" {
		if n, err := promDroppedRows(prom); err != nil {
			return fmt.Errorf("%s: %w", prom, err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "telemetryck: warning: %s reports %d telemetry samples lost to "+
				"ring eviction; the retained time-series window is truncated\n", prom, n)
		}
	}
	return nil
}

// promDroppedRows extracts the sampler's ring-eviction counter from a
// Prometheus text file, 0 when the series is absent (registry-only
// exports have no sampler).
func promDroppedRows(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	const series = "roborepair_telemetry_dropped_rows_total "
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, series); ok {
			return strconv.Atoi(strings.TrimSpace(rest))
		}
	}
	return 0, nil
}

func checkFile(path string, check func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return check(f)
}
