// Command telemetryck validates exported telemetry artifacts, for smoke
// tests and CI: a Chrome trace_event JSON must parse and carry well-formed
// events, a Prometheus text file must scrape (every line a comment or a
// `name[{labels}] value` sample), and a time-series CSV must be
// rectangular with a t_s column.
//
// Usage:
//
//	telemetryck -chrome trace.json -prom metrics.txt -csv series.csv
//
// Any failed check prints a diagnostic and exits nonzero; missing flags
// skip their check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "telemetryck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("telemetryck", flag.ContinueOnError)
	chrome := ""
	prom := ""
	csv := ""
	fs.StringVar(&chrome, "chrome", "", "Chrome trace_event JSON file to validate")
	fs.StringVar(&prom, "prom", "", "Prometheus text exposition file to validate")
	fs.StringVar(&csv, "csv", "", "time-series CSV file to validate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if chrome == "" && prom == "" && csv == "" {
		return fmt.Errorf("nothing to check; pass -chrome, -prom, and/or -csv")
	}
	if chrome != "" {
		if err := checkChrome(chrome); err != nil {
			return fmt.Errorf("%s: %w", chrome, err)
		}
		fmt.Printf("%s: ok\n", chrome)
	}
	if prom != "" {
		if err := checkProm(prom); err != nil {
			return fmt.Errorf("%s: %w", prom, err)
		}
		fmt.Printf("%s: ok\n", prom)
	}
	if csv != "" {
		if err := checkCSV(csv); err != nil {
			return fmt.Errorf("%s: %w", csv, err)
		}
		fmt.Printf("%s: ok\n", csv)
	}
	return nil
}

// checkChrome parses the trace and verifies the invariants chrome://tracing
// and Perfetto rely on: every event has a phase, complete slices have
// non-negative durations, and at least one robot lane is named.
func checkChrome(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	lanes := 0
	for i, e := range doc.TraceEvents {
		if e.Ph == "" {
			return fmt.Errorf("event %d: missing ph", i)
		}
		if e.Ph != "M" && e.Ts == nil {
			return fmt.Errorf("event %d (%s): missing ts", i, e.Name)
		}
		if e.Ph == "X" && (e.Dur == nil || *e.Dur < 0) {
			return fmt.Errorf("event %d (%s): complete slice without valid dur", i, e.Name)
		}
		if e.Ph == "M" && e.Name == "thread_name" {
			lanes++
		}
	}
	if lanes == 0 {
		return fmt.Errorf("no named lanes")
	}
	return nil
}

// promLine matches one exposition-format sample:
// name{labels} value [timestamp].
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+( [0-9]+)?$`)

func checkProm(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	samples, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("line %d: not a valid sample: %q", lineNo, line)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	return nil
}

func checkCSV(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return fmt.Errorf("empty file")
	}
	header := strings.Split(sc.Text(), ",")
	hasT := false
	for _, col := range header {
		if col == "t_s" {
			hasT = true
		}
	}
	if !hasT {
		return fmt.Errorf("header lacks a t_s column: %q", sc.Text())
	}
	rows, lineNo := 0, 1
	for sc.Scan() {
		lineNo++
		if got := len(strings.Split(sc.Text(), ",")); got != len(header) {
			return fmt.Errorf("line %d: %d fields, header has %d", lineNo, got, len(header))
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if rows == 0 {
		return fmt.Errorf("no data rows")
	}
	return nil
}
