// Command tracer runs one traced simulation and emits the causal chain of
// every failure — failure time, detection delay, repair delay — as CSV,
// plus a repair-delay distribution summary. It is the forensic view behind
// the aggregate figures.
//
// Usage:
//
//	tracer -alg dynamic -robots 9 -simtime 16000 > chains.csv
//	tracer -summary            # distribution summary instead of CSV
//
// Fault-plan runs trace degraded behavior; -chrome-trace renders the run's
// causal log as a Chrome trace_event file with one lane per robot (open it
// in chrome://tracing or ui.perfetto.dev):
//
//	tracer -reliable -fault 'robot@4000=0;burst@4000-8000=0.05' \
//	       -chrome-trace trace.json -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"roborepair"
	"roborepair/internal/scenario"
	"roborepair/internal/telemetry"
)

// algNames renders the registered algorithm names for flag help.
func algNames() string {
	names := make([]string, 0, 8)
	for _, a := range roborepair.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, "|")
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracer", flag.ContinueOnError)
	cfg := roborepair.DefaultConfig()
	algName := fs.String("alg", cfg.Algorithm.String(), "algorithm: "+algNames())
	fs.IntVar(&cfg.Robots, "robots", cfg.Robots, "number of maintenance robots")
	fs.Float64Var(&cfg.SimTime, "simtime", 16000, "simulated seconds")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	summary := fs.Bool("summary", false, "print a distribution summary instead of CSV")
	fault := fs.String("fault", "", "fault plan, e.g. 'robot@4000=0;burst@4000-8000=0.05;blackout@2000-3000=100,100,80;mgr@9000'")
	fs.BoolVar(&cfg.Reliability.Enabled, "reliable", false, "enable the repair-reliability protocol (retransmission, heartbeats, failover)")
	chromeTrace := fs.String("chrome-trace", "", "write the causal log as Chrome trace_event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fault != "" {
		plan, err := roborepair.ParseFaultPlan(*fault)
		if err != nil {
			return err
		}
		cfg.Faults = plan
	}
	alg, err := roborepair.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	cfg.Algorithm = alg
	cfg.TraceCapacity = -1
	if *chromeTrace != "" {
		// The exporter also draws the sampled gauge counters as tracks.
		cfg.Telemetry.Enabled = true
	}

	w, err := roborepair.NewWorld(cfg)
	if err != nil {
		return err
	}
	res := w.Run()
	chains := w.Trace.Chains()

	if *chromeTrace != "" {
		opt := telemetry.ChromeOptions{Collector: res.Telemetry}
		if w.Manager != nil {
			opt.ManagerID = w.Manager.ID()
		}
		f, err := os.Create(*chromeTrace)
		if err != nil {
			return err
		}
		if err := telemetry.WriteChromeTrace(f, w.Trace, opt); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tracer: wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *chromeTrace)
	}

	if *summary {
		fmt.Printf("run: %s\n", res.Summary())
		if h := res.Registry.Hist(scenario.HistRepairDelay); h != nil {
			fmt.Printf("repair delay: %s\n", h)
			fmt.Printf("distribution: %s\n", h.Sparkline())
		}
		reported, repaired := 0, 0
		for _, c := range chains {
			if c.Reported {
				reported++
			}
			if c.Repaired {
				repaired++
			}
		}
		fmt.Printf("chains: %d failures, %d reported, %d repaired\n",
			len(chains), reported, repaired)
		return nil
	}

	fmt.Println("node,failure_at_s,detection_delay_s,repair_delay_s,reported,repaired")
	for _, c := range chains {
		fmt.Printf("%d,%.1f,%.1f,%.1f,%t,%t\n",
			int(c.Failed), float64(c.FailureAt),
			float64(c.DetectionDelay()), float64(c.RepairDelay()),
			c.Reported, c.Repaired)
	}
	return nil
}
