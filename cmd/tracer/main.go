// Command tracer runs one traced simulation and emits the causal chain of
// every failure — failure time, detection delay, repair delay — as CSV,
// plus a repair-delay distribution summary. It is the forensic view behind
// the aggregate figures.
//
// Usage:
//
//	tracer -alg dynamic -robots 9 -simtime 16000 > chains.csv
//	tracer -summary            # distribution summary instead of CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"roborepair"
	"roborepair/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracer", flag.ContinueOnError)
	cfg := roborepair.DefaultConfig()
	algName := fs.String("alg", cfg.Algorithm.String(), "algorithm: centralized|fixed|dynamic")
	fs.IntVar(&cfg.Robots, "robots", cfg.Robots, "number of maintenance robots")
	fs.Float64Var(&cfg.SimTime, "simtime", 16000, "simulated seconds")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	summary := fs.Bool("summary", false, "print a distribution summary instead of CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alg, err := roborepair.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	cfg.Algorithm = alg
	cfg.TraceCapacity = -1

	w, err := roborepair.NewWorld(cfg)
	if err != nil {
		return err
	}
	res := w.Run()
	chains := w.Trace.Chains()

	if *summary {
		fmt.Printf("run: %s\n", res.Summary())
		if h := res.Registry.Hist(scenario.HistRepairDelay); h != nil {
			fmt.Printf("repair delay: %s\n", h)
			fmt.Printf("distribution: %s\n", h.Sparkline())
		}
		reported, repaired := 0, 0
		for _, c := range chains {
			if c.Reported {
				reported++
			}
			if c.Repaired {
				repaired++
			}
		}
		fmt.Printf("chains: %d failures, %d reported, %d repaired\n",
			len(chains), reported, repaired)
		return nil
	}

	fmt.Println("node,failure_at_s,detection_delay_s,repair_delay_s,reported,repaired")
	for _, c := range chains {
		fmt.Printf("%d,%.1f,%.1f,%.1f,%t,%t\n",
			int(c.Failed), float64(c.FailureAt),
			float64(c.DetectionDelay()), float64(c.RepairDelay()),
			c.Reported, c.Repaired)
	}
	return nil
}
