// Command benchjson turns `go test -bench -benchmem` text output into a
// machine-readable JSON record and optionally enforces per-benchmark
// metric ceilings, so perf regressions fail the build instead of rotting
// in a log.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//	go test -run '^$' -bench Throughput -benchmem . | benchjson \
//	    -ceiling 'BenchmarkSimulatorThroughput=allocs/op<=279000' \
//	    -ceiling 'BenchmarkSchedulerChurn=allocs/op<=0'
//
// Ceilings compare against the parsed metric (ns/op, B/op, allocs/op, or
// any custom unit the benchmark reports) and exit nonzero on a breach or
// when a named benchmark is missing from the input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// ceiling is one `-ceiling 'Name=metric<=value'` constraint.
type ceiling struct {
	bench  string
	metric string
	max    float64
}

type ceilingList []ceiling

func (c *ceilingList) String() string { return fmt.Sprint(*c) }

var ceilingRe = regexp.MustCompile(`^([^=]+)=([^<]+)<=(.+)$`)

func (c *ceilingList) Set(s string) error {
	m := ceilingRe.FindStringSubmatch(s)
	if m == nil {
		return fmt.Errorf("ceiling %q not of the form 'Bench=metric<=value'", s)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(m[3]), 64)
	if err != nil {
		return fmt.Errorf("ceiling %q: %w", s, err)
	}
	*c = append(*c, ceiling{
		bench:  strings.TrimSpace(m[1]),
		metric: strings.TrimSpace(m[2]),
		max:    v,
	})
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file ('' or '-' for stdout)")
	var ceilings ceilingList
	fs.Var(&ceilings, "ceiling", "repeatable 'Bench=metric<=value' assertion")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
	}

	var breaches []string
	for _, c := range ceilings {
		b := find(rep.Benchmarks, c.bench)
		if b == nil {
			breaches = append(breaches, fmt.Sprintf("%s: benchmark missing from input", c.bench))
			continue
		}
		got, ok := b.Metrics[c.metric]
		if !ok {
			breaches = append(breaches, fmt.Sprintf("%s: metric %q not reported", c.bench, c.metric))
			continue
		}
		if got > c.max {
			breaches = append(breaches,
				fmt.Sprintf("%s: %s = %g exceeds ceiling %g", c.bench, c.metric, got, c.max))
		}
	}
	for _, b := range breaches {
		fmt.Fprintln(os.Stderr, "benchjson: RATCHET BREACH:", b)
	}
	if len(breaches) > 0 {
		return fmt.Errorf("%d ceiling breach(es)", len(breaches))
	}
	return nil
}

// find matches by exact name, tolerating the -P GOMAXPROCS suffix go test
// appends.
func find(bs []Benchmark, name string) *Benchmark {
	for i := range bs {
		got := bs[i].Name
		if got == name {
			return &bs[i]
		}
		if j := strings.LastIndexByte(got, '-'); j >= 0 && got[:j] == name {
			if _, err := strconv.Atoi(got[j+1:]); err == nil {
				return &bs[i]
			}
		}
	}
	return nil
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				b.Metrics = nil
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if b.Metrics == nil {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}
