package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: roborepair
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorThroughput 	       2	 314398613 ns/op	      3181 sim-s/s	21906180 B/op	  282108 allocs/op
BenchmarkSchedulerChurn-8    	 1000000	       151.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	roborepair	0.950s
`

func parseSample(t *testing.T) *Report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchOutput(t *testing.T) {
	rep := parseSample(t)
	if rep.GoOS != "linux" || rep.Pkg != "roborepair" {
		t.Fatalf("header fields: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSimulatorThroughput" || b.Iterations != 2 {
		t.Fatalf("first bench = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 314398613, "sim-s/s": 3181, "B/op": 21906180, "allocs/op": 282108,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %g, want %g", unit, got, want)
		}
	}
}

func TestFindToleratesProcsSuffix(t *testing.T) {
	rep := parseSample(t)
	if find(rep.Benchmarks, "BenchmarkSchedulerChurn") == nil {
		t.Fatal("find missed the -8 suffixed benchmark")
	}
	if find(rep.Benchmarks, "BenchmarkScheduler") != nil {
		t.Fatal("find matched a prefix that is not the full name")
	}
	if find(rep.Benchmarks, "BenchmarkNope") != nil {
		t.Fatal("find invented a benchmark")
	}
}

func TestCeilingParseAndBreach(t *testing.T) {
	var cs ceilingList
	if err := cs.Set("BenchmarkSimulatorThroughput=allocs/op<=279000"); err != nil {
		t.Fatal(err)
	}
	if err := cs.Set("garbage"); err == nil {
		t.Fatal("malformed ceiling accepted")
	}
	if cs[0].bench != "BenchmarkSimulatorThroughput" || cs[0].metric != "allocs/op" || cs[0].max != 279000 {
		t.Fatalf("parsed ceiling = %+v", cs[0])
	}
	rep := parseSample(t)
	b := find(rep.Benchmarks, cs[0].bench)
	if b == nil {
		t.Fatal("benchmark not found")
	}
	if got := b.Metrics[cs[0].metric]; got <= cs[0].max {
		t.Fatalf("sample should breach the 279000 ceiling, got %g", got)
	}
}
