package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roborepair/internal/ftdc"
)

// bankRecording writes a small two-column recording and returns its path.
func bankRecording(t *testing.T, name string, vs []float64) string {
	t.Helper()
	ts := make([]float64, len(vs))
	for i := range ts {
		ts[i] = float64(i) * 250
	}
	rec := &ftdc.Recording{
		Schema: ftdc.Schema{Cols: []string{"t_s", "v"}, PeriodS: 250, Seed: 7},
		Chunks: []ftdc.Chunk{{Rows: len(vs), Cols: [][]float64{ts, vs}}},
	}
	path := filepath.Join(t.TempDir(), name)
	if err := ftdc.WriteFile(path, rec); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummaryDefault(t *testing.T) {
	path := bankRecording(t, "a.ftdc", []float64{1, 2, 3})
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 columns, 3 samples", "seed=7", "t_s", "v"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestCSVMode(t *testing.T) {
	path := bankRecording(t, "a.ftdc", []float64{1, 2.5})
	var out strings.Builder
	if err := run([]string{"-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "t_s,v\n0,1\n250,2.5\n"; got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestPromMode(t *testing.T) {
	path := bankRecording(t, "a.ftdc", []float64{1, 42})
	var out strings.Builder
	if err := run([]string{"-prom", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "roborepair_v 42\n") {
		t.Fatalf("prom output missing final gauge:\n%s", out.String())
	}
}

func TestVerifyAcceptsCanonical(t *testing.T) {
	path := bankRecording(t, "a.ftdc", []float64{1, 2, 3})
	var out strings.Builder
	if err := run([]string{"-verify", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "canonical") {
		t.Fatalf("verify output: %s", out.String())
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	path := bankRecording(t, "a.ftdc", []float64{1, 2, 3})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", path}, &strings.Builder{}); err == nil {
		t.Fatal("corrupted recording verified clean")
	}
}

func TestDiffIdentical(t *testing.T) {
	a := bankRecording(t, "a.ftdc", []float64{1, 2, 3})
	b := bankRecording(t, "b.ftdc", []float64{1, 2, 3})
	var out strings.Builder
	if err := run([]string{"-diff", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("diff output: %s", out.String())
	}
}

func TestDiffDivergent(t *testing.T) {
	a := bankRecording(t, "a.ftdc", []float64{1, 2, 3})
	b := bankRecording(t, "b.ftdc", []float64{1, 9, 3})
	var out strings.Builder
	err := run([]string{"-diff", a, b}, &out)
	if err == nil {
		t.Fatal("divergent recordings diffed clean")
	}
	if !strings.Contains(out.String(), "1 rows differ, first at row 1") {
		t.Fatalf("diff output: %s", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	path := bankRecording(t, "a.ftdc", []float64{1})
	for _, args := range [][]string{
		{},                      // no path
		{"-csv", "-prom", path}, // conflicting modes
		{"-diff", path},         // -diff needs two
		{path, path},            // plain mode needs one
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
