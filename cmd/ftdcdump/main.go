// Command ftdcdump decodes flight-recorder captures (.ftdc) written by
// the simulator's always-on black box: per-run recordings from
// `repairsim -ftdc`, grid anomaly dumps from `sweep -ftdc`, and the
// violation recordings banked by invck. The decoder is strict — torn,
// corrupted, or non-canonical files are rejected, never partially
// rendered.
//
// Usage:
//
//	ftdcdump run.ftdc                # human summary: schema + per-column stats
//	ftdcdump -csv run.ftdc           # full time series as CSV
//	ftdcdump -prom run.ftdc         # final sample as Prometheus gauges
//	ftdcdump -verify run.ftdc       # strict decode + byte-identical re-encode check
//	ftdcdump -diff a.ftdc b.ftdc    # column-by-column diff of two recordings
//
// -diff exits nonzero when the recordings differ, so it doubles as a
// determinism check between two runs of the same configuration.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"roborepair/internal/ftdc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftdcdump:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftdcdump", flag.ContinueOnError)
	csvOut := fs.Bool("csv", false, "render the full time series as CSV")
	promOut := fs.Bool("prom", false, "render the final sample as Prometheus gauges")
	verify := fs.Bool("verify", false, "decode strictly and check the re-encode is byte-identical")
	diff := fs.Bool("diff", false, "diff two recordings column by column")
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := 0
	for _, m := range []bool{*csvOut, *promOut, *verify, *diff} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("pick one of -csv, -prom, -verify, -diff")
	}
	paths := fs.Args()
	if *diff {
		if len(paths) != 2 {
			return fmt.Errorf("-diff needs exactly two recordings, got %d", len(paths))
		}
		a, err := ftdc.ReadFile(paths[0])
		if err != nil {
			return fmt.Errorf("%s: %w", paths[0], err)
		}
		b, err := ftdc.ReadFile(paths[1])
		if err != nil {
			return fmt.Errorf("%s: %w", paths[1], err)
		}
		ds := ftdc.Diff(a, b)
		if len(ds) == 0 {
			fmt.Fprintf(out, "recordings identical: %d rows × %d cols\n", a.NumRows(), len(a.Schema.Cols))
			return nil
		}
		for _, d := range ds {
			fmt.Fprintln(out, d.String())
		}
		return fmt.Errorf("%d columns differ", len(ds))
	}
	if len(paths) != 1 {
		return fmt.Errorf("need exactly one recording, got %d", len(paths))
	}
	path := paths[0]
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rec, err := ftdc.Decode(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case *verify:
		re, err := ftdc.Encode(rec)
		if err != nil {
			return fmt.Errorf("%s: re-encode: %w", path, err)
		}
		if !bytes.Equal(raw, re) {
			return fmt.Errorf("%s: decode→encode is not byte-identical (%d vs %d bytes)", path, len(raw), len(re))
		}
		fmt.Fprintf(out, "%s: ok: %d rows × %d cols, %d bytes, canonical\n",
			path, rec.NumRows(), len(rec.Schema.Cols), len(raw))
		return nil
	case *csvOut:
		return ftdc.WriteCSV(out, rec)
	case *promOut:
		return ftdc.WritePrometheus(out, rec)
	default:
		return ftdc.WriteSummary(out, rec)
	}
}
