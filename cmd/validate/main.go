// Command validate cross-checks the simulator against the closed-form
// models of internal/analysis and prints a PASS/FAIL row per invariant.
// It is the fast "is this reproduction sane?" gate — each check compares
// an end-to-end simulated quantity with geometric probability, renewal
// theory, or queueing theory.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"roborepair"
	"roborepair/internal/analysis"
	"roborepair/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

type check struct {
	name      string
	simulated float64
	predicted float64
	tolerance float64 // relative
}

func (c check) pass() bool {
	if c.predicted == 0 {
		return c.simulated == 0
	}
	return math.Abs(c.simulated-c.predicted)/c.predicted <= c.tolerance
}

func run(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	simtime := fs.Float64("simtime", 16000, "simulated seconds per run")
	robots := fs.Int("robots", 9, "maintenance robots")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := roborepair.DefaultConfig()
	base.SimTime = *simtime
	base.Robots = *robots
	base.Seed = *seed

	runAlg := func(alg roborepair.Algorithm) (roborepair.Results, error) {
		cfg := base
		cfg.Algorithm = alg
		return roborepair.Run(cfg)
	}
	dyn, err := runAlg(roborepair.Dynamic)
	if err != nil {
		return err
	}
	fx, err := runAlg(roborepair.Fixed)
	if err != nil {
		return err
	}
	ce, err := runAlg(roborepair.Centralized)
	if err != nil {
		return err
	}

	checks := []check{
		{
			name:      "failures ≈ N·H/T (renewal theory)",
			simulated: float64(dyn.FailuresInjected),
			predicted: analysis.ExpectedFailures(base.NumSensors(), base.MeanLifetime, base.SimTime),
			tolerance: 0.20,
		},
		{
			name:      "dynamic travel ≈ nearest-of-k robots",
			simulated: dyn.AvgTravelPerFailure,
			predicted: analysis.ExpectedNearestOfK(base.FieldSide(), base.Robots),
			tolerance: 0.25,
		},
		{
			name:      "fixed travel ≈ uniform pair distance in subarea",
			simulated: fx.AvgTravelPerFailure,
			predicted: analysis.ExpectedPairDist(base.AreaPerRobotSide),
			tolerance: 0.25,
		},
		{
			name:      "centralized report hops ≈ dist-to-center / hop progress",
			simulated: ce.AvgReportHops,
			predicted: analysis.ExpectedHops(
				analysis.ExpectedDistToCenter(base.FieldSide()),
				base.SensorRange, base.SensorRange),
			tolerance: 0.35,
		},
		{
			name:      "distributed report hops ≈ 2 (paper §4.3.2)",
			simulated: dyn.AvgReportHops,
			predicted: 2,
			tolerance: 0.5,
		},
		{
			name:      "report delivery ratio ≈ 1 (paper: 100%)",
			simulated: dyn.ReportDeliveryRatio(),
			predicted: 1,
			tolerance: 0.05,
		},
	}

	t := report.NewTable("Simulator vs closed-form models",
		"invariant", "simulated", "predicted", "tolerance", "verdict")
	failures := 0
	for _, c := range checks {
		verdict := "PASS"
		if !c.pass() {
			verdict = "FAIL"
			failures++
		}
		t.AddRow(c.name, report.F(c.simulated), report.F(c.predicted),
			fmt.Sprintf("±%.0f%%", c.tolerance*100), verdict)
	}
	fmt.Println(t.String())
	if failures > 0 {
		return fmt.Errorf("%d invariant(s) failed", failures)
	}
	fmt.Println("all invariants hold")
	return nil
}
