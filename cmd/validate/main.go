// Command validate cross-checks the simulator against the closed-form
// models of internal/analysis and prints a PASS/FAIL row per invariant.
// It is the fast "is this reproduction sane?" gate — each check compares
// an end-to-end simulated quantity with geometric probability, renewal
// theory, or queueing theory. With -seeds > 1 the simulated quantities
// are averaged over independent seeds, tightening the comparison.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"roborepair"
	"roborepair/internal/analysis"
	"roborepair/internal/report"
	"roborepair/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

type check struct {
	name      string
	simulated float64
	predicted float64
	tolerance float64 // relative
}

func (c check) pass() bool {
	if c.predicted == 0 {
		return c.simulated == 0
	}
	return math.Abs(c.simulated-c.predicted)/c.predicted <= c.tolerance
}

// algAvg holds the per-algorithm quantities the invariants consume,
// averaged over the seed list.
type algAvg struct {
	failures      float64
	travel        float64
	reportHops    float64
	deliveryRatio float64
}

func run(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	simtime := fs.Float64("simtime", 16000, "simulated seconds per run")
	robots := fs.Int("robots", 9, "maintenance robots")
	seed := fs.Int64("seed", 1, "first random seed")
	seeds := fs.Int("seeds", 1, "seeds averaged per algorithm")
	procs := fs.Int("procs", 0, "parallel workers (0 = GOMAXPROCS)")
	stats := fs.Bool("stats", false, "print engine throughput to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write CPU profile to file")
	memprofile := fs.String("memprofile", "", "write heap profile to file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		*seeds = 1
	}

	prof, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "validate:", err)
		}
	}()

	base := roborepair.DefaultConfig()
	base.SimTime = *simtime
	base.Robots = *robots

	algs := []roborepair.Algorithm{roborepair.Dynamic, roborepair.Fixed, roborepair.Centralized}
	var jobs []runner.Job
	for _, alg := range algs {
		for s := int64(0); s < int64(*seeds); s++ {
			cfg := base
			cfg.Algorithm = alg
			cfg.Seed = *seed + s
			jobs = append(jobs, runner.Job{Config: cfg})
		}
	}
	results, st, err := runner.Run(jobs, runner.Options{Procs: *procs})
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintln(os.Stderr, st.String())
	}

	avg := make(map[roborepair.Algorithm]algAvg, len(algs))
	for _, r := range results {
		a := avg[r.Job.Config.Algorithm]
		n := float64(*seeds)
		a.failures += float64(r.Res.FailuresInjected) / n
		a.travel += r.Res.AvgTravelPerFailure / n
		a.reportHops += r.Res.AvgReportHops / n
		a.deliveryRatio += r.Res.ReportDeliveryRatio() / n
		avg[r.Job.Config.Algorithm] = a
	}
	dyn := avg[roborepair.Dynamic]
	fx := avg[roborepair.Fixed]
	ce := avg[roborepair.Centralized]

	checks := []check{
		{
			name:      "failures ≈ N·H/T (renewal theory)",
			simulated: dyn.failures,
			predicted: analysis.ExpectedFailures(base.NumSensors(), base.MeanLifetime, base.SimTime),
			tolerance: 0.20,
		},
		{
			name:      "dynamic travel ≈ nearest-of-k robots",
			simulated: dyn.travel,
			predicted: analysis.ExpectedNearestOfK(base.FieldSide(), base.Robots),
			tolerance: 0.25,
		},
		{
			name:      "fixed travel ≈ uniform pair distance in subarea",
			simulated: fx.travel,
			predicted: analysis.ExpectedPairDist(base.AreaPerRobotSide),
			tolerance: 0.25,
		},
		{
			name:      "centralized report hops ≈ dist-to-center / hop progress",
			simulated: ce.reportHops,
			predicted: analysis.ExpectedHops(
				analysis.ExpectedDistToCenter(base.FieldSide()),
				base.SensorRange, base.SensorRange),
			tolerance: 0.35,
		},
		{
			name:      "distributed report hops ≈ 2 (paper §4.3.2)",
			simulated: dyn.reportHops,
			predicted: 2,
			tolerance: 0.5,
		},
		{
			name:      "report delivery ratio ≈ 1 (paper: 100%)",
			simulated: dyn.deliveryRatio,
			predicted: 1,
			tolerance: 0.05,
		},
	}

	t := report.NewTable("Simulator vs closed-form models",
		"invariant", "simulated", "predicted", "tolerance", "verdict")
	failures := 0
	for _, c := range checks {
		verdict := "PASS"
		if !c.pass() {
			verdict = "FAIL"
			failures++
		}
		t.AddRow(c.name, report.F(c.simulated), report.F(c.predicted),
			fmt.Sprintf("±%.0f%%", c.tolerance*100), verdict)
	}
	fmt.Println(t.String())
	if failures > 0 {
		return fmt.Errorf("%d invariant(s) failed", failures)
	}
	fmt.Println("all invariants hold")
	return nil
}
