package roborepair_test

import (
	"testing"

	"roborepair"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = roborepair.Fixed
	cfg.Partition = roborepair.PartitionSquare
	cfg.Robots = 4
	cfg.SimTime = 4000
	res, err := roborepair.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repairs == 0 {
		t.Fatalf("no repairs: %s", res.Summary())
	}
	if res.Config.Algorithm != roborepair.Fixed {
		t.Fatal("config not echoed in results")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"centralized", "fixed", "dynamic"} {
		alg, err := roborepair.ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", name, err)
		}
		if alg.String() != name {
			t.Fatalf("round trip %q → %q", name, alg.String())
		}
	}
	if _, err := roborepair.ParseAlgorithm("bogus"); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestNewWorldExposesPopulation(t *testing.T) {
	cfg := roborepair.DefaultConfig()
	cfg.Robots = 4
	cfg.SimTime = 1000
	w, err := roborepair.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Robots) != 4 || len(w.Sensors) != 200 {
		t.Fatalf("population wrong: %d robots, %d sensors", len(w.Robots), len(w.Sensors))
	}
	res := w.Run()
	if res.FailuresInjected < 0 {
		t.Fatal("unreachable")
	}
}

func TestPaperRobotCounts(t *testing.T) {
	want := []int{4, 9, 16}
	if len(roborepair.PaperRobotCounts) != len(want) {
		t.Fatalf("PaperRobotCounts = %v", roborepair.PaperRobotCounts)
	}
	for i, v := range want {
		if roborepair.PaperRobotCounts[i] != v {
			t.Fatalf("PaperRobotCounts = %v, want %v", roborepair.PaperRobotCounts, want)
		}
	}
}
