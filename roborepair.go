// Package roborepair simulates sensor-replacement in large static
// wireless sensor networks maintained by a small team of mobile robots,
// reproducing Mei, Xian, Das, Hu and Lu, "Replacing Failed Sensor Nodes by
// Mobile Robots" (ICDCS Workshops 2006).
//
// Sensors guard each other with periodic beacons; when a guardian detects
// a failed guardee it reports the failure over geographic routing to a
// manager, which dispatches a maintenance robot to replace the node. The
// package implements the paper's three coordination algorithms —
// Centralized, Fixed (static subareas), and Dynamic (implicit Voronoi
// cells) — on top of a from-scratch packet-level wireless simulation,
// plus a facility-location family (Facility) that parks idle robots at
// k-median/k-center facilities solved over recent failure sites.
// Algorithms are pluggable: see internal/algorithm and Algorithms().
//
// Quickstart:
//
//	cfg := roborepair.DefaultConfig()
//	cfg.Algorithm = roborepair.Dynamic
//	cfg.Robots = 9
//	res, err := roborepair.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.Summary())
package roborepair

import (
	"io"

	"roborepair/internal/algorithm"
	"roborepair/internal/chaos"
	"roborepair/internal/checkpoint"
	"roborepair/internal/core"
	"roborepair/internal/figures"
	"roborepair/internal/ftdc"
	"roborepair/internal/geom"
	"roborepair/internal/invariant"
	"roborepair/internal/runner"
	"roborepair/internal/scenario"
	"roborepair/internal/telemetry"
)

// Re-exported simulation types. Config parameterizes a run; Results
// carries its outcomes; World is a built simulation ready to run (use it
// when you need access to the sensors/robots, e.g. to inject bursts).
type (
	// Config parameterizes one simulation run.
	Config = scenario.Config
	// Results aggregates one run's outcomes.
	Results = scenario.Results
	// World is a fully wired simulation.
	World = scenario.World
	// Algorithm selects a coordination algorithm.
	Algorithm = core.Algorithm
	// PartitionKind selects the fixed algorithm's subarea shape.
	PartitionKind = geom.PartitionKind
	// FaultPlan is a declarative, seeded schedule of injected faults —
	// robot breakdowns, loss bursts, regional blackouts, a manager crash.
	// Assign one to Config.Faults; nil injects nothing.
	FaultPlan = chaos.FaultPlan
	// ReliabilityConfig enables and tunes the repair-reliability
	// protocol via Config.Reliability.
	ReliabilityConfig = scenario.ReliabilityConfig
	// BatteryConfig makes energy a live in-sim resource via Config.Battery:
	// finite per-robot budgets, conservative dispatch admission, depot
	// recharge detours with task handoff, and death-in-place at zero
	// charge. Nil disables the layer with zero overhead.
	BatteryConfig = scenario.BatteryConfig
	// TelemetryConfig enables and tunes the observability layer —
	// histograms, time-series sampling, exporters — via Config.Telemetry.
	// The zero value disables it with zero overhead.
	TelemetryConfig = telemetry.Config
	// TelemetryCollector carries one run's telemetry (Results.Telemetry).
	TelemetryCollector = telemetry.Collector
	// RecorderConfig enables and tunes the always-on flight recorder — a
	// compact, delta-encoded binary time series (FTDC-style) cheap enough
	// to arm on every run — via Config.Recorder. The zero value disables
	// it with zero overhead.
	RecorderConfig = ftdc.Config
	// Recorder carries one run's flight recording (Results.Recording);
	// decode its Bytes with DecodeRecording or the ftdcdump CLI.
	Recorder = ftdc.Recorder
	// Recording is a decoded flight-recorder capture.
	Recording = ftdc.Recording
	// InvariantConfig enables the runtime conservation-law checker via
	// Config.Invariants. The zero value disables it with zero overhead;
	// violations surface in Results.Violations.
	InvariantConfig = invariant.Config
	// InvariantViolation is one detected conservation-law breach, with the
	// simulated time and entity it was observed at.
	InvariantViolation = invariant.Violation
	// Snapshot is a versioned, CRC-guarded capture of the full simulator
	// state at one instant, produced by World.Snapshot or
	// World.RunCheckpointed and turned back into a running world by
	// Restore.
	Snapshot = checkpoint.Snapshot
	// CheckpointOptions configures World.RunCheckpointed: how often to
	// snapshot and what to do with each snapshot.
	CheckpointOptions = scenario.CheckpointOptions
	// RestoreOptions tunes RestoreOpts; TailTraceCapacity attaches a fresh
	// trace ring to the restored world so the continuation can be replayed
	// with full event logging.
	RestoreOptions = scenario.RestoreOptions
)

// DecodeRecording decodes a flight-recorder capture — the Bytes of a
// Results.Recording, or a .ftdc file's contents — rejecting corrupt or
// non-canonical input.
func DecodeRecording(b []byte) (*Recording, error) { return ftdc.Decode(b) }

// ReadRecording loads and decodes a .ftdc recording file written by
// Recorder.WriteFile or the -ftdc CLI flags.
func ReadRecording(path string) (*Recording, error) { return ftdc.ReadFile(path) }

// ErrReplayDiverged reports that a snapshot failed Restore's byte-level
// verification: the deterministic replay of its embedded configuration
// did not reproduce the snapshotted state, so the file is corrupt,
// tampered with, or from an incompatible build.
var ErrReplayDiverged = scenario.ErrReplayDiverged

// Restore rebuilds a running world from a snapshot by deterministic
// fast-forward replay, verifying byte-for-byte that the replayed state
// matches the snapshot before returning. The continuation is
// bit-identical to the uninterrupted run.
func Restore(snap *Snapshot) (*World, error) { return scenario.Restore(snap) }

// RestoreOpts is Restore with options (e.g. a tail trace for
// replay-from-snapshot debugging).
func RestoreOpts(snap *Snapshot, opts RestoreOptions) (*World, error) {
	return scenario.RestoreOpts(snap, opts)
}

// EncodeSnapshot renders a snapshot in the versioned, CRC-guarded binary
// format, for callers that bank snapshots somewhere other than a file.
func EncodeSnapshot(s *Snapshot) ([]byte, error) { return checkpoint.Encode(s) }

// DecodeSnapshot parses and CRC-checks an EncodeSnapshot blob.
func DecodeSnapshot(b []byte) (*Snapshot, error) { return checkpoint.Decode(b) }

// ReadSnapshot loads and CRC-checks a snapshot file written by
// WriteSnapshot.
func ReadSnapshot(path string) (*Snapshot, error) { return checkpoint.ReadFile(path) }

// WriteSnapshot atomically writes a snapshot to path (temp file, sync,
// rename), so a crash mid-write never clobbers the previous snapshot.
func WriteSnapshot(path string, s *Snapshot) error { return checkpoint.WriteFile(path, s) }

// ParseFaultPlan builds a fault plan from the compact semicolon-separated
// syntax of the -fault CLI flags:
//
//	robot@T=IDX              robot IDX breaks down at time T
//	burst@T1-T2=P            loss probability P during [T1,T2)
//	blackout@T1-T2=X,Y,R     radius-R blackout around (X,Y) during [T1,T2)
//	mgr@T                    central manager crashes at time T
//	corrupt@T1-T2=P[,mode]   each reception's bytes corrupted with
//	                         probability P during [T1,T2); mode is one of
//	                         bitflip, truncate, garbage, duplicate, replay,
//	                         or mix (the default)
//	drain@T1-T2=F[,IDX]      parasitic battery drain worth fraction F of
//	                         one pack over [T1,T2), on robot IDX (omitted:
//	                         the whole fleet); inert unless Config.Battery
//	                         is set
//
// An empty spec yields a nil plan (no faults).
func ParseFaultPlan(spec string) (*FaultPlan, error) { return chaos.Parse(spec) }

// The registered coordination algorithms: the paper's three plus the
// facility-location family. Algorithms() enumerates the full registry.
const (
	// Centralized is the central-manager algorithm (§3.1).
	Centralized = core.Centralized
	// Fixed is the fixed distributed manager algorithm (§3.2).
	Fixed = core.Fixed
	// Dynamic is the dynamic distributed manager algorithm (§3.3).
	Dynamic = core.Dynamic
	// Facility is the facility-location family: centralized dispatch plus
	// periodic k-median/k-center re-placement of idle robots over recent
	// failure sites (tune via Config.FacilityObjective/PeriodS/Ledger).
	Facility = algorithm.Facility
)

// Subarea partition shapes for the Fixed algorithm.
const (
	// PartitionSquare tiles the field with equal squares (paper default).
	PartitionSquare = geom.PartitionSquare
	// PartitionHex uses a hexagonal lattice (the §4.3.1 ablation).
	PartitionHex = geom.PartitionHex
)

// PaperRobotCounts are the robot counts of the paper's experiments.
var PaperRobotCounts = figures.PaperRobotCounts

// DefaultConfig returns the paper's §4.1 experimental parameters.
func DefaultConfig() Config { return scenario.DefaultConfig() }

// Run builds a world from cfg, simulates it to the horizon, and returns
// the collected results.
func Run(cfg Config) (Results, error) { return scenario.Run(cfg) }

// NewWorld builds a simulation without running it, for callers that need
// to inspect or perturb the world (burst failures, custom metrics).
func NewWorld(cfg Config) (*World, error) { return scenario.New(cfg) }

// RunMany executes every configuration on a pool of procs worker
// goroutines (procs ≤ 0 selects GOMAXPROCS) and returns the results in
// input order. Runs share no state, so each result is bit-identical to a
// serial Run of the same configuration; failures do not stop the batch,
// and all failures (annotated with their job index, in input order) are
// aggregated into the returned error with errors.Join.
func RunMany(cfgs []Config, procs int) ([]Results, error) {
	jobs := make([]runner.Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = runner.Job{Config: cfg}
	}
	rs, _, err := runner.Run(jobs, runner.Options{Procs: procs})
	out := make([]Results, len(rs))
	for i := range rs {
		out[i] = rs[i].Res
	}
	return out, err
}

// ParseAlgorithm converts a registered algorithm name ("centralized",
// "fixed", "dynamic", "facility", ...) into an Algorithm; unknown names
// fail with the full registered list.
func ParseAlgorithm(s string) (Algorithm, error) { return algorithm.Parse(s) }

// Algorithms enumerates every registered coordination algorithm in
// deterministic (sorted) order — the list sweeps, figures, and invariant
// grids iterate.
func Algorithms() []Algorithm { return algorithm.All() }

// WritePrometheus renders a run's full accounting — the metrics registry
// plus, when telemetry was enabled, the collector's counters, histograms,
// and latest gauge readings — in the Prometheus text exposition format.
func WritePrometheus(w io.Writer, res Results) error {
	return telemetry.WritePrometheus(w, res.Registry, res.Telemetry)
}

// WriteChromeTrace renders a traced world's causal log as Chrome
// trace_event JSON (one lane per robot; open in chrome://tracing or
// ui.perfetto.dev). The world must have been built with
// Config.TraceCapacity != 0 and run to completion; enabling
// Config.Telemetry additionally draws the sampled gauges as counter
// tracks.
func WriteChromeTrace(w io.Writer, world *World) error {
	opt := telemetry.ChromeOptions{Collector: world.Telemetry}
	if world.Manager != nil {
		opt.ManagerID = world.Manager.ID()
	}
	return telemetry.WriteChromeTrace(w, world.Trace, opt)
}
