module roborepair

go 1.22
