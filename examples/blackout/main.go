// Blackout: a regional radio blackout is the nastiest fault for a
// guardian-based failure detector — every sensor inside the silenced
// region stops hearing its neighbors, so when the radios come back the
// whole region looks freshly dead. This example runs the dynamic
// algorithm through a declarative fault plan (a 1000 s blackout over the
// field center, a robot breakdown, and a lossy window) twice: once with
// the paper's fire-and-forget protocol and once with the repair-
// reliability extension, and compares how much of the damage each leaves
// unrepaired.
package main

import (
	"fmt"
	"log"

	"roborepair"
)

func main() {
	plan, err := roborepair.ParseFaultPlan("blackout@2000-3000=100,100,80;robot@4000=0;burst@4000-8000=0.05")
	if err != nil {
		log.Fatal(err)
	}

	base := roborepair.DefaultConfig()
	base.Algorithm = roborepair.Dynamic
	base.SimTime = 24000
	base.Seed = 3
	base.Faults = plan

	fragile := base // paper protocol: reports fire once, robots are trusted
	robust := base
	robust.Reliability.Enabled = true

	results, err := roborepair.RunMany([]roborepair.Config{fragile, robust}, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fault plan: %s\n\n", plan)
	for i, label := range []string{"fire-and-forget", "reliability on "} {
		res := results[i]
		fmt.Printf("%s  failures=%-4d repairs=%-4d unrepaired=%-3d stranded=%-3d retx=%-5d takeovers=%d  avg delay %.0f s\n",
			label, res.FailuresInjected, res.Repairs, res.UnrepairedFailures,
			res.StrandedTasks, res.ReportRetx, res.ManagerTakeovers, res.AvgRepairDelay)
	}
	fmt.Println("\nThe reliability run retransmits reports until the site is seen alive,")
	fmt.Println("re-queues the dead robot's tasks, and holds post-blackout accusations")
	fmt.Println("for a confirmation grace so resurfacing sensors are not \"repaired\".")
}
