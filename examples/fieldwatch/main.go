// Fieldwatch: watch the sensor field evolve. Renders ASCII snapshots of
// the field at regular intervals while robots chase failures, then prints
// the causal trace of the last few failures. Demonstrates the World API,
// the step-wise scheduler, the trace log, and the viz renderer together.
package main

import (
	"fmt"
	"log"

	"roborepair"
	"roborepair/internal/geom"
	"roborepair/internal/sim"
	"roborepair/internal/viz"
)

func main() {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = roborepair.Dynamic
	cfg.Robots = 4
	cfg.SimTime = 12000
	cfg.TraceCapacity = -1
	cfg.Seed = 3

	w, err := roborepair.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bounds := geom.Square(geom.Pt(0, 0), cfg.FieldSide())

	snapshot := func() {
		var stations []viz.Station
		for _, s := range w.Sensors {
			glyph := viz.GlyphSensor
			if !s.Alive() {
				glyph = viz.GlyphDead
			}
			stations = append(stations, viz.Station{Loc: s.Pos(), Glyph: rune(glyph)})
		}
		for _, r := range w.Robots {
			stations = append(stations, viz.Station{Loc: r.Pos(), Glyph: viz.GlyphRobot})
		}
		fmt.Printf("t = %6.0f s   (%s)\n", float64(w.Sched.Now()), viz.Legend())
		fmt.Print(viz.Render(bounds, 60, 24, stations))
		fmt.Println()
	}

	// Advance the clock in slices, rendering between them.
	for _, at := range []sim.Time{0, 4000, 8000, 12000} {
		w.Sched.Run(at)
		snapshot()
	}
	res := w.Run() // finalize counters at the horizon

	fmt.Printf("failures=%d repaired=%d travel/failure=%.1fm\n\n",
		res.FailuresInjected, res.Repairs, res.AvgTravelPerFailure)

	fmt.Println("last failure lifecycles (failure → report → replacement):")
	chains := w.Trace.Chains()
	start := len(chains) - 5
	if start < 0 {
		start = 0
	}
	for _, c := range chains[start:] {
		status := "unrepaired"
		if c.Repaired {
			status = fmt.Sprintf("repaired after %.0f s", float64(c.RepairDelay()))
		}
		fmt.Printf("  node %v failed at %7.0f s, detected in %4.0f s, %s\n",
			c.Failed, float64(c.FailureAt), float64(c.DetectionDelay()), status)
	}
	fmt.Println()
	fmt.Println("trace tail:")
	events := w.Trace.Events()
	tail := len(events) - 8
	if tail < 0 {
		tail = 0
	}
	for _, e := range events[tail:] {
		fmt.Println("  " + e.String())
	}
}
