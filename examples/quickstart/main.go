// Quickstart: run the dynamic distributed manager algorithm on the
// paper's default 4-robot scenario and print what happened.
package main

import (
	"fmt"
	"log"

	"roborepair"
)

func main() {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = roborepair.Dynamic
	cfg.Robots = 4
	cfg.SimTime = 16000 // a quarter of the paper's horizon: a few seconds of CPU

	res, err := roborepair.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== roborepair quickstart ===")
	fmt.Printf("field: %.0f m × %.0f m, %d sensors, %d robots, %s algorithm\n",
		cfg.FieldSide(), cfg.FieldSide(), cfg.NumSensors(), cfg.Robots, cfg.Algorithm)
	fmt.Printf("simulated %.0f s of network lifetime\n\n", cfg.SimTime)

	fmt.Printf("sensor failures injected:      %d\n", res.FailuresInjected)
	fmt.Printf("failures detected & reported:  %d (delivery %.1f%%)\n",
		res.ReportsSent, res.ReportDeliveryRatio()*100)
	fmt.Printf("nodes replaced by robots:      %d\n", res.Repairs)
	fmt.Printf("avg robot travel per failure:  %.1f m\n", res.AvgTravelPerFailure)
	fmt.Printf("avg failure-report hops:       %.2f\n", res.AvgReportHops)
	fmt.Printf("location-update transmissions: %.1f per failure\n", res.LocUpdateTxPerFailure)
	fmt.Printf("avg repair delay:              %.0f s\n", res.AvgRepairDelay)
}
