// Attrition: what finite robot batteries do to the maintenance service.
// Three fleets work the same failure process: an unconstrained baseline
// (no energy layer), a starving fleet (finite packs, no charger — robots
// die in place one by one), and a sustained fleet (same packs plus a
// 250 W depot charger — robots detour to top up and hand queued tasks
// back before leaving). The table shows graceful degradation: starvation
// costs repairs in proportion to fleet attrition, while recharge trades a
// little latency for an immortal fleet.
package main

import (
	"fmt"
	"log"

	"roborepair"
	"roborepair/internal/report"
)

// base is the shared scenario: a busy field over a horizon several times
// one pack's idle lifetime, so energy policy — not luck — decides the
// outcome.
func base() roborepair.Config {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = roborepair.Dynamic
	cfg.SimTime = 6000
	cfg.MeanLifetime = 4000
	cfg.Invariants.Enabled = true // every run doubles as an energy audit
	return cfg
}

func main() {
	unconstrained := base() // Battery nil: the energy layer is absent

	starved := base()
	starved.Battery = &roborepair.BatteryConfig{CapacityJ: 40000} // no charger

	sustained := base()
	sustained.Battery = &roborepair.BatteryConfig{CapacityJ: 40000, RechargeW: 250}

	results, err := roborepair.RunMany([]roborepair.Config{unconstrained, starved, sustained}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		if len(res.Violations) > 0 {
			log.Fatalf("invariant violation: %v", res.Violations[0])
		}
	}
	uncon, starv, sust := results[0], results[1], results[2]

	t := report.NewTable(
		"Fleet attrition under finite batteries (dynamic, 4 robots, 6000 s)",
		"metric", "no battery", "starvation", "recharge")
	t.AddRow("robots alive at horizon",
		report.I(unconstrained.Robots),
		report.I(unconstrained.Robots-starv.RobotDeaths),
		report.I(unconstrained.Robots-sust.RobotDeaths))
	t.AddRow("failures injected",
		report.I(uncon.FailuresInjected), report.I(starv.FailuresInjected), report.I(sust.FailuresInjected))
	t.AddRow("repairs completed",
		report.I(uncon.Repairs), report.I(starv.Repairs), report.I(sust.Repairs))
	t.AddRow("repair ratio",
		report.F(uncon.RepairRatio()), report.F(starv.RepairRatio()), report.F(sust.RepairRatio()))
	t.AddRow("avg repair delay (s)",
		report.F1(uncon.AvgRepairDelay), report.F1(starv.AvgRepairDelay), report.F1(sust.AvgRepairDelay))
	t.AddRow("energy spent (kJ)",
		"—", report.F1(starv.EnergySpentJ/1000), report.F1(sust.EnergySpentJ/1000))
	t.AddRow("recharge round-trips",
		"—", report.I(starv.Recharges), report.I(sust.Recharges))
	t.AddRow("tasks handed back",
		"—", report.I(starv.TaskHandoffs), report.I(sust.TaskHandoffs))
	fmt.Println(t.String())

	fmt.Println("Reading the table:")
	fmt.Println("  · the starving fleet dies in place mid-run; its survivors keep the")
	fmt.Println("    service degrading gracefully instead of collapsing at once")
	fmt.Println("  · the recharging fleet never dies: robots decline dispatches they")
	fmt.Println("    cannot finish, hand queued tasks to peers, and detour to the depot")
	fmt.Println("  · the price of immortality is depot time: round-trips and admission")
	fmt.Println("    declines cost some repair throughput against the unconstrained")
	fmt.Println("    baseline, but no robots")
}
