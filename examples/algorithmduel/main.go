// Algorithmduel: the paper's conclusion is that "the optimal choice of the
// coordination algorithm depends on the specific scenarios and objectives
// being optimized." This example runs all three algorithms on identical
// deployments (same seed, same failure times) and prints a side-by-side
// comparison of the trade-off: motion overhead vs messaging overhead vs
// scalability.
package main

import (
	"fmt"
	"log"

	"roborepair"
	"roborepair/internal/report"
)

func main() {
	const robots = 9
	algs := []roborepair.Algorithm{roborepair.Centralized, roborepair.Fixed, roborepair.Dynamic}

	t := report.NewTable(
		fmt.Sprintf("Coordination algorithm duel — %d robots, identical deployments", robots),
		"algorithm", "repairs", "travel_m/fail", "report_hops", "request_hops",
		"update_tx/fail", "repair_delay_s")

	for _, alg := range algs {
		cfg := roborepair.DefaultConfig()
		cfg.Algorithm = alg
		cfg.Robots = robots
		cfg.SimTime = 16000
		cfg.Seed = 42
		res, err := roborepair.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			alg.String(),
			report.I(res.Repairs),
			report.F1(res.AvgTravelPerFailure),
			report.F(res.AvgReportHops),
			report.F(res.AvgRequestHops),
			report.F1(res.LocUpdateTxPerFailure),
			report.F1(res.AvgRepairDelay),
		)
	}
	fmt.Println(t.String())
	fmt.Println("Reading the table (paper §4.3):")
	fmt.Println("  · centralized & dynamic: lowest travel (failures go to the closest robot)")
	fmt.Println("  · fixed & dynamic: report hops stay ≈2 regardless of field size")
	fmt.Println("  · centralized: tiny update overhead but report hops grow with the field")
	fmt.Println("  · dynamic: pays the highest location-update flooding bill")
}
