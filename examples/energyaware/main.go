// Energyaware: the paper's motion-overhead metric (Figure 2) is travel
// distance because "the robots' traveling distance ... reflects the energy
// consumed". This example converts each algorithm's travel distance into
// Joules using the Pioneer 3DX power model from the authors' own robot
// energy study (reference [9]) and estimates battery life per robot.
package main

import (
	"fmt"
	"log"

	"roborepair"
	"roborepair/internal/energy"
	"roborepair/internal/report"
)

func main() {
	model := energy.Pioneer3DX()
	// Pioneer 3DX: 3 × 12 V 7.2 Ah lead-acid ≈ 252 Wh ≈ 0.9 MJ.
	const batteryJ = 0.9e6

	t := report.NewTable(
		"Robot energy per algorithm (9 robots, 16000 s, Pioneer 3DX model)",
		"algorithm", "travel_m/robot", "motion_energy_kJ", "mission_energy_kJ",
		"battery_life_h")

	for _, alg := range []roborepair.Algorithm{
		roborepair.Centralized, roborepair.Fixed, roborepair.Dynamic,
	} {
		cfg := roborepair.DefaultConfig()
		cfg.Algorithm = alg
		cfg.Robots = 9
		cfg.SimTime = 16000
		res, err := roborepair.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		perRobot := res.TotalTravel / float64(cfg.Robots)
		motion := model.MotionEnergyJ(perRobot, cfg.RobotSpeed)
		mission := model.MissionEnergyJ(perRobot, cfg.RobotSpeed, cfg.SimTime)
		life := model.BatteryLifeS(batteryJ, perRobot, cfg.RobotSpeed, cfg.SimTime)
		t.AddRow(
			alg.String(),
			report.F1(perRobot),
			report.F1(motion/1e3),
			report.F1(mission/1e3),
			report.F1(life/3600),
		)
	}
	fmt.Println(t.String())

	// Sensor-side messaging energy: what Figure 4's transmission counts
	// cost the network in battery terms.
	mote := energy.TypicalMote()
	t2 := report.NewTable(
		"Sensor network radio energy (same runs, CC1000-class motes)",
		"algorithm", "total_tx", "messaging_J", "idle_J", "messaging_share_%")
	for _, alg := range []roborepair.Algorithm{
		roborepair.Centralized, roborepair.Fixed, roborepair.Dynamic,
	} {
		cfg := roborepair.DefaultConfig()
		cfg.Algorithm = alg
		cfg.Robots = 9
		cfg.SimTime = 16000
		res, err := roborepair.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tx := res.Registry.TotalTx()
		const avgNeighbors = 12 // ≈ density × π·63² at §4.1 parameters
		msg := mote.MessagingEnergyJ(tx, avgNeighbors)
		idle := mote.IdleEnergyJ(cfg.NumSensors(), cfg.SimTime)
		share := mote.MessagingShare(tx, avgNeighbors, cfg.NumSensors(), cfg.SimTime)
		t2.AddRow(alg.String(), report.U(tx), report.F1(msg), report.F1(idle),
			report.F(share*100))
	}
	fmt.Println(t2.String())
	fmt.Println("Motion energy tracks Figure 2's travel distances, but the hotel load")
	fmt.Println("(embedded computer + sonar) dominates at this failure rate: robots")
	fmt.Println("spend most of the mission waiting, which is exactly why the paper")
	fmt.Println("argues a few robots are cheaper than giving every sensor a motor.")
}
