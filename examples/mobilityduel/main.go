// Mobilityduel: the paper's core economic claim is that a few mobile
// robots beat giving every sensor mobility ("mobility is an expensive
// feature ... Adding mobility to a large number of sensor nodes is
// expensive"). This example runs the paper's robot system and the Wang et
// al. [13] sensor-relocation baseline on matching failure processes and
// compares who moves, how far, and how many mobility platforms each
// approach has to pay for.
package main

import (
	"fmt"
	"log"

	"roborepair"
	"roborepair/internal/relocation"
	"roborepair/internal/report"
)

func main() {
	// Robot system: the paper's 4-robot scenario.
	rcfg := roborepair.DefaultConfig()
	rcfg.Algorithm = roborepair.Dynamic
	rcfg.Robots = 4
	rcfg.SimTime = 16000
	robotRes, err := roborepair.Run(rcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Relocation baseline: same field, same population, same failure law.
	bcfg := relocation.DefaultConfig()
	bcfg.FieldSide = rcfg.FieldSide()
	bcfg.Sensors = rcfg.NumSensors()
	bcfg.MeanLifetime = rcfg.MeanLifetime
	bcfg.Horizon = rcfg.SimTime
	baseline, err := relocation.Simulate(bcfg)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		"Robot replacement (paper) vs sensor self-relocation (Wang et al. [13])",
		"metric", "robots", "relocation")
	t.AddRow("mobility platforms needed",
		report.I(rcfg.Robots),
		fmt.Sprintf("%d (every sensor)", bcfg.Sensors+int(float64(bcfg.Sensors)*bcfg.SpareFraction)))
	t.AddRow("failures handled",
		report.I(robotRes.Repairs), report.I(baseline.Filled))
	t.AddRow("movement per failure (m)",
		report.F1(robotRes.AvgTravelPerFailure), report.F1(baseline.CascadeTotalPerFailure))
	t.AddRow("max single-node move (m)",
		report.F1(robotRes.AvgTravelPerFailure),
		report.F1(baseline.CascadeMaxHopPerFailure)+" (cascaded)")
	t.AddRow("nodes disturbed per failure",
		"1 (a robot)", report.F1(baseline.CascadeMovesPerFailure))
	t.AddRow("movement response time (s)",
		report.F1(robotRes.AvgTravelPerFailure/rcfg.RobotSpeed),
		report.F1(baseline.CascadeResponseS)+" (parallel cascade)")
	t.AddRow("unfilled failures",
		report.I(robotRes.FailuresInjected-robotRes.Repairs),
		report.I(baseline.Unfilled))
	fmt.Println(t.String())

	fmt.Println("Reading the table:")
	fmt.Println("  · the robot system needs 4 mobility platforms; relocation needs ~220")
	fmt.Println("    (every sensor carries motors, wheels, and localization)")
	fmt.Println("  · cascaded relocation responds faster per failure (short parallel")
	fmt.Println("    moves) — exactly the trade-off [13] optimizes")
	fmt.Println("  · but relocation consumes the sensing fleet's own energy and runs")
	if rcfg.CargoCapacity > 0 {
		fmt.Printf("    out of spares; robots carry %d nodes per trip and restock at\n", rcfg.CargoCapacity)
		fmt.Println("    the depot between dispatches")
	} else {
		fmt.Println("    out of spares; robots restock fresh nodes from the depot's")
		fmt.Println("    unlimited supply (this run leaves CargoCapacity=0: no restock")
		fmt.Println("    trips are simulated)")
	}
}
