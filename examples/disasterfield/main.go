// Disasterfield: the paper motivates sensor replacement with unattended
// networks "in various environments such as disaster areas, hazard fields,
// or battle fields". This example deploys the largest paper configuration
// (16 robots, 800 sensors over 800 m × 800 m) and, on top of natural
// attrition, injects a correlated burst — a localized fire that kills
// every sensor within 120 m of a point — then reports how the robot team
// absorbs the repair backlog.
package main

import (
	"fmt"
	"log"

	"roborepair"
	"roborepair/internal/failure"
	"roborepair/internal/geom"
	"roborepair/internal/metrics"
)

func main() {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = roborepair.Dynamic
	cfg.Robots = 16
	cfg.SimTime = 24000
	cfg.Seed = 7

	w, err := roborepair.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A fire breaks out at t=8000 s near the north-east quadrant.
	burst := failure.Burst{At: 8000, Center: geom.Pt(600, 600), Radius: 120}
	population := make([]failure.Failable, 0, len(w.Sensors))
	for _, s := range w.Sensors {
		population = append(population, s)
	}
	w.Injector.ScheduleBurst(burst, population)

	res := w.Run()

	fmt.Println("=== disaster field: 800 sensors, 16 robots, localized fire at t=8000s ===")
	fmt.Printf("failures (natural + burst):   %d\n", res.FailuresInjected)
	fmt.Printf("failures reported:            %d (delivery %.1f%%)\n",
		res.ReportsSent, res.ReportDeliveryRatio()*100)
	fmt.Printf("nodes replaced:               %d (%.1f%% of failures)\n",
		res.Repairs, res.RepairRatio()*100)
	fmt.Printf("avg robot travel per failure: %.1f m (total %.0f m)\n",
		res.AvgTravelPerFailure, res.TotalTravel)
	fmt.Printf("avg repair delay:             %.0f s\n", res.AvgRepairDelay)
	fmt.Printf("max repair delay:             %.0f s (burst backlog)\n",
		res.Registry.Series(metrics.SeriesRepairDelay).Max())
	fmt.Printf("max robot queue length:       %.0f tasks\n",
		res.Registry.Series(metrics.SeriesQueueLength).Max())
	fmt.Println()
	fmt.Println("The burst kills a cluster of nodes at once; guardians detect their")
	fmt.Println("guardees within three beacon periods, and nearby robots queue the")
	fmt.Println("repairs FCFS — the max repair delay shows the backlog draining.")
}
