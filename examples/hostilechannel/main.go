// Hostile channel: every frame is serialized through the CRC-protected
// binary codec and a seeded injector mutates in-flight bytes — bit flips,
// truncation, trailing garbage, duplication, and stale replays. This
// example sweeps the corruption rate over a mid-run window under the
// centralized algorithm (whose manager dispatches on unicast robot
// updates — exactly what replays try to roll back) and prints how the
// defensive decoding holds up: how many receptions were mutated, how many
// the checksum discarded, how many stale replays the sequence guards
// refused, and what damage was left unrepaired at the horizon.
package main

import (
	"fmt"
	"log"

	"roborepair"
)

func main() {
	specs := []string{"", "corrupt@8000-16000=0.01", "corrupt@8000-16000=0.05",
		"corrupt@8000-16000=0.2",
		// A replay-only window: every mutated reception is a stale capture,
		// the case the sequence guards exist for.
		"corrupt@8000-16000=0.2,replay"}
	labels := []string{"none", "1% mix", "5% mix", "20% mix", "20% replay"}

	var configs []roborepair.Config
	for _, spec := range specs {
		cfg := roborepair.DefaultConfig()
		cfg.Algorithm = roborepair.Centralized
		cfg.SimTime = 24000
		cfg.Seed = 3
		cfg.Reliability.Enabled = true
		if spec != "" {
			plan, err := roborepair.ParseFaultPlan(spec)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Faults = plan
		}
		configs = append(configs, cfg)
	}

	results, err := roborepair.RunMany(configs, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("corruption window 8000-16000 s, centralized algorithm, reliability on")
	fmt.Println()
	for i, label := range labels {
		res := results[i]
		fmt.Printf("%-10s  corrupted=%-6d dropped=%-6d replay-rejected=%-4d repairs=%-4d unrepaired=%d\n",
			label, res.CorruptedFrames, res.DroppedMalformed, res.ReplayRejected,
			res.Repairs, res.UnrepairedFailures)
	}
	fmt.Println("\nChecksum-failed frames are dropped and counted, never acted on; a")
	fmt.Println("mutated frame that still decodes can only be a stale replay, which the")
	fmt.Println("per-robot sequence guards reject. Losses degrade repair latency like a")
	fmt.Println("lossy burst would — corruption never breaks a conservation law.")
}
