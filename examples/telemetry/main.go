// Telemetry: watch a fault unfold as a time series. A regional blackout
// silences the field center for 1000 s; failures inside it go unreported,
// so the repair backlog climbs while the radios are down, then the robots
// burn it back down once reports get through. This example runs one
// telemetered simulation, prints the backlog curve around the blackout,
// and writes the full gauge time series as a gnuplot-ready CSV.
//
// Plot it:
//
//	go run ./examples/telemetry > backlog.csv
//	gnuplot -e "set datafile separator ','; set key autotitle columnhead; \
//	            plot 'backlog.csv' using 1:2 with lines" -p
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"roborepair"
)

func main() {
	plan, err := roborepair.ParseFaultPlan("blackout@2000-3000=100,100,80;robot@4000=0;burst@4000-8000=0.05")
	if err != nil {
		log.Fatal(err)
	}

	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = roborepair.Dynamic
	cfg.SimTime = 24000
	cfg.Seed = 3
	cfg.Faults = plan
	cfg.Reliability.Enabled = true
	cfg.Telemetry.Enabled = true
	cfg.Telemetry.SamplePeriodS = 100 // fine-grained: 240 samples over the run

	res, err := roborepair.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The CSV goes to stdout (pipe into a file for gnuplot); the
	// commentary goes to stderr so the data stays clean.
	if err := res.Telemetry.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}

	sp := res.Telemetry.Sampler()
	times := sp.Times()
	backlog := sp.Series("pending_failures")
	peak, peakAt := 0.0, 0.0
	for i, v := range backlog {
		if v > peak {
			peak, peakAt = v, times[i]
		}
	}
	fmt.Fprintf(os.Stderr, "blackout 2000-3000 s over the field center; backlog peaks at %.0f pending (t=%.0f s)\n", peak, peakAt)
	fmt.Fprintln(os.Stderr)
	fmt.Fprintln(os.Stderr, "pending failures around the blackout:")
	for i, t := range times {
		if t < 1500 || t > 6000 {
			continue
		}
		bar := strings.Repeat("#", int(backlog[i]))
		fmt.Fprintf(os.Stderr, "  t=%5.0f s  %2.0f %s\n", t, backlog[i], bar)
	}
	fmt.Fprintln(os.Stderr)
	fmt.Fprint(os.Stderr, res.Telemetry.Summary())
}
