// Megafield: the million-node kernel demo. It runs the paper's scenario
// scaled far past its 800-sensor maximum — 100k sensors by default, 1M
// with -sensors 1000000 — at the paper's density (50 sensors per
// 200 m × 200 m robot cell), and prints engine throughput next to the
// repair-pipeline results. The ladder-queue scheduler and the
// struct-of-arrays radio/node state are what make this size practical;
// pass -kernel heap to feel the difference.
//
// Usage:
//
//	megafield                       # 100k sensors, 300 sim-seconds
//	megafield -sensors 1000000      # the full million
//	megafield -simtime 1000 -kernel heap
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"roborepair"
)

func main() {
	sensors := flag.Int("sensors", 100_000, "total sensor count (rounded to a multiple of -robots)")
	robots := flag.Int("robots", 16, "maintenance robot count")
	simtime := flag.Float64("simtime", 300, "simulated seconds")
	kernel := flag.String("kernel", "", "event-queue kernel: ladder (default) or heap")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *sensors < *robots {
		log.Fatalf("megafield: -sensors %d below -robots %d", *sensors, *robots)
	}

	cfg := roborepair.DefaultConfig()
	cfg.Robots = *robots
	cfg.SensorsPerRobot = *sensors / *robots
	// Keep the paper's density: 50 sensors per 200 m side of per-robot
	// area ⇒ side grows with sqrt of the per-robot sensor count.
	cfg.AreaPerRobotSide = 200 * math.Sqrt(float64(cfg.SensorsPerRobot)/50)
	cfg.SimTime = *simtime
	cfg.Seed = *seed
	cfg.Kernel = *kernel
	// At short horizons the exponential MTBF of 16000 s yields almost no
	// failures; shrink it so the repair pipeline actually exercises.
	cfg.MeanLifetime = 8 * *simtime

	fmt.Printf("megafield: %d sensors, %d robots, %.0f m field side, %.0f sim-s\n",
		cfg.NumSensors(), cfg.Robots, cfg.FieldSide(), cfg.SimTime)

	start := time.Now()
	res, err := roborepair.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("wall time: %.1f s (%.0f sim-s per wall-s)\n",
		wall.Seconds(), cfg.SimTime/wall.Seconds())
	fmt.Printf("failures injected: %d, reported: %d, repaired: %d\n",
		res.FailuresInjected, res.ReportsSent, res.Repairs)
	fmt.Printf("avg travel per failure: %.1f m, avg repair delay: %.0f s\n",
		res.AvgTravelPerFailure, res.AvgRepairDelay)
	if res.FailuresInjected == 0 {
		fmt.Fprintln(os.Stderr, "megafield: no failures at this horizon; raise -simtime")
	}
}
