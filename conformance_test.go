// Cross-algorithm conformance suite: the contract every coordination
// algorithm must satisfy to live in the registry. The suite enumerates
// internal/algorithm's registry — it does NOT hardcode algorithm names —
// so a newly registered family is exercised by every assertion here with
// zero test edits. Each registered algorithm, on both event-queue
// kernels, must be
//
//	(a) deterministic: a serial Run and a RunMany worker-pool run of the
//	    same config produce byte-identical Results JSON;
//	(b) checkpointable: snapshot → encode → decode → restore → continue
//	    is bit-identical (Results and full event trace) to an
//	    uninterrupted run;
//	(c) clean under chaos: the burst / blackout / corrupt fault plans
//	    produce zero invariant violations;
//	(d) unperturbed by observability: invariants + telemetry + recorder
//	    change no simulation outcome (same trace, same counters), and
//	    switched off their Results sections are absent.
package roborepair_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"roborepair"
	"roborepair/internal/algorithm"
)

// conformanceKernels are the event-queue implementations every algorithm
// must behave identically well on.
var conformanceKernels = []string{"heap", "ladder"}

// conformanceConfig is the common base: a short horizon with plenty of
// failures inside it, the reliability protocol armed (it exercises
// re-dispatch and takeover paths), the battery layer live (admission
// checks, recharge detours, and handoffs run inside every contract), and
// a full trace as the bit-identity oracle.
func conformanceConfig(alg roborepair.Algorithm, kernel string) roborepair.Config {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = alg
	cfg.Kernel = kernel
	cfg.SimTime = 2400
	cfg.MeanLifetime = 1500
	cfg.Seed = 5
	cfg.TraceCapacity = 4096
	cfg.Reliability.Enabled = true
	// A saturated robot draws ≈31.6 W, so this pack forces several recharge
	// round-trips inside the horizon.
	cfg.Battery = &roborepair.BatteryConfig{CapacityJ: 30000, RechargeW: 250}
	return cfg
}

// forEachAlgorithm runs fn once per registered algorithm × kernel, as a
// named subtest. This is the only loop in the suite; everything iterates
// the registry.
func forEachAlgorithm(t *testing.T, fn func(t *testing.T, alg roborepair.Algorithm, kernel string)) {
	for _, name := range algorithm.Names() {
		for _, kernel := range conformanceKernels {
			alg, kernel := roborepair.Algorithm(name), kernel
			t.Run(name+"/"+kernel, func(t *testing.T) {
				t.Parallel()
				fn(t, alg, kernel)
			})
		}
	}
}

func marshalResults(t *testing.T, res roborepair.Results) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestConformanceRegistryComplete pins the suite to the registry: if this
// fails, an algorithm was registered or removed and the goldens /
// EXPERIMENTS tables need a corresponding update — the conformance
// subtests themselves adapt automatically.
func TestConformanceRegistryComplete(t *testing.T) {
	names := algorithm.Names()
	if len(names) < 4 {
		t.Fatalf("registry lists only %v; the paper's three algorithms and the facility family must all be registered", names)
	}
	for _, want := range []roborepair.Algorithm{roborepair.Centralized, roborepair.Fixed, roborepair.Dynamic, "facility"} {
		if _, err := roborepair.ParseAlgorithm(string(want)); err != nil {
			t.Errorf("%q not registered: %v", want, err)
		}
	}
}

// TestConformanceDeterminism — contract (a).
func TestConformanceDeterminism(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg roborepair.Algorithm, kernel string) {
		cfg := conformanceConfig(alg, kernel)
		cfg.Invariants.Enabled = true
		serial, err := roborepair.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := roborepair.RunMany([]roborepair.Config{cfg, cfg}, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := marshalResults(t, serial)
		for i, res := range pooled {
			if got := marshalResults(t, res); got != want {
				t.Fatalf("RunMany[%d] diverged from serial run:\n got %s\nwant %s", i, got, want)
			}
		}
	})
}

// TestConformanceCheckpointRestore — contract (b).
func TestConformanceCheckpointRestore(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg roborepair.Algorithm, kernel string) {
		cfg := conformanceConfig(alg, kernel)

		// Uninterrupted reference.
		wA, err := roborepair.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resA := marshalResults(t, wA.Run())
		traceA := wA.Trace.Events()

		// Segmented run, banking the mid-run snapshot through the binary
		// codec (the same path a crash-resumed sweep takes).
		wB, err := roborepair.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var blob []byte
		resB, err := wB.RunCheckpointed(roborepair.CheckpointOptions{
			Every: 600,
			OnSnapshot: func(s *roborepair.Snapshot) error {
				if s.T == 1200 {
					b, err := roborepair.EncodeSnapshot(s)
					if err != nil {
						return err
					}
					blob = b
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := marshalResults(t, resB); got != resA {
			t.Errorf("segmented run diverged from uninterrupted run:\n got %s\nwant %s", got, resA)
		}
		if blob == nil {
			t.Fatal("no snapshot banked at t=1200")
		}

		// Kill + restore + continue.
		snap, err := roborepair.DecodeSnapshot(blob)
		if err != nil {
			t.Fatal(err)
		}
		wC, err := roborepair.Restore(snap)
		if err != nil {
			t.Fatal(err)
		}
		if got := marshalResults(t, wC.Run()); got != resA {
			t.Errorf("restored run diverged from uninterrupted run:\n got %s\nwant %s", got, resA)
		}
		if !reflect.DeepEqual(wC.Trace.Events(), traceA) {
			t.Error("restored run trace diverged from uninterrupted run")
		}
	})
}

// conformanceFaultPlans are the chaos regimes of contract (c): a loss
// burst, a regional radio blackout dead-center in the default 400 m
// field, and a hostile-channel corruption window.
var conformanceFaultPlans = []struct{ name, spec string }{
	{"burst", "burst@600-1400=0.3"},
	{"blackout", "blackout@600-1400=200,200,100"},
	{"corrupt", "corrupt@600-1400=0.1"},
	{"drain", "drain@600-1400=0.5"},
}

// TestConformanceChaosCleanliness — contract (c).
func TestConformanceChaosCleanliness(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg roborepair.Algorithm, kernel string) {
		for _, plan := range conformanceFaultPlans {
			cfg := conformanceConfig(alg, kernel)
			cfg.Invariants.Enabled = true
			faults, err := roborepair.ParseFaultPlan(plan.spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = faults
			res, err := roborepair.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("%s: invariant violation: %v", plan.name, v)
			}
		}
	})
}

// TestConformanceObservabilityOffIsAbsent — contract (d). The
// observability stack must be a pure readout: arming invariants,
// telemetry, and the flight recorder together changes no simulation
// outcome, and disarmed, their Results sections are absent.
func TestConformanceObservabilityOffIsAbsent(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg roborepair.Algorithm, kernel string) {
		base := conformanceConfig(alg, kernel)
		wOff, err := roborepair.NewWorld(base)
		if err != nil {
			t.Fatal(err)
		}
		resOff := wOff.Run()
		if resOff.Telemetry != nil {
			t.Error("telemetry off but Results.Telemetry present")
		}
		if resOff.Recording != nil {
			t.Error("recorder off but Results.Recording present")
		}
		if resOff.Violations != nil {
			t.Error("invariants off but Results.Violations present")
		}

		armed := base
		armed.Invariants.Enabled = true
		armed.Telemetry.Enabled = true
		armed.Recorder.Enabled = true
		wOn, err := roborepair.NewWorld(armed)
		if err != nil {
			t.Fatal(err)
		}
		resOn := wOn.Run()
		if resOn.Telemetry == nil || resOn.Recording == nil {
			t.Fatal("observability armed but Results sections missing")
		}
		for _, v := range resOn.Violations {
			t.Errorf("invariant violation in fault-free run: %v", v)
		}
		if !reflect.DeepEqual(wOn.Trace.Events(), wOff.Trace.Events()) {
			t.Error("arming observability changed the event trace")
		}
		if resOn.Repairs != resOff.Repairs ||
			resOn.FailuresInjected != resOff.FailuresInjected ||
			resOn.TotalTravel != resOff.TotalTravel ||
			resOn.LocUpdateTx != resOff.LocUpdateTx {
			t.Errorf("arming observability changed outcomes: on {repairs %d, failures %d, travel %.3f, tx %d} vs off {repairs %d, failures %d, travel %.3f, tx %d}",
				resOn.Repairs, resOn.FailuresInjected, resOn.TotalTravel, resOn.LocUpdateTx,
				resOff.Repairs, resOff.FailuresInjected, resOff.TotalTravel, resOff.LocUpdateTx)
		}
	})
}
