package roborepair_test

import (
	"fmt"

	"roborepair"
)

// Run a short deterministic simulation and read the paper's three
// headline metrics from the results.
func ExampleRun() {
	cfg := roborepair.DefaultConfig()
	cfg.Algorithm = roborepair.Dynamic
	cfg.Robots = 4
	cfg.SimTime = 4000
	cfg.Seed = 1

	res, err := roborepair.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("algorithm:", res.Config.Algorithm)
	fmt.Println("repairs ≥ 1:", res.Repairs >= 1)
	fmt.Println("travel recorded:", res.AvgTravelPerFailure > 0)
	// Output:
	// algorithm: dynamic
	// repairs ≥ 1: true
	// travel recorded: true
}

// Compare two algorithms on identical deployments by fixing the seed.
func ExampleConfig() {
	base := roborepair.DefaultConfig()
	base.Robots = 4
	base.SimTime = 4000
	base.Seed = 7

	for _, alg := range []roborepair.Algorithm{roborepair.Fixed, roborepair.Dynamic} {
		cfg := base
		cfg.Algorithm = alg
		res, err := roborepair.Run(cfg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s handled failures: %v\n", alg, res.Repairs > 0)
	}
	// Output:
	// fixed handled failures: true
	// dynamic handled failures: true
}

// ParseAlgorithm converts figure-style names.
func ExampleParseAlgorithm() {
	alg, _ := roborepair.ParseAlgorithm("centralized")
	fmt.Println(alg)
	// Output:
	// centralized
}
