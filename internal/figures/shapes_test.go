package figures

import (
	"testing"

	"roborepair/internal/core"
	"roborepair/internal/scenario"
)

// TestPaperShapes is the reproduction's acceptance test: it runs a
// reduced-horizon grid and asserts the qualitative claims of the paper's
// three figures. Skipped under -short (it simulates nine full scenarios).
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario shape test")
	}
	base := scenario.DefaultConfig()
	base.SimTime = 16000
	grid, err := RunGrid(base, AllAlgorithms, []int{4, 16}, []int64{1, 2}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, robots := range []int{4, 16} {
		fx := grid.Cell(core.Fixed, robots)
		dy := grid.Cell(core.Dynamic, robots)
		ce := grid.Cell(core.Centralized, robots)

		// Figure 2 shape: the fixed algorithm has the highest motion
		// overhead ("the two algorithms have lower motion overhead than
		// the fixed algorithm").
		if fx.Travel() <= dy.Travel() {
			t.Errorf("robots=%d: fixed travel %.1f should exceed dynamic %.1f",
				robots, fx.Travel(), dy.Travel())
		}
		if fx.Travel() <= ce.Travel()*0.98 {
			t.Errorf("robots=%d: fixed travel %.1f should not be clearly below centralized %.1f",
				robots, fx.Travel(), ce.Travel())
		}

		// Figure 3 shape: distributed reports ≈ 2 hops; centralized
		// reports need more hops than the distributed ones, and more
		// hops than its own repair requests.
		if dy.ReportHops() < 1.2 || dy.ReportHops() > 3.5 {
			t.Errorf("robots=%d: dynamic report hops %.2f not ≈2", robots, dy.ReportHops())
		}
		if ce.ReportHops() <= dy.ReportHops() {
			t.Errorf("robots=%d: centralized report hops %.2f should exceed dynamic %.2f",
				robots, ce.ReportHops(), dy.ReportHops())
		}
		if ce.ReportHops() <= ce.RequestHops() {
			t.Errorf("robots=%d: report hops %.2f should exceed request hops %.2f",
				robots, ce.ReportHops(), ce.RequestHops())
		}

		// Figure 4 shape: distributed update traffic dwarfs centralized;
		// dynamic is at least fixed's level.
		if dy.UpdateTx() < 5*ce.UpdateTx() {
			t.Errorf("robots=%d: dynamic update tx %.1f not ≫ centralized %.1f",
				robots, dy.UpdateTx(), ce.UpdateTx())
		}
		if fx.UpdateTx() < 5*ce.UpdateTx() {
			t.Errorf("robots=%d: fixed update tx %.1f not ≫ centralized %.1f",
				robots, fx.UpdateTx(), ce.UpdateTx())
		}
		if dy.UpdateTx() < fx.UpdateTx()*0.95 {
			t.Errorf("robots=%d: dynamic update tx %.1f should be ≥ fixed %.1f",
				robots, dy.UpdateTx(), fx.UpdateTx())
		}
	}

	// Scalability shape: centralized hops grow with the field; the
	// distributed ones stay flat.
	ce4 := grid.Cell(core.Centralized, 4)
	ce16 := grid.Cell(core.Centralized, 16)
	if ce16.ReportHops() <= ce4.ReportHops() {
		t.Errorf("centralized report hops should grow: %.2f (4) vs %.2f (16)",
			ce4.ReportHops(), ce16.ReportHops())
	}
	if ce16.RequestHops() <= ce4.RequestHops() {
		t.Errorf("centralized request hops should grow: %.2f (4) vs %.2f (16)",
			ce4.RequestHops(), ce16.RequestHops())
	}
	dy4 := grid.Cell(core.Dynamic, 4)
	dy16 := grid.Cell(core.Dynamic, 16)
	if diff := dy16.ReportHops() - dy4.ReportHops(); diff > 0.7 || diff < -0.7 {
		t.Errorf("dynamic report hops should stay flat: %.2f (4) vs %.2f (16)",
			dy4.ReportHops(), dy16.ReportHops())
	}
}
