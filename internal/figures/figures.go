// Package figures regenerates the paper's evaluation artifacts: Figure 2
// (robot traveling distance per failure), Figure 3 (message hops per
// failure), Figure 4 (location-update transmissions per failure), and the
// two ablations the text claims results for (square-vs-hexagon partition,
// efficient broadcast). One Grid of simulation runs feeds every figure, so
// the three figures are mutually consistent the way the paper's are.
package figures

import (
	"fmt"

	"roborepair/internal/algorithm"
	"roborepair/internal/core"
	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/report"
	"roborepair/internal/runner"
	"roborepair/internal/scenario"
)

// RunOptions controls how a figure's grid of simulations executes. The
// zero value runs on every available core with no progress reporting.
type RunOptions struct {
	// Procs is the parallel worker count; ≤ 0 selects GOMAXPROCS.
	Procs int
	// Progress, when non-nil, receives one line per completed run (in
	// completion order).
	Progress func(string)
	// OnStats, when non-nil, receives the engine's aggregate throughput
	// statistics after each grid completes.
	OnStats func(runner.Stats)
}

// run executes a prepared job list under the options.
func (o RunOptions) run(jobs []runner.Job) ([]runner.Result, error) {
	var onResult func(runner.Result)
	if o.Progress != nil {
		progress := o.Progress
		onResult = func(r runner.Result) {
			if r.Err == nil {
				progress(r.Res.Summary())
			}
		}
	}
	results, stats, err := runner.Run(jobs, runner.Options{Procs: o.Procs, OnResult: onResult})
	if err != nil {
		return nil, err
	}
	if o.OnStats != nil {
		o.OnStats(stats)
	}
	return results, nil
}

// PaperRobotCounts are the maintenance-robot counts of the paper's
// experiments ("we run experiments with 4, 9, and 16 robots").
var PaperRobotCounts = []int{4, 9, 16}

// AllAlgorithms lists every registered coordination algorithm: the
// paper's three first, in figure order, then any registered extensions
// in registry (name) order — so a newly registered algorithm appears in
// every figure and summary table without edits here.
var AllAlgorithms = allAlgorithms()

func allAlgorithms() []core.Algorithm {
	out := []core.Algorithm{core.Fixed, core.Dynamic, core.Centralized}
	paper := map[core.Algorithm]bool{core.Fixed: true, core.Dynamic: true, core.Centralized: true}
	for _, alg := range algorithm.All() {
		if !paper[alg] {
			out = append(out, alg)
		}
	}
	return out
}

// Cell aggregates repeated runs of one (algorithm, robots) configuration.
type Cell struct {
	Algorithm core.Algorithm
	Robots    int
	Runs      []scenario.Results
}

// mean applies f to every run and averages.
func (c *Cell) mean(f func(scenario.Results) float64) float64 {
	if len(c.Runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range c.Runs {
		sum += f(r)
	}
	return sum / float64(len(c.Runs))
}

// Travel is the Figure 2 quantity: mean robot traveling distance per
// failure, in meters.
func (c *Cell) Travel() float64 {
	return c.mean(func(r scenario.Results) float64 { return r.AvgTravelPerFailure })
}

// TravelCI95 is the 95% confidence half-width of Travel across seeds
// (0 with fewer than two runs).
func (c *Cell) TravelCI95() float64 {
	var acc metrics.Accumulator
	for _, r := range c.Runs {
		acc.Add(r.AvgTravelPerFailure)
	}
	return acc.CI95()
}

// ReportHops is the Figure 3 failure-report quantity.
func (c *Cell) ReportHops() float64 {
	return c.mean(func(r scenario.Results) float64 { return r.AvgReportHops })
}

// RequestHops is the Figure 3 repair-request quantity (centralized only).
func (c *Cell) RequestHops() float64 {
	return c.mean(func(r scenario.Results) float64 { return r.AvgRequestHops })
}

// UpdateTx is the Figure 4 quantity: location-update transmissions per
// failure handled.
func (c *Cell) UpdateTx() float64 {
	return c.mean(func(r scenario.Results) float64 { return r.LocUpdateTxPerFailure })
}

// Repairs is the mean repair count per run.
func (c *Cell) Repairs() float64 {
	return c.mean(func(r scenario.Results) float64 { return float64(r.Repairs) })
}

// Grid is a matrix of experiment cells keyed by (algorithm, robots).
type Grid struct {
	Base   scenario.Config
	Robots []int
	Algs   []core.Algorithm
	cells  map[string]*Cell
}

func key(a core.Algorithm, robots int) string {
	return fmt.Sprintf("%s/%d", a, robots)
}

// Cell returns the cell for (a, robots), or nil when absent.
func (g *Grid) Cell(a core.Algorithm, robots int) *Cell { return g.cells[key(a, robots)] }

// RunGrid executes every (algorithm × robots × seed) combination on the
// parallel engine. Cell contents are collected in stable (alg, robots,
// seed) order, so the tables are identical whatever the worker count.
func RunGrid(base scenario.Config, algs []core.Algorithm, robots []int, seeds []int64, opts RunOptions) (*Grid, error) {
	g := &Grid{Base: base, Robots: robots, Algs: algs, cells: make(map[string]*Cell)}
	var jobs []runner.Job
	for _, alg := range algs {
		for _, n := range robots {
			for _, seed := range seeds {
				cfg := base
				cfg.Algorithm = alg
				cfg.Robots = n
				cfg.Seed = seed
				jobs = append(jobs, runner.Job{Config: cfg})
			}
		}
	}
	results, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, alg := range algs {
		for _, n := range robots {
			cell := &Cell{Algorithm: alg, Robots: n}
			for range seeds {
				cell.Runs = append(cell.Runs, results[i].Res)
				i++
			}
			g.cells[key(alg, n)] = cell
		}
	}
	return g, nil
}

// Fig2Table renders Figure 2: average robot traveling distance per failure
// as a function of the number of robots.
func (g *Grid) Fig2Table() *report.Table {
	t := report.NewTable(
		"Figure 2 — average robot traveling distance per failure (m)",
		"robots", "fixed", "dynamic", "centralized", "dynamic_saving_vs_fixed_%")
	fmtCell := func(c *Cell) string {
		if c == nil {
			return ""
		}
		if ci := c.TravelCI95(); ci > 0 {
			return report.F1(c.Travel()) + "±" + report.F1(ci)
		}
		return report.F1(c.Travel())
	}
	for _, n := range g.Robots {
		fx := g.Cell(core.Fixed, n)
		dy := g.Cell(core.Dynamic, n)
		ce := g.Cell(core.Centralized, n)
		row := []string{report.I(n), fmtCell(fx), fmtCell(dy), fmtCell(ce), ""}
		if fx != nil && dy != nil && fx.Travel() > 0 {
			row[4] = report.F1((fx.Travel() - dy.Travel()) / fx.Travel() * 100)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig3Table renders Figure 3: average message-passing hops per failure.
func (g *Grid) Fig3Table() *report.Table {
	t := report.NewTable(
		"Figure 3 — average message passing hops per failure",
		"robots", "centralized_report", "centralized_request", "dynamic_report", "fixed_report")
	for _, n := range g.Robots {
		row := []string{report.I(n), "", "", "", ""}
		if ce := g.Cell(core.Centralized, n); ce != nil {
			row[1] = report.F(ce.ReportHops())
			row[2] = report.F(ce.RequestHops())
		}
		if dy := g.Cell(core.Dynamic, n); dy != nil {
			row[3] = report.F(dy.ReportHops())
		}
		if fx := g.Cell(core.Fixed, n); fx != nil {
			row[4] = report.F(fx.ReportHops())
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4Table renders Figure 4: average number of transmissions for location
// update per failure.
func (g *Grid) Fig4Table() *report.Table {
	t := report.NewTable(
		"Figure 4 — average transmissions for location update per failure",
		"robots", "dynamic", "fixed", "centralized")
	for _, n := range g.Robots {
		row := []string{report.I(n), "", "", ""}
		if dy := g.Cell(core.Dynamic, n); dy != nil {
			row[1] = report.F1(dy.UpdateTx())
		}
		if fx := g.Cell(core.Fixed, n); fx != nil {
			row[2] = report.F1(fx.UpdateTx())
		}
		if ce := g.Cell(core.Centralized, n); ce != nil {
			row[3] = report.F1(ce.UpdateTx())
		}
		t.AddRow(row...)
	}
	return t
}

// SummaryTable renders the full pipeline counts of every cell.
func (g *Grid) SummaryTable() *report.Table {
	t := report.NewTable(
		"Run summary",
		"algorithm", "robots", "failures", "reports", "repairs",
		"travel_m", "report_hops", "request_hops", "update_tx")
	for _, alg := range g.Algs {
		for _, n := range g.Robots {
			c := g.Cell(alg, n)
			if c == nil {
				continue
			}
			t.AddRow(
				alg.String(), report.I(n),
				report.F1(c.mean(func(r scenario.Results) float64 { return float64(r.FailuresInjected) })),
				report.F1(c.mean(func(r scenario.Results) float64 { return float64(r.ReportsDelivered) })),
				report.F1(c.Repairs()),
				report.F1(c.Travel()),
				report.F(c.ReportHops()),
				report.F(c.RequestHops()),
				report.F1(c.UpdateTx()),
			)
		}
	}
	return t
}

// AblationHex compares square and hexagonal partitions for the fixed
// algorithm (§4.3.1: "other partition methods (e.g., hexagon partition)
// show negligible difference in the overheads").
func AblationHex(base scenario.Config, robots []int, seeds []int64, opts RunOptions) (*report.Table, error) {
	t := report.NewTable(
		"Ablation — fixed algorithm, square vs hexagonal partition",
		"robots", "square_travel_m", "hex_travel_m", "square_update_tx", "hex_update_tx")
	kinds := []geom.PartitionKind{geom.PartitionSquare, geom.PartitionHex}
	var jobs []runner.Job
	for _, n := range robots {
		for _, kind := range kinds {
			for _, seed := range seeds {
				cfg := base
				cfg.Algorithm = core.Fixed
				cfg.Robots = n
				cfg.Seed = seed
				cfg.Partition = kind
				jobs = append(jobs, runner.Job{Config: cfg})
			}
		}
	}
	results, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, n := range robots {
		var cells [2]*Cell
		for k := range kinds {
			cell := &Cell{Algorithm: core.Fixed, Robots: n}
			for range seeds {
				cell.Runs = append(cell.Runs, results[i].Res)
				i++
			}
			cells[k] = cell
		}
		t.AddRow(report.I(n),
			report.F1(cells[0].Travel()), report.F1(cells[1].Travel()),
			report.F1(cells[0].UpdateTx()), report.F1(cells[1].UpdateTx()))
	}
	return t, nil
}

// AblationBroadcast compares blind flooding against the §4.3.2 efficient
// broadcast for both distributed algorithms.
func AblationBroadcast(base scenario.Config, robots []int, seeds []int64, opts RunOptions) (*report.Table, error) {
	t := report.NewTable(
		"Ablation — location-update flood: blind vs efficient broadcast (update tx / failure)",
		"robots", "fixed_blind", "fixed_efficient", "dynamic_blind", "dynamic_efficient")
	algs := []core.Algorithm{core.Fixed, core.Dynamic}
	modes := []bool{false, true}
	var jobs []runner.Job
	for _, n := range robots {
		for _, alg := range algs {
			for _, efficient := range modes {
				for _, seed := range seeds {
					cfg := base
					cfg.Algorithm = alg
					cfg.Robots = n
					cfg.Seed = seed
					cfg.EfficientBroadcast = efficient
					jobs = append(jobs, runner.Job{Config: cfg})
				}
			}
		}
	}
	results, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, n := range robots {
		vals := make(map[string]float64, 4)
		for _, alg := range algs {
			for _, efficient := range modes {
				cell := &Cell{Algorithm: alg, Robots: n}
				for range seeds {
					cell.Runs = append(cell.Runs, results[i].Res)
					i++
				}
				vals[fmt.Sprintf("%s/%v", alg, efficient)] = cell.UpdateTx()
			}
		}
		t.AddRow(report.I(n),
			report.F1(vals["fixed/false"]), report.F1(vals["fixed/true"]),
			report.F1(vals["dynamic/false"]), report.F1(vals["dynamic/true"]))
	}
	return t, nil
}

// CoverageComparison demonstrates the paper's premise — replacement
// maintains sensing coverage — by comparing a maintained network against
// one whose robots all break down at the start (so failures accumulate
// unrepaired). Uses a 20 m sensing radius.
func CoverageComparison(base scenario.Config, robots int, seeds []int64, opts RunOptions) (*report.Table, error) {
	t := report.NewTable(
		"Coverage maintenance — robots vs unmaintained decay (sensing radius 20 m)",
		"configuration", "mean_coverage", "min_coverage", "repairs")
	type variant struct {
		name string
		mut  func(*scenario.Config)
	}
	variants := []variant{
		{"maintained (dynamic)", func(c *scenario.Config) { c.Algorithm = core.Dynamic }},
		{"maintained (centralized)", func(c *scenario.Config) { c.Algorithm = core.Centralized }},
		{"unmaintained (robots broken)", func(c *scenario.Config) {
			c.Algorithm = core.Dynamic
			c.RobotFailures = c.Robots
			c.RobotFailureTime = 0
		}},
	}
	var jobs []runner.Job
	for _, v := range variants {
		for _, seed := range seeds {
			cfg := base
			cfg.Robots = robots
			cfg.Seed = seed
			cfg.SensingRange = 20
			v.mut(&cfg)
			jobs = append(jobs, runner.Job{Config: cfg, Tag: v.name})
		}
	}
	results, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, v := range variants {
		var mean, minv, repairs float64
		for range seeds {
			res := results[i].Res
			i++
			mean += res.MeanCoverage
			minv += res.MinCoverage
			repairs += float64(res.Repairs)
		}
		n := float64(len(seeds))
		t.AddRow(v.name, report.F(mean/n), report.F(minv/n), report.F1(repairs/n))
	}
	return t, nil
}

// ThresholdSweep exposes the freshness/overhead trade-off of the 20 m
// location-update threshold (§4.2) for one algorithm.
func ThresholdSweep(base scenario.Config, alg core.Algorithm, robots int, thresholds []float64, seeds []int64, opts RunOptions) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Sweep — location-update threshold (%s, %d robots)", alg, robots),
		"threshold_m", "update_tx_per_failure", "report_delivery", "repairs")
	var jobs []runner.Job
	for _, th := range thresholds {
		for _, seed := range seeds {
			cfg := base
			cfg.Algorithm = alg
			cfg.Robots = robots
			cfg.Seed = seed
			cfg.UpdateThreshold = th
			jobs = append(jobs, runner.Job{Config: cfg, Tag: th})
		}
	}
	results, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, th := range thresholds {
		cell := &Cell{Algorithm: alg, Robots: robots}
		var delivery float64
		for range seeds {
			res := results[i].Res
			i++
			cell.Runs = append(cell.Runs, res)
			delivery += res.ReportDeliveryRatio()
		}
		delivery /= float64(len(seeds))
		t.AddRow(report.F1(th), report.F1(cell.UpdateTx()), report.F(delivery), report.F1(cell.Repairs()))
	}
	return t, nil
}
