package figures

import (
	"fmt"
	"strings"
	"testing"

	"roborepair/internal/core"
	"roborepair/internal/scenario"
)

func tinyBase() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.SimTime = 3000
	return cfg
}

func tinyGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := RunGrid(tinyBase(), AllAlgorithms, []int{4}, []int64{1}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunGridPopulatesCells(t *testing.T) {
	g := tinyGrid(t)
	for _, alg := range AllAlgorithms {
		c := g.Cell(alg, 4)
		if c == nil || len(c.Runs) != 1 {
			t.Fatalf("cell %v missing or empty", alg)
		}
		if c.Travel() <= 0 {
			t.Fatalf("cell %v has no travel", alg)
		}
	}
	if g.Cell(core.Fixed, 99) != nil {
		t.Fatal("absent cell should be nil")
	}
}

func TestRunGridProgressCallback(t *testing.T) {
	var lines []string
	_, err := RunGrid(tinyBase(), []core.Algorithm{core.Dynamic}, []int{4}, []int64{1, 2},
		RunOptions{Procs: 1, Progress: func(s string) { lines = append(lines, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("progress lines = %d, want 2", len(lines))
	}
}

func TestFigureTablesRender(t *testing.T) {
	g := tinyGrid(t)
	f2 := g.Fig2Table().String()
	if !strings.Contains(f2, "Figure 2") || !strings.Contains(f2, "4") {
		t.Fatalf("Fig2 malformed:\n%s", f2)
	}
	f3 := g.Fig3Table().String()
	if !strings.Contains(f3, "centralized_report") {
		t.Fatalf("Fig3 malformed:\n%s", f3)
	}
	f4 := g.Fig4Table().String()
	if !strings.Contains(f4, "Figure 4") {
		t.Fatalf("Fig4 malformed:\n%s", f4)
	}
	sum := g.SummaryTable()
	if sum.NumRows() != len(AllAlgorithms) {
		t.Fatalf("summary rows = %d", sum.NumRows())
	}
}

func TestFig2TableSavingsColumn(t *testing.T) {
	g := tinyGrid(t)
	tb := g.Fig2Table()
	if tb.Cell(0, 4) == "" {
		t.Fatal("dynamic-vs-fixed savings column empty")
	}
}

func TestCellMeansAcrossSeeds(t *testing.T) {
	g, err := RunGrid(tinyBase(), []core.Algorithm{core.Dynamic}, []int{4}, []int64{1, 2}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Cell(core.Dynamic, 4)
	if len(c.Runs) != 2 {
		t.Fatalf("runs = %d", len(c.Runs))
	}
	want := (c.Runs[0].AvgTravelPerFailure + c.Runs[1].AvgTravelPerFailure) / 2
	if got := c.Travel(); got != want {
		t.Fatalf("Travel = %v, want mean %v", got, want)
	}
	var empty Cell
	if empty.Travel() != 0 {
		t.Fatal("empty cell should average to 0")
	}
}

func TestAblationHexRuns(t *testing.T) {
	tb, err := AblationHex(tinyBase(), []int{4}, []int64{1}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Cell(0, 1) == "" || tb.Cell(0, 2) == "" {
		t.Fatalf("hex ablation cells empty:\n%s", tb.String())
	}
}

func TestAblationBroadcastReducesTransmissions(t *testing.T) {
	tb, err := AblationBroadcast(tinyBase(), []int{4}, []int64{1}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blind := tb.Cell(0, 3)
	efficient := tb.Cell(0, 4)
	if blind == "" || efficient == "" {
		t.Fatalf("broadcast ablation cells empty:\n%s", tb.String())
	}
	var bv, ev float64
	if _, err := fmtSscan(blind, &bv); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(efficient, &ev); err != nil {
		t.Fatal(err)
	}
	if ev >= bv {
		t.Fatalf("efficient broadcast did not reduce dynamic update tx: %v ≥ %v", ev, bv)
	}
}

func TestThresholdSweepMonotonicity(t *testing.T) {
	tb, err := ThresholdSweep(tinyBase(), core.Dynamic, 4, []float64{10, 40}, []int64{1}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var tx10, tx40 float64
	if _, err := fmtSscan(tb.Cell(0, 1), &tx10); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tb.Cell(1, 1), &tx40); err != nil {
		t.Fatal(err)
	}
	// Coarser updates mean fewer location-update transmissions.
	if tx40 >= tx10 {
		t.Fatalf("threshold 40 tx %v should be below threshold 10 tx %v", tx40, tx10)
	}
}

// fmtSscan wraps fmt.Sscan for table cells.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestCoverageComparisonMaintainedBeatsDecay(t *testing.T) {
	base := tinyBase()
	base.SimTime = 12000 // ~¾ of a mean lifetime of decay
	tb, err := CoverageComparison(base, 4, []int64{1}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var maintainedMin, unmaintainedMin float64
	if _, err := fmtSscan(tb.Cell(0, 2), &maintainedMin); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tb.Cell(2, 2), &unmaintainedMin); err != nil {
		t.Fatal(err)
	}
	if maintainedMin <= unmaintainedMin {
		t.Fatalf("maintenance did not preserve coverage: %v vs %v",
			maintainedMin, unmaintainedMin)
	}
	// The unmaintained network visibly decays over ~45% of positions
	// failing in ¾ lifetime.
	if unmaintainedMin > maintainedMin-0.05 {
		t.Fatalf("decay too small to be meaningful: %v vs %v",
			unmaintainedMin, maintainedMin)
	}
}
