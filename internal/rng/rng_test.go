package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := Split(7, "deployment")
	b := Split(7, "deployment")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split with identical (seed, name) diverged")
		}
	}
}

func TestSplitStreamsIndependentByName(t *testing.T) {
	a := Split(7, "deployment")
	b := Split(7, "lifetimes")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently-named streams matched %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) = %v out of range", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	s := New(3)
	if v := s.Uniform(5, 5); v != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", v)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(11)
	const mean = 16000.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("empirical mean %v deviates >2%% from %v", got, mean)
	}
}

func TestExponentialAlwaysPositive(t *testing.T) {
	s := New(5)
	for i := 0; i < 100000; i++ {
		if v := s.Exponential(1); v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exponential produced invalid draw %v", v)
		}
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestJitter(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		v := s.Jitter(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Jitter(10) = %v out of range", v)
		}
	}
	if s.Jitter(0) != 0 {
		t.Fatal("Jitter(0) should be 0")
	}
	if s.Jitter(-1) != 0 {
		t.Fatal("Jitter(-1) should be 0")
	}
}

func TestIntn(t *testing.T) {
	s := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) only produced %d distinct values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(19)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

// Property: exponential draws scale linearly with the mean (same stream
// position yields draw proportional to mean).
func TestPropertyExponentialScales(t *testing.T) {
	prop := func(seed int64, scaleRaw uint8) bool {
		scale := float64(scaleRaw%100) + 1
		a := New(seed)
		b := New(seed)
		x := a.Exponential(1)
		y := b.Exponential(scale)
		return math.Abs(y-scale*x) < 1e-9*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Uniform(lo,hi) stays within [lo,hi) for any ordered pair.
func TestPropertyUniformBounds(t *testing.T) {
	prop := func(seed int64, a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := New(seed).Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
