package rng

import "testing"

// drawMix consumes a deterministic mix of every draw kind the simulator
// uses and returns a fingerprint sequence. Exercising all kinds matters:
// the draw counter must be exact whatever distribution consumed the steps
// (Intn and Normal take a variable number of generator steps per call).
func drawMix(s *Source, n int) []float64 {
	out := make([]float64, 0, n*6)
	for i := 0; i < n; i++ {
		out = append(out, s.Float64())
		out = append(out, s.Uniform(-5, 11))
		out = append(out, float64(s.Intn(1000)))
		out = append(out, s.Exponential(250))
		out = append(out, s.Normal(3, 7))
		out = append(out, s.Jitter(9))
	}
	return out
}

func TestStateRoundTrip(t *testing.T) {
	for _, warmup := range []int{0, 1, 17, 400} {
		s := Split(42, "round-trip")
		drawMix(s, warmup)
		st := s.State()
		if st.Name != "round-trip" {
			t.Fatalf("state name = %q, want round-trip", st.Name)
		}

		// State out = state in: capturing is non-perturbing and restoring
		// reproduces the position exactly.
		r := Restore(st)
		if got := r.State(); got != st {
			t.Fatalf("warmup %d: restored state = %+v, want %+v", warmup, got, st)
		}

		// The next 1000 draws are identical.
		want := drawMix(s, 1000/6+1)
		got := drawMix(r, 1000/6+1)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("warmup %d: draw %d: restored %v, original %v", warmup, i, got[i], want[i])
			}
		}
	}
}

func TestStateCaptureDoesNotPerturb(t *testing.T) {
	a, b := Split(7, "x"), Split(7, "x")
	drawMix(a, 3)
	drawMix(b, 3)
	_ = a.State() // capture on a only
	wa, wb := drawMix(a, 50), drawMix(b, 50)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("draw %d diverged after State(): %v vs %v", i, wa[i], wb[i])
		}
	}
}

func TestDrawsCountsEveryKind(t *testing.T) {
	s := New(1)
	if s.Draws() != 0 {
		t.Fatalf("fresh stream draws = %d, want 0", s.Draws())
	}
	s.Float64()
	if s.Draws() != 1 {
		t.Fatalf("after Float64 draws = %d, want 1", s.Draws())
	}
	before := s.Draws()
	s.Perm(32) // variable number of steps; must all be counted
	if s.Draws() <= before {
		t.Fatalf("Perm consumed no counted draws")
	}
}

func TestShuffleRoundTrip(t *testing.T) {
	s := Split(3, "shuffle")
	s.Shuffle(100, func(i, j int) {})
	st := s.State()
	r := Restore(st)
	a := s.Perm(64)
	b := r.Perm(64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-shuffle Perm diverged at %d", i)
		}
	}
}
