// Package rng provides the deterministic random sources used across the
// simulator: a splittable seeded PRNG plus the distributions the paper's
// experiments need (uniform deployment, exponential lifetimes).
//
// Every stochastic component draws from its own named stream split off the
// run seed, so adding randomness to one subsystem never perturbs another —
// a requirement for the paired-seed comparisons in the benchmark harness.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream.
//
// Every draw advances the underlying generator by a counted number of
// steps, so a stream's full state is the pair (seed, draws): State captures
// it and Restore rebuilds a stream that continues bit-identically. That is
// what makes full-simulator checkpoints possible without serializing
// math/rand internals.
type Source struct {
	r    *rand.Rand
	c    counting
	name string
	seed int64 // the seed actually fed to rand.NewSource (post-Split mix)
}

// counting wraps the stdlib generator and counts its state steps. Both
// Int63 and Uint64 advance math/rand's additive-lagged-Fibonacci state by
// exactly one step, so one counter captures the position regardless of
// which distribution methods consumed the draws.
type counting struct {
	src   rand.Source64
	draws uint64
}

func (c *counting) Int63() int64 { c.draws++; return c.src.Int63() }

func (c *counting) Uint64() uint64 { c.draws++; return c.src.Uint64() }

func (c *counting) Seed(seed int64) { c.src.Seed(seed); c.draws = 0 }

// StreamState is the serializable position of one stream: rebuildable with
// Restore, comparable for checkpoint verification.
type StreamState struct {
	// Name is the stream's Split name ("" for New-built streams).
	Name string
	// Seed is the mixed seed of the underlying generator.
	Seed int64
	// Draws is the number of generator steps consumed so far.
	Draws uint64
}

// New returns a stream seeded with seed.
func New(seed int64) *Source {
	s := &Source{seed: seed}
	// The stdlib source implements Source64; keeping it (rather than
	// substituting our own generator) preserves the exact draw sequences
	// of every historical run.
	s.c.src = rand.NewSource(seed).(rand.Source64)
	s.r = rand.New(&s.c)
	return s
}

// Split derives an independent child stream from a parent seed and a stream
// name. The same (seed, name) pair always yields the same stream.
func Split(seed int64, name string) *Source {
	h := fnv.New64a()
	// fnv never returns a write error.
	_, _ = h.Write([]byte(name))
	mixed := seed ^ int64(h.Sum64())
	s := New(mixed)
	s.name = name
	return s
}

// Name reports the stream's Split name ("" for New-built streams).
func (s *Source) Name() string { return s.name }

// Draws reports the number of generator steps consumed so far.
func (s *Source) Draws() uint64 { return s.c.draws }

// State captures the stream's exact position. The stream itself is not
// perturbed.
func (s *Source) State() StreamState {
	return StreamState{Name: s.name, Seed: s.seed, Draws: s.c.draws}
}

// Restore rebuilds a stream from a captured state by reseeding and
// fast-forwarding the counted number of steps. The returned stream's next
// draws are bit-identical to the original's.
func Restore(st StreamState) *Source {
	s := New(st.Seed)
	s.name = st.Name
	for i := uint64(0); i < st.Draws; i++ {
		s.c.src.Uint64()
	}
	s.c.draws = st.Draws
	return s
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Exponential returns a draw from the exponential distribution with the
// given mean. Mean must be positive; the draw is always finite and positive.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("rng: exponential mean %v not positive", mean))
	}
	u := s.r.Float64()
	// Guard against log(0); Float64 is in [0,1) so 1-u is in (0,1].
	v := -math.Log(1 - u)
	if v <= 0 {
		v = math.SmallestNonzeroFloat64
	}
	return mean * v
}

// Jitter returns a uniform value in [0, width). Used to desynchronize
// periodic beacon timers the way real deployments are desynchronized.
func (s *Source) Jitter(width float64) float64 {
	if width <= 0 {
		return 0
	}
	return s.r.Float64() * width
}

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
