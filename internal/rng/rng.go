// Package rng provides the deterministic random sources used across the
// simulator: a splittable seeded PRNG plus the distributions the paper's
// experiments need (uniform deployment, exponential lifetimes).
//
// Every stochastic component draws from its own named stream split off the
// run seed, so adding randomness to one subsystem never perturbs another —
// a requirement for the paired-seed comparisons in the benchmark harness.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream.
type Source struct {
	r *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream from a parent seed and a stream
// name. The same (seed, name) pair always yields the same stream.
func Split(seed int64, name string) *Source {
	h := fnv.New64a()
	// fnv never returns a write error.
	_, _ = h.Write([]byte(name))
	mixed := seed ^ int64(h.Sum64())
	return New(mixed)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Exponential returns a draw from the exponential distribution with the
// given mean. Mean must be positive; the draw is always finite and positive.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("rng: exponential mean %v not positive", mean))
	}
	u := s.r.Float64()
	// Guard against log(0); Float64 is in [0,1) so 1-u is in (0,1].
	v := -math.Log(1 - u)
	if v <= 0 {
		v = math.SmallestNonzeroFloat64
	}
	return mean * v
}

// Jitter returns a uniform value in [0, width). Used to desynchronize
// periodic beacon timers the way real deployments are desynchronized.
func (s *Source) Jitter(width float64) float64 {
	if width <= 0 {
		return 0
	}
	return s.r.Float64() * width
}

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
