package robot

import (
	"roborepair/internal/energy"
	"roborepair/internal/geom"
	"roborepair/internal/sim"
)

// BatteryParams configures the finite-energy extension for one robot. The
// zero value disables the layer entirely: no battery object is allocated
// and every battery hook reduces to one nil check, so battery-off runs
// stay bit-identical to builds that predate the layer.
type BatteryParams struct {
	// CapacityJ is the pack size in joules; > 0 enables the layer.
	CapacityJ float64
	// RechargeW is the depot charge rate in watts. 0 means no charger
	// exists: robots never decline work or detour, they spend the pack and
	// die in place (fleet starvation).
	RechargeW float64
	// ReserveJ is the safety margin the admission check keeps on top of a
	// mission's estimated cost (and the level a recharge detour aims to
	// arrive with).
	ReserveJ float64
	// Model supplies the idle and motion power draw.
	Model energy.Model
	// Depot is where robots recharge (the scenario layer points it at the
	// field's restocking depot).
	Depot geom.Point
}

// Enabled reports whether the battery layer is on.
func (b BatteryParams) Enabled() bool { return b.CapacityJ > 0 }

const (
	// batteryEpsJ is the exhaustion threshold: lazy accrual drains the
	// pack in float arithmetic, so "empty" is anything within a microjoule
	// of zero.
	batteryEpsJ = 1e-6
	// batteryFullFrac is the state of charge above which a robot considers
	// itself full and will not detour to top up (avoids zero-progress
	// recharge loops when a mission is simply too big for the pack).
	batteryFullFrac = 0.999
)

// currentPowerW is the instantaneous draw given the robot's motion state
// plus any adversarial drain window the chaos layer has opened.
func (r *Robot) currentPowerW() float64 {
	m := r.cfg.Battery.Model
	p := m.IdlePowerW
	if r.moving {
		p = m.MotionPowerW(r.cfg.Speed)
	}
	return p + r.extraDrainW
}

// accrueEnergy folds the interval since the last accrual into the ledger.
// Power is piecewise-constant between events, so calling this at every
// power-mode transition (motion start/stop, charge start/stop, drain
// window edges, death clock) integrates the draw exactly. Idempotent at a
// fixed instant.
func (r *Robot) accrueEnergy() {
	if r.bat == nil || r.died || r.failed {
		return
	}
	now := r.sched.Now()
	dt := float64(now.Sub(r.batAt))
	if dt <= 0 {
		return
	}
	r.batAt = now
	if r.charging {
		r.bat.Charge(r.cfg.Battery.RechargeW * dt)
		return
	}
	r.bat.Drain(r.currentPowerW() * dt)
}

// SettleEnergy folds lazily-accrued energy up to the current instant into
// the ledger. The scenario layer calls it at end of run before reading
// final ledgers; it is idempotent.
func (r *Robot) SettleEnergy() { r.accrueEnergy() }

// nearlyFull reports a state of charge above batteryFullFrac.
func (r *Robot) nearlyFull() bool {
	return r.bat.RemainingJ >= batteryFullFrac*r.bat.CapacityJ
}

// idleForRecharge reports whether the robot may abandon what it is doing
// for a depot detour: no task in hand or queued (relocation legs are
// preemptible and do not count).
func (r *Robot) idleForRecharge() bool {
	return r.current == nil && len(r.queue) == 0 && !r.rechargeLeg && !r.charging
}

// idleThresholdJ is the battery level at which an idle robot should head
// for the depot: enough to get there plus the configured reserve.
func (r *Robot) idleThresholdJ() float64 {
	bp := &r.cfg.Battery
	return bp.ReserveJ + bp.Model.MotionEnergyJ(r.Pos().Dist(bp.Depot), r.cfg.Speed)
}

// rearmDeathClock re-schedules the battery wake-up for the robot's current
// power mode: at the go-recharge threshold when idle with a charger
// available, otherwise at the predicted zero crossing. Called after every
// power-mode transition; cheap and tolerant of spurious firings (the
// clock handler re-validates).
func (r *Robot) rearmDeathClock() {
	if r.bat == nil || r.died || r.failed {
		return
	}
	r.sched.Cancel(r.deathEv)
	if r.charging {
		return
	}
	p := r.currentPowerW()
	if p <= 0 {
		return
	}
	target := 0.0
	if r.cfg.Battery.RechargeW > 0 && r.idleForRecharge() {
		if th := r.idleThresholdJ(); th < r.bat.RemainingJ || !r.nearlyFull() {
			target = th
		}
		// else: even a full pack cannot cover the depot trip; ride it down.
	}
	eta := (r.bat.RemainingJ - target) / p
	if eta < 0 {
		eta = 0
	}
	r.deathEv = r.sched.After(sim.Duration(eta), r.batteryClock)
}

// batteryClock fires when the pack is predicted to hit the current target
// level. It re-validates against the live ledger (power may have changed
// since arming), then either detours to recharge, dies in place, or
// re-arms.
func (r *Robot) batteryClock() {
	if r.bat == nil || r.died || r.failed || r.charging {
		return
	}
	r.accrueEnergy()
	if r.cfg.Battery.RechargeW > 0 && r.idleForRecharge() && !r.nearlyFull() &&
		r.bat.RemainingJ <= r.idleThresholdJ()+batteryEpsJ {
		r.goRecharge(nil)
		return
	}
	if r.bat.RemainingJ <= batteryEpsJ {
		r.dieInPlace()
		return
	}
	r.rearmDeathClock()
}

// dieInPlace is the battery's terminal state: the robot becomes a failed
// robot exactly where it stands, and the ordinary stranding/liveness
// machinery (OnFail, heartbeat timeouts, manager redispatch) absorbs it.
func (r *Robot) dieInPlace() {
	// Burn the float residue into the spent ledger so the conservation law
	// closes exactly: spent + remaining == capacity + recharged.
	r.bat.SpentJ += r.bat.RemainingJ
	r.bat.RemainingJ = 0
	r.died = true
	r.diedAt = r.sched.Now()
	r.FailNow()
	if r.hooks.OnBatteryDeath != nil {
		r.hooks.OnBatteryDeath(r)
	}
}

// missionEnergyJ estimates the energy to serve t from the robot's current
// position: travel (via the restock depot when out of cargo), the service
// stop, and the return leg to the charger. Adversarial drain windows are
// deliberately not modeled — they are surprises, and surviving a plan that
// was sound when admitted is exactly what the reserve is for.
func (r *Robot) missionEnergyJ(t Task) float64 {
	bp := &r.cfg.Battery
	v := r.cfg.Speed
	pos := r.Pos()
	var travel float64
	if r.cargo == 0 {
		travel = bp.Model.MotionEnergyJ(pos.Dist(r.cfg.Depot), v) +
			bp.Model.MotionEnergyJ(r.cfg.Depot.Dist(t.Loc), v)
	} else {
		travel = bp.Model.MotionEnergyJ(pos.Dist(t.Loc), v)
	}
	return travel + bp.Model.IdleEnergyJ(float64(r.cfg.ServiceTime)) +
		bp.Model.MotionEnergyJ(t.Loc.Dist(bp.Depot), v)
}

// declinesForRecharge is the admission rule: accept a task only if the
// pack covers the mission plus the reserve. Tasks no full pack could cover
// are accepted anyway (declining forever would serve nobody), as are
// tasks reaching an effectively full robot.
func (r *Robot) declinesForRecharge(t Task) bool {
	if r.bat == nil || r.cfg.Battery.RechargeW <= 0 || r.died || r.failed {
		return false
	}
	need := r.missionEnergyJ(t) + r.cfg.Battery.ReserveJ
	if r.bat.RemainingJ >= need {
		return false
	}
	if need > r.bat.CapacityJ || r.nearlyFull() {
		return false
	}
	return true
}

// goRecharge hands every held task back (declined is the task whose
// admission check tripped, nil on an idle-threshold detour) and starts the
// leg to the depot charger.
func (r *Robot) goRecharge(declined *Task) {
	r.interruptRelocation()
	var handed []Task
	if declined != nil {
		handed = append(handed, *declined)
	}
	handed = append(handed, r.queue...)
	r.queue = nil
	if r.seen != nil {
		for i := range handed {
			delete(r.seen, handed[i].Failed)
		}
	}
	// Flag first: a handed-off task that bounces straight back (no other
	// robot can take it) must queue for after the recharge, not re-enter
	// begin and decline again.
	r.rechargeLeg = true
	if len(handed) > 0 {
		r.handoffs += len(handed)
		if r.hooks.OnHandoff != nil {
			r.hooks.OnHandoff(r, handed)
		}
	}
	if r.failed || r.died {
		return
	}
	start := r.Pos()
	r.settle(start)
	depot := r.cfg.Battery.Depot
	dist := start.Dist(depot)
	if dist == 0 {
		r.startCharging()
		return
	}
	r.rechargeFrom = start
	r.dest = depot
	r.moving = true
	r.arriveEv = r.sched.After(sim.Duration(dist/r.cfg.Speed), r.rechargeArrive)
	r.scheduleUpdate()
	r.rearmDeathClock()
	r.publish() // load dropped to zero; let peers and the manager see it
}

// rechargeArrive completes the depot leg and plugs in.
func (r *Robot) rechargeArrive() {
	if !r.rechargeLeg || r.failed || r.died {
		return
	}
	r.sched.Cancel(r.updateEv)
	r.traveled += r.rechargeFrom.Dist(r.cfg.Battery.Depot)
	r.settle(r.cfg.Battery.Depot)
	r.publish()
	r.startCharging()
}

// startCharging parks the robot on the charger; while charging the depot
// powers the platform, so the pack only gains.
func (r *Robot) startCharging() {
	r.rechargeLeg = false
	r.accrueEnergy()
	r.charging = true
	r.sched.Cancel(r.deathEv)
	need := r.bat.CapacityJ - r.bat.RemainingJ
	w := r.cfg.Battery.RechargeW
	if need <= 0 || w <= 0 {
		r.finishCharging()
		return
	}
	r.chargeEv = r.sched.After(sim.Duration(need/w), r.chargeDone)
}

// chargeDone fires when the pack is predicted full.
func (r *Robot) chargeDone() {
	if !r.charging || r.failed || r.died {
		return
	}
	r.accrueEnergy() // credits ≈ the full top-up
	r.finishCharging()
}

// finishCharging leaves the pack exactly full and resumes any tasks that
// queued (or bounced back) during the detour.
func (r *Robot) finishCharging() {
	r.bat.Charge(r.bat.CapacityJ - r.bat.RemainingJ) // absorb the float residue
	r.charging = false
	r.batAt = r.sched.Now()
	r.recharges++
	if r.hooks.OnRecharge != nil {
		r.hooks.OnRecharge(r)
	}
	r.rearmDeathClock()
	if r.current == nil && len(r.queue) > 0 {
		r.begin(r.nextQueued())
	}
	r.publish()
}

// AddExtraDrainW adds (or, with a negative delta, removes) an adversarial
// parasitic load on the battery. The chaos layer opens a drain window by
// adding watts and closes it by subtracting the same amount. A no-op
// without a battery or after death.
func (r *Robot) AddExtraDrainW(delta float64) {
	if r.bat == nil || r.died || r.failed {
		return
	}
	r.accrueEnergy()
	r.extraDrainW += delta
	if r.extraDrainW < 0 {
		r.extraDrainW = 0
	}
	r.rearmDeathClock()
}

// Battery exposes the robot's energy ledger (nil when the battery layer
// is off). The scenario layer reads it for Results and the invariant
// checker's conservation law.
func (r *Robot) Battery() *energy.Battery { return r.bat }

// BatteryDied reports whether the robot died of battery exhaustion.
func (r *Robot) BatteryDied() bool { return r.died }

// DiedAt returns when the battery died (zero unless BatteryDied).
func (r *Robot) DiedAt() sim.Time { return r.diedAt }

// Recharges reports completed depot recharges.
func (r *Robot) Recharges() int { return r.recharges }

// Handoffs reports how many tasks this robot handed back on recharge
// detours.
func (r *Robot) Handoffs() int { return r.handoffs }

// Charging reports whether the robot is parked at the depot charging.
func (r *Robot) Charging() bool { return r.charging }

// BatteryRemainingJ returns the pack level at the current instant without
// mutating the ledger (the lazily-accrued state is interpolated forward).
// Zero when the layer is off.
func (r *Robot) BatteryRemainingJ() float64 {
	if r.bat == nil {
		return 0
	}
	if r.died {
		return 0
	}
	dt := float64(r.sched.Now().Sub(r.batAt))
	if dt <= 0 || r.failed {
		return r.bat.RemainingJ
	}
	if r.charging {
		v := r.bat.RemainingJ + r.cfg.Battery.RechargeW*dt
		if v > r.bat.CapacityJ {
			v = r.bat.CapacityJ
		}
		return v
	}
	v := r.bat.RemainingJ - r.currentPowerW()*dt
	if v < 0 {
		v = 0
	}
	return v
}
