package robot

import (
	"sort"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// defaultTakeoverTTL bounds manager-takeover and managing-heartbeat floods
// when Reliability.FloodTTL is unset (matches the core flood TTL).
const defaultTakeoverTTL = 32

// Reliability holds the robot-side knobs of the reliability extension.
// The zero value reproduces the paper's model exactly: no heartbeats, no
// acks, no failover.
type Reliability struct {
	// HeartbeatPeriod > 0 enables the protocol: the robot publishes its
	// location every period even when idle (the heartbeat other parties
	// use to detect its death), acks reports and requests, and de-
	// duplicates repair tasks by failed-node ID.
	HeartbeatPeriod sim.Duration
	// MissedHeartbeats is how many silent periods declare a peer (or the
	// manager) dead.
	MissedHeartbeats int
	// DispatchAckTimeout is the managing role's initial re-dispatch
	// timeout for unacknowledged repair requests (doubled per attempt,
	// capped at 8x).
	DispatchAckTimeout sim.Duration
	// Manager is the central manager to ack heartbeats with and to watch
	// for death (0 under the distributed algorithms).
	Manager radio.NodeID
	// ManagerLoc is the manager's location, for routing acks to it.
	ManagerLoc geom.Point
	// TakeoverRank staggers takeover attempts after a manager death:
	// rank r waits r half-heartbeat-periods before assuming the role, so
	// the lowest surviving rank wins without an election protocol.
	TakeoverRank int
	// FloodTTL bounds takeover and managing-heartbeat floods (0 selects
	// the default of 32).
	FloodTTL int
}

// Enabled reports whether the reliability protocol is on.
func (rl Reliability) Enabled() bool { return rl.HeartbeatPeriod > 0 }

func (rl Reliability) floodTTL() int {
	if rl.FloodTTL > 0 {
		return rl.FloodTTL
	}
	return defaultTakeoverTTL
}

// deadAfter is the silence that declares a peer or manager dead.
func (rl Reliability) deadAfter() sim.Duration {
	n := rl.MissedHeartbeats
	if n <= 0 {
		n = 3
	}
	return rl.HeartbeatPeriod * sim.Duration(n)
}

// peerState is what a managing robot knows about another robot.
type peerState struct {
	loc   geom.Point
	heard sim.Time
	load  int
	seq   uint64
}

// outDispatch is a repair request the managing robot has issued and not
// yet seen completed.
type outDispatch struct {
	req      wire.RepairRequest
	robot    radio.NodeID
	lastSent sim.Time
	attempts int
	acked    bool
}

// Stranded returns the tasks that died with this robot (set by FailNow).
func (r *Robot) Stranded() []Task { return r.stranded }

// Managing reports whether this robot has assumed the manager role.
func (r *Robot) Managing() bool { return r.managing }

// ManagerTarget returns the robot's current manager override for location
// updates: the takeover-elected manager, or the configured one. ok is
// false when the reliability protocol is off or no manager is known.
func (r *Robot) ManagerTarget() (radio.NodeID, geom.Point, bool) {
	if !r.cfg.Reliability.Enabled() || r.mgrID == 0 {
		return 0, geom.Point{}, false
	}
	return r.mgrID, r.mgrLoc, true
}

// relTick is the heartbeat: publish the current location (even when idle),
// then run the role-specific liveness checks.
func (r *Robot) relTick() {
	if r.failed {
		return
	}
	if r.moving {
		r.reindex()
	}
	r.publish()
	if r.managing {
		r.managerTick()
		return
	}
	if r.mgrID != 0 && !r.takeoverArmed {
		if r.lastMgrAck < r.sched.Now().Sub(r.cfg.Reliability.deadAfter()) {
			r.suspectManager()
		}
	}
}

// suspectManager reacts to a silent manager: stop updating the corpse and
// arm a rank-staggered takeover attempt.
func (r *Robot) suspectManager() {
	rel := r.cfg.Reliability
	r.takeoverArmed = true
	r.mgrID = 0
	delay := sim.Duration(rel.TakeoverRank) * (rel.HeartbeatPeriod / 2)
	r.takeoverEv = r.sched.After(delay, r.attemptTakeover)
}

// attemptTakeover assumes the manager role unless another robot's takeover
// was heard during the stagger delay.
func (r *Robot) attemptTakeover() {
	if r.failed || r.managing || !r.takeoverArmed || r.mgrID != 0 {
		return
	}
	r.takeoverArmed = false
	r.managing = true
	r.mgrID = r.id
	r.mgrLoc = r.Pos()
	if r.hooks.OnTakeover != nil {
		r.hooks.OnTakeover(r)
	}
	r.seq++
	r.medium.Send(radio.Frame{
		Src:      r.id,
		Dst:      radio.IDBroadcast,
		Category: metrics.CatTakeover,
		Payload: netstack.FloodMsg{
			Origin:   r.id,
			Seq:      r.seq,
			Category: metrics.CatTakeover,
			Payload:  wire.ManagerTakeover{Manager: r.id, Loc: r.Pos()},
			TTL:      r.cfg.Reliability.floodTTL(),
		},
	})
	r.publish() // flooded heartbeat: sensors learn the new manager's route
}

// heardTakeover processes another robot's ManagerTakeover flood.
func (r *Robot) heardTakeover(t wire.ManagerTakeover) {
	if t.Manager == r.id {
		return
	}
	if r.managing {
		// Concurrent takeovers (possible under latency): lowest ID keeps
		// the role, the other abdicates and re-registers as a worker.
		if t.Manager > r.id {
			return
		}
		r.managing = false
		// Hand the dispatch book over implicitly: un-see everything we
		// dispatched to others so the new manager can assign it to us, and
		// let reporter retransmission re-surface it there. Our own queued
		// tasks stay seen and get served.
		for failed := range r.outstanding {
			delete(r.seen, failed)
			delete(r.outstanding, failed)
		}
	}
	r.sched.Cancel(r.takeoverEv)
	r.takeoverArmed = false
	r.mgrID = t.Manager
	r.mgrLoc = t.Loc
	r.lastMgrAck = r.sched.Now()
	r.publish() // register with the new manager immediately
}

// notePeer records another robot's location update for the managing role.
func (r *Robot) notePeer(up wire.RobotUpdate) {
	if up.Robot == r.id {
		return
	}
	if p, ok := r.peers[up.Robot]; r.cfg.StrictSeq && ok && up.Seq < p.seq {
		// Hostile channel: a replayed update would roll the peer's position
		// back. Equal Seq is an idempotent duplicate and passes.
		r.replayRejected++
		return
	}
	r.peers[up.Robot] = peerState{loc: up.Loc, heard: r.sched.Now(), load: up.Load, seq: up.Seq}
}

// handleFloodRel processes floods a reliability-enabled robot overhears.
func (r *Robot) handleFloodRel(m netstack.FloodMsg) {
	switch pl := m.Payload.(type) {
	case wire.ManagerTakeover:
		r.heardTakeover(pl)
	case wire.RobotUpdate:
		r.notePeer(pl)
		switch {
		case pl.Managing && pl.Robot != r.id && (r.managing || r.takeoverArmed || r.mgrID != pl.Robot):
			// A standing manager claim that is news to us: adopt it (or,
			// when we also hold the role, settle the conflict by ID).
			r.heardTakeover(wire.ManagerTakeover{Manager: pl.Robot, Loc: pl.Loc})
		case !r.managing && pl.Robot == r.mgrID:
			// A flooded heartbeat from the manager is liveness proof in
			// itself, and tracks it when mobile (post-takeover).
			r.mgrLoc = pl.Loc
			r.lastMgrAck = r.sched.Now()
		}
	}
}

// ackReport routes an ack back to a reporting guardian so it stops
// retransmitting. Reports without a sequence number expect no ack.
func (r *Robot) ackReport(rep wire.FailureReport) {
	if rep.Seq == 0 || rep.Reporter == 0 {
		return
	}
	r.router.Originate(netstack.Packet{
		Dst:      rep.Reporter,
		DstLoc:   rep.ReporterLoc,
		Category: metrics.CatAck,
		Payload:  wire.ReportAck{Reporter: rep.Reporter, Failed: rep.Failed, Seq: rep.Seq},
	})
}

// ackDispatch confirms a repair request back to its dispatcher. The
// request names its issuer so the ack reaches the actual requester even
// when this robot tracks a different manager (failover transient).
func (r *Robot) ackDispatch(req wire.RepairRequest) {
	dst, loc := req.Manager, req.ManagerLoc
	if dst == 0 {
		dst, loc = r.mgrID, r.mgrLoc
	}
	if dst == 0 || dst == r.id {
		return
	}
	r.router.Originate(netstack.Packet{
		Dst:      dst,
		DstLoc:   loc,
		Category: metrics.CatAck,
		Payload:  wire.DispatchAck{Robot: r.id, Failed: req.Failed},
	})
}

// dropQueuedAt cancels queued repair tasks for a site the robot just heard
// alive (a beacon or boot announce from exactly the task's location): the
// visit would be a duplicate trip. The in-progress task is not aborted —
// the world-level dedup absorbs its arrival — and the seen entry is
// cleared so a later genuine failure of that node is accepted again. A
// managing robot also retires outstanding dispatches for the site.
func (r *Robot) dropQueuedAt(loc geom.Point) {
	const eps2 = 1e-6 // sensors are stationary; locations match exactly
	if len(r.queue) > 0 {
		kept := r.queue[:0]
		for _, t := range r.queue {
			if t.Loc.Dist2(loc) <= eps2 {
				delete(r.seen, t.Failed)
				continue
			}
			kept = append(kept, t)
		}
		r.queue = kept
	}
	for failed, o := range r.outstanding {
		if o.req.Loc.Dist2(loc) <= eps2 {
			delete(r.outstanding, failed)
			delete(r.seen, failed)
		}
	}
}

// reportDone tells the dispatcher a repair completed.
func (r *Robot) reportDone(failed radio.NodeID) {
	if r.mgrID == 0 || r.mgrID == r.id {
		return
	}
	r.router.Originate(netstack.Packet{
		Dst:      r.mgrID,
		DstLoc:   r.mgrLoc,
		Category: metrics.CatAck,
		Payload:  wire.RepairDone{Robot: r.id, Failed: failed},
	})
}

// dispatchAsManager is the managing robot's dispatcher: deduplicate the
// report, pick the closest live robot (itself included), and either
// enqueue locally or issue a tracked repair request.
func (r *Robot) dispatchAsManager(rep wire.FailureReport) {
	if r.seen[rep.Failed] {
		return
	}
	r.seen[rep.Failed] = true
	now := r.sched.Now()
	target := r.closestLivePeer(rep.Loc, now)
	if target == r.id {
		r.enqueueTask(Task{Failed: rep.Failed, Loc: rep.Loc, EnqueuedAt: now})
		return
	}
	req := wire.RepairRequest{
		Failed: rep.Failed, Loc: rep.Loc, IssuedAt: now,
		Manager: r.id, ManagerLoc: r.Pos(),
	}
	r.outstanding[rep.Failed] = &outDispatch{req: req, robot: target, lastSent: now, attempts: 1}
	r.router.Originate(netstack.Packet{
		Dst:      target,
		DstLoc:   r.peers[target].loc,
		Category: metrics.CatRepairRequest,
		Payload:  req,
	})
}

// closestLivePeer returns the live robot closest to loc, the managing
// robot itself included; ties break toward the lowest ID.
func (r *Robot) closestLivePeer(loc geom.Point, now sim.Time) radio.NodeID {
	deadline := now.Sub(r.cfg.Reliability.deadAfter())
	best := r.id
	bestD := r.Pos().Dist2(loc)
	ids := make([]radio.NodeID, 0, len(r.peers))
	for id := range r.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := r.peers[id]
		if p.heard < deadline {
			continue
		}
		d := p.loc.Dist2(loc)
		if d < bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	return best
}

// managerTick re-dispatches outstanding requests whose robot died or
// never acknowledged, with per-request exponential backoff.
func (r *Robot) managerTick() {
	now := r.sched.Now()
	rel := r.cfg.Reliability
	deadline := now.Sub(rel.deadAfter())
	ids := make([]radio.NodeID, 0, len(r.outstanding))
	for id := range r.outstanding {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, failed := range ids {
		o := r.outstanding[failed]
		dead := false
		if p, ok := r.peers[o.robot]; !ok || p.heard < deadline {
			dead = true
		}
		timeout := rel.DispatchAckTimeout * sim.Duration(uint64(1)<<uint(min(max(o.attempts-1, 0), 3)))
		if dead || (!o.acked && now.Sub(o.lastSent) >= timeout) {
			r.redispatch(failed, o, now)
		}
	}
}

// redispatch re-issues an outstanding request to the closest live robot.
func (r *Robot) redispatch(failed radio.NodeID, o *outDispatch, now sim.Time) {
	target := r.closestLivePeer(o.req.Loc, now)
	o.attempts++
	if r.hooks.OnRedispatch != nil {
		r.hooks.OnRedispatch(o.req, target, o.attempts)
	}
	if target == r.id {
		delete(r.outstanding, failed)
		r.enqueueTask(Task{Failed: o.req.Failed, Loc: o.req.Loc, EnqueuedAt: now})
		return
	}
	o.robot = target
	o.lastSent = now
	o.acked = false
	o.req.Manager, o.req.ManagerLoc = r.id, r.Pos()
	r.router.Originate(netstack.Packet{
		Dst:      target,
		DstLoc:   r.peers[target].loc,
		Category: metrics.CatRepairRequest,
		Payload:  o.req,
	})
}
