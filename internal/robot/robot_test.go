package robot

import (
	"math"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// recordMode records every published location update.
type recordMode struct {
	updates []wire.RobotUpdate
}

func (m *recordMode) Publish(_ *Robot, up wire.RobotUpdate) {
	m.updates = append(m.updates, up)
}

type rig struct {
	sched  *sim.Scheduler
	medium *radio.Medium
	mode   *recordMode
}

func newRig() *rig {
	sched := sim.NewScheduler()
	return &rig{
		sched:  sched,
		medium: mustMedium(sched, metrics.NewRegistry(), radio.Config{CellSize: 63}),
		mode:   &recordMode{},
	}
}

func testRobotConfig() Config {
	return Config{Speed: 1, Range: 250, UpdateThreshold: 20}
}

func (g *rig) newRobot(id radio.NodeID, pos geom.Point, hooks Hooks) *Robot {
	r := New(id, pos, testRobotConfig(), g.mode, g.medium, hooks)
	r.Start(0)
	return r
}

func TestRobotInitialPublish(t *testing.T) {
	g := newRig()
	r := g.newRobot(1, geom.Pt(10, 20), Hooks{})
	g.sched.Run(1)
	if len(g.mode.updates) != 1 {
		t.Fatalf("initial publishes = %d, want 1", len(g.mode.updates))
	}
	up := g.mode.updates[0]
	if up.Seq != 1 || !up.Loc.Eq(geom.Pt(10, 20)) || up.Robot != 1 {
		t.Fatalf("initial update wrong: %+v", up)
	}
	if r.Busy() {
		t.Fatal("idle robot reports busy")
	}
}

func TestRobotTravelsAtConfiguredSpeed(t *testing.T) {
	g := newRig()
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(100, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(51)
	// At t=51, 50 s of travel at 1 m/s from t=1: x≈50.
	if got := r.Pos().X; math.Abs(got-50) > 0.001 {
		t.Fatalf("mid-flight x = %v, want 50", got)
	}
	g.sched.Run(101)
	if !r.Pos().Eq(geom.Pt(100, 0)) {
		t.Fatalf("final pos = %v", r.Pos())
	}
	if r.Busy() {
		t.Fatal("robot still busy after arrival")
	}
	if math.Abs(r.Traveled()-100) > 1e-9 {
		t.Fatalf("traveled = %v, want 100", r.Traveled())
	}
}

func TestRobotPublishesEveryThreshold(t *testing.T) {
	g := newRig()
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(100, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(200)
	// Seq 1 at init; en-route updates at 20/40/60/80 m; one on arrival.
	if got := len(g.mode.updates); got != 6 {
		t.Fatalf("publishes = %d, want 6: %+v", got, g.mode.updates)
	}
	wantX := []float64{0, 20, 40, 60, 80, 100}
	for i, up := range g.mode.updates {
		if math.Abs(up.Loc.X-wantX[i]) > 0.001 {
			t.Fatalf("update %d at x=%v, want %v", i, up.Loc.X, wantX[i])
		}
		if up.Seq != uint64(i+1) {
			t.Fatalf("update %d seq=%d, want %d", i, up.Seq, i+1)
		}
	}
	if r.Seq() != 6 {
		t.Fatalf("Seq = %d", r.Seq())
	}
}

func TestRobotShortTripPublishesOnlyArrival(t *testing.T) {
	g := newRig()
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(15, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(100)
	// Init + arrival only: the 15 m leg is under the 20 m threshold.
	if got := len(g.mode.updates); got != 2 {
		t.Fatalf("publishes = %d, want 2", got)
	}
}

func TestRobotFCFSOrder(t *testing.T) {
	g := newRig()
	var done []radio.NodeID
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{
		OnTaskDone: func(_ *Robot, task Task, _ float64, _ sim.Duration) {
			done = append(done, task.Failed)
		},
	})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 101, Loc: geom.Pt(50, 0), EnqueuedAt: g.sched.Now()})
	r.Enqueue(Task{Failed: 102, Loc: geom.Pt(10, 0), EnqueuedAt: g.sched.Now()})
	r.Enqueue(Task{Failed: 103, Loc: geom.Pt(30, 0), EnqueuedAt: g.sched.Now()})
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", r.QueueLen())
	}
	g.sched.Run(500)
	if len(done) != 3 {
		t.Fatalf("completed %d tasks", len(done))
	}
	for i, want := range []radio.NodeID{101, 102, 103} {
		if done[i] != want {
			t.Fatalf("completion order %v, want FCFS [101 102 103]", done)
		}
	}
	// Travel: 0→50 (50) + 50→10 (40) + 10→30 (20) = 110.
	if math.Abs(r.Traveled()-110) > 1e-9 {
		t.Fatalf("traveled = %v, want 110", r.Traveled())
	}
}

func TestRobotNearestFirstOrder(t *testing.T) {
	g := newRig()
	var done []radio.NodeID
	cfg := testRobotConfig()
	cfg.Queue = NearestFirst
	r := New(1, geom.Pt(0, 0), cfg, g.mode, g.medium, Hooks{
		OnTaskDone: func(_ *Robot, task Task, _ float64, _ sim.Duration) {
			done = append(done, task.Failed)
		},
	})
	r.Start(0)
	g.sched.Run(1)
	// Tasks in an order that differs between FCFS and nearest-first: the
	// first task starts immediately (robot idle), then the queue holds
	// tasks at x=90 and x=60; after finishing at x=50, the x=60 task is
	// closer and must run before the x=90 task despite arriving later.
	r.Enqueue(Task{Failed: 101, Loc: geom.Pt(50, 0), EnqueuedAt: g.sched.Now()})
	r.Enqueue(Task{Failed: 102, Loc: geom.Pt(90, 0), EnqueuedAt: g.sched.Now()})
	r.Enqueue(Task{Failed: 103, Loc: geom.Pt(60, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(500)
	want := []radio.NodeID{101, 103, 102}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion order %v, want nearest-first %v", done, want)
		}
	}
}

func TestQueuePolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || NearestFirst.String() != "nearest-first" {
		t.Fatal("queue policy names wrong")
	}
}

func TestRobotZeroDistanceTask(t *testing.T) {
	g := newRig()
	var dists []float64
	r := g.newRobot(1, geom.Pt(5, 5), Hooks{
		OnTaskDone: func(_ *Robot, _ Task, d float64, _ sim.Duration) { dists = append(dists, d) },
	})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(5, 5), EnqueuedAt: g.sched.Now()})
	if len(dists) != 1 || dists[0] != 0 {
		t.Fatalf("zero-distance task dists = %v", dists)
	}
	if r.Busy() {
		t.Fatal("robot stuck busy after zero-distance task")
	}
}

func TestRobotServiceTimeDelaysCompletion(t *testing.T) {
	g := newRig()
	var doneAt sim.Time
	cfg := testRobotConfig()
	cfg.ServiceTime = 30
	r := New(1, geom.Pt(0, 0), cfg, g.mode, g.medium, Hooks{
		OnTaskDone: func(*Robot, Task, float64, sim.Duration) { doneAt = g.sched.Now() },
	})
	r.Start(0)
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(10, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(500)
	// Started at t=1, 10 s travel, 30 s service → done at 41.
	if math.Abs(float64(doneAt)-41) > 1e-9 {
		t.Fatalf("doneAt = %v, want 41", doneAt)
	}
}

func TestRobotSpawnsReplacement(t *testing.T) {
	g := newRig()
	var spawnedAt geom.Point
	var spawnedBy radio.NodeID
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{
		SpawnReplacement: func(rb *Robot, loc geom.Point) radio.NodeID {
			spawnedAt = loc
			spawnedBy = rb.ID()
			return 999
		},
	})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(25, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(100)
	if !spawnedAt.Eq(geom.Pt(25, 0)) || spawnedBy != 1 {
		t.Fatalf("spawn at %v by %v", spawnedAt, spawnedBy)
	}
}

func TestRobotDeliverEnqueuesReportsAndRequests(t *testing.T) {
	g := newRig()
	var reports, requests int
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{
		OnReportReceived:  func(wire.FailureReport, int) { reports++ },
		OnRequestReceived: func(wire.RepairRequest, int) { requests++ },
	})
	g.sched.Run(1)
	r.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 1, Payload: wire.FailureReport{Failed: 50, Loc: geom.Pt(40, 0)},
	}})
	if reports != 1 || !r.Busy() {
		t.Fatalf("report not enqueued: reports=%d busy=%v", reports, r.Busy())
	}
	r.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 1, Payload: wire.RepairRequest{Failed: 51, Loc: geom.Pt(60, 0)},
	}})
	if requests != 1 || r.QueueLen() != 1 {
		t.Fatalf("request not queued: requests=%d queue=%d", requests, r.QueueLen())
	}
}

func TestRobotMediumIndexFollowsMovement(t *testing.T) {
	g := newRig()
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(400, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(1000)
	// After arriving at (400,0), a query near the destination must find it.
	found := g.medium.InRange(geom.Pt(400, 0), 10, 99)
	if len(found) != 1 || found[0].RadioID() != 1 {
		t.Fatalf("medium index stale after movement: %v", found)
	}
	// And nothing remains indexed at the origin.
	if got := g.medium.InRange(geom.Pt(0, 0), 10, 99); len(got) != 0 {
		t.Fatalf("stale index entry at origin: %v", got)
	}
}

func TestRobotRecordsMetricsSeries(t *testing.T) {
	g := newRig()
	reg := g.medium.Metrics()
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(80, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(500)
	travel := reg.Series(metrics.SeriesTravelPerFailure)
	if travel.N() != 1 || math.Abs(travel.Mean()-80) > 1e-9 {
		t.Fatalf("travel series wrong: %v", travel)
	}
	delay := reg.Series(metrics.SeriesRepairDelay)
	if delay.N() != 1 || math.Abs(delay.Mean()-80) > 1e-9 {
		t.Fatalf("delay series wrong: %v", delay)
	}
}

func TestRobotPosStationaryBetweenTasks(t *testing.T) {
	g := newRig()
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 100, Loc: geom.Pt(30, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(200)
	p1 := r.Pos()
	g.sched.Run(300)
	if !r.Pos().Eq(p1) {
		t.Fatal("idle robot drifted")
	}
}

func TestRobotCargoRestocking(t *testing.T) {
	g := newRig()
	var done []radio.NodeID
	cfg := testRobotConfig()
	cfg.Cargo = 2
	cfg.Depot = geom.Pt(0, 0)
	r := New(1, geom.Pt(0, 0), cfg, g.mode, g.medium, Hooks{
		OnTaskDone: func(_ *Robot, task Task, _ float64, _ sim.Duration) {
			done = append(done, task.Failed)
		},
	})
	r.Start(0)
	g.sched.Run(1)
	if r.Cargo() != 2 {
		t.Fatalf("initial cargo = %d", r.Cargo())
	}
	for i, x := range []float64{10, 20, 30} {
		r.Enqueue(Task{Failed: radio.NodeID(101 + i), Loc: geom.Pt(x, 0), EnqueuedAt: g.sched.Now()})
	}
	g.sched.Run(1000)
	if len(done) != 3 {
		t.Fatalf("completed %d tasks", len(done))
	}
	if r.Restocks() != 1 {
		t.Fatalf("restocks = %d, want 1 (after two deliveries)", r.Restocks())
	}
	// Travel: 0→10 (10) + 10→20 (10) + 20→depot (20) + depot→30 (30) = 70.
	if math.Abs(r.Traveled()-70) > 1e-9 {
		t.Fatalf("traveled = %v, want 70 including the depot leg", r.Traveled())
	}
	if r.Cargo() != 1 {
		t.Fatalf("cargo after restock+1 delivery = %d, want 1", r.Cargo())
	}
	leg := g.medium.Metrics().Series("restock_leg_m")
	if leg.N() != 1 || math.Abs(leg.Mean()-20) > 1e-9 {
		t.Fatalf("restock leg series wrong: %v", leg)
	}
}

func TestRobotUnlimitedCargoNeverRestocks(t *testing.T) {
	g := newRig()
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{})
	g.sched.Run(1)
	for i := 0; i < 5; i++ {
		r.Enqueue(Task{Failed: radio.NodeID(101 + i), Loc: geom.Pt(float64(10+i*10), 0), EnqueuedAt: g.sched.Now()})
	}
	g.sched.Run(1000)
	if r.Restocks() != 0 {
		t.Fatalf("unlimited robot restocked %d times", r.Restocks())
	}
	if r.Cargo() != -1 {
		t.Fatalf("unlimited cargo = %d, want -1", r.Cargo())
	}
}

func TestRobotFailNowStopsEverything(t *testing.T) {
	g := newRig()
	var done int
	r := g.newRobot(1, geom.Pt(0, 0), Hooks{
		OnTaskDone: func(*Robot, Task, float64, sim.Duration) { done++ },
	})
	g.sched.Run(1)
	r.Enqueue(Task{Failed: 101, Loc: geom.Pt(100, 0), EnqueuedAt: g.sched.Now()})
	r.Enqueue(Task{Failed: 102, Loc: geom.Pt(200, 0), EnqueuedAt: g.sched.Now()})
	g.sched.Run(30) // mid-flight
	pos := r.Pos()
	r.FailNow()
	if r.Alive() || r.RadioActive() {
		t.Fatal("failed robot still active")
	}
	seqAt := r.Seq()
	g.sched.Run(2000)
	if done != 0 {
		t.Fatalf("failed robot completed %d tasks", done)
	}
	if !r.Pos().Eq(pos) {
		t.Fatalf("failed robot moved from %v to %v", pos, r.Pos())
	}
	if r.Seq() != seqAt {
		t.Fatal("failed robot kept publishing")
	}
	// Further tasks are discarded.
	r.Enqueue(Task{Failed: 103, Loc: geom.Pt(10, 0), EnqueuedAt: g.sched.Now()})
	if r.Busy() || r.QueueLen() != 0 {
		t.Fatal("failed robot accepted a task")
	}
	r.FailNow() // idempotent
}

// mustMedium builds a medium for a config that cannot fail validation.
func mustMedium(sched *sim.Scheduler, reg *metrics.Registry, cfg radio.Config) *radio.Medium {
	m, err := radio.NewMedium(sched, reg, cfg)
	if err != nil {
		panic(err)
	}
	return m
}
