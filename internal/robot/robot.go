// Package robot implements the maintenance robots: point kinematics at
// constant speed, a first-come-first-served repair queue, the 20 m
// location-update rule, and node replacement at the failure site.
package robot

import (
	"roborepair/internal/energy"
	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// QueuePolicy selects which pending task a robot serves next.
type QueuePolicy int

const (
	// FCFS serves tasks in arrival order, as in the paper ("a robot
	// queues such requests and handles the failures in a first-come-
	// first-serve fashion").
	FCFS QueuePolicy = iota
	// NearestFirst serves the pending task closest to the robot's current
	// position — an extension ablation trading fairness for travel.
	NearestFirst
)

// String names the queue policy.
func (p QueuePolicy) String() string {
	if p == NearestFirst {
		return "nearest-first"
	}
	return "fcfs"
}

// Config carries the robot parameters of the paper's setup (§4.1).
type Config struct {
	// Speed is the travel speed in m/s (1, per the Pioneer 3DX).
	Speed float64
	// Range is the transmission range in meters (250).
	Range float64
	// UpdateThreshold is how far the robot travels between location
	// updates (20 m, under a third of the sensor range).
	UpdateThreshold float64
	// ServiceTime is the time spent unloading a replacement node at the
	// failure site.
	ServiceTime sim.Duration
	// Queue selects the task-selection policy (FCFS in the paper).
	Queue QueuePolicy
	// Cargo is how many replacement nodes the robot carries before it
	// must restock at the Depot (extension; 0 means unlimited, as the
	// paper implicitly assumes).
	Cargo int
	// Depot is where a cargo-limited robot reloads.
	Depot geom.Point
	// Reliability configures heartbeats, acknowledgements, and manager
	// failover (extension; the zero value disables all of it).
	Reliability Reliability
	// Battery configures the finite-energy extension (the zero value
	// disables it: no pack is allocated, robots never tire).
	Battery BatteryParams
	// StrictSeq rejects peer location updates whose Seq is below the last
	// accepted one for that peer (hostile-channel defense: stale replays
	// must not roll peer positions back). Off by default — on a benign
	// medium flood relaying genuinely reorders updates.
	StrictSeq bool
}

// Task is one queued repair job.
type Task struct {
	Failed     radio.NodeID
	Loc        geom.Point
	EnqueuedAt sim.Time
}

// UpdateMode disseminates a robot's location updates; the three
// coordination algorithms differ here (unicast-to-manager vs. subarea
// flood vs. dynamic Voronoi flood).
type UpdateMode interface {
	Publish(r *Robot, up wire.RobotUpdate)
}

// Hooks lets the runner observe robot-level events.
type Hooks struct {
	// SpawnReplacement deploys a fresh sensor at the failure site and
	// returns its ID. The deploying robot is passed so the runner can set
	// the new node's initial report target.
	SpawnReplacement func(r *Robot, loc geom.Point) radio.NodeID
	// OnTaskDone fires after each completed repair with the distance the
	// robot traveled for that task and its queueing+travel delay.
	OnTaskDone func(r *Robot, t Task, dist float64, delay sim.Duration)
	// OnReportReceived fires when a failure report is delivered directly
	// to this robot (distributed algorithms).
	OnReportReceived func(rep wire.FailureReport, hops int)
	// OnRequestReceived fires when a repair request from the central
	// manager is delivered.
	OnRequestReceived func(req wire.RepairRequest, hops int)
	// OnPublish fires whenever the robot disseminates a location update
	// (including the initial announcement, sequence 1).
	OnPublish func(r *Robot, up wire.RobotUpdate)
	// OnFail fires when the robot breaks down, with the tasks stranded in
	// its queue (current task included).
	OnFail func(r *Robot, stranded []Task)
	// OnTakeover fires when this robot assumes the manager role after
	// detecting the manager's death.
	OnTakeover func(r *Robot)
	// OnRedispatch fires when this robot, acting as manager, re-issues an
	// outstanding repair request to another robot.
	OnRedispatch func(req wire.RepairRequest, to radio.NodeID, attempt int)
	// OnMove fires at every position fix — each settle and each spatial
	// reindex — with the previous anchor, the time it was fixed, and the
	// new position, so an observer can bound displacement by speed ×
	// elapsed (the kinematics conservation law).
	OnMove func(r *Robot, from geom.Point, fromAt sim.Time, to geom.Point)
	// OnBatteryDeath fires when the robot's battery hits zero and it dies
	// in place (after OnFail has stranded its tasks).
	OnBatteryDeath func(r *Robot)
	// OnRecharge fires when the robot finishes recharging at the depot.
	OnRecharge func(r *Robot)
	// OnHandoff fires when a low-battery robot heads for the charger with
	// the tasks it is handing back, so the runner can re-queue them on the
	// rest of the fleet.
	OnHandoff func(r *Robot, handed []Task)
}

// Robot is a mobile maintainer (and, in the distributed algorithms, a
// manager for its region).
type Robot struct {
	id    radio.NodeID
	cfg   Config
	mode  UpdateMode
	hooks Hooks

	medium *radio.Medium
	sched  *sim.Scheduler
	router *netstack.Router

	// Kinematics: while moving, position is interpolated from anchor.
	anchor     geom.Point
	anchorTime sim.Time
	dest       geom.Point
	moving     bool
	arriveEv   sim.Event
	updateEv   sim.Event
	indexedPos geom.Point // last position pushed into the medium's index

	queue    []Task
	current  *Task
	taskFrom geom.Point // position where the current task started

	traveled   float64
	seq        uint64
	cargo      int  // replacement nodes on board; -1 means unlimited
	restocking bool // current leg heads to the depot, not the task
	restocks   int
	failed     bool

	// Standby-relocation state (facility-location coordination): an idle
	// robot moving to a commanded parking spot, preempted by any real
	// repair task. Inert for the paper's three algorithms.
	relocating  bool
	relocFrom   geom.Point // position where the relocation leg started
	relocSeq    uint64     // highest relocation command sequence accepted
	relocations int        // completed relocation legs

	// Energy-extension state (inert when cfg.Battery is zero): a finite
	// pack with lazy accrual, recharge legs, and death at empty.
	bat          *energy.Battery
	batAt        sim.Time   // last accrual instant
	extraDrainW  float64    // adversarial parasitic load (chaos drain windows)
	charging     bool       // parked at the depot, charging
	rechargeLeg  bool       // current leg heads to the depot charger
	rechargeFrom geom.Point // where the recharge leg started
	chargeEv     sim.Event
	deathEv      sim.Event
	recharges    int
	handoffs     int // tasks handed back when detouring to recharge
	died         bool
	diedAt       sim.Time

	// Reliability-extension state (inert when cfg.Reliability is zero).
	relTicker      *sim.Ticker
	mgrID          radio.NodeID
	mgrLoc         geom.Point
	lastMgrAck     sim.Time
	takeoverEv     sim.Event
	takeoverArmed  bool
	managing       bool
	stranded       []Task
	seen           map[radio.NodeID]bool         // failed IDs already queued or dispatched
	replayRejected uint64                        // peer updates dropped by the StrictSeq guard
	peers          map[radio.NodeID]peerState    // other robots, by last heartbeat
	outstanding    map[radio.NodeID]*outDispatch // managing role: issued requests by failed ID
}

var _ radio.Station = (*Robot)(nil)

// New constructs a robot at pos; call Start to attach it to the medium.
func New(id radio.NodeID, pos geom.Point, cfg Config, mode UpdateMode, medium *radio.Medium, hooks Hooks) *Robot {
	cargo := -1
	if cfg.Cargo > 0 {
		cargo = cfg.Cargo
	}
	r := &Robot{
		id:         id,
		cfg:        cfg,
		mode:       mode,
		hooks:      hooks,
		medium:     medium,
		sched:      medium.Scheduler(),
		anchor:     pos,
		anchorTime: medium.Scheduler().Now(),
		indexedPos: pos,
		cargo:      cargo,
	}
	if cfg.Reliability.Enabled() {
		r.seen = make(map[radio.NodeID]bool)
		r.peers = make(map[radio.NodeID]peerState)
		r.outstanding = make(map[radio.NodeID]*outDispatch)
	}
	if cfg.Battery.Enabled() {
		r.bat = energy.NewBattery(cfg.Battery.CapacityJ)
		r.batAt = r.sched.Now()
	}
	r.router = &netstack.Router{
		ID:     id,
		Pos:    r.Pos,
		Range:  func() float64 { return r.cfg.Range },
		Medium: medium,
		Source: &netstack.MediumSource{
			Medium: medium,
			Self:   id,
			Pos:    r.Pos,
			Range:  func() float64 { return r.cfg.Range },
		},
		Deliver: r.deliver,
		OnDrop: func(p netstack.Packet, reason netstack.DropReason) {
			medium.Metrics().CountTx("drop_"+string(reason), 1)
		},
	}
	return r
}

// ID returns the robot's address.
func (r *Robot) ID() radio.NodeID { return r.id }

// Pos returns the robot's current (interpolated) position.
func (r *Robot) Pos() geom.Point {
	if !r.moving {
		return r.anchor
	}
	elapsed := float64(r.sched.Now().Sub(r.anchorTime))
	d := r.cfg.Speed * elapsed
	total := r.anchor.Dist(r.dest)
	if d >= total {
		return r.dest
	}
	return r.anchor.Add(r.anchor.Unit(r.dest).Scale(d))
}

// Traveled reports the robot's cumulative travel distance.
func (r *Robot) Traveled() float64 { return r.traveled }

// QueueLen reports the number of queued (not yet started) tasks.
func (r *Robot) QueueLen() int { return len(r.queue) }

// Busy reports whether the robot is executing a task.
func (r *Robot) Busy() bool { return r.current != nil }

// Seq returns the robot's current location-update sequence number.
func (r *Robot) Seq() uint64 { return r.seq }

// Cargo reports the replacement nodes on board (-1 means unlimited).
func (r *Robot) Cargo() int { return r.cargo }

// Restocks reports how many depot reload trips the robot has made.
func (r *Robot) Restocks() int { return r.restocks }

// ReplayRejected reports how many peer updates the StrictSeq guard
// rejected as stale.
func (r *Robot) ReplayRejected() uint64 { return r.replayRejected }

// Router exposes the robot's router (the central manager role reuses it).
func (r *Robot) Router() *netstack.Router { return r.router }

// RadioID implements radio.Station.
func (r *Robot) RadioID() radio.NodeID { return r.id }

// RadioPos implements radio.Station.
func (r *Robot) RadioPos() geom.Point { return r.Pos() }

// RadioRange implements radio.Station.
func (r *Robot) RadioRange() float64 { return r.cfg.Range }

// RadioActive implements radio.Station. Robots never fail in the paper's
// model; the resilience extension can kill them via FailNow.
func (r *Robot) RadioActive() bool { return !r.failed }

// RadioMobile implements radio.MobileStation: a robot's position
// interpolates along its travel leg between index updates, so the medium
// must poll RadioPos rather than trust its cached position.
func (r *Robot) RadioMobile() bool { return true }

// Alive reports whether the robot is operational.
func (r *Robot) Alive() bool { return !r.failed }

// FailNow breaks the robot down where it stands (resilience extension):
// it stops moving, abandons its queue, and falls silent. The paper's
// model never calls this.
func (r *Robot) FailNow() {
	if r.failed {
		return
	}
	r.settle(r.Pos())
	r.sched.Cancel(r.arriveEv)
	r.sched.Cancel(r.updateEv)
	r.sched.Cancel(r.takeoverEv)
	r.sched.Cancel(r.chargeEv)
	r.sched.Cancel(r.deathEv)
	r.relocating = false
	r.charging = false
	r.rechargeLeg = false
	if r.relTicker != nil {
		r.relTicker.Stop()
	}
	var stranded []Task
	if r.current != nil {
		stranded = append(stranded, *r.current)
	}
	stranded = append(stranded, r.queue...)
	r.current = nil
	r.queue = nil
	r.failed = true
	r.medium.SetActive(r.id, false)
	r.stranded = stranded
	if len(stranded) > 0 {
		r.medium.Metrics().Observe(metrics.SeriesStrandedTasks, float64(len(stranded)))
	}
	if r.hooks.OnFail != nil {
		r.hooks.OnFail(r, stranded)
	}
}

// Start attaches the robot to the medium and publishes its initial
// location (sequence 1) after initDelay, so sensors can learn their
// manager once the whole deployment is attached and announced.
func (r *Robot) Start(initDelay sim.Duration) {
	r.medium.Attach(r)
	r.sched.After(initDelay, r.publish)
	rel := r.cfg.Reliability
	if rel.Enabled() {
		r.mgrID = rel.Manager
		r.mgrLoc = rel.ManagerLoc
		r.lastMgrAck = r.sched.Now()
		t, err := r.sched.NewTicker(rel.HeartbeatPeriod, rel.HeartbeatPeriod, r.relTick)
		if err != nil {
			panic(err) // unreachable: Enabled() implies a positive period
		}
		r.relTicker = t
	}
	r.rearmDeathClock()
}

// HandleFrame implements radio.Station.
func (r *Robot) HandleFrame(f radio.Frame) {
	switch m := f.Payload.(type) {
	case netstack.Packet:
		r.router.Receive(m)
	case netstack.FloodMsg:
		// Robots hear each other's floods but do not relay them; only
		// sensors disseminate location updates (§3.2–3.3). The reliability
		// extension listens for takeovers and peer heartbeats.
		if r.cfg.Reliability.Enabled() && !r.failed {
			r.handleFloodRel(m)
		}
	case wire.RobotUpdate:
		// One-hop announce from a nearby robot (centralized mode).
		if r.cfg.Reliability.Enabled() && !r.failed {
			r.notePeer(m)
		}
	case wire.Beacon:
		// Sensor chatter is ignored in the paper's model; the reliability
		// extension treats a beacon from a queued task's site as proof the
		// site is alive (a blackout false positive, or an already-replaced
		// node) and drops the queued duplicate trip.
		if r.cfg.Reliability.Enabled() && !r.failed {
			r.dropQueuedAt(m.Loc)
		}
	case wire.LocationAnnounce:
		if r.cfg.Reliability.Enabled() && !r.failed {
			r.dropQueuedAt(m.Loc)
		}
	case wire.GuardianConfirm:
		// Robots ignore guardian chatter: their next hops come from radio
		// range (see netstack.MediumSource).
	default:
		_ = m
	}
}

// deliver handles packets addressed to this robot.
func (r *Robot) deliver(p netstack.Packet) {
	if r.failed {
		return
	}
	rel := r.cfg.Reliability.Enabled()
	switch m := p.Payload.(type) {
	case wire.FailureReport:
		if r.hooks.OnReportReceived != nil {
			r.hooks.OnReportReceived(m, p.Hops)
		}
		if rel {
			r.ackReport(m)
			if r.managing {
				r.dispatchAsManager(m)
				return
			}
		}
		r.Enqueue(Task{Failed: m.Failed, Loc: m.Loc, EnqueuedAt: r.sched.Now()})
	case wire.RepairRequest:
		if r.hooks.OnRequestReceived != nil {
			r.hooks.OnRequestReceived(m, p.Hops)
		}
		if rel {
			r.ackDispatch(m)
		}
		r.Enqueue(Task{Failed: m.Failed, Loc: m.Loc, EnqueuedAt: r.sched.Now()})
	case wire.HeartbeatAck:
		r.lastMgrAck = r.sched.Now()
	case wire.RobotUpdate:
		// Worker heartbeat unicast to this robot in its managing role:
		// track the worker and ack so it knows its manager is alive.
		if rel {
			r.notePeer(m)
			if r.managing && m.Robot != r.id {
				r.router.Originate(netstack.Packet{
					Dst:      m.Robot,
					DstLoc:   m.Loc,
					Category: metrics.CatAck,
					Payload:  wire.HeartbeatAck{Manager: r.id, Seq: m.Seq},
				})
			}
		}
	case wire.DispatchAck:
		if r.managing {
			if o, ok := r.outstanding[m.Failed]; ok && o.robot == m.Robot {
				o.acked = true
			}
		}
	case wire.RepairDone:
		if r.managing {
			delete(r.outstanding, m.Failed)
			delete(r.seen, m.Failed)
		}
	case wire.Relocate:
		if m.Robot == r.id {
			r.RelocateTo(m.Dest, m.Seq)
		}
	}
}

// RelocateTo starts an idle robot toward a standby location (facility-
// location coordination). The command is ignored while the robot is
// serving or queueing repairs — repairs always win — and stale commands
// (Seq not above the last accepted) are dropped so reordered or replayed
// frames cannot undo a newer placement; under StrictSeq the drop is
// counted in ReplayRejected.
func (r *Robot) RelocateTo(dest geom.Point, seq uint64) {
	if r.failed || r.current != nil || r.rechargeLeg || r.charging {
		return
	}
	if seq <= r.relocSeq {
		if r.cfg.StrictSeq {
			r.replayRejected++
		}
		return
	}
	r.relocSeq = seq
	r.interruptRelocation()
	start := r.Pos()
	if start.Dist(dest) == 0 {
		return
	}
	r.settle(start)
	r.relocFrom = start
	r.relocating = true
	r.dest = dest
	r.moving = true
	r.arriveEv = r.sched.After(sim.Duration(start.Dist(dest)/r.cfg.Speed), r.relocArrive)
	r.scheduleUpdate()
	r.rearmDeathClock()
}

// Relocations reports completed standby-relocation legs.
func (r *Robot) Relocations() int { return r.relocations }

// interruptRelocation abandons an in-flight relocation leg, accruing the
// distance actually covered. A no-op unless relocating, so the paper's
// algorithms never feel it.
func (r *Robot) interruptRelocation() {
	if !r.relocating {
		return
	}
	r.sched.Cancel(r.arriveEv)
	r.sched.Cancel(r.updateEv)
	r.traveled += r.relocFrom.Dist(r.Pos())
	r.relocating = false
}

// relocArrive completes a standby-relocation leg.
func (r *Robot) relocArrive() {
	if !r.relocating || r.failed {
		return
	}
	r.sched.Cancel(r.updateEv)
	r.traveled += r.relocFrom.Dist(r.dest)
	r.relocating = false
	r.relocations++
	r.settle(r.dest)
	r.publish()
}

// Enqueue adds a repair task; the robot serves tasks first-come-first-
// served (§3.1). Failed robots discard tasks. With the reliability
// extension on, retransmitted or multiply-reported failures are
// deduplicated by failed-node ID.
func (r *Robot) Enqueue(t Task) {
	if r.failed {
		return
	}
	if r.seen != nil {
		if r.seen[t.Failed] {
			return
		}
		r.seen[t.Failed] = true
	}
	r.enqueueTask(t)
}

// enqueueTask queues or starts a task, bypassing deduplication (used by
// the managing role, which marks the seen set itself). Tasks arriving
// during a recharge detour queue for after the top-up.
func (r *Robot) enqueueTask(t Task) {
	if r.current != nil || r.rechargeLeg || r.charging {
		r.queue = append(r.queue, t)
		return
	}
	r.begin(t)
}

func (r *Robot) begin(t Task) {
	if r.declinesForRecharge(t) {
		r.goRecharge(&t)
		return
	}
	r.interruptRelocation()
	r.current = &t
	start := r.Pos()
	r.taskFrom = start
	r.settle(start)
	dest := t.Loc
	if r.cargo == 0 {
		// Out of replacement nodes: detour to the depot first.
		r.restocking = true
		dest = r.cfg.Depot
	}
	dist := start.Dist(dest)
	if dist == 0 {
		r.arrive()
		return
	}
	r.dest = dest
	r.moving = true
	r.arriveEv = r.sched.After(sim.Duration(dist/r.cfg.Speed), r.arrive)
	r.scheduleUpdate()
	r.rearmDeathClock()
}

// settle fixes the robot's anchor at p with motion stopped. It is the
// universal motion-stop chokepoint, so the battery's lazy accrual hooks
// here: the interval since the last accrual is integrated at the power
// mode that was in force during it (the moving flag is still the leg's).
func (r *Robot) settle(p geom.Point) {
	if r.bat != nil {
		r.accrueEnergy()
	}
	if r.hooks.OnMove != nil {
		r.hooks.OnMove(r, r.anchor, r.anchorTime, p)
	}
	old := r.indexedPos
	r.anchor = p
	r.anchorTime = r.sched.Now()
	r.moving = false
	r.indexedPos = p
	if !old.Eq(p) {
		r.medium.Moved(r.id, old)
	}
	r.rearmDeathClock()
}

// scheduleUpdate arms the next 20 m location-update event for the current
// leg.
func (r *Robot) scheduleUpdate() {
	remaining := r.Pos().Dist(r.dest)
	if remaining <= r.cfg.UpdateThreshold {
		return // arrival will publish
	}
	r.updateEv = r.sched.After(sim.Duration(r.cfg.UpdateThreshold/r.cfg.Speed), func() {
		if !r.moving {
			return
		}
		r.reindex()
		r.publish()
		r.scheduleUpdate()
	})
}

// reindex pushes the robot's current interpolated position into the
// medium's spatial index (staleness stays under the 20 m threshold, well
// below the 63 m index cell, so range queries remain exact).
func (r *Robot) reindex() {
	old := r.indexedPos
	r.indexedPos = r.Pos()
	if r.hooks.OnMove != nil {
		r.hooks.OnMove(r, r.anchor, r.anchorTime, r.indexedPos)
	}
	if !old.Eq(r.indexedPos) {
		r.medium.Moved(r.id, old)
	}
}

// publish disseminates the robot's current location via the algorithm's
// update mode.
func (r *Robot) publish() {
	if r.failed {
		return
	}
	r.seq++
	load := len(r.queue)
	if r.current != nil {
		load++
	}
	up := wire.RobotUpdate{Robot: r.id, Loc: r.Pos(), Seq: r.seq, Load: load, Managing: r.managing}
	if r.managing {
		// A mobile manager floods its updates network-wide so every sensor
		// keeps a fresh route to it.
		r.medium.Send(radio.Frame{
			Src:      r.id,
			Dst:      radio.IDBroadcast,
			Category: metrics.CatLocUpdate,
			Payload: netstack.FloodMsg{
				Origin:   r.id,
				Seq:      r.seq,
				Category: metrics.CatLocUpdate,
				Payload:  up,
				TTL:      r.cfg.Reliability.floodTTL(),
			},
		})
	} else {
		r.mode.Publish(r, up)
	}
	if r.hooks.OnPublish != nil {
		r.hooks.OnPublish(r, up)
	}
}

// arrive completes the current travel leg: a depot restock detour or the
// task itself.
func (r *Robot) arrive() {
	t := r.current
	if t == nil {
		return
	}
	r.sched.Cancel(r.updateEv)
	if r.restocking {
		dist := r.taskFrom.Dist(r.cfg.Depot)
		r.traveled += dist
		r.settle(r.cfg.Depot)
		r.publish()
		r.restocking = false
		r.cargo = r.cfg.Cargo
		r.restocks++
		r.medium.Metrics().Observe("restock_leg_m", dist)
		// Resume the pending task from the depot.
		task := *t
		r.current = nil
		r.begin(task)
		return
	}
	dist := r.taskFrom.Dist(t.Loc)
	r.traveled += dist
	r.settle(t.Loc)
	if r.cfg.ServiceTime > 0 {
		r.sched.After(r.cfg.ServiceTime, func() { r.finish(*t, dist) })
		return
	}
	r.finish(*t, dist)
}

func (r *Robot) finish(t Task, dist float64) {
	if r.failed {
		return // broke down during the service interval
	}
	if r.hooks.SpawnReplacement != nil {
		r.hooks.SpawnReplacement(r, t.Loc)
	}
	if r.cargo > 0 {
		r.cargo--
	}
	if r.hooks.OnTaskDone != nil {
		r.hooks.OnTaskDone(r, t, dist, r.sched.Now().Sub(t.EnqueuedAt))
	}
	reg := r.medium.Metrics()
	reg.Observe(metrics.SeriesTravelPerFailure, dist)
	reg.Observe(metrics.SeriesRepairDelay, float64(r.sched.Now().Sub(t.EnqueuedAt)))
	reg.Observe(metrics.SeriesQueueLength, float64(len(r.queue)))
	if r.seen != nil {
		// The site is repaired: a genuine re-failure there may be reported
		// (and served) anew.
		delete(r.seen, t.Failed)
		r.reportDone(t.Failed)
	}
	r.current = nil
	if len(r.queue) == 0 {
		// Arrival update (§3: "After replacing a failed node, the
		// maintainer robot may need to update the manager or some sensors
		// with its new location") — published after completion so the
		// Load field reflects the drained queue.
		r.rearmDeathClock() // idle now: the clock may switch to threshold mode
		r.publish()
		return
	}
	r.begin(r.nextQueued())
	r.publish() // arrival update, with the next task already counted in Load
}

// nextQueued pops the next task under the configured queue policy.
func (r *Robot) nextQueued() Task {
	idx := 0
	if r.cfg.Queue == NearestFirst {
		here := r.Pos()
		for i := 1; i < len(r.queue); i++ {
			if r.queue[i].Loc.Dist2(here) < r.queue[idx].Loc.Dist2(here) {
				idx = i
			}
		}
	}
	next := r.queue[idx]
	r.queue = append(r.queue[:idx], r.queue[idx+1:]...)
	return next
}
