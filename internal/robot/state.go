package robot

import (
	"sort"

	"roborepair/internal/checkpoint"
	"roborepair/internal/radio"
)

// AppendState serializes the robot's complete dynamic state in canonical
// order (checkpoint section payload). Scheduled-event handles (arrival,
// update, takeover timers) are omitted: their (at, seq) stamps live in the
// kernel section, and a restored run rebuilds them by deterministic
// replay.
func (r *Robot) AppendState(b []byte) []byte {
	b = checkpoint.AppendI64(b, int64(r.id))
	b = checkpoint.AppendF64(b, r.anchor.X)
	b = checkpoint.AppendF64(b, r.anchor.Y)
	b = checkpoint.AppendF64(b, float64(r.anchorTime))
	b = checkpoint.AppendF64(b, r.dest.X)
	b = checkpoint.AppendF64(b, r.dest.Y)
	b = checkpoint.AppendBool(b, r.moving)
	b = checkpoint.AppendF64(b, r.indexedPos.X)
	b = checkpoint.AppendF64(b, r.indexedPos.Y)
	b = checkpoint.AppendF64(b, r.traveled)
	b = checkpoint.AppendU64(b, r.seq)
	b = checkpoint.AppendI64(b, int64(r.cargo))
	b = checkpoint.AppendBool(b, r.restocking)
	b = checkpoint.AppendI64(b, int64(r.restocks))
	b = checkpoint.AppendBool(b, r.failed)
	b = checkpoint.AppendU64(b, r.replayRejected)

	appendTask := func(b []byte, t Task) []byte {
		b = checkpoint.AppendI64(b, int64(t.Failed))
		b = checkpoint.AppendF64(b, t.Loc.X)
		b = checkpoint.AppendF64(b, t.Loc.Y)
		b = checkpoint.AppendF64(b, float64(t.EnqueuedAt))
		return b
	}
	b = checkpoint.AppendBool(b, r.current != nil)
	if r.current != nil {
		b = appendTask(b, *r.current)
		b = checkpoint.AppendF64(b, r.taskFrom.X)
		b = checkpoint.AppendF64(b, r.taskFrom.Y)
	}
	b = checkpoint.AppendU32(b, uint32(len(r.queue)))
	for _, t := range r.queue {
		b = appendTask(b, t)
	}
	b = checkpoint.AppendU32(b, uint32(len(r.stranded)))
	for _, t := range r.stranded {
		b = appendTask(b, t)
	}

	// Reliability-extension state.
	b = checkpoint.AppendI64(b, int64(r.mgrID))
	b = checkpoint.AppendF64(b, r.mgrLoc.X)
	b = checkpoint.AppendF64(b, r.mgrLoc.Y)
	b = checkpoint.AppendF64(b, float64(r.lastMgrAck))
	b = checkpoint.AppendBool(b, r.takeoverArmed)
	b = checkpoint.AppendBool(b, r.managing)

	b = appendIDSet(b, r.seen)

	peerIDs := make([]radio.NodeID, 0, len(r.peers))
	for id := range r.peers {
		peerIDs = append(peerIDs, id)
	}
	sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })
	b = checkpoint.AppendU32(b, uint32(len(peerIDs)))
	for _, id := range peerIDs {
		p := r.peers[id]
		b = checkpoint.AppendI64(b, int64(id))
		b = checkpoint.AppendF64(b, p.loc.X)
		b = checkpoint.AppendF64(b, p.loc.Y)
		b = checkpoint.AppendF64(b, float64(p.heard))
		b = checkpoint.AppendI64(b, int64(p.load))
		b = checkpoint.AppendU64(b, p.seq)
	}

	outIDs := make([]radio.NodeID, 0, len(r.outstanding))
	for id := range r.outstanding {
		outIDs = append(outIDs, id)
	}
	sort.Slice(outIDs, func(i, j int) bool { return outIDs[i] < outIDs[j] })
	b = checkpoint.AppendU32(b, uint32(len(outIDs)))
	for _, id := range outIDs {
		o := r.outstanding[id]
		b = checkpoint.AppendI64(b, int64(id))
		b = checkpoint.AppendI64(b, int64(o.req.Failed))
		b = checkpoint.AppendF64(b, o.req.Loc.X)
		b = checkpoint.AppendF64(b, o.req.Loc.Y)
		b = checkpoint.AppendF64(b, float64(o.req.IssuedAt))
		b = checkpoint.AppendI64(b, int64(o.req.Manager))
		b = checkpoint.AppendF64(b, o.req.ManagerLoc.X)
		b = checkpoint.AppendF64(b, o.req.ManagerLoc.Y)
		b = checkpoint.AppendI64(b, int64(o.robot))
		b = checkpoint.AppendF64(b, float64(o.lastSent))
		b = checkpoint.AppendI64(b, int64(o.attempts))
		b = checkpoint.AppendBool(b, o.acked)
	}

	// Standby-relocation state (appended after the original layout:
	// sections are byte-compared, never field-decoded, so extending the
	// tail is format-safe).
	b = checkpoint.AppendBool(b, r.relocating)
	b = checkpoint.AppendF64(b, r.relocFrom.X)
	b = checkpoint.AppendF64(b, r.relocFrom.Y)
	b = checkpoint.AppendU64(b, r.relocSeq)
	b = checkpoint.AppendI64(b, int64(r.relocations))

	// Battery-extension state (tail-extended for the same reason). The
	// pack ledger and the lazy-accrual bookkeeping both ride the snapshot
	// so a restored continuation debits identically.
	b = checkpoint.AppendBool(b, r.bat != nil)
	if r.bat != nil {
		b = checkpoint.AppendF64(b, r.bat.RemainingJ)
		b = checkpoint.AppendF64(b, r.bat.SpentJ)
		b = checkpoint.AppendF64(b, r.bat.RechargedJ)
		b = checkpoint.AppendF64(b, float64(r.batAt))
		b = checkpoint.AppendF64(b, r.extraDrainW)
		b = checkpoint.AppendBool(b, r.charging)
		b = checkpoint.AppendBool(b, r.rechargeLeg)
		b = checkpoint.AppendF64(b, r.rechargeFrom.X)
		b = checkpoint.AppendF64(b, r.rechargeFrom.Y)
		b = checkpoint.AppendI64(b, int64(r.recharges))
		b = checkpoint.AppendI64(b, int64(r.handoffs))
		b = checkpoint.AppendBool(b, r.died)
		b = checkpoint.AppendF64(b, float64(r.diedAt))
	}
	return b
}

// appendIDSet serializes a NodeID set in ascending order.
func appendIDSet(b []byte, set map[radio.NodeID]bool) []byte {
	ids := make([]radio.NodeID, 0, len(set))
	for id, on := range set {
		if on {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = checkpoint.AppendU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = checkpoint.AppendI64(b, int64(id))
	}
	return b
}
