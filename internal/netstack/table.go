package netstack

import (
	"sort"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
)

// Neighbor is one entry of a node's one-hop neighbor table, built from
// received beacons and location broadcasts.
type Neighbor struct {
	ID        radio.NodeID
	Loc       geom.Point
	LastHeard sim.Time
}

// NeighborTable tracks a node's one-hop neighbors. The zero value is not
// usable; create tables with NewNeighborTable.
type NeighborTable struct {
	entries map[radio.NodeID]Neighbor
}

// NewNeighborTable returns an empty table.
func NewNeighborTable() *NeighborTable {
	return &NeighborTable{entries: make(map[radio.NodeID]Neighbor)}
}

// Upsert records that id was heard at loc at time now.
func (t *NeighborTable) Upsert(id radio.NodeID, loc geom.Point, now sim.Time) {
	t.entries[id] = Neighbor{ID: id, Loc: loc, LastHeard: now}
}

// Remove deletes a neighbor (e.g. after its failure is detected).
func (t *NeighborTable) Remove(id radio.NodeID) { delete(t.entries, id) }

// Get returns the entry for id.
func (t *NeighborTable) Get(id radio.NodeID) (Neighbor, bool) {
	n, ok := t.entries[id]
	return n, ok
}

// Len reports the number of entries.
func (t *NeighborTable) Len() int { return len(t.entries) }

// Touch refreshes LastHeard for an existing entry without changing its
// location; it reports whether the entry existed.
func (t *NeighborTable) Touch(id radio.NodeID, now sim.Time) bool {
	n, ok := t.entries[id]
	if !ok {
		return false
	}
	n.LastHeard = now
	t.entries[id] = n
	return true
}

// Purge removes entries not heard since the deadline and returns the
// removed IDs in ascending order.
func (t *NeighborTable) Purge(deadline sim.Time) []radio.NodeID {
	var removed []radio.NodeID
	for id, n := range t.entries {
		if n.LastHeard < deadline {
			removed = append(removed, id)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	for _, id := range removed {
		delete(t.entries, id)
	}
	return removed
}

// All returns the entries in ascending ID order (deterministic iteration
// for the simulator).
func (t *NeighborTable) All() []Neighbor {
	out := make([]Neighbor, 0, len(t.entries))
	for _, n := range t.entries {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ClosestTo returns the neighbor geographically closest to target and
// whether the table is non-empty.
func (t *NeighborTable) ClosestTo(target geom.Point) (Neighbor, bool) {
	best := Neighbor{}
	bestD := -1.0
	for _, n := range t.All() {
		d := n.Loc.Dist2(target)
		if bestD < 0 || d < bestD {
			best, bestD = n, d
		}
	}
	return best, bestD >= 0
}

// NearestNeighbor returns the neighbor closest to self, used for guardian
// selection ("picks its nearest neighbor as its guardian"). except lists
// IDs to skip (e.g. robots, which never act as guardians).
func (t *NeighborTable) NearestNeighbor(self geom.Point, except map[radio.NodeID]bool) (Neighbor, bool) {
	best := Neighbor{}
	bestD := -1.0
	for _, n := range t.All() {
		if except[n.ID] {
			continue
		}
		d := n.Loc.Dist2(self)
		if bestD < 0 || d < bestD {
			best, bestD = n, d
		}
	}
	return best, bestD >= 0
}

// GabrielNeighbors returns the table entries that form Gabriel-graph edges
// with self, witnessed by the full table — the planar subgraph face
// routing walks.
func (t *NeighborTable) GabrielNeighbors(self geom.Point) []Neighbor {
	all := t.All()
	witnesses := make([]geom.Point, len(all))
	for i, n := range all {
		witnesses[i] = n.Loc
	}
	var out []Neighbor
	for _, n := range all {
		if geom.GabrielEdge(self, n.Loc, witnesses) {
			out = append(out, n)
		}
	}
	return out
}
