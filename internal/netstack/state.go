package netstack

import (
	"sort"

	"roborepair/internal/checkpoint"
	"roborepair/internal/radio"
)

// AppendState serializes the table's entries in ascending ID order
// (checkpoint section payload).
func (t *NeighborTable) AppendState(b []byte) []byte {
	all := t.All()
	b = checkpoint.AppendU32(b, uint32(len(all)))
	for _, n := range all {
		b = checkpoint.AppendI64(b, int64(n.ID))
		b = checkpoint.AppendF64(b, n.Loc.X)
		b = checkpoint.AppendF64(b, n.Loc.Y)
		b = checkpoint.AppendF64(b, float64(n.LastHeard))
	}
	return b
}

// AppendState serializes the flooder's duplicate-suppression state in
// ascending origin order (checkpoint section payload).
func (f *Flooder) AppendState(b []byte) []byte {
	origins := make([]radio.NodeID, 0, len(f.seen))
	for id := range f.seen {
		origins = append(origins, id)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	b = checkpoint.AppendU32(b, uint32(len(origins)))
	for _, id := range origins {
		b = checkpoint.AppendI64(b, int64(id))
		b = checkpoint.AppendU64(b, f.seen[id])
	}
	return b
}
