package netstack

import "roborepair/internal/radio"

// Flooder implements the duplicate suppression of controlled flooding:
// "a sensor may receive the same update message multiple times, but it
// relays the message to its neighbors only once. This is achieved by
// remembering the sequence number of the robot location updates it has
// relayed before" (paper §3.2).
//
// Sequence numbers are monotone per origin, so remembering the highest
// handled sequence per origin suffices and stays O(#robots) per sensor.
type Flooder struct {
	seen map[radio.NodeID]uint64
}

// NewFlooder returns an empty duplicate-suppression state.
func NewFlooder() *Flooder {
	return &Flooder{seen: make(map[radio.NodeID]uint64)}
}

// Fresh reports whether m is the first copy of its (origin, seq) instance
// seen here, and marks it handled. Later copies — and stale instances with
// lower sequence numbers — report false.
func (f *Flooder) Fresh(m FloodMsg) bool {
	last, ok := f.seen[m.Origin]
	if ok && m.Seq <= last {
		return false
	}
	f.seen[m.Origin] = m.Seq
	return true
}

// LastSeq returns the highest sequence number handled for origin.
func (f *Flooder) LastSeq(origin radio.NodeID) (uint64, bool) {
	s, ok := f.seen[origin]
	return s, ok
}

// Reset forgets all state (used when a replacement node boots with a fresh
// flooder at the same address).
func (f *Flooder) Reset() { f.seen = make(map[radio.NodeID]uint64) }
