package netstack

import (
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
)

func TestOriginateAppliesDefaults(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	b := tn.add(2, geom.Pt(40, 0), 63)
	tn.fillTables()
	a.router.Originate(Packet{Dst: 2, DstLoc: b.pos, Category: "t"})
	got := b.delivered[0]
	if got.Src != 1 {
		t.Fatalf("Src = %v, want originator", got.Src)
	}
	if got.TTL != DefaultTTL-1 {
		t.Fatalf("TTL = %d, want %d", got.TTL, DefaultTTL-1)
	}
	if got.Mode != ModeGreedy {
		t.Fatalf("Mode = %v, want greedy", got.Mode)
	}
}

func TestPerimeterReturnsToGreedy(t *testing.T) {
	tn := newTestNet()
	// Geometry: source 1 at origin; a wall gap forces one perimeter hop
	// up to node 3, after which node 3 is closer to the destination than
	// the perimeter entry, so the packet resumes greedy mode and arrives.
	tn.add(1, geom.Pt(0, 0), 63)
	tn.add(3, geom.Pt(30, 50), 63)
	tn.add(4, geom.Pt(80, 60), 63)
	tn.add(5, geom.Pt(130, 30), 63)
	dst := tn.add(9, geom.Pt(160, 0), 63)
	tn.fillTables()
	tn.nodes[1].router.Originate(Packet{Dst: 9, DstLoc: dst.pos, Category: "t"})
	if len(dst.delivered) != 1 {
		t.Fatalf("not delivered; drops: %v", collectDrops(tn))
	}
	// Delivered in greedy mode (it recovered), not perimeter.
	if dst.delivered[0].Mode != ModeGreedy {
		t.Fatalf("arrived in mode %v, want greedy after recovery", dst.delivered[0].Mode)
	}
}

func TestRouterZeroTTLOriginateGetsDefault(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	a.router.Originate(Packet{Dst: 1, Category: "t"})
	if len(a.delivered) != 1 {
		t.Fatal("self packet lost")
	}
}

func TestReceiveForwardsWithoutReset(t *testing.T) {
	// A relay must not reset TTL or hops of a packet in flight.
	tn := newTestNet()
	tn.add(1, geom.Pt(0, 0), 63)
	mid := tn.add(2, geom.Pt(50, 0), 63)
	dst := tn.add(3, geom.Pt(100, 0), 63)
	tn.fillTables()
	mid.router.Receive(Packet{
		Src: 1, Dst: 3, DstLoc: dst.pos, Category: "t", Hops: 5, TTL: 10, Mode: ModeGreedy,
	})
	if len(dst.delivered) != 1 {
		t.Fatal("relay did not deliver")
	}
	if dst.delivered[0].Hops != 6 {
		t.Fatalf("hops = %d, want 6 (5 + relay)", dst.delivered[0].Hops)
	}
	if dst.delivered[0].TTL != 9 {
		t.Fatalf("TTL = %d, want 9", dst.delivered[0].TTL)
	}
}

func TestGreedyPrefersClosestNeighbor(t *testing.T) {
	self := geom.Pt(0, 0)
	dst := geom.Pt(100, 0)
	neighbors := []Neighbor{
		{ID: 1, Loc: geom.Pt(30, 0)},
		{ID: 2, Loc: geom.Pt(55, 0)},
		{ID: 3, Loc: geom.Pt(40, 20)},
	}
	next, ok := greedyNext(self, dst, neighbors)
	if !ok || next.ID != 2 {
		t.Fatalf("greedyNext = %v, want node 2", next)
	}
}

func TestGreedyRejectsBackwardNeighbors(t *testing.T) {
	self := geom.Pt(50, 0)
	dst := geom.Pt(100, 0)
	neighbors := []Neighbor{
		{ID: 1, Loc: geom.Pt(0, 0)},  // farther from dst than self
		{ID: 2, Loc: geom.Pt(45, 0)}, // also farther
	}
	if _, ok := greedyNext(self, dst, neighbors); ok {
		t.Fatal("greedy picked a neighbor that makes no progress")
	}
}

func TestPerimeterNextRightHandRule(t *testing.T) {
	self := geom.Pt(0, 0)
	prev := geom.Pt(100, 0) // reference direction: east
	neighbors := []Neighbor{
		{ID: 1, Loc: geom.Pt(0, 50)},  // north: 90° ccw from east
		{ID: 2, Loc: geom.Pt(-50, 0)}, // west: 180°
		{ID: 3, Loc: geom.Pt(0, -50)}, // south: 270°
	}
	next, ok := perimeterNext(self, prev, neighbors)
	if !ok || next.ID != 1 {
		t.Fatalf("perimeterNext = %v, want first ccw neighbor (north)", next)
	}
}

func TestPerimeterNextAvoidsImmediateBounce(t *testing.T) {
	self := geom.Pt(0, 0)
	prev := geom.Pt(50, 0)
	// Only neighbor is exactly back where the packet came from: the rule
	// assigns it a full-turn penalty but still uses it as a last resort.
	neighbors := []Neighbor{{ID: 1, Loc: geom.Pt(50, 0)}}
	next, ok := perimeterNext(self, prev, neighbors)
	if !ok || next.ID != 1 {
		t.Fatalf("lone backtrack neighbor should still be used: %v %v", next, ok)
	}
	// With an alternative, the backtrack loses.
	neighbors = append(neighbors, Neighbor{ID: 2, Loc: geom.Pt(0, 50)})
	next, _ = perimeterNext(self, prev, neighbors)
	if next.ID != 2 {
		t.Fatalf("perimeter bounced straight back despite alternative: %v", next)
	}
}

func TestPerimeterNextEmptyNeighbors(t *testing.T) {
	if _, ok := perimeterNext(geom.Pt(0, 0), geom.Pt(1, 0), nil); ok {
		t.Fatal("no neighbors should report !ok")
	}
}

func TestDropReasonsSurfaceOnce(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	a.router.Originate(Packet{Dst: 99, DstLoc: geom.Pt(500, 500), Category: "t"})
	if len(a.drops) != 1 {
		t.Fatalf("drops = %v, want exactly one", a.drops)
	}
}

func TestRouterCountsDropCategory(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	var dropped []DropReason
	a.router.OnDrop = func(_ Packet, r DropReason) { dropped = append(dropped, r) }
	a.router.Originate(Packet{Dst: 99, DstLoc: geom.Pt(500, 500), Category: "t", TTL: 1})
	if len(dropped) != 1 || dropped[0] != DropStuck {
		t.Fatalf("dropped = %v", dropped)
	}
}

func TestMediumSourceSkipsInactive(t *testing.T) {
	tn := newTestNet()
	m := tn.add(1, geom.Pt(0, 0), 250)
	dead := tn.add(2, geom.Pt(50, 0), 63)
	dead.dead = true
	tn.medium.SetActive(2, false)
	src := MediumSource{
		Medium: tn.medium,
		Self:   1,
		Pos:    func() geom.Point { return m.pos },
		Range:  func() float64 { return m.rng },
	}
	if got := src.RoutingNeighbors(); len(got) != 0 {
		t.Fatalf("inactive station offered as next hop: %v", got)
	}
}

func TestBroadcastPacketIgnoredByNonAddressee(t *testing.T) {
	// A unicast frame reaching its addressee is routed; a packet frame
	// addressed elsewhere must not be processed by bystanders (the medium
	// only delivers unicast frames to Dst, so this asserts medium
	// behaviour end to end).
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	b := tn.add(2, geom.Pt(30, 0), 63)
	c := tn.add(3, geom.Pt(31, 0), 63)
	tn.fillTables()
	a.router.Originate(Packet{Dst: 2, DstLoc: b.pos, Category: "t"})
	if len(c.delivered) != 0 {
		t.Fatal("bystander processed another node's packet")
	}
	_ = radio.IDBroadcast
}

func TestPathRecording(t *testing.T) {
	tn := newTestNet()
	for i := 0; i < 5; i++ {
		tn.add(radio.NodeID(i+1), geom.Pt(float64(i)*50, 0), 63)
	}
	tn.fillTables()
	src, dst := tn.nodes[1], tn.nodes[5]
	src.router.RecordPaths = true
	src.router.Originate(Packet{Dst: 5, DstLoc: dst.pos, Category: "t"})
	if len(dst.delivered) != 1 {
		t.Fatal("not delivered")
	}
	path := dst.delivered[0].Path
	want := []radio.NodeID{1, 2, 3, 4, 5}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Greedy invariant: every recorded hop strictly reduces the distance
	// to the destination.
	for i := 1; i < len(path); i++ {
		prev := tn.nodes[path[i-1]].pos.Dist(dst.pos)
		cur := tn.nodes[path[i]].pos.Dist(dst.pos)
		if cur >= prev {
			t.Fatalf("hop %d did not make progress: %v", i, path)
		}
	}
}

func TestPathRecordingOffByDefault(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	b := tn.add(2, geom.Pt(40, 0), 63)
	tn.fillTables()
	a.router.Originate(Packet{Dst: 2, DstLoc: b.pos, Category: "t"})
	if b.delivered[0].Path != nil {
		t.Fatal("path recorded without opting in")
	}
}
