package netstack

import (
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
)

func TestTableUpsertGetRemove(t *testing.T) {
	tb := NewNeighborTable()
	tb.Upsert(1, geom.Pt(1, 2), 10)
	n, ok := tb.Get(1)
	if !ok || !n.Loc.Eq(geom.Pt(1, 2)) || n.LastHeard != 10 {
		t.Fatalf("Get = %v, %v", n, ok)
	}
	tb.Upsert(1, geom.Pt(3, 4), 20)
	n, _ = tb.Get(1)
	if !n.Loc.Eq(geom.Pt(3, 4)) || n.LastHeard != 20 {
		t.Fatalf("Upsert did not update: %v", n)
	}
	tb.Remove(1)
	if _, ok := tb.Get(1); ok {
		t.Fatal("Remove left entry")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTableTouch(t *testing.T) {
	tb := NewNeighborTable()
	tb.Upsert(1, geom.Pt(1, 1), 5)
	if !tb.Touch(1, 50) {
		t.Fatal("Touch of existing entry reported false")
	}
	n, _ := tb.Get(1)
	if n.LastHeard != 50 || !n.Loc.Eq(geom.Pt(1, 1)) {
		t.Fatalf("Touch broke entry: %v", n)
	}
	if tb.Touch(99, 50) {
		t.Fatal("Touch of missing entry reported true")
	}
}

func TestTablePurge(t *testing.T) {
	tb := NewNeighborTable()
	tb.Upsert(3, geom.Pt(0, 0), 10)
	tb.Upsert(1, geom.Pt(0, 0), 5)
	tb.Upsert(2, geom.Pt(0, 0), 40)
	removed := tb.Purge(30)
	if len(removed) != 2 || removed[0] != 1 || removed[1] != 3 {
		t.Fatalf("Purge removed %v, want [1 3] sorted", removed)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len after purge = %d", tb.Len())
	}
}

func TestTableAllSorted(t *testing.T) {
	tb := NewNeighborTable()
	for _, id := range []radio.NodeID{5, 2, 9, 1} {
		tb.Upsert(id, geom.Pt(float64(id), 0), 0)
	}
	all := tb.All()
	for i := 1; i < len(all); i++ {
		if all[i].ID < all[i-1].ID {
			t.Fatalf("All not sorted: %v", all)
		}
	}
}

func TestTableClosestTo(t *testing.T) {
	tb := NewNeighborTable()
	if _, ok := tb.ClosestTo(geom.Pt(0, 0)); ok {
		t.Fatal("empty table reported a closest neighbor")
	}
	tb.Upsert(1, geom.Pt(10, 0), 0)
	tb.Upsert(2, geom.Pt(4, 0), 0)
	tb.Upsert(3, geom.Pt(7, 0), 0)
	n, ok := tb.ClosestTo(geom.Pt(0, 0))
	if !ok || n.ID != 2 {
		t.Fatalf("ClosestTo = %v", n)
	}
}

func TestTableNearestNeighborWithExclusion(t *testing.T) {
	tb := NewNeighborTable()
	tb.Upsert(1, geom.Pt(1, 0), 0)
	tb.Upsert(2, geom.Pt(2, 0), 0)
	n, ok := tb.NearestNeighbor(geom.Pt(0, 0), map[radio.NodeID]bool{1: true})
	if !ok || n.ID != 2 {
		t.Fatalf("NearestNeighbor = %v, want 2", n)
	}
	if _, ok := tb.NearestNeighbor(geom.Pt(0, 0), map[radio.NodeID]bool{1: true, 2: true}); ok {
		t.Fatal("all-excluded table reported a neighbor")
	}
}

func TestTableGabrielNeighbors(t *testing.T) {
	tb := NewNeighborTable()
	self := geom.Pt(0, 0)
	tb.Upsert(1, geom.Pt(10, 0), 0)
	tb.Upsert(2, geom.Pt(20, 0), 0) // blocked by 1 (1 is inside circle self-2)
	tb.Upsert(3, geom.Pt(0, 10), 0)
	gn := tb.GabrielNeighbors(self)
	ids := map[radio.NodeID]bool{}
	for _, n := range gn {
		ids[n.ID] = true
	}
	if !ids[1] || !ids[3] || ids[2] {
		t.Fatalf("Gabriel neighbors = %v, want {1,3}", ids)
	}
}

func TestFlooderDeduplication(t *testing.T) {
	f := NewFlooder()
	m := FloodMsg{Origin: 7, Seq: 1}
	if !f.Fresh(m) {
		t.Fatal("first copy should be fresh")
	}
	if f.Fresh(m) {
		t.Fatal("duplicate should not be fresh")
	}
	if f.Fresh(FloodMsg{Origin: 7, Seq: 0}) {
		t.Fatal("stale lower-seq instance should not be fresh")
	}
	if !f.Fresh(FloodMsg{Origin: 7, Seq: 2}) {
		t.Fatal("next seq should be fresh")
	}
	if !f.Fresh(FloodMsg{Origin: 8, Seq: 1}) {
		t.Fatal("different origin should be independent")
	}
}

func TestFlooderLastSeqAndReset(t *testing.T) {
	f := NewFlooder()
	f.Fresh(FloodMsg{Origin: 1, Seq: 5})
	if s, ok := f.LastSeq(1); !ok || s != 5 {
		t.Fatalf("LastSeq = %d, %v", s, ok)
	}
	if _, ok := f.LastSeq(2); ok {
		t.Fatal("unknown origin should report !ok")
	}
	f.Reset()
	if _, ok := f.LastSeq(1); ok {
		t.Fatal("Reset kept state")
	}
	if !f.Fresh(FloodMsg{Origin: 1, Seq: 1}) {
		t.Fatal("post-reset seq 1 should be fresh")
	}
}

func TestRouteModeString(t *testing.T) {
	if ModeGreedy.String() != "greedy" || ModePerimeter.String() != "perimeter" {
		t.Fatal("mode names wrong")
	}
	if RouteMode(9).String() == "" {
		t.Fatal("unknown mode should format")
	}
}
