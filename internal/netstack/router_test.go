package netstack

import (
	"testing"
	"testing/quick"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/radio"
	"roborepair/internal/rng"
	"roborepair/internal/sim"
)

// testNode is a routable station for router tests: it knows every other
// node within its own range (tables pre-populated, as after init).
type testNode struct {
	id     radio.NodeID
	pos    geom.Point
	rng    float64
	dead   bool
	router *Router
	table  *NeighborTable

	delivered []Packet
	drops     []DropReason
}

func (n *testNode) RadioID() radio.NodeID { return n.id }
func (n *testNode) RadioPos() geom.Point  { return n.pos }
func (n *testNode) RadioRange() float64   { return n.rng }
func (n *testNode) RadioActive() bool     { return !n.dead }
func (n *testNode) HandleFrame(f radio.Frame) {
	if p, ok := f.Payload.(Packet); ok {
		n.router.Receive(p)
	}
}

var _ radio.Station = (*testNode)(nil)

// testNet wires nodes, medium, and routers together.
type testNet struct {
	medium *radio.Medium
	sched  *sim.Scheduler
	reg    *metrics.Registry
	nodes  map[radio.NodeID]*testNode
}

func newTestNet() *testNet {
	sched := sim.NewScheduler()
	reg := metrics.NewRegistry()
	return &testNet{
		medium: mustMedium(sched, reg, radio.Config{}),
		sched:  sched,
		reg:    reg,
		nodes:  make(map[radio.NodeID]*testNode),
	}
}

func (tn *testNet) add(id radio.NodeID, pos geom.Point, r float64) *testNode {
	n := &testNode{id: id, pos: pos, rng: r, table: NewNeighborTable()}
	n.router = &Router{
		ID:     id,
		Pos:    func() geom.Point { return n.pos },
		Range:  func() float64 { return n.rng },
		Medium: tn.medium,
		Source: TableSource{Table: n.table},
		Deliver: func(p Packet) {
			n.delivered = append(n.delivered, p)
		},
		OnDrop: func(_ Packet, r DropReason) { n.drops = append(n.drops, r) },
	}
	tn.nodes[id] = n
	tn.medium.Attach(n)
	return n
}

// fillTables populates every node's table with all others inside its own
// range, the state beacons would build.
func (tn *testNet) fillTables() {
	for _, a := range tn.nodes {
		for _, b := range tn.nodes {
			if a.id == b.id || b.dead {
				continue
			}
			if a.pos.Dist(b.pos) <= a.rng {
				a.table.Upsert(b.id, b.pos, 0)
			}
		}
	}
}

func TestGreedyChainDelivery(t *testing.T) {
	tn := newTestNet()
	// Five nodes 50 m apart, range 63 m: a strict chain.
	for i := 0; i < 5; i++ {
		tn.add(radio.NodeID(i+1), geom.Pt(float64(i)*50, 0), 63)
	}
	tn.fillTables()
	src, dst := tn.nodes[1], tn.nodes[5]
	src.router.Originate(Packet{Dst: dst.id, DstLoc: dst.pos, Category: "t"})
	if len(dst.delivered) != 1 {
		t.Fatalf("delivered %d packets", len(dst.delivered))
	}
	// 200 m at ≤63 m hops with 50 m spacing: node1→3→5 is reachable? 1→3 is
	// 100 m > 63, so hops follow the chain: exactly 4.
	if got := dst.delivered[0].Hops; got != 4 {
		t.Fatalf("hops = %d, want 4", got)
	}
	if tn.reg.Tx("t") != 4 {
		t.Fatalf("transmissions = %d, want 4", tn.reg.Tx("t"))
	}
}

func TestDirectNeighborDelivery(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	b := tn.add(2, geom.Pt(40, 0), 63)
	tn.fillTables()
	a.router.Originate(Packet{Dst: 2, DstLoc: b.pos, Category: "t"})
	if len(b.delivered) != 1 || b.delivered[0].Hops != 1 {
		t.Fatalf("direct delivery failed: %v", b.delivered)
	}
}

func TestSelfAddressedPacketDeliversLocally(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	a.router.Originate(Packet{Dst: 1, DstLoc: a.pos, Category: "t"})
	if len(a.delivered) != 1 || a.delivered[0].Hops != 0 {
		t.Fatalf("self delivery failed: %v", a.delivered)
	}
	if tn.reg.Tx("t") != 0 {
		t.Fatal("self delivery should not transmit")
	}
}

func TestTTLExhaustionDrops(t *testing.T) {
	tn := newTestNet()
	for i := 0; i < 5; i++ {
		tn.add(radio.NodeID(i+1), geom.Pt(float64(i)*50, 0), 63)
	}
	tn.fillTables()
	src, dst := tn.nodes[1], tn.nodes[5]
	src.router.Originate(Packet{Dst: dst.id, DstLoc: dst.pos, Category: "t", TTL: 2})
	if len(dst.delivered) != 0 {
		t.Fatal("packet with TTL 2 should not cross 4 hops")
	}
	dropped := false
	for _, n := range tn.nodes {
		for _, r := range n.drops {
			if r == DropTTL {
				dropped = true
			}
		}
	}
	if !dropped {
		t.Fatal("no DropTTL recorded")
	}
}

func TestIsolatedSourceDropsStuck(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, geom.Pt(0, 0), 63)
	tn.add(2, geom.Pt(500, 0), 63)
	tn.fillTables()
	a.router.Originate(Packet{Dst: 2, DstLoc: geom.Pt(500, 0), Category: "t"})
	if len(a.drops) != 1 || a.drops[0] != DropStuck {
		t.Fatalf("drops = %v, want [stuck]", a.drops)
	}
}

func TestPerimeterRecoveryAroundHole(t *testing.T) {
	tn := newTestNet()
	// A "C"-shaped barrier of nodes: greedy from the left tip toward the
	// destination dead-ends at the concave gap and must walk the face.
	coords := []geom.Point{
		{X: 0, Y: 0},    // 1 source
		{X: 50, Y: 0},   // 2 greedy dead end (no node between x=50..150 on y=0)
		{X: 40, Y: 45},  // 3 upper detour
		{X: 80, Y: 70},  // 4
		{X: 130, Y: 60}, // 5
		{X: 160, Y: 20}, // 6
		{X: 180, Y: 0},  // 7 destination
	}
	for i, c := range coords {
		tn.add(radio.NodeID(i+1), c, 63)
	}
	tn.fillTables()
	src, dst := tn.nodes[1], tn.nodes[7]
	src.router.Originate(Packet{Dst: dst.id, DstLoc: dst.pos, Category: "t"})
	if len(dst.delivered) != 1 {
		t.Fatalf("perimeter mode failed to deliver; drops: %v", collectDrops(tn))
	}
	if dst.delivered[0].Hops < 4 {
		t.Fatalf("suspiciously few hops %d for a detour", dst.delivered[0].Hops)
	}
}

func collectDrops(tn *testNet) []DropReason {
	var out []DropReason
	for _, n := range tn.nodes {
		out = append(out, n.drops...)
	}
	return out
}

func TestLastResortDirectTransmission(t *testing.T) {
	tn := newTestNet()
	// Sensor 1 believes the robot (id 9) is at (40,0) — within range — but
	// the robot has moved to (55,0). No table entry exists for it. Greedy
	// finds no closer neighbor, so the router transmits at the advertised
	// location and the medium delivers because the robot is still in range.
	a := tn.add(1, geom.Pt(0, 0), 63)
	robot := tn.add(9, geom.Pt(55, 0), 250)
	// Note: tables NOT filled — a does not know the robot as a neighbor.
	a.router.Originate(Packet{Dst: 9, DstLoc: geom.Pt(40, 0), Category: "t"})
	if len(robot.delivered) != 1 {
		t.Fatal("last-resort direct transmission failed")
	}
	// And if the robot is actually out of range, the frame is simply lost.
	tn2 := newTestNet()
	b := tn2.add(1, geom.Pt(0, 0), 63)
	robot2 := tn2.add(9, geom.Pt(80, 0), 250)
	b.router.Originate(Packet{Dst: 9, DstLoc: geom.Pt(40, 0), Category: "t"})
	if len(robot2.delivered) != 0 {
		t.Fatal("out-of-range direct transmission delivered")
	}
}

func TestMediumSourceSeesInRangeStations(t *testing.T) {
	tn := newTestNet()
	m := tn.add(1, geom.Pt(0, 0), 250)
	tn.add(2, geom.Pt(100, 0), 63)
	tn.add(3, geom.Pt(300, 0), 63)
	src := MediumSource{
		Medium: tn.medium,
		Self:   1,
		Pos:    func() geom.Point { return m.pos },
		Range:  func() float64 { return m.rng },
	}
	ns := src.RoutingNeighbors()
	if len(ns) != 1 || ns[0].ID != 2 {
		t.Fatalf("MediumSource neighbors = %v", ns)
	}
}

func TestManagerLongFirstHop(t *testing.T) {
	// A manager with 250 m range and a MediumSource should cross 200 m in
	// one hop where a sensor chain would need several — the Fig 3 effect.
	tn := newTestNet()
	mgr := tn.add(1, geom.Pt(0, 0), 250)
	mgr.router.Source = &MediumSource{
		Medium: tn.medium,
		Self:   1,
		Pos:    func() geom.Point { return mgr.pos },
		Range:  func() float64 { return mgr.rng },
	}
	for i := 0; i < 5; i++ {
		tn.add(radio.NodeID(i+2), geom.Pt(50+float64(i)*50, 0), 63)
	}
	tn.fillTables()
	dst := tn.nodes[6] // at x=250
	mgr.router.Originate(Packet{Dst: dst.id, DstLoc: dst.pos, Category: "t"})
	if len(dst.delivered) != 1 {
		t.Fatal("manager packet not delivered")
	}
	if got := dst.delivered[0].Hops; got != 1 {
		t.Fatalf("hops = %d, want 1 (250 m reach)", got)
	}
}

func TestDeadRelayIsSkipped(t *testing.T) {
	tn := newTestNet()
	for i := 0; i < 5; i++ {
		tn.add(radio.NodeID(i+1), geom.Pt(float64(i)*50, 0), 63)
	}
	tn.fillTables()
	// Kill node 3 but leave it in tables (stale entry): the unicast to it
	// is lost; packet is not delivered. Then remove it from tables and
	// confirm routing succeeds via perimeter/greedy detour — impossible on
	// a pure chain, so add a detour node.
	tn.add(9, geom.Pt(100, 30), 63)
	tn.fillTables()
	tn.nodes[3].dead = true
	tn.medium.SetActive(3, false)
	src, dst := tn.nodes[1], tn.nodes[5]
	src.router.Originate(Packet{Dst: dst.id, DstLoc: dst.pos, Category: "t"})
	if len(dst.delivered) != 0 {
		t.Fatal("frame to dead relay should be lost (stale table)")
	}
	for _, n := range tn.nodes {
		n.table.Remove(3)
	}
	src.router.Originate(Packet{Dst: dst.id, DstLoc: dst.pos, Category: "t"})
	if len(dst.delivered) != 1 {
		t.Fatalf("detour routing failed; drops: %v", collectDrops(tn))
	}
}

// Property: on random dense deployments (the paper's regime), geographic
// routing delivers from any node to any node with high reliability.
func TestPropertyDenseDeploymentDelivery(t *testing.T) {
	trials, delivered := 0, 0
	prop := func(seed int64) bool {
		r := rng.New(seed)
		tn := newTestNet()
		// 50 sensors in 200x200 — the paper's density.
		for i := 0; i < 50; i++ {
			tn.add(radio.NodeID(i+1), geom.Pt(r.Uniform(0, 200), r.Uniform(0, 200)), 63)
		}
		tn.fillTables()
		a := radio.NodeID(r.Intn(50) + 1)
		b := radio.NodeID(r.Intn(50) + 1)
		trials++
		tn.nodes[a].router.Originate(Packet{
			Dst: b, DstLoc: tn.nodes[b].pos, Category: "t",
		})
		if len(tn.nodes[b].delivered) == 1 {
			delivered++
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
	ratio := float64(delivered) / float64(trials)
	if ratio < 0.97 {
		t.Fatalf("delivery ratio %.3f below 0.97 (%d/%d)", ratio, delivered, trials)
	}
}

// Property: hop count is at least the straight-line distance divided by the
// transmission range (no teleporting).
func TestPropertyHopsLowerBound(t *testing.T) {
	prop := func(seed int64) bool {
		r := rng.New(seed)
		tn := newTestNet()
		for i := 0; i < 60; i++ {
			tn.add(radio.NodeID(i+1), geom.Pt(r.Uniform(0, 250), r.Uniform(0, 250)), 63)
		}
		tn.fillTables()
		a := radio.NodeID(r.Intn(60) + 1)
		b := radio.NodeID(r.Intn(60) + 1)
		if a == b {
			return true
		}
		tn.nodes[a].router.Originate(Packet{Dst: b, DstLoc: tn.nodes[b].pos, Category: "t"})
		if len(tn.nodes[b].delivered) == 0 {
			return true // undelivered is covered by the other property
		}
		minHops := tn.nodes[a].pos.Dist(tn.nodes[b].pos) / 63
		return float64(tn.nodes[b].delivered[0].Hops) >= minHops-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// mustMedium builds a medium for a config that cannot fail validation.
func mustMedium(sched *sim.Scheduler, reg *metrics.Registry, cfg radio.Config) *radio.Medium {
	m, err := radio.NewMedium(sched, reg, cfg)
	if err != nil {
		panic(err)
	}
	return m
}
