package netstack

import (
	"math"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
)

// DefaultTTL bounds the hop count of a routed packet. The largest field in
// the paper's experiments is 800 m × 800 m with 63 m hops (~18 hops across
// the diagonal); 64 leaves generous room for perimeter detours.
const DefaultTTL = 64

// NeighborSource supplies a node's candidate next hops at forwarding time.
type NeighborSource interface {
	RoutingNeighbors() []Neighbor
}

// TableSource adapts a beacon-built NeighborTable as a NeighborSource —
// how sensors pick next hops.
type TableSource struct {
	Table *NeighborTable
}

// RoutingNeighbors implements NeighborSource.
func (s TableSource) RoutingNeighbors() []Neighbor { return s.Table.All() }

var _ NeighborSource = TableSource{}

// MediumSource derives next hops from ground-truth radio range. Robots and
// the central manager use it: their 250 m transmissions reach any station
// within range, and the HELLO/reply discovery that would populate their
// tables belongs to the paper's "initialization and failure detection"
// traffic, which Figures 3–4 exclude. Substituting the ground-truth query
// is therefore metric-neutral (documented in DESIGN.md).
type MediumSource struct {
	Medium *radio.Medium
	Self   radio.NodeID
	Pos    func() geom.Point
	Range  func() float64

	// entries and out are reusable query buffers: the router consumes the
	// returned slice before the next hop's query can run, so the per-hop
	// neighbor lookup is allocation-free in the steady state.
	entries []radio.RangeEntry
	out     []Neighbor
}

// RoutingNeighbors implements NeighborSource. The returned slice is valid
// until the next call and must not be retained.
func (s *MediumSource) RoutingNeighbors() []Neighbor {
	s.entries = s.Medium.AppendInRange(s.entries[:0], s.Pos(), s.Range(), s.Self)
	s.out = s.out[:0]
	for _, e := range s.entries {
		s.out = append(s.out, Neighbor{ID: e.ID, Loc: e.Loc})
	}
	return s.out
}

var _ NeighborSource = (*MediumSource)(nil)

// DropReason classifies why a packet was discarded.
type DropReason string

const (
	// DropTTL means the packet exceeded its hop budget.
	DropTTL DropReason = "ttl"
	// DropStuck means no forwarding progress was possible (isolated node
	// or empty neighbor set).
	DropStuck DropReason = "stuck"
)

// Router implements per-node geographic forwarding: greedy by default,
// face routing (right-hand rule on the Gabriel subgraph) to recover from
// holes, and a last-resort direct transmission toward a destination whose
// advertised location is already within the sender's range (how repair
// requests catch a robot that moved since its last location update).
type Router struct {
	// ID is this node's address.
	ID radio.NodeID
	// Pos returns this node's current location.
	Pos func() geom.Point
	// Range returns this node's transmission range.
	Range func() float64
	// Medium transmits frames.
	Medium *radio.Medium
	// Source supplies next-hop candidates.
	Source NeighborSource
	// Deliver receives packets addressed to this node.
	Deliver func(Packet)
	// OnDrop, if set, observes discarded packets.
	OnDrop func(Packet, DropReason)
	// RecordPaths makes packets originated here carry their full hop
	// path (diagnostics).
	RecordPaths bool
}

// Originate injects a locally-created packet into the network.
func (r *Router) Originate(p Packet) {
	p.Src = r.ID
	if p.TTL <= 0 {
		p.TTL = DefaultTTL
	}
	if p.Mode == 0 {
		p.Mode = ModeGreedy
	}
	if r.RecordPaths && p.Path == nil {
		p.Path = []radio.NodeID{r.ID}
	}
	r.process(p)
}

// Receive handles a packet that arrived in a frame addressed to this node.
func (r *Router) Receive(p Packet) { r.process(p) }

func (r *Router) process(p Packet) {
	if p.Dst == r.ID {
		if r.Deliver != nil {
			r.Deliver(p)
		}
		return
	}
	if p.TTL <= 0 {
		r.drop(p, DropTTL)
		return
	}
	self := r.Pos()
	neighbors := r.Source.RoutingNeighbors()

	// Direct delivery when the destination is a known neighbor.
	for _, n := range neighbors {
		if n.ID == p.Dst {
			r.transmit(p, n.ID)
			return
		}
	}

	if p.Mode == ModePerimeter && self.Dist2(p.DstLoc) < p.EntryLoc.Dist2(p.DstLoc) {
		p.Mode = ModeGreedy // recovered: closer than where we got stuck
	}

	switch p.Mode {
	case ModeGreedy:
		if next, ok := greedyNext(self, p.DstLoc, neighbors); ok {
			r.transmit(p, next.ID)
			return
		}
		// Hole. If the destination's advertised location is already in
		// range, transmit at it directly: the medium delivers iff the
		// destination is actually reachable (it may have moved ≤ the
		// 20 m update threshold).
		if self.Dist(p.DstLoc) <= r.Range() {
			r.transmit(p, p.Dst)
			return
		}
		p.Mode = ModePerimeter
		p.EntryLoc = self
		p.PrevLoc = p.DstLoc // first perimeter reference edge per GPSR
		fallthrough
	case ModePerimeter:
		if next, ok := perimeterNext(self, p.PrevLoc, neighbors); ok {
			p.PrevLoc = self
			r.transmit(p, next.ID)
			return
		}
		r.drop(p, DropStuck)
	default:
		r.drop(p, DropStuck)
	}
}

func (r *Router) transmit(p Packet, next radio.NodeID) {
	p.Hops++
	p.TTL--
	if p.Path != nil {
		// Copy-on-append: frames may be re-examined by diagnostics.
		path := make([]radio.NodeID, len(p.Path), len(p.Path)+1)
		copy(path, p.Path)
		p.Path = append(path, next)
	}
	r.Medium.Send(radio.Frame{
		Src:      r.ID,
		Dst:      next,
		Category: p.Category,
		Payload:  p,
	})
}

func (r *Router) drop(p Packet, reason DropReason) {
	if r.OnDrop != nil {
		r.OnDrop(p, reason)
	}
}

// greedyNext picks the neighbor strictly closer to dst than self, choosing
// the closest such neighbor; ok is false at a local minimum.
func greedyNext(self, dst geom.Point, neighbors []Neighbor) (Neighbor, bool) {
	selfD := self.Dist2(dst)
	best := Neighbor{}
	bestD := selfD
	found := false
	for _, n := range neighbors {
		if d := n.Loc.Dist2(dst); d < bestD {
			best, bestD = n, d
			found = true
		}
	}
	return best, found
}

// perimeterNext applies the right-hand rule: among the Gabriel-subgraph
// neighbors, take the first one counter-clockwise from the edge back
// toward prev.
func perimeterNext(self, prev geom.Point, neighbors []Neighbor) (Neighbor, bool) {
	witnesses := make([]geom.Point, len(neighbors))
	for i, n := range neighbors {
		witnesses[i] = n.Loc
	}
	ref := self.Angle(prev)
	best := Neighbor{}
	bestDelta := math.Inf(1)
	found := false
	for _, n := range neighbors {
		if !geom.GabrielEdge(self, n.Loc, witnesses) {
			continue
		}
		delta := math.Mod(self.Angle(n.Loc)-ref+4*math.Pi, 2*math.Pi)
		if delta < 1e-9 {
			delta = 2 * math.Pi // avoid bouncing straight back
		}
		if delta < bestDelta {
			best, bestDelta = n, delta
			found = true
		}
	}
	return best, found
}
