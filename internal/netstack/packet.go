// Package netstack implements the network layer the paper runs on top of
// GloMoSim: geographic routing ("based on face-routing [2] and our
// implementation parameters are the same as in GPSR [7]") plus the
// controlled flooding the two distributed manager algorithms use for robot
// location updates.
//
// Packets carry the destination's address and location, exactly like the
// paper's IP-option header. Each hop is one wireless transmission counted
// under the packet's Category, which is how the messaging-overhead figures
// are produced.
package netstack

import (
	"fmt"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
)

// RouteMode is the forwarding mode of a packet in flight.
type RouteMode int

const (
	// ModeGreedy forwards to the neighbor geographically closest to the
	// destination.
	ModeGreedy RouteMode = iota + 1
	// ModePerimeter walks faces of the local planar (Gabriel) subgraph by
	// the right-hand rule to escape a routing hole.
	ModePerimeter
)

// String names the mode.
func (m RouteMode) String() string {
	switch m {
	case ModeGreedy:
		return "greedy"
	case ModePerimeter:
		return "perimeter"
	default:
		return fmt.Sprintf("RouteMode(%d)", int(m))
	}
}

// Packet is a network-layer datagram routed by geographic forwarding.
type Packet struct {
	Src      radio.NodeID
	Dst      radio.NodeID
	DstLoc   geom.Point // destination's last known location
	Category string     // metrics category for each hop's transmission
	Payload  any

	Hops int // transmissions so far
	TTL  int // remaining hops before the packet is dropped

	Mode     RouteMode
	EntryLoc geom.Point // position where perimeter mode was entered
	PrevLoc  geom.Point // position of the previous perimeter hop

	// Path records every node the packet visited when path recording is
	// enabled at the originating Router (diagnostics; nil otherwise).
	Path []radio.NodeID
}

// FloodMsg is an application message disseminated by controlled flooding.
// (Origin, Seq) identifies the flood instance; every station relays a given
// instance at most once.
type FloodMsg struct {
	Origin   radio.NodeID
	Seq      uint64
	Category string
	Payload  any
	Hops     int // hops from the origin at the time of reception
	TTL      int // remaining relays permitted

	// Relays, when non-nil, is the sender-designated forwarder set of the
	// efficient broadcast scheme (§4.3.2 / broadcastopt): only listed
	// receivers may relay. Nil designates every receiver (blind flooding).
	Relays []radio.NodeID
}
