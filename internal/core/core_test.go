package core

import (
	"encoding/json"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/node"
	"roborepair/internal/radio"
	"roborepair/internal/robot"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

func TestAlgorithmNames(t *testing.T) {
	tests := []struct {
		alg  Algorithm
		name string
	}{
		{Centralized, "centralized"},
		{Fixed, "fixed"},
		{Dynamic, "dynamic"},
	}
	for _, tt := range tests {
		if tt.alg.String() != tt.name {
			t.Errorf("String(%q) = %q", string(tt.alg), tt.alg.String())
		}
		got, err := ParseAlgorithm(tt.name)
		if err != nil || got != tt.alg {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", tt.name, got, err)
		}
	}
	if _, err := ParseAlgorithm("nonsense"); err == nil {
		t.Error("ParseAlgorithm should reject unknown names")
	}
	if Algorithm("bogus").String() == "" {
		t.Error("unknown algorithm should still format")
	}
}

type coreRig struct {
	sched  *sim.Scheduler
	reg    *metrics.Registry
	medium *radio.Medium
}

func newCoreRig() *coreRig {
	sched := sim.NewScheduler()
	reg := metrics.NewRegistry()
	return &coreRig{sched: sched, reg: reg, medium: mustMedium(sched, reg, radio.Config{CellSize: 63})}
}

func (g *coreRig) sensor(id radio.NodeID, pos geom.Point, p node.Policy) *node.Sensor {
	s := node.NewSensor(id, pos, node.Config{
		Range: 63, BeaconPeriod: 10, MissedBeacons: 3, SettleDelay: 5, FloodTTL: FloodTTL,
	}, p, g.medium, node.Hooks{})
	s.Start(0.1, 1, false)
	return s
}

func robotUpdateFrame(robotID radio.NodeID, loc geom.Point, seq uint64) radio.Frame {
	return radio.Frame{Payload: netstack.FloodMsg{
		Origin:   robotID,
		Seq:      seq,
		Category: metrics.CatLocUpdate,
		Payload:  wire.RobotUpdate{Robot: robotID, Loc: loc, Seq: seq},
		TTL:      FloodTTL,
	}}
}

func TestCentralizedPolicyAdoptsOnlyManager(t *testing.T) {
	g := newCoreRig()
	p := CentralizedPolicy{ManagerID: 77}
	s := g.sensor(1, geom.Pt(0, 0), p)
	g.sched.Run(2)

	if relay := p.Consider(s, wire.RobotUpdate{Robot: 5, Loc: geom.Pt(10, 0)}); relay {
		t.Fatal("non-manager update must not relay")
	}
	if id, _ := s.Target(); id != 0 {
		t.Fatal("non-manager update must not set target")
	}
	if relay := p.Consider(s, wire.RobotUpdate{Robot: 77, Loc: geom.Pt(100, 100)}); !relay {
		t.Fatal("manager announcement must relay")
	}
	if id, loc := s.Target(); id != 77 || !loc.Eq(geom.Pt(100, 100)) {
		t.Fatalf("target = %v %v, want manager", id, loc)
	}
	if !p.GuardianOK(geom.Pt(0, 0), geom.Pt(999, 999)) {
		t.Fatal("centralized imposes no guardian restriction")
	}
}

func TestFixedPolicySubareaScoping(t *testing.T) {
	bounds := geom.Square(geom.Pt(0, 0), 400)
	part, err := geom.NewPartition(geom.PartitionSquare, bounds, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Robot 10 owns the subarea containing (100,100) — find its index.
	home := map[radio.NodeID]int{10: part.OwnerOf(geom.Pt(100, 100))}
	p := FixedPolicy{Partition: part, Home: home}

	g := newCoreRig()
	inArea := g.sensor(1, geom.Pt(50, 50), p)
	outArea := g.sensor(2, geom.Pt(300, 300), p)
	g.sched.Run(2)

	up := wire.RobotUpdate{Robot: 10, Loc: geom.Pt(100, 100), Seq: 2}
	if !p.Consider(inArea, up) {
		t.Fatal("sensor in robot's subarea must relay")
	}
	if id, _ := inArea.Target(); id != 10 {
		t.Fatal("subarea sensor must adopt its robot")
	}
	if p.Consider(outArea, up) {
		t.Fatal("sensor outside subarea must not relay")
	}
	if id, _ := outArea.Target(); id != 0 {
		t.Fatal("outside sensor must not adopt")
	}
	// Unknown robot: never relayed.
	if p.Consider(inArea, wire.RobotUpdate{Robot: 99, Loc: geom.Pt(100, 100)}) {
		t.Fatal("unknown robot relayed")
	}
}

func TestFixedPolicyGuardianSameSubarea(t *testing.T) {
	bounds := geom.Square(geom.Pt(0, 0), 400)
	part, _ := geom.NewPartition(geom.PartitionSquare, bounds, 4)
	p := FixedPolicy{Partition: part, Home: map[radio.NodeID]int{}}
	if !p.GuardianOK(geom.Pt(50, 50), geom.Pt(150, 150)) {
		t.Fatal("same-subarea pair rejected")
	}
	if p.GuardianOK(geom.Pt(50, 50), geom.Pt(250, 50)) {
		t.Fatal("cross-subarea pair accepted")
	}
}

func TestDynamicPolicyAdoptClosest(t *testing.T) {
	g := newCoreRig()
	p := DynamicPolicy{}
	s := g.sensor(1, geom.Pt(0, 0), p)
	g.sched.Run(2)

	// First robot heard is adopted and relayed.
	s.HandleFrame(robotUpdateFrame(10, geom.Pt(100, 0), 2))
	if id, _ := s.Target(); id != 10 {
		t.Fatalf("target = %v, want 10", id)
	}
	// A closer robot takes over.
	s.HandleFrame(robotUpdateFrame(11, geom.Pt(50, 0), 2))
	if id, _ := s.Target(); id != 11 {
		t.Fatalf("target = %v, want 11 (closer)", id)
	}
	// A farther robot does not.
	s.HandleFrame(robotUpdateFrame(12, geom.Pt(200, 0), 2))
	if id, _ := s.Target(); id != 11 {
		t.Fatalf("target = %v, want 11 still", id)
	}
}

func TestDynamicPolicyRelayRules(t *testing.T) {
	g := newCoreRig()
	p := DynamicPolicy{}
	s := g.sensor(1, geom.Pt(0, 0), p)
	g.sched.Run(2)
	// Seed knowledge directly through the policy.
	s.HandleFrame(robotUpdateFrame(10, geom.Pt(50, 0), 2))

	// Adoption: relays.
	if !p.Consider(s, wire.RobotUpdate{Robot: 10, Loc: geom.Pt(50, 0), Seq: 3}) {
		t.Fatal("update of current myrobot must relay")
	}
	// Unrelated far robot: no relay. (Must be heard first so the sensor
	// can compare distances; HandleFrame records then Consider decides.)
	s.HandleFrame(robotUpdateFrame(11, geom.Pt(300, 0), 2))
	if id, _ := s.Target(); id != 10 {
		t.Fatal("far robot should not be adopted")
	}
	if p.Consider(s, wire.RobotUpdate{Robot: 11, Loc: geom.Pt(300, 0), Seq: 3}) {
		t.Fatal("far robot update must not relay")
	}
	// Abandonment: my robot moves far away while another is closer — the
	// sensor switches target but still relays this update (it is in the
	// robot's old cell).
	s.HandleFrame(robotUpdateFrame(11, geom.Pt(40, 0), 3)) // 11 now closer? 40 < 50 yes
	if id, _ := s.Target(); id != 11 {
		t.Fatalf("should have switched to 11, got %v", id)
	}
	// Now 10 (the previous target of an earlier adoption) moves: since 10
	// is neither current target nor previous in this Consider call, check
	// the abandonment path explicitly: make 10 current again, then move it
	// far while 11 is closer.
	s.SetTarget(10, geom.Pt(50, 0))
	relay := p.Consider(s, wire.RobotUpdate{Robot: 10, Loc: geom.Pt(500, 0), Seq: 4})
	if !relay {
		t.Fatal("abandoning sensors must relay the departing robot's update")
	}
	if id, _ := s.Target(); id != 11 {
		t.Fatalf("target after abandonment = %v, want 11", id)
	}
}

func TestDynamicPolicyNoRobotsKnown(t *testing.T) {
	g := newCoreRig()
	p := DynamicPolicy{}
	s := g.sensor(1, geom.Pt(0, 0), p)
	g.sched.Run(2)
	if p.Consider(s, wire.RobotUpdate{Robot: 10, Loc: geom.Pt(10, 0)}) {
		// Consider is only called after noteRobot in production; calling it
		// cold must still be safe.
		t.Log("cold Consider relayed — acceptable only if a robot is known")
		if _, _, ok := s.ClosestKnownRobot(); !ok {
			t.Fatal("relayed with no robots known")
		}
	}
}

func TestUpdateCategorySplitsInitFromUpdates(t *testing.T) {
	if updateCategory(1) != metrics.CatInit {
		t.Fatal("seq 1 should be init traffic")
	}
	if updateCategory(2) != metrics.CatLocUpdate {
		t.Fatal("seq 2 should be location-update traffic")
	}
}

func TestFloodUpdatePublish(t *testing.T) {
	g := newCoreRig()
	s := g.sensor(1, geom.Pt(10, 0), DynamicPolicy{})
	r := robot.New(50, geom.Pt(0, 0), robot.Config{
		Speed: 1, Range: 250, UpdateThreshold: 20,
	}, FloodUpdate{}, g.medium, robot.Hooks{})
	r.Start(0)
	g.sched.Run(2)
	// Initial publish (seq 1): sensor hears it, learns the robot, adopts.
	if id, _ := s.Target(); id != 50 {
		t.Fatalf("sensor target = %v, want 50", id)
	}
	if g.reg.Tx(metrics.CatInit) == 0 {
		t.Fatal("initial flood not counted as init")
	}
	// Seq 1 flood is relayed by the adopting sensor under init category.
	if g.reg.Tx(metrics.CatLocUpdate) != 0 {
		t.Fatal("no location-update traffic expected yet")
	}
}

func TestCentralizedUpdatePublish(t *testing.T) {
	g := newCoreRig()
	mgr := NewManager(77, geom.Pt(100, 0), 250, g.medium, ManagerHooks{})
	mgr.Start(0)
	s := g.sensor(1, geom.Pt(10, 0), CentralizedPolicy{ManagerID: 77})
	r := robot.New(50, geom.Pt(0, 0), robot.Config{
		Speed: 1, Range: 250, UpdateThreshold: 20,
	}, CentralizedUpdate{ManagerID: 77, ManagerLoc: geom.Pt(100, 0)}, g.medium, robot.Hooks{})
	r.Start(0)
	g.sched.Run(2)
	// The robot's announce reached the sensor (one-hop) and the manager
	// (unicast): sensor knows the robot, manager tracks it.
	if _, ok := s.KnowsRobot(50); !ok {
		t.Fatal("sensor missed the robot's one-hop announce")
	}
	if _, ok := mgr.RobotLocations()[50]; !ok {
		t.Fatal("manager did not track the robot registration")
	}
	// Sensor's target must be the manager (set by the manager's own init
	// flood), not the robot.
	if id, _ := s.Target(); id != 77 {
		t.Fatalf("sensor target = %v, want manager 77", id)
	}
}

func TestManagerDispatchClosestRobot(t *testing.T) {
	g := newCoreRig()
	var issuedTo radio.NodeID
	mgr := NewManager(77, geom.Pt(200, 200), 250, g.medium, ManagerHooks{
		OnRequestIssued: func(_ wire.RepairRequest, to radio.NodeID) { issuedTo = to },
	})
	mgr.Start(0)
	mkRobot := func(id radio.NodeID, pos geom.Point) *robot.Robot {
		r := robot.New(id, pos, robot.Config{Speed: 1, Range: 250, UpdateThreshold: 20},
			CentralizedUpdate{ManagerID: 77, ManagerLoc: geom.Pt(200, 200)}, g.medium, robot.Hooks{})
		r.Start(0)
		return r
	}
	far := mkRobot(50, geom.Pt(390, 390))
	near := mkRobot(51, geom.Pt(60, 60))
	g.sched.Run(2)

	rep := wire.FailureReport{Failed: 5, Loc: geom.Pt(50, 50), Reporter: 1}
	mgr.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 77, DstLoc: mgr.Pos(), Category: metrics.CatFailureReport, Payload: rep,
	}})
	g.sched.Run(3)
	if issuedTo != 51 {
		t.Fatalf("dispatched to %v, want nearest robot 51", issuedTo)
	}
	if !near.Busy() {
		t.Fatal("nearest robot did not receive the repair request")
	}
	if far.Busy() {
		t.Fatal("far robot was dispatched")
	}
}

func TestManagerUndispatchableWithoutRobots(t *testing.T) {
	g := newCoreRig()
	var undis int
	mgr := NewManager(77, geom.Pt(0, 0), 250, g.medium, ManagerHooks{
		OnUndispatchable: func(wire.FailureReport) { undis++ },
	})
	mgr.Start(0)
	g.sched.Run(1)
	mgr.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 77, Payload: wire.FailureReport{Failed: 5, Loc: geom.Pt(5, 5)},
	}})
	if undis != 1 {
		t.Fatalf("undispatchable hook fired %d times, want 1", undis)
	}
}

func TestManagerInitFloodSetsAllTargets(t *testing.T) {
	g := newCoreRig()
	p := CentralizedPolicy{ManagerID: 77}
	// Chain of sensors so the flood must be relayed to reach the far end.
	sensors := make([]*node.Sensor, 6)
	for i := range sensors {
		sensors[i] = g.sensor(radio.NodeID(i+1), geom.Pt(float64(i)*50, 0), p)
	}
	mgr := NewManager(77, geom.Pt(0, 0), 250, g.medium, ManagerHooks{})
	mgr.Start(1.5)
	g.sched.Run(3)
	for i, s := range sensors {
		if id, _ := s.Target(); id != 77 {
			t.Fatalf("sensor %d target = %v, want 77", i, id)
		}
	}
}

func TestManagerTracksRobotUpdatePackets(t *testing.T) {
	g := newCoreRig()
	mgr := NewManager(77, geom.Pt(0, 0), 250, g.medium, ManagerHooks{})
	mgr.Start(0)
	g.sched.Run(1)
	mgr.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 77, Payload: wire.RobotUpdate{Robot: 50, Loc: geom.Pt(30, 40), Seq: 7},
	}})
	if loc, ok := mgr.RobotLocations()[50]; !ok || !loc.Eq(geom.Pt(30, 40)) {
		t.Fatalf("robot location not tracked: %v %v", loc, ok)
	}
}

func TestAlgorithmJSONRoundTrip(t *testing.T) {
	for _, alg := range []Algorithm{Centralized, Fixed, Dynamic} {
		data, err := json.Marshal(alg)
		if err != nil {
			t.Fatal(err)
		}
		want := `"` + alg.String() + `"`
		if string(data) != want {
			t.Fatalf("marshal = %s, want %s", data, want)
		}
		var back Algorithm
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != alg {
			t.Fatalf("round trip %v → %v", alg, back)
		}
	}
	// Unknown names unmarshal as plain strings — validation happens at
	// scenario.New / ParseAlgorithm, not in the decoder — but they must
	// not silently resolve to a known algorithm.
	var bad Algorithm
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAlgorithm(string(bad)); err == nil {
		t.Fatal("unknown name parsed")
	}
	if err := json.Unmarshal([]byte(`42`), &bad); err == nil {
		t.Fatal("non-string accepted")
	}
}

func TestDispatchPolicyNames(t *testing.T) {
	if DispatchClosest.String() != "closest" || DispatchShortestETA.String() != "shortest-eta" {
		t.Fatal("dispatch policy names wrong")
	}
}

func TestManagerETADispatchPrefersIdleRobot(t *testing.T) {
	g := newCoreRig()
	var issuedTo radio.NodeID
	mgr := NewManager(77, geom.Pt(200, 200), 250, g.medium, ManagerHooks{
		OnRequestIssued: func(_ wire.RepairRequest, to radio.NodeID) { issuedTo = to },
	})
	mgr.SetDispatchPolicy(DispatchShortestETA)
	mgr.Start(0)
	g.sched.Run(1)
	// Robot 50 is nearer the failure but buried under work; robot 51 is
	// a bit farther and idle.
	mgr.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 77, Payload: wire.RobotUpdate{Robot: 50, Loc: geom.Pt(90, 100), Seq: 2, Load: 5},
	}})
	mgr.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 77, Payload: wire.RobotUpdate{Robot: 51, Loc: geom.Pt(150, 100), Seq: 2, Load: 0},
	}})
	mgr.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 77, Payload: wire.FailureReport{Failed: 5, Loc: geom.Pt(100, 100)},
	}})
	if issuedTo != 51 {
		t.Fatalf("ETA dispatch chose %v, want the idle robot 51", issuedTo)
	}
	// Under the paper's closest rule, the same state picks robot 50.
	var closestTo radio.NodeID
	mgr2 := NewManager(78, geom.Pt(200, 200), 250, g.medium, ManagerHooks{
		OnRequestIssued: func(_ wire.RepairRequest, to radio.NodeID) { closestTo = to },
	})
	mgr2.Start(0)
	g.sched.Run(2)
	mgr2.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 78, Payload: wire.RobotUpdate{Robot: 50, Loc: geom.Pt(90, 100), Seq: 2, Load: 5},
	}})
	mgr2.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 78, Payload: wire.RobotUpdate{Robot: 51, Loc: geom.Pt(150, 100), Seq: 2, Load: 0},
	}})
	mgr2.HandleFrame(radio.Frame{Payload: netstack.Packet{
		Dst: 78, Payload: wire.FailureReport{Failed: 6, Loc: geom.Pt(100, 100)},
	}})
	if closestTo != 50 {
		t.Fatalf("closest dispatch chose %v, want nearest robot 50", closestTo)
	}
}

// mustMedium builds a medium for a config that cannot fail validation.
func mustMedium(sched *sim.Scheduler, reg *metrics.Registry, cfg radio.Config) *radio.Medium {
	m, err := radio.NewMedium(sched, reg, cfg)
	if err != nil {
		panic(err)
	}
	return m
}
