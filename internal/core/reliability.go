package core

import (
	"sort"

	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// ManagerReliability holds the central manager's knobs of the reliability
// extension. The zero value reproduces the paper's model exactly: no acks,
// no robot liveness tracking, no re-dispatch.
type ManagerReliability struct {
	// HeartbeatPeriod > 0 enables the protocol: the manager acknowledges
	// robot location updates and failure reports, tracks per-robot
	// liveness, and re-dispatches repair requests that a dead or silent
	// robot never acknowledged.
	HeartbeatPeriod sim.Duration
	// MissedHeartbeats is how many silent periods declare a robot dead
	// (3 when unset).
	MissedHeartbeats int
	// DispatchAckTimeout is the initial re-dispatch timeout for an
	// unacknowledged repair request (doubled per attempt, capped at 8x).
	DispatchAckTimeout sim.Duration
}

// Enabled reports whether the manager-side reliability protocol is on.
func (rl ManagerReliability) Enabled() bool { return rl.HeartbeatPeriod > 0 }

// deadAfter is the silence that declares a robot dead.
func (rl ManagerReliability) deadAfter() sim.Duration {
	n := rl.MissedHeartbeats
	if n <= 0 {
		n = 3
	}
	return rl.HeartbeatPeriod * sim.Duration(n)
}

// mgrDispatch is a repair request the manager has issued and not yet seen
// completed.
type mgrDispatch struct {
	req      wire.RepairRequest
	robot    radio.NodeID
	lastSent sim.Time
	attempts int
	acked    bool
}

// SetReliability enables the manager-side reliability protocol; call it
// before Start.
func (m *Manager) SetReliability(rl ManagerReliability) {
	m.rel = rl
	if rl.Enabled() {
		m.lastHeard = make(map[radio.NodeID]sim.Time)
		m.seen = make(map[radio.NodeID]bool)
		m.outstanding = make(map[radio.NodeID]*mgrDispatch)
	}
}

// FailNow crashes the manager (resilience extension): it falls silent and
// stops dispatching. The paper's model never calls this.
func (m *Manager) FailNow() {
	if m.failed {
		return
	}
	m.failed = true
	m.medium.SetActive(m.id, false)
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// Alive reports whether the manager is operational.
func (m *Manager) Alive() bool { return !m.failed }

// heardFlood lets the manager notice a robot's standing manager claim: it
// was silenced long enough (e.g. by a regional blackout) for the fleet to
// declare it dead and elect a replacement, so it stands down rather than
// run a split-brain dispatch against the new manager.
func (m *Manager) heardFlood(fl netstack.FloodMsg) {
	if !m.rel.Enabled() {
		return
	}
	switch pl := fl.Payload.(type) {
	case wire.ManagerTakeover:
		if pl.Manager != m.id {
			m.depose()
		}
	case wire.RobotUpdate:
		if pl.Managing && pl.Robot != m.id {
			m.depose()
		}
	}
}

// depose permanently silences a superseded manager.
func (m *Manager) depose() {
	if m.deposed {
		return
	}
	m.deposed = true
	if m.ticker != nil {
		m.ticker.Stop()
	}
	if m.hooks.OnDeposed != nil {
		m.hooks.OnDeposed()
	}
}

// noteRobot refreshes a robot's liveness timestamp.
func (m *Manager) noteRobot(id radio.NodeID) {
	if m.lastHeard != nil {
		m.lastHeard[id] = m.medium.Scheduler().Now()
	}
}

// ackHeartbeat acknowledges a robot's location update so the robot can
// detect a manager crash by silence.
func (m *Manager) ackHeartbeat(up wire.RobotUpdate) {
	m.router.Originate(netstack.Packet{
		Dst:      up.Robot,
		DstLoc:   up.Loc,
		Category: metrics.CatAck,
		Payload:  wire.HeartbeatAck{Manager: m.id, Seq: up.Seq},
	})
}

// ackReport routes an ack back to a reporting guardian so it stops
// retransmitting. Reports without a sequence number expect no ack.
func (m *Manager) ackReport(rep wire.FailureReport) {
	if rep.Seq == 0 || rep.Reporter == 0 {
		return
	}
	m.router.Originate(netstack.Packet{
		Dst:      rep.Reporter,
		DstLoc:   rep.ReporterLoc,
		Category: metrics.CatAck,
		Payload:  wire.ReportAck{Reporter: rep.Reporter, Failed: rep.Failed, Seq: rep.Seq},
	})
}

// robotStale reports whether a robot has been silent past the liveness
// deadline (only meaningful with reliability enabled).
func (m *Manager) robotStale(id radio.NodeID, now sim.Time) bool {
	if m.lastHeard == nil {
		return false
	}
	heard, ok := m.lastHeard[id]
	return !ok || heard < now.Sub(m.rel.deadAfter())
}

// relTick re-dispatches outstanding requests whose robot died or never
// acknowledged, with per-request exponential backoff.
func (m *Manager) relTick() {
	if m.failed || m.deposed || len(m.outstanding) == 0 {
		return
	}
	now := m.medium.Scheduler().Now()
	ids := make([]radio.NodeID, 0, len(m.outstanding))
	for id := range m.outstanding {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, failed := range ids {
		o := m.outstanding[failed]
		timeout := m.rel.DispatchAckTimeout * sim.Duration(uint64(1)<<uint(min(max(o.attempts-1, 0), 3)))
		if m.robotStale(o.robot, now) || (!o.acked && now.Sub(o.lastSent) >= timeout) {
			m.redispatch(o, now)
		}
	}
}

// redispatch re-issues an outstanding request to the closest live robot.
func (m *Manager) redispatch(o *mgrDispatch, now sim.Time) {
	best, ok := m.selectRobot(o.req.Loc, now)
	if !ok {
		return // no live robot known; keep the request outstanding
	}
	o.attempts++
	o.robot = best
	o.lastSent = now
	o.acked = false
	if m.hooks.OnRedispatch != nil {
		m.hooks.OnRedispatch(o.req, best, o.attempts)
	}
	m.router.Originate(netstack.Packet{
		Dst:      best,
		DstLoc:   m.robots[best].loc,
		Category: metrics.CatRepairRequest,
		Payload:  o.req,
	})
}
