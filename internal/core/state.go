package core

import (
	"sort"

	"roborepair/internal/checkpoint"
	"roborepair/internal/radio"
)

// AppendState serializes the central manager's complete dynamic state in
// canonical order (checkpoint section payload).
func (m *Manager) AppendState(b []byte) []byte {
	b = checkpoint.AppendI64(b, int64(m.id))
	b = checkpoint.AppendF64(b, m.pos.X)
	b = checkpoint.AppendF64(b, m.pos.Y)
	b = checkpoint.AppendF64(b, m.meanDispatchDist)
	b = checkpoint.AppendI64(b, int64(m.dispatches))
	b = checkpoint.AppendU64(b, m.seq)
	b = checkpoint.AppendU64(b, m.replayRejected)
	b = checkpoint.AppendBool(b, m.failed)
	b = checkpoint.AppendBool(b, m.deposed)

	robotIDs := make([]radio.NodeID, 0, len(m.robots))
	for id := range m.robots {
		robotIDs = append(robotIDs, id)
	}
	sort.Slice(robotIDs, func(i, j int) bool { return robotIDs[i] < robotIDs[j] })
	b = checkpoint.AppendU32(b, uint32(len(robotIDs)))
	for _, id := range robotIDs {
		info := m.robots[id]
		b = checkpoint.AppendI64(b, int64(id))
		b = checkpoint.AppendF64(b, info.loc.X)
		b = checkpoint.AppendF64(b, info.loc.Y)
		b = checkpoint.AppendI64(b, int64(info.load))
		b = checkpoint.AppendU64(b, info.seq)
	}

	heardIDs := make([]radio.NodeID, 0, len(m.lastHeard))
	for id := range m.lastHeard {
		heardIDs = append(heardIDs, id)
	}
	sort.Slice(heardIDs, func(i, j int) bool { return heardIDs[i] < heardIDs[j] })
	b = checkpoint.AppendU32(b, uint32(len(heardIDs)))
	for _, id := range heardIDs {
		b = checkpoint.AppendI64(b, int64(id))
		b = checkpoint.AppendF64(b, float64(m.lastHeard[id]))
	}

	seenIDs := make([]radio.NodeID, 0, len(m.seen))
	for id, on := range m.seen {
		if on {
			seenIDs = append(seenIDs, id)
		}
	}
	sort.Slice(seenIDs, func(i, j int) bool { return seenIDs[i] < seenIDs[j] })
	b = checkpoint.AppendU32(b, uint32(len(seenIDs)))
	for _, id := range seenIDs {
		b = checkpoint.AppendI64(b, int64(id))
	}

	outIDs := make([]radio.NodeID, 0, len(m.outstanding))
	for id := range m.outstanding {
		outIDs = append(outIDs, id)
	}
	sort.Slice(outIDs, func(i, j int) bool { return outIDs[i] < outIDs[j] })
	b = checkpoint.AppendU32(b, uint32(len(outIDs)))
	for _, id := range outIDs {
		o := m.outstanding[id]
		b = checkpoint.AppendI64(b, int64(id))
		b = checkpoint.AppendI64(b, int64(o.req.Failed))
		b = checkpoint.AppendF64(b, o.req.Loc.X)
		b = checkpoint.AppendF64(b, o.req.Loc.Y)
		b = checkpoint.AppendF64(b, float64(o.req.IssuedAt))
		b = checkpoint.AppendI64(b, int64(o.req.Manager))
		b = checkpoint.AppendF64(b, o.req.ManagerLoc.X)
		b = checkpoint.AppendF64(b, o.req.ManagerLoc.Y)
		b = checkpoint.AppendI64(b, int64(o.robot))
		b = checkpoint.AppendF64(b, float64(o.lastSent))
		b = checkpoint.AppendI64(b, int64(o.attempts))
		b = checkpoint.AppendBool(b, o.acked)
	}
	return b
}
