// Package core implements the paper's contribution: the three robot
// coordination algorithms for sensor replacement.
//
//   - Centralized manager (§3.1): a static robot at the field center
//     receives every failure report and forwards each to the maintenance
//     robot currently closest to the failure. Robots update their location
//     to the manager by unicast and to nearby sensors by one-hop broadcast.
//
//   - Fixed distributed manager (§3.2): the field is partitioned into
//     equal subareas, one robot per subarea; each robot is both manager
//     and maintainer for its subarea. Location updates are flooded to the
//     subarea's sensors.
//
//   - Dynamic distributed manager (§3.3): subareas are implicit Voronoi
//     cells maintained by message passing — each sensor tracks the closest
//     robot it has heard of ("myrobot") and relays a robot's location
//     update if it adopts (or previously held) that robot, so the relay
//     region approximates the union of the robot's old and new cells.
//
// The package provides the sensor-side policies (node.Policy), the
// robot-side update dissemination modes (robot.UpdateMode), and the
// central manager station.
package core

import (
	"fmt"
	"sort"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/node"
	"roborepair/internal/radio"
	"roborepair/internal/robot"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// Algorithm names a coordination algorithm. It is a string key so the
// algorithm registry (internal/algorithm) can be extended without touching
// this package; its JSON form is the bare name, byte-identical to the
// figure-style encoding the former enum marshaled to, so config hashes and
// checkpoints round-trip unchanged across the registry refactor.
type Algorithm string

const (
	// Centralized is the central-manager algorithm of §3.1.
	Centralized Algorithm = "centralized"
	// Fixed is the fixed distributed manager algorithm of §3.2.
	Fixed Algorithm = "fixed"
	// Dynamic is the dynamic distributed manager algorithm of §3.3.
	Dynamic Algorithm = "dynamic"
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string { return string(a) }

// ParseAlgorithm converts a figure-style name of one of the paper's three
// algorithms into an Algorithm. It predates the registry and is kept for
// backward compatibility; registry-aware callers (the CLIs, the facade)
// should use algorithm.Parse, which also accepts registered extensions
// such as "facility".
func ParseAlgorithm(s string) (Algorithm, error) {
	switch Algorithm(s) {
	case Centralized, Fixed, Dynamic:
		return Algorithm(s), nil
	default:
		return "", fmt.Errorf("core: unknown algorithm %q", s)
	}
}

// FloodTTL is the safety bound on location-update flood relaying; the
// relay predicate, not the TTL, is the intended scope limit.
const FloodTTL = 32

// updateCategory assigns a robot's very first announcement (sequence 1) to
// initialization traffic; all later updates are location-update traffic,
// the quantity of Figure 4.
func updateCategory(seq uint64) string {
	if seq <= 1 {
		return metrics.CatInit
	}
	return metrics.CatLocUpdate
}

// ---------------------------------------------------------------------
// Centralized manager algorithm
// ---------------------------------------------------------------------

// CentralizedPolicy is the sensor policy under the centralized algorithm:
// every sensor reports to the static central manager, and the only flood a
// sensor relays is the manager's initial network-wide announcement.
type CentralizedPolicy struct {
	ManagerID radio.NodeID
}

// Consider implements node.Policy.
func (p CentralizedPolicy) Consider(s *node.Sensor, up wire.RobotUpdate) bool {
	if up.Robot != p.ManagerID {
		return false // maintenance robots announce one-hop only
	}
	s.SetTarget(up.Robot, up.Loc)
	return true
}

// GuardianOK implements node.Policy: no restriction.
func (p CentralizedPolicy) GuardianOK(_, _ geom.Point) bool { return true }

var _ node.Policy = CentralizedPolicy{}

// CentralizedUpdate is the robot-side update mode under the centralized
// algorithm: a geographically routed unicast to the manager plus a one-hop
// broadcast to neighbor sensors (§3.1).
type CentralizedUpdate struct {
	ManagerID  radio.NodeID
	ManagerLoc geom.Point
}

// Publish implements robot.UpdateMode.
func (u CentralizedUpdate) Publish(r *robot.Robot, up wire.RobotUpdate) {
	cat := updateCategory(up.Seq)
	// One-hop broadcast so nearby sensors can deliver failure traffic to
	// the moving robot.
	r.Router().Medium.Send(radio.Frame{
		Src:      r.ID(),
		Dst:      radio.IDBroadcast,
		Category: cat,
		Payload:  up,
	})
	// Unicast to the manager so dispatch decisions use fresh locations.
	// After a manager failover the robot tracks its elected replacement
	// (reliability extension); otherwise the configured static manager.
	mgrID, mgrLoc := u.ManagerID, u.ManagerLoc
	if id, loc, ok := r.ManagerTarget(); ok {
		mgrID, mgrLoc = id, loc
	}
	if mgrID == r.ID() {
		return // this robot is the manager; nothing to unicast
	}
	r.Router().Originate(netstack.Packet{
		Dst:      mgrID,
		DstLoc:   mgrLoc,
		Category: cat,
		Payload:  up,
	})
}

var _ robot.UpdateMode = CentralizedUpdate{}

// DispatchPolicy selects how the central manager picks the robot for a
// failure.
type DispatchPolicy int

const (
	// DispatchClosest is the paper's rule: "the manager selects the robot
	// whose current location is the closest to the failure".
	DispatchClosest DispatchPolicy = iota
	// DispatchShortestETA is the future-work extension: the manager
	// scores each robot by distance plus its outstanding workload (from
	// the Load field of its location updates), avoiding the myopic
	// pile-up on a busy robot that happens to sit nearby.
	DispatchShortestETA
)

// String names the policy.
func (p DispatchPolicy) String() string {
	if p == DispatchShortestETA {
		return "shortest-eta"
	}
	return "closest"
}

// RobotView is the manager's exported view of one tracked maintenance
// robot, handed to pluggable dispatch selectors.
type RobotView struct {
	ID   radio.NodeID
	Loc  geom.Point
	Load int
}

// Selector is a pluggable dispatch rule consulted before the built-in
// policies: given a failure location and the live tracked robots in
// ascending ID order, it names the robot to dispatch. Returning ok=false
// (or a robot the manager does not consider live) falls back to the
// built-in policy. Registered algorithm strategies (e.g. the
// facility-location family) install one via SetSelector.
type Selector func(loc geom.Point, robots []RobotView) (radio.NodeID, bool)

// ManagerHooks observe the central manager.
type ManagerHooks struct {
	// OnReportReceived fires when a failure report reaches the manager.
	OnReportReceived func(rep wire.FailureReport, hops int)
	// OnRequestIssued fires when the manager dispatches a repair request.
	OnRequestIssued func(req wire.RepairRequest, to radio.NodeID)
	// OnUndispatchable fires when a report arrives before any robot
	// location is known.
	OnUndispatchable func(rep wire.FailureReport)
	// OnRedispatch fires when the manager re-issues an outstanding repair
	// request after a robot death or ack timeout (reliability extension).
	OnRedispatch func(req wire.RepairRequest, to radio.NodeID, attempt int)
	// OnDeposed fires when the manager stands down after hearing a robot's
	// standing manager claim (the fleet declared it dead and moved on).
	OnDeposed func()
}

// Manager is the static central manager station of §3.1. It is modeled as
// a robot that does not move, "located at the center of the area to
// balance failure reports from all directions".
type Manager struct {
	id     radio.NodeID
	pos    geom.Point
	rng    float64
	medium *radio.Medium
	router *netstack.Router
	hooks  ManagerHooks
	policy DispatchPolicy

	robots   map[radio.NodeID]robotInfo
	selector Selector
	// meanDispatchDist is the running mean of dispatch distances, used as
	// the per-task service estimate by the ETA policy.
	meanDispatchDist float64
	dispatches       int
	seq              uint64

	// strictSeq rejects robot updates whose Seq is below the last accepted
	// one (hostile-channel defense against stale replays); replayRejected
	// counts the rejections.
	strictSeq      bool
	replayRejected uint64

	// Reliability-extension state (inert when rel is zero).
	rel         ManagerReliability
	failed      bool
	deposed     bool
	ticker      *sim.Ticker
	lastHeard   map[radio.NodeID]sim.Time
	seen        map[radio.NodeID]bool         // failed IDs already dispatched
	outstanding map[radio.NodeID]*mgrDispatch // issued requests by failed ID
}

// robotInfo is the manager's view of one maintenance robot.
type robotInfo struct {
	loc  geom.Point
	load int
	seq  uint64
}

var _ radio.Station = (*Manager)(nil)

// NewManager constructs the manager at pos (the field center) with the
// robot transmission range.
func NewManager(id radio.NodeID, pos geom.Point, txRange float64, medium *radio.Medium, hooks ManagerHooks) *Manager {
	m := &Manager{
		id:     id,
		pos:    pos,
		rng:    txRange,
		medium: medium,
		hooks:  hooks,
		robots: make(map[radio.NodeID]robotInfo),
	}
	m.router = &netstack.Router{
		ID:     id,
		Pos:    func() geom.Point { return m.pos },
		Range:  func() float64 { return m.rng },
		Medium: medium,
		Source: &netstack.MediumSource{
			Medium: medium,
			Self:   id,
			Pos:    func() geom.Point { return m.pos },
			Range:  func() float64 { return m.rng },
		},
		Deliver: m.deliver,
		OnDrop: func(p netstack.Packet, reason netstack.DropReason) {
			medium.Metrics().CountTx("drop_"+string(reason), 1)
		},
	}
	return m
}

// ID returns the manager's address.
func (m *Manager) ID() radio.NodeID { return m.id }

// Pos returns the manager's fixed location.
func (m *Manager) Pos() geom.Point { return m.pos }

// RobotLocations returns a copy of the manager's tracked robot positions.
func (m *Manager) RobotLocations() map[radio.NodeID]geom.Point {
	out := make(map[radio.NodeID]geom.Point, len(m.robots))
	for k, v := range m.robots {
		out[k] = v.loc
	}
	return out
}

// SetDispatchPolicy selects the dispatch rule (DispatchClosest default).
func (m *Manager) SetDispatchPolicy(p DispatchPolicy) { m.policy = p }

// SetSelector installs a pluggable dispatch selector consulted before the
// built-in policy (nil removes it).
func (m *Manager) SetSelector(sel Selector) { m.selector = sel }

// Router exposes the manager's geographic router so registered strategies
// can originate their own control traffic (e.g. relocation commands) from
// the manager station.
func (m *Manager) Router() *netstack.Router { return m.router }

// Active reports whether the manager is operating: neither crashed nor
// deposed by an elected successor.
func (m *Manager) Active() bool { return !m.failed && !m.deposed }

// RobotViews returns the manager's tracked robots in ascending ID order,
// skipping robots past the liveness deadline when the reliability protocol
// is on.
func (m *Manager) RobotViews() []RobotView {
	now := m.medium.Scheduler().Now()
	out := make([]RobotView, 0, len(m.robots))
	for id, info := range m.robots {
		if m.rel.Enabled() && m.robotStale(id, now) {
			continue
		}
		out = append(out, RobotView{ID: id, Loc: info.loc, Load: info.load})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetStrictSeq toggles rejection of stale-sequence robot updates. The
// hostile-channel layer turns it on; it stays off on a benign medium,
// where multi-path relaying genuinely reorders updates.
func (m *Manager) SetStrictSeq(on bool) { m.strictSeq = on }

// ReplayRejected reports how many robot updates the strict-sequence guard
// rejected as stale.
func (m *Manager) ReplayRejected() uint64 { return m.replayRejected }

// RadioID implements radio.Station.
func (m *Manager) RadioID() radio.NodeID { return m.id }

// RadioPos implements radio.Station.
func (m *Manager) RadioPos() geom.Point { return m.pos }

// RadioRange implements radio.Station.
func (m *Manager) RadioRange() float64 { return m.rng }

// RadioActive implements radio.Station: the manager does not fail in the
// paper's model; the resilience extension can crash it via FailNow.
func (m *Manager) RadioActive() bool { return !m.failed }

// Start attaches the manager and floods its location network-wide after
// initDelay ("the manager broadcasts its location to all the sensor nodes
// and all the maintenance robots", §3.1).
func (m *Manager) Start(initDelay sim.Duration) {
	m.medium.Attach(m)
	if m.rel.Enabled() {
		t, err := m.medium.Scheduler().NewTicker(m.rel.HeartbeatPeriod, m.rel.HeartbeatPeriod, m.relTick)
		if err != nil {
			panic(err) // unreachable: Enabled() implies a positive period
		}
		m.ticker = t
	}
	m.medium.Scheduler().After(initDelay, func() {
		m.seq++
		m.medium.Send(radio.Frame{
			Src:      m.id,
			Dst:      radio.IDBroadcast,
			Category: metrics.CatInit,
			Payload: netstack.FloodMsg{
				Origin:   m.id,
				Seq:      m.seq,
				Category: metrics.CatInit,
				Payload:  wire.RobotUpdate{Robot: m.id, Loc: m.pos, Seq: m.seq},
				TTL:      FloodTTL,
			},
		})
	})
}

// TrackRobot primes the manager's location table (used when robots
// register by unicast during initialization).
func (m *Manager) TrackRobot(id radio.NodeID, loc geom.Point) {
	m.robots[id] = robotInfo{loc: loc}
	m.noteRobot(id)
}

// HandleFrame implements radio.Station.
func (m *Manager) HandleFrame(f radio.Frame) {
	if m.failed || m.deposed {
		return
	}
	switch p := f.Payload.(type) {
	case netstack.Packet:
		m.router.Receive(p)
	case netstack.FloodMsg:
		m.heardFlood(p)
	}
}

// deliver processes packets addressed to the manager: robot location
// updates refresh the dispatch table, failure reports are forwarded to the
// closest robot.
func (m *Manager) deliver(p netstack.Packet) {
	if m.failed || m.deposed {
		return
	}
	switch msg := p.Payload.(type) {
	case wire.RobotUpdate:
		if info, ok := m.robots[msg.Robot]; m.strictSeq && ok && msg.Seq < info.seq {
			// Hostile channel: a replayed update would roll the robot's
			// position back. Equal Seq is an idempotent duplicate and passes.
			m.replayRejected++
			return
		}
		m.robots[msg.Robot] = robotInfo{loc: msg.Loc, load: msg.Load, seq: msg.Seq}
		if m.rel.Enabled() {
			m.noteRobot(msg.Robot)
			m.ackHeartbeat(msg)
		}
	case wire.FailureReport:
		if m.hooks.OnReportReceived != nil {
			m.hooks.OnReportReceived(msg, p.Hops)
		}
		if m.rel.Enabled() {
			// Ack first — even a duplicate means the reporter must stop
			// retransmitting — then deduplicate by failed node.
			m.ackReport(msg)
			if m.seen[msg.Failed] {
				return
			}
			m.seen[msg.Failed] = true
		}
		m.dispatch(msg)
	case wire.DispatchAck:
		if o, ok := m.outstanding[msg.Failed]; ok && o.robot == msg.Robot {
			o.acked = true
		}
	case wire.RepairDone:
		if m.rel.Enabled() {
			delete(m.outstanding, msg.Failed)
			delete(m.seen, msg.Failed)
		}
	}
}

// selectRobot picks the robot for a failure location per the dispatch
// policy, skipping robots past the liveness deadline when the reliability
// protocol is on.
func (m *Manager) selectRobot(loc geom.Point, now sim.Time) (radio.NodeID, bool) {
	if m.selector != nil {
		if id, ok := m.selector(loc, m.RobotViews()); ok {
			if _, tracked := m.robots[id]; tracked && !(m.rel.Enabled() && m.robotStale(id, now)) {
				return id, true
			}
		}
	}
	var best radio.NodeID
	bestScore := -1.0
	for id, info := range m.robots {
		if m.rel.Enabled() && m.robotStale(id, now) {
			continue
		}
		var score float64
		switch m.policy {
		case DispatchShortestETA:
			est := m.meanDispatchDist
			if m.dispatches == 0 {
				est = 100 // the geometry’s prior (½·√(area/robot))
			}
			score = info.loc.Dist(loc) + float64(info.load)*est
		default:
			score = info.loc.Dist2(loc)
		}
		if bestScore < 0 || score < bestScore || (score == bestScore && id < best) {
			best, bestScore = id, score
		}
	}
	return best, bestScore >= 0
}

// dispatch selects the robot for a failure per the dispatch policy — by
// default "the robot whose current location is the closest to the
// failure" — and forwards a repair request to it.
func (m *Manager) dispatch(rep wire.FailureReport) {
	now := m.medium.Scheduler().Now()
	req := wire.RepairRequest{Failed: rep.Failed, Loc: rep.Loc, IssuedAt: now}
	if m.rel.Enabled() {
		req.Manager, req.ManagerLoc = m.id, m.pos
	}
	best, ok := m.selectRobot(rep.Loc, now)
	if !ok {
		if m.hooks.OnUndispatchable != nil {
			m.hooks.OnUndispatchable(rep)
		}
		if m.outstanding != nil {
			// Responsibility is already acknowledged to the reporter: keep
			// the request outstanding until a live robot appears.
			m.outstanding[rep.Failed] = &mgrDispatch{req: req, lastSent: now}
		}
		return
	}
	d := m.robots[best].loc.Dist(rep.Loc)
	m.meanDispatchDist = (m.meanDispatchDist*float64(m.dispatches) + d) / float64(m.dispatches+1)
	m.dispatches++
	if m.hooks.OnRequestIssued != nil {
		m.hooks.OnRequestIssued(req, best)
	}
	if m.outstanding != nil {
		m.outstanding[rep.Failed] = &mgrDispatch{req: req, robot: best, lastSent: now, attempts: 1}
	}
	m.router.Originate(netstack.Packet{
		Dst:      best,
		DstLoc:   m.robots[best].loc,
		Category: metrics.CatRepairRequest,
		Payload:  req,
	})
}

// ---------------------------------------------------------------------
// Fixed distributed manager algorithm
// ---------------------------------------------------------------------

// FixedPolicy is the sensor policy under the fixed algorithm: the sensor's
// myrobot is the robot assigned to its subarea, and a robot's location
// updates are relayed by exactly the sensors of that robot's subarea.
type FixedPolicy struct {
	Partition *geom.Partition
	// Home maps each robot ID to its subarea index.
	Home map[radio.NodeID]int
}

// Consider implements node.Policy.
func (p FixedPolicy) Consider(s *node.Sensor, up wire.RobotUpdate) bool {
	home, ok := p.Home[up.Robot]
	if !ok {
		return false
	}
	if p.Partition.OwnerOf(s.Pos()) != home {
		return false
	}
	s.SetTarget(up.Robot, up.Loc)
	return true
}

// GuardianOK implements node.Policy: guardian and guardee must share a
// subarea (§3.2).
func (p FixedPolicy) GuardianOK(guardee, guardian geom.Point) bool {
	return p.Partition.OwnerOf(guardee) == p.Partition.OwnerOf(guardian)
}

var _ node.Policy = FixedPolicy{}

// FloodUpdate is the robot-side update mode of both distributed
// algorithms: the robot originates a controlled flood; sensor policies
// bound its extent.
type FloodUpdate struct{}

// Publish implements robot.UpdateMode.
func (FloodUpdate) Publish(r *robot.Robot, up wire.RobotUpdate) {
	cat := updateCategory(up.Seq)
	r.Router().Medium.Send(radio.Frame{
		Src:      r.ID(),
		Dst:      radio.IDBroadcast,
		Category: cat,
		Payload: netstack.FloodMsg{
			Origin:   r.ID(),
			Seq:      up.Seq,
			Category: cat,
			Payload:  up,
			TTL:      FloodTTL,
		},
	})
}

var _ robot.UpdateMode = FloodUpdate{}

// ---------------------------------------------------------------------
// Dynamic distributed manager algorithm
// ---------------------------------------------------------------------

// DynamicPolicy is the sensor policy under the dynamic algorithm: each
// sensor keeps myrobot = the closest robot it has heard of, and relays a
// robot's update when it adopts that robot or is abandoning it — so the
// relay region approximates the union of the robot's old and new Voronoi
// cells (the shaded region of the paper's Figure 1).
type DynamicPolicy struct{}

// Consider implements node.Policy.
func (DynamicPolicy) Consider(s *node.Sensor, up wire.RobotUpdate) bool {
	prev, _ := s.Target()
	best, bestLoc, ok := s.ClosestKnownRobot()
	if !ok {
		return false
	}
	s.SetTarget(best, bestLoc)
	return best == up.Robot || prev == up.Robot
}

// GuardianOK implements node.Policy: no restriction.
func (DynamicPolicy) GuardianOK(_, _ geom.Point) bool { return true }

var _ node.Policy = DynamicPolicy{}
