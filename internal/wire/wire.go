// Package wire defines the application-level message bodies exchanged by
// sensors, robots, and managers. Bodies travel either as raw one-hop
// frames (beacons, announcements), as geographically routed packets
// (failure reports, repair requests), or inside controlled floods (robot
// location updates).
package wire

import (
	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
)

// Beacon is the periodic one-hop heartbeat every sensor sends for failure
// detection; it carries the sender's location so receivers can maintain
// neighbor tables.
type Beacon struct {
	From radio.NodeID
	Loc  geom.Point
}

// LocationAnnounce is a one-hop location broadcast: sensors send it once
// during initialization, replacement nodes send it when deployed, and
// robots send it alongside their location updates so nearby sensors can
// deliver failure messages to them.
type LocationAnnounce struct {
	From radio.NodeID
	Loc  geom.Point
	// Replacement marks the boot broadcast of a freshly deployed node,
	// which prompts neighbors to answer with beacons (§4.2(a)).
	Replacement bool
}

// GuardianConfirm establishes the guardian–guardee relationship: the
// sender (guardee) asks the addressee to guard it.
type GuardianConfirm struct {
	From radio.NodeID
	Loc  geom.Point
}

// FailureReport travels from the detecting guardian to the manager (or
// directly to "myrobot" in the distributed algorithms).
type FailureReport struct {
	Failed     radio.NodeID
	Loc        geom.Point
	Reporter   radio.NodeID
	DetectedAt sim.Time
	// Seq numbers the reporter's reports so retransmissions can be
	// acknowledged individually. Zero in the paper's fire-and-forget
	// model; assigned only when the reliability extension is enabled.
	Seq uint64
	// ReporterLoc lets the receiver geographically route an ack back to
	// the reporter. The zero point means "no ack expected".
	ReporterLoc geom.Point
}

// ReportAck confirms reception of a FailureReport. It is routed back to
// the reporter, which stops retransmitting that report.
type ReportAck struct {
	Reporter radio.NodeID
	Failed   radio.NodeID
	Seq      uint64
}

// HeartbeatAck is the manager's answer to a robot's RobotUpdate unicast.
// Robots use the absence of acks to detect a dead manager.
type HeartbeatAck struct {
	Manager radio.NodeID
	Seq     uint64
}

// DispatchAck confirms that a robot accepted a RepairRequest, so the
// dispatcher stops re-sending it.
type DispatchAck struct {
	Robot  radio.NodeID
	Failed radio.NodeID
}

// RepairDone tells the dispatcher a repair completed, clearing the
// outstanding request so a robot death afterwards does not re-dispatch it.
type RepairDone struct {
	Robot  radio.NodeID
	Failed radio.NodeID
}

// ManagerTakeover is flooded by the robot that assumes the manager role
// after the central manager dies. Sensors retarget their reports and
// robots redirect their location updates to the new manager.
type ManagerTakeover struct {
	Manager radio.NodeID
	Loc     geom.Point
}

// RepairRequest is forwarded by the central manager to the maintenance
// robot chosen for a failure.
type RepairRequest struct {
	Failed   radio.NodeID
	Loc      geom.Point
	IssuedAt sim.Time
	// Manager identifies the dispatcher that issued the request, so the
	// chosen robot acknowledges the actual requester rather than whoever
	// it currently believes the manager to be (they can differ during a
	// failover transient). Zero means the paper's implicit static manager.
	Manager    radio.NodeID
	ManagerLoc geom.Point
}

// RobotUpdate announces a robot's new location. In the centralized
// algorithm it is unicast to the manager; in the distributed algorithms it
// is the payload of a controlled flood.
type RobotUpdate struct {
	Robot radio.NodeID
	Loc   geom.Point
	Seq   uint64
	// Load is the robot's outstanding repair workload (current task plus
	// queued tasks) at publish time. The paper's manager ignores it; the
	// ETA-dispatch extension uses it to avoid piling work on a busy robot.
	Load int
	// Managing marks a heartbeat from a robot holding the manager role
	// after a takeover. Carrying the claim in every heartbeat makes the
	// takeover durable: parties that missed the one-shot takeover flood
	// (silenced by a blackout, or booted later) still converge on the
	// current manager, and a deposed manager learns to stand down.
	Managing bool
}

// Relocate commands an idle robot to reposition to a standby location
// (a facility in the facility-location coordination family). It is not
// a repair task: the robot parks at Dest so future dispatches start
// closer to where failures cluster, and any real repair assignment
// preempts the move. Seq is the issuing manager's relocation sequence
// number; robots ignore stale (non-increasing) commands so reordered or
// replayed frames cannot undo a newer placement.
type Relocate struct {
	Robot radio.NodeID
	Dest  geom.Point
	Seq   uint64
}
