// Package wire defines the application-level message bodies exchanged by
// sensors, robots, and managers. Bodies travel either as raw one-hop
// frames (beacons, announcements), as geographically routed packets
// (failure reports, repair requests), or inside controlled floods (robot
// location updates).
package wire

import (
	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
)

// Beacon is the periodic one-hop heartbeat every sensor sends for failure
// detection; it carries the sender's location so receivers can maintain
// neighbor tables.
type Beacon struct {
	From radio.NodeID
	Loc  geom.Point
}

// LocationAnnounce is a one-hop location broadcast: sensors send it once
// during initialization, replacement nodes send it when deployed, and
// robots send it alongside their location updates so nearby sensors can
// deliver failure messages to them.
type LocationAnnounce struct {
	From radio.NodeID
	Loc  geom.Point
	// Replacement marks the boot broadcast of a freshly deployed node,
	// which prompts neighbors to answer with beacons (§4.2(a)).
	Replacement bool
}

// GuardianConfirm establishes the guardian–guardee relationship: the
// sender (guardee) asks the addressee to guard it.
type GuardianConfirm struct {
	From radio.NodeID
	Loc  geom.Point
}

// FailureReport travels from the detecting guardian to the manager (or
// directly to "myrobot" in the distributed algorithms).
type FailureReport struct {
	Failed     radio.NodeID
	Loc        geom.Point
	Reporter   radio.NodeID
	DetectedAt sim.Time
}

// RepairRequest is forwarded by the central manager to the maintenance
// robot chosen for a failure.
type RepairRequest struct {
	Failed   radio.NodeID
	Loc      geom.Point
	IssuedAt sim.Time
}

// RobotUpdate announces a robot's new location. In the centralized
// algorithm it is unicast to the manager; in the distributed algorithms it
// is the payload of a controlled flood.
type RobotUpdate struct {
	Robot radio.NodeID
	Loc   geom.Point
	Seq   uint64
	// Load is the robot's outstanding repair workload (current task plus
	// queued tasks) at publish time. The paper's manager ignores it; the
	// ETA-dispatch extension uses it to avoid piling work on a busy robot.
	Load int
}
