package wire

import (
	"bytes"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
)

// FuzzWireDecode drives Decode with arbitrary buffers. Properties: Decode
// never panics, and any buffer it accepts re-encodes to exactly the
// input bytes (the codec has one canonical form per message).
func FuzzWireDecode(f *testing.F) {
	seeds := []any{
		Beacon{From: 7, Loc: geom.Pt(1.5, -2.25)},
		LocationAnnounce{From: -1, Loc: geom.Pt(100, 100), Replacement: true},
		FailureReport{Failed: 4, Loc: geom.Pt(10, 20), Reporter: 5, DetectedAt: 123.456, Seq: 9, ReporterLoc: geom.Pt(11, 21)},
		ReportAck{Reporter: 5, Failed: 4, Seq: 42},
		RepairRequest{Failed: 8, Loc: geom.Pt(3, 4), IssuedAt: 777.125, Manager: 9000, ManagerLoc: geom.Pt(5, 6)},
		RobotUpdate{Robot: 9003, Loc: geom.Pt(200, 200), Seq: 3, Load: 1, Managing: false},
		Relocate{Robot: 3, Dest: geom.Pt(150, 250), Seq: 8},
		netstack.Packet{Src: 9, Dst: 2, DstLoc: geom.Pt(100, 100), Category: "failure_report",
			Payload: FailureReport{Failed: 4, Loc: geom.Pt(10, 20), Reporter: 9, Seq: 3},
			Hops:    2, TTL: 30, Mode: netstack.ModePerimeter, EntryLoc: geom.Pt(1, 2), PrevLoc: geom.Pt(3, 4),
			Path: []radio.NodeID{5, 6, 7}},
		netstack.FloodMsg{Origin: 4, Seq: 17, Category: "loc_update", Hops: 1, TTL: 32,
			Relays:  []radio.NodeID{},
			Payload: RobotUpdate{Robot: 4, Loc: geom.Pt(50, 50), Seq: 17}},
	}
	for _, msg := range seeds {
		b, err := Encode(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xEE})
	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := Decode(b)
		if err != nil {
			return
		}
		re, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded %+v but cannot re-encode: %v", msg, err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted buffer is not canonical:\n  in %x\n out %x\n msg %+v", b, re, msg)
		}
	})
}

// FuzzFrameCorrupt drives the frame decoder with arbitrary buffers — the
// exact exposure the hostile channel creates, where any byte mutation may
// reach Decode. Properties: Decode never panics, and any buffer it
// accepts re-encodes to exactly the input bytes, so a mutated frame can
// never silently pass as a different valid frame (canonical form plus the
// CRC means an accepted buffer IS a valid encoding).
func FuzzFrameCorrupt(f *testing.F) {
	var c FrameCodec
	seeds := []radio.Frame{
		{Src: 1, Dst: radio.IDBroadcast, Category: "beacon", Payload: Beacon{From: 1, Loc: geom.Pt(2, 3)}},
		{Src: 9, Dst: 2, Category: "failure_report", Payload: netstack.Packet{
			Src: 9, Dst: 2, DstLoc: geom.Pt(100, 100), Category: "failure_report",
			Payload: FailureReport{Failed: 4, Loc: geom.Pt(10, 20), Reporter: 9, Seq: 3},
			TTL:     30, Mode: netstack.ModeGreedy}},
		{Src: 4, Dst: radio.IDBroadcast, Category: "loc_update", Payload: netstack.FloodMsg{
			Origin: 4, Seq: 17, Category: "loc_update", TTL: 32,
			Payload: RobotUpdate{Robot: 4, Loc: geom.Pt(50, 50), Seq: 17, Load: 2}}},
		{Src: 3, Dst: 8, Category: "ack", Payload: ReportAck{Reporter: 5, Failed: 4, Seq: 42}},
	}
	for _, fr := range seeds {
		b, err := c.Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// A corrupted variant so the corpus starts on the reject path too.
		g := append([]byte{}, b...)
		g[len(g)-1] ^= 0x40
		f.Add(g)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := c.Decode(b)
		if err != nil {
			return
		}
		re, err := c.Encode(fr)
		if err != nil {
			t.Fatalf("decoded %+v but cannot re-encode: %v", fr, err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted frame buffer is not canonical:\n  in %x\n out %x", b, re)
		}
	})
}
