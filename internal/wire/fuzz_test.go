package wire

import (
	"bytes"
	"testing"

	"roborepair/internal/geom"
)

// FuzzWireDecode drives Decode with arbitrary buffers. Properties: Decode
// never panics, and any buffer it accepts re-encodes to exactly the
// input bytes (the codec has one canonical form per message).
func FuzzWireDecode(f *testing.F) {
	seeds := []any{
		Beacon{From: 7, Loc: geom.Pt(1.5, -2.25)},
		LocationAnnounce{From: -1, Loc: geom.Pt(100, 100), Replacement: true},
		FailureReport{Failed: 4, Loc: geom.Pt(10, 20), Reporter: 5, DetectedAt: 123.456, Seq: 9, ReporterLoc: geom.Pt(11, 21)},
		ReportAck{Reporter: 5, Failed: 4, Seq: 42},
		RepairRequest{Failed: 8, Loc: geom.Pt(3, 4), IssuedAt: 777.125, Manager: 9000, ManagerLoc: geom.Pt(5, 6)},
		RobotUpdate{Robot: 9003, Loc: geom.Pt(200, 200), Seq: 3, Load: 1, Managing: false},
	}
	for _, msg := range seeds {
		b, err := Encode(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xEE})
	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := Decode(b)
		if err != nil {
			return
		}
		re, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded %+v but cannot re-encode: %v", msg, err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted buffer is not canonical:\n  in %x\n out %x\n msg %+v", b, re, msg)
		}
	})
}
