package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"roborepair/internal/radio"
)

// Frame serialization for the hostile-channel layer: when the scenario
// installs a FrameCodec on the medium, every radio.Frame is rendered to
// this layout on Send and parsed back on delivery, so injected byte
// corruption meets the same defenses a real radio would need.
//
// Layout (little-endian):
//
//	[0:4]  CRC32 (IEEE) over everything after it
//	[4:12] source NodeID
//	[12:20] destination NodeID
//	then the metrics category as a u16-length-prefixed string
//	then the payload as a u16-length-prefixed message body (codec.go)
//
// CRC-32/IEEE has Hamming distance 4 at these frame sizes, so any 1–3
// flipped bits are always detected: a frame that decodes despite being
// mutated can only be a stale replay of a previously valid frame.

// frameHeaderSize is the CRC32 prefix length.
const frameHeaderSize = 4

// FrameCodec implements radio.Channel with the CRC-protected layout above.
type FrameCodec struct{}

// Encode renders one frame. It fails only on payloads outside the wire
// message set — a programming error, not a channel condition.
func (FrameCodec) Encode(f radio.Frame) ([]byte, error) {
	e := enc{b: make([]byte, frameHeaderSize, frameHeaderSize+96)}
	e.id(f.Src)
	e.id(f.Dst)
	e.str(f.Category)
	e.nested(f.Payload)
	if e.err != nil {
		return nil, e.err
	}
	binary.LittleEndian.PutUint32(e.b[:frameHeaderSize], crc32.ChecksumIEEE(e.b[frameHeaderSize:]))
	return e.b, nil
}

// Decode parses a received buffer. It rejects short buffers, checksum
// mismatches, malformed bodies, and trailing bytes; for every accepted
// buffer Encode(Decode(b)) reproduces b exactly.
func (FrameCodec) Decode(b []byte) (radio.Frame, error) {
	if len(b) < frameHeaderSize {
		return radio.Frame{}, fmt.Errorf("wire: frame shorter than its checksum (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[:frameHeaderSize]) != crc32.ChecksumIEEE(b[frameHeaderSize:]) {
		return radio.Frame{}, fmt.Errorf("wire: frame checksum mismatch")
	}
	d := dec{b: b[frameHeaderSize:]}
	f := radio.Frame{Src: d.id(), Dst: d.id(), Category: d.str(), Payload: d.nested()}
	if d.bad {
		return radio.Frame{}, fmt.Errorf("wire: malformed frame body")
	}
	if len(d.b) != 0 {
		return radio.Frame{}, fmt.Errorf("wire: %d trailing bytes after frame body", len(d.b))
	}
	return f, nil
}
