package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
)

// frameCases is one representative frame per payload shape the medium can
// carry: every bare wire message, routed packets (Path nil, empty, and
// populated), and floods (Relays nil for blind flooding vs. empty for a
// designated-forwarder set with nobody in it — the distinction is
// semantic and must survive the codec).
func frameCases() []radio.Frame {
	frames := []radio.Frame{
		{Src: 1, Dst: radio.IDBroadcast, Category: "beacon"},
		{Src: -1, Dst: 7, Category: ""},
	}
	for _, msg := range allMessages() {
		frames = append(frames, radio.Frame{Src: 3, Dst: radio.IDBroadcast, Category: "loc_update", Payload: msg})
	}
	frames = append(frames,
		radio.Frame{Src: 9, Dst: 2, Category: "failure_report", Payload: netstack.Packet{
			Src: 9, Dst: 2, DstLoc: geom.Pt(100, 100), Category: "failure_report",
			Payload: FailureReport{Failed: 4, Loc: geom.Pt(10, 20), Reporter: 9, DetectedAt: 123.5, Seq: 3, ReporterLoc: geom.Pt(9, 9)},
			Hops:    2, TTL: 30, Mode: netstack.ModeGreedy, EntryLoc: geom.Pt(1, 2), PrevLoc: geom.Pt(3, 4),
		}},
		radio.Frame{Src: 9, Dst: 2, Category: "ack", Payload: netstack.Packet{
			Src: 9, Dst: 2, Mode: netstack.ModePerimeter,
			Path: []radio.NodeID{5, 6, 7},
		}},
		radio.Frame{Src: 9, Dst: 2, Category: "ack", Payload: netstack.Packet{
			Src: 9, Dst: 2, Path: []radio.NodeID{},
		}},
		radio.Frame{Src: 4, Dst: radio.IDBroadcast, Category: "loc_update", Payload: netstack.FloodMsg{
			Origin: 4, Seq: 17, Category: "loc_update", Hops: 1, TTL: 32,
			Payload: RobotUpdate{Robot: 4, Loc: geom.Pt(50, 50), Seq: 17, Load: 2},
		}},
		radio.Frame{Src: 4, Dst: radio.IDBroadcast, Category: "loc_update", Payload: netstack.FloodMsg{
			Origin: 4, Seq: 18, Category: "loc_update", TTL: 32,
			Relays:  []radio.NodeID{11, 12},
			Payload: RobotUpdate{Robot: 4, Loc: geom.Pt(51, 50), Seq: 18},
		}},
		radio.Frame{Src: 4, Dst: radio.IDBroadcast, Category: "init", Payload: netstack.FloodMsg{
			Origin: 4, Seq: 1, Category: "init", TTL: 32, Relays: []radio.NodeID{},
		}},
	)
	return frames
}

func TestFrameRoundTrip(t *testing.T) {
	var c FrameCodec
	for _, f := range frameCases() {
		b, err := c.Encode(f)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", f, err)
		}
		got, err := c.Decode(b)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)): %v", f, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, f)
		}
		re, err := c.Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, b) {
			t.Errorf("re-encode of %+v not byte-identical", f)
		}
	}
}

// TestFrameDetectsEverySmallMutation flips every single bit and every
// pair of bits (stride-sampled) of an encoded frame and requires Decode
// to reject the result: CRC-32/IEEE has Hamming distance 4 at these
// sizes, which is what lets the medium treat a mutated-yet-decodable
// buffer as a stale replay rather than silent corruption.
func TestFrameDetectsEverySmallMutation(t *testing.T) {
	var c FrameCodec
	b, err := c.Encode(radio.Frame{Src: 3, Dst: 8, Category: "failure_report", Payload: ReportAck{Reporter: 5, Failed: 4, Seq: 42}})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(bits ...int) []byte {
		g := make([]byte, len(b))
		copy(g, b)
		for _, bit := range bits {
			g[bit/8] ^= 1 << (bit % 8)
		}
		return g
	}
	n := len(b) * 8
	for i := 0; i < n; i++ {
		if _, err := c.Decode(mutate(i)); err == nil {
			t.Fatalf("single-bit flip at %d accepted", i)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j += 7 {
			if _, err := c.Decode(mutate(i, j)); err == nil {
				t.Fatalf("double-bit flip at %d,%d accepted", i, j)
			}
		}
	}
}

func TestFrameDecodeRejectsMalformed(t *testing.T) {
	var c FrameCodec
	b, err := c.Encode(radio.Frame{Src: 1, Dst: radio.IDBroadcast, Category: "beacon", Payload: Beacon{From: 1, Loc: geom.Pt(2, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"nil", nil},
		{"shorter than checksum", b[:3]},
		{"header only", b[:frameHeaderSize]},
		{"truncated body", b[:len(b)-1]},
		{"trailing garbage", append(append([]byte{}, b...), 0xAA)},
	}
	for _, tc := range cases {
		if _, err := c.Decode(tc.b); err == nil {
			t.Errorf("%s: Decode accepted %x", tc.name, tc.b)
		}
	}
}

func TestFrameEncodeRejectsNonWirePayload(t *testing.T) {
	var c FrameCodec
	if _, err := c.Encode(radio.Frame{Src: 1, Dst: 2, Payload: struct{ X int }{1}}); err == nil {
		t.Fatal("Encode accepted a non-wire payload")
	}
	// A category longer than the u16 length prefix can carry must fail
	// loudly, not truncate.
	if _, err := c.Encode(radio.Frame{Src: 1, Dst: 2, Category: strings.Repeat("x", 1<<16)}); err == nil {
		t.Fatal("Encode accepted an over-long category")
	}
}
