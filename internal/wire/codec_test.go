package wire

import (
	"bytes"
	"reflect"
	"testing"

	"roborepair/internal/geom"
)

// allMessages is one representative of every wire type, with negative
// IDs (broadcast), fractional coordinates, and large sequence numbers to
// exercise the full field widths.
func allMessages() []any {
	return []any{
		Beacon{From: 7, Loc: geom.Pt(1.5, -2.25)},
		LocationAnnounce{From: -1, Loc: geom.Pt(0, 0), Replacement: true},
		LocationAnnounce{From: 12, Loc: geom.Pt(400, 400), Replacement: false},
		GuardianConfirm{From: 3, Loc: geom.Pt(99.75, 0.125)},
		FailureReport{Failed: 4, Loc: geom.Pt(10, 20), Reporter: 5, DetectedAt: 123.456, Seq: 1 << 60, ReporterLoc: geom.Pt(11, 21)},
		ReportAck{Reporter: 5, Failed: 4, Seq: 42},
		HeartbeatAck{Manager: 2, Seq: 18446744073709551615},
		DispatchAck{Robot: 9001, Failed: 17},
		RepairDone{Robot: 9001, Failed: 17},
		ManagerTakeover{Manager: 9002, Loc: geom.Pt(-0.5, 1e9)},
		RepairRequest{Failed: 8, Loc: geom.Pt(3, 4), IssuedAt: 777.125, Manager: 9000, ManagerLoc: geom.Pt(5, 6)},
		RobotUpdate{Robot: 9003, Loc: geom.Pt(200, 200), Seq: 3, Load: -2, Managing: true},
		Relocate{Robot: 9004, Dest: geom.Pt(120.5, -3.75), Seq: 1<<40 + 7},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, msg := range allMessages() {
		b, err := Encode(msg)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", msg, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)): %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, msg)
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatalf("re-Encode(%+v): %v", got, err)
		}
		if !bytes.Equal(re, b) {
			t.Errorf("re-encode of %T not byte-identical:\n got %x\nwant %x", msg, re, b)
		}
	}
}

func TestEncodedSizes(t *testing.T) {
	want := []int{
		sizeBeacon, sizeLocationAnnounce, sizeLocationAnnounce, sizeGuardianConfirm,
		sizeFailureReport, sizeReportAck, sizeHeartbeatAck, sizeDispatchAck,
		sizeRepairDone, sizeManagerTakeover, sizeRepairRequest, sizeRobotUpdate,
		sizeRelocate,
	}
	for i, msg := range allMessages() {
		b, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != want[i] {
			t.Errorf("%T encodes to %d bytes, want %d", msg, len(b), want[i])
		}
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := Encode(struct{ X int }{1}); err == nil {
		t.Fatal("Encode accepted a non-wire type")
	}
	if _, err := Encode(&Beacon{}); err == nil {
		t.Fatal("Encode accepted a pointer; only values are wire messages")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	beacon, err := Encode(Beacon{From: 1, Loc: geom.Pt(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"unknown tag", []byte{0xEE, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"tag zero", []byte{0}},
		{"tag only", beacon[:1]},
		{"truncated body", beacon[:len(beacon)-1]},
		{"trailing byte", append(append([]byte{}, beacon...), 0)},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.b); err == nil {
			t.Errorf("%s: Decode accepted %x", tc.name, tc.b)
		}
	}
}

func TestDecodeRejectsNonCanonicalBool(t *testing.T) {
	b, err := Encode(LocationAnnounce{From: 1, Loc: geom.Pt(2, 3), Replacement: true})
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] = 2
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted bool byte 2")
	}
}
