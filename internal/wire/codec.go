package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"roborepair/internal/geom"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
)

// Binary codec for the wire message bodies. The simulator itself passes
// payloads as Go values; this codec is the exact over-the-air layout for
// byte-budget accounting and for driving real radios from the same
// message set. The encoding is a fixed-width little-endian layout: one
// tag byte naming the type, then the struct fields in declaration order —
// NodeID and int as int64, Time and Point coordinates as float64 bits,
// bool as a strict 0/1 byte. Every decodable buffer re-encodes to
// identical bytes, and Decode rejects short buffers, trailing garbage,
// unknown tags, and non-canonical booleans.

// Message tag bytes. The explicit values are the wire contract: they must
// never be renumbered, only extended.
const (
	tagBeacon           byte = 1
	tagLocationAnnounce byte = 2
	tagGuardianConfirm  byte = 3
	tagFailureReport    byte = 4
	tagReportAck        byte = 5
	tagHeartbeatAck     byte = 6
	tagDispatchAck      byte = 7
	tagRepairDone       byte = 8
	tagManagerTakeover  byte = 9
	tagRepairRequest    byte = 10
	tagRobotUpdate      byte = 11
	tagRelocate         byte = 12

	// Network-layer envelopes (hostile-channel extension): routed packets
	// and controlled floods carry a nested message body. The gap before 32
	// leaves room for future application bodies.
	tagPacket   byte = 32
	tagFloodMsg byte = 33
)

// Encoded sizes: tag byte + 8 bytes per scalar field (bools take 1).
const (
	sizeBeacon           = 1 + 8 + 16
	sizeLocationAnnounce = 1 + 8 + 16 + 1
	sizeGuardianConfirm  = 1 + 8 + 16
	sizeFailureReport    = 1 + 8 + 16 + 8 + 8 + 8 + 16
	sizeReportAck        = 1 + 8 + 8 + 8
	sizeHeartbeatAck     = 1 + 8 + 8
	sizeDispatchAck      = 1 + 8 + 8
	sizeRepairDone       = 1 + 8 + 8
	sizeManagerTakeover  = 1 + 8 + 16
	sizeRepairRequest    = 1 + 8 + 16 + 8 + 8 + 16
	sizeRobotUpdate      = 1 + 8 + 16 + 8 + 8 + 1
	sizeRelocate         = 1 + 8 + 16 + 8
)

// enc is an append-only little-endian writer. Oversized variable-length
// fields poison it via err, surfaced by Encode.
type enc struct {
	b   []byte
	err error
}

func (e *enc) id(v radio.NodeID) { e.u64(uint64(int64(v))) }
func (e *enc) i(v int)           { e.u64(uint64(int64(v))) }
func (e *enc) f(v float64)       { e.u64(math.Float64bits(v)) }
func (e *enc) t(v sim.Time)      { e.f(float64(v)) }
func (e *enc) pt(p geom.Point)   { e.f(p.X); e.f(p.Y) }
func (e *enc) u64(v uint64)      { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *enc) u16(v int) {
	if v < 0 || v > math.MaxUint16 {
		e.err = fmt.Errorf("wire: length %d outside uint16", v)
		v = 0
	}
	e.b = binary.LittleEndian.AppendUint16(e.b, uint16(v))
}

func (e *enc) str(s string) {
	e.u16(len(s))
	e.b = append(e.b, s...)
}

// ids writes a NodeID list with a presence flag so nil and empty survive
// the round trip distinctly (a nil flood relay set means "everyone may
// relay"; an empty one means "no one may").
func (e *enc) ids(v []radio.NodeID) {
	if v == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.u16(len(v))
	for _, id := range v {
		e.id(id)
	}
}

// nested writes a length-prefixed inner message body; nil encodes as
// length 0 (a real body is never empty, so the form is unambiguous).
func (e *enc) nested(payload any) {
	if payload == nil {
		e.u16(0)
		return
	}
	b, err := Encode(payload)
	if err != nil {
		e.err = err
		return
	}
	e.u16(len(b))
	e.b = append(e.b, b...)
}

// dec is a consuming little-endian reader; short reads poison it.
type dec struct {
	b   []byte
	bad bool
}

func (d *dec) u64() uint64 {
	if len(d.b) < 8 {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) id() radio.NodeID { return radio.NodeID(int64(d.u64())) }
func (d *dec) i() int           { return int(int64(d.u64())) }
func (d *dec) f() float64       { return math.Float64frombits(d.u64()) }
func (d *dec) t() sim.Time      { return sim.Time(d.f()) }
func (d *dec) pt() geom.Point   { return geom.Pt(d.f(), d.f()) }

func (d *dec) bool() bool {
	if len(d.b) < 1 {
		d.bad = true
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		// Reject non-canonical booleans so Encode(Decode(b)) == b holds
		// for every accepted buffer.
		d.bad = true
	}
	return v == 1
}

func (d *dec) u16() int {
	if len(d.b) < 2 {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return int(v)
}

func (d *dec) str() string {
	n := d.u16()
	if d.bad || len(d.b) < n {
		d.bad = true
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) ids() []radio.NodeID {
	if !d.bool() {
		return nil
	}
	n := d.u16()
	if d.bad || len(d.b) < n*8 {
		d.bad = true
		return nil
	}
	out := make([]radio.NodeID, n)
	for i := range out {
		out[i] = d.id()
	}
	return out
}

func (d *dec) nested() any {
	n := d.u16()
	if d.bad || len(d.b) < n {
		d.bad = true
		return nil
	}
	if n == 0 {
		return nil
	}
	sub := d.b[:n]
	d.b = d.b[n:]
	msg, err := Decode(sub)
	if err != nil {
		d.bad = true
		return nil
	}
	return msg
}

// Encode renders one wire message body into its binary layout. It returns
// an error for values that are not wire message types.
func Encode(msg any) ([]byte, error) {
	var e enc
	switch m := msg.(type) {
	case Beacon:
		e.b = make([]byte, 0, sizeBeacon)
		e.b = append(e.b, tagBeacon)
		e.id(m.From)
		e.pt(m.Loc)
	case LocationAnnounce:
		e.b = make([]byte, 0, sizeLocationAnnounce)
		e.b = append(e.b, tagLocationAnnounce)
		e.id(m.From)
		e.pt(m.Loc)
		e.bool(m.Replacement)
	case GuardianConfirm:
		e.b = make([]byte, 0, sizeGuardianConfirm)
		e.b = append(e.b, tagGuardianConfirm)
		e.id(m.From)
		e.pt(m.Loc)
	case FailureReport:
		e.b = make([]byte, 0, sizeFailureReport)
		e.b = append(e.b, tagFailureReport)
		e.id(m.Failed)
		e.pt(m.Loc)
		e.id(m.Reporter)
		e.t(m.DetectedAt)
		e.u64(m.Seq)
		e.pt(m.ReporterLoc)
	case ReportAck:
		e.b = make([]byte, 0, sizeReportAck)
		e.b = append(e.b, tagReportAck)
		e.id(m.Reporter)
		e.id(m.Failed)
		e.u64(m.Seq)
	case HeartbeatAck:
		e.b = make([]byte, 0, sizeHeartbeatAck)
		e.b = append(e.b, tagHeartbeatAck)
		e.id(m.Manager)
		e.u64(m.Seq)
	case DispatchAck:
		e.b = make([]byte, 0, sizeDispatchAck)
		e.b = append(e.b, tagDispatchAck)
		e.id(m.Robot)
		e.id(m.Failed)
	case RepairDone:
		e.b = make([]byte, 0, sizeRepairDone)
		e.b = append(e.b, tagRepairDone)
		e.id(m.Robot)
		e.id(m.Failed)
	case ManagerTakeover:
		e.b = make([]byte, 0, sizeManagerTakeover)
		e.b = append(e.b, tagManagerTakeover)
		e.id(m.Manager)
		e.pt(m.Loc)
	case RepairRequest:
		e.b = make([]byte, 0, sizeRepairRequest)
		e.b = append(e.b, tagRepairRequest)
		e.id(m.Failed)
		e.pt(m.Loc)
		e.t(m.IssuedAt)
		e.id(m.Manager)
		e.pt(m.ManagerLoc)
	case RobotUpdate:
		e.b = make([]byte, 0, sizeRobotUpdate)
		e.b = append(e.b, tagRobotUpdate)
		e.id(m.Robot)
		e.pt(m.Loc)
		e.u64(m.Seq)
		e.i(m.Load)
		e.bool(m.Managing)
	case Relocate:
		e.b = make([]byte, 0, sizeRelocate)
		e.b = append(e.b, tagRelocate)
		e.id(m.Robot)
		e.pt(m.Dest)
		e.u64(m.Seq)
	case netstack.Packet:
		e.b = make([]byte, 0, 128)
		e.b = append(e.b, tagPacket)
		e.id(m.Src)
		e.id(m.Dst)
		e.pt(m.DstLoc)
		e.str(m.Category)
		e.i(m.Hops)
		e.i(m.TTL)
		e.i(int(m.Mode))
		e.pt(m.EntryLoc)
		e.pt(m.PrevLoc)
		e.ids(m.Path)
		e.nested(m.Payload)
	case netstack.FloodMsg:
		e.b = make([]byte, 0, 96)
		e.b = append(e.b, tagFloodMsg)
		e.id(m.Origin)
		e.u64(m.Seq)
		e.str(m.Category)
		e.i(m.Hops)
		e.i(m.TTL)
		e.ids(m.Relays)
		e.nested(m.Payload)
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", msg)
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.b, nil
}

// Decode parses one binary message body back into its Go value. It
// rejects empty input, unknown tags, truncated bodies, and trailing
// bytes, so for every accepted buffer Encode(Decode(b)) reproduces b.
func Decode(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("wire: empty buffer")
	}
	d := dec{b: b[1:]}
	var msg any
	switch b[0] {
	case tagBeacon:
		msg = Beacon{From: d.id(), Loc: d.pt()}
	case tagLocationAnnounce:
		msg = LocationAnnounce{From: d.id(), Loc: d.pt(), Replacement: d.bool()}
	case tagGuardianConfirm:
		msg = GuardianConfirm{From: d.id(), Loc: d.pt()}
	case tagFailureReport:
		msg = FailureReport{
			Failed: d.id(), Loc: d.pt(), Reporter: d.id(),
			DetectedAt: d.t(), Seq: d.u64(), ReporterLoc: d.pt(),
		}
	case tagReportAck:
		msg = ReportAck{Reporter: d.id(), Failed: d.id(), Seq: d.u64()}
	case tagHeartbeatAck:
		msg = HeartbeatAck{Manager: d.id(), Seq: d.u64()}
	case tagDispatchAck:
		msg = DispatchAck{Robot: d.id(), Failed: d.id()}
	case tagRepairDone:
		msg = RepairDone{Robot: d.id(), Failed: d.id()}
	case tagManagerTakeover:
		msg = ManagerTakeover{Manager: d.id(), Loc: d.pt()}
	case tagRepairRequest:
		msg = RepairRequest{
			Failed: d.id(), Loc: d.pt(), IssuedAt: d.t(),
			Manager: d.id(), ManagerLoc: d.pt(),
		}
	case tagRobotUpdate:
		msg = RobotUpdate{
			Robot: d.id(), Loc: d.pt(), Seq: d.u64(),
			Load: d.i(), Managing: d.bool(),
		}
	case tagRelocate:
		msg = Relocate{Robot: d.id(), Dest: d.pt(), Seq: d.u64()}
	case tagPacket:
		msg = netstack.Packet{
			Src: d.id(), Dst: d.id(), DstLoc: d.pt(), Category: d.str(),
			Hops: d.i(), TTL: d.i(), Mode: netstack.RouteMode(d.i()),
			EntryLoc: d.pt(), PrevLoc: d.pt(), Path: d.ids(), Payload: d.nested(),
		}
	case tagFloodMsg:
		msg = netstack.FloodMsg{
			Origin: d.id(), Seq: d.u64(), Category: d.str(),
			Hops: d.i(), TTL: d.i(), Relays: d.ids(), Payload: d.nested(),
		}
	default:
		return nil, fmt.Errorf("wire: unknown message tag %d", b[0])
	}
	if d.bad {
		return nil, fmt.Errorf("wire: truncated or malformed %T", msg)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %T", len(d.b), msg)
	}
	return msg, nil
}
