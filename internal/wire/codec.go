package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
)

// Binary codec for the wire message bodies. The simulator itself passes
// payloads as Go values; this codec is the exact over-the-air layout for
// byte-budget accounting and for driving real radios from the same
// message set. The encoding is a fixed-width little-endian layout: one
// tag byte naming the type, then the struct fields in declaration order —
// NodeID and int as int64, Time and Point coordinates as float64 bits,
// bool as a strict 0/1 byte. Every decodable buffer re-encodes to
// identical bytes, and Decode rejects short buffers, trailing garbage,
// unknown tags, and non-canonical booleans.

// Message tag bytes. The explicit values are the wire contract: they must
// never be renumbered, only extended.
const (
	tagBeacon           byte = 1
	tagLocationAnnounce byte = 2
	tagGuardianConfirm  byte = 3
	tagFailureReport    byte = 4
	tagReportAck        byte = 5
	tagHeartbeatAck     byte = 6
	tagDispatchAck      byte = 7
	tagRepairDone       byte = 8
	tagManagerTakeover  byte = 9
	tagRepairRequest    byte = 10
	tagRobotUpdate      byte = 11
)

// Encoded sizes: tag byte + 8 bytes per scalar field (bools take 1).
const (
	sizeBeacon           = 1 + 8 + 16
	sizeLocationAnnounce = 1 + 8 + 16 + 1
	sizeGuardianConfirm  = 1 + 8 + 16
	sizeFailureReport    = 1 + 8 + 16 + 8 + 8 + 8 + 16
	sizeReportAck        = 1 + 8 + 8 + 8
	sizeHeartbeatAck     = 1 + 8 + 8
	sizeDispatchAck      = 1 + 8 + 8
	sizeRepairDone       = 1 + 8 + 8
	sizeManagerTakeover  = 1 + 8 + 16
	sizeRepairRequest    = 1 + 8 + 16 + 8 + 8 + 16
	sizeRobotUpdate      = 1 + 8 + 16 + 8 + 8 + 1
)

// enc is an append-only little-endian writer.
type enc struct{ b []byte }

func (e *enc) id(v radio.NodeID) { e.u64(uint64(int64(v))) }
func (e *enc) i(v int)           { e.u64(uint64(int64(v))) }
func (e *enc) f(v float64)       { e.u64(math.Float64bits(v)) }
func (e *enc) t(v sim.Time)      { e.f(float64(v)) }
func (e *enc) pt(p geom.Point)   { e.f(p.X); e.f(p.Y) }
func (e *enc) u64(v uint64)      { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// dec is a consuming little-endian reader; short reads poison it.
type dec struct {
	b   []byte
	bad bool
}

func (d *dec) u64() uint64 {
	if len(d.b) < 8 {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) id() radio.NodeID { return radio.NodeID(int64(d.u64())) }
func (d *dec) i() int           { return int(int64(d.u64())) }
func (d *dec) f() float64       { return math.Float64frombits(d.u64()) }
func (d *dec) t() sim.Time      { return sim.Time(d.f()) }
func (d *dec) pt() geom.Point   { return geom.Pt(d.f(), d.f()) }

func (d *dec) bool() bool {
	if len(d.b) < 1 {
		d.bad = true
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		// Reject non-canonical booleans so Encode(Decode(b)) == b holds
		// for every accepted buffer.
		d.bad = true
	}
	return v == 1
}

// Encode renders one wire message body into its binary layout. It returns
// an error for values that are not wire message types.
func Encode(msg any) ([]byte, error) {
	var e enc
	switch m := msg.(type) {
	case Beacon:
		e.b = make([]byte, 0, sizeBeacon)
		e.b = append(e.b, tagBeacon)
		e.id(m.From)
		e.pt(m.Loc)
	case LocationAnnounce:
		e.b = make([]byte, 0, sizeLocationAnnounce)
		e.b = append(e.b, tagLocationAnnounce)
		e.id(m.From)
		e.pt(m.Loc)
		e.bool(m.Replacement)
	case GuardianConfirm:
		e.b = make([]byte, 0, sizeGuardianConfirm)
		e.b = append(e.b, tagGuardianConfirm)
		e.id(m.From)
		e.pt(m.Loc)
	case FailureReport:
		e.b = make([]byte, 0, sizeFailureReport)
		e.b = append(e.b, tagFailureReport)
		e.id(m.Failed)
		e.pt(m.Loc)
		e.id(m.Reporter)
		e.t(m.DetectedAt)
		e.u64(m.Seq)
		e.pt(m.ReporterLoc)
	case ReportAck:
		e.b = make([]byte, 0, sizeReportAck)
		e.b = append(e.b, tagReportAck)
		e.id(m.Reporter)
		e.id(m.Failed)
		e.u64(m.Seq)
	case HeartbeatAck:
		e.b = make([]byte, 0, sizeHeartbeatAck)
		e.b = append(e.b, tagHeartbeatAck)
		e.id(m.Manager)
		e.u64(m.Seq)
	case DispatchAck:
		e.b = make([]byte, 0, sizeDispatchAck)
		e.b = append(e.b, tagDispatchAck)
		e.id(m.Robot)
		e.id(m.Failed)
	case RepairDone:
		e.b = make([]byte, 0, sizeRepairDone)
		e.b = append(e.b, tagRepairDone)
		e.id(m.Robot)
		e.id(m.Failed)
	case ManagerTakeover:
		e.b = make([]byte, 0, sizeManagerTakeover)
		e.b = append(e.b, tagManagerTakeover)
		e.id(m.Manager)
		e.pt(m.Loc)
	case RepairRequest:
		e.b = make([]byte, 0, sizeRepairRequest)
		e.b = append(e.b, tagRepairRequest)
		e.id(m.Failed)
		e.pt(m.Loc)
		e.t(m.IssuedAt)
		e.id(m.Manager)
		e.pt(m.ManagerLoc)
	case RobotUpdate:
		e.b = make([]byte, 0, sizeRobotUpdate)
		e.b = append(e.b, tagRobotUpdate)
		e.id(m.Robot)
		e.pt(m.Loc)
		e.u64(m.Seq)
		e.i(m.Load)
		e.bool(m.Managing)
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", msg)
	}
	return e.b, nil
}

// Decode parses one binary message body back into its Go value. It
// rejects empty input, unknown tags, truncated bodies, and trailing
// bytes, so for every accepted buffer Encode(Decode(b)) reproduces b.
func Decode(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("wire: empty buffer")
	}
	d := dec{b: b[1:]}
	var msg any
	switch b[0] {
	case tagBeacon:
		msg = Beacon{From: d.id(), Loc: d.pt()}
	case tagLocationAnnounce:
		msg = LocationAnnounce{From: d.id(), Loc: d.pt(), Replacement: d.bool()}
	case tagGuardianConfirm:
		msg = GuardianConfirm{From: d.id(), Loc: d.pt()}
	case tagFailureReport:
		msg = FailureReport{
			Failed: d.id(), Loc: d.pt(), Reporter: d.id(),
			DetectedAt: d.t(), Seq: d.u64(), ReporterLoc: d.pt(),
		}
	case tagReportAck:
		msg = ReportAck{Reporter: d.id(), Failed: d.id(), Seq: d.u64()}
	case tagHeartbeatAck:
		msg = HeartbeatAck{Manager: d.id(), Seq: d.u64()}
	case tagDispatchAck:
		msg = DispatchAck{Robot: d.id(), Failed: d.id()}
	case tagRepairDone:
		msg = RepairDone{Robot: d.id(), Failed: d.id()}
	case tagManagerTakeover:
		msg = ManagerTakeover{Manager: d.id(), Loc: d.pt()}
	case tagRepairRequest:
		msg = RepairRequest{
			Failed: d.id(), Loc: d.pt(), IssuedAt: d.t(),
			Manager: d.id(), ManagerLoc: d.pt(),
		}
	case tagRobotUpdate:
		msg = RobotUpdate{
			Robot: d.id(), Loc: d.pt(), Seq: d.u64(),
			Load: d.i(), Managing: d.bool(),
		}
	default:
		return nil, fmt.Errorf("wire: unknown message tag %d", b[0])
	}
	if d.bad {
		return nil, fmt.Errorf("wire: truncated or malformed %T", msg)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %T", len(d.b), msg)
	}
	return msg, nil
}
