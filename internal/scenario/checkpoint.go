package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"roborepair/internal/checkpoint"
	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
	"roborepair/internal/trace"
)

// Checkpoint surface.
//
// Scheduler events hold Go closures, so a snapshot cannot capture the event
// queue's behavior directly. What it captures instead is every piece of
// *data* state — kernel stamps, RNG positions, per-agent fields, radio and
// chaos state, metric and telemetry rings — plus the full configuration.
// Restore rebuilds the closures by constructing a fresh world from the
// embedded config and deterministically replaying it to the snapshot time
// ("dark fast-forward"), then byte-verifies every section of a re-taken
// snapshot against the stored one. Any config drift, nondeterminism, or
// undetected corruption shows up as a named section mismatch instead of a
// silently divergent continuation.

// ErrReplayDiverged reports that a restored world, replayed to the snapshot
// time, did not reproduce the snapshot byte for byte. It wraps the section
// name in the error text; match with errors.Is.
var ErrReplayDiverged = errors.New("scenario: restore replay diverged from snapshot")

// Snapshot captures the world's complete dynamic state at the current
// simulation time. The world is not perturbed and can keep running.
func (w *World) Snapshot() (*checkpoint.Snapshot, error) {
	cfgJSON, err := json.Marshal(w.Cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: snapshot: marshal config: %w", err)
	}
	snap := &checkpoint.Snapshot{
		Seed:       w.Cfg.Seed,
		T:          float64(w.Sched.Now()),
		ConfigJSON: cfgJSON,
	}
	add := func(id checkpoint.SectionID, payload []byte) {
		snap.Sections = append(snap.Sections, checkpoint.Section{ID: id, Payload: payload})
	}
	add(checkpoint.SecKernel, w.kernelState(nil))
	add(checkpoint.SecRNG, w.rngState(nil))
	add(checkpoint.SecCounters, w.counterState(nil))
	add(checkpoint.SecSensors, w.sensorState(nil))
	add(checkpoint.SecRobots, w.robotState(nil))
	add(checkpoint.SecManager, w.managerState(nil))
	add(checkpoint.SecRadio, w.Medium.AppendState(nil))
	add(checkpoint.SecChaos, w.corrupter.AppendState(nil))
	add(checkpoint.SecMetrics, w.Registry.AppendState(nil))
	add(checkpoint.SecTelemetry, w.Telemetry.AppendState(nil))
	add(checkpoint.SecFTDC, w.Recorder.AppendState(nil))
	return snap, nil
}

// kernelState serializes the scheduler's clock, counters, and the (at, seq)
// stamp of every pending event in total order.
func (w *World) kernelState(b []byte) []byte {
	st := w.Sched.SnapshotState()
	b = checkpoint.AppendF64(b, float64(st.Now))
	b = checkpoint.AppendU64(b, st.Seq)
	b = checkpoint.AppendU64(b, st.Fired)
	b = checkpoint.AppendI64(b, int64(st.HighWater))
	b = checkpoint.AppendU32(b, uint32(len(st.Pending)))
	for _, ev := range st.Pending {
		b = checkpoint.AppendF64(b, float64(ev.At))
		b = checkpoint.AppendU64(b, ev.Seq)
	}
	return b
}

// rngState serializes every registered stream's exact position in creation
// order. (The per-respawn "respawn-jitter" stream is rebuilt fresh on every
// call and holds no cross-call state, so it is deliberately absent.)
func (w *World) rngState(b []byte) []byte {
	b = checkpoint.AppendU32(b, uint32(len(w.streams)))
	for _, s := range w.streams {
		st := s.State()
		b = checkpoint.AppendString(b, st.Name)
		b = checkpoint.AppendI64(b, st.Seed)
		b = checkpoint.AppendU64(b, st.Draws)
	}
	return b
}

// counterState serializes the world-level hook counters and bookkeeping
// maps (sorted) that feed Results.
func (w *World) counterState(b []byte) []byte {
	b = checkpoint.AppendI64(b, int64(w.Injector.Killed()))
	b = checkpoint.AppendI64(b, int64(w.reportsSent))
	b = checkpoint.AppendI64(b, int64(w.reportsDelivered))
	b = checkpoint.AppendI64(b, int64(w.requestsIssued))
	b = checkpoint.AppendI64(b, int64(w.requestsDelivered))
	b = checkpoint.AppendI64(b, int64(w.repairs))
	b = checkpoint.AppendI64(b, int64(w.strandedTasks))
	b = checkpoint.AppendI64(b, int64(w.requeuedTasks))
	b = checkpoint.AppendI64(b, int64(w.reportRetx))
	b = checkpoint.AppendI64(b, int64(w.reportsAban))
	b = checkpoint.AppendI64(b, int64(w.redispatches))
	b = checkpoint.AppendI64(b, int64(w.takeovers))
	b = checkpoint.AppendF64(b, float64(w.managerCrashAt))
	b = checkpoint.AppendBool(b, w.dupRepair)
	b = checkpoint.AppendI64(b, int64(w.dupRepairs))
	b = checkpoint.AppendI64(b, int64(w.nextID))
	// relNode.Manager is rewritten by takeover elections; the rest of
	// relNode is pure config.
	b = checkpoint.AppendI64(b, int64(w.relNode.Manager))

	ids := make([]radio.NodeID, 0, len(w.requeuedAt))
	for id := range w.requeuedAt {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = checkpoint.AppendU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = checkpoint.AppendI64(b, int64(id))
		b = checkpoint.AppendF64(b, float64(w.requeuedAt[id]))
	}

	sites := make([]geom.Point, 0, len(w.siteIDs))
	for p := range w.siteIDs {
		sites = append(sites, p)
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].X != sites[j].X {
			return sites[i].X < sites[j].X
		}
		return sites[i].Y < sites[j].Y
	})
	b = checkpoint.AppendU32(b, uint32(len(sites)))
	for _, p := range sites {
		b = checkpoint.AppendF64(b, p.X)
		b = checkpoint.AppendF64(b, p.Y)
		placed := w.siteIDs[p]
		b = checkpoint.AppendU32(b, uint32(len(placed)))
		for _, id := range placed {
			b = checkpoint.AppendI64(b, int64(id))
		}
	}
	return b
}

// sensorState serializes every sensor (dead or alive) in ascending ID
// order.
func (w *World) sensorState(b []byte) []byte {
	ids := make([]radio.NodeID, 0, len(w.Sensors))
	for id := range w.Sensors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = checkpoint.AppendU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = w.Sensors[id].AppendState(b)
	}
	return b
}

// robotState serializes every robot in deployment order.
func (w *World) robotState(b []byte) []byte {
	b = checkpoint.AppendU32(b, uint32(len(w.Robots)))
	for _, r := range w.Robots {
		b = r.AppendState(b)
	}
	return b
}

// managerState serializes the central manager; a presence marker keeps the
// section comparable across algorithms.
func (w *World) managerState(b []byte) []byte {
	b = checkpoint.AppendBool(b, w.Manager != nil)
	if w.Manager != nil {
		b = w.Manager.AppendState(b)
	}
	return b
}

// CheckpointOptions configure RunCheckpointed.
type CheckpointOptions struct {
	// Every is the simulated-time period between snapshots. Zero or
	// negative disables periodic snapshots (the run degenerates to Run).
	Every sim.Duration
	// OnSnapshot receives each periodic snapshot. A non-nil error aborts
	// the run.
	OnSnapshot func(*checkpoint.Snapshot) error
}

// RunCheckpointed executes the simulation to the configured horizon,
// pausing every opts.Every simulated seconds to hand a snapshot to
// opts.OnSnapshot. Segmented execution is behavior-identical to a single
// Run: the kernel's clock advances to each boundary whether or not events
// fire there, so the event trace and Results are bit-identical to an
// uncheckpointed run.
func (w *World) RunCheckpointed(opts CheckpointOptions) (Results, error) {
	if opts.Every > 0 && opts.OnSnapshot != nil {
		end := sim.Time(w.Cfg.SimTime)
		for t := w.Sched.Now().Add(opts.Every); t < end; t = t.Add(opts.Every) {
			w.Sched.Run(t)
			snap, err := w.Snapshot()
			if err != nil {
				return Results{}, err
			}
			if err := opts.OnSnapshot(snap); err != nil {
				return Results{}, fmt.Errorf("scenario: checkpoint at %v: %w", t, err)
			}
		}
	}
	return w.Run(), nil
}

// RunCheckpointed is the one-call entry point: build a world from cfg and
// run it with periodic snapshots.
func RunCheckpointed(cfg Config, opts CheckpointOptions) (Results, error) {
	w, err := New(cfg)
	if err != nil {
		return Results{}, err
	}
	return w.RunCheckpointed(opts)
}

// NearestSnapshot deterministically re-runs cfg and returns the latest
// snapshot taken strictly before at, on an every-spaced grid starting at
// t=0. Debugging workflow: a violation or anomaly detected at time at can
// be replayed from this snapshot with a tail trace (RestoreOpts) instead
// of re-tracing the whole run.
func NearestSnapshot(cfg Config, at sim.Time, every sim.Duration) (*checkpoint.Snapshot, error) {
	if every <= 0 {
		return nil, fmt.Errorf("scenario: NearestSnapshot: period %v not positive", every)
	}
	w, err := New(cfg)
	if err != nil {
		return nil, err
	}
	var snap *checkpoint.Snapshot
	for t := sim.Time(0); t < at; t = t.Add(every) {
		w.Sched.Run(t)
		s, err := w.Snapshot()
		if err != nil {
			return nil, err
		}
		snap = s
	}
	if snap == nil {
		return nil, fmt.Errorf("scenario: NearestSnapshot: nothing precedes t=%v", at)
	}
	return snap, nil
}

// RestoreOptions tune Restore.
type RestoreOptions struct {
	// TailTraceCapacity, when nonzero, installs a fresh trace ring of that
	// capacity on the restored world even when the config has tracing off:
	// the continuation from the snapshot time records events for replay
	// debugging without the cost of tracing the whole prefix.
	TailTraceCapacity int
}

// Restore rebuilds a running world from a snapshot. See RestoreOpts.
func Restore(snap *checkpoint.Snapshot) (*World, error) {
	return RestoreOpts(snap, RestoreOptions{})
}

// RestoreOpts rebuilds a running world from a snapshot: it strictly decodes
// the embedded config (unknown fields are version skew, not noise), builds
// a fresh world, deterministically replays it to the snapshot time, and
// byte-verifies every section of a re-taken snapshot against the stored
// one. On success the returned world's continuation is bit-identical to the
// original run's; on any mismatch it returns ErrReplayDiverged naming the
// first divergent section.
func RestoreOpts(snap *checkpoint.Snapshot, opts RestoreOptions) (*World, error) {
	dec := json.NewDecoder(bytes.NewReader(snap.ConfigJSON))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("scenario: restore: config: %w", err)
	}
	if cfg.Seed != snap.Seed {
		return nil, fmt.Errorf("scenario: restore: header seed %d != config seed %d", snap.Seed, cfg.Seed)
	}
	w, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: restore: %w", err)
	}
	// Dark fast-forward: replay the prefix with no observers beyond what
	// the config itself installs.
	w.Sched.Run(sim.Time(snap.T))
	replayed, err := w.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("scenario: restore: %w", err)
	}
	if err := diffSnapshots(snap, replayed); err != nil {
		return nil, err
	}
	if opts.TailTraceCapacity != 0 && w.Trace == nil {
		w.Trace = trace.New(opts.TailTraceCapacity)
	}
	return w, nil
}

// diffSnapshots compares a stored snapshot against the replayed one and
// names the first divergence.
func diffSnapshots(want, got *checkpoint.Snapshot) error {
	if got.T != want.T {
		return fmt.Errorf("%w: clock %v != %v", ErrReplayDiverged, got.T, want.T)
	}
	if !bytes.Equal(got.ConfigJSON, want.ConfigJSON) {
		return fmt.Errorf("%w: config JSON does not round-trip", ErrReplayDiverged)
	}
	if len(got.Sections) != len(want.Sections) {
		return fmt.Errorf("%w: %d sections != %d", ErrReplayDiverged, len(got.Sections), len(want.Sections))
	}
	for i, ws := range want.Sections {
		gs := got.Sections[i]
		if gs.ID != ws.ID {
			return fmt.Errorf("%w: section %d is %v, want %v", ErrReplayDiverged, i, gs.ID, ws.ID)
		}
		if !bytes.Equal(gs.Payload, ws.Payload) {
			return fmt.Errorf("%w: section %v (%d vs %d bytes)", ErrReplayDiverged, ws.ID, len(gs.Payload), len(ws.Payload))
		}
	}
	return nil
}
