package scenario_test

import (
	"encoding/json"
	"testing"

	"roborepair/internal/chaos"
	"roborepair/internal/core"
	"roborepair/internal/failure"
	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/runner"
	"roborepair/internal/scenario"
	"roborepair/internal/sim"
	"roborepair/internal/trace"
	"roborepair/internal/wire"
)

// relConfig is a small reliability-enabled run: 4 robots, short horizon.
// The default lifetime keeps the offered failure load well inside the
// fleet's repair capacity — robustness tests kill robots mid-run, and a
// system overloaded by design can't degrade gracefully.
func relConfig(alg core.Algorithm) scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Algorithm = alg
	cfg.SimTime = 8000
	cfg.Reliability.Enabled = true
	return cfg
}

// TestReportDeliveryUnderLoss runs each algorithm through sustained 10%
// Bernoulli loss with the reliability protocol on: no report may exhaust
// its retry budget, and the network must keep repairing (the unrepaired
// residue is bounded by the horizon tail, not by lost reports).
func TestReportDeliveryUnderLoss(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		cfg := relConfig(alg)
		cfg.LossP = 0.1
		res, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FailuresInjected == 0 || res.Repairs == 0 {
			t.Fatalf("%v: degenerate run: %d failures, %d repairs", alg, res.FailuresInjected, res.Repairs)
		}
		if res.ReportsAbandoned != 0 {
			t.Errorf("%v: %d reports abandoned under 10%% loss", alg, res.ReportsAbandoned)
		}
		if res.ReportRetx == 0 {
			t.Errorf("%v: loss run produced no retransmissions — retry path not exercised", alg)
		}
		if lim := res.FailuresInjected / 4; res.UnrepairedFailures > lim {
			t.Errorf("%v: %d of %d failures unrepaired (limit %d)",
				alg, res.UnrepairedFailures, res.FailuresInjected, lim)
		}
	}
}

// dropFirstReport loses exactly the first failure-report frame of the run
// (every later frame, including retransmissions, passes) and remembers
// which failure it silenced.
type dropFirstReport struct {
	dropped bool
	failed  radio.NodeID
	loc     geom.Point
	at      sim.Time
	now     func() sim.Time
}

func (d *dropFirstReport) Drop(radio.NodeID, radio.NodeID) bool { return false }

func (d *dropFirstReport) DropFrame(f radio.Frame, _ radio.NodeID) bool {
	if d.dropped || f.Category != metrics.CatFailureReport {
		return false
	}
	p, ok := f.Payload.(netstack.Packet)
	if !ok {
		return false
	}
	rep, ok := p.Payload.(wire.FailureReport)
	if !ok {
		return false
	}
	d.dropped = true
	d.failed, d.loc, d.at = rep.Failed, rep.Loc, d.now()
	return true
}

// repairedAfter reports whether the site at loc was repaired after t: a
// replacement was deployed there, or a sensor at that exact position is
// alive at the horizon.
func repairedAfter(w *scenario.World, loc geom.Point, t sim.Time) bool {
	for _, ev := range w.Trace.Events() {
		if ev.Kind == trace.KindReplacement && ev.At > t && ev.Loc.Dist2(loc) <= 1e-6 {
			return true
		}
	}
	for _, s := range w.Sensors {
		if s.Alive() && s.Pos().Dist2(loc) <= 1e-6 {
			return true
		}
	}
	return false
}

// TestSingleLostReportStrandsOnlyWithoutRetry is the regression test for
// the paper protocol's sharpest edge: one lost failure report used to
// strand the failure forever. With retransmission the same loss is
// absorbed.
func TestSingleLostReportStrandsOnlyWithoutRetry(t *testing.T) {
	run := func(reliable bool) (*scenario.World, *dropFirstReport) {
		cfg := scenario.DefaultConfig()
		cfg.Algorithm = core.Dynamic
		cfg.SimTime = 6000
		cfg.MeanLifetime = 8000
		cfg.TraceCapacity = -1
		cfg.Reliability.Enabled = reliable
		w, err := scenario.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := &dropFirstReport{now: w.Sched.Now}
		d.now = w.Sched.Now
		// Wrap the (lossless) configured model: only the targeted frame drops.
		w.Medium.SetLoss(d)
		w.Run()
		if !d.dropped {
			t.Fatal("no failure report was ever sent; run too short")
		}
		return w, d
	}

	w, d := run(false)
	if repairedAfter(w, d.loc, d.at) {
		t.Errorf("fire-and-forget: node %d's site repaired despite its only report being lost", d.failed)
	}

	w, d = run(true)
	if !repairedAfter(w, d.loc, d.at) {
		t.Errorf("reliable: node %d's site never repaired after its first report was lost", d.failed)
	}
}

// TestFaultPlanDeterministicAcrossProcs guards replayability: the same
// (config, fault plan, seed) must produce byte-identical Results whether
// the grid runs on 1 worker or 4.
func TestFaultPlanDeterministicAcrossProcs(t *testing.T) {
	plan, err := chaos.Parse("robot@1500=0;burst@1500-3000=0.05;blackout@800-1200=100,100,80;mgr@3500")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []runner.Job
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		cfg := relConfig(alg)
		cfg.SimTime = 5000
		cfg.Faults = plan
		jobs = append(jobs, runner.Job{Config: cfg})
	}
	serial, _, err := runner.Run(jobs, runner.Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := runner.Run(jobs, runner.Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a, err := json.Marshal(serial[i].Res)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(parallel[i].Res)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("job %d: fault-plan run differs between 1 and 4 workers:\n%s\n%s", i, a, b)
		}
	}
}

// TestReliabilityCountersInertByDefault guards the gating principle: with
// no fault plan and the reliability protocol disabled, none of the
// robustness machinery may leave a trace in the results.
func TestReliabilityCountersInertByDefault(t *testing.T) {
	cfg := scenario.DefaultConfig()
	cfg.SimTime = 4000
	res, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReportRetx != 0 || res.ReportsAbandoned != 0 || res.StrandedTasks != 0 ||
		res.RequeuedTasks != 0 || res.Redispatches != 0 || res.ManagerTakeovers != 0 ||
		res.DuplicateRepairs != 0 || res.MeanFaultRecovery != 0 {
		t.Fatalf("robustness counters non-zero on a default run: %+v", res)
	}
}

// TestGracefulDegradationDynamic is the acceptance scenario: the dynamic
// algorithm loses 1 of 4 robots mid-run under a 5% loss burst, and the
// reliability layer must degrade gracefully — the dead robot's tasks are
// re-queued and served, no report is abandoned, and every failure with
// time to spare before the horizon is repaired.
func TestGracefulDegradationDynamic(t *testing.T) {
	plan, err := chaos.Parse("robot@4000=0;burst@4000-8000=0.05")
	if err != nil {
		t.Fatal(err)
	}
	cfg := relConfig(core.Dynamic)
	cfg.SimTime = 16000
	cfg.Faults = plan
	cfg.TraceCapacity = -1
	w, err := scenario.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A correlated failure burst 100 s before the robot breakdown, centered
	// on the doomed robot, loads its queue so the breakdown is guaranteed
	// to strand tasks (detection ≈ 30 s, confirmation grace 20 s, dynamic
	// dispatch picks the nearest — burst-central — robot). The radius stays
	// below the sensor radio range so every victim has a live witness.
	population := make([]failure.Failable, 0, len(w.Sensors))
	for _, s := range w.Sensors {
		population = append(population, s)
	}
	w.Injector.ScheduleBurst(failure.Burst{At: 3900, Center: w.Robots[0].Pos(), Radius: 55}, population)
	res := w.Run()

	if res.StrandedTasks == 0 {
		t.Fatal("robot death stranded no tasks; scenario not exercised")
	}
	if res.RequeuedTasks != res.StrandedTasks {
		t.Errorf("stranded %d tasks but re-queued %d", res.StrandedTasks, res.RequeuedTasks)
	}
	if res.ReportsAbandoned != 0 {
		t.Errorf("%d reports abandoned", res.ReportsAbandoned)
	}

	// Every failure injected with at least `slack` left before the horizon
	// must be repaired (a replacement deployed at its site, or the site
	// alive at the end). The slack absorbs detection, dispatch, travel,
	// and the fault window's backlog.
	const slack = 4000
	cut := sim.Time(cfg.SimTime - slack)
	for _, ev := range w.Trace.Events() {
		if ev.Kind != trace.KindFailure || ev.At > cut {
			continue
		}
		if !repairedAfter(w, ev.Loc, ev.At) {
			t.Errorf("failure of node %d at t=%.0f (site %.1f,%.1f) never repaired",
				ev.Node, float64(ev.At), ev.Loc.X, ev.Loc.Y)
		}
	}
}

// TestCentralizedManagerFailover crashes the static manager mid-run: a
// robot must take over dispatching and repairs must continue afterwards.
func TestCentralizedManagerFailover(t *testing.T) {
	plan, err := chaos.Parse("mgr@2000")
	if err != nil {
		t.Fatal(err)
	}
	cfg := relConfig(core.Centralized)
	cfg.SimTime = 10000
	cfg.Faults = plan
	cfg.TraceCapacity = -1
	w, err := scenario.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()

	if res.ManagerTakeovers == 0 {
		t.Fatal("manager crash triggered no takeover")
	}
	if w.Manager.Alive() {
		t.Fatal("manager still alive after planned crash")
	}
	var repairsAfter int
	for _, ev := range w.Trace.Events() {
		// Leave a grace for in-flight pre-crash dispatches: only repairs
		// well after the crash prove the new manager is dispatching.
		if ev.Kind == trace.KindReplacement && ev.At > 4000 {
			repairsAfter++
		}
	}
	if repairsAfter == 0 {
		t.Fatal("no repairs completed after the manager crash")
	}
	if res.MeanFaultRecovery <= 0 {
		t.Error("manager crash recovery time not measured")
	}
}
