package scenario

import (
	"math"
	"testing"

	"roborepair/internal/analysis"
	"roborepair/internal/core"
)

// These tests cross-validate the simulator against the closed-form models
// in internal/analysis. Tolerances are wide enough to absorb model error
// (boundary effects, queueing correlations) but tight enough to catch
// wiring mistakes of an order of magnitude — the class of bug that
// silently invalidates a reproduction.

func TestValidationFailureCountMatchesRenewalTheory(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	cfg.SimTime = 16000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.ExpectedFailures(cfg.NumSensors(), cfg.MeanLifetime, cfg.SimTime)
	got := float64(res.FailuresInjected)
	if math.Abs(got-want)/want > 0.20 {
		t.Fatalf("failures %v vs renewal expectation %v (>20%% off)", got, want)
	}
}

func TestValidationDynamicTravelMatchesNearestRobotModel(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 9)
	cfg.SimTime = 16000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.ExpectedNearestOfK(cfg.FieldSide(), cfg.Robots) // = 100 m
	got := res.AvgTravelPerFailure
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("dynamic travel %v vs nearest-robot model %v (>25%% off)", got, want)
	}
}

func TestValidationFixedTravelMatchesPairDistanceModel(t *testing.T) {
	cfg := quickConfig(core.Fixed, 9)
	cfg.SimTime = 16000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed: robot and failure are ≈ independent uniforms in one subarea.
	want := analysis.ExpectedPairDist(cfg.AreaPerRobotSide)
	got := res.AvgTravelPerFailure
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("fixed travel %v vs pair-distance model %v (>25%% off)", got, want)
	}
}

func TestValidationCentralizedReportHops(t *testing.T) {
	cfg := quickConfig(core.Centralized, 9)
	cfg.SimTime = 16000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reports travel from a uniform failure site to the center over 63 m
	// sensor hops.
	dist := analysis.ExpectedDistToCenter(cfg.FieldSide())
	want := analysis.ExpectedHops(dist, cfg.SensorRange, cfg.SensorRange)
	got := res.AvgReportHops
	if math.Abs(got-want)/want > 0.35 {
		t.Fatalf("centralized report hops %v vs model %v (>35%% off)", got, want)
	}
}

func TestValidationDistributedReportHops(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 9)
	cfg.SimTime = 16000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3.2: report distance ≈ travel distance (≈100 m) over 63 m hops,
	// "stable at about 2".
	want := analysis.ExpectedHops(100, cfg.SensorRange, cfg.SensorRange)
	got := res.AvgReportHops
	if math.Abs(got-want) > 1 {
		t.Fatalf("distributed report hops %v vs model %v (off by >1)", got, want)
	}
}

func TestValidationRepairDelayWithinQueueModel(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 9)
	cfg.SimTime = 16000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per-robot arrival rate and service model.
	lambda := float64(res.Repairs) / cfg.SimTime / float64(cfg.Robots)
	meanService := res.AvgTravelPerFailure / cfg.RobotSpeed
	// Service times are roughly Rayleigh-like: Var ≈ (0.5·mean)².
	serviceVar := 0.25 * meanService * meanService
	detection := cfg.BeaconPeriod * float64(cfg.MissedBeacons) / 2
	want := analysis.ExpectedRepairDelay(lambda, meanService, serviceVar, detection)
	got := res.AvgRepairDelay
	// Queueing models of correlated arrivals are rough: factor-2 band.
	if got < want/2 || got > want*2 {
		t.Fatalf("repair delay %v outside factor-2 band of M/G/1 model %v", got, want)
	}
}
