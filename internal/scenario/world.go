package scenario

import (
	"fmt"
	"math"

	"roborepair/internal/algorithm"
	"roborepair/internal/chaos"
	"roborepair/internal/core"
	"roborepair/internal/coverage"
	"roborepair/internal/failure"
	"roborepair/internal/ftdc"
	"roborepair/internal/geom"
	"roborepair/internal/invariant"
	"roborepair/internal/metrics"
	"roborepair/internal/node"
	"roborepair/internal/radio"
	"roborepair/internal/rng"
	"roborepair/internal/robot"
	"roborepair/internal/sim"
	"roborepair/internal/telemetry"
	"roborepair/internal/trace"
	"roborepair/internal/wire"
)

// World is a fully wired simulation ready to run. Build one with New, run
// it with Run, then read Results.
type World struct {
	Cfg       Config
	Sched     *sim.Scheduler
	Medium    *radio.Medium
	Registry  *metrics.Registry
	Sensors   map[radio.NodeID]*node.Sensor
	Robots    []*robot.Robot
	Manager   *core.Manager // nil except for the centralized algorithm
	Partition *geom.Partition
	Injector  *failure.Injector
	Trace     *trace.Log           // non-nil only when Config.TraceCapacity != 0
	Telemetry *telemetry.Collector // non-nil only when Config.Telemetry.Enabled
	Recorder  *ftdc.Recorder       // non-nil only when Config.Recorder.Enabled

	nextID   radio.NodeID
	policy   node.Policy
	strategy algorithm.Strategy

	// counters, incremented by hooks (see below); trace records lifecycle
	// events when enabled.

	// counters, incremented by hooks
	failuresInjected  int
	reportsSent       int
	reportsDelivered  int
	requestsIssued    int
	requestsDelivered int
	repairs           int

	// Reliability/fault state (robustness extension).
	relNode        node.Reliability // sensor-side knobs; zero when disabled
	strandedTasks  int
	requeuedTasks  int
	reportRetx     int
	reportsAban    int
	redispatches   int
	takeovers      int
	managerCrashAt sim.Time                      // -1 until the planned crash fires
	requeuedAt     map[radio.NodeID]sim.Time     // failed ID → when its task was re-queued
	siteIDs        map[geom.Point][]radio.NodeID // every sensor ever placed at a site
	dupRepair      bool                          // spawnReplacement→OnTaskDone handshake for the current repair
	dupRepairs     int

	// Telemetry histogram feeds; nil when telemetry is disabled, so the
	// hooks pay one nil check.
	telRepairDelay *telemetry.LogHistogram
	telReportHops  *telemetry.LogHistogram
	telReportRetx  *telemetry.LogHistogram
	telTrip        *telemetry.LogHistogram

	// inv is the conservation-law checker; nil when Config.Invariants is
	// disabled, so the hooks pay one nil check.
	inv *invariant.Checker

	// streams holds every named RNG stream split off the config seed, in
	// creation order, so a checkpoint can capture each stream's exact
	// position. Creation order is a deterministic function of the config.
	streams []*rng.Source

	// corrupter is retained for checkpointing (its replay-capture ring is
	// dynamic state); nil unless the fault plan has corruption windows.
	corrupter *chaos.FrameCorrupter

	// hostile is set when the fault plan has corruption windows: the frame
	// codec and corrupter are installed on the medium and every receiver
	// runs its strict-sequence replay guard.
	hostile bool
}

// New builds a world from the configuration.
func New(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kernel, err := sim.ParseKernel(cfg.Kernel)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sched := sim.NewSchedulerKernel(kernel)
	reg := metrics.NewRegistry()
	w := &World{
		Cfg:            cfg,
		Sched:          sched,
		Registry:       reg,
		Sensors:        make(map[radio.NodeID]*node.Sensor, cfg.NumSensors()),
		nextID:         1,
		managerCrashAt: -1,
	}
	// Named streams register on the world at creation so a checkpoint can
	// capture their positions; registration itself draws nothing.
	split := func(name string) *rng.Source {
		s := rng.Split(cfg.Seed, name)
		w.streams = append(w.streams, s)
		return s
	}
	// The fault plan's loss bursts and blackouts wrap the base loss model;
	// the burst draws come from their own stream so an (in)active burst
	// never perturbs the base loss sequence.
	loss := cfg.lossModel(split("loss"))
	var outage radio.OutageModel
	var channel radio.Channel
	var corrupter radio.Corrupter
	if cfg.Faults != nil {
		if len(cfg.Faults.LossBursts) > 0 {
			loss = chaos.NewLossInjector(cfg.Faults.LossBursts, loss, sched.Now, split("chaos-loss"))
		}
		if o := chaos.NewRegionOutage(cfg.Faults.Blackouts, sched.Now); o != nil {
			outage = o
		}
		if len(cfg.Faults.Corruptions) > 0 {
			// Hostile channel: serialize every frame so the corrupter has
			// bytes to mutate, from its own stream so a corruption window
			// never perturbs the loss or MAC sequences.
			w.hostile = true
			channel = wire.FrameCodec{}
			w.corrupter = chaos.NewFrameCorrupter(cfg.Faults.Corruptions, sched.Now, split("chaos-corrupt"))
			corrupter = w.corrupter
		}
	}
	hostile := w.hostile
	medium, err := radio.NewMedium(sched, reg, radio.Config{
		CellSize:   cfg.SensorRange,
		Loss:       loss,
		Outage:     outage,
		Contention: cfg.contentionModel(split("mac")),
		Channel:    channel,
		Corrupter:  corrupter,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	w.Medium = medium
	if cfg.Invariants.Enabled {
		w.startInvariants()
	}
	w.Injector = failure.NewInjector(sched, cfg.lifetimeModel(split("lifetimes")))
	if cfg.TraceCapacity != 0 {
		w.Trace = trace.New(cfg.TraceCapacity)
	}
	// Always installed: the body nil-checks its consumers, and a restored
	// world may gain a tail trace after the fact (RestoreOptions).
	w.Injector.OnKill = func(n failure.Failable) {
		s, ok := n.(*node.Sensor)
		if !ok {
			return
		}
		if w.inv != nil {
			w.inv.FailureInjected(s.ID(), s.Pos())
		}
		if w.Trace != nil {
			w.Trace.Record(trace.Event{
				At: sched.Now(), Kind: trace.KindFailure,
				Node: s.ID(), Loc: s.Pos(),
			})
		}
	}

	side := cfg.FieldSide()
	bounds := geom.Square(geom.Pt(0, 0), side)

	part, err := geom.NewPartition(cfg.Partition, bounds, cfg.Robots)
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	w.Partition = part

	// Reserve robot and manager IDs before sensors so replacement sensors
	// can keep growing the ID space monotonically.
	robotIDs := make([]radio.NodeID, cfg.Robots)
	for i := range robotIDs {
		robotIDs[i] = radio.NodeID(i + 1)
	}
	managerID := radio.NodeID(cfg.Robots + 1)
	w.nextID = radio.NodeID(cfg.Robots + 2)

	rel := cfg.Reliability.withDefaults()

	// Algorithm wiring via the strategy registry: the factory builds the
	// sensor policy, the robot update mode, and (for centrally dispatched
	// families) the manager station, against hooks that feed the world's
	// counters and trace.
	factory, err := algorithm.Lookup(string(cfg.Algorithm))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	env := &algorithm.Env{
		Medium:     medium,
		Sched:      sched,
		Bounds:     bounds,
		Partition:  part,
		RobotIDs:   robotIDs,
		ManagerID:  managerID,
		RobotRange: cfg.RobotRange,
		ManagerHooks: core.ManagerHooks{
			OnReportReceived: func(rep wire.FailureReport, hops int) {
				w.reportsDelivered++
				reg.Observe(metrics.SeriesReportHops, float64(hops))
				if w.telReportHops != nil {
					w.telReportHops.Add(float64(hops))
				}
				w.trace(trace.Event{
					At: sched.Now(), Kind: trace.KindReportDelivered,
					Node: rep.Failed, Actor: managerID, Loc: rep.Loc,
				})
			},
			OnRequestIssued: func(req wire.RepairRequest, to radio.NodeID) {
				w.requestsIssued++
				w.trace(trace.Event{
					At: sched.Now(), Kind: trace.KindDispatch,
					Node: req.Failed, Actor: to, Loc: req.Loc,
				})
			},
			OnRedispatch: func(req wire.RepairRequest, to radio.NodeID, _ int) {
				w.redispatches++
				w.trace(trace.Event{
					At: sched.Now(), Kind: trace.KindRedispatch,
					Node: req.Failed, Actor: to, Loc: req.Loc,
				})
			},
		},
		RelEnabled: rel.Enabled,
		Facility: algorithm.FacilityParams{
			Objective: cfg.FacilityObjective,
			Period:    cfg.FacilityPeriodS,
			Ledger:    cfg.FacilityLedger,
		},
	}
	if rel.Enabled {
		env.ManagerRel = core.ManagerReliability{
			HeartbeatPeriod:    sim.Duration(rel.HeartbeatS),
			MissedHeartbeats:   rel.MissedHeartbeats,
			DispatchAckTimeout: sim.Duration(rel.DispatchAckTimeoutS),
		}
	}
	strat, err := factory(env)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	w.strategy = strat
	w.Manager = strat.Manager()
	w.policy = strat.Policy()
	mode := strat.UpdateMode()

	if rel.Enabled {
		w.relNode = node.Reliability{
			RetryBase:     sim.Duration(rel.ReportRetryS),
			RetryMax:      sim.Duration(rel.ReportRetryMaxS),
			RetryLimit:    rel.ReportRetryLimit,
			RobotExpiry:   sim.Duration(rel.HeartbeatS) * sim.Duration(rel.MissedHeartbeats),
			OrphanAdopt:   true,
			NeighborWatch: true,
			WatchGrace:    sim.Duration(rel.WatchGraceS),
		}
		if strat.CentralDispatch() {
			w.relNode.Manager = managerID
		}
		w.requeuedAt = make(map[radio.NodeID]sim.Time)
		w.siteIDs = make(map[geom.Point][]radio.NodeID)
	}

	// Deploy the initial sensor population. The deploy stream is shared
	// with robot placement (RobotStart draws from it after the sensors),
	// preserving the pre-registry draw order.
	deploy := split("deploy")
	env.Deploy = deploy
	jitter := split("jitter")
	for _, pos := range placeSensors(cfg.Deployment, cfg.NumSensors(), bounds, deploy) {
		w.spawnSensor(pos, jitter, false, 0, geom.Point{})
	}

	// Deploy robots: at subarea centers for the fixed algorithm ("the
	// robots first move to the centers of their corresponding subareas"),
	// uniformly at random otherwise.
	robotHooks := robot.Hooks{
		SpawnReplacement: w.spawnReplacement,
		OnTaskDone: func(r *robot.Robot, t robot.Task, dist float64, delay sim.Duration) {
			if w.telTrip != nil {
				// The trip was driven whether or not a node got replaced.
				w.telTrip.Add(dist)
			}
			if w.dupRepair {
				// The site was already repaired by another robot (duplicate
				// reports can cross dispatcher boundaries under faults):
				// the trip happened but no node was replaced.
				w.dupRepair = false
				return
			}
			w.repairs++
			if w.inv != nil {
				w.inv.RepairCompleted(t.Failed, t.Loc)
			}
			// 30 s buckets cover 0..2 h of repair delay; the tail beyond
			// that reports exactly via overflow.
			reg.Histogram(HistRepairDelay, 30, 240).Add(float64(delay))
			if w.telRepairDelay != nil {
				w.telRepairDelay.Add(float64(delay))
			}
			if at, ok := w.requeuedAt[t.Failed]; ok {
				delete(w.requeuedAt, t.Failed)
				reg.Observe(metrics.SeriesFaultRecovery, float64(sched.Now().Sub(at)))
			}
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindReplacement,
				Node: t.Failed, Actor: r.ID(), Loc: t.Loc,
			})
		},
		OnReportReceived: func(rep wire.FailureReport, hops int) {
			w.reportsDelivered++
			reg.Observe(metrics.SeriesReportHops, float64(hops))
			if w.telReportHops != nil {
				w.telReportHops.Add(float64(hops))
			}
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindReportDelivered,
				Node: rep.Failed, Loc: rep.Loc,
			})
		},
		OnRequestReceived: func(req wire.RepairRequest, hops int) {
			w.requestsDelivered++
			reg.Observe(metrics.SeriesRequestHops, float64(hops))
		},
		OnPublish: func(r *robot.Robot, up wire.RobotUpdate) {
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindLocationUpdate,
				Node: r.ID(), Actor: r.ID(), Loc: up.Loc,
			})
		},
		OnFail: func(r *robot.Robot, stranded []robot.Task) {
			if w.inv != nil {
				w.inv.RobotDied(r.ID())
			}
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindRobotFailure,
				Node: r.ID(), Actor: r.ID(), Loc: r.Pos(),
			})
			w.strandedTasks += len(stranded)
			for _, t := range stranded {
				w.trace(trace.Event{
					At: sched.Now(), Kind: trace.KindTaskStranded,
					Node: t.Failed, Actor: r.ID(), Loc: t.Loc,
				})
			}
			// Under the distributed algorithms the dead robot's neighbors
			// absorb its pending work (a central manager re-dispatches
			// through its own liveness tracking instead).
			if rel.Enabled && !strat.CentralDispatch() {
				w.requeueStranded(stranded)
			}
		},
		OnTakeover: func(r *robot.Robot) {
			w.takeovers++
			w.relNode.Manager = r.ID() // future replacement sensors track the elected manager
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindTakeover,
				Node: r.ID(), Actor: r.ID(), Loc: r.Pos(),
			})
			if w.managerCrashAt >= 0 {
				reg.Observe(metrics.SeriesFaultRecovery, float64(sched.Now().Sub(w.managerCrashAt)))
			}
		},
		OnRedispatch: func(req wire.RepairRequest, to radio.NodeID, _ int) {
			w.redispatches++
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindRedispatch,
				Node: req.Failed, Actor: to, Loc: req.Loc,
			})
		},
	}
	if w.inv != nil {
		robotHooks.OnMove = func(r *robot.Robot, from geom.Point, fromAt sim.Time, to geom.Point) {
			w.inv.RobotMoved(r.ID(), from, fromAt, to)
		}
	}
	if cfg.Battery != nil {
		robotHooks.OnBatteryDeath = func(r *robot.Robot) {
			// OnFail has already stranded (and, for distributed algorithms,
			// re-queued) the robot's tasks; this marker records the cause.
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindBatteryDeath,
				Node: r.ID(), Actor: r.ID(), Loc: r.Pos(),
			})
		}
		robotHooks.OnRecharge = func(r *robot.Robot) {
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindRecharge,
				Node: r.ID(), Actor: r.ID(), Loc: r.Pos(),
			})
		}
		robotHooks.OnHandoff = func(donor *robot.Robot, handed []robot.Task) {
			now := sched.Now()
			for _, t := range handed {
				best := w.nearestAlive(t.Loc, donor.ID())
				if best == nil {
					// No other live robot: bounce the task back to the donor,
					// which queues it for after its recharge.
					best = donor
				}
				w.trace(trace.Event{
					At: now, Kind: trace.KindTaskHandoff,
					Node: t.Failed, Actor: donor.ID(), Loc: t.Loc,
				})
				if w.requeuedAt != nil {
					w.requeuedAt[t.Failed] = now
				}
				best.Enqueue(robot.Task{Failed: t.Failed, Loc: t.Loc, EnqueuedAt: now})
			}
		}
	}
	rcfg := robot.Config{
		Speed:           cfg.RobotSpeed,
		Range:           cfg.RobotRange,
		UpdateThreshold: cfg.UpdateThreshold,
		ServiceTime:     sim.Duration(cfg.ServiceTime),
	}
	if cfg.NearestFirstQueue {
		rcfg.Queue = robot.NearestFirst
	}
	if cfg.CargoCapacity > 0 {
		rcfg.Cargo = cfg.CargoCapacity
		rcfg.Depot = bounds.Center()
	}
	rcfg.StrictSeq = hostile
	if cfg.Battery != nil {
		bc := cfg.Battery.withDefaults()
		rcfg.Battery = robot.BatteryParams{
			CapacityJ: bc.CapacityJ,
			RechargeW: bc.RechargeW,
			ReserveJ:  bc.ReserveJ,
			Model:     bc.model(),
			Depot:     bounds.Center(),
		}
	}
	if rel.Enabled {
		rcfg.Reliability = robot.Reliability{
			HeartbeatPeriod:    sim.Duration(rel.HeartbeatS),
			MissedHeartbeats:   rel.MissedHeartbeats,
			DispatchAckTimeout: sim.Duration(rel.DispatchAckTimeoutS),
		}
		if strat.CentralDispatch() {
			rcfg.Reliability.Manager = managerID
			rcfg.Reliability.ManagerLoc = bounds.Center()
		}
	}
	for i, id := range robotIDs {
		pos := strat.RobotStart(i)
		rc := rcfg
		rc.Reliability.TakeoverRank = i
		r := robot.New(id, pos, rc, mode, medium, robotHooks)
		w.Robots = append(w.Robots, r)
		r.Start(initDelay)
		if w.Manager != nil {
			// The manager also learns robot locations from their init
			// unicasts; priming the table mirrors the paper's
			// initialization step 2 and covers the (rare) case of a lost
			// registration packet.
			w.Manager.TrackRobot(id, pos)
		}
	}
	if w.Manager != nil {
		if cfg.ETADispatch {
			w.Manager.SetDispatchPolicy(core.DispatchShortestETA)
		}
		if hostile {
			w.Manager.SetStrictSeq(true)
		}
		w.Manager.Start(initDelay)
	}
	// Strategy-owned periodic work (e.g. the facility re-solver); a no-op
	// for the paper's three algorithms, so their event sequences are
	// untouched.
	strat.Start(initDelay)
	if cfg.SensingRange > 0 {
		w.startCoverageSampling(bounds)
	}
	if cfg.RobotFailures > 0 {
		n := cfg.RobotFailures
		if n > len(w.Robots) {
			n = len(w.Robots)
		}
		at := sim.Time(cfg.RobotFailureTime)
		sched.After(at.Sub(sched.Now()), func() {
			for i := 0; i < n; i++ {
				w.Robots[i].FailNow()
			}
		})
	}
	w.scheduleFaults()
	if cfg.Telemetry.Enabled {
		if err := w.startTelemetry(); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	if cfg.Recorder.Enabled {
		if err := w.startRecorder(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// scheduleFaults arms the fault plan's events on the scheduler. Loss
// bursts and blackouts act through the medium models installed in New;
// here they only get trace markers.
func (w *World) scheduleFaults() {
	plan := w.Cfg.Faults
	if plan.Empty() {
		return
	}
	sched := w.Sched
	for _, rf := range plan.RobotFailures {
		idx := rf.Robot
		sched.After(sim.Time(rf.At).Sub(sched.Now()), func() {
			w.Robots[idx].FailNow()
		})
	}
	if plan.ManagerCrashAt > 0 && w.Manager != nil {
		sched.After(sim.Time(plan.ManagerCrashAt).Sub(sched.Now()), func() {
			w.managerCrashAt = sched.Now()
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindManagerCrash,
				Node: w.Manager.ID(), Loc: w.Manager.Pos(),
			})
			w.Manager.FailNow()
		})
	}
	if w.Trace != nil {
		for _, b := range plan.LossBursts {
			sched.After(sim.Time(b.From).Sub(sched.Now()), func() {
				w.trace(trace.Event{At: sched.Now(), Kind: trace.KindFault})
			})
		}
		for _, b := range plan.Blackouts {
			sched.After(sim.Time(b.From).Sub(sched.Now()), func() {
				w.trace(trace.Event{At: sched.Now(), Kind: trace.KindFault, Loc: b.Center})
			})
		}
	}
	// Drain windows act on robot batteries, so they are inert — scheduling
	// nothing at all — unless the battery layer is on: a battery-off run
	// with a drain plan stays bit-identical to one without it.
	if w.Cfg.Battery != nil {
		for _, d := range plan.Drains {
			d := d
			watts := d.Fraction * w.Cfg.Battery.CapacityJ / (d.To - d.From)
			apply := func(delta float64) {
				if d.Robot >= 0 {
					w.Robots[d.Robot].AddExtraDrainW(delta)
					return
				}
				for _, r := range w.Robots {
					r.AddExtraDrainW(delta)
				}
			}
			sched.After(sim.Time(d.From).Sub(sched.Now()), func() {
				w.trace(trace.Event{At: sched.Now(), Kind: trace.KindFault})
				apply(watts)
			})
			sched.After(sim.Time(d.To).Sub(sched.Now()), func() { apply(-watts) })
		}
	}
}

// requeueStranded hands a dead robot's pending tasks to the surviving
// robot closest to each failure site (the distributed algorithms' peer
// failover; re-queued tasks feed the fault-recovery series on completion).
func (w *World) requeueStranded(stranded []robot.Task) {
	now := w.Sched.Now()
	for _, t := range stranded {
		best := w.nearestAlive(t.Loc, 0)
		if best == nil {
			continue // no surviving robot; the failure stays unrepaired
		}
		w.requeuedTasks++
		w.requeuedAt[t.Failed] = now
		w.trace(trace.Event{
			At: now, Kind: trace.KindTaskRequeued,
			Node: t.Failed, Actor: best.ID(), Loc: t.Loc,
		})
		best.Enqueue(robot.Task{Failed: t.Failed, Loc: t.Loc, EnqueuedAt: now})
	}
}

// nearestAlive returns the live robot closest to loc, skipping exclude
// (pass 0 — never a robot ID — to consider the whole fleet).
func (w *World) nearestAlive(loc geom.Point, exclude radio.NodeID) *robot.Robot {
	var best *robot.Robot
	bestD := math.Inf(1)
	for _, r := range w.Robots {
		if !r.Alive() || r.ID() == exclude {
			continue
		}
		if d := r.Pos().Dist2(loc); d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// startCoverageSampling periodically records the covered field fraction.
func (w *World) startCoverageSampling(bounds geom.Rect) {
	period := w.Cfg.CoverageSamplePeriod
	if period <= 0 {
		period = 1000
	}
	// ~2 probes per sensing radius in each axis.
	probes := int(bounds.Width()/w.Cfg.SensingRange*2) + 1
	est := coverage.NewEstimator(bounds, w.Cfg.SensingRange, probes, probes)
	sample := func() {
		alive := make([]geom.Point, 0, len(w.Sensors))
		for _, s := range w.Sensors {
			if s.Alive() {
				alive = append(alive, s.Pos())
			}
		}
		w.Registry.Observe(metrics.SeriesCoverage, est.Fraction(alive))
	}
	if _, err := w.Sched.NewTicker(sim.Duration(period), sim.Duration(period), sample); err != nil {
		// Unreachable: period is forced positive above.
		panic(err)
	}
}

// trace records an event when tracing is enabled.
func (w *World) trace(e trace.Event) {
	if w.Trace != nil {
		w.Trace.Record(e)
	}
}

// sensorConfig derives the node.Config from the scenario configuration.
func (w *World) sensorConfig() node.Config {
	return node.Config{
		Range:              w.Cfg.SensorRange,
		BeaconPeriod:       sim.Duration(w.Cfg.BeaconPeriod),
		MissedBeacons:      w.Cfg.MissedBeacons,
		SettleDelay:        settleDelay,
		FloodTTL:           core.FloodTTL,
		EfficientBroadcast: w.Cfg.EfficientBroadcast,
		Reliability:        w.relNode,
		StrictSeq:          w.hostile,
	}
}

// spawnSensor creates, registers, arms, and boots one sensor. For
// replacements, target/targetLoc seed the new node's report destination.
func (w *World) spawnSensor(pos geom.Point, jitter *rng.Source, replacement bool, target radio.NodeID, targetLoc geom.Point) *node.Sensor {
	id := w.nextID
	w.nextID++
	hooks := node.Hooks{
		OnReportSent: func(rep wire.FailureReport) {
			w.reportsSent++
			if w.inv != nil && rep.Seq > 0 {
				w.inv.ReportSent(rep.Reporter, rep.Seq)
			}
			w.trace(trace.Event{
				At: w.Sched.Now(), Kind: trace.KindReportSent,
				Node: rep.Failed, Actor: rep.Reporter, Loc: rep.Loc,
			})
		},
		OnReportRetx: func(rep wire.FailureReport, attempt int) {
			w.reportRetx++
			if w.inv != nil && rep.Seq > 0 {
				w.inv.ReportRetx(rep.Reporter, rep.Seq)
			}
			if w.telReportRetx != nil {
				w.telReportRetx.Add(float64(attempt))
			}
			w.trace(trace.Event{
				At: w.Sched.Now(), Kind: trace.KindReportRetx,
				Node: rep.Failed, Actor: rep.Reporter, Loc: rep.Loc,
			})
		},
		OnReportAbandoned: func(rep wire.FailureReport) {
			w.reportsAban++
		},
	}
	if w.inv != nil {
		hooks.OnReportAcked = func(ack wire.ReportAck) {
			w.inv.ReportAcked(ack.Reporter, ack.Seq)
		}
	}
	s := node.NewSensor(id, pos, w.sensorConfig(), w.policy, w.Medium, hooks)
	if replacement {
		s.SetTarget(target, targetLoc)
	}
	w.Sensors[id] = s
	if w.inv != nil {
		w.inv.SensorSpawned(id, pos)
	}
	if w.siteIDs != nil {
		w.siteIDs[pos] = append(w.siteIDs[pos], id)
	}
	w.Injector.Arm(s)
	announce := sim.Duration(jitter.Uniform(0.05, 1.0))
	if replacement {
		announce = 0
	}
	s.Start(announce, sim.Duration(jitter.Jitter(w.Cfg.BeaconPeriod)), replacement)
	return s
}

// spawnReplacement implements robot.Hooks.SpawnReplacement.
func (w *World) spawnReplacement(r *robot.Robot, loc geom.Point) radio.NodeID {
	if w.siteIDs != nil {
		for _, id := range w.siteIDs[loc] {
			s := w.Sensors[id]
			if s == nil || !s.Alive() {
				continue
			}
			// A live sensor already covers this site — an earlier
			// replacement, or the original that a radio blackout made look
			// dead. The visit was a duplicate repair, not a replacement.
			w.dupRepairs++
			w.dupRepair = true
			if w.inv != nil {
				w.inv.DuplicateVisit(loc)
			}
			return id
		}
	}
	var target radio.NodeID
	var targetLoc geom.Point
	if id, mloc, ok := r.ManagerTarget(); ok {
		// Reliability extension: the deploying robot tracks the current
		// manager (elected after a crash, or the configured one).
		target, targetLoc = id, mloc
	} else if w.Manager != nil {
		target, targetLoc = w.Manager.ID(), w.Manager.Pos()
	} else {
		target, targetLoc = r.ID(), r.Pos()
	}
	s := w.spawnSensor(loc, rng.Split(w.Cfg.Seed, "respawn-jitter"), true, target, targetLoc)
	return s.ID()
}

// Run executes the simulation to the configured horizon and returns the
// collected results.
func (w *World) Run() Results {
	// Count natural failures as they are injected: every sensor armed by
	// the injector that dies within the horizon.
	w.Sched.Run(sim.Time(w.Cfg.SimTime))
	w.failuresInjected = w.Injector.Killed()
	w.finalizeInvariants()
	return w.results()
}

func (w *World) results() Results {
	reg := w.Registry
	res := Results{
		Config:            w.Cfg,
		FailuresInjected:  w.failuresInjected,
		ReportsSent:       w.reportsSent,
		ReportsDelivered:  w.reportsDelivered,
		RequestsIssued:    w.requestsIssued,
		RequestsDelivered: w.requestsDelivered,
		Repairs:           w.repairs,
		Registry:          reg,
		Telemetry:         w.Telemetry,
	}
	res.AvgTravelPerFailure = reg.Series(metrics.SeriesTravelPerFailure).Mean()
	res.AvgReportHops = reg.Series(metrics.SeriesReportHops).Mean()
	res.AvgRequestHops = reg.Series(metrics.SeriesRequestHops).Mean()
	res.AvgRepairDelay = reg.Series(metrics.SeriesRepairDelay).Mean()
	if h := reg.Hist(HistRepairDelay); h != nil {
		res.RepairDelayP95 = h.Quantile(0.95)
	}
	if cov := reg.Series(metrics.SeriesCoverage); cov.N() > 0 {
		res.MeanCoverage = cov.Mean()
		res.MinCoverage = cov.Min()
	}
	for _, r := range w.Robots {
		res.TotalTravel += r.Traveled()
	}
	res.LocUpdateTx = reg.Tx(metrics.CatLocUpdate)
	if w.repairs > 0 {
		res.LocUpdateTxPerFailure = float64(res.LocUpdateTx) / float64(w.repairs)
	}
	res.UnrepairedFailures = w.unrepairedSites()
	res.StrandedTasks = w.strandedTasks
	res.RequeuedTasks = w.requeuedTasks
	res.ReportRetx = w.reportRetx
	res.ReportsAbandoned = w.reportsAban
	res.Redispatches = w.redispatches
	res.ManagerTakeovers = w.takeovers
	res.DuplicateRepairs = w.dupRepairs
	if s := reg.Series(metrics.SeriesFaultRecovery); s.N() > 0 {
		res.MeanFaultRecovery = s.Mean()
	}
	res.CorruptedFrames = reg.Tx(radio.CatCorruptFrame)
	res.DroppedMalformed = reg.Tx(radio.CatMalformed)
	if w.Manager != nil {
		res.ReplayRejected += w.Manager.ReplayRejected()
	}
	for _, r := range w.Robots {
		res.ReplayRejected += r.ReplayRejected()
	}
	for _, s := range w.Sensors {
		// Map order varies; a sum of counters is commutative.
		res.ReplayRejected += s.ReplayRejected()
	}
	if w.Cfg.Battery != nil {
		res.RobotEnergy = make([]RobotPower, 0, len(w.Robots))
		for _, r := range w.Robots {
			r.SettleEnergy() // fold the lazily-accrued tail in (idempotent)
			b := r.Battery()
			rp := RobotPower{
				Robot:      int(r.ID()),
				SpentJ:     b.SpentJ,
				RemainingJ: b.RemainingJ,
				RechargedJ: b.RechargedJ,
				Recharges:  r.Recharges(),
				Handoffs:   r.Handoffs(),
				Died:       r.BatteryDied(),
				DiedAtS:    float64(r.DiedAt()),
			}
			res.EnergySpentJ += rp.SpentJ
			res.Recharges += rp.Recharges
			res.TaskHandoffs += rp.Handoffs
			if rp.Died {
				res.RobotDeaths++
			}
			res.RobotEnergy = append(res.RobotEnergy, rp)
		}
	}
	if w.inv != nil {
		res.Violations = w.inv.Violations()
	}
	if w.Telemetry != nil {
		res.TelemetryDropped = w.Telemetry.Sampler().Dropped()
	}
	res.Recording = w.Recorder
	return res
}

// unrepairedSites counts deployment sites where every sensor ever placed
// (original and replacements alike) is dead at the horizon: a failure
// happened there and nothing covers it. Sites where a false-positive
// repair left a live spare next to a later-dying original still count as
// covered — some node answers for that spot.
func (w *World) unrepairedSites() int {
	alive := make(map[geom.Point]bool, len(w.Sensors))
	dead := make(map[geom.Point]bool)
	for _, s := range w.Sensors {
		if s.Alive() {
			alive[s.Pos()] = true
		} else {
			dead[s.Pos()] = true
		}
	}
	n := 0
	for pos := range dead {
		if !alive[pos] {
			n++
		}
	}
	return n
}

// HistRepairDelay is the registry name of the repair-delay histogram.
const HistRepairDelay = "repair_delay_hist"

// Run is the one-call entry point: build a world from cfg and run it.
func Run(cfg Config) (Results, error) {
	w, err := New(cfg)
	if err != nil {
		return Results{}, err
	}
	return w.Run(), nil
}
