package scenario

import (
	"fmt"

	"roborepair/internal/core"
	"roborepair/internal/coverage"
	"roborepair/internal/failure"
	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/node"
	"roborepair/internal/radio"
	"roborepair/internal/rng"
	"roborepair/internal/robot"
	"roborepair/internal/sim"
	"roborepair/internal/trace"
	"roborepair/internal/wire"
)

// World is a fully wired simulation ready to run. Build one with New, run
// it with Run, then read Results.
type World struct {
	Cfg       Config
	Sched     *sim.Scheduler
	Medium    *radio.Medium
	Registry  *metrics.Registry
	Sensors   map[radio.NodeID]*node.Sensor
	Robots    []*robot.Robot
	Manager   *core.Manager // nil except for the centralized algorithm
	Partition *geom.Partition
	Injector  *failure.Injector
	Trace     *trace.Log // non-nil only when Config.TraceCapacity != 0

	nextID radio.NodeID
	policy node.Policy

	// counters, incremented by hooks (see below); trace records lifecycle
	// events when enabled.

	// counters, incremented by hooks
	failuresInjected  int
	reportsSent       int
	reportsDelivered  int
	requestsIssued    int
	requestsDelivered int
	repairs           int
}

// New builds a world from the configuration.
func New(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched := sim.NewScheduler()
	reg := metrics.NewRegistry()
	medium, err := radio.NewMedium(sched, reg, radio.Config{
		CellSize:   cfg.SensorRange,
		Loss:       cfg.lossModel(rng.Split(cfg.Seed, "loss")),
		Contention: cfg.contentionModel(rng.Split(cfg.Seed, "mac")),
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	w := &World{
		Cfg:      cfg,
		Sched:    sched,
		Medium:   medium,
		Registry: reg,
		Sensors:  make(map[radio.NodeID]*node.Sensor, cfg.NumSensors()),
		nextID:   1,
	}
	w.Injector = failure.NewInjector(sched, cfg.lifetimeModel(rng.Split(cfg.Seed, "lifetimes")))
	if cfg.TraceCapacity != 0 {
		w.Trace = trace.New(cfg.TraceCapacity)
		w.Injector.OnKill = func(n failure.Failable) {
			if s, ok := n.(*node.Sensor); ok {
				w.Trace.Record(trace.Event{
					At: sched.Now(), Kind: trace.KindFailure,
					Node: s.ID(), Loc: s.Pos(),
				})
			}
		}
	}

	side := cfg.FieldSide()
	bounds := geom.Square(geom.Pt(0, 0), side)

	part, err := geom.NewPartition(cfg.Partition, bounds, cfg.Robots)
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	w.Partition = part

	// Reserve robot and manager IDs before sensors so replacement sensors
	// can keep growing the ID space monotonically.
	robotIDs := make([]radio.NodeID, cfg.Robots)
	for i := range robotIDs {
		robotIDs[i] = radio.NodeID(i + 1)
	}
	managerID := radio.NodeID(cfg.Robots + 1)
	w.nextID = radio.NodeID(cfg.Robots + 2)

	// Algorithm wiring: sensor policy and robot update mode.
	var mode robot.UpdateMode
	switch cfg.Algorithm {
	case core.Centralized:
		center := bounds.Center()
		w.policy = core.CentralizedPolicy{ManagerID: managerID}
		mode = core.CentralizedUpdate{ManagerID: managerID, ManagerLoc: center}
		w.Manager = core.NewManager(managerID, center, cfg.RobotRange, medium, core.ManagerHooks{
			OnReportReceived: func(rep wire.FailureReport, hops int) {
				w.reportsDelivered++
				reg.Observe(metrics.SeriesReportHops, float64(hops))
				w.trace(trace.Event{
					At: sched.Now(), Kind: trace.KindReportDelivered,
					Node: rep.Failed, Actor: managerID, Loc: rep.Loc,
				})
			},
			OnRequestIssued: func(req wire.RepairRequest, to radio.NodeID) {
				w.requestsIssued++
				w.trace(trace.Event{
					At: sched.Now(), Kind: trace.KindDispatch,
					Node: req.Failed, Actor: to, Loc: req.Loc,
				})
			},
		})
	case core.Fixed:
		home := make(map[radio.NodeID]int, cfg.Robots)
		for i, id := range robotIDs {
			home[id] = i
		}
		w.policy = core.FixedPolicy{Partition: part, Home: home}
		mode = core.FloodUpdate{}
	case core.Dynamic:
		w.policy = core.DynamicPolicy{}
		mode = core.FloodUpdate{}
	}

	// Deploy the initial sensor population.
	deploy := rng.Split(cfg.Seed, "deploy")
	jitter := rng.Split(cfg.Seed, "jitter")
	for _, pos := range placeSensors(cfg.Deployment, cfg.NumSensors(), bounds, deploy) {
		w.spawnSensor(pos, jitter, false, 0, geom.Point{})
	}

	// Deploy robots: at subarea centers for the fixed algorithm ("the
	// robots first move to the centers of their corresponding subareas"),
	// uniformly at random otherwise.
	robotHooks := robot.Hooks{
		SpawnReplacement: w.spawnReplacement,
		OnTaskDone: func(r *robot.Robot, t robot.Task, _ float64, delay sim.Duration) {
			w.repairs++
			// 30 s buckets cover 0..2 h of repair delay; the tail beyond
			// that reports exactly via overflow.
			reg.Histogram(HistRepairDelay, 30, 240).Add(float64(delay))
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindReplacement,
				Node: t.Failed, Actor: r.ID(), Loc: t.Loc,
			})
		},
		OnReportReceived: func(rep wire.FailureReport, hops int) {
			w.reportsDelivered++
			reg.Observe(metrics.SeriesReportHops, float64(hops))
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindReportDelivered,
				Node: rep.Failed, Loc: rep.Loc,
			})
		},
		OnRequestReceived: func(req wire.RepairRequest, hops int) {
			w.requestsDelivered++
			reg.Observe(metrics.SeriesRequestHops, float64(hops))
		},
		OnPublish: func(r *robot.Robot, up wire.RobotUpdate) {
			w.trace(trace.Event{
				At: sched.Now(), Kind: trace.KindLocationUpdate,
				Node: r.ID(), Actor: r.ID(), Loc: up.Loc,
			})
		},
	}
	rcfg := robot.Config{
		Speed:           cfg.RobotSpeed,
		Range:           cfg.RobotRange,
		UpdateThreshold: cfg.UpdateThreshold,
		ServiceTime:     sim.Duration(cfg.ServiceTime),
	}
	if cfg.NearestFirstQueue {
		rcfg.Queue = robot.NearestFirst
	}
	if cfg.CargoCapacity > 0 {
		rcfg.Cargo = cfg.CargoCapacity
		rcfg.Depot = bounds.Center()
	}
	for i, id := range robotIDs {
		var pos geom.Point
		if cfg.Algorithm == core.Fixed {
			pos = part.Centers[i]
		} else {
			pos = geom.Pt(deploy.Uniform(0, side), deploy.Uniform(0, side))
		}
		r := robot.New(id, pos, rcfg, mode, medium, robotHooks)
		w.Robots = append(w.Robots, r)
		r.Start(initDelay)
		if w.Manager != nil {
			// The manager also learns robot locations from their init
			// unicasts; priming the table mirrors the paper's
			// initialization step 2 and covers the (rare) case of a lost
			// registration packet.
			w.Manager.TrackRobot(id, pos)
		}
	}
	if w.Manager != nil {
		if cfg.ETADispatch {
			w.Manager.SetDispatchPolicy(core.DispatchShortestETA)
		}
		w.Manager.Start(initDelay)
	}
	if cfg.SensingRange > 0 {
		w.startCoverageSampling(bounds)
	}
	if cfg.RobotFailures > 0 {
		n := cfg.RobotFailures
		if n > len(w.Robots) {
			n = len(w.Robots)
		}
		at := sim.Time(cfg.RobotFailureTime)
		sched.After(at.Sub(sched.Now()), func() {
			for i := 0; i < n; i++ {
				w.Robots[i].FailNow()
			}
		})
	}
	return w, nil
}

// startCoverageSampling periodically records the covered field fraction.
func (w *World) startCoverageSampling(bounds geom.Rect) {
	period := w.Cfg.CoverageSamplePeriod
	if period <= 0 {
		period = 1000
	}
	// ~2 probes per sensing radius in each axis.
	probes := int(bounds.Width()/w.Cfg.SensingRange*2) + 1
	est := coverage.NewEstimator(bounds, w.Cfg.SensingRange, probes, probes)
	sample := func() {
		alive := make([]geom.Point, 0, len(w.Sensors))
		for _, s := range w.Sensors {
			if s.Alive() {
				alive = append(alive, s.Pos())
			}
		}
		w.Registry.Observe(metrics.SeriesCoverage, est.Fraction(alive))
	}
	if _, err := w.Sched.NewTicker(sim.Duration(period), sim.Duration(period), sample); err != nil {
		// Unreachable: period is forced positive above.
		panic(err)
	}
}

// trace records an event when tracing is enabled.
func (w *World) trace(e trace.Event) {
	if w.Trace != nil {
		w.Trace.Record(e)
	}
}

// sensorConfig derives the node.Config from the scenario configuration.
func (w *World) sensorConfig() node.Config {
	return node.Config{
		Range:              w.Cfg.SensorRange,
		BeaconPeriod:       sim.Duration(w.Cfg.BeaconPeriod),
		MissedBeacons:      w.Cfg.MissedBeacons,
		SettleDelay:        settleDelay,
		FloodTTL:           core.FloodTTL,
		EfficientBroadcast: w.Cfg.EfficientBroadcast,
	}
}

// spawnSensor creates, registers, arms, and boots one sensor. For
// replacements, target/targetLoc seed the new node's report destination.
func (w *World) spawnSensor(pos geom.Point, jitter *rng.Source, replacement bool, target radio.NodeID, targetLoc geom.Point) *node.Sensor {
	id := w.nextID
	w.nextID++
	s := node.NewSensor(id, pos, w.sensorConfig(), w.policy, w.Medium, node.Hooks{
		OnReportSent: func(rep wire.FailureReport) {
			w.reportsSent++
			w.trace(trace.Event{
				At: w.Sched.Now(), Kind: trace.KindReportSent,
				Node: rep.Failed, Actor: rep.Reporter, Loc: rep.Loc,
			})
		},
	})
	if replacement {
		s.SetTarget(target, targetLoc)
	}
	w.Sensors[id] = s
	w.Injector.Arm(s)
	announce := sim.Duration(jitter.Uniform(0.05, 1.0))
	if replacement {
		announce = 0
	}
	s.Start(announce, sim.Duration(jitter.Jitter(w.Cfg.BeaconPeriod)), replacement)
	return s
}

// spawnReplacement implements robot.Hooks.SpawnReplacement.
func (w *World) spawnReplacement(r *robot.Robot, loc geom.Point) radio.NodeID {
	var target radio.NodeID
	var targetLoc geom.Point
	if w.Manager != nil {
		target, targetLoc = w.Manager.ID(), w.Manager.Pos()
	} else {
		target, targetLoc = r.ID(), r.Pos()
	}
	s := w.spawnSensor(loc, rng.Split(w.Cfg.Seed, "respawn-jitter"), true, target, targetLoc)
	return s.ID()
}

// Run executes the simulation to the configured horizon and returns the
// collected results.
func (w *World) Run() Results {
	// Count natural failures as they are injected: every sensor armed by
	// the injector that dies within the horizon.
	w.Sched.Run(sim.Time(w.Cfg.SimTime))
	w.failuresInjected = w.Injector.Killed()
	return w.results()
}

func (w *World) results() Results {
	reg := w.Registry
	res := Results{
		Config:            w.Cfg,
		FailuresInjected:  w.failuresInjected,
		ReportsSent:       w.reportsSent,
		ReportsDelivered:  w.reportsDelivered,
		RequestsIssued:    w.requestsIssued,
		RequestsDelivered: w.requestsDelivered,
		Repairs:           w.repairs,
		Registry:          reg,
	}
	res.AvgTravelPerFailure = reg.Series(metrics.SeriesTravelPerFailure).Mean()
	res.AvgReportHops = reg.Series(metrics.SeriesReportHops).Mean()
	res.AvgRequestHops = reg.Series(metrics.SeriesRequestHops).Mean()
	res.AvgRepairDelay = reg.Series(metrics.SeriesRepairDelay).Mean()
	if h := reg.Hist(HistRepairDelay); h != nil {
		res.RepairDelayP95 = h.Quantile(0.95)
	}
	if cov := reg.Series(metrics.SeriesCoverage); cov.N() > 0 {
		res.MeanCoverage = cov.Mean()
		res.MinCoverage = cov.Min()
	}
	for _, r := range w.Robots {
		res.TotalTravel += r.Traveled()
	}
	res.LocUpdateTx = reg.Tx(metrics.CatLocUpdate)
	if w.repairs > 0 {
		res.LocUpdateTxPerFailure = float64(res.LocUpdateTx) / float64(w.repairs)
	}
	return res
}

// HistRepairDelay is the registry name of the repair-delay histogram.
const HistRepairDelay = "repair_delay_hist"

// Run is the one-call entry point: build a world from cfg and run it.
func Run(cfg Config) (Results, error) {
	w, err := New(cfg)
	if err != nil {
		return Results{}, err
	}
	return w.Run(), nil
}
