package scenario

import (
	"encoding/json"
	"fmt"
	"math"

	"roborepair/internal/geom"
	"roborepair/internal/rng"
)

// Deployment selects how the initial sensor population is placed. The
// paper assumes uniform random placement; the other kinds are extensions
// for studying how the coordination algorithms cope with non-uniform
// fields (clusters create routing holes and uneven robot load).
type Deployment int

const (
	// DeploymentUniform places sensors i.i.d. uniformly (paper default).
	DeploymentUniform Deployment = iota
	// DeploymentClustered places sensors by a Thomas cluster process:
	// parents uniform, children Gaussian around parents.
	DeploymentClustered
	// DeploymentGrid places sensors on a jittered regular grid — the
	// "planned deployment" best case for coverage.
	DeploymentGrid
)

// String names the deployment.
func (d Deployment) String() string {
	switch d {
	case DeploymentUniform:
		return "uniform"
	case DeploymentClustered:
		return "clustered"
	case DeploymentGrid:
		return "grid"
	default:
		return fmt.Sprintf("Deployment(%d)", int(d))
	}
}

// MarshalJSON encodes the deployment as its name.
func (d Deployment) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON decodes a deployment name.
func (d *Deployment) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "uniform":
		*d = DeploymentUniform
	case "clustered":
		*d = DeploymentClustered
	case "grid":
		*d = DeploymentGrid
	default:
		return fmt.Errorf("scenario: unknown deployment %q", s)
	}
	return nil
}

// clusterStdDev is the Gaussian spread of children around a cluster
// parent, sized so a cluster spans a few sensor hops.
const clusterStdDev = 40.0

// sensorsPerCluster controls how many children each Thomas-process parent
// receives on average.
const sensorsPerCluster = 10

// placeSensors returns n sensor positions inside bounds per the kind.
func placeSensors(kind Deployment, n int, bounds geom.Rect, src *rng.Source) []geom.Point {
	switch kind {
	case DeploymentClustered:
		return placeClustered(n, bounds, src)
	case DeploymentGrid:
		return placeGrid(n, bounds, src)
	default:
		return placeUniform(n, bounds, src)
	}
}

func placeUniform(n int, bounds geom.Rect, src *rng.Source) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(
			src.Uniform(bounds.Min.X, bounds.Max.X),
			src.Uniform(bounds.Min.Y, bounds.Max.Y),
		)
	}
	return out
}

func placeClustered(n int, bounds geom.Rect, src *rng.Source) []geom.Point {
	parents := (n + sensorsPerCluster - 1) / sensorsPerCluster
	if parents < 1 {
		parents = 1
	}
	centers := placeUniform(parents, bounds, src)
	out := make([]geom.Point, n)
	for i := range out {
		c := centers[src.Intn(len(centers))]
		p := geom.Pt(
			src.Normal(c.X, clusterStdDev),
			src.Normal(c.Y, clusterStdDev),
		)
		out[i] = bounds.Clamp(p)
	}
	return out
}

func placeGrid(n int, bounds geom.Rect, src *rng.Source) []geom.Point {
	cols := int(math.Ceil(math.Sqrt(float64(n) * bounds.Width() / bounds.Height())))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	dx := bounds.Width() / float64(cols)
	dy := bounds.Height() / float64(rows)
	jitter := math.Min(dx, dy) / 4
	out := make([]geom.Point, 0, n)
	for r := 0; r < rows && len(out) < n; r++ {
		for c := 0; c < cols && len(out) < n; c++ {
			p := geom.Pt(
				bounds.Min.X+(float64(c)+0.5)*dx+src.Uniform(-jitter, jitter),
				bounds.Min.Y+(float64(r)+0.5)*dy+src.Uniform(-jitter, jitter),
			)
			out = append(out, bounds.Clamp(p))
		}
	}
	return out
}
