// Package scenario assembles complete simulation runs: it builds the
// world (field, sensors, robots, manager), wires the chosen coordination
// algorithm, injects failures, runs the clock, and collects the metrics
// the paper's figures report.
package scenario

import (
	"fmt"
	"math"

	"roborepair/internal/algorithm"
	"roborepair/internal/chaos"
	"roborepair/internal/core"
	"roborepair/internal/energy"
	"roborepair/internal/failure"
	"roborepair/internal/ftdc"
	"roborepair/internal/geom"
	"roborepair/internal/invariant"
	"roborepair/internal/metrics"
	"roborepair/internal/radio"
	"roborepair/internal/rng"
	"roborepair/internal/sim"
	"roborepair/internal/telemetry"
)

// Config parameterizes one simulation run. DefaultConfig returns the
// paper's §4.1 values.
type Config struct {
	// Algorithm selects the coordination algorithm.
	Algorithm core.Algorithm `json:"algorithm"`
	// Robots is the number of maintenance robots (the paper uses 4, 9, 16).
	Robots int `json:"robots"`
	// AreaPerRobotSide is the side of the square of field area allotted
	// per robot; the total field is a square of side
	// AreaPerRobotSide·√Robots (200 m in the paper).
	AreaPerRobotSide float64 `json:"areaPerRobotSideM"`
	// SensorsPerRobot is the sensor count per robot's worth of area (50).
	SensorsPerRobot int `json:"sensorsPerRobot"`
	// SensorRange is the sensor transmission range (63 m).
	SensorRange float64 `json:"sensorRangeM"`
	// RobotRange is the robot/manager transmission range (250 m).
	RobotRange float64 `json:"robotRangeM"`
	// RobotSpeed is the robot travel speed (1 m/s).
	RobotSpeed float64 `json:"robotSpeedMps"`
	// UpdateThreshold is the distance between robot location updates (20 m).
	UpdateThreshold float64 `json:"updateThresholdM"`
	// BeaconPeriod is the sensor heartbeat period (10 s).
	BeaconPeriod float64 `json:"beaconPeriodS"`
	// MissedBeacons declares failure after this many silent periods (3).
	MissedBeacons int `json:"missedBeacons"`
	// MeanLifetime is the sensors' expected lifetime (16000 s).
	MeanLifetime float64 `json:"meanLifetimeS"`
	// SimTime is the simulated horizon (64000 s).
	SimTime float64 `json:"simTimeS"`
	// Seed drives every random stream of the run.
	Seed int64 `json:"seed"`
	// Partition selects the fixed algorithm's subarea shape.
	Partition geom.PartitionKind `json:"partition"`
	// ServiceTime is the node-swap duration at the failure site (0).
	ServiceTime float64 `json:"serviceTimeS"`
	// LossP, when positive, drops each reception with this probability
	// (robustness extension; the paper's medium is lossless).
	LossP float64 `json:"lossP"`
	// LifetimeShape, when not 1, switches the lifetime model to a Weibull
	// with this shape (extension; 0 or 1 keeps the exponential).
	LifetimeShape float64 `json:"lifetimeShape"`
	// EfficientBroadcast enables the §4.3.2 relay-set optimization for the
	// distributed algorithms' location-update floods (ABL-BCAST).
	EfficientBroadcast bool `json:"efficientBroadcast"`
	// NearestFirstQueue replaces the paper's FCFS robot queue with
	// nearest-task-first scheduling (extension ablation).
	NearestFirstQueue bool `json:"nearestFirstQueue"`
	// TraceCapacity enables the causal event trace: >0 keeps that many
	// events (FIFO), <0 keeps everything, 0 (default) records nothing.
	TraceCapacity int `json:"traceCapacity"`
	// Deployment selects how sensors are placed (uniform by default).
	Deployment Deployment `json:"deployment"`
	// SensingRange, when positive, enables sensing-coverage tracking: the
	// covered field fraction is sampled periodically into the
	// "coverage_fraction" series. The paper motivates replacement with
	// coverage but does not fix a sensing radius; 20 m is a typical value
	// at this density.
	SensingRange float64 `json:"sensingRangeM"`
	// CoverageSamplePeriod is the coverage sampling interval in seconds
	// (default 1000 when SensingRange > 0).
	CoverageSamplePeriod float64 `json:"coverageSamplePeriodS"`
	// CargoCapacity limits how many replacement nodes a robot carries
	// before restocking at the field-center depot (extension; 0 means
	// unlimited, the paper's implicit assumption).
	CargoCapacity int `json:"cargoCapacity"`
	// MACContention enables the collision MAC model: frames take airtime
	// (FrameBytes at BitrateMbps), start after a random backoff, and
	// overlapping receptions collide. Off by default (ideal medium — the
	// paper reports 100% delivery at this load anyway).
	MACContention bool `json:"macContention"`
	// BitrateMbps is the radio bitrate for the contention model
	// (11 Mbit/s in the paper; 0 selects 11).
	BitrateMbps float64 `json:"bitrateMbps"`
	// FrameBytes is the nominal frame size for airtime computation
	// (0 selects 128).
	FrameBytes int `json:"frameBytes"`
	// RobotFailures breaks down this many robots (lowest IDs first) at
	// RobotFailureTime — the resilience extension. The paper's robots
	// never fail.
	RobotFailures int `json:"robotFailures"`
	// RobotFailureTime is when the breakdowns happen (seconds).
	RobotFailureTime float64 `json:"robotFailureTimeS"`
	// ETADispatch switches the centralized manager to workload-aware
	// shortest-ETA dispatch (future-work extension; the paper dispatches
	// to the closest robot regardless of its queue).
	ETADispatch bool `json:"etaDispatch"`
	// Faults, when non-nil, schedules a declarative fault plan: robot
	// breakdowns, message-loss bursts, regional radio blackouts, and a
	// manager crash (robustness extension). The plan replays
	// deterministically for a fixed (Config, Faults, Seed).
	Faults *chaos.FaultPlan `json:"faults,omitempty"`
	// Reliability enables and tunes the repair-reliability protocol:
	// acknowledged, retransmitted failure reports; robot heartbeats and
	// liveness tracking; re-dispatch and manager failover (robustness
	// extension; disabled by default, reproducing the paper's
	// fire-and-forget model).
	Reliability ReliabilityConfig `json:"reliability,omitempty"`
	// Telemetry enables the observability layer: latency histograms, a
	// sim-time gauge sampler, and the Prometheus/CSV/Chrome-trace
	// exporters. The zero value disables it entirely and reproduces the
	// untelemetered simulator's behavior and allocations bit-for-bit.
	Telemetry telemetry.Config `json:"telemetry,omitempty"`
	// Recorder enables the FTDC-style flight recorder: a compact,
	// columnar, delta-encoded binary capture of the simulation's vital
	// signs (backlogs, queue depths, counters, invariant and chaos
	// markers), cheap enough to arm on every run. The recording lands in
	// Results.Recording; decode it with internal/ftdc or cmd/ftdcdump.
	// The zero value disables it entirely and reproduces the unrecorded
	// simulator's behavior and allocations bit-for-bit.
	Recorder ftdc.Config `json:"recorder,omitempty"`
	// Invariants enables the runtime conservation-law checker: kernel
	// clock/free-list audits, failure-lifecycle conservation, robot
	// kinematics, radio unit-disk accounting, reliability-protocol sanity.
	// Violations land in Results.Violations; the zero value disables the
	// layer entirely and reproduces the unchecked simulator's behavior and
	// allocations bit-for-bit.
	Invariants invariant.Config `json:"invariants,omitempty"`
	// Kernel selects the event-queue implementation: "" or "ladder" for
	// the default ladder queue, "heap" for the binary heap it replaced.
	// The two produce bit-identical runs (see DESIGN.md §12); the switch
	// exists for differential testing and perf comparison.
	Kernel string `json:"kernel,omitempty"`
	// FacilityObjective selects the facility-location family's placement
	// objective: "kmedian" (default) or "kcenter". Ignored by the other
	// algorithms; omitted from JSON when unset so legacy config hashes
	// are unchanged.
	FacilityObjective string `json:"facilityObjective,omitempty"`
	// FacilityPeriodS is the facility re-solve cadence in seconds
	// (default 500).
	FacilityPeriodS float64 `json:"facilityPeriodS,omitempty"`
	// FacilityLedger caps the facility family's failure-site ledger,
	// FIFO-evicted (default 64).
	FacilityLedger int `json:"facilityLedger,omitempty"`
	// Battery, when non-nil, makes energy a live in-sim resource
	// (robustness extension): each robot integrates its power draw against
	// a finite budget, plans dispatches conservatively, detours to the
	// field-center depot to recharge, hands queued tasks back when low,
	// and dies in place at zero charge. Nil disables the layer entirely
	// and reproduces the energy-unaware simulator's behavior and
	// allocations bit-for-bit.
	Battery *BatteryConfig `json:"battery,omitempty"`
}

// BatteryConfig tunes the energy layer. Power values are watts, energy
// joules; zero power-model fields take the Pioneer 3-DX defaults.
type BatteryConfig struct {
	// CapacityJ is the per-robot battery budget in joules (required > 0).
	CapacityJ float64 `json:"capacityJ"`
	// RechargeW is the depot charging power. 0 means no recharging —
	// starvation mode: robots spend their budget and die in place.
	RechargeW float64 `json:"rechargeW,omitempty"`
	// ReserveJ is the safety margin the admission rule keeps on top of
	// the mission estimate (default 5% of CapacityJ when recharging is
	// available; 0 otherwise).
	ReserveJ float64 `json:"reserveJ,omitempty"`
	// IdlePowerW, MotionBaseW, and MotionPerSpeedW override the platform
	// power model (see internal/energy). All three zero selects the
	// Pioneer 3-DX numbers.
	IdlePowerW      float64 `json:"idlePowerW,omitempty"`
	MotionBaseW     float64 `json:"motionBaseW,omitempty"`
	MotionPerSpeedW float64 `json:"motionPerSpeedW,omitempty"`
}

// withDefaults fills unset knobs with the documented defaults.
func (bc BatteryConfig) withDefaults() BatteryConfig {
	if bc.ReserveJ == 0 && bc.RechargeW > 0 {
		bc.ReserveJ = 0.05 * bc.CapacityJ
	}
	if bc.IdlePowerW == 0 && bc.MotionBaseW == 0 && bc.MotionPerSpeedW == 0 {
		m := energy.Pioneer3DX()
		bc.IdlePowerW = m.IdlePowerW
		bc.MotionBaseW = m.MotionBaseW
		bc.MotionPerSpeedW = m.MotionPerSpeedW
	}
	return bc
}

// model returns the platform power model the config describes.
func (bc BatteryConfig) model() energy.Model {
	return energy.Model{
		IdlePowerW:      bc.IdlePowerW,
		MotionBaseW:     bc.MotionBaseW,
		MotionPerSpeedW: bc.MotionPerSpeedW,
	}
}

// ReliabilityConfig tunes the repair-reliability protocol. All durations
// are seconds; zero fields take the documented defaults when Enabled.
type ReliabilityConfig struct {
	// Enabled switches the whole protocol on.
	Enabled bool `json:"enabled,omitempty"`
	// ReportRetryS is the initial report-retransmission backoff (15).
	ReportRetryS float64 `json:"reportRetryS,omitempty"`
	// ReportRetryMaxS caps the exponential backoff (120).
	ReportRetryMaxS float64 `json:"reportRetryMaxS,omitempty"`
	// ReportRetryLimit caps total transmissions of one report; 0 retries
	// until acked or the repair is observed.
	ReportRetryLimit int `json:"reportRetryLimit,omitempty"`
	// HeartbeatS is the robot/manager heartbeat period (30).
	HeartbeatS float64 `json:"heartbeatS,omitempty"`
	// MissedHeartbeats declares a robot or manager dead after this many
	// silent periods (3).
	MissedHeartbeats int `json:"missedHeartbeats,omitempty"`
	// DispatchAckTimeoutS is the dispatcher's initial re-dispatch timeout
	// for unacknowledged repair requests (60).
	DispatchAckTimeoutS float64 `json:"dispatchAckTimeoutS,omitempty"`
	// WatchGraceS delays neighbor-watch reports so the guardian's report
	// usually wins and watchers stay silent (900).
	WatchGraceS float64 `json:"watchGraceS,omitempty"`
}

// withDefaults fills unset knobs with the documented defaults.
func (rc ReliabilityConfig) withDefaults() ReliabilityConfig {
	if !rc.Enabled {
		return rc
	}
	if rc.ReportRetryS <= 0 {
		rc.ReportRetryS = 15
	}
	if rc.ReportRetryMaxS <= 0 {
		rc.ReportRetryMaxS = 120
	}
	if rc.HeartbeatS <= 0 {
		rc.HeartbeatS = 30
	}
	if rc.MissedHeartbeats <= 0 {
		rc.MissedHeartbeats = 3
	}
	if rc.DispatchAckTimeoutS <= 0 {
		rc.DispatchAckTimeoutS = 60
	}
	if rc.WatchGraceS <= 0 {
		rc.WatchGraceS = 900
	}
	return rc
}

// DefaultConfig returns the paper's experimental parameters (§4.1) with
// the dynamic algorithm and 4 robots.
func DefaultConfig() Config {
	return Config{
		Algorithm:        core.Dynamic,
		Robots:           4,
		AreaPerRobotSide: 200,
		SensorsPerRobot:  50,
		SensorRange:      63,
		RobotRange:       250,
		RobotSpeed:       1,
		UpdateThreshold:  20,
		BeaconPeriod:     10,
		MissedBeacons:    3,
		MeanLifetime:     16000,
		SimTime:          64000,
		Seed:             1,
		Partition:        geom.PartitionSquare,
	}
}

// Validate reports the first invalid field of the configuration.
func (c Config) Validate() error {
	if _, err := algorithm.Lookup(string(c.Algorithm)); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	facility := algorithm.FacilityParams{
		Objective: c.FacilityObjective,
		Period:    c.FacilityPeriodS,
		Ledger:    c.FacilityLedger,
	}
	if err := facility.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	switch {
	case c.Robots <= 0:
		return fmt.Errorf("scenario: robots = %d, need ≥ 1", c.Robots)
	case c.AreaPerRobotSide <= 0:
		return fmt.Errorf("scenario: area side %v not positive", c.AreaPerRobotSide)
	case c.SensorsPerRobot <= 0:
		return fmt.Errorf("scenario: sensors per robot %d not positive", c.SensorsPerRobot)
	case c.SensorRange <= 0 || c.RobotRange <= 0:
		return fmt.Errorf("scenario: ranges must be positive")
	case c.RobotSpeed <= 0:
		return fmt.Errorf("scenario: robot speed %v not positive", c.RobotSpeed)
	case c.UpdateThreshold <= 0:
		return fmt.Errorf("scenario: update threshold %v not positive", c.UpdateThreshold)
	case c.BeaconPeriod <= 0:
		return fmt.Errorf("scenario: beacon period %v not positive", c.BeaconPeriod)
	case c.MissedBeacons <= 0:
		return fmt.Errorf("scenario: missed beacons %d not positive", c.MissedBeacons)
	case c.MeanLifetime <= 0:
		return fmt.Errorf("scenario: mean lifetime %v not positive", c.MeanLifetime)
	case c.SimTime <= 0:
		return fmt.Errorf("scenario: sim time %v not positive", c.SimTime)
	case c.LossP < 0 || c.LossP >= 1:
		return fmt.Errorf("scenario: loss probability %v outside [0,1)", c.LossP)
	case c.Reliability.ReportRetryS < 0 || c.Reliability.HeartbeatS < 0 ||
		c.Reliability.DispatchAckTimeoutS < 0:
		return fmt.Errorf("scenario: reliability durations must be non-negative")
	}
	if _, err := sim.ParseKernel(c.Kernel); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if b := c.Battery; b != nil {
		switch {
		case !(b.CapacityJ > 0) || math.IsInf(b.CapacityJ, 0):
			return fmt.Errorf("scenario: battery capacity %v not a positive finite joule count", b.CapacityJ)
		case b.RechargeW < 0 || math.IsNaN(b.RechargeW):
			return fmt.Errorf("scenario: recharge power %v negative", b.RechargeW)
		case b.ReserveJ < 0 || math.IsNaN(b.ReserveJ):
			return fmt.Errorf("scenario: battery reserve %v negative", b.ReserveJ)
		case b.IdlePowerW < 0 || b.MotionBaseW < 0 || b.MotionPerSpeedW < 0:
			return fmt.Errorf("scenario: battery power-model terms must be non-negative")
		}
	}
	if err := c.Faults.Validate(c.Robots); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := c.Telemetry.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := c.Recorder.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := c.Invariants.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// FieldSide returns the side of the (square) field in meters.
func (c Config) FieldSide() float64 {
	return c.AreaPerRobotSide * math.Sqrt(float64(c.Robots))
}

// NumSensors returns the initial sensor population.
func (c Config) NumSensors() int { return c.SensorsPerRobot * c.Robots }

// Results aggregates one run's outcomes.
type Results struct {
	Config Config `json:"config"`

	// Failure pipeline counts.
	FailuresInjected  int `json:"failuresInjected"`
	ReportsSent       int `json:"reportsSent"`
	ReportsDelivered  int `json:"reportsDelivered"`
	RequestsIssued    int `json:"requestsIssued"`
	RequestsDelivered int `json:"requestsDelivered"`
	Repairs           int `json:"repairs"`

	// Figure 2: motion overhead.
	AvgTravelPerFailure float64 `json:"avgTravelPerFailureM"`
	TotalTravel         float64 `json:"totalTravelM"`

	// Figure 3: messaging hops.
	AvgReportHops  float64 `json:"avgReportHops"`
	AvgRequestHops float64 `json:"avgRequestHops"`

	// Figure 4: location-update transmissions per failure handled.
	LocUpdateTx           uint64  `json:"locUpdateTx"`
	LocUpdateTxPerFailure float64 `json:"locUpdateTxPerFailure"`

	// Additional series.
	AvgRepairDelay float64 `json:"avgRepairDelayS"`
	RepairDelayP95 float64 `json:"repairDelayP95S"`

	// Coverage (populated only when Config.SensingRange > 0).
	MeanCoverage float64 `json:"meanCoverage"`
	MinCoverage  float64 `json:"minCoverage"`

	// Degradation metrics (robustness extension; the counters below are
	// all zero in the paper's fault-free model).
	//
	// UnrepairedFailures counts deployment sites with no live sensor at
	// the horizon: a failure happened there and no replacement covers it.
	// Failures injected shortly before the horizon are included (their
	// repair is still in flight), so it is small but nonzero even in
	// fault-free runs.
	UnrepairedFailures int `json:"unrepairedFailures"`
	StrandedTasks      int `json:"strandedTasks"`
	RequeuedTasks      int `json:"requeuedTasks"`
	ReportRetx         int `json:"reportRetx"`
	ReportsAbandoned   int `json:"reportsAbandoned"`
	Redispatches       int `json:"redispatches"`
	ManagerTakeovers   int `json:"managerTakeovers"`
	// DuplicateRepairs counts robot visits to a site another robot had
	// already repaired (duplicate reports crossing dispatcher boundaries
	// under faults). The trip is spent; no node is replaced.
	DuplicateRepairs int `json:"duplicateRepairs"`
	// MeanFaultRecovery averages the fault_recovery_s series: takeover
	// latency after a manager crash and drain latency of re-queued tasks.
	MeanFaultRecovery float64 `json:"meanFaultRecoveryS"`
	// Hostile-channel counters (all zero unless the fault plan has
	// corruption windows). CorruptedFrames counts receptions whose bytes
	// the injector mutated (duplicates and replays included);
	// DroppedMalformed counts receptions the defensive decoder discarded
	// (checksum/structure failures and misaddressed replays);
	// ReplayRejected counts stale robot updates the strict-sequence guards
	// refused to act on, summed over manager, robots, and sensors.
	CorruptedFrames  uint64 `json:"corruptedFrames,omitempty"`
	DroppedMalformed uint64 `json:"droppedMalformed,omitempty"`
	ReplayRejected   uint64 `json:"replayRejected,omitempty"`

	// Energy-layer outcomes (all zero/empty unless Config.Battery is set).
	// RobotDeaths counts robots whose battery hit zero mid-field;
	// Recharges counts completed depot charging sessions; TaskHandoffs
	// counts tasks a low-battery robot handed back for reassignment;
	// EnergySpentJ sums every robot's debited joules.
	RobotDeaths  int          `json:"robotDeaths,omitempty"`
	Recharges    int          `json:"recharges,omitempty"`
	TaskHandoffs int          `json:"taskHandoffs,omitempty"`
	EnergySpentJ float64      `json:"energySpentJ,omitempty"`
	RobotEnergy  []RobotPower `json:"robotEnergy,omitempty"`

	// Registry holds the full per-category accounting.
	Registry *metrics.Registry `json:"-"`

	// Telemetry holds the run's collector — histograms and the sampled
	// time series — when Config.Telemetry is enabled; nil otherwise.
	Telemetry *telemetry.Collector `json:"-"`

	// TelemetryDropped counts samples the telemetry ring evicted to make
	// room (Sampler.Dropped()): the retained CSV window silently starts
	// that many samples late. Zero when telemetry is off or the ring held
	// everything; surface it instead of truncating quietly.
	TelemetryDropped int `json:"telemetryDropped,omitempty"`

	// Recording holds the run's flight recorder when Config.Recorder is
	// enabled; nil otherwise. Recording.Bytes() renders the capture;
	// Recording.WriteFile banks it.
	Recording *ftdc.Recorder `json:"-"`

	// Violations lists the conservation-law breaches the invariant layer
	// detected, in detection order; empty on clean runs and always nil
	// when Config.Invariants is disabled.
	Violations []invariant.Violation `json:"violations,omitempty"`
}

// RobotPower is one robot's energy ledger at the horizon (battery layer).
type RobotPower struct {
	Robot      int     `json:"robot"`
	SpentJ     float64 `json:"spentJ"`
	RemainingJ float64 `json:"remainingJ"`
	RechargedJ float64 `json:"rechargedJ,omitempty"`
	Recharges  int     `json:"recharges,omitempty"`
	Handoffs   int     `json:"handoffs,omitempty"`
	Died       bool    `json:"died,omitempty"`
	DiedAtS    float64 `json:"diedAtS,omitempty"`
}

// ReportDeliveryRatio returns delivered/sent failure reports (1 when no
// reports were sent).
func (r Results) ReportDeliveryRatio() float64 {
	if r.ReportsSent == 0 {
		return 1
	}
	return float64(r.ReportsDelivered) / float64(r.ReportsSent)
}

// RepairRatio returns repairs per injected failure.
func (r Results) RepairRatio() float64 {
	if r.FailuresInjected == 0 {
		return 1
	}
	return float64(r.Repairs) / float64(r.FailuresInjected)
}

// Summary renders the headline numbers of a run.
func (r Results) Summary() string {
	return fmt.Sprintf(
		"alg=%-11s robots=%-2d failures=%d reports=%d/%d repairs=%d "+
			"travel/fail=%.1fm reportHops=%.2f requestHops=%.2f updateTx/fail=%.1f",
		r.Config.Algorithm, r.Config.Robots,
		r.FailuresInjected, r.ReportsDelivered, r.ReportsSent, r.Repairs,
		r.AvgTravelPerFailure, r.AvgReportHops, r.AvgRequestHops,
		r.LocUpdateTxPerFailure)
}

// lifetimeModel builds the configured mortality model.
func (c Config) lifetimeModel(src *rng.Source) failure.LifetimeModel {
	if c.LifetimeShape > 0 && c.LifetimeShape != 1 {
		// Match the configured mean: mean of Weibull(λ,k) is λ·Γ(1+1/k).
		scale := c.MeanLifetime / math.Gamma(1+1/c.LifetimeShape)
		return &failure.Weibull{Scale: scale, Shape: c.LifetimeShape, Rand: src}
	}
	return &failure.Exponential{Mean: c.MeanLifetime, Rand: src}
}

// lossModel builds the configured medium loss model (nil when lossless).
func (c Config) lossModel(src *rng.Source) radio.LossModel {
	if c.LossP <= 0 {
		return nil
	}
	return &radio.BernoulliLoss{P: c.LossP, Rand: src}
}

// contentionModel builds the optional MAC collision model.
func (c Config) contentionModel(src *rng.Source) radio.ContentionConfig {
	if !c.MACContention {
		return radio.ContentionConfig{}
	}
	bitrate := c.BitrateMbps
	if bitrate <= 0 {
		bitrate = 11 // the paper's nominal 802.11 rate
	}
	bytes := c.FrameBytes
	if bytes <= 0 {
		bytes = 128
	}
	airtime := sim.Duration(float64(bytes*8) / (bitrate * 1e6))
	return radio.ContentionConfig{
		Airtime: airtime,
		// A wide random-assessment-delay window: flood relays fire
		// synchronously on reception, and hidden terminals make carrier
		// sensing insufficient for a 10+-relay burst. ~100 ms of jitter
		// (standard broadcast-storm mitigation) keeps the collision rate
		// at the per-mille level while staying far below the 10 s beacon
		// period.
		MaxBackoff: airtime * 1024,
		Rand:       src,
	}
}

// initDelay is when robots and the manager announce themselves: after all
// sensor location announcements (jittered within the first second).
const initDelay sim.Duration = 2

// settleDelay is when sensors pick their guardians: after the robot and
// manager announcements.
const settleDelay sim.Duration = 5
