package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"roborepair/internal/core"
	"roborepair/internal/telemetry"
)

func telTestConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = core.Dynamic
	cfg.SimTime = 3000
	cfg.MeanLifetime = 4000
	cfg.Seed = seed
	return cfg
}

// resultsJSON fingerprints Results; the Registry and Telemetry fields are
// excluded from JSON, so this captures exactly the reported quantities.
func resultsJSON(t *testing.T, r Results) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTelemetryDoesNotPerturbResults is the layer's core contract: turning
// telemetry on must not change a single reported quantity. The sampler
// rides the same scheduler but its gauges only read state.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		cfg := telTestConfig(11)
		cfg.Algorithm = alg
		off, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Telemetry.Enabled = true
		on, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Results echoes the Config, which legitimately differs in the
		// telemetry field; normalize it so only simulated quantities compare.
		on.Config.Telemetry = telemetry.Config{}
		if a, b := resultsJSON(t, off), resultsJSON(t, on); a != b {
			t.Fatalf("%v: telemetry changed the results:\noff: %s\non:  %s", alg, a, b)
		}
		if on.Telemetry == nil {
			t.Fatalf("%v: enabled run carries no collector", alg)
		}
		if off.Telemetry != nil {
			t.Fatalf("%v: disabled run carries a collector", alg)
		}
	}
}

// TestTelemetryOffAllocations guards the disabled path: with the zero
// config, a full run must stay under a recorded allocation ceiling — a
// per-event telemetry leak multiplies the count by the event volume and
// blows far past it. The ceiling is the measured baseline (~258k for this
// config) plus headroom for runtime noise; AllocsPerRun itself jitters by
// a few allocations, so exact equality is deliberately not asserted.
func TestTelemetryOffAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run allocation measurement")
	}
	cfg := telTestConfig(3)
	run := func() float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	run() // warm up lazy runtime state
	allocs := run()
	const ceiling = 300_000
	if allocs > ceiling {
		t.Fatalf("telemetry-off run allocated %v, ceiling %v — did instrumentation leak into the disabled path?", allocs, ceiling)
	}
}

// TestTelemetryHistogramsPopulated checks the hook feeds end-to-end: a run
// with failures and repairs must land observations in every histogram that
// has a source in the run (retx stays empty without the reliability
// protocol).
func TestTelemetryHistogramsPopulated(t *testing.T) {
	cfg := telTestConfig(5)
	cfg.Telemetry.Enabled = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repairs == 0 {
		t.Fatal("run produced no repairs; pick a harsher config")
	}
	c := res.Telemetry
	for _, name := range []string{TelHistRepairDelay, TelHistReportHops, TelHistTripMeters} {
		h := c.Hist(name)
		if h == nil || h.N() == 0 {
			t.Fatalf("histogram %s empty", name)
		}
	}
	if got, want := int(c.Hist(TelHistRepairDelay).N()), res.Repairs; got != want {
		t.Fatalf("repair delay observations = %d, repairs = %d", got, want)
	}
	if c.Hist(TelHistReportRetx).N() != 0 {
		t.Fatal("retx histogram fed without the reliability protocol")
	}
	sp := c.Sampler()
	if sp.Len() == 0 {
		t.Fatal("sampler recorded nothing")
	}
	if sp.MaxOf(GaugeEventQueueDepth) == 0 {
		t.Fatal("event queue depth never sampled above zero")
	}
	if sp.MaxOf(GaugeEventsPerSimSec) == 0 {
		t.Fatal("event rate never sampled above zero")
	}
}

// TestTelemetryTimeSeriesDeterministicAcrossRepeats locks the export
// contract at the single-run level: the same (config, seed) renders a
// byte-identical CSV run-to-run. The worker-count variant lives in the
// runner package (which depends on this one).
func TestTelemetryTimeSeriesDeterministicAcrossRepeats(t *testing.T) {
	render := func() []byte {
		cfg := telTestConfig(2)
		cfg.Telemetry.Enabled = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.Telemetry.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatalf("time series differ between identical runs:\nrun1:\n%s\nrun2:\n%s", a, b)
	}
}

// TestTelemetryPrometheusExport scrapes a real run's exposition text.
func TestTelemetryPrometheusExport(t *testing.T) {
	cfg := telTestConfig(5)
	cfg.Telemetry.Enabled = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := telemetry.WritePrometheus(&b, res.Registry, res.Telemetry); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"roborepair_repair_delay_seconds_bucket",
		"roborepair_pending_failures",
		"roborepair_tx_total{",
	} {
		if !bytes.Contains(b.Bytes(), []byte(want)) {
			t.Fatalf("exposition lacks %q:\n%s", want, b.String())
		}
	}
}

// TestTelemetryConfigValidation rejects a negative cadence via the
// scenario-level Validate.
func TestTelemetryConfigValidation(t *testing.T) {
	cfg := telTestConfig(1)
	cfg.Telemetry.Enabled = true
	cfg.Telemetry.SamplePeriodS = -5
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative sample period accepted")
	}
}
