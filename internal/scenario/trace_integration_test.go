package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"roborepair/internal/core"
	"roborepair/internal/sim"
	"roborepair/internal/trace"
)

// TestTraceCausality runs a traced simulation and asserts the end-to-end
// causal invariants of the failure-handling pipeline for every failure:
//
//  1. detection happens after failure, within the guardian timeout window
//     plus one beacon period of slack;
//  2. replacement happens after the report;
//  3. the number of replacements matches the run's repair counter.
func TestTraceCausality(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	cfg.TraceCapacity = -1
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if w.Trace == nil {
		t.Fatal("trace not enabled")
	}
	chains := w.Trace.Chains()
	if len(chains) == 0 {
		t.Fatal("no failure chains recorded")
	}
	if got := w.Trace.Count(trace.KindReplacement); got != res.Repairs {
		t.Fatalf("trace replacements %d != repairs %d", got, res.Repairs)
	}
	if got := w.Trace.Count(trace.KindFailure); got != res.FailuresInjected {
		t.Fatalf("trace failures %d != injected %d", got, res.FailuresInjected)
	}

	// Detection window: 3 missed beacons + 1 period of phase slack.
	maxDetect := sim.Duration(cfg.BeaconPeriod) * sim.Duration(cfg.MissedBeacons+1)
	reported, repaired := 0, 0
	for _, c := range chains {
		if c.Reported {
			reported++
			d := c.DetectionDelay()
			if d < 0 {
				t.Fatalf("node %v reported before failing (delay %v)", c.Failed, d)
			}
			if d > maxDetect+1 {
				t.Fatalf("node %v detection took %v, window is %v", c.Failed, d, maxDetect)
			}
		}
		if c.Repaired {
			repaired++
			if !c.Reported {
				t.Fatalf("node %v repaired without a report", c.Failed)
			}
			if c.RepairAt < c.ReportAt {
				t.Fatalf("node %v repaired at %v before report at %v",
					c.Failed, c.RepairAt, c.ReportAt)
			}
		}
	}
	if reported == 0 || repaired == 0 {
		t.Fatalf("pipeline inactive: reported=%d repaired=%d", reported, repaired)
	}
	// The overwhelming majority of failures complete the full chain.
	if float64(repaired)/float64(len(chains)) < 0.85 {
		t.Fatalf("only %d/%d chains completed", repaired, len(chains))
	}
}

// TestTraceLocationUpdatesMatchRobotSeq checks that every robot publish is
// traced.
func TestTraceLocationUpdatesMatchRobotSeq(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	cfg.SimTime = 4000
	cfg.TraceCapacity = -1
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	var totalSeq uint64
	for _, r := range w.Robots {
		totalSeq += r.Seq()
	}
	if got := w.Trace.Count(trace.KindLocationUpdate); uint64(got) != totalSeq {
		t.Fatalf("traced updates %d != sum of robot sequences %d", got, totalSeq)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	w, err := New(quickConfig(core.Dynamic, 4))
	if err != nil {
		t.Fatal(err)
	}
	if w.Trace != nil {
		t.Fatal("trace should be off by default")
	}
}

func TestDeploymentKinds(t *testing.T) {
	for _, d := range []Deployment{DeploymentUniform, DeploymentClustered, DeploymentGrid} {
		t.Run(d.String(), func(t *testing.T) {
			cfg := quickConfig(core.Dynamic, 4)
			cfg.Deployment = d
			cfg.SimTime = 6000
			w, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// All sensors inside the field.
			side := cfg.FieldSide()
			for _, s := range w.Sensors {
				p := s.Pos()
				if p.X < 0 || p.X > side || p.Y < 0 || p.Y > side {
					t.Fatalf("sensor outside field: %v", p)
				}
			}
			res := w.Run()
			if res.Repairs == 0 {
				t.Fatalf("%v deployment repaired nothing", d)
			}
		})
	}
}

func TestDeploymentNames(t *testing.T) {
	if DeploymentUniform.String() != "uniform" ||
		DeploymentClustered.String() != "clustered" ||
		DeploymentGrid.String() != "grid" {
		t.Fatal("deployment names wrong")
	}
	if Deployment(9).String() == "" {
		t.Fatal("unknown deployment should format")
	}
}

func TestClusteredDeploymentIsClumpier(t *testing.T) {
	// Clustered placement should have a smaller mean nearest-neighbor
	// distance than uniform at equal density.
	mnn := func(d Deployment) float64 {
		cfg := quickConfig(core.Dynamic, 4)
		cfg.Deployment = d
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		for _, s := range w.Sensors {
			best := -1.0
			for _, o := range w.Sensors {
				if o == s {
					continue
				}
				if d := s.Pos().Dist(o.Pos()); best < 0 || d < best {
					best = d
				}
			}
			sum += best
			n++
		}
		return sum / float64(n)
	}
	if c, u := mnn(DeploymentClustered), mnn(DeploymentUniform); c >= u {
		t.Fatalf("clustered mnn %v should be below uniform %v", c, u)
	}
}

func TestCoverageSampling(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	cfg.SensingRange = 20
	cfg.CoverageSamplePeriod = 500
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Registry.Series("coverage_fraction")
	if cov.N() < 10 {
		t.Fatalf("coverage samples = %d, want ≥10", cov.N())
	}
	if cov.Mean() <= 0.3 || cov.Mean() > 1 {
		t.Fatalf("mean coverage %v implausible", cov.Mean())
	}
	// Robots keep replacing sensors, so coverage never collapses: the
	// minimum stays near the mean.
	if cov.Min() < cov.Mean()-0.15 {
		t.Fatalf("coverage collapsed: min %v vs mean %v", cov.Min(), cov.Mean())
	}
}

func TestCoverageDisabledByDefault(t *testing.T) {
	res, err := Run(quickConfig(core.Dynamic, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Registry.Series("coverage_fraction").N() != 0 {
		t.Fatal("coverage sampled without SensingRange")
	}
}

func TestCargoCapacityIncreasesTotalTravel(t *testing.T) {
	base := quickConfig(core.Dynamic, 4)
	base.SimTime = 6000
	unlimited, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	limited := base
	limited.CargoCapacity = 1
	lres, err := Run(limited)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Repairs == 0 {
		t.Fatal("cargo-limited run repaired nothing")
	}
	// Every repair forces a depot round trip: total travel must rise.
	if lres.TotalTravel <= unlimited.TotalTravel {
		t.Fatalf("cargo limit did not increase travel: %v vs %v",
			lres.TotalTravel, unlimited.TotalTravel)
	}
	if lres.Registry.Series("restock_leg_m").N() == 0 {
		t.Fatal("no restock legs recorded")
	}
}

func TestMACContentionAtPaperLoad(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	cfg.SimTime = 6000
	cfg.MACContention = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At the paper's traffic load the MAC barely matters: delivery stays
	// high and the repair pipeline works.
	if res.ReportDeliveryRatio() < 0.9 {
		t.Fatalf("delivery %.3f under contention; collisions=%d",
			res.ReportDeliveryRatio(), res.Registry.Tx("collision"))
	}
	if res.Repairs == 0 {
		t.Fatal("no repairs under contention")
	}
	// Collisions occur but affect a tiny fraction of transmissions.
	collisions := float64(res.Registry.Tx("collision"))
	total := float64(res.Registry.TotalTx())
	if collisions/total > 0.05 {
		t.Fatalf("collision fraction %.4f too high for this load", collisions/total)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = core.Fixed
	cfg.Deployment = DeploymentClustered
	cfg.CargoCapacity = 3
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"algorithm":"fixed"`) {
		t.Fatalf("algorithm not stringly encoded: %s", data)
	}
	if !strings.Contains(string(data), `"deployment":"clustered"`) {
		t.Fatalf("deployment not stringly encoded: %s", data)
	}
	if !strings.Contains(string(data), `"partition":"square"`) {
		t.Fatalf("partition not stringly encoded: %s", data)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Fatalf("round trip diverged:\n%+v\n%+v", cfg, back)
	}
}

func TestResultsJSONOmitsRegistry(t *testing.T) {
	res, err := Run(quickConfig(core.Dynamic, 4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Registry") {
		t.Fatal("registry leaked into JSON")
	}
	if !strings.Contains(string(data), `"repairs"`) {
		t.Fatalf("repairs missing: %s", data)
	}
}

// TestRobotFailureResilience kills one of four robots mid-run and compares
// the algorithms' degradation: the dynamic algorithm reassigns the dead
// robot's region to survivors via its Voronoi adoption, while the fixed
// algorithm's orphaned subarea keeps reporting to a dead robot.
func TestRobotFailureResilience(t *testing.T) {
	run := func(alg core.Algorithm) Results {
		cfg := quickConfig(alg, 4)
		cfg.SimTime = 16000
		cfg.RobotFailures = 1
		cfg.RobotFailureTime = 4000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dyn := run(core.Dynamic)
	fx := run(core.Fixed)
	if dyn.RepairRatio() <= fx.RepairRatio() {
		t.Fatalf("dynamic should degrade more gracefully: dynamic %.3f vs fixed %.3f",
			dyn.RepairRatio(), fx.RepairRatio())
	}
	// The fixed algorithm loses roughly its dead robot's quarter of the
	// post-failure workload.
	if fx.RepairRatio() > 0.95 {
		t.Fatalf("fixed repair ratio %.3f suspiciously high with a dead robot", fx.RepairRatio())
	}
	// The dynamic algorithm recovers gradually: sensors in the dead
	// robot's cell switch to survivors only as the survivors' repair
	// trips bring their location floods into the orphaned region, so the
	// reconquest takes time — it stays ahead of fixed but below the
	// no-failure level.
	if dyn.RepairRatio() < 0.75 {
		t.Fatalf("dynamic repair ratio %.3f too low", dyn.RepairRatio())
	}
}

func TestRepairDelayHistogram(t *testing.T) {
	res, err := Run(quickConfig(core.Dynamic, 4))
	if err != nil {
		t.Fatal(err)
	}
	h := res.Registry.Hist(HistRepairDelay)
	if h == nil || h.N() != res.Repairs {
		t.Fatalf("histogram samples %v vs repairs %d", h, res.Repairs)
	}
	if res.RepairDelayP95 <= res.AvgRepairDelay {
		t.Fatalf("p95 %v should exceed the mean %v", res.RepairDelayP95, res.AvgRepairDelay)
	}
}

// TestETADispatchTradesLocalityForBalance documents a negative-result
// ablation that supports the paper's design: replacing the closest-robot
// dispatch with a workload-aware shortest-ETA rule makes things WORSE at
// the paper's load. Shipping a failure to a far idle robot instead of a
// near busy one inflates travel (travel is the service time in a spatial
// system), which raises utilization and feeds back into even more remote
// dispatches. The paper's myopic-but-local rule wins.
func TestETADispatchTradesLocalityForBalance(t *testing.T) {
	run := func(eta bool) Results {
		cfg := quickConfig(core.Centralized, 4)
		cfg.SimTime = 16000
		cfg.MeanLifetime = 8000 // higher load so queues actually form
		cfg.ETADispatch = eta
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	closest := run(false)
	etaRes := run(true)
	if closest.Repairs == 0 || etaRes.Repairs == 0 {
		t.Fatal("no repairs")
	}
	// The locality loss is visible directly in the travel metric.
	if etaRes.AvgTravelPerFailure <= closest.AvgTravelPerFailure {
		t.Fatalf("expected ETA dispatch to lose locality: travel %.1f vs %.1f",
			etaRes.AvgTravelPerFailure, closest.AvgTravelPerFailure)
	}
	// And the paper's rule delivers the better repair delay.
	if closest.AvgRepairDelay >= etaRes.AvgRepairDelay {
		t.Fatalf("closest dispatch should win on delay: %.0f vs %.0f",
			closest.AvgRepairDelay, etaRes.AvgRepairDelay)
	}
	t.Logf("travel: closest=%.1fm eta=%.1fm; delay: %.0fs vs %.0fs",
		closest.AvgTravelPerFailure, etaRes.AvgTravelPerFailure,
		closest.AvgRepairDelay, etaRes.AvgRepairDelay)
}
