package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"roborepair/internal/chaos"
	"roborepair/internal/core"
	"roborepair/internal/invariant"
	"roborepair/internal/sim"
)

// updateGolden regenerates testdata/golden_results.json instead of
// comparing against it.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func invTestConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = core.Dynamic
	cfg.SimTime = 3000
	cfg.MeanLifetime = 4000
	cfg.Seed = seed
	return cfg
}

// TestInvariantsCleanAcrossAlgorithmsAndChaos is the tentpole's positive
// contract: real runs — every algorithm, with and without the reliability
// protocol, under a fault mix of loss burst, regional blackout, and
// manager crash — break none of the conservation laws.
func TestInvariantsCleanAcrossAlgorithmsAndChaos(t *testing.T) {
	plan, err := chaos.Parse("burst@750-1500=0.3;blackout@750-1500=200,200,100;mgr@750")
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		for _, tc := range []struct {
			name     string
			faults   *chaos.FaultPlan
			reliable bool
		}{
			{name: "fault-free"},
			{name: "chaos", faults: plan, reliable: true},
			{name: "chaos-fire-and-forget", faults: plan},
		} {
			cfg := invTestConfig(17)
			cfg.Algorithm = alg
			cfg.Faults = tc.faults
			cfg.Reliability.Enabled = tc.reliable
			cfg.Invariants.Enabled = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Errorf("%v/%s: %d violations, first: %v",
					alg, tc.name, len(res.Violations), res.Violations[0])
			}
		}
	}
}

// TestInvariantSkippedRepairCaught is the seeded-mutation acceptance test:
// silently dropping one completed repair from the books must trip the
// failure-conservation law at finalize.
func TestInvariantSkippedRepairCaught(t *testing.T) {
	cfg := invTestConfig(5)
	cfg.Invariants.Enabled = true
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Sched.Run(sim.Time(cfg.SimTime))
	w.failuresInjected = w.Injector.Killed()
	if w.repairs == 0 {
		t.Fatal("run produced no repairs; pick a harsher config")
	}
	w.repairs-- // the seeded bug: one repair-completion event goes missing
	w.finalizeInvariants()
	res := w.results()
	found := false
	for _, v := range res.Violations {
		if v.Law == invariant.LawFailureConservation {
			found = true
		}
	}
	if !found {
		t.Fatalf("skipped repair not caught; violations: %v", res.Violations)
	}
}

// TestInvariantPhantomRepairCaught: a repair completion at a site that
// never hosted a failure (or a sensor) violates conservation mid-run.
func TestInvariantPhantomRepairCaught(t *testing.T) {
	cfg := invTestConfig(5)
	cfg.Invariants.Enabled = true
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Sched.Run(1000)
	w.inv.RepairCompleted(9999, w.Partition.Bounds.Center().Add(w.Partition.Bounds.Center()))
	w.Sched.Run(sim.Time(cfg.SimTime))
	found := false
	for _, v := range w.inv.Violations() {
		if v.Law == invariant.LawFailureConservation {
			found = true
		}
	}
	if !found {
		t.Fatalf("phantom repair not caught; violations: %v", w.inv.Violations())
	}
}

// TestInvariantsDoNotPerturbResults is the layer's overhead contract:
// turning the checker on must not change a single reported quantity —
// every probe only reads simulation state.
func TestInvariantsDoNotPerturbResults(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		cfg := invTestConfig(11)
		cfg.Algorithm = alg
		off, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Invariants.Enabled = true
		on, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(on.Violations) != 0 {
			t.Fatalf("%v: clean run reported violations: %v", alg, on.Violations)
		}
		// Results echoes the Config, which legitimately differs in the
		// invariants field; normalize it so only simulated quantities compare.
		on.Config.Invariants = invariant.Config{}
		if a, b := resultsJSON(t, off), resultsJSON(t, on); a != b {
			t.Fatalf("%v: invariants changed the results:\noff: %s\non:  %s", alg, a, b)
		}
	}
}

// TestInvariantsOffAllocations guards the disabled path with the same
// ceiling as the telemetry layer: the nil-check hooks must not allocate.
func TestInvariantsOffAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run allocation measurement")
	}
	cfg := invTestConfig(3)
	run := func() float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	run() // warm up lazy runtime state
	allocs := run()
	const ceiling = 300_000
	if allocs > ceiling {
		t.Fatalf("invariants-off run allocated %v, ceiling %v — did checking leak into the disabled path?", allocs, ceiling)
	}
}

// TestInvariantConfigValidation rejects a bad limit via the scenario-level
// Validate.
func TestInvariantConfigValidation(t *testing.T) {
	cfg := invTestConfig(1)
	cfg.Invariants.Limit = -2
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative violation limit accepted")
	}
}

// TestGoldenResultsInvariantsOff pins the simulator's output for one fixed
// configuration to a checked-in golden file: any change to a reported
// quantity in an invariants-off run is a behavioral regression this PR and
// its successors must not introduce silently. Regenerate with
// -run TestGoldenResultsInvariantsOff -update-golden after an intentional
// behavior change.
func TestGoldenResultsInvariantsOff(t *testing.T) {
	cfg := invTestConfig(23)
	cfg.Reliability.Enabled = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_results.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("results diverge from golden %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
