package scenario

import (
	"roborepair/internal/invariant"
)

// startInvariants builds the run's conservation-law checker and installs
// the kernel and medium probes. Called before any sensor or robot is
// created so their hooks can be wired conditionally: with invariants off
// every instrumented path keeps its plain nil check and the run is
// bit-identical to an unchecked one.
func (w *World) startInvariants() {
	w.inv = invariant.NewChecker(w.Cfg.Invariants, w.Sched.Now)
	w.inv.SetRobotSpeed(w.Cfg.RobotSpeed)
	if bc := w.Cfg.Battery; bc != nil {
		// Joules per meter at cruise speed: the motion-floor cross-check of
		// the energy-conservation law (spent must cover every traveled meter).
		b := bc.withDefaults()
		w.inv.SetMotionEnergy(b.model().MotionPowerW(w.Cfg.RobotSpeed) / w.Cfg.RobotSpeed)
	}
	w.Sched.SetAudit(w.inv.KernelAudit())
	w.Medium.SetAuditor(w.inv)
}

// finalizeInvariants runs the end-of-run conservation cross-checks
// against the same counters results() reports.
func (w *World) finalizeInvariants() {
	if w.inv == nil {
		return
	}
	if w.Cfg.Battery != nil {
		for _, r := range w.Robots {
			r.SettleEnergy()
			b := r.Battery()
			w.inv.RobotEnergy(r.ID(), b.CapacityJ, b.SpentJ, b.RemainingJ, b.RechargedJ, r.Traveled())
		}
	}
	w.inv.Finalize(invariant.Totals{
		FailuresInjected:   w.failuresInjected,
		Repairs:            w.repairs,
		DuplicateRepairs:   w.dupRepairs,
		UnrepairedFailures: w.unrepairedSites(),
	})
}
