package scenario

import (
	"math"
	"testing"

	"roborepair/internal/core"
	"roborepair/internal/geom"
)

// quickConfig is a short-horizon configuration for integration tests.
func quickConfig(alg core.Algorithm, robots int) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	cfg.Robots = robots
	cfg.SimTime = 8000
	return cfg
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.AreaPerRobotSide != 200 {
		t.Errorf("area per robot side = %v, want 200", cfg.AreaPerRobotSide)
	}
	if cfg.SensorsPerRobot != 50 {
		t.Errorf("sensors per robot = %v, want 50", cfg.SensorsPerRobot)
	}
	if cfg.SensorRange != 63 {
		t.Errorf("sensor range = %v, want 63", cfg.SensorRange)
	}
	if cfg.RobotRange != 250 {
		t.Errorf("robot range = %v, want 250", cfg.RobotRange)
	}
	if cfg.RobotSpeed != 1 {
		t.Errorf("robot speed = %v, want 1", cfg.RobotSpeed)
	}
	if cfg.UpdateThreshold != 20 {
		t.Errorf("update threshold = %v, want 20", cfg.UpdateThreshold)
	}
	if cfg.BeaconPeriod != 10 {
		t.Errorf("beacon period = %v, want 10", cfg.BeaconPeriod)
	}
	if cfg.MissedBeacons != 3 {
		t.Errorf("missed beacons = %v, want 3", cfg.MissedBeacons)
	}
	if cfg.MeanLifetime != 16000 {
		t.Errorf("mean lifetime = %v, want 16000", cfg.MeanLifetime)
	}
	if cfg.SimTime != 64000 {
		t.Errorf("sim time = %v, want 64000", cfg.SimTime)
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad algorithm", func(c *Config) { c.Algorithm = "bogus" }},
		{"zero robots", func(c *Config) { c.Robots = 0 }},
		{"negative area", func(c *Config) { c.AreaPerRobotSide = -1 }},
		{"zero sensors", func(c *Config) { c.SensorsPerRobot = 0 }},
		{"zero sensor range", func(c *Config) { c.SensorRange = 0 }},
		{"zero robot range", func(c *Config) { c.RobotRange = 0 }},
		{"zero speed", func(c *Config) { c.RobotSpeed = 0 }},
		{"zero threshold", func(c *Config) { c.UpdateThreshold = 0 }},
		{"zero beacon period", func(c *Config) { c.BeaconPeriod = 0 }},
		{"zero missed beacons", func(c *Config) { c.MissedBeacons = 0 }},
		{"zero lifetime", func(c *Config) { c.MeanLifetime = 0 }},
		{"zero sim time", func(c *Config) { c.SimTime = 0 }},
		{"loss ≥ 1", func(c *Config) { c.LossP = 1 }},
		{"negative loss", func(c *Config) { c.LossP = -0.1 }},
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := DefaultConfig()
			m.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("mutation accepted")
			}
			if _, err := New(cfg); err == nil {
				t.Fatal("New accepted invalid config")
			}
		})
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Robots = 16
	if got := cfg.FieldSide(); math.Abs(got-800) > 1e-9 {
		t.Fatalf("FieldSide = %v, want 800", got)
	}
	if got := cfg.NumSensors(); got != 800 {
		t.Fatalf("NumSensors = %d, want 800", got)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FailuresInjected != b.FailuresInjected ||
		a.Repairs != b.Repairs ||
		a.ReportsSent != b.ReportsSent ||
		a.LocUpdateTx != b.LocUpdateTx ||
		a.TotalTravel != b.TotalTravel {
		t.Fatalf("same seed diverged:\n%s\n%s", a.Summary(), b.Summary())
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	a, _ := Run(cfg)
	cfg.Seed = 2
	b, _ := Run(cfg)
	if a.TotalTravel == b.TotalTravel && a.LocUpdateTx == b.LocUpdateTx {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestAllAlgorithmsRepairFailures(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(quickConfig(alg, 4))
			if err != nil {
				t.Fatal(err)
			}
			if res.FailuresInjected == 0 {
				t.Fatal("no failures injected")
			}
			if res.RepairRatio() < 0.9 {
				t.Fatalf("repair ratio %.3f < 0.9: %s", res.RepairRatio(), res.Summary())
			}
			if res.ReportDeliveryRatio() < 0.95 {
				t.Fatalf("report delivery %.3f < 0.95", res.ReportDeliveryRatio())
			}
			if res.AvgTravelPerFailure <= 0 {
				t.Fatal("no travel recorded")
			}
		})
	}
}

func TestCentralizedUsesManagerPipeline(t *testing.T) {
	res, err := Run(quickConfig(core.Centralized, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestsIssued == 0 || res.RequestsDelivered == 0 {
		t.Fatalf("manager pipeline unused: issued=%d delivered=%d",
			res.RequestsIssued, res.RequestsDelivered)
	}
	if res.AvgRequestHops <= 0 {
		t.Fatal("no request hops observed")
	}
	// Reports cross more hops than requests (63 m vs 250 m ranges, §4.3.2).
	if res.AvgReportHops <= res.AvgRequestHops {
		t.Fatalf("report hops %.2f should exceed request hops %.2f",
			res.AvgReportHops, res.AvgRequestHops)
	}
}

func TestDistributedAlgorithmsSkipManager(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Fixed, core.Dynamic} {
		res, err := Run(quickConfig(alg, 4))
		if err != nil {
			t.Fatal(err)
		}
		if res.RequestsIssued != 0 {
			t.Fatalf("%v issued %d manager requests", alg, res.RequestsIssued)
		}
	}
}

func TestDistributedReportHopsAreFlat(t *testing.T) {
	// §4.3.2: "the average number of hops traveled by the failure reports
	// in the dynamic or the fixed algorithm is stable at about 2".
	res, err := Run(quickConfig(core.Dynamic, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgReportHops < 1.2 || res.AvgReportHops > 3.2 {
		t.Fatalf("dynamic report hops = %.2f, want ≈2", res.AvgReportHops)
	}
}

func TestFixedHexPartitionRuns(t *testing.T) {
	cfg := quickConfig(core.Fixed, 4)
	cfg.Partition = geom.PartitionHex
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairRatio() < 0.85 {
		t.Fatalf("hex partition repair ratio %.3f", res.RepairRatio())
	}
}

func TestSingleRobotRuns(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		cfg := quickConfig(alg, 1)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Repairs == 0 {
			t.Fatalf("%v with one robot repaired nothing", alg)
		}
	}
}

func TestLossyMediumDegradesGracefully(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	cfg.LossP = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 20% loss some repairs still happen; the system must not wedge.
	if res.Repairs == 0 {
		t.Fatal("lossy run repaired nothing")
	}
	// Heavy loss produces false failure detections (a guardian that misses
	// three beacons by chance declares its guardee dead), so reports exceed
	// true failures — the documented cost of beacon-based detection on a
	// lossy channel.
	if res.ReportsSent <= res.FailuresInjected {
		t.Fatalf("expected spurious detections under 20%% loss: sent=%d injected=%d",
			res.ReportsSent, res.FailuresInjected)
	}
}

func TestWeibullLifetimeRuns(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	cfg.LifetimeShape = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wear-out (shape 2) with the same mean concentrates failures near the
	// mean lifetime: with an 8000 s horizon and 16000 s mean, far fewer
	// early failures than the exponential.
	exp, _ := Run(quickConfig(core.Dynamic, 4))
	if res.FailuresInjected >= exp.FailuresInjected {
		t.Fatalf("weibull(shape=2) early failures %d ≥ exponential %d",
			res.FailuresInjected, exp.FailuresInjected)
	}
}

func TestReplacementsKeepPopulationServiced(t *testing.T) {
	// Over a longer horizon, replacements fail again and get replaced
	// again: repairs must exceed the initial population's failure count
	// expectation under pure attrition (no-replacement upper bound is the
	// initial population size).
	cfg := quickConfig(core.Dynamic, 4)
	cfg.SimTime = 24000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repairs <= res.Config.NumSensors()*3/10 {
		t.Fatalf("suspiciously few repairs %d over 1.5 lifetimes", res.Repairs)
	}
	// The failure pipeline remains roughly balanced.
	if res.ReportsDelivered < res.Repairs {
		t.Fatalf("repairs %d exceed delivered reports %d", res.Repairs, res.ReportsDelivered)
	}
}

func TestWorldExposesStructure(t *testing.T) {
	w, err := New(quickConfig(core.Centralized, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Robots) != 4 {
		t.Fatalf("robots = %d", len(w.Robots))
	}
	if w.Manager == nil {
		t.Fatal("centralized world missing manager")
	}
	if !w.Manager.Pos().Eq(geom.Pt(200, 200)) {
		t.Fatalf("manager at %v, want field center (200,200)", w.Manager.Pos())
	}
	if len(w.Sensors) != 200 {
		t.Fatalf("sensors = %d", len(w.Sensors))
	}
	if w.Partition.K() != 4 {
		t.Fatalf("partition K = %d", w.Partition.K())
	}
	wd, err := New(quickConfig(core.Dynamic, 4))
	if err != nil {
		t.Fatal(err)
	}
	if wd.Manager != nil {
		t.Fatal("dynamic world must have no manager")
	}
}

func TestFixedRobotsStartAtSubareaCenters(t *testing.T) {
	w, err := New(quickConfig(core.Fixed, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range w.Robots {
		if !r.Pos().Eq(w.Partition.Centers[i]) {
			t.Fatalf("robot %d at %v, want center %v", i, r.Pos(), w.Partition.Centers[i])
		}
	}
}

func TestNonSquareRobotCounts(t *testing.T) {
	// The paper uses perfect squares so the partition is exact; the grid
	// fallback must keep every algorithm working for other counts too.
	for _, robots := range []int{2, 6} {
		for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
			cfg := quickConfig(alg, robots)
			cfg.SimTime = 4000
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("robots=%d %v: %v", robots, alg, err)
			}
			if res.Repairs == 0 {
				t.Fatalf("robots=%d %v repaired nothing", robots, alg)
			}
		}
	}
}

func TestHighDensityRuns(t *testing.T) {
	cfg := quickConfig(core.Dynamic, 4)
	cfg.SensorsPerRobot = 100 // double the paper's density
	cfg.SimTime = 3000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReportDeliveryRatio() < 0.95 {
		t.Fatalf("high density broke delivery: %.3f", res.ReportDeliveryRatio())
	}
}
