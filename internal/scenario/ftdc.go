package scenario

import (
	"fmt"
	"math"

	"roborepair/internal/ftdc"
	"roborepair/internal/metrics"
	"roborepair/internal/sim"
)

// Flight recorder columns, in sample order. Column 0 is the sample time.
// Every column records an integral value (raw counters rather than
// derived rates) so the recorder's integer delta mode applies and the
// capture stays an order of magnitude below the equivalent CSV.
const (
	// FTDCColTime is the sample's simulated time in seconds.
	FTDCColTime = "t_s"
	// FTDCColEventsFired is the kernel's cumulative fired-event count —
	// the raw series behind the telemetry events_per_simsec rate.
	FTDCColEventsFired = "events_fired"
	// FTDCColViolations is the cumulative invariant-violation count (0
	// when Config.Invariants is off).
	FTDCColViolations = "violations"
	// FTDCColChaosActive is a bitmask of fault windows containing the
	// sample time: 1 loss burst, 2 blackout, 4 corruption, 8 manager
	// crashed, 16 battery drain (battery layer on).
	FTDCColChaosActive = "chaos_active"
	// FTDCColFailuresInjected, FTDCColRepairs, FTDCColReportsSent,
	// FTDCColReportsDelivered are the failure pipeline's cumulative
	// counters, as in Results.
	FTDCColFailuresInjected = "failures_injected"
	FTDCColRepairs          = "repairs"
	FTDCColReportsSent      = "reports_sent"
	FTDCColReportsDelivered = "reports_delivered"
	// FTDCColTxLocUpdate and FTDCColTxFailureReport are the cumulative
	// radio transmission counts of the two chattiest categories.
	FTDCColTxLocUpdate     = "tx_location_update"
	FTDCColTxFailureReport = "tx_failure_report"
)

// Chaos bitmask bits for FTDCColChaosActive.
const (
	chaosBitLossBurst = 1 << iota
	chaosBitBlackout
	chaosBitCorruption
	chaosBitManagerCrashed
	chaosBitDrain
)

// ftdcColumns is the recorder schema: the time column, the telemetry
// gauges (same readings the sampler takes, minus the derived rate), then
// cumulative counters and the invariant/chaos markers. When the battery
// layer is on, startRecorder appends GaugeFleetAlive and GaugeBatteryMinJ
// after these, so battery-off captures keep the legacy layout.
var ftdcColumns = []string{
	FTDCColTime,
	GaugePendingFailures,
	GaugeRobotQueueDepth,
	GaugeInflightReports,
	GaugeEventQueueDepth,
	FTDCColEventsFired,
	FTDCColFailuresInjected,
	FTDCColRepairs,
	FTDCColReportsSent,
	FTDCColReportsDelivered,
	FTDCColTxLocUpdate,
	FTDCColTxFailureReport,
	FTDCColViolations,
	FTDCColChaosActive,
}

// Shared gauge bodies: the telemetry sampler registers them as gauges and
// the flight recorder samples them directly, so both layers report the
// same deterministic readings.

// gaugePendingFailures is the repair backlog: sensors killed so far minus
// replacements deployed.
func (w *World) gaugePendingFailures() float64 {
	pending := w.Injector.Killed() - w.repairs
	if pending < 0 {
		pending = 0
	}
	return float64(pending)
}

// gaugeRobotQueueDepth is the total work queued on robots, counting an
// in-service task as one.
func (w *World) gaugeRobotQueueDepth() float64 {
	depth := 0
	for _, r := range w.Robots {
		depth += r.QueueLen()
		if r.Busy() {
			depth++
		}
	}
	return float64(depth)
}

// gaugeInflightReports is the number of failure reports awaiting an ack
// across all sensors. Map iteration order varies, but a sum of ints is
// commutative, so the reading is deterministic.
func (w *World) gaugeInflightReports() float64 {
	inflight := 0
	for _, s := range w.Sensors {
		inflight += s.PendingReports()
	}
	return float64(inflight)
}

// gaugeEventQueueDepth is the simulation kernel's pending event count.
func (w *World) gaugeEventQueueDepth() float64 {
	return float64(w.Sched.Pending())
}

// gaugeFleetAlive is the number of operational robots.
func (w *World) gaugeFleetAlive() float64 {
	alive := 0
	for _, r := range w.Robots {
		if r.Alive() {
			alive++
		}
	}
	return float64(alive)
}

// gaugeBatteryMinJ is the lowest pack level across live robots, floored to
// whole joules so the recorder's integer delta mode applies (dead and
// chaos-failed robots are excluded: their packs are no longer news). The
// full fleet dead reads 0.
func (w *World) gaugeBatteryMinJ() float64 {
	min := math.Inf(1)
	for _, r := range w.Robots {
		if !r.Alive() {
			continue
		}
		if j := r.BatteryRemainingJ(); j < min {
			min = j
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return math.Floor(min)
}

// chaosActiveBits reports which fault windows contain time t.
func (w *World) chaosActiveBits(t float64) float64 {
	bits := 0
	if plan := w.Cfg.Faults; plan != nil {
		for _, b := range plan.LossBursts {
			if t >= b.From && t < b.To {
				bits |= chaosBitLossBurst
				break
			}
		}
		for _, b := range plan.Blackouts {
			if t >= b.From && t < b.To {
				bits |= chaosBitBlackout
				break
			}
		}
		for _, c := range plan.Corruptions {
			if t >= c.From && t < c.To {
				bits |= chaosBitCorruption
				break
			}
		}
		if w.Cfg.Battery != nil {
			// Drain windows are inert without the battery layer, so they only
			// flag when they actually bite.
			for _, d := range plan.Drains {
				if t >= d.From && t < d.To {
					bits |= chaosBitDrain
					break
				}
			}
		}
	}
	if w.managerCrashAt >= 0 {
		bits |= chaosBitManagerCrashed
	}
	return float64(bits)
}

// startRecorder builds the flight recorder and arms its sampling ticker
// (t=0, then every period). Called from New only when
// Config.Recorder.Enabled — with recording off, World.Recorder stays nil
// and the run is bit-identical to an unrecorded one.
func (w *World) startRecorder() error {
	cfg := w.Cfg.Recorder.WithDefaults()
	cols := ftdcColumns
	battery := w.Cfg.Battery != nil
	if battery {
		cols = append(append(make([]string, 0, len(ftdcColumns)+2), ftdcColumns...),
			GaugeFleetAlive, GaugeBatteryMinJ)
	}
	rec, err := ftdc.NewRecorder(ftdc.Schema{
		Cols:    cols,
		PeriodS: cfg.SamplePeriodS,
		Seed:    w.Cfg.Seed,
	}, cfg)
	if err != nil {
		return fmt.Errorf("scenario: recorder: %w", err)
	}
	w.Recorder = rec
	row := make([]float64, len(cols))
	sample := func() {
		t := float64(w.Sched.Now())
		violations := 0
		if w.inv != nil {
			violations = len(w.inv.Violations())
		}
		row[0] = t
		row[1] = w.gaugePendingFailures()
		row[2] = w.gaugeRobotQueueDepth()
		row[3] = w.gaugeInflightReports()
		row[4] = w.gaugeEventQueueDepth()
		row[5] = float64(w.Sched.Fired())
		row[6] = float64(w.Injector.Killed())
		row[7] = float64(w.repairs)
		row[8] = float64(w.reportsSent)
		row[9] = float64(w.reportsDelivered)
		row[10] = float64(w.Registry.Tx(metrics.CatLocUpdate))
		row[11] = float64(w.Registry.Tx(metrics.CatFailureReport))
		row[12] = float64(violations)
		row[13] = w.chaosActiveBits(t)
		if battery {
			row[14] = w.gaugeFleetAlive()
			row[15] = w.gaugeBatteryMinJ()
		}
		rec.Append(row)
	}
	if _, err := w.Sched.NewTicker(0, sim.Duration(cfg.SamplePeriodS), sample); err != nil {
		return fmt.Errorf("scenario: recorder: %w", err)
	}
	return nil
}
