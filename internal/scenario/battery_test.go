package scenario

import (
	"math"
	"reflect"
	"testing"

	"roborepair/internal/chaos"
	"roborepair/internal/checkpoint"
	"roborepair/internal/core"
	"roborepair/internal/invariant"
	"roborepair/internal/sim"
	"roborepair/internal/trace"
)

// batteryTestConfig is the energy-layer test base: a short busy horizon
// with tracing and the conservation-law checker on, so every run doubles
// as an energy-accounting audit.
func batteryTestConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.SimTime = 3000
	cfg.MeanLifetime = 4000
	cfg.Seed = seed
	cfg.TraceCapacity = -1
	cfg.Invariants.Enabled = true
	return cfg
}

// assertLedgersClose checks the double-entry identity spent + remaining ==
// capacity + recharged for every robot in the results.
func assertLedgersClose(t *testing.T, res Results) {
	t.Helper()
	cap := res.Config.Battery.CapacityJ
	for _, rp := range res.RobotEnergy {
		diff := rp.SpentJ + rp.RemainingJ - (cap + rp.RechargedJ)
		if math.Abs(diff) > 1e-6*cap+1e-6 {
			t.Errorf("robot %d ledger open by %g J (spent=%g remaining=%g recharged=%g cap=%g)",
				rp.Robot, diff, rp.SpentJ, rp.RemainingJ, rp.RechargedJ, cap)
		}
	}
}

// TestBatteryStarvationFleetDies: with no charger, every robot spends its
// budget and dies in place; the books still balance and no conservation
// law breaks while the survivors degrade gracefully.
func TestBatteryStarvationFleetDies(t *testing.T) {
	cfg := batteryTestConfig(7)
	cfg.Battery = &BatteryConfig{CapacityJ: 20000} // ~1540 s of idle draw
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if len(res.Violations) != 0 {
		t.Fatalf("violations under starvation: %v", res.Violations[0])
	}
	if res.RobotDeaths != cfg.Robots {
		t.Errorf("RobotDeaths = %d, want the whole fleet (%d)", res.RobotDeaths, cfg.Robots)
	}
	if res.Recharges != 0 {
		t.Errorf("Recharges = %d without a charger", res.Recharges)
	}
	if res.EnergySpentJ <= 0 {
		t.Error("EnergySpentJ not positive")
	}
	assertLedgersClose(t, res)
	for _, rp := range res.RobotEnergy {
		if !rp.Died {
			t.Errorf("robot %d survived a %g J budget over %g s", rp.Robot, cfg.Battery.CapacityJ, cfg.SimTime)
			continue
		}
		if rp.RemainingJ != 0 {
			t.Errorf("dead robot %d has %g J remaining", rp.Robot, rp.RemainingJ)
		}
		if rp.DiedAtS <= 0 || rp.DiedAtS > cfg.SimTime {
			t.Errorf("robot %d died at %g s, outside (0, %g]", rp.Robot, rp.DiedAtS, cfg.SimTime)
		}
	}
	if n := w.Trace.Count(trace.KindBatteryDeath); n != res.RobotDeaths {
		t.Errorf("trace has %d battery-death events, results report %d deaths", n, res.RobotDeaths)
	}
}

// TestBatteryRechargeSustainsFleet: with a depot charger and a sane pack,
// robots detour to top up instead of dying; the fleet survives the horizon
// and keeps repairing.
func TestBatteryRechargeSustainsFleet(t *testing.T) {
	cfg := batteryTestConfig(7)
	cfg.Battery = &BatteryConfig{CapacityJ: 30000, RechargeW: 250}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if len(res.Violations) != 0 {
		t.Fatalf("violations under recharge: %v", res.Violations[0])
	}
	if res.RobotDeaths != 0 {
		t.Errorf("RobotDeaths = %d with a charger available", res.RobotDeaths)
	}
	if res.Recharges == 0 {
		t.Error("no recharges over a horizon twice the pack's idle life")
	}
	if res.Repairs == 0 {
		t.Error("no repairs; the fleet should keep working between top-ups")
	}
	if n := w.Trace.Count(trace.KindRecharge); n != res.Recharges {
		t.Errorf("trace has %d recharge events, results report %d", n, res.Recharges)
	}
	assertLedgersClose(t, res)
}

// TestBatteryHandoffRequeues: a pack too small for round trips forces
// admission declines; declined tasks are handed back, reassigned, and the
// books stay closed.
func TestBatteryHandoffRequeues(t *testing.T) {
	cfg := batteryTestConfig(3)
	cfg.MeanLifetime = 2000 // busier field: more tasks to decline
	cfg.Battery = &BatteryConfig{CapacityJ: 8000, RechargeW: 500}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if len(res.Violations) != 0 {
		t.Fatalf("violations under handoff pressure: %v", res.Violations[0])
	}
	if res.TaskHandoffs == 0 {
		t.Error("no task handoffs despite an undersized pack")
	}
	if n := w.Trace.Count(trace.KindTaskHandoff); n != res.TaskHandoffs {
		t.Errorf("trace has %d handoff events, results report %d", n, res.TaskHandoffs)
	}
	if res.Repairs == 0 {
		t.Error("no repairs; handed-off work should still get done")
	}
	assertLedgersClose(t, res)
}

// TestBatteryDrainKillsTargetRobot: an adversarial drain window aimed at
// one robot kills exactly it, inside the window, without breaking any law.
func TestBatteryDrainKillsTargetRobot(t *testing.T) {
	plan, err := chaos.Parse("drain@500-1500=3,0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := batteryTestConfig(7)
	cfg.Faults = plan
	// Sized so undrained robots outlast the horizon (a saturated robot
	// draws ≈31.6 W, ≈95 kJ over 3000 s) while 3× capacity over 1000 s
	// kills the target long before the window closes.
	cfg.Battery = &BatteryConfig{CapacityJ: 120000}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations under drain: %v", res.Violations[0])
	}
	if res.RobotDeaths != 1 {
		t.Fatalf("RobotDeaths = %d, want exactly the drained robot", res.RobotDeaths)
	}
	rp := res.RobotEnergy[0]
	if !rp.Died {
		t.Fatal("robot 0 survived a 3×-capacity drain window")
	}
	if rp.DiedAtS < 500 || rp.DiedAtS > 1500 {
		t.Errorf("drained robot died at %g s, outside the 500–1500 window", rp.DiedAtS)
	}
	assertLedgersClose(t, res)
}

// TestBatteryOffDrainPlanInert: without the battery layer a drain plan
// must schedule nothing at all — the run is bit-identical to a planless
// one, trace included.
func TestBatteryOffDrainPlanInert(t *testing.T) {
	plan, err := chaos.Parse("drain@500-1500=3")
	if err != nil {
		t.Fatal(err)
	}
	base := batteryTestConfig(7)
	withPlan := base
	withPlan.Faults = plan
	wA, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	resA := wA.Run()
	wB, err := New(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	resB := wB.Run()
	if resA.Repairs != resB.Repairs || resA.FailuresInjected != resB.FailuresInjected ||
		resA.TotalTravel != resB.TotalTravel || resA.EnergySpentJ != resB.EnergySpentJ {
		t.Errorf("drain plan perturbed a battery-off run: %+v vs %+v", resA.Summary(), resB.Summary())
	}
	if !reflect.DeepEqual(wA.Trace.Events(), wB.Trace.Events()) {
		t.Error("drain plan left trace marks in a battery-off run")
	}
}

// TestEnergyConservationMutationCaught is the seeded-mutation acceptance
// test: silently un-debiting part of one robot's ledger must trip the
// energy-conservation law at finalize.
func TestEnergyConservationMutationCaught(t *testing.T) {
	cfg := batteryTestConfig(7)
	cfg.Battery = &BatteryConfig{CapacityJ: 30000, RechargeW: 250}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Sched.Run(sim.Time(cfg.SimTime))
	w.failuresInjected = w.Injector.Killed()
	w.Robots[0].SettleEnergy()
	w.Robots[0].Battery().SpentJ -= 500 // the seeded bug: a leg's debit goes missing
	w.finalizeInvariants()
	res := w.results()
	found := false
	for _, v := range res.Violations {
		if v.Law == invariant.LawEnergyConservation {
			found = true
		}
	}
	if !found {
		t.Fatalf("skipped energy debit not caught; violations: %v", res.Violations)
	}
}

// TestBatteryCheckpointRestore: the battery's dynamic state rides
// snapshots — a run killed mid-drain-window and restored finishes
// bit-identical to an uninterrupted one.
func TestBatteryCheckpointRestore(t *testing.T) {
	plan, err := chaos.Parse("drain@400-1200=0.5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := batteryTestConfig(11)
	cfg.Algorithm = core.Dynamic
	cfg.SimTime = 2500
	cfg.Faults = plan
	cfg.Reliability.Enabled = true
	cfg.Battery = &BatteryConfig{CapacityJ: 30000, RechargeW: 250}

	wA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resA := resultsJSON(t, wA.Run())
	traceA := wA.Trace.Events()

	wB, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	if _, err := wB.RunCheckpointed(CheckpointOptions{
		Every: 600,
		OnSnapshot: func(s *checkpoint.Snapshot) error {
			if s.T == 600 { // inside the drain window: extraDrainW is live state
				b, err := checkpoint.Encode(s)
				if err != nil {
					return err
				}
				blob = b
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured at t=600")
	}
	snap, err := checkpoint.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	wC, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultsJSON(t, wC.Run()); got != resA {
		t.Errorf("restored battery run diverged:\n got %s\nwant %s", got, resA)
	}
	if !reflect.DeepEqual(wC.Trace.Events(), traceA) {
		t.Error("restored battery run trace diverged")
	}
}
