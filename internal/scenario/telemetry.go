package scenario

import (
	"roborepair/internal/radio"
	"roborepair/internal/telemetry"
)

// Telemetry histogram names. Chosen to not collide with the registry's
// Prometheus-exported series and histogram names.
const (
	// TelHistRepairDelay buckets failure→replacement latency (sim seconds).
	TelHistRepairDelay = "repair_delay_seconds"
	// TelHistReportHops buckets the hop count of delivered failure reports.
	TelHistReportHops = "report_delivery_hops"
	// TelHistReportRetx buckets the retransmission attempt index of each
	// resent failure report (reliability extension).
	TelHistReportRetx = "report_retx_attempt"
	// TelHistTripMeters buckets the per-repair robot trip distance.
	TelHistTripMeters = "robot_trip_meters"
	// TelHistDecodeFail buckets the sim time (seconds) of each frame the
	// hostile channel's defensive decoder dropped, so corruption windows
	// show up as mass in the matching buckets. Registered only when the
	// fault plan has corruption windows.
	TelHistDecodeFail = "decode_failures"
)

// Telemetry gauge (time-series column) names, in sampling order.
const (
	// GaugePendingFailures is the repair backlog: sensors killed so far
	// minus replacements deployed.
	GaugePendingFailures = "pending_failures"
	// GaugeRobotQueueDepth is the total work queued on robots, counting an
	// in-service task as one.
	GaugeRobotQueueDepth = "robot_queue_depth"
	// GaugeInflightReports is the number of failure reports awaiting an ack
	// across all sensors (0 unless the reliability extension is on).
	GaugeInflightReports = "inflight_reports"
	// GaugeEventQueueDepth is the simulation kernel's pending event count.
	GaugeEventQueueDepth = "event_queue_depth"
	// GaugeEventsPerSimSec is the kernel event rate over the last sample
	// period (events fired per sim second).
	GaugeEventsPerSimSec = "events_per_simsec"
	// GaugeFleetAlive is the number of operational robots (battery layer;
	// registered only when Config.Battery is set).
	GaugeFleetAlive = "fleet_alive"
	// GaugeBatteryMinJ is the lowest pack level across live robots in whole
	// joules (battery layer; registered only when Config.Battery is set).
	GaugeBatteryMinJ = "battery_min_j"
)

// startTelemetry builds the collector, registers the standard histograms
// and gauges, and arms the sampler. Called from New only when
// Config.Telemetry.Enabled — with telemetry off, World.Telemetry stays nil
// and every hook feed reduces to one nil check.
func (w *World) startTelemetry() error {
	c := telemetry.NewCollector(w.Cfg.Telemetry)
	w.Telemetry = c

	// Histograms fed by the lifecycle hooks in New. First-bucket widths and
	// counts size each to the quantity's plausible range: repair delay
	// 0..8 s through km-scale backlogs, hops and retx small integers, trips
	// a few meters through field diagonals.
	w.telRepairDelay = c.LogHistogram(TelHistRepairDelay, 8, 16)
	w.telReportHops = c.LogHistogram(TelHistReportHops, 1, 8)
	w.telReportRetx = c.LogHistogram(TelHistReportRetx, 1, 8)
	w.telTrip = c.LogHistogram(TelHistTripMeters, 4, 16)
	if w.hostile {
		// Log buckets over sim time: 0..64 s in the first, the paper's full
		// 64000 s horizon inside the last.
		decode := c.LogHistogram(TelHistDecodeFail, 64, 12)
		w.Medium.SetChannelDropHook(func(radio.Frame) {
			decode.Add(float64(w.Sched.Now()))
		})
	}

	// Gauges read only deterministic simulation state, so sampled series
	// are identical whatever the surrounding experiment's worker count.
	// The bodies are shared with the flight recorder (see ftdc.go).
	c.Gauge(GaugePendingFailures, w.gaugePendingFailures)
	c.Gauge(GaugeRobotQueueDepth, w.gaugeRobotQueueDepth)
	c.Gauge(GaugeInflightReports, w.gaugeInflightReports)
	c.Gauge(GaugeEventQueueDepth, w.gaugeEventQueueDepth)
	var lastFired uint64
	c.Gauge(GaugeEventsPerSimSec, func() float64 {
		fired := w.Sched.Fired()
		rate := float64(fired-lastFired) / c.Config().SamplePeriodS
		lastFired = fired
		return rate
	})
	if w.Cfg.Battery != nil {
		// Appended after the stable columns so battery-off CSV layouts are
		// untouched.
		c.Gauge(GaugeFleetAlive, w.gaugeFleetAlive)
		c.Gauge(GaugeBatteryMinJ, w.gaugeBatteryMinJ)
	}

	return c.Start(w.Sched)
}
