package scenario

import (
	"strings"
	"testing"

	"roborepair/internal/chaos"
	"roborepair/internal/core"
	"roborepair/internal/ftdc"
	"roborepair/internal/telemetry"
)

func ftdcTestConfig(seed int64) Config {
	cfg := telTestConfig(seed)
	cfg.Recorder = ftdc.Config{Enabled: true}
	return cfg
}

// TestRecorderDoesNotPerturbResults is the flight recorder's core
// contract: arming it must not change a single reported quantity — it
// rides the scheduler but only reads state.
func TestRecorderDoesNotPerturbResults(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		cfg := telTestConfig(17)
		cfg.Algorithm = alg
		off, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Recorder = ftdc.Config{Enabled: true}
		on, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		on.Config.Recorder = ftdc.Config{}
		if a, b := resultsJSON(t, off), resultsJSON(t, on); a != b {
			t.Fatalf("%v: recorder changed the results:\noff: %s\non:  %s", alg, a, b)
		}
		if on.Recording == nil {
			t.Fatalf("%v: enabled run carries no recording", alg)
		}
		if off.Recording != nil {
			t.Fatalf("%v: disabled run carries a recording", alg)
		}
	}
}

// TestRecorderCapturesRun decodes an enabled run's capture and
// cross-checks the final sample against Results.
func TestRecorderCapturesRun(t *testing.T) {
	cfg := ftdcTestConfig(5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Recording.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	rec, err := ftdc.Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Samples at 0, 250, ..., 3000.
	if want := int(cfg.SimTime/250) + 1; rec.NumRows() != want {
		t.Fatalf("rows = %d, want %d", rec.NumRows(), want)
	}
	if rec.Schema.Seed != cfg.Seed || rec.Schema.PeriodS != 250 {
		t.Fatalf("schema = %+v", rec.Schema)
	}
	lastOf := func(name string) float64 {
		col := rec.Column(name)
		if col == nil {
			t.Fatalf("missing column %q", name)
		}
		return col[len(col)-1]
	}
	if got := lastOf(FTDCColTime); got != cfg.SimTime {
		t.Errorf("last t_s = %v, want %v", got, cfg.SimTime)
	}
	if got := lastOf(FTDCColRepairs); got != float64(res.Repairs) {
		t.Errorf("last repairs = %v, want %d", got, res.Repairs)
	}
	if got := lastOf(FTDCColFailuresInjected); got != float64(res.FailuresInjected) {
		t.Errorf("last failures_injected = %v, want %d", got, res.FailuresInjected)
	}
	if got := lastOf(FTDCColReportsSent); got != float64(res.ReportsSent) {
		t.Errorf("last reports_sent = %v, want %d", got, res.ReportsSent)
	}
	if got := lastOf(FTDCColTxLocUpdate); got != float64(res.LocUpdateTx) {
		t.Errorf("last tx_location_update = %v, want %d", got, res.LocUpdateTx)
	}
	if got := lastOf(FTDCColEventsFired); got <= 0 {
		t.Errorf("last events_fired = %v, want > 0", got)
	}
	// Cumulative columns never decrease.
	for _, name := range []string{FTDCColEventsFired, FTDCColFailuresInjected, FTDCColRepairs, FTDCColReportsSent, FTDCColTxLocUpdate} {
		col := rec.Column(name)
		for i := 1; i < len(col); i++ {
			if col[i] < col[i-1] {
				t.Fatalf("%s decreases at row %d: %v -> %v", name, i, col[i-1], col[i])
			}
		}
	}
}

// TestRecorderOutputBeatsCSVTenfold is the tentpole's size target: the
// binary capture must be at least 10× smaller than the equivalent
// time-series CSV — the same columns, rows, and cadence rendered the way
// WriteTimeSeriesCSV renders the sampler (header line, %g rows).
func TestRecorderOutputBeatsCSVTenfold(t *testing.T) {
	cfg := ftdcTestConfig(9)
	cfg.SimTime = 16000
	cfg.Recorder.SamplePeriodS = 10 // service-scale capture density
	cfg.Recorder.ChunkRows = 512    // archival capture: large chunks compress best
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Recording.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ftdc.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := ftdc.WriteCSV(&csv, rec); err != nil {
		t.Fatal(err)
	}
	ratio := float64(csv.Len()) / float64(len(b))
	if ratio < 10 {
		t.Fatalf("recording %d bytes vs equivalent CSV %d bytes: ratio %.1f×, want ≥ 10×", len(b), csv.Len(), ratio)
	}
	t.Logf("recording %d bytes, equivalent CSV %d bytes: %.1f× smaller", len(b), csv.Len(), ratio)
}

// TestRecorderChaosMarkers runs under a fault plan and checks the
// chaos_active bitmask tracks the configured windows.
func TestRecorderChaosMarkers(t *testing.T) {
	cfg := ftdcTestConfig(3)
	cfg.Faults = &chaos.FaultPlan{
		LossBursts: []chaos.LossBurst{{From: 500, To: 1200, P: 0.5}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Recording.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ftdc.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	ts := rec.Column(FTDCColTime)
	bits := rec.Column(FTDCColChaosActive)
	for i := range ts {
		inBurst := ts[i] >= 500 && ts[i] < 1200
		got := int(bits[i])&chaosBitLossBurst != 0
		if got != inBurst {
			t.Fatalf("t=%v: loss-burst bit = %v, want %v", ts[i], got, inBurst)
		}
	}
}

// TestRecorderBlackBoxMode bounds retention and still decodes.
func TestRecorderBlackBoxMode(t *testing.T) {
	cfg := ftdcTestConfig(4)
	cfg.Recorder.ChunkRows = 2
	cfg.Recorder.KeepChunks = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recording.EvictedChunks() == 0 {
		t.Fatal("expected evictions with ChunkRows=2 KeepChunks=3")
	}
	b, err := res.Recording.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ftdc.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	// 3 retained chunks of 2 rows plus a pending tail of ≤ 2.
	if rec.NumRows() < 6 || rec.NumRows() > 8 {
		t.Fatalf("retained rows = %d, want 6..8", rec.NumRows())
	}
	ts := rec.Column(FTDCColTime)
	if ts[len(ts)-1] != cfg.SimTime {
		t.Fatalf("black box does not end at the horizon: %v", ts[len(ts)-1])
	}
}

// TestRecorderCheckpointRestore proves the recorder participates in the
// checkpoint contract: a mid-flight snapshot of a recording run restores
// and the continuation is bit-identical, recording included.
func TestRecorderCheckpointRestore(t *testing.T) {
	cfg := ftdcTestConfig(8)
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Sched.Run(1500)
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	resA := w.Run()
	resB := restored.Run()
	a, err := resA.Recording.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := resB.Recording.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("restored continuation's recording diverges from the original")
	}
	if resultsJSON(t, resA) != resultsJSON(t, resB) {
		t.Fatal("restored continuation's results diverge")
	}
}

// TestTelemetryDroppedSurfaced forces ring eviction and checks the drop
// count lands in Results.
func TestTelemetryDroppedSurfaced(t *testing.T) {
	cfg := telTestConfig(6)
	cfg.Telemetry = telemetry.Config{Enabled: true, SamplePeriodS: 100, RingCapacity: 8}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 31 samples into an 8-slot ring: 23 dropped.
	if res.TelemetryDropped != 23 {
		t.Fatalf("TelemetryDropped = %d, want 23", res.TelemetryDropped)
	}
	cfg.Telemetry.RingCapacity = 0 // default 4096 holds everything
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TelemetryDropped != 0 {
		t.Fatalf("TelemetryDropped = %d, want 0", res.TelemetryDropped)
	}
}
