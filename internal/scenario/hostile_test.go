package scenario

import (
	"testing"

	"roborepair/internal/chaos"
	"roborepair/internal/core"
)

// hostileTestConfig is the corruption-test base: short horizon, enough
// failures inside it, reliability on (the defenses under test include its
// seq/seen machinery), invariants on (corruption must never break a
// conservation law).
func hostileTestConfig(seed int64, spec string) Config {
	cfg := invTestConfig(seed)
	cfg.Reliability.Enabled = true
	plan, err := chaos.Parse(spec)
	if err != nil {
		panic(err)
	}
	cfg.Faults = plan
	return cfg
}

// TestHostileChannelInvariantsClean runs every algorithm under heavy mixed
// corruption with the conservation-law checker armed: mutated frames must
// be dropped or credited, never acted on in a way that breaks accounting,
// and never panic a receiver.
func TestHostileChannelInvariantsClean(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		cfg := hostileTestConfig(7, "corrupt@500-2500=0.2")
		cfg.Algorithm = alg
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: violation: %s", alg, v)
		}
		if res.CorruptedFrames == 0 {
			t.Errorf("%v: corruption window open yet no frames corrupted", alg)
		}
		if res.DroppedMalformed == 0 {
			t.Errorf("%v: frames corrupted yet none dropped as malformed", alg)
		}
		if res.DroppedMalformed > res.CorruptedFrames {
			t.Errorf("%v: %d malformed drops exceed %d corrupted receptions",
				alg, res.DroppedMalformed, res.CorruptedFrames)
		}
		if res.Repairs == 0 {
			t.Errorf("%v: the network stopped repairing under 20%% corruption", alg)
		}
	}
}

// TestHostileChannelReplayGuard: under pure replay corruption the
// strict-sequence guards must actually fire — stale RobotUpdate replays
// reach receivers as valid frames and only the seq machinery stops them.
func TestHostileChannelReplayGuard(t *testing.T) {
	cfg := hostileTestConfig(7, "corrupt@500-2500=0.5,replay")
	cfg.Algorithm = core.Centralized
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplayRejected == 0 {
		t.Error("replay corruption active yet no stale updates rejected")
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestHostileChannelDeterminism: a corrupted run is still a deterministic
// function of (Config, Seed) — the corrupter draws from its own split
// stream, so two runs report identical Results.
func TestHostileChannelDeterminism(t *testing.T) {
	cfg := hostileTestConfig(11, "corrupt@500-2500=0.1")
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := resultsJSON(t, a), resultsJSON(t, b); ja != jb {
		t.Errorf("corrupted runs diverge:\n a %s\n b %s", ja, jb)
	}
}

// TestHostileChannelDegradationBounded compares 5%% frame corruption
// against a 5%% loss burst over the same window: corruption destroys the
// same deliveries (plus checksum-dropped mutations), and the defensive
// layer must keep the repair pipeline in the same regime — unrepaired
// sites at the horizon stay within 2× of the loss-only run, summed over
// seeds so single-site noise cannot flip the verdict.
func TestHostileChannelDegradationBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed comparison run")
	}
	lossOnly, corrupt := 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		base, err := Run(hostileTestConfig(seed, "burst@500-2500=0.05"))
		if err != nil {
			t.Fatal(err)
		}
		hard, err := Run(hostileTestConfig(seed, "corrupt@500-2500=0.05"))
		if err != nil {
			t.Fatal(err)
		}
		lossOnly += base.UnrepairedFailures
		corrupt += hard.UnrepairedFailures
	}
	if corrupt > 2*lossOnly {
		t.Errorf("unrepaired sites under corruption %d exceed 2× the loss-only %d", corrupt, lossOnly)
	}
}

// TestCorruptionLayerAbsentWhenOff: a fault plan without corruption
// windows must not install the codec — the hostile counters stay zero and
// Results match the plan-free medium's accounting shape. (Bit-identity of
// corruption-off runs is locked by TestGoldenResultsInvariantsOff and the
// allocation ceiling by TestInvariantsOffAllocations.)
func TestCorruptionLayerAbsentWhenOff(t *testing.T) {
	cfg := hostileTestConfig(7, "burst@500-2500=0.1")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptedFrames != 0 || res.DroppedMalformed != 0 || res.ReplayRejected != 0 {
		t.Errorf("hostile counters nonzero without corruption windows: %d/%d/%d",
			res.CorruptedFrames, res.DroppedMalformed, res.ReplayRejected)
	}
}
