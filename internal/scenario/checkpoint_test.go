package scenario

import (
	"errors"
	"reflect"
	"testing"

	"roborepair/internal/chaos"
	"roborepair/internal/checkpoint"
	"roborepair/internal/core"
	"roborepair/internal/sim"
)

// ckptConfig is the differential-test base: short horizon with failures
// inside it, tracing on (the trace is the equality oracle), reliability on,
// and per-algorithm extras so every snapshot section carries real state —
// telemetry for Fixed, a corruption window (chaos ring + hostile wiring)
// for Dynamic.
func ckptConfig(alg core.Algorithm, kernel string) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	cfg.Kernel = kernel
	cfg.SimTime = 2500
	cfg.MeanLifetime = 3000
	cfg.Seed = 11
	cfg.TraceCapacity = 4096
	cfg.Reliability.Enabled = true
	switch alg {
	case core.Fixed:
		cfg.Telemetry.Enabled = true
		cfg.Telemetry.SamplePeriodS = 100
	case core.Dynamic:
		plan, err := chaos.Parse("corrupt@400-1200=0.1")
		if err != nil {
			panic(err)
		}
		cfg.Faults = plan
	}
	return cfg
}

// TestCheckpointRestoreDifferential is the tentpole's core contract, for
// every algorithm on both queue kernels: a run that is (a) segmented by
// periodic snapshots and (b) killed at a mid-run snapshot, round-tripped
// through the binary format, restored, and continued — produces Results and
// an event trace bit-identical to an uninterrupted run.
func TestCheckpointRestoreDifferential(t *testing.T) {
	for _, alg := range []core.Algorithm{core.Centralized, core.Fixed, core.Dynamic} {
		for _, kernel := range []string{"heap", "ladder"} {
			t.Run(alg.String()+"/"+kernel, func(t *testing.T) {
				cfg := ckptConfig(alg, kernel)

				// Uninterrupted reference run.
				wA, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				resA := resultsJSON(t, wA.Run())
				traceA := wA.Trace.Events()

				// Checkpointed run: snapshot every 600 s, keep the one at
				// t=1200 round-tripped through the binary format.
				wB, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var blob []byte
				resB, err := wB.RunCheckpointed(CheckpointOptions{
					Every: 600,
					OnSnapshot: func(s *checkpoint.Snapshot) error {
						if s.T == 1200 {
							b, err := checkpoint.Encode(s)
							if err != nil {
								return err
							}
							blob = b
						}
						return nil
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := resultsJSON(t, resB); got != resA {
					t.Errorf("segmented run diverged from uninterrupted run:\n got %s\nwant %s", got, resA)
				}
				if !reflect.DeepEqual(wB.Trace.Events(), traceA) {
					t.Error("segmented run trace diverged from uninterrupted run")
				}
				if blob == nil {
					t.Fatal("no snapshot captured at t=1200")
				}

				// Kill + restore: decode the banked snapshot, rebuild, and
				// run to the horizon.
				snap, err := checkpoint.Decode(blob)
				if err != nil {
					t.Fatal(err)
				}
				wC, err := Restore(snap)
				if err != nil {
					t.Fatal(err)
				}
				if wC.Sched.Now() != 1200 {
					t.Fatalf("restored clock = %v, want 1200", wC.Sched.Now())
				}
				if got := resultsJSON(t, wC.Run()); got != resA {
					t.Errorf("restored run diverged from uninterrupted run:\n got %s\nwant %s", got, resA)
				}
				if !reflect.DeepEqual(wC.Trace.Events(), traceA) {
					t.Error("restored run trace diverged from uninterrupted run")
				}
			})
		}
	}
}

// TestRestoreRejectsTamperedSnapshot: scenario-level defenses past the
// binary CRCs. A snapshot whose decoded contents disagree with a replay —
// wrong section bytes, wrong clock, drifted config, wrong seed — must be
// rejected with a diagnosable error, never silently restored.
func TestRestoreRejectsTamperedSnapshot(t *testing.T) {
	cfg := ckptConfig(core.Dynamic, "heap")
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Sched.Run(1000)
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("section tamper", func(t *testing.T) {
		mut := *snap
		mut.Sections = append([]checkpoint.Section(nil), snap.Sections...)
		sec := mut.Sections[3] // sensors
		payload := append([]byte(nil), sec.Payload...)
		payload[len(payload)/2] ^= 0x40
		mut.Sections[3] = checkpoint.Section{ID: sec.ID, Payload: payload}
		if _, err := Restore(&mut); !errors.Is(err, ErrReplayDiverged) {
			t.Errorf("tampered section: err = %v, want ErrReplayDiverged", err)
		}
	})

	t.Run("clock tamper", func(t *testing.T) {
		mut := *snap
		mut.T = 999.5
		if _, err := Restore(&mut); !errors.Is(err, ErrReplayDiverged) {
			t.Errorf("tampered clock: err = %v, want ErrReplayDiverged", err)
		}
	})

	t.Run("unknown config field", func(t *testing.T) {
		mut := *snap
		mut.ConfigJSON = append([]byte(`{"futureKnob":1,`), snap.ConfigJSON[1:]...)
		if _, err := Restore(&mut); err == nil {
			t.Error("unknown config field accepted")
		}
	})

	t.Run("seed mismatch", func(t *testing.T) {
		mut := *snap
		mut.Seed = snap.Seed + 1
		if _, err := Restore(&mut); err == nil {
			t.Error("header/config seed mismatch accepted")
		}
	})
}

// TestRestoreTailTrace: a config with tracing off can still gain a trace at
// restore time, recording only the continuation — the replay-from-snapshot
// debugging workflow.
func TestRestoreTailTrace(t *testing.T) {
	cfg := ckptConfig(core.Dynamic, "heap")
	cfg.TraceCapacity = 0
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Sched.Run(1000)
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	re, err := RestoreOpts(snap, RestoreOptions{TailTraceCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if re.Trace == nil {
		t.Fatal("tail trace not installed")
	}
	re.Run()
	evs := re.Trace.Events()
	if len(evs) == 0 {
		t.Fatal("tail trace recorded nothing")
	}
	for _, e := range evs {
		if e.At < 1000 {
			t.Fatalf("tail trace holds pre-snapshot event at %v", e.At)
		}
	}
}

// TestSnapshotDoesNotPerturb: taking a snapshot mid-run must not change the
// run — the world keeps executing exactly as if never observed.
func TestSnapshotDoesNotPerturb(t *testing.T) {
	cfg := ckptConfig(core.Centralized, "ladder")
	wA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resA := resultsJSON(t, wA.Run())

	wB, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Time{300, 700, 1100, 1900} {
		wB.Sched.Run(at)
		if _, err := wB.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if got := resultsJSON(t, wB.Run()); got != resA {
		t.Errorf("snapshots perturbed the run:\n got %s\nwant %s", got, resA)
	}
	if !reflect.DeepEqual(wB.Trace.Events(), wA.Trace.Events()) {
		t.Error("snapshots perturbed the trace")
	}
}
