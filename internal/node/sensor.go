// Package node implements sensor-node behaviour: boot-time location
// announcement, periodic beaconing, guardian/guardee failure detection,
// neighbor-table maintenance, myrobot tracking, and the relaying of robot
// location-update floods according to a per-algorithm Policy.
package node

import (
	"sort"

	"roborepair/internal/broadcastopt"
	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// Policy is the algorithm-specific part of sensor behaviour. The three
// coordination algorithms differ only in how sensors choose their failure
// report target ("myrobot"/manager) and which robot location updates they
// relay.
type Policy interface {
	// Consider processes a robot location update heard by s. It may adopt
	// the robot as s's report target and reports whether s relays the
	// flood onward.
	Consider(s *Sensor, up wire.RobotUpdate) (relay bool)
	// GuardianOK reports whether a sensor at guardee may pick a sensor at
	// guardian as its guardian (the fixed algorithm restricts the pair to
	// one subarea).
	GuardianOK(guardee, guardian geom.Point) bool
}

// Config carries the sensor parameters of the paper's setup (§4.1).
type Config struct {
	// Range is the sensor transmission range in meters (63 in the paper).
	Range float64
	// BeaconPeriod is the failure-detection heartbeat period (10 s).
	BeaconPeriod sim.Duration
	// MissedBeacons is how many silent periods declare a failure (3).
	MissedBeacons int
	// SettleDelay is how long after boot a sensor waits before selecting
	// its guardian, leaving time for location announcements to arrive.
	SettleDelay sim.Duration
	// FloodTTL caps controlled-flood relaying (safety bound; the relay
	// predicate is the real scope limit).
	FloodTTL int
	// EfficientBroadcast enables the §4.3.2 relay-set optimization: each
	// relaying sensor designates at most six angular-sector forwarders
	// instead of letting every neighbor relay.
	EfficientBroadcast bool
	// StrictSeq rejects robot updates whose Seq is below the last accepted
	// one for that robot (hostile-channel defense: stale replays must not
	// roll robot positions back). Off by default — on a benign medium
	// multi-path flood relaying genuinely reorders updates, and acting on
	// the freshest-heard value reproduces the paper's behaviour.
	StrictSeq bool
	// Reliability configures the report-retransmission extension. The
	// zero value reproduces the paper's fire-and-forget behaviour.
	Reliability Reliability
}

// Hooks lets the experiment runner observe sensor-level events without
// coupling the node to the scenario package.
type Hooks struct {
	// OnReportSent fires when a guardian originates a failure report.
	OnReportSent func(rep wire.FailureReport)
	// OnReportDropped fires when a report packet is discarded in the
	// network with this sensor as a relay.
	OnReportDropped func(p netstack.Packet, reason netstack.DropReason)
	// OnReportRetx fires when a guardian retransmits an unacknowledged
	// report; attempt counts transmissions so far.
	OnReportRetx func(rep wire.FailureReport, attempt int)
	// OnReportAbandoned fires when a report exhausts its retry budget.
	OnReportAbandoned func(rep wire.FailureReport)
	// OnReportAcked fires when this sensor accepts an ack addressed to one
	// of its own reports (before the pending-report lookup, so acks for
	// already-cleared reports are observed too).
	OnReportAcked func(ack wire.ReportAck)
}

type guardee struct {
	id        radio.NodeID
	loc       geom.Point
	lastHeard sim.Time
}

// robotTrack is the last accepted state for a known robot or manager.
// Robot IDs are small and dense, so tracks live in an ID-indexed slice:
// the per-tick scans walk contiguous memory instead of hashing map keys.
type robotTrack struct {
	loc   geom.Point
	seq   uint64
	heard sim.Time // last reception (expiry bookkeeping)
	known bool
}

// Sensor is one static sensor node.
type Sensor struct {
	id     radio.NodeID
	pos    geom.Point
	cfg    Config
	policy Policy
	hooks  Hooks

	medium *radio.Medium
	sched  *sim.Scheduler

	alive   bool
	table   *netstack.NeighborTable
	router  *netstack.Router
	flooder *netstack.Flooder
	ticker  *sim.Ticker

	guardian     radio.NodeID // 0 when none
	lastGuardian sim.Time
	guardees     []guardee // ID-ascending; a sensor guards at most a handful

	target    radio.NodeID // failure report destination
	targetLoc geom.Point
	robots    []robotTrack // known robots/managers by NodeID (never guardians)

	// replayRejected counts robot updates dropped by the StrictSeq guard.
	replayRejected uint64

	// Reliability-extension state (inert at the zero Reliability config).
	reportSeq   uint64
	pending     map[uint64]*pendingReport // unacked reports by Seq
	lastFrameAt sim.Time                  // last frame heard at all (deafness detection)
	manager     radio.NodeID              // current manager, exempt from expiry
}

var _ radio.Station = (*Sensor)(nil)

// NewSensor constructs a sensor; call Start to boot it.
func NewSensor(id radio.NodeID, pos geom.Point, cfg Config, policy Policy, medium *radio.Medium, hooks Hooks) *Sensor {
	s := &Sensor{
		id:      id,
		pos:     pos,
		cfg:     cfg,
		policy:  policy,
		hooks:   hooks,
		medium:  medium,
		sched:   medium.Scheduler(),
		alive:   true,
		table:   netstack.NewNeighborTable(),
		flooder: netstack.NewFlooder(),
		manager: cfg.Reliability.Manager,
	}
	if cfg.Reliability.RetryEnabled() {
		s.pending = make(map[uint64]*pendingReport)
	}
	s.router = &netstack.Router{
		ID:      id,
		Pos:     func() geom.Point { return s.pos },
		Range:   func() float64 { return s.cfg.Range },
		Medium:  medium,
		Source:  netstack.TableSource{Table: s.table},
		Deliver: s.deliverPacket,
		OnDrop: func(p netstack.Packet, r netstack.DropReason) {
			s.medium.Metrics().CountTx("drop_"+string(r), 1)
			if s.hooks.OnReportDropped != nil {
				s.hooks.OnReportDropped(p, r)
			}
		},
	}
	return s
}

// ID returns the sensor's address.
func (s *Sensor) ID() radio.NodeID { return s.id }

// Pos returns the sensor's (fixed) location.
func (s *Sensor) Pos() geom.Point { return s.pos }

// Alive reports whether the sensor is operational.
func (s *Sensor) Alive() bool { return s.alive }

// Location implements failure.Failable.
func (s *Sensor) Location() geom.Point { return s.pos }

// Target returns the sensor's current failure-report destination.
func (s *Sensor) Target() (radio.NodeID, geom.Point) { return s.target, s.targetLoc }

// SetTarget sets the report destination ("myrobot" or the manager).
func (s *Sensor) SetTarget(id radio.NodeID, loc geom.Point) {
	s.target = id
	s.targetLoc = loc
}

// Guardian returns the sensor's current guardian (0 when none).
func (s *Sensor) Guardian() radio.NodeID { return s.guardian }

// Guardees returns the IDs this sensor currently guards, for tests.
func (s *Sensor) Guardees() []radio.NodeID {
	out := make([]radio.NodeID, 0, len(s.guardees))
	for i := range s.guardees {
		out = append(out, s.guardees[i].id)
	}
	return out
}

// robotAt returns the track of a known robot, or nil.
func (s *Sensor) robotAt(id radio.NodeID) *robotTrack {
	if id < 0 || int(id) >= len(s.robots) || !s.robots[id].known {
		return nil
	}
	return &s.robots[id]
}

// robotSlot grows the track table as needed and returns id's slot.
func (s *Sensor) robotSlot(id radio.NodeID) *robotTrack {
	if int(id) >= len(s.robots) {
		grown := make([]robotTrack, id+1)
		copy(grown, s.robots)
		s.robots = grown
	}
	return &s.robots[id]
}

// guardeeAt returns the index of id in the guardee list, or -1.
func (s *Sensor) guardeeAt(id radio.NodeID) int {
	for i := range s.guardees {
		if s.guardees[i].id == id {
			return i
		}
	}
	return -1
}

// upsertGuardee inserts or refreshes a guardee, keeping the list
// ID-ascending so the per-tick liveness scan is reproducible without
// sorting.
func (s *Sensor) upsertGuardee(id radio.NodeID, loc geom.Point, now sim.Time) {
	i := sort.Search(len(s.guardees), func(i int) bool { return s.guardees[i].id >= id })
	if i < len(s.guardees) && s.guardees[i].id == id {
		s.guardees[i] = guardee{id: id, loc: loc, lastHeard: now}
		return
	}
	s.guardees = append(s.guardees, guardee{})
	copy(s.guardees[i+1:], s.guardees[i:])
	s.guardees[i] = guardee{id: id, loc: loc, lastHeard: now}
}

// Table exposes the neighbor table (used by tests and diagnostics).
func (s *Sensor) Table() *netstack.NeighborTable { return s.table }

// KnowsRobot reports the last location the sensor heard for a robot.
func (s *Sensor) KnowsRobot(id radio.NodeID) (geom.Point, bool) {
	if tr := s.robotAt(id); tr != nil {
		return tr.loc, true
	}
	return geom.Point{}, false
}

// ReplayRejected reports how many robot updates the StrictSeq guard
// rejected as stale.
func (s *Sensor) ReplayRejected() uint64 { return s.replayRejected }

// ClosestKnownRobot returns the robot closest to this sensor according to
// the last-heard locations, resolving ties by lowest ID for determinism
// (the walk is ID-ascending, so a strict improvement test keeps the
// lowest ID on ties).
func (s *Sensor) ClosestKnownRobot() (radio.NodeID, geom.Point, bool) {
	var bestID radio.NodeID
	var bestLoc geom.Point
	bestD := -1.0
	for id := range s.robots {
		tr := &s.robots[id]
		if !tr.known {
			continue
		}
		d := s.pos.Dist2(tr.loc)
		if bestD < 0 || d < bestD {
			bestID, bestLoc, bestD = radio.NodeID(id), tr.loc, d
		}
	}
	return bestID, bestLoc, bestD >= 0
}

// RadioID implements radio.Station.
func (s *Sensor) RadioID() radio.NodeID { return s.id }

// RadioPos implements radio.Station.
func (s *Sensor) RadioPos() geom.Point { return s.pos }

// RadioRange implements radio.Station.
func (s *Sensor) RadioRange() float64 { return s.cfg.Range }

// RadioActive implements radio.Station.
func (s *Sensor) RadioActive() bool { return s.alive }

// Start attaches the sensor to the medium and boots it: it announces its
// location (one-hop) after announceOffset — so that every station of the
// initial deployment is attached before the first announcement fires —
// schedules guardian selection after SettleDelay, and starts the beacon
// ticker with the given phase offset.
//
// replacement marks a node deployed by a robot mid-run; its announcement
// is counted as replacement traffic and prompts neighbors to beacon back.
func (s *Sensor) Start(announceOffset, beaconOffset sim.Duration, replacement bool) {
	s.medium.Attach(s)
	cat := metrics.CatInit
	if replacement {
		cat = metrics.CatReplacement
	}
	s.sched.After(announceOffset, func() {
		if !s.alive {
			return
		}
		s.medium.Send(radio.Frame{
			Src:      s.id,
			Dst:      radio.IDBroadcast,
			Category: cat,
			Payload:  wire.LocationAnnounce{From: s.id, Loc: s.pos, Replacement: replacement},
		})
	})
	s.sched.After(s.cfg.SettleDelay, s.selectGuardian)
	t, err := s.sched.NewTicker(beaconOffset, s.cfg.BeaconPeriod, s.tick)
	if err != nil {
		// Unreachable: BeaconPeriod is validated by the scenario config.
		panic(err)
	}
	s.ticker = t
}

// FailNow implements failure.Failable: the sensor goes silent immediately.
func (s *Sensor) FailNow() {
	if !s.alive {
		return
	}
	s.alive = false
	s.medium.SetActive(s.id, false)
	if s.ticker != nil {
		s.ticker.Stop()
	}
	for _, p := range s.pending {
		s.sched.Cancel(p.ev) // dead guardians stop retransmitting
	}
	s.pending = nil
}

// tick sends the periodic beacon and runs the failure-detection checks.
func (s *Sensor) tick() {
	if !s.alive {
		return
	}
	now := s.sched.Now()
	s.medium.Send(radio.Frame{
		Src:      s.id,
		Dst:      radio.IDBroadcast,
		Category: metrics.CatBeacon,
		Payload:  wire.Beacon{From: s.id, Loc: s.pos},
	})

	deadline := now.Sub(s.cfg.BeaconPeriod * sim.Duration(s.cfg.MissedBeacons))

	// Guardee liveness: a silent guardee has failed — report it. The
	// guardee list is ID-ascending, so runs are reproducible.
	var failed []guardee
	kept := s.guardees[:0]
	for _, g := range s.guardees {
		if g.lastHeard < deadline {
			failed = append(failed, g)
		} else {
			kept = append(kept, g)
		}
	}
	s.guardees = kept
	for _, g := range failed {
		s.table.Remove(g.id)
		if s.cfg.Reliability.RetryEnabled() {
			// Confirmation grace: hold the report for two beacon periods.
			// A guardee that was merely silenced (a radio blackout lifting
			// makes every neighbor look 1000s-dead at once) beacons within
			// one period and cancels the false report before any traffic;
			// a real failure is reported 2 periods later — noise against
			// repair delays.
			s.reportAfter(g.id, g.loc, now, 2*s.cfg.BeaconPeriod)
		} else {
			s.report(g.id, g.loc, now)
		}
	}

	// Guardian liveness: a silent guardian is replaced, not reported
	// (its own guardian reports it).
	if s.guardian != 0 && s.lastGuardian < deadline {
		s.table.Remove(s.guardian)
		s.guardian = 0
		s.selectGuardian()
	}

	// Neighbor watch (reliability extension): collect the silent
	// non-robot neighbors about to be purged — each will be reported, not
	// just forgotten, closing the guardian scheme's blind spot (a guardian
	// dying inside its guardee's detection window strands the guardee).
	var watch []netstack.Neighbor
	if s.cfg.Reliability.NeighborWatch {
		for _, n := range s.table.All() {
			if n.LastHeard >= deadline {
				continue
			}
			if s.robotAt(n.ID) == nil {
				watch = append(watch, n)
			}
		}
	}

	// Purge other stale neighbors so routing never picks a dead relay.
	// Robots are exempt: they beacon on their own schedule (location
	// updates), and purging them would orphan the last-hop delivery.
	for _, id := range s.table.Purge(deadline) {
		if tr := s.robotAt(id); tr != nil {
			if s.pos.Dist(tr.loc) <= s.cfg.Range {
				s.table.Upsert(id, tr.loc, now)
			}
		}
	}
	for _, n := range watch {
		s.reportAfter(n.ID, n.Loc, now, s.cfg.Reliability.WatchGrace)
	}

	// Expire dead robots so reports chase survivors, not ghosts.
	if s.cfg.Reliability.RobotExpiry > 0 {
		s.expireRobots(now)
	}
}

// selectGuardian picks the nearest alive neighbor permitted by the policy
// and confirms the relationship.
func (s *Sensor) selectGuardian() {
	if !s.alive || s.guardian != 0 {
		return
	}
	var chosen *netstack.Neighbor
	for _, n := range s.table.All() {
		if s.robotAt(n.ID) != nil || !s.policy.GuardianOK(s.pos, n.Loc) {
			continue
		}
		if chosen == nil || n.Loc.Dist2(s.pos) < chosen.Loc.Dist2(s.pos) {
			n := n
			chosen = &n
		}
	}
	if chosen == nil {
		return // isolated sensor: unguarded, as in the paper's model
	}
	s.guardian = chosen.ID
	s.lastGuardian = s.sched.Now()
	s.medium.Send(radio.Frame{
		Src:      s.id,
		Dst:      chosen.ID,
		Category: metrics.CatInit,
		Payload:  wire.GuardianConfirm{From: s.id, Loc: s.pos},
	})
}

// report originates a failure report toward the sensor's current target.
// With retransmission enabled the report is numbered, tracked, and re-sent
// with capped exponential backoff until acked or observed repaired.
func (s *Sensor) report(failed radio.NodeID, loc geom.Point, now sim.Time) {
	rep := wire.FailureReport{Failed: failed, Loc: loc, Reporter: s.id, DetectedAt: now}
	if s.cfg.Reliability.RetryEnabled() {
		s.reportSeq++
		rep.Seq = s.reportSeq
		rep.ReporterLoc = s.pos
		p := &pendingReport{rep: rep}
		s.pending[rep.Seq] = p
		s.sendReport(p)
		return
	}
	if s.target == 0 {
		return // no known manager: the failure goes unreported
	}
	if s.hooks.OnReportSent != nil {
		s.hooks.OnReportSent(rep)
	}
	s.router.Originate(netstack.Packet{
		Dst:      s.target,
		DstLoc:   s.targetLoc,
		Category: metrics.CatFailureReport,
		Payload:  rep,
	})
}

// HandleFrame implements radio.Station.
func (s *Sensor) HandleFrame(f radio.Frame) {
	if !s.alive {
		return
	}
	now := s.sched.Now()
	if s.cfg.Reliability.RetryEnabled() {
		// Deafness resync: a sensor that heard no frame at all for a full
		// detection window was cut off (e.g. a regional radio blackout), so
		// every silence verdict formed in the gap is suspect. Re-grant the
		// unacked pending reports a confirmation grace before accusing.
		deaf := s.cfg.BeaconPeriod * sim.Duration(s.cfg.MissedBeacons)
		if s.lastFrameAt > 0 && now.Sub(s.lastFrameAt) > deaf {
			s.resyncPendings()
		}
		s.lastFrameAt = now
	}
	switch m := f.Payload.(type) {
	case wire.Beacon:
		s.hearNeighbor(m.From, m.Loc, now)
		// A beacon from a reported location means the site is alive after
		// all: a blackout false positive resurfacing, or a replacement
		// whose boot announce this reporter missed.
		s.observeRepair(m.Loc)
	case wire.LocationAnnounce:
		s.hearNeighbor(m.From, m.Loc, now)
		if m.Replacement {
			// The repair happened: stop retransmitting reports for this
			// location even if the ack never arrived.
			s.observeRepair(m.Loc)
			// §4.2(a): answer a replacement node's boot broadcast with a
			// beacon so it can build its neighbor table.
			s.medium.Send(radio.Frame{
				Src:      s.id,
				Dst:      radio.IDBroadcast,
				Category: metrics.CatReplacement,
				Payload:  wire.Beacon{From: s.id, Loc: s.pos},
			})
		}
	case wire.GuardianConfirm:
		s.upsertGuardee(m.From, m.Loc, now)
		s.hearNeighbor(m.From, m.Loc, now)
	case wire.RobotUpdate:
		// One-hop robot announce (centralized location update).
		s.noteRobot(m, now)
	case netstack.FloodMsg:
		s.handleFlood(m, now)
	case netstack.Packet:
		s.router.Receive(m)
	}
}

// hearNeighbor refreshes detection and routing state for a one-hop
// transmission from a sensor peer.
func (s *Sensor) hearNeighbor(from radio.NodeID, loc geom.Point, now sim.Time) {
	if s.pos.Dist(loc) <= s.cfg.Range {
		// Only bidirectionally reachable peers are usable next hops.
		s.table.Upsert(from, loc, now)
	}
	if i := s.guardeeAt(from); i >= 0 {
		s.guardees[i].lastHeard = now
	}
	if from == s.guardian {
		s.lastGuardian = now
	}
}

// noteRobot records a robot's position and refreshes target/table state.
func (s *Sensor) noteRobot(up wire.RobotUpdate, now sim.Time) {
	if up.Robot < 0 {
		return // defensive: a slice-indexed track table cannot hold it
	}
	tr := s.robotSlot(up.Robot)
	if s.cfg.StrictSeq && tr.known && up.Seq < tr.seq {
		// Hostile channel: a replayed update would roll the robot's
		// position back. Equal Seq is an idempotent duplicate and passes.
		s.replayRejected++
		return
	}
	*tr = robotTrack{loc: up.Loc, seq: up.Seq, heard: now, known: true}
	if s.pos.Dist(up.Loc) <= s.cfg.Range {
		s.table.Upsert(up.Robot, up.Loc, now)
	} else {
		s.table.Remove(up.Robot)
	}
	if up.Robot == s.target {
		s.targetLoc = up.Loc
	}
}

// handleFlood applies duplicate suppression, lets the policy decide
// adoption/relaying, and rebroadcasts when appropriate.
func (s *Sensor) handleFlood(m netstack.FloodMsg, now sim.Time) {
	var relay bool
	switch pl := m.Payload.(type) {
	case wire.RobotUpdate:
		if !s.flooder.Fresh(m) {
			return
		}
		s.noteRobot(pl, now)
		relay = s.policy.Consider(s, pl)
		if pl.Managing && pl.Robot != s.manager {
			// A standing manager claim in a heartbeat: the fleet elected
			// this robot after a takeover. Sensors that missed the one-shot
			// takeover flood (blackout, late boot) converge here.
			s.adoptManager(wire.ManagerTakeover{Manager: pl.Robot, Loc: pl.Loc}, now)
			relay = true
		} else if s.manager != 0 && pl.Robot == s.manager {
			// A managing robot's flooded heartbeat: keep the route to the
			// post-takeover manager fresh everywhere, whatever the policy
			// thinks of ordinary robots.
			s.SetTarget(pl.Robot, pl.Loc)
			relay = true
		} else if !relay && s.cfg.Reliability.OrphanAdopt && s.target == 0 {
			// Orphaned sensor: adopt the closest robot it knows even when
			// the policy declines (fixed's cross-subarea fallback), and
			// relay so the flood sweeps the whole orphaned cell.
			if id, loc, ok := s.ClosestKnownRobot(); ok {
				s.SetTarget(id, loc)
				relay = true
			}
		}
	case wire.ManagerTakeover:
		if !s.flooder.Fresh(m) {
			return
		}
		s.adoptManager(pl, now)
		relay = true
	default:
		return
	}
	if !relay || m.TTL <= 1 {
		return
	}
	if !broadcastopt.Contains(m.Relays, s.id) {
		return // not a designated forwarder under efficient broadcast
	}
	var relays []radio.NodeID
	if s.cfg.EfficientBroadcast {
		relays = broadcastopt.SelectRelays(s.pos, s.table.All(), broadcastopt.DefaultSectors)
	}
	s.medium.Send(radio.Frame{
		Src:      s.id,
		Dst:      radio.IDBroadcast,
		Category: m.Category,
		Payload: netstack.FloodMsg{
			Origin:   m.Origin,
			Seq:      m.Seq,
			Category: m.Category,
			Payload:  m.Payload,
			Hops:     m.Hops + 1,
			TTL:      m.TTL - 1,
			Relays:   relays,
		},
	})
}
