package node

import (
	"sort"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// Reliability holds the sensor-side knobs of the reliability extension.
// The zero value reproduces the paper's fire-and-forget model exactly:
// reports are sent once, robots never expire, orphans stay orphaned.
type Reliability struct {
	// RetryBase > 0 enables report retransmission: an unacknowledged
	// report is re-sent after RetryBase, then with exponentially growing
	// delays capped at RetryMax, until an ack arrives or the repair is
	// observed (a replacement boots at the failure location).
	RetryBase sim.Duration
	// RetryMax caps the backoff delay (0 leaves it uncapped).
	RetryMax sim.Duration
	// RetryLimit caps the total transmissions of one report, initial send
	// included. 0 retries forever (until acked or repaired).
	RetryLimit int
	// RobotExpiry > 0 drops robots not heard for that long from the
	// sensor's robot table, so reports re-target a surviving robot
	// instead of chasing a dead one.
	RobotExpiry sim.Duration
	// Manager is exempt from expiry: the centralized manager is
	// stationary and silent, not dead. Takeover floods update it.
	Manager radio.NodeID
	// OrphanAdopt lets a sensor with no report target adopt the closest
	// known robot even when its policy declines (the fixed algorithm's
	// cross-subarea fallback after its own robot dies).
	OrphanAdopt bool
	// NeighborWatch makes every sensor report any silent neighbor, not
	// just its guardees — the guardian scheme's blind spot is a guardian
	// dying inside its guardee's detection window, which would otherwise
	// strand the guardee's failure forever. Duplicate reports are
	// deduplicated at the dispatcher.
	NeighborWatch bool
	// WatchGrace delays a neighbor-watch report's first transmission.
	// In the common case the failed node's guardian triggers the repair
	// within the grace, the replacement's boot announce cancels the
	// watcher's pending report, and no duplicate traffic is sent; only
	// when no repair happens (the blind spot) do watchers speak up.
	WatchGrace sim.Duration
}

// RetryEnabled reports whether report retransmission is on.
func (r Reliability) RetryEnabled() bool { return r.RetryBase > 0 }

// pendingReport is a failure report awaiting acknowledgement.
type pendingReport struct {
	rep      wire.FailureReport
	attempts int          // transmissions so far
	acked    bool         // a dispatcher owns the repair; verify cadence
	target   radio.NodeID // destination of the last transmission
	ev       sim.Event
}

// retryDelay returns the backoff before the next retransmission given the
// number of transmissions so far: RetryBase doubled per attempt, capped at
// RetryMax.
func (s *Sensor) retryDelay(attempts int) sim.Duration {
	rel := s.cfg.Reliability
	d := rel.RetryBase
	for i := 1; i < attempts; i++ {
		d *= 2
		if rel.RetryMax > 0 && d >= rel.RetryMax {
			break
		}
	}
	if rel.RetryMax > 0 && d > rel.RetryMax {
		d = rel.RetryMax
	}
	return d
}

// verifyDelay is the slow retransmission cadence for reports a dispatcher
// has already acknowledged. The ack stops the fast retry, but only seeing
// the site alive again (a replacement's announce, or any beacon from that
// location) finally clears the report — so dispatcher state lost to a
// crash or failover cannot strand a failure.
func (s *Sensor) verifyDelay() sim.Duration {
	rel := s.cfg.Reliability
	if rel.RetryMax > 0 {
		return 4 * rel.RetryMax
	}
	return 8 * rel.RetryBase
}

// reportTarget picks the destination for a failure report. With a central
// manager all reports go there. Otherwise the reporter picks the known
// robot closest to the FAILURE SITE, not to itself: every reporter of the
// same failure (guardian and watchers alike) then converges on the same
// robot, whose per-failure dedup suppresses the duplicates — reporters
// picking their own closest robot would send each duplicate to a
// different robot and trigger a duplicate trip.
func (s *Sensor) reportTarget(loc geom.Point) (radio.NodeID, geom.Point) {
	if s.manager != 0 {
		return s.target, s.targetLoc
	}
	var bestID radio.NodeID
	var bestLoc geom.Point
	bestD := -1.0
	for id := range s.robots {
		tr := &s.robots[id]
		if !tr.known {
			continue
		}
		d := loc.Dist2(tr.loc)
		if bestD < 0 || d < bestD {
			// ID-ascending walk: strict improvement keeps the lowest ID
			// on ties.
			bestID, bestLoc, bestD = radio.NodeID(id), tr.loc, d
		}
	}
	if bestD < 0 {
		return s.target, s.targetLoc
	}
	return bestID, bestLoc
}

// sendReport transmits a pending report (first send or retransmission)
// toward the current target and schedules the next retransmission. With no
// known target the transmission is skipped but the retry stays armed, so
// an orphaned sensor reports as soon as it adopts a robot.
func (s *Sensor) sendReport(p *pendingReport) {
	target, targetLoc := s.reportTarget(p.rep.Loc)
	if p.acked && p.target != 0 {
		// Sticky verify target: an acked report keeps probing the robot
		// that accepted it — re-running site affinity here would fan slow
		// retransmissions across robots as their tables evolve and trigger
		// duplicate trips. Re-pick only once that robot expires.
		if tr := s.robotAt(p.target); tr != nil {
			target, targetLoc = p.target, tr.loc
		}
	}
	if target != 0 {
		cat := metrics.CatFailureReport
		if p.attempts == 0 {
			if s.hooks.OnReportSent != nil {
				s.hooks.OnReportSent(p.rep)
			}
		} else {
			cat = metrics.CatReportRetx
			if s.hooks.OnReportRetx != nil {
				s.hooks.OnReportRetx(p.rep, p.attempts)
			}
		}
		p.attempts++
		p.target = target
		s.router.Originate(netstack.Packet{
			Dst:      target,
			DstLoc:   targetLoc,
			Category: cat,
			Payload:  p.rep,
		})
	}
	delay := s.retryDelay(p.attempts)
	if p.acked {
		delay = s.verifyDelay()
	}
	p.ev = s.sched.After(delay, func() { s.resend(p.rep.Seq) })
}

// resend is the retransmission timer body.
func (s *Sensor) resend(seq uint64) {
	p, ok := s.pending[seq]
	if !ok || !s.alive {
		return
	}
	rel := s.cfg.Reliability
	if rel.RetryLimit > 0 && p.attempts >= rel.RetryLimit {
		delete(s.pending, seq)
		if s.hooks.OnReportAbandoned != nil {
			s.hooks.OnReportAbandoned(p.rep)
		}
		return
	}
	s.sendReport(p)
}

// ackReport slows a pending report to the verify cadence: the dispatcher
// owns the repair now, but the reporter keeps a lazy eye on it until the
// site is seen alive (clearReport), in case the dispatcher's state dies
// with it.
func (s *Sensor) ackReport(seq uint64) {
	p, ok := s.pending[seq]
	if !ok {
		return
	}
	p.acked = true
	s.sched.Cancel(p.ev)
	p.ev = s.sched.After(s.verifyDelay(), func() { s.resend(seq) })
}

// clearReport drops a pending report for good: the site was seen alive.
func (s *Sensor) clearReport(seq uint64) {
	p, ok := s.pending[seq]
	if !ok {
		return
	}
	s.sched.Cancel(p.ev)
	delete(s.pending, seq)
}

// resyncPendings re-arms every unacked pending report with a fresh
// confirmation grace. Called when the sensor resurfaces from deafness
// (no frames at all for a full detection window): neighbors it accused
// while cut off were probably silenced by the same blackout, and their
// first post-blackout beacon clears the false pending via observeRepair
// before it escapes. Genuinely dead neighbors stay silent through the
// grace and are reported as usual.
func (s *Sensor) resyncPendings() {
	if len(s.pending) == 0 {
		return
	}
	grace := 2 * s.cfg.BeaconPeriod
	seqs := make([]uint64, 0, len(s.pending))
	for seq, p := range s.pending {
		if !p.acked {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		p := s.pending[seq]
		s.sched.Cancel(p.ev)
		seq := seq
		p.ev = s.sched.After(grace, func() { s.resend(seq) })
	}
}

// PendingReports reports how many failure reports await acknowledgement.
func (s *Sensor) PendingReports() int { return len(s.pending) }

// reportAfter arms a failure report whose first transmission waits for
// grace; an observed repair in the meantime cancels it silently. Requires
// retransmission to be enabled (neighbor watch implies it).
func (s *Sensor) reportAfter(failed radio.NodeID, loc geom.Point, now sim.Time, grace sim.Duration) {
	if grace <= 0 {
		s.report(failed, loc, now)
		return
	}
	s.reportSeq++
	rep := wire.FailureReport{
		Failed: failed, Loc: loc, Reporter: s.id, DetectedAt: now,
		Seq: s.reportSeq, ReporterLoc: s.pos,
	}
	p := &pendingReport{rep: rep}
	s.pending[rep.Seq] = p
	p.ev = s.sched.After(grace, func() { s.resend(rep.Seq) })
}

// deliverPacket handles routed packets addressed to this sensor. In the
// paper's model sensors are never packet destinations; the reliability
// extension routes report acks back to the reporting guardian.
func (s *Sensor) deliverPacket(p netstack.Packet) {
	if !s.alive {
		return
	}
	if ack, ok := p.Payload.(wire.ReportAck); ok && ack.Reporter == s.id {
		if s.hooks.OnReportAcked != nil {
			s.hooks.OnReportAcked(ack)
		}
		s.ackReport(ack.Seq)
	}
}

// observeRepair cancels retransmission of reports whose failure location
// is seen alive again: a freshly booted replacement announced itself, or a
// beacon arrived from a node at that spot (a blackout false positive
// resurfacing, or an earlier replacement the announce of which was lost).
func (s *Sensor) observeRepair(loc geom.Point) {
	if len(s.pending) == 0 {
		return
	}
	const eps2 = 1e-6 // replacements boot exactly at the failure location
	var done []uint64
	for seq, p := range s.pending {
		if p.rep.Loc.Dist2(loc) <= eps2 {
			done = append(done, seq)
		}
	}
	for _, seq := range done {
		s.clearReport(seq)
	}
}

// expireRobots drops robots unheard for RobotExpiry. A sensor whose report
// target expired re-targets the closest surviving robot it knows.
func (s *Sensor) expireRobots(now sim.Time) {
	deadline := now.Sub(s.cfg.Reliability.RobotExpiry)
	for i := range s.robots {
		tr := &s.robots[i]
		id := radio.NodeID(i)
		if !tr.known || id == s.manager || tr.heard >= deadline {
			continue
		}
		*tr = robotTrack{}
		s.table.Remove(id)
		if s.target == id {
			s.target = 0
		}
	}
	if s.target == 0 {
		if id, loc, ok := s.ClosestKnownRobot(); ok {
			s.SetTarget(id, loc)
		}
	}
}

// adoptManager retargets the sensor at a new manager announced by a
// takeover flood.
func (s *Sensor) adoptManager(t wire.ManagerTakeover, now sim.Time) {
	if t.Manager < 0 {
		return // defensive: a slice-indexed track table cannot hold it
	}
	s.manager = t.Manager
	tr := s.robotSlot(t.Manager) // keep the accepted Seq; takeovers carry none
	tr.loc = t.Loc
	tr.heard = now
	tr.known = true
	if s.pos.Dist(t.Loc) <= s.cfg.Range {
		s.table.Upsert(t.Manager, t.Loc, now)
	}
	s.SetTarget(t.Manager, t.Loc)
}
