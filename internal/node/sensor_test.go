package node

import (
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
	"roborepair/internal/wire"
)

// allowAll is a permissive policy: adopt every robot heard, relay always.
type allowAll struct{}

func (allowAll) Consider(s *Sensor, up wire.RobotUpdate) bool {
	s.SetTarget(up.Robot, up.Loc)
	return true
}
func (allowAll) GuardianOK(_, _ geom.Point) bool { return true }

// neverRelay adopts nothing and never relays.
type neverRelay struct{}

func (neverRelay) Consider(*Sensor, wire.RobotUpdate) bool { return false }
func (neverRelay) GuardianOK(_, _ geom.Point) bool         { return true }

// sameHalf restricts guardians to the same half-plane x<100 / x>=100.
type sameHalf struct{}

func (sameHalf) Consider(*Sensor, wire.RobotUpdate) bool { return false }
func (sameHalf) GuardianOK(a, b geom.Point) bool         { return (a.X < 100) == (b.X < 100) }

// sink is a robot-like station that records packets addressed to it.
type sink struct {
	id      radio.NodeID
	pos     geom.Point
	rng     float64
	packets []netstack.Packet
	frames  []radio.Frame
}

func (s *sink) RadioID() radio.NodeID { return s.id }
func (s *sink) RadioPos() geom.Point  { return s.pos }
func (s *sink) RadioRange() float64   { return s.rng }
func (s *sink) RadioActive() bool     { return true }
func (s *sink) HandleFrame(f radio.Frame) {
	s.frames = append(s.frames, f)
	if p, ok := f.Payload.(netstack.Packet); ok && p.Dst == s.id {
		s.packets = append(s.packets, p)
	}
}

type harness struct {
	sched   *sim.Scheduler
	reg     *metrics.Registry
	medium  *radio.Medium
	sensors []*Sensor
}

func testConfig() Config {
	return Config{
		Range:         63,
		BeaconPeriod:  10,
		MissedBeacons: 3,
		SettleDelay:   5,
		FloodTTL:      32,
	}
}

func newHarness() *harness {
	sched := sim.NewScheduler()
	reg := metrics.NewRegistry()
	return &harness{
		sched:  sched,
		reg:    reg,
		medium: mustMedium(sched, reg, radio.Config{CellSize: 63}),
	}
}

// addSensor creates and boots a sensor at pos with the given policy.
func (h *harness) addSensor(id radio.NodeID, pos geom.Point, policy Policy, hooks Hooks) *Sensor {
	s := NewSensor(id, pos, testConfig(), policy, h.medium, hooks)
	h.sensors = append(h.sensors, s)
	s.Start(0.1, 1, false)
	return s
}

func TestBootAnnouncePopulatesNeighborTables(t *testing.T) {
	h := newHarness()
	a := h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	b := h.addSensor(2, geom.Pt(40, 0), allowAll{}, Hooks{})
	far := h.addSensor(3, geom.Pt(200, 0), allowAll{}, Hooks{})
	h.sched.Run(2)
	if _, ok := a.Table().Get(2); !ok {
		t.Fatal("a did not learn b from its announcement")
	}
	if _, ok := b.Table().Get(1); !ok {
		t.Fatal("b did not learn a")
	}
	if _, ok := far.Table().Get(1); ok {
		t.Fatal("far sensor learned out-of-range node")
	}
}

func TestGuardianSelectionNearestNeighbor(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	h.addSensor(2, geom.Pt(30, 0), allowAll{}, Hooks{})
	near := h.addSensor(3, geom.Pt(10, 0), allowAll{}, Hooks{})
	h.sched.Run(6) // past SettleDelay
	if s.Guardian() != 3 {
		t.Fatalf("guardian = %v, want 3 (nearest)", s.Guardian())
	}
	found := false
	for _, g := range near.Guardees() {
		if g == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("confirmation did not register the guardee")
	}
}

func TestGuardianPolicyFilter(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(95, 0), sameHalf{}, Hooks{})
	h.addSensor(2, geom.Pt(105, 0), sameHalf{}, Hooks{}) // nearest but other half
	h.addSensor(3, geom.Pt(60, 0), sameHalf{}, Hooks{})  // same half
	h.sched.Run(6)
	if s.Guardian() != 3 {
		t.Fatalf("guardian = %v, want 3 (policy-permitted)", s.Guardian())
	}
}

func TestIsolatedSensorHasNoGuardian(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	h.sched.Run(10)
	if s.Guardian() != 0 {
		t.Fatalf("isolated sensor has guardian %v", s.Guardian())
	}
}

func TestGuardianReportsFailedGuardee(t *testing.T) {
	h := newHarness()
	robot := &sink{id: 99, pos: geom.Pt(50, 10), rng: 250}
	h.medium.Attach(robot)
	var sent []wire.FailureReport
	hooks := Hooks{OnReportSent: func(r wire.FailureReport) { sent = append(sent, r) }}
	a := h.addSensor(1, geom.Pt(0, 0), allowAll{}, hooks)
	b := h.addSensor(2, geom.Pt(20, 0), allowAll{}, hooks)
	a.SetTarget(99, robot.pos)
	b.SetTarget(99, robot.pos)
	h.sched.Run(20) // guardians selected, beacons flowing
	b.FailNow()
	h.sched.Run(70) // > 3 beacon periods later
	if len(sent) != 1 {
		t.Fatalf("reports sent = %d, want exactly 1", len(sent))
	}
	if sent[0].Failed != 2 || !sent[0].Loc.Eq(b.Pos()) {
		t.Fatalf("report content wrong: %+v", sent[0])
	}
	if len(robot.packets) != 1 {
		t.Fatalf("robot received %d reports, want 1", len(robot.packets))
	}
	rep, ok := robot.packets[0].Payload.(wire.FailureReport)
	if !ok || rep.Failed != 2 {
		t.Fatalf("delivered payload wrong: %+v", robot.packets[0].Payload)
	}
	// Guardian removed the guardee from its table.
	if _, ok := a.Table().Get(2); ok {
		t.Fatal("failed guardee still in guardian's table")
	}
}

func TestGuardeeReselectsAfterGuardianFailure(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	g1 := h.addSensor(2, geom.Pt(10, 0), allowAll{}, Hooks{})
	h.addSensor(3, geom.Pt(25, 0), allowAll{}, Hooks{})
	h.sched.Run(20)
	if s.Guardian() != 2 {
		t.Fatalf("initial guardian = %v", s.Guardian())
	}
	g1.FailNow()
	h.sched.Run(80)
	if s.Guardian() != 3 {
		t.Fatalf("guardian after failure = %v, want 3", s.Guardian())
	}
}

func TestNoTargetMeansNoReport(t *testing.T) {
	h := newHarness()
	var sent int
	hooks := Hooks{OnReportSent: func(wire.FailureReport) { sent++ }}
	h.addSensor(1, geom.Pt(0, 0), neverRelay{}, hooks)
	b := h.addSensor(2, geom.Pt(20, 0), neverRelay{}, hooks)
	h.sched.Run(20)
	b.FailNow()
	h.sched.Run(80)
	if sent != 0 {
		t.Fatalf("targetless sensor sent %d reports", sent)
	}
}

func TestReplacementAnnouncementTriggersBeacons(t *testing.T) {
	h := newHarness()
	h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	h.addSensor(2, geom.Pt(30, 0), allowAll{}, Hooks{})
	h.sched.Run(20)
	before := h.reg.Tx(metrics.CatReplacement)
	// Boot a replacement node adjacent to both.
	r := NewSensor(50, geom.Pt(15, 0), testConfig(), allowAll{}, h.medium, Hooks{})
	r.Start(0, 1, true)
	h.sched.Run(21)
	// Announce (1) + two neighbor beacons (2) = 3 replacement transmissions.
	if got := h.reg.Tx(metrics.CatReplacement) - before; got != 3 {
		t.Fatalf("replacement transmissions = %d, want 3", got)
	}
	if r.Table().Len() != 2 {
		t.Fatalf("replacement learned %d neighbors, want 2", r.Table().Len())
	}
}

func TestNoteRobotRangeGating(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	h.sched.Run(2)
	// In-range robot announce enters the neighbor table.
	s.HandleFrame(radio.Frame{Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(40, 0), Seq: 1}})
	if _, ok := s.Table().Get(90); !ok {
		t.Fatal("in-range robot not in table")
	}
	// The same robot moving out of range leaves the table but stays known.
	s.HandleFrame(radio.Frame{Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(150, 0), Seq: 2}})
	if _, ok := s.Table().Get(90); ok {
		t.Fatal("out-of-range robot still in table")
	}
	if loc, ok := s.KnowsRobot(90); !ok || !loc.Eq(geom.Pt(150, 0)) {
		t.Fatalf("robot location not tracked: %v %v", loc, ok)
	}
}

func TestTargetLocFollowsTargetRobot(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(0, 0), neverRelay{}, Hooks{})
	s.SetTarget(90, geom.Pt(40, 0))
	h.sched.Run(2)
	s.HandleFrame(radio.Frame{Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(60, 0), Seq: 5}})
	if _, loc := s.Target(); !loc.Eq(geom.Pt(60, 0)) {
		t.Fatalf("targetLoc = %v, want updated", loc)
	}
	// Updates from a different robot do not move the target location.
	s.HandleFrame(radio.Frame{Payload: wire.RobotUpdate{Robot: 91, Loc: geom.Pt(70, 0), Seq: 1}})
	if id, loc := s.Target(); id != 90 || !loc.Eq(geom.Pt(60, 0)) {
		t.Fatalf("target drifted: %v %v", id, loc)
	}
}

func TestClosestKnownRobot(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(0, 0), neverRelay{}, Hooks{})
	if _, _, ok := s.ClosestKnownRobot(); ok {
		t.Fatal("no robots known yet")
	}
	s.HandleFrame(radio.Frame{Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(100, 0), Seq: 1}})
	s.HandleFrame(radio.Frame{Payload: wire.RobotUpdate{Robot: 91, Loc: geom.Pt(50, 0), Seq: 1}})
	id, loc, ok := s.ClosestKnownRobot()
	if !ok || id != 91 || !loc.Eq(geom.Pt(50, 0)) {
		t.Fatalf("ClosestKnownRobot = %v %v %v", id, loc, ok)
	}
}

func TestFloodRelayAndDeduplication(t *testing.T) {
	h := newHarness()
	// Chain of sensors 40 m apart; a flood entering at one end must be
	// relayed by each exactly once.
	for i := 0; i < 4; i++ {
		h.addSensor(radio.NodeID(i+1), geom.Pt(float64(i)*40, 0), allowAll{}, Hooks{})
	}
	h.sched.Run(2)
	before := h.reg.Tx(metrics.CatLocUpdate)
	msg := netstack.FloodMsg{
		Origin:   90,
		Seq:      2,
		Category: metrics.CatLocUpdate,
		Payload:  wire.RobotUpdate{Robot: 90, Loc: geom.Pt(0, 0), Seq: 2},
		TTL:      32,
	}
	h.sensors[0].HandleFrame(radio.Frame{Payload: msg})
	relays := h.reg.Tx(metrics.CatLocUpdate) - before
	if relays != 4 {
		t.Fatalf("relays = %d, want 4 (each sensor exactly once)", relays)
	}
	// Re-injecting the same flood instance produces no new relays.
	h.sensors[0].HandleFrame(radio.Frame{Payload: msg})
	if h.reg.Tx(metrics.CatLocUpdate)-before != 4 {
		t.Fatal("duplicate flood instance was relayed again")
	}
}

func TestFloodTTLBoundsPropagation(t *testing.T) {
	h := newHarness()
	for i := 0; i < 6; i++ {
		h.addSensor(radio.NodeID(i+1), geom.Pt(float64(i)*50, 0), allowAll{}, Hooks{})
	}
	h.sched.Run(2)
	before := h.reg.Tx(metrics.CatLocUpdate)
	h.sensors[0].HandleFrame(radio.Frame{Payload: netstack.FloodMsg{
		Origin:   90,
		Seq:      2,
		Category: metrics.CatLocUpdate,
		Payload:  wire.RobotUpdate{Robot: 90, Loc: geom.Pt(0, 0), Seq: 2},
		TTL:      3,
	}})
	// The first sensor relays with TTL 2, the second with TTL 1; the third
	// receives TTL 1 and must not relay: exactly 2 relay transmissions.
	if got := h.reg.Tx(metrics.CatLocUpdate) - before; got != 2 {
		t.Fatalf("relays = %d, want 2 (TTL-bounded)", got)
	}
}

func TestNeverRelayPolicySuppressesFlood(t *testing.T) {
	h := newHarness()
	for i := 0; i < 3; i++ {
		h.addSensor(radio.NodeID(i+1), geom.Pt(float64(i)*40, 0), neverRelay{}, Hooks{})
	}
	h.sched.Run(2)
	before := h.reg.Tx(metrics.CatLocUpdate)
	h.sensors[0].HandleFrame(radio.Frame{Payload: netstack.FloodMsg{
		Origin: 90, Seq: 2, Category: metrics.CatLocUpdate,
		Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(0, 0), Seq: 2}, TTL: 32,
	}})
	if got := h.reg.Tx(metrics.CatLocUpdate) - before; got != 0 {
		t.Fatalf("relays = %d, want 0", got)
	}
}

func TestDeadSensorIsSilent(t *testing.T) {
	h := newHarness()
	a := h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	b := h.addSensor(2, geom.Pt(30, 0), allowAll{}, Hooks{})
	h.sched.Run(20)
	beforeBeacons := h.reg.Tx(metrics.CatBeacon)
	a.FailNow()
	if a.Alive() {
		t.Fatal("FailNow did not kill")
	}
	a.FailNow() // idempotent
	h.sched.Run(50)
	// Only b beacons now: 3 ticks in (20,50].
	got := h.reg.Tx(metrics.CatBeacon) - beforeBeacons
	if got != 3 {
		t.Fatalf("beacons after death = %d, want 3 (only the live sensor)", got)
	}
	// Dead sensor ignores incoming frames.
	a.HandleFrame(radio.Frame{Payload: wire.Beacon{From: 2, Loc: b.Pos()}})
	if _, ok := a.Table().Get(2); ok {
		// Entry may exist from before death: confirm it is not refreshed.
		n, _ := a.Table().Get(2)
		if n.LastHeard >= 20 {
			t.Fatal("dead sensor processed a frame")
		}
	}
}

func TestStaleNeighborPurgedButRobotRetained(t *testing.T) {
	h := newHarness()
	a := h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	b := h.addSensor(2, geom.Pt(20, 0), allowAll{}, Hooks{})
	h.addSensor(3, geom.Pt(15, 15), allowAll{}, Hooks{}) // a's guardian candidate
	h.sched.Run(12)
	// Robot announce in range: enters the table and the robot registry.
	a.HandleFrame(radio.Frame{Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(30, 0), Seq: 1}})
	b.FailNow()
	h.sched.Run(100)
	if _, ok := a.Table().Get(2); ok {
		t.Fatal("stale dead sensor not purged")
	}
	if _, ok := a.Table().Get(90); !ok {
		t.Fatal("robot was purged from table despite being exempt")
	}
}

// mustMedium builds a medium for a config that cannot fail validation.
func mustMedium(sched *sim.Scheduler, reg *metrics.Registry, cfg radio.Config) *radio.Medium {
	m, err := radio.NewMedium(sched, reg, cfg)
	if err != nil {
		panic(err)
	}
	return m
}
