package node

import (
	"sort"

	"roborepair/internal/checkpoint"
)

// AppendState serializes the sensor's complete dynamic state in canonical
// order (checkpoint section payload). Scheduled-event handles are omitted:
// their (at, seq) stamps live in the kernel section, and a restored run
// rebuilds the closures by deterministic replay.
func (s *Sensor) AppendState(b []byte) []byte {
	b = checkpoint.AppendI64(b, int64(s.id))
	b = checkpoint.AppendF64(b, s.pos.X)
	b = checkpoint.AppendF64(b, s.pos.Y)
	b = checkpoint.AppendBool(b, s.alive)
	b = checkpoint.AppendI64(b, int64(s.guardian))
	b = checkpoint.AppendF64(b, float64(s.lastGuardian))
	b = checkpoint.AppendI64(b, int64(s.target))
	b = checkpoint.AppendF64(b, s.targetLoc.X)
	b = checkpoint.AppendF64(b, s.targetLoc.Y)
	b = checkpoint.AppendU64(b, s.replayRejected)
	b = checkpoint.AppendU64(b, s.reportSeq)
	b = checkpoint.AppendF64(b, float64(s.lastFrameAt))
	b = checkpoint.AppendI64(b, int64(s.manager))

	// Guardees are kept ID-ascending by upsertGuardee.
	b = checkpoint.AppendU32(b, uint32(len(s.guardees)))
	for _, g := range s.guardees {
		b = checkpoint.AppendI64(b, int64(g.id))
		b = checkpoint.AppendF64(b, g.loc.X)
		b = checkpoint.AppendF64(b, g.loc.Y)
		b = checkpoint.AppendF64(b, float64(g.lastHeard))
	}

	// Robot tracks: known entries only, slice index order (ID-ascending).
	known := 0
	for i := range s.robots {
		if s.robots[i].known {
			known++
		}
	}
	b = checkpoint.AppendU32(b, uint32(known))
	for i := range s.robots {
		tr := &s.robots[i]
		if !tr.known {
			continue
		}
		b = checkpoint.AppendI64(b, int64(i))
		b = checkpoint.AppendF64(b, tr.loc.X)
		b = checkpoint.AppendF64(b, tr.loc.Y)
		b = checkpoint.AppendU64(b, tr.seq)
		b = checkpoint.AppendF64(b, float64(tr.heard))
	}

	b = s.table.AppendState(b)
	b = s.flooder.AppendState(b)

	// Pending reports sorted by report sequence.
	seqs := make([]uint64, 0, len(s.pending))
	for seq := range s.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	b = checkpoint.AppendU32(b, uint32(len(seqs)))
	for _, seq := range seqs {
		p := s.pending[seq]
		b = checkpoint.AppendU64(b, seq)
		b = checkpoint.AppendI64(b, int64(p.rep.Failed))
		b = checkpoint.AppendF64(b, p.rep.Loc.X)
		b = checkpoint.AppendF64(b, p.rep.Loc.Y)
		b = checkpoint.AppendI64(b, int64(p.rep.Reporter))
		b = checkpoint.AppendF64(b, p.rep.ReporterLoc.X)
		b = checkpoint.AppendF64(b, p.rep.ReporterLoc.Y)
		b = checkpoint.AppendF64(b, float64(p.rep.DetectedAt))
		b = checkpoint.AppendU32(b, uint32(p.attempts))
		b = checkpoint.AppendBool(b, p.acked)
		b = checkpoint.AppendI64(b, int64(p.target))
	}
	return b
}
