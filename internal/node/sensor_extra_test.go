package node

import (
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/wire"
)

// efficientConfig enables the §4.3.2 relay-set optimization.
func efficientConfig() Config {
	cfg := testConfig()
	cfg.EfficientBroadcast = true
	return cfg
}

func (h *harness) addSensorCfg(id radio.NodeID, pos geom.Point, cfg Config, policy Policy) *Sensor {
	s := NewSensor(id, pos, cfg, policy, h.medium, Hooks{})
	h.sensors = append(h.sensors, s)
	s.Start(0.1, 1, false)
	return s
}

func TestEfficientBroadcastDesignatesRelays(t *testing.T) {
	h := newHarness()
	// A dense cluster: blind flooding would make every sensor relay; with
	// efficient broadcast each relay designates ≤6 forwarders, so relays
	// carry non-nil relay sets.
	for i := 0; i < 12; i++ {
		h.addSensorCfg(radio.NodeID(i+1), geom.Pt(float64(i%4)*20, float64(i/4)*20), efficientConfig(), allowAll{})
	}
	h.sched.Run(2)
	var sawDesignated bool
	probe := &sink{id: 99, pos: geom.Pt(30, 20), rng: 250}
	h.medium.Attach(probe)
	h.sensors[0].HandleFrame(radio.Frame{Payload: netstack.FloodMsg{
		Origin: 90, Seq: 2, Category: metrics.CatLocUpdate,
		Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(0, 0), Seq: 2}, TTL: 32,
	}})
	for _, f := range probe.frames {
		if m, ok := f.Payload.(netstack.FloodMsg); ok && m.Relays != nil {
			sawDesignated = true
			if len(m.Relays) > 6 {
				t.Fatalf("relay set too large: %v", m.Relays)
			}
		}
	}
	if !sawDesignated {
		t.Fatal("no relayed flood carried a designated relay set")
	}
}

func TestEfficientBroadcastReducesRelays(t *testing.T) {
	run := func(cfg Config) uint64 {
		h := newHarness()
		// 5×5 dense grid, 25 m pitch: well within one another's range.
		id := radio.NodeID(1)
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				h.addSensorCfg(id, geom.Pt(float64(x)*25, float64(y)*25), cfg, allowAll{})
				id++
			}
		}
		h.sched.Run(2)
		before := h.reg.Tx(metrics.CatLocUpdate)
		h.sensors[0].HandleFrame(radio.Frame{Payload: netstack.FloodMsg{
			Origin: 90, Seq: 2, Category: metrics.CatLocUpdate,
			Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(0, 0), Seq: 2}, TTL: 32,
		}})
		return h.reg.Tx(metrics.CatLocUpdate) - before
	}
	blind := run(testConfig())
	efficient := run(efficientConfig())
	if efficient >= blind {
		t.Fatalf("efficient broadcast used %d relays, blind %d", efficient, blind)
	}
	if efficient == 0 {
		t.Fatal("efficient broadcast relayed nothing")
	}
}

func TestEfficientBroadcastPreservesReach(t *testing.T) {
	// A chain with branches: the designated relays must still deliver the
	// update to the far end of the network.
	h := newHarness()
	var last *Sensor
	for i := 0; i < 8; i++ {
		last = h.addSensorCfg(radio.NodeID(i+1), geom.Pt(float64(i)*40, 0), efficientConfig(), allowAll{})
	}
	h.sched.Run(2)
	h.sensors[0].HandleFrame(radio.Frame{Payload: netstack.FloodMsg{
		Origin: 90, Seq: 2, Category: metrics.CatLocUpdate,
		Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(0, 0), Seq: 2}, TTL: 32,
	}})
	if _, ok := last.KnowsRobot(90); !ok {
		t.Fatal("efficient broadcast failed to reach the chain's end")
	}
}

func TestNonDesignatedSensorDoesNotRelay(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(0, 0), allowAll{}, Hooks{})
	h.addSensor(2, geom.Pt(30, 0), allowAll{}, Hooks{})
	h.sched.Run(2)
	before := h.reg.Tx(metrics.CatLocUpdate)
	// Relay set names only sensor 2: sensor 1 must stay silent.
	s.HandleFrame(radio.Frame{Payload: netstack.FloodMsg{
		Origin: 90, Seq: 2, Category: metrics.CatLocUpdate,
		Payload: wire.RobotUpdate{Robot: 90, Loc: geom.Pt(0, 0), Seq: 2},
		TTL:     32,
		Relays:  []radio.NodeID{2},
	}})
	if got := h.reg.Tx(metrics.CatLocUpdate) - before; got != 0 {
		t.Fatalf("non-designated sensor relayed (%d tx)", got)
	}
	// But it still learns the robot's location (receive ≠ relay).
	if _, ok := s.KnowsRobot(90); !ok {
		t.Fatal("non-designated sensor dropped the payload")
	}
}

// twoRobotDynamic mimics the dynamic policy: adopt the closest known
// robot, relay on adopt or abandon.
type twoRobotDynamic struct{}

func (twoRobotDynamic) Consider(s *Sensor, up wire.RobotUpdate) bool {
	prev, _ := s.Target()
	best, bestLoc, ok := s.ClosestKnownRobot()
	if !ok {
		return false
	}
	s.SetTarget(best, bestLoc)
	return best == up.Robot || prev == up.Robot
}
func (twoRobotDynamic) GuardianOK(_, _ geom.Point) bool { return true }

func TestDynamicTargetSwitchesAsRobotsMove(t *testing.T) {
	h := newHarness()
	s := h.addSensor(1, geom.Pt(0, 0), twoRobotDynamic{}, Hooks{})
	h.sched.Run(2)
	flood := func(robot radio.NodeID, loc geom.Point, seq uint64) {
		s.HandleFrame(radio.Frame{Payload: netstack.FloodMsg{
			Origin: robot, Seq: seq, Category: metrics.CatLocUpdate,
			Payload: wire.RobotUpdate{Robot: robot, Loc: loc, Seq: seq}, TTL: 32,
		}})
	}
	flood(90, geom.Pt(100, 0), 1)
	if id, _ := s.Target(); id != 90 {
		t.Fatalf("target = %v, want 90", id)
	}
	flood(91, geom.Pt(60, 0), 1)
	if id, _ := s.Target(); id != 91 {
		t.Fatalf("target = %v, want 91 after closer robot", id)
	}
	// Robot 91 wanders away; on its next update the sensor switches back
	// to 90 (stale-known at 100 m but now closest).
	flood(91, geom.Pt(300, 0), 2)
	if id, _ := s.Target(); id != 90 {
		t.Fatalf("target = %v, want 90 after 91 left", id)
	}
}
