// Package coverage estimates sensing coverage — the fraction of the field
// within sensing range of at least one alive sensor. Maintaining coverage
// is the paper's stated purpose ("some nodes may fail and leave holes in
// coverage ... One way of maintaining the coverage is to replace failed
// nodes"); this package quantifies how well each coordination algorithm
// actually preserves it over time.
package coverage

import (
	"math"

	"roborepair/internal/geom"
)

// Estimator measures covered area fraction on a regular probe grid. The
// grid resolution bounds the estimate's granularity; 1–2 probes per
// sensing radius is plenty for trend tracking.
type Estimator struct {
	bounds geom.Rect
	radius float64
	cols   int
	rows   int
	dx, dy float64
}

// NewEstimator probes the bounds on a cols×rows grid against the given
// sensing radius. Dimensions are clamped to at least 1.
func NewEstimator(bounds geom.Rect, sensingRadius float64, cols, rows int) *Estimator {
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Estimator{
		bounds: bounds,
		radius: sensingRadius,
		cols:   cols,
		rows:   rows,
		dx:     bounds.Width() / float64(cols),
		dy:     bounds.Height() / float64(rows),
	}
}

// Probes reports the number of grid probes.
func (e *Estimator) Probes() int { return e.cols * e.rows }

// Fraction returns the fraction of probe points within the sensing radius
// of at least one of the given sensor positions, using a coarse spatial
// bucket index so the cost is O(probes + sensors) rather than their
// product.
func (e *Estimator) Fraction(sensors []geom.Point) float64 {
	if len(sensors) == 0 {
		return 0
	}
	// Bucket sensors by probe-grid-aligned cells of size ≥ radius so a
	// probe only needs its 3×3 cell neighborhood.
	cell := math.Max(e.radius, 1e-9)
	type key struct{ cx, cy int }
	buckets := make(map[key][]geom.Point, len(sensors))
	for _, s := range sensors {
		k := key{int(math.Floor(s.X / cell)), int(math.Floor(s.Y / cell))}
		buckets[k] = append(buckets[k], s)
	}
	r2 := e.radius * e.radius
	covered := 0
	for i := 0; i < e.cols; i++ {
		for j := 0; j < e.rows; j++ {
			p := geom.Pt(
				e.bounds.Min.X+(float64(i)+0.5)*e.dx,
				e.bounds.Min.Y+(float64(j)+0.5)*e.dy,
			)
			k := key{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
			hit := false
		scan:
			for cx := k.cx - 1; cx <= k.cx+1; cx++ {
				for cy := k.cy - 1; cy <= k.cy+1; cy++ {
					for _, s := range buckets[key{cx, cy}] {
						if p.Dist2(s) <= r2 {
							hit = true
							break scan
						}
					}
				}
			}
			if hit {
				covered++
			}
		}
	}
	return float64(covered) / float64(e.Probes())
}

// HoleCount returns the number of connected uncovered probe regions
// (4-connectivity) — a rough count of coverage holes.
func (e *Estimator) HoleCount(sensors []geom.Point) int {
	r2 := e.radius * e.radius
	uncovered := make([]bool, e.cols*e.rows)
	for i := 0; i < e.cols; i++ {
		for j := 0; j < e.rows; j++ {
			p := geom.Pt(
				e.bounds.Min.X+(float64(i)+0.5)*e.dx,
				e.bounds.Min.Y+(float64(j)+0.5)*e.dy,
			)
			hit := false
			for _, s := range sensors {
				if p.Dist2(s) <= r2 {
					hit = true
					break
				}
			}
			uncovered[j*e.cols+i] = !hit
		}
	}
	// Flood-fill count of uncovered components.
	seen := make([]bool, len(uncovered))
	var stack []int
	holes := 0
	for start, u := range uncovered {
		if !u || seen[start] {
			continue
		}
		holes++
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			i, j := idx%e.cols, idx/e.cols
			for _, n := range [][2]int{{i - 1, j}, {i + 1, j}, {i, j - 1}, {i, j + 1}} {
				ni, nj := n[0], n[1]
				if ni < 0 || ni >= e.cols || nj < 0 || nj >= e.rows {
					continue
				}
				nidx := nj*e.cols + ni
				if uncovered[nidx] && !seen[nidx] {
					seen[nidx] = true
					stack = append(stack, nidx)
				}
			}
		}
	}
	return holes
}

// ExpectedFraction returns the Poisson-process prediction of covered
// fraction for n sensors with the given sensing radius uniformly deployed
// over area: 1 − exp(−n·π·r²/area). Used to sanity-check the estimator.
func ExpectedFraction(n int, radius, area float64) float64 {
	if area <= 0 {
		return 0
	}
	return 1 - math.Exp(-float64(n)*math.Pi*radius*radius/area)
}
