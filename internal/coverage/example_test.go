package coverage_test

import (
	"fmt"

	"roborepair/internal/coverage"
	"roborepair/internal/geom"
)

// Estimate how much of a field a handful of sensors cover.
func ExampleEstimator_Fraction() {
	field := geom.Square(geom.Pt(0, 0), 100)
	est := coverage.NewEstimator(field, 60, 50, 50)
	sensors := []geom.Point{geom.Pt(50, 50)}
	frac := est.Fraction(sensors)
	fmt.Printf("one central sensor with r=60 covers most of the field: %v\n", frac > 0.8)

	fmt.Printf("empty field covers nothing: %v\n", est.Fraction(nil) == 0)
	// Output:
	// one central sensor with r=60 covers most of the field: true
	// empty field covers nothing: true
}

// The Poisson model predicts the covered fraction of a random deployment.
func ExampleExpectedFraction() {
	// 200 sensors with 20 m sensing radius over 400 m × 400 m.
	f := coverage.ExpectedFraction(200, 20, 400*400)
	fmt.Printf("%.2f\n", f)
	// Output:
	// 0.79
}
