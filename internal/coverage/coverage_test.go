package coverage

import (
	"math"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/rng"
)

func TestFractionEmpty(t *testing.T) {
	e := NewEstimator(geom.Square(geom.Pt(0, 0), 100), 20, 10, 10)
	if got := e.Fraction(nil); got != 0 {
		t.Fatalf("empty coverage = %v", got)
	}
}

func TestFractionFullyCovered(t *testing.T) {
	e := NewEstimator(geom.Square(geom.Pt(0, 0), 100), 200, 10, 10)
	if got := e.Fraction([]geom.Point{geom.Pt(50, 50)}); got != 1 {
		t.Fatalf("one giant sensor should cover everything: %v", got)
	}
}

func TestFractionHalfField(t *testing.T) {
	// A column of sensors along x=25 with radius 25 covers roughly the
	// left half of a 100-wide field.
	var sensors []geom.Point
	for y := 0.0; y <= 100; y += 10 {
		sensors = append(sensors, geom.Pt(25, y))
	}
	e := NewEstimator(geom.Square(geom.Pt(0, 0), 100), 25, 50, 50)
	got := e.Fraction(sensors)
	if got < 0.4 || got > 0.6 {
		t.Fatalf("half-field coverage = %v, want ≈0.5", got)
	}
}

func TestFractionMatchesPoissonModel(t *testing.T) {
	r := rng.New(1)
	const side = 400.0
	const n = 200
	const radius = 20.0
	sensors := make([]geom.Point, n)
	for i := range sensors {
		sensors[i] = geom.Pt(r.Uniform(0, side), r.Uniform(0, side))
	}
	e := NewEstimator(geom.Square(geom.Pt(0, 0), side), radius, 100, 100)
	got := e.Fraction(sensors)
	want := ExpectedFraction(n, radius, side*side)
	if math.Abs(got-want) > 0.06 {
		t.Fatalf("coverage %v vs Poisson model %v", got, want)
	}
}

func TestEstimatorClampsDimensions(t *testing.T) {
	e := NewEstimator(geom.Square(geom.Pt(0, 0), 10), 5, 0, -2)
	if e.Probes() != 1 {
		t.Fatalf("probes = %d, want 1", e.Probes())
	}
}

func TestHoleCountNoSensors(t *testing.T) {
	e := NewEstimator(geom.Square(geom.Pt(0, 0), 100), 10, 10, 10)
	if got := e.HoleCount(nil); got != 1 {
		t.Fatalf("empty field should be one giant hole, got %d", got)
	}
}

func TestHoleCountFullCoverage(t *testing.T) {
	e := NewEstimator(geom.Square(geom.Pt(0, 0), 100), 200, 10, 10)
	if got := e.HoleCount([]geom.Point{geom.Pt(50, 50)}); got != 0 {
		t.Fatalf("covered field holes = %d", got)
	}
}

func TestHoleCountTwoDistinctHoles(t *testing.T) {
	// Cover everything except two far-apart corners.
	var sensors []geom.Point
	for x := 0.0; x <= 100; x += 8 {
		for y := 0.0; y <= 100; y += 8 {
			corner1 := x < 25 && y < 25
			corner2 := x > 75 && y > 75
			if !corner1 && !corner2 {
				sensors = append(sensors, geom.Pt(x, y))
			}
		}
	}
	e := NewEstimator(geom.Square(geom.Pt(0, 0), 100), 9, 25, 25)
	got := e.HoleCount(sensors)
	if got != 2 {
		t.Fatalf("holes = %d, want 2", got)
	}
}

func TestExpectedFractionProperties(t *testing.T) {
	if ExpectedFraction(0, 20, 100) != 0 {
		t.Fatal("no sensors should cover nothing")
	}
	if ExpectedFraction(100, 20, 0) != 0 {
		t.Fatal("degenerate area should be 0")
	}
	// More sensors → more coverage, asymptotically 1.
	a := ExpectedFraction(10, 20, 1e5)
	b := ExpectedFraction(100, 20, 1e5)
	if b <= a || b > 1 {
		t.Fatalf("monotonicity broken: %v, %v", a, b)
	}
}

func BenchmarkFraction800Sensors(b *testing.B) {
	r := rng.New(1)
	sensors := make([]geom.Point, 800)
	for i := range sensors {
		sensors[i] = geom.Pt(r.Uniform(0, 800), r.Uniform(0, 800))
	}
	e := NewEstimator(geom.Square(geom.Pt(0, 0), 800), 20, 80, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Fraction(sensors)
	}
}
