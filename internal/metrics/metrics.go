// Package metrics collects the two overhead families the paper evaluates:
// transmission counts by traffic category (messaging overhead) and sample
// accumulators for distances and hop counts (motion overhead, routing
// stretch). A single Registry is threaded through the simulator so every
// radio transmission and robot movement is accounted exactly once.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Traffic categories used across the simulator. Categories are open-ended
// strings; these constants cover the paper's taxonomy (§4.3.2): initial
// setup, failure detection beacons, failure reports, repair requests, and
// robot location updates.
const (
	CatInit          = "init"
	CatBeacon        = "beacon"
	CatFailureReport = "failure_report"
	CatRepairRequest = "repair_request"
	CatLocUpdate     = "location_update"
	CatReplacement   = "replacement"
)

// Reliability-extension traffic categories (all zero in the paper's
// fire-and-forget model). Retransmitted reports get their own category so
// the paper's failure_report counts stay comparable to the figures.
const (
	CatReportRetx = "failure_report_retx"
	CatAck        = "ack"
	CatTakeover   = "manager_takeover"
)

// CatRelocate is the facility-location family's standby-relocation
// command traffic (zero for the paper's three algorithms).
const CatRelocate = "relocate"

// Sample series names recorded by the runner.
const (
	SeriesTravelPerFailure = "travel_per_failure_m"
	SeriesReportHops       = "report_hops"
	SeriesRequestHops      = "request_hops"
	SeriesRepairDelay      = "repair_delay_s"
	SeriesQueueLength      = "queue_length"
	SeriesCoverage         = "coverage_fraction"
	// SeriesStrandedTasks samples the number of tasks stranded at each
	// robot failure; SeriesFaultRecovery samples the time from an injected
	// fault to the point the system absorbed it (backlog drained or a new
	// manager elected).
	SeriesStrandedTasks = "stranded_tasks"
	SeriesFaultRecovery = "fault_recovery_s"
)

// Accumulator ingests a stream of float64 samples and exposes summary
// statistics. The zero value is ready to use.
type Accumulator struct {
	n        int
	sum      float64
	sumSq    float64
	min, max float64
}

// Add ingests one sample.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	a.sum += x
	a.sumSq += x * x
}

// N reports the number of samples.
func (a *Accumulator) N() int { return a.n }

// Sum reports the total of all samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean reports the sample mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Var reports the unbiased sample variance, or 0 with fewer than two
// samples.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := (a.sumSq - float64(a.n)*m*m) / float64(a.n-1)
	if v < 0 {
		return 0 // numerical floor
	}
	return v
}

// StdDev reports the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Var()) }

// CI95 reports the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Min reports the smallest sample, or 0 with no samples.
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the largest sample, or 0 with no samples.
func (a *Accumulator) Max() float64 { return a.max }

// String summarizes the accumulator.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// Counter is an interned transmission counter: a stable handle into a
// Registry that increments without any map lookup. Obtain one with
// Registry.Counter and keep it for the life of the run.
type Counter struct {
	n uint64
}

// Add records n transmissions on the counter.
func (c *Counter) Add(n uint64) { c.n += n }

// Value reports the recorded transmission count.
func (c *Counter) Value() uint64 { return c.n }

// knownIdx maps the paper's traffic taxonomy to pre-interned counter
// slots. The switch compiles to a length-bucketed compare tree — no hash,
// no map — which makes CountTx on the hot radio path a pointer increment.
func knownIdx(category string) int {
	switch category {
	case CatInit:
		return 0
	case CatBeacon:
		return 1
	case CatFailureReport:
		return 2
	case CatRepairRequest:
		return 3
	case CatLocUpdate:
		return 4
	case CatReplacement:
		return 5
	case CatReportRetx:
		return 6
	case CatAck:
		return 7
	case CatTakeover:
		return 8
	}
	return -1
}

var knownCategories = [...]string{
	CatInit, CatBeacon, CatFailureReport,
	CatRepairRequest, CatLocUpdate, CatReplacement,
	CatReportRetx, CatAck, CatTakeover,
}

// Registry aggregates transmission counters and sample series for one
// simulation run. It is not safe for concurrent use (the simulation is
// single-threaded).
type Registry struct {
	known   [len(knownCategories)]Counter // pre-interned paper categories
	tx      map[string]*Counter           // open-ended categories only
	samples map[string]*Accumulator
	hists   map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		tx:      make(map[string]*Counter),
		samples: make(map[string]*Accumulator),
	}
}

// Counter returns the stable counter handle for a category, creating it on
// first use. The paper's six categories resolve without touching the map.
func (r *Registry) Counter(category string) *Counter {
	if i := knownIdx(category); i >= 0 {
		return &r.known[i]
	}
	c, ok := r.tx[category]
	if !ok {
		c = &Counter{}
		r.tx[category] = c
	}
	return c
}

// CountTx records n wireless transmissions in the given category.
func (r *Registry) CountTx(category string, n uint64) {
	r.Counter(category).n += n
}

// Tx reports the number of transmissions recorded for a category.
func (r *Registry) Tx(category string) uint64 {
	if i := knownIdx(category); i >= 0 {
		return r.known[i].n
	}
	if c, ok := r.tx[category]; ok {
		return c.n
	}
	return 0
}

// TotalTx reports transmissions across all categories.
func (r *Registry) TotalTx() uint64 {
	var total uint64
	for i := range r.known {
		total += r.known[i].n
	}
	for _, c := range r.tx {
		total += c.n
	}
	return total
}

// Categories lists the categories with at least one recorded
// transmission, sorted. (A category whose counter handle exists but was
// never incremented is not listed.)
func (r *Registry) Categories() []string {
	out := make([]string, 0, len(r.tx)+len(knownCategories))
	for i, name := range knownCategories {
		if r.known[i].n > 0 {
			out = append(out, name)
		}
	}
	for k, c := range r.tx {
		if c.n > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Observe adds a sample to the named series, creating it on first use.
func (r *Registry) Observe(series string, x float64) {
	acc, ok := r.samples[series]
	if !ok {
		acc = &Accumulator{}
		r.samples[series] = acc
	}
	acc.Add(x)
}

// Series returns the accumulator for a series. It always returns a usable
// accumulator; for unknown series it is empty.
func (r *Registry) Series(series string) *Accumulator {
	if acc, ok := r.samples[series]; ok {
		return acc
	}
	return &Accumulator{}
}

// SeriesNames lists all recorded series, sorted.
func (r *Registry) SeriesNames() []string {
	out := make([]string, 0, len(r.samples))
	for k := range r.samples {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump renders every counter and series as an aligned text block, useful
// for CLI output and debugging.
func (r *Registry) Dump() string {
	var b strings.Builder
	b.WriteString("transmissions:\n")
	for _, c := range r.Categories() {
		fmt.Fprintf(&b, "  %-18s %d\n", c, r.Tx(c))
	}
	b.WriteString("series:\n")
	for _, s := range r.SeriesNames() {
		fmt.Fprintf(&b, "  %-24s %s\n", s, r.samples[s])
	}
	return b.String()
}
