package metrics

import (
	"sort"

	"roborepair/internal/checkpoint"
)

// AppendState serializes the registry's complete dynamic state in
// canonical order (checkpoint section payload). Known counters come first
// in their fixed slot order; open-ended counters, sample series, and
// histograms follow sorted by name, so two registries with identical
// content serialize identically whatever their insertion history.
func (r *Registry) AppendState(b []byte) []byte {
	for i := range r.known {
		b = checkpoint.AppendU64(b, r.known[i].n)
	}

	names := make([]string, 0, len(r.tx))
	for k := range r.tx {
		names = append(names, k)
	}
	sort.Strings(names)
	b = checkpoint.AppendU32(b, uint32(len(names)))
	for _, k := range names {
		b = checkpoint.AppendString(b, k)
		b = checkpoint.AppendU64(b, r.tx[k].n)
	}

	names = names[:0]
	for k := range r.samples {
		names = append(names, k)
	}
	sort.Strings(names)
	b = checkpoint.AppendU32(b, uint32(len(names)))
	for _, k := range names {
		b = checkpoint.AppendString(b, k)
		b = appendAccumulator(b, r.samples[k])
	}

	names = names[:0]
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	b = checkpoint.AppendU32(b, uint32(len(names)))
	for _, k := range names {
		h := r.hists[k]
		b = checkpoint.AppendString(b, k)
		b = checkpoint.AppendF64(b, h.width)
		b = checkpoint.AppendU32(b, uint32(len(h.counts)))
		for _, c := range h.counts {
			b = checkpoint.AppendU64(b, c)
		}
		b = checkpoint.AppendU64(b, h.overflow)
		b = appendAccumulator(b, &h.acc)
	}
	return b
}

func appendAccumulator(b []byte, a *Accumulator) []byte {
	b = checkpoint.AppendI64(b, int64(a.n))
	b = checkpoint.AppendF64(b, a.sum)
	b = checkpoint.AppendF64(b, a.sumSq)
	b = checkpoint.AppendF64(b, a.min)
	b = checkpoint.AppendF64(b, a.max)
	return b
}
