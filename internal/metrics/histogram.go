package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bucket histogram with quantile estimation;
// used for distributional views the mean hides (e.g. the p99 repair delay
// under burst backlogs).
type Histogram struct {
	width    float64
	counts   []uint64
	overflow uint64
	acc      Accumulator
}

// NewHistogram returns a histogram with `buckets` buckets of the given
// width covering [0, width·buckets); larger samples land in overflow.
func NewHistogram(width float64, buckets int) *Histogram {
	if width <= 0 {
		width = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	return &Histogram{width: width, counts: make([]uint64, buckets)}
}

// Add ingests one sample. Negative samples clamp to the first bucket.
func (h *Histogram) Add(x float64) {
	h.acc.Add(x)
	if x < 0 {
		x = 0
	}
	idx := int(x / h.width)
	if idx >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[idx]++
}

// N reports the number of samples.
func (h *Histogram) N() int { return h.acc.N() }

// Mean reports the exact sample mean.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Max reports the exact maximum sample.
func (h *Histogram) Max() float64 { return h.acc.Max() }

// Overflow reports samples beyond the bucketed range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Quantile estimates the q-quantile (0 < q ≤ 1) from the buckets, using
// the bucket upper edge. Overflowed mass reports the observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	n := uint64(h.acc.N())
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.acc.Min()
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return float64(i+1) * h.width
		}
	}
	return h.acc.Max()
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
		h.N(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Sparkline renders the bucket occupancy as a compact bar string (for
// CLI output); empty when no samples.
func (h *Histogram) Sparkline() string {
	if h.N() == 0 {
		return ""
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var max uint64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return ""
	}
	var b strings.Builder
	for _, c := range h.counts {
		idx := int(float64(c) / float64(max) * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// Histogram returns (lazily creating) the named histogram in the
// registry. Width/buckets apply only at creation.
func (r *Registry) Histogram(name string, width float64, buckets int) *Histogram {
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(width, buckets)
		r.hists[name] = h
	}
	return h
}

// Hist returns the named histogram, or nil when absent.
func (r *Registry) Hist(name string) *Histogram {
	return r.hists[name]
}

// HistNames lists all registered histograms, sorted (for exporters).
func (r *Registry) HistNames() []string {
	out := make([]string, 0, len(r.hists))
	for k := range r.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Width reports the fixed bucket width.
func (h *Histogram) Width() float64 { return h.width }

// Buckets reports the number of regular (non-overflow) buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Count reports the occupancy of bucket i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Sum reports the exact sample total.
func (h *Histogram) Sum() float64 { return h.acc.Sum() }
