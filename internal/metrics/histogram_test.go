package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10, 10)
	if h.N() != 0 || h.Quantile(0.5) != 0 || h.Sparkline() != "" {
		t.Fatal("empty histogram misbehaves")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) - 0.5) // one sample per bucket
	}
	if got := h.Quantile(0.5); math.Abs(got-50) > 1 {
		t.Fatalf("p50 = %v, want ≈50", got)
	}
	if got := h.Quantile(0.95); math.Abs(got-95) > 1 {
		t.Fatalf("p95 = %v, want ≈95", got)
	}
	if got := h.Quantile(1); math.Abs(got-100) > 1 {
		t.Fatalf("p100 = %v, want ≈100", got)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Add(5)
	h.Add(1e6)
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	// Quantiles beyond the bucketed mass report the true max.
	if got := h.Quantile(0.99); got != 1e6 {
		t.Fatalf("overflowed quantile = %v, want observed max", got)
	}
	if h.Max() != 1e6 {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Add(-5)
	if h.N() != 1 || h.Overflow() != 0 {
		t.Fatal("negative sample mishandled")
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("quantile of clamped sample = %v, want first bucket edge", got)
	}
}

func TestHistogramDegenerateParams(t *testing.T) {
	h := NewHistogram(0, 0)
	h.Add(0.5)
	if h.N() != 1 {
		t.Fatal("degenerate params broke Add")
	}
}

func TestHistogramSparkline(t *testing.T) {
	h := NewHistogram(1, 5)
	for i := 0; i < 8; i++ {
		h.Add(2.5)
	}
	h.Add(0.5)
	s := []rune(h.Sparkline())
	if len(s) != 5 {
		t.Fatalf("sparkline length = %d", len(s))
	}
	if s[2] != '█' {
		t.Fatalf("modal bucket glyph = %c", s[2])
	}
}

func TestRegistryHistogramLazyCreation(t *testing.T) {
	r := NewRegistry()
	if r.Hist("x") != nil {
		t.Fatal("absent histogram should be nil")
	}
	h := r.Histogram("x", 10, 20)
	h.Add(15)
	if r.Hist("x") != h {
		t.Fatal("histogram not retained")
	}
	// Same name returns the same instance regardless of params.
	if r.Histogram("x", 999, 1) != h {
		t.Fatal("duplicate creation")
	}
}

// Property: the bucket-estimated quantile is within one bucket width above
// the true quantile for in-range data.
func TestPropertyQuantileAccuracy(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(5, 52) // covers 0..260 ≥ max uint8
		var xs []float64
		for _, v := range raw {
			x := float64(v)
			xs = append(xs, x)
			h.Add(x)
		}
		sortFloats(xs)
		for _, q := range []float64{0.25, 0.5, 0.9} {
			idx := int(math.Ceil(q*float64(len(xs)))) - 1
			if idx < 0 {
				idx = 0
			}
			truth := xs[idx]
			est := h.Quantile(q)
			if est < truth-1e-9 || est > truth+5+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
