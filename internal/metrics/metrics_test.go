package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.StdDev() != 0 || a.CI95() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(5)
	if a.N() != 1 || a.Mean() != 5 || a.Min() != 5 || a.Max() != 5 {
		t.Fatalf("single sample stats wrong: %v", a.String())
	}
	if a.Var() != 0 {
		t.Fatal("variance of one sample should be 0")
	}
}

func TestAccumulatorKnownStats(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	// Unbiased sample variance of this classic set is 32/7.
	if math.Abs(a.Var()-32.0/7.0) > 1e-9 {
		t.Fatalf("Var = %v, want %v", a.Var(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Sum() != 40 {
		t.Fatalf("Sum = %v", a.Sum())
	}
}

func TestAccumulatorCI95ShrinksWithN(t *testing.T) {
	var small, large Accumulator
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
}

func TestRegistryTxCounting(t *testing.T) {
	r := NewRegistry()
	r.CountTx(CatBeacon, 3)
	r.CountTx(CatBeacon, 2)
	r.CountTx(CatLocUpdate, 7)
	if r.Tx(CatBeacon) != 5 {
		t.Fatalf("beacon tx = %d", r.Tx(CatBeacon))
	}
	if r.Tx(CatLocUpdate) != 7 {
		t.Fatalf("update tx = %d", r.Tx(CatLocUpdate))
	}
	if r.Tx("unknown") != 0 {
		t.Fatal("unknown category should be 0")
	}
	if r.TotalTx() != 12 {
		t.Fatalf("total = %d", r.TotalTx())
	}
}

func TestRegistryCategoriesSorted(t *testing.T) {
	r := NewRegistry()
	r.CountTx("zebra", 1)
	r.CountTx("alpha", 1)
	r.CountTx("mid", 1)
	got := r.Categories()
	want := []string{"alpha", "mid", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Categories = %v", got)
		}
	}
}

func TestRegistryCounterHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(CatLocUpdate)
	c.Add(3)
	c.Add(2)
	if got := r.Tx(CatLocUpdate); got != 5 {
		t.Fatalf("Tx via handle = %d, want 5", got)
	}
	if r.Counter(CatLocUpdate) != c {
		t.Fatal("Counter handle not stable for known category")
	}
	open := r.Counter("custom")
	open.Add(7)
	if r.Counter("custom") != open {
		t.Fatal("Counter handle not stable for open category")
	}
	if r.Tx("custom") != 7 || r.TotalTx() != 12 {
		t.Fatalf("tx=%d total=%d, want 7/12", r.Tx("custom"), r.TotalTx())
	}
}

// The interned fast path must stay allocation- and map-free for the
// paper's six categories: CountTx is on the per-transmission hot path.
func TestCountTxKnownCategoryDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	allocs := testing.AllocsPerRun(100, func() {
		r.CountTx(CatBeacon, 1)
		r.CountTx(CatLocUpdate, 1)
	})
	if allocs > 0 {
		t.Fatalf("CountTx on known categories allocates %.1f objects, want 0", allocs)
	}
}

func TestRegistryCategoriesIncludeKnownAndOpen(t *testing.T) {
	r := NewRegistry()
	r.CountTx(CatBeacon, 1)
	r.CountTx("zzz_custom", 2)
	got := r.Categories()
	want := []string{CatBeacon, "zzz_custom"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Categories = %v, want %v", got, want)
	}
}

func TestRegistryObserveAndSeries(t *testing.T) {
	r := NewRegistry()
	r.Observe(SeriesReportHops, 2)
	r.Observe(SeriesReportHops, 4)
	acc := r.Series(SeriesReportHops)
	if acc.N() != 2 || acc.Mean() != 3 {
		t.Fatalf("series stats wrong: %v", acc)
	}
	if r.Series("missing").N() != 0 {
		t.Fatal("missing series should be empty, not nil")
	}
}

func TestRegistrySeriesNames(t *testing.T) {
	r := NewRegistry()
	r.Observe("b", 1)
	r.Observe("a", 1)
	names := r.SeriesNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("SeriesNames = %v", names)
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.CountTx(CatFailureReport, 4)
	r.Observe(SeriesTravelPerFailure, 99.5)
	out := r.Dump()
	if !strings.Contains(out, CatFailureReport) || !strings.Contains(out, "99.5") {
		t.Fatalf("Dump missing content:\n%s", out)
	}
}

// Property: the streaming variance matches a two-pass computation.
func TestPropertyVarianceMatchesTwoPass(t *testing.T) {
	prop := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var a Accumulator
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			a.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		want := ss / float64(len(xs)-1)
		return math.Abs(a.Var()-want) < 1e-6*(1+want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: min ≤ mean ≤ max for any non-empty sample set.
func TestPropertyMinMeanMax(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var a Accumulator
		for _, v := range raw {
			a.Add(float64(v))
		}
		return a.Min() <= a.Mean()+1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
