package trace

import (
	"strings"
	"testing"

	"roborepair/internal/geom"
)

func TestDisabledLogIsSafe(t *testing.T) {
	l := New(0)
	l.Record(Event{Kind: KindFailure, Node: 1})
	if l.Enabled() || l.Len() != 0 || l.Count(KindFailure) != 0 {
		t.Fatal("capacity-0 log recorded something")
	}
	var nilLog *Log
	if nilLog.Enabled() || nilLog.Len() != 0 || nilLog.Events() != nil {
		t.Fatal("nil log not safe")
	}
	nilLog.Record(Event{}) // must not panic
	if nilLog.Count(KindFailure) != 0 || nilLog.Dropped() != 0 {
		t.Fatal("nil log counters wrong")
	}
	if nilLog.Render(5) != "" || nilLog.Filter(KindFailure) != nil || nilLog.Chains() != nil {
		t.Fatal("nil log accessors wrong")
	}
}

func TestUnboundedLog(t *testing.T) {
	l := New(-1)
	for i := 0; i < 1000; i++ {
		l.Record(Event{At: 1, Kind: KindFailure, Node: 1})
	}
	if l.Len() != 1000 || l.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
}

func TestBoundedLogEvictsFIFO(t *testing.T) {
	l := New(3)
	for i := 1; i <= 5; i++ {
		l.Record(Event{At: 1, Kind: KindFailure, Node: 1, Actor: 0, Loc: geom.Pt(float64(i), 0)})
	}
	if l.Len() != 3 || l.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
	ev := l.Events()
	if ev[0].Loc.X != 3 || ev[2].Loc.X != 5 {
		t.Fatalf("eviction order wrong: %v", ev)
	}
	// Counts include evicted events.
	if l.Count(KindFailure) != 5 {
		t.Fatalf("Count = %d", l.Count(KindFailure))
	}
}

func TestFilterAndForNode(t *testing.T) {
	l := New(-1)
	l.Record(Event{At: 1, Kind: KindFailure, Node: 7})
	l.Record(Event{At: 2, Kind: KindReportSent, Node: 7, Actor: 3})
	l.Record(Event{At: 3, Kind: KindFailure, Node: 8})
	if got := len(l.Filter(KindFailure)); got != 2 {
		t.Fatalf("failures = %d", got)
	}
	if got := len(l.ForNode(7)); got != 2 {
		t.Fatalf("node-7 events = %d", got)
	}
}

func TestChainReconstruction(t *testing.T) {
	l := New(-1)
	l.Record(Event{At: 100, Kind: KindFailure, Node: 7})
	l.Record(Event{At: 125, Kind: KindReportSent, Node: 7, Actor: 3})
	l.Record(Event{At: 125, Kind: KindDispatch, Node: 7, Actor: 50})
	l.Record(Event{At: 200, Kind: KindReplacement, Node: 7, Actor: 50})
	c, ok := l.ChainFor(7)
	if !ok || !c.Reported || !c.Repaired {
		t.Fatalf("chain = %+v, ok=%v", c, ok)
	}
	if c.DetectionDelay() != 25 {
		t.Fatalf("detection delay = %v", c.DetectionDelay())
	}
	if c.RepairDelay() != 100 {
		t.Fatalf("repair delay = %v", c.RepairDelay())
	}
}

func TestChainUnreportedUnrepaired(t *testing.T) {
	l := New(-1)
	l.Record(Event{At: 100, Kind: KindFailure, Node: 7})
	c, ok := l.ChainFor(7)
	if !ok || c.Reported || c.Repaired {
		t.Fatalf("chain = %+v", c)
	}
	if c.DetectionDelay() != 0 || c.RepairDelay() != 0 {
		t.Fatal("delays of missing stages should be 0")
	}
	if _, ok := l.ChainFor(99); ok {
		t.Fatal("unknown node should have no chain")
	}
}

func TestChainsEnumeratesFailures(t *testing.T) {
	l := New(-1)
	l.Record(Event{At: 1, Kind: KindFailure, Node: 1})
	l.Record(Event{At: 2, Kind: KindFailure, Node: 2})
	l.Record(Event{At: 3, Kind: KindReplacement, Node: 1, Actor: 50})
	chains := l.Chains()
	if len(chains) != 2 {
		t.Fatalf("chains = %d", len(chains))
	}
	if !chains[0].Repaired || chains[1].Repaired {
		t.Fatalf("chain states wrong: %+v", chains)
	}
}

func TestRenderLimits(t *testing.T) {
	l := New(-1)
	for i := 0; i < 10; i++ {
		l.Record(Event{At: 1, Kind: KindLocationUpdate, Node: 5})
	}
	out := l.Render(3)
	if !strings.Contains(out, "7 more events") {
		t.Fatalf("limit marker missing:\n%s", out)
	}
	full := l.Render(0)
	if strings.Count(full, "\n") != 10 {
		t.Fatalf("full render lines = %d", strings.Count(full, "\n"))
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindFailure:         "failure",
		KindReportSent:      "report-sent",
		KindReportDelivered: "report-delivered",
		KindDispatch:        "dispatch",
		KindLocationUpdate:  "location-update",
		KindReplacement:     "replacement",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 12.5, Kind: KindFailure, Node: 7, Actor: 3, Loc: geom.Pt(1, 2)}
	s := e.String()
	if !strings.Contains(s, "failure") || !strings.Contains(s, "n7") {
		t.Fatalf("event string = %q", s)
	}
}
