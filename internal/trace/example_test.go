package trace_test

import (
	"fmt"

	"roborepair/internal/trace"
)

// Reconstruct a failure's lifecycle from recorded events.
func ExampleLog_ChainFor() {
	log := trace.New(-1)
	log.Record(trace.Event{At: 100, Kind: trace.KindFailure, Node: 7})
	log.Record(trace.Event{At: 125, Kind: trace.KindReportSent, Node: 7, Actor: 3})
	log.Record(trace.Event{At: 210, Kind: trace.KindReplacement, Node: 7, Actor: 50})

	c, ok := log.ChainFor(7)
	fmt.Println("found:", ok)
	fmt.Println("detection delay:", c.DetectionDelay())
	fmt.Println("repair delay:", c.RepairDelay())
	// Output:
	// found: true
	// detection delay: 25.000s
	// repair delay: 110.000s
}

// Count events by kind without retaining every record.
func ExampleLog_Count() {
	log := trace.New(2) // tiny ring buffer
	for i := 0; i < 5; i++ {
		log.Record(trace.Event{At: 1, Kind: trace.KindLocationUpdate, Node: 9})
	}
	fmt.Println("retained:", log.Len())
	fmt.Println("counted:", log.Count(trace.KindLocationUpdate))
	// Output:
	// retained: 2
	// counted: 5
}
