// Package trace records the causal chain of every failure: injection →
// guardian detection → report → (dispatch) → robot arrival → replacement.
// The scenario runner feeds it from event hooks; tests use it to assert
// end-to-end causality, and the fieldwatch example renders it for humans.
package trace

import (
	"fmt"
	"strings"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
)

// Kind classifies a traced event.
type Kind int

// Event kinds, in rough causal order of a failure's lifecycle.
const (
	KindFailure Kind = iota + 1
	KindReportSent
	KindReportDelivered
	KindDispatch
	KindLocationUpdate
	KindReplacement
	// Reliability-extension kinds: injected faults and the recovery
	// machinery reacting to them.
	KindRobotFailure // a robot broke down (Node = robot)
	KindTaskStranded // a task died with its robot (Node = failed sensor, Actor = robot)
	KindTaskRequeued // a stranded task moved to a survivor (Node = failed sensor, Actor = new robot)
	KindReportRetx   // a guardian retransmitted an unacked report
	KindRedispatch   // the dispatcher re-issued an outstanding request
	KindManagerCrash // the central manager died
	KindTakeover     // a robot assumed the manager role (Node = new manager)
	KindFault        // an injected environmental fault window opened (loss burst, blackout)
	// Energy-extension kinds (battery layer): resource exhaustion and the
	// graceful-degradation machinery reacting to it.
	KindBatteryDeath // a robot's battery hit zero and it died in place (Node = robot)
	KindRecharge     // a robot finished recharging at the depot (Node = robot)
	KindTaskHandoff  // a low-battery robot handed a task back (Node = failed sensor, Actor = donor robot)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFailure:
		return "failure"
	case KindReportSent:
		return "report-sent"
	case KindReportDelivered:
		return "report-delivered"
	case KindDispatch:
		return "dispatch"
	case KindLocationUpdate:
		return "location-update"
	case KindReplacement:
		return "replacement"
	case KindRobotFailure:
		return "robot-failure"
	case KindTaskStranded:
		return "task-stranded"
	case KindTaskRequeued:
		return "task-requeued"
	case KindReportRetx:
		return "report-retx"
	case KindRedispatch:
		return "redispatch"
	case KindManagerCrash:
		return "manager-crash"
	case KindTakeover:
		return "takeover"
	case KindFault:
		return "fault"
	case KindBatteryDeath:
		return "battery-death"
	case KindRecharge:
		return "recharge"
	case KindTaskHandoff:
		return "task-handoff"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one record in the log.
type Event struct {
	At   sim.Time
	Kind Kind
	// Node is the subject: the failed/replaced sensor, or the robot for
	// location updates.
	Node radio.NodeID
	// Actor is who acted: the reporting guardian, the dispatching
	// manager, the repairing robot.
	Actor radio.NodeID
	Loc   geom.Point
}

// String renders one event line.
func (e Event) String() string {
	return fmt.Sprintf("%10.1fs  %-17s node=%v actor=%v at %v",
		float64(e.At), e.Kind, e.Node, e.Actor, e.Loc)
}

// Log is a bounded event recorder. A zero capacity records nothing (all
// methods stay safe); a negative capacity records without bound.
type Log struct {
	cap     int
	events  []Event
	counts  map[Kind]int
	dropped int
}

// New returns a log holding at most capacity events (FIFO eviction).
// capacity == 0 disables recording; capacity < 0 is unbounded.
func New(capacity int) *Log {
	return &Log{cap: capacity, counts: make(map[Kind]int)}
}

// Enabled reports whether the log records anything.
func (l *Log) Enabled() bool { return l != nil && l.cap != 0 }

// Record appends an event, evicting the oldest when full.
func (l *Log) Record(e Event) {
	if !l.Enabled() {
		return
	}
	l.counts[e.Kind]++
	if l.cap > 0 && len(l.events) >= l.cap {
		copy(l.events, l.events[1:])
		l.events = l.events[:len(l.events)-1]
		l.dropped++
	}
	l.events = append(l.events, e)
}

// Len reports the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Dropped reports how many events were evicted.
func (l *Log) Dropped() int {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Count reports how many events of kind k were recorded (including
// evicted ones).
func (l *Log) Count(k Kind) int {
	if l == nil {
		return 0
	}
	return l.counts[k]
}

// Events returns a copy of the retained events in record order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Filter returns the retained events of kind k.
func (l *Log) Filter(k Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// ForNode returns the retained events whose subject is id — the lifecycle
// of one sensor.
func (l *Log) ForNode(id radio.NodeID) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Node == id {
			out = append(out, e)
		}
	}
	return out
}

// Chain summarizes a failed node's lifecycle: the times of each stage, or
// ok=false if the node's failure is not in the log.
type Chain struct {
	Failed    radio.NodeID
	FailureAt sim.Time
	ReportAt  sim.Time
	RepairAt  sim.Time
	Reported  bool
	Repaired  bool
}

// DetectionDelay is the failure→report latency (0 if unreported).
func (c Chain) DetectionDelay() sim.Duration {
	if !c.Reported {
		return 0
	}
	return c.ReportAt.Sub(c.FailureAt)
}

// RepairDelay is the failure→replacement latency (0 if unrepaired).
func (c Chain) RepairDelay() sim.Duration {
	if !c.Repaired {
		return 0
	}
	return c.RepairAt.Sub(c.FailureAt)
}

// ChainFor reconstructs the lifecycle of one failed node.
func (l *Log) ChainFor(id radio.NodeID) (Chain, bool) {
	c := Chain{Failed: id}
	found := false
	for _, e := range l.ForNode(id) {
		switch e.Kind {
		case KindFailure:
			c.FailureAt = e.At
			found = true
		case KindReportSent:
			if !c.Reported {
				c.ReportAt = e.At
				c.Reported = true
			}
		case KindReplacement:
			if !c.Repaired {
				c.RepairAt = e.At
				c.Repaired = true
			}
		}
	}
	return c, found
}

// Chains reconstructs the lifecycle of every failed node in the log.
func (l *Log) Chains() []Chain {
	if l == nil {
		return nil
	}
	var out []Chain
	for _, e := range l.events {
		if e.Kind == KindFailure {
			if c, ok := l.ChainFor(e.Node); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// Render writes the retained events as text, at most limit lines
// (limit ≤ 0 renders everything).
func (l *Log) Render(limit int) string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	for i, e := range l.events {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "… %d more events\n", len(l.events)-i)
			break
		}
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
