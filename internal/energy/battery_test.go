package energy

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewBatteryStartsFull(t *testing.T) {
	b := NewBattery(500)
	if b.RemainingJ != 500 || b.CapacityJ != 500 || b.SpentJ != 0 || b.RechargedJ != 0 {
		t.Fatalf("fresh battery: %+v", *b)
	}
	if b.Empty() {
		t.Fatal("fresh battery reports empty")
	}
	if got := b.Fraction(); got != 1 {
		t.Fatalf("fresh Fraction = %v, want 1", got)
	}
}

func TestNewBatteryNegativeCapacity(t *testing.T) {
	b := NewBattery(-5)
	if b.CapacityJ != 0 || b.RemainingJ != 0 {
		t.Fatalf("negative capacity battery: %+v", *b)
	}
	if b.Fraction() != 0 {
		t.Fatalf("zero-capacity Fraction = %v, want 0", b.Fraction())
	}
}

func TestBatteryDrainClampsAtEmpty(t *testing.T) {
	b := NewBattery(100)
	if got := b.Drain(60); got != 60 {
		t.Fatalf("Drain(60) = %v", got)
	}
	if got := b.Drain(60); got != 40 {
		t.Fatalf("over-drain returned %v, want clamped 40", got)
	}
	if !b.Empty() || b.RemainingJ != 0 || b.SpentJ != 100 {
		t.Fatalf("after over-drain: %+v", *b)
	}
	if got := b.Drain(1); got != 0 {
		t.Fatalf("drain of empty pack returned %v", got)
	}
	if got := b.Drain(-3); got != 0 {
		t.Fatal("negative drain must be a no-op")
	}
}

func TestBatteryChargeClampsAtCapacity(t *testing.T) {
	b := NewBattery(100)
	b.Drain(70)
	if got := b.Charge(50); got != 50 {
		t.Fatalf("Charge(50) = %v", got)
	}
	if got := b.Charge(50); got != 20 {
		t.Fatalf("over-charge returned %v, want clamped 20", got)
	}
	if b.RemainingJ != 100 || b.RechargedJ != 70 {
		t.Fatalf("after top-up: %+v", *b)
	}
	if got := b.Charge(1); got != 0 {
		t.Fatalf("charging a full pack returned %v", got)
	}
	if got := b.Charge(-1); got != 0 {
		t.Fatal("negative charge must be a no-op")
	}
}

// TestBatteryLedgerConservation drives a random drain/charge schedule and
// checks the double-entry ledger identity the invariant layer relies on:
// spent + remaining == capacity + recharged.
func TestBatteryLedgerConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBattery(1e5)
	for i := 0; i < 10000; i++ {
		if rng.Intn(3) == 0 {
			b.Charge(rng.Float64() * 500)
		} else {
			b.Drain(rng.Float64() * 300)
		}
	}
	lhs := b.SpentJ + b.RemainingJ
	rhs := b.CapacityJ + b.RechargedJ
	if math.Abs(lhs-rhs) > 1e-6*rhs {
		t.Fatalf("ledger drifted: spent+remaining=%v capacity+recharged=%v", lhs, rhs)
	}
	if b.RemainingJ < 0 || b.RemainingJ > b.CapacityJ {
		t.Fatalf("remaining out of range: %v", b.RemainingJ)
	}
	if f := b.Fraction(); f < 0 || f > 1 {
		t.Fatalf("Fraction out of range: %v", f)
	}
}

// TestMotionPowerEdgeCases pins the degenerate-speed behavior the robot
// layer's lazy accrual depends on: non-positive speed means the platform
// is not translating, so the draw is the idle floor.
func TestMotionPowerEdgeCases(t *testing.T) {
	m := Pioneer3DX()
	for _, v := range []float64{0, -1, -0.001} {
		if got := m.MotionPowerW(v); got != m.IdlePowerW {
			t.Fatalf("MotionPowerW(%v) = %v, want idle %v", v, got, m.IdlePowerW)
		}
	}
	if got := m.MotionPowerW(1); got <= m.IdlePowerW {
		t.Fatalf("MotionPowerW(1) = %v, want > idle", got)
	}
}

// TestMotionEnergyEdgeCases: zero or negative distance and zero or
// negative speed all cost nothing — a leg that does not happen must not
// debit the battery.
func TestMotionEnergyEdgeCases(t *testing.T) {
	m := Pioneer3DX()
	cases := []struct{ dist, v float64 }{
		{0, 1}, {-10, 1}, {100, 0}, {100, -2}, {0, 0}, {-1, -1},
	}
	for _, c := range cases {
		if got := m.MotionEnergyJ(c.dist, c.v); got != 0 {
			t.Fatalf("MotionEnergyJ(%v, %v) = %v, want 0", c.dist, c.v, got)
		}
	}
	if got := m.MotionEnergyJ(100, 1); got <= 0 {
		t.Fatalf("MotionEnergyJ(100, 1) = %v, want > 0", got)
	}
}
