package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPioneer3DXConstants(t *testing.T) {
	m := Pioneer3DX()
	if m.IdlePowerW <= 0 || m.MotionBaseW <= 0 || m.MotionPerSpeedW <= 0 {
		t.Fatalf("non-positive constants: %+v", m)
	}
}

func TestMotionPower(t *testing.T) {
	m := Model{IdlePowerW: 10, MotionBaseW: 5, MotionPerSpeedW: 10}
	if got := m.MotionPowerW(1); got != 25 {
		t.Fatalf("P(1 m/s) = %v, want 25", got)
	}
	if got := m.MotionPowerW(0); got != 10 {
		t.Fatalf("P(0) = %v, want idle power", got)
	}
	if got := m.MotionPowerW(-1); got != 10 {
		t.Fatalf("P(-1) = %v, want idle power", got)
	}
}

func TestMotionEnergy(t *testing.T) {
	m := Model{IdlePowerW: 10, MotionBaseW: 5, MotionPerSpeedW: 10}
	// 100 m at 1 m/s = 100 s at 25 W = 2500 J.
	if got := m.MotionEnergyJ(100, 1); got != 2500 {
		t.Fatalf("E = %v, want 2500", got)
	}
	if m.MotionEnergyJ(0, 1) != 0 || m.MotionEnergyJ(100, 0) != 0 {
		t.Fatal("degenerate inputs should cost nothing")
	}
}

func TestIdleEnergy(t *testing.T) {
	m := Model{IdlePowerW: 13}
	if got := m.IdleEnergyJ(100); got != 1300 {
		t.Fatalf("idle = %v", got)
	}
	if m.IdleEnergyJ(-5) != 0 {
		t.Fatal("negative time should cost nothing")
	}
}

func TestMissionEnergy(t *testing.T) {
	m := Model{IdlePowerW: 10, MotionBaseW: 5, MotionPerSpeedW: 10}
	// 100 s mission, 50 m at 1 m/s: 50 s moving at 25 W + 50 s idle at 10 W.
	want := 50*25.0 + 50*10.0
	if got := m.MissionEnergyJ(50, 1, 100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mission = %v, want %v", got, want)
	}
	// Travel time longer than mission clamps.
	if got := m.MissionEnergyJ(1e6, 1, 100); math.Abs(got-100*25.0) > 1e-9 {
		t.Fatalf("clamped mission = %v, want %v", got, 100*25.0)
	}
	// Zero speed: all idle.
	if got := m.MissionEnergyJ(50, 0, 100); got != 1000 {
		t.Fatalf("zero-speed mission = %v", got)
	}
}

func TestBatteryLife(t *testing.T) {
	m := Model{IdlePowerW: 10, MotionBaseW: 5, MotionPerSpeedW: 10}
	// Pure idle: 10 W → 7.2 MJ lasts 720000 s.
	if got := m.BatteryLifeS(7.2e6, 0, 1, 3600); math.Abs(got-720000) > 1e-6 {
		t.Fatalf("idle battery life = %v", got)
	}
	if m.BatteryLifeS(1000, 0, 1, 0) != 0 {
		t.Fatal("zero mission time should report 0")
	}
	// More travel per mission drains faster.
	slow := m.BatteryLifeS(7.2e6, 100, 1, 3600)
	fast := m.BatteryLifeS(7.2e6, 1000, 1, 3600)
	if fast >= slow {
		t.Fatalf("more travel should shorten life: %v vs %v", fast, slow)
	}
}

// Property: mission energy is monotone in distance (all else equal).
func TestPropertyMissionMonotoneInDistance(t *testing.T) {
	m := Pioneer3DX()
	prop := func(d1, d2 uint16) bool {
		a, b := float64(d1), float64(d2)
		if a > b {
			a, b = b, a
		}
		return m.MissionEnergyJ(a, 1, 1e5) <= m.MissionEnergyJ(b, 1, 1e5)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is never negative.
func TestPropertyEnergyNonNegative(t *testing.T) {
	m := Pioneer3DX()
	prop := func(dist, speed, dur int16) bool {
		return m.MissionEnergyJ(float64(dist), float64(speed), float64(dur)) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRadioModelBasics(t *testing.T) {
	m := RadioModel{TxJ: 2e-3, RxJ: 1e-3, IdleW: 20e-3}
	if got := m.TxEnergyJ(1000); math.Abs(got-2) > 1e-12 {
		t.Fatalf("tx energy = %v", got)
	}
	if got := m.RxEnergyJ(1000, 10); math.Abs(got-10) > 1e-12 {
		t.Fatalf("rx energy = %v", got)
	}
	if got := m.MessagingEnergyJ(1000, 10); math.Abs(got-12) > 1e-12 {
		t.Fatalf("messaging energy = %v", got)
	}
	if m.RxEnergyJ(10, -5) != 0 {
		t.Fatal("negative neighbors should clamp")
	}
}

func TestRadioIdleEnergy(t *testing.T) {
	m := TypicalMote()
	if got := m.IdleEnergyJ(100, 1000); math.Abs(got-100*1000*m.IdleW) > 1e-9 {
		t.Fatalf("idle energy = %v", got)
	}
	if m.IdleEnergyJ(-1, 10) != 0 || m.IdleEnergyJ(10, -1) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestMessagingShare(t *testing.T) {
	m := TypicalMote()
	// No traffic: share 0. No sensors and no traffic: share 0, not NaN.
	if m.MessagingShare(0, 10, 100, 1000) != 0 {
		t.Fatal("no traffic should have zero share")
	}
	if m.MessagingShare(0, 0, 0, 0) != 0 {
		t.Fatal("degenerate share should be 0")
	}
	// Share grows with traffic.
	a := m.MessagingShare(1000, 10, 100, 1000)
	b := m.MessagingShare(100000, 10, 100, 1000)
	if !(a > 0 && b > a && b < 1) {
		t.Fatalf("share not monotone: %v, %v", a, b)
	}
}

func TestTypicalMoteOrdersOfMagnitude(t *testing.T) {
	m := TypicalMote()
	// Reception must cost less than transmission, both in the mJ range.
	if m.RxJ >= m.TxJ {
		t.Fatal("rx should cost less than tx")
	}
	if m.TxJ < 1e-4 || m.TxJ > 1e-1 {
		t.Fatalf("tx energy %v outside mJ range", m.TxJ)
	}
}
