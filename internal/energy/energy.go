// Package energy models the maintenance robots' energy consumption,
// following the measurements of the authors' own Pioneer 3DX case study
// (Mei et al., "A Case Study of Mobile Robot's Energy Consumption and
// Conservation Techniques", ICAR 2005 — reference [9] of the paper).
//
// That study reports that a Pioneer 3DX draws a roughly constant base
// power for its embedded computer and sonar, plus motion power that grows
// about linearly with speed in the robot's 0.2–1.2 m/s operating band.
// The paper's motion-overhead metric (Figure 2) is travel distance; this
// package converts distance and mission time into Joules so the
// energyaware example can report battery-level budgets.
package energy

// Model is a linear robot power model.
type Model struct {
	// IdlePowerW is the power drawn while stationary (embedded computer,
	// sonar, microcontroller), in watts.
	IdlePowerW float64
	// MotionBaseW is the extra constant power while moving, in watts.
	MotionBaseW float64
	// MotionPerSpeedW is the speed-proportional motion power, in watts
	// per (m/s).
	MotionPerSpeedW float64
}

// Pioneer3DX returns model constants fitted to the ICAR 2005 measurements
// (≈13 W hotel load; motion power ≈ 7.4 W + 11.2 W·v).
func Pioneer3DX() Model {
	return Model{
		IdlePowerW:      13.0,
		MotionBaseW:     7.4,
		MotionPerSpeedW: 11.2,
	}
}

// MotionPowerW returns the instantaneous power while moving at speed v
// (m/s), including the hotel load.
func (m Model) MotionPowerW(v float64) float64 {
	if v <= 0 {
		return m.IdlePowerW
	}
	return m.IdlePowerW + m.MotionBaseW + m.MotionPerSpeedW*v
}

// MotionEnergyJ returns the energy to travel dist meters at speed v,
// including the hotel load during the traverse.
func (m Model) MotionEnergyJ(dist, v float64) float64 {
	if dist <= 0 || v <= 0 {
		return 0
	}
	return m.MotionPowerW(v) * (dist / v)
}

// IdleEnergyJ returns the energy drawn while stationary for t seconds.
func (m Model) IdleEnergyJ(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return m.IdlePowerW * t
}

// MissionEnergyJ returns the total energy for a mission of the given
// duration in which the robot traveled dist meters at speed v and was
// otherwise idle.
func (m Model) MissionEnergyJ(dist, v, duration float64) float64 {
	if v <= 0 {
		return m.IdleEnergyJ(duration)
	}
	travelTime := dist / v
	if travelTime > duration {
		travelTime = duration
	}
	return m.MotionEnergyJ(travelTime*v, v) + m.IdleEnergyJ(duration-travelTime)
}

// BatteryLifeS returns how long a battery of capacityJ joules lasts for a
// workload that travels dist meters at speed v per missionS seconds of
// mission time (steady-state duty cycle).
func (m Model) BatteryLifeS(capacityJ, dist, v, missionS float64) float64 {
	if missionS <= 0 {
		return 0
	}
	perMission := m.MissionEnergyJ(dist, v, missionS)
	if perMission <= 0 {
		return 0
	}
	return capacityJ / perMission * missionS
}
