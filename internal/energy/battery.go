package energy

// Battery is a finite energy budget with explicit ledger accounting.
//
// The fields are a double-entry ledger: every joule that leaves the pack
// moves from RemainingJ to SpentJ, and every joule that enters it adds to
// both RemainingJ and RechargedJ. The invariant checker's
// robot/energy-conservation law cross-checks the ledger at the end of a
// run:
//
//	SpentJ + RemainingJ == CapacityJ + RechargedJ   (within float ulps)
//
// RemainingJ and SpentJ are maintained as *independent* accumulators
// rather than deriving one from the other, precisely so that a bug that
// debits one side of the ledger but not the other is observable.
type Battery struct {
	CapacityJ  float64 // pack size; Charge never fills past this
	RemainingJ float64 // energy currently available
	SpentJ     float64 // lifetime energy drawn from the pack
	RechargedJ float64 // lifetime energy put back by recharging
}

// NewBattery returns a full battery of the given capacity.
func NewBattery(capacityJ float64) *Battery {
	if capacityJ < 0 {
		capacityJ = 0
	}
	return &Battery{CapacityJ: capacityJ, RemainingJ: capacityJ}
}

// Drain draws j joules from the pack, clamping at empty. It returns the
// energy actually drawn.
func (b *Battery) Drain(j float64) float64 {
	if j <= 0 {
		return 0
	}
	if j > b.RemainingJ {
		j = b.RemainingJ
	}
	b.RemainingJ -= j
	b.SpentJ += j
	return j
}

// Charge adds j joules to the pack, clamping at capacity. It returns the
// energy actually stored.
func (b *Battery) Charge(j float64) float64 {
	if j <= 0 {
		return 0
	}
	if room := b.CapacityJ - b.RemainingJ; j > room {
		j = room
	}
	if j <= 0 {
		return 0
	}
	b.RemainingJ += j
	b.RechargedJ += j
	return j
}

// Empty reports whether the pack is exhausted.
func (b *Battery) Empty() bool { return b.RemainingJ <= 0 }

// Fraction returns the state of charge in [0, 1].
func (b *Battery) Fraction() float64 {
	if b.CapacityJ <= 0 {
		return 0
	}
	f := b.RemainingJ / b.CapacityJ
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
