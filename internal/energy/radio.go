package energy

// Sensor radio energy model: the paper's messaging-overhead metric
// (Figure 4) counts transmissions because each one costs the static
// sensors battery life — "The messaging overhead is measured as the
// number of wireless transmissions incurred" (§2). This file converts the
// transmission counts the simulator collects into Joules so the
// algorithms' messaging bills can be compared in battery terms.

// RadioModel is a per-operation sensor transceiver energy model.
type RadioModel struct {
	// TxJ is the energy of one frame transmission, in joules.
	TxJ float64
	// RxJ is the energy of one frame reception.
	RxJ float64
	// IdleW is the idle-listening power in watts (radios spend most
	// energy listening, which is why beacon periods are long).
	IdleW float64
}

// TypicalMote returns constants in the range of early-2000s motes
// (CC1000-class radio at ~3 V): ~2.4 mJ to send a 128-byte frame at
// 19.2 kbit/s, ~1.6 mJ to receive one, ~24 mW idle listening.
func TypicalMote() RadioModel {
	return RadioModel{
		TxJ:   2.4e-3,
		RxJ:   1.6e-3,
		IdleW: 24e-3,
	}
}

// TxEnergyJ returns the energy of txCount transmissions.
func (m RadioModel) TxEnergyJ(txCount uint64) float64 {
	return float64(txCount) * m.TxJ
}

// RxEnergyJ estimates total reception energy: each transmission is heard
// by avgNeighbors receivers on average.
func (m RadioModel) RxEnergyJ(txCount uint64, avgNeighbors float64) float64 {
	if avgNeighbors < 0 {
		avgNeighbors = 0
	}
	return float64(txCount) * avgNeighbors * m.RxJ
}

// MessagingEnergyJ returns the total network energy attributable to
// txCount transmissions (send + all receptions).
func (m RadioModel) MessagingEnergyJ(txCount uint64, avgNeighbors float64) float64 {
	return m.TxEnergyJ(txCount) + m.RxEnergyJ(txCount, avgNeighbors)
}

// IdleEnergyJ returns the idle-listening energy of n sensors over a
// duration in seconds.
func (m RadioModel) IdleEnergyJ(n int, duration float64) float64 {
	if n < 0 || duration < 0 {
		return 0
	}
	return float64(n) * m.IdleW * duration
}

// MessagingShare returns the fraction of total sensor radio energy spent
// on messaging rather than idle listening — how much the Figure 4
// differences actually matter for network lifetime.
func (m RadioModel) MessagingShare(txCount uint64, avgNeighbors float64, n int, duration float64) float64 {
	msg := m.MessagingEnergyJ(txCount, avgNeighbors)
	idle := m.IdleEnergyJ(n, duration)
	total := msg + idle
	if total <= 0 {
		return 0
	}
	return msg / total
}
