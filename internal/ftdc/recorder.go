package ftdc

import (
	"fmt"
	"math"

	"roborepair/internal/checkpoint"
)

// Config enables and tunes the flight recorder via
// scenario.Config.Recorder. The zero value disables it entirely: no
// recorder is built, no sampler ticks, and the run's behavior and
// allocations are bit-for-bit those of an unrecorded run.
type Config struct {
	// Enabled switches the recorder on.
	Enabled bool `json:"enabled,omitempty"`
	// SamplePeriodS is the sampling cadence in simulated seconds
	// (default 250, matching the telemetry sampler).
	SamplePeriodS float64 `json:"samplePeriodS,omitempty"`
	// ChunkRows is how many samples accumulate before a chunk is
	// delta-encoded and compressed (default 120; 64 Ki max).
	ChunkRows int `json:"chunkRows,omitempty"`
	// KeepChunks, when positive, retains only the last KeepChunks encoded
	// chunks (plus the still-unencoded tail) — black-box mode, bounding
	// memory for always-on capture. 0 keeps the whole recording.
	KeepChunks int `json:"keepChunks,omitempty"`
}

// WithDefaults fills unset knobs with the documented defaults.
func (c Config) WithDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.SamplePeriodS == 0 {
		c.SamplePeriodS = 250
	}
	if c.ChunkRows == 0 {
		c.ChunkRows = 120
	}
	return c
}

// Validate reports the first invalid field. The zero (disabled) value is
// always valid.
func (c Config) Validate() error {
	if math.IsNaN(c.SamplePeriodS) || math.IsInf(c.SamplePeriodS, 0) || c.SamplePeriodS < 0 {
		return fmt.Errorf("ftdc: sample period %v not a finite non-negative value", c.SamplePeriodS)
	}
	if c.ChunkRows < 0 || c.ChunkRows > maxChunkRows {
		return fmt.Errorf("ftdc: chunk rows %d outside [0, %d]", c.ChunkRows, maxChunkRows)
	}
	if c.KeepChunks < 0 {
		return fmt.Errorf("ftdc: keep chunks %d negative", c.KeepChunks)
	}
	return nil
}

// encodedChunk is one already-framed chunk plus its row count (for
// eviction accounting).
type encodedChunk struct {
	frame []byte
	rows  int
}

// Recorder accumulates fixed-interval samples and encodes them into the
// recording format incrementally. Append is allocation-free in the steady
// state: column buffers are preallocated to the chunk size and the
// DEFLATE writer is built once, so the only per-chunk cost is the encoded
// frame itself (a few hundred bytes every ChunkRows samples).
//
// The recorder is not safe for concurrent use — like the rest of the
// simulator it lives on one goroutine.
type Recorder struct {
	schema    Schema
	header    []byte
	chunkRows int
	keep      int

	cols  [][]float64 // active chunk buffers, cap chunkRows each
	rows  int         // samples in the active chunk
	total int         // samples ever appended

	chunks        []encodedChunk
	evictedChunks int
	evictedRows   int

	enc *chunkEncoder
	err error // first encode failure, sticky (see Err)
}

// NewRecorder builds a recorder for the given schema. cfg's zero knobs
// take their defaults; cfg.Enabled is ignored (constructing a recorder is
// the enable).
func NewRecorder(schema Schema, cfg Config) (*Recorder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Enabled = true
	cfg = cfg.WithDefaults()
	r := &Recorder{
		schema:    schema,
		header:    schema.header(),
		chunkRows: cfg.ChunkRows,
		keep:      cfg.KeepChunks,
		cols:      make([][]float64, len(schema.Cols)),
		enc:       newChunkEncoder(),
	}
	for i := range r.cols {
		r.cols[i] = make([]float64, 0, r.chunkRows)
	}
	return r, nil
}

// Append records one sample. vals must have exactly one value per schema
// column; anything else is a programming error and panics.
func (r *Recorder) Append(vals []float64) {
	if len(vals) != len(r.schema.Cols) {
		panic(fmt.Sprintf("ftdc: Append got %d values for %d columns", len(vals), len(r.schema.Cols)))
	}
	for c, v := range vals {
		r.cols[c] = append(r.cols[c], v)
	}
	r.rows++
	r.total++
	if r.rows >= r.chunkRows {
		r.flush()
	}
}

// flush encodes the active chunk and resets the buffers, evicting the
// oldest retained chunk in black-box mode.
func (r *Recorder) flush() {
	if r.rows == 0 {
		return
	}
	frame, err := r.enc.appendChunk(nil, r.cols, r.rows)
	if err != nil {
		if r.err == nil {
			r.err = err
		}
	} else {
		r.chunks = append(r.chunks, encodedChunk{frame: frame, rows: r.rows})
		if r.keep > 0 && len(r.chunks) > r.keep {
			drop := len(r.chunks) - r.keep
			for _, ch := range r.chunks[:drop] {
				r.evictedChunks++
				r.evictedRows += ch.rows
			}
			copy(r.chunks, r.chunks[drop:])
			r.chunks = r.chunks[:r.keep]
		}
	}
	for c := range r.cols {
		r.cols[c] = r.cols[c][:0]
	}
	r.rows = 0
}

// Schema returns the recorder's schema.
func (r *Recorder) Schema() Schema { return r.schema }

// Rows returns how many samples were ever appended, evicted ones
// included.
func (r *Recorder) Rows() int { return r.total }

// RetainedChunks returns how many encoded chunks are currently held.
func (r *Recorder) RetainedChunks() int { return len(r.chunks) }

// EvictedChunks returns how many encoded chunks black-box retention has
// dropped.
func (r *Recorder) EvictedChunks() int { return r.evictedChunks }

// EvictedRows returns how many samples were dropped with evicted chunks.
func (r *Recorder) EvictedRows() int { return r.evictedRows }

// Err returns the first chunk-encoding failure, if any. A failed chunk is
// dropped from the recording but sampling continues.
func (r *Recorder) Err() error { return r.err }

// Bytes renders the recording: header, retained chunks, and the active
// partial chunk as a final short chunk. The recorder is not perturbed —
// pending samples stay pending and recording can continue.
func (r *Recorder) Bytes() ([]byte, error) {
	if r.err != nil {
		return nil, r.err
	}
	n := len(r.header)
	for _, ch := range r.chunks {
		n += len(ch.frame)
	}
	out := make([]byte, 0, n+64)
	out = append(out, r.header...)
	for _, ch := range r.chunks {
		out = append(out, ch.frame...)
	}
	if r.rows > 0 {
		var err error
		out, err = r.enc.appendChunk(out, r.cols, r.rows)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteFile atomically writes the recording to path (temp file, sync,
// rename — the checkpoint write pattern).
func (r *Recorder) WriteFile(path string) error {
	b, err := r.Bytes()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, b)
}

// AppendState serializes the recorder's dynamic state for the checkpoint
// layer's byte-compare verification: totals, the retained encoded chunks,
// and the pending sample tail. Nil-safe — an absent recorder appends a
// false presence marker, keeping the section comparable across configs.
func (r *Recorder) AppendState(b []byte) []byte {
	if r == nil {
		return checkpoint.AppendBool(b, false)
	}
	b = checkpoint.AppendBool(b, true)
	b = checkpoint.AppendBytes(b, r.header)
	b = checkpoint.AppendU64(b, uint64(r.total))
	b = checkpoint.AppendU32(b, uint32(r.evictedChunks))
	b = checkpoint.AppendU32(b, uint32(r.evictedRows))
	b = checkpoint.AppendU32(b, uint32(len(r.chunks)))
	for _, ch := range r.chunks {
		b = checkpoint.AppendU32(b, uint32(ch.rows))
		b = checkpoint.AppendBytes(b, ch.frame)
	}
	b = checkpoint.AppendU32(b, uint32(r.rows))
	for _, col := range r.cols {
		for _, v := range col {
			b = checkpoint.AppendF64(b, v)
		}
	}
	return b
}
