package ftdc

import (
	"errors"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := &Recording{
		Schema: Schema{Cols: []string{"t_s", "v"}},
		Chunks: []Chunk{{Rows: 2, Cols: [][]float64{{0, 250}, {1, 2.5}}}},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := "t_s,v\n0,1\n250,2.5\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := testRecording()
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE roborepair_t_s gauge",
		"roborepair_t_s 64000",
		"# TYPE roborepair_counter gauge",
		"# TYPE roborepair_flat gauge",
		"roborepair_flat 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var empty strings.Builder
	if err := WritePrometheus(&empty, &Recording{Schema: Schema{Cols: []string{"a"}}}); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty recording produced output %q", empty.String())
	}
}

func TestWriteSummary(t *testing.T) {
	var sb strings.Builder
	if err := WriteSummary(&sb, testRecording()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"4 columns, 257 samples in 3 chunks", "seed=42", "period=250s", "counter", "noise"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestStats(t *testing.T) {
	r := &Recording{
		Schema: Schema{Cols: []string{"v"}},
		Chunks: []Chunk{
			{Rows: 2, Cols: [][]float64{{4, -2}}},
			{Rows: 1, Cols: [][]float64{{10}}},
		},
	}
	st := r.Stats()[0]
	if st.Min != -2 || st.Max != 10 || st.Mean != 4 || st.First != 4 || st.Last != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiff(t *testing.T) {
	a := &Recording{
		Schema: Schema{Cols: []string{"x", "y"}},
		Chunks: []Chunk{{Rows: 3, Cols: [][]float64{{1, 2, 3}, {0, 0, 0}}}},
	}
	if d := Diff(a, a); len(d) != 0 {
		t.Fatalf("self-diff nonempty: %v", d)
	}
	b := &Recording{
		Schema: Schema{Cols: []string{"x", "z"}},
		Chunks: []Chunk{{Rows: 3, Cols: [][]float64{{1, 5, 3}, {0, 0, 0}}}},
	}
	ds := Diff(a, b)
	byName := map[string]ColumnDiff{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["x"]; d.Rows != 1 || d.FirstRow != 1 || d.MaxAbs != 3 {
		t.Fatalf("diff x = %+v", d)
	}
	if d := byName["y"]; d.OnlyIn != "a" {
		t.Fatalf("diff y = %+v", d)
	}
	if d := byName["z"]; d.OnlyIn != "b" {
		t.Fatalf("diff z = %+v", d)
	}
	if !strings.Contains(byName["x"].String(), "1 rows differ") ||
		!strings.Contains(byName["y"].String(), "only in a") {
		t.Fatalf("diff strings: %v / %v", byName["x"], byName["y"])
	}
}

func TestDiffRowCountMismatch(t *testing.T) {
	a := &Recording{
		Schema: Schema{Cols: []string{"x"}},
		Chunks: []Chunk{{Rows: 2, Cols: [][]float64{{1, 2}}}},
	}
	b := &Recording{
		Schema: Schema{Cols: []string{"x"}},
		Chunks: []Chunk{{Rows: 3, Cols: [][]float64{{1, 2, 9}}}},
	}
	ds := Diff(a, b)
	if len(ds) != 1 || ds[0].Name != "(rows)" || ds[0].Rows != 1 {
		t.Fatalf("diff = %v", ds)
	}
}

// shortWriter fails after n bytes, exercising the sticky-error path.
type shortWriter struct{ n int }

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.n <= 0 {
		return 0, errors.New("short write")
	}
	if len(p) > s.n {
		n := s.n
		s.n = 0
		return n, errors.New("short write")
	}
	s.n -= len(p)
	return len(p), nil
}

func TestExportersPropagateWriteErrors(t *testing.T) {
	r := testRecording()
	if err := WriteCSV(&shortWriter{n: 3}, r); err == nil {
		t.Error("WriteCSV swallowed write error")
	}
	if err := WritePrometheus(&shortWriter{n: 3}, r); err == nil {
		t.Error("WritePrometheus swallowed write error")
	}
	if err := WriteSummary(&shortWriter{n: 3}, r); err == nil {
		t.Error("WriteSummary swallowed write error")
	}
}
