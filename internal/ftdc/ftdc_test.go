package ftdc

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testRecording builds a recording exercising both column modes, zero
// runs, multiple chunks, and a short tail chunk.
func testRecording() *Recording {
	schema := Schema{
		Cols:    []string{"t_s", "counter", "flat", "noise"},
		PeriodS: 250,
		Seed:    42,
	}
	mk := func(rows, base int) Chunk {
		ch := Chunk{Rows: rows, Cols: make([][]float64, 4)}
		for c := range ch.Cols {
			ch.Cols[c] = make([]float64, rows)
		}
		for i := 0; i < rows; i++ {
			n := base + i
			ch.Cols[0][i] = float64(n) * 250
			ch.Cols[1][i] = float64(n * n / 7) // smooth counter
			ch.Cols[2][i] = 3                  // constant
			ch.Cols[3][i] = math.Sin(float64(n)) * 1e-3
		}
		return ch
	}
	return &Recording{
		Schema: schema,
		Chunks: []Chunk{mk(120, 0), mk(120, 120), mk(17, 240)},
	}
}

func encodeT(t *testing.T, r *Recording) []byte {
	t.Helper()
	b, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	want := testRecording()
	b := encodeT(t, want)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Schema.PeriodS != want.Schema.PeriodS || got.Schema.Seed != want.Schema.Seed {
		t.Fatalf("schema mismatch: %+v vs %+v", got.Schema, want.Schema)
	}
	if len(got.Chunks) != len(want.Chunks) {
		t.Fatalf("chunks: got %d want %d", len(got.Chunks), len(want.Chunks))
	}
	for i := range want.Chunks {
		for c := range want.Chunks[i].Cols {
			wv, gv := want.Chunks[i].Cols[c], got.Chunks[i].Cols[c]
			for j := range wv {
				if wv[j] != gv[j] {
					t.Fatalf("chunk %d col %d row %d: got %v want %v", i, c, j, gv[j], wv[j])
				}
			}
		}
	}
	re, err := Encode(got)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(re, b) {
		t.Fatal("decoded recording does not re-encode byte-identically")
	}
}

func TestRoundTripFloatEdgeValues(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1.5, math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -2.5e300,
		float64(maxIntAbs), float64(maxIntAbs) * 2, // second forces float mode
	}
	r := &Recording{
		Schema: Schema{Cols: []string{"edge"}},
		Chunks: []Chunk{{Rows: len(vals), Cols: [][]float64{vals}}},
	}
	b := encodeT(t, r)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i, v := range got.Chunks[0].Cols[0] {
		if math.Float64bits(v) != math.Float64bits(vals[i]) {
			t.Fatalf("row %d: got bits %x want %x", i, math.Float64bits(v), math.Float64bits(vals[i]))
		}
	}
	re, _ := Encode(got)
	if !bytes.Equal(re, b) {
		t.Fatal("float edge recording does not re-encode byte-identically")
	}
}

func TestIntModeChosenForIntegralColumns(t *testing.T) {
	// A flat integer column in a 1000-row chunk must compress to a
	// handful of bytes: int mode + zero-RLE + DEFLATE.
	rows := 1000
	col := make([]float64, rows)
	tcol := make([]float64, rows)
	for i := range col {
		col[i] = 7
		tcol[i] = float64(i) * 250
	}
	r := &Recording{
		Schema: Schema{Cols: []string{"t_s", "flat"}},
		Chunks: []Chunk{{Rows: rows, Cols: [][]float64{tcol, col}}},
	}
	b := encodeT(t, r)
	if len(b) > 200 {
		t.Fatalf("1000 flat+ramp samples took %d bytes, want ≤ 200", len(b))
	}
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schema
	}{
		{"no columns", Schema{}},
		{"empty name", Schema{Cols: []string{""}}},
		{"long name", Schema{Cols: []string{strings.Repeat("x", 256)}}},
		{"duplicate", Schema{Cols: []string{"a", "a"}}},
		{"nan period", Schema{Cols: []string{"a"}, PeriodS: math.NaN()}},
		{"negative period", Schema{Cols: []string{"a"}, PeriodS: -1}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
		if _, err := Encode(&Recording{Schema: tc.s}); err == nil {
			t.Errorf("%s: Encode accepted", tc.name)
		}
	}
	ok := Schema{Cols: []string{"a", "b"}, PeriodS: 250, Seed: -1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
}

func TestEncodeRejectsMalformedChunks(t *testing.T) {
	s := Schema{Cols: []string{"a", "b"}}
	cases := []struct {
		name string
		ch   Chunk
	}{
		{"zero rows", Chunk{Rows: 0, Cols: [][]float64{{}, {}}}},
		{"too many rows", Chunk{Rows: maxChunkRows + 1, Cols: [][]float64{{}, {}}}},
		{"column count", Chunk{Rows: 1, Cols: [][]float64{{1}}}},
		{"ragged", Chunk{Rows: 2, Cols: [][]float64{{1, 2}, {1}}}},
	}
	for _, tc := range cases {
		if _, err := Encode(&Recording{Schema: s, Chunks: []Chunk{tc.ch}}); err == nil {
			t.Errorf("%s: Encode accepted", tc.name)
		}
	}
}

// corrupt returns a copy of b with the byte at i XORed with mask.
func corrupt(b []byte, i int, mask byte) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= mask
	return out
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b := encodeT(t, testRecording())
	headerLen := len(testRecording().Schema.header())
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad magic", corrupt(b, 0, 0xff)},
		{"bad version", corrupt(b, 4, 0x04)},
		{"bad ncols", corrupt(b, 6, 0xff)},
		{"flipped name byte", corrupt(b, 26, 0x01)},
		{"flipped hash byte", corrupt(b, headerLen-20, 0x01)},
		{"flipped header crc", corrupt(b, headerLen-1, 0x01)},
		{"flipped chunk length", corrupt(b, headerLen+1, 0x01)},
		{"flipped chunk body", corrupt(b, headerLen+10, 0x01)},
		{"flipped last byte", corrupt(b, len(b)-1, 0x01)},
		{"truncated header", b[:10]},
		{"truncated chunk", b[:headerLen+5]},
		{"trailing byte", append(append([]byte(nil), b...), 0)},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.b); err == nil {
			t.Errorf("%s: Decode accepted", tc.name)
		}
	}
}

func TestDecodeVersionGate(t *testing.T) {
	b := encodeT(t, testRecording())
	bad := append([]byte(nil), b...)
	binary.LittleEndian.PutUint16(bad[4:], Version+1)
	// Recompute nothing: the version flip must fail before any hash check
	// reports plain corruption.
	_, err := Decode(bad)
	if err == nil {
		t.Fatal("decoder accepted future version")
	}
}

// rawChunkFrame frames an already-built body exactly as the encoder
// would, letting tests smuggle non-canonical bodies past the CRC.
func rawChunkFrame(t *testing.T, body []byte) []byte {
	t.Helper()
	enc := newChunkEncoder()
	if err := enc.recompress(body); err != nil {
		t.Fatalf("recompress: %v", err)
	}
	var dst []byte
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(enc.comp.Len()))
	dst = append(dst, enc.comp.Bytes()...)
	return binary.LittleEndian.AppendUint32(dst, checksum(dst))
}

func checksum(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}

func TestDecodeRejectsNonCanonicalBodies(t *testing.T) {
	schema := Schema{Cols: []string{"a"}}
	header := schema.header()
	frame := func(body ...byte) []byte {
		return append(append([]byte(nil), header...), rawChunkFrame(t, body)...)
	}
	nrows := func(n uint32, rest ...byte) []byte {
		return append(binary.LittleEndian.AppendUint32(nil, n), rest...)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		// 1 row, int mode, value 1 encoded with a redundant continuation.
		{"non-minimal varint", frame(nrows(1, colModeInt, 0x82, 0x00)...)},
		// 2 rows, int mode, two separate single-zero runs.
		{"split zero run", frame(nrows(2, colModeInt, 0, 0, 0, 0)...)},
		// 1 row, int mode, zero run longer than the column.
		{"overlong zero run", frame(nrows(1, colModeInt, 0, 1)...)},
		// 1 row, float mode, value +1 — integer-qualified, must be int mode.
		{"float mode for int", frame(nrows(1, colModeFloat, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0xf0, 0x3f)...)},
		// 1 row, int mode, trailing byte inside the body.
		{"body trailing bytes", frame(nrows(1, colModeInt, 0x02, 0x07)...)},
		// unknown column mode
		{"unknown mode", frame(nrows(1, 9, 0x02)...)},
		// zero rows
		{"zero rows", frame(nrows(0)...)},
		// int value beyond 2^53: zigzag(2^53+1)
		{"int overflow", frame(append(nrows(1, colModeInt), binary.AppendUvarint(nil, zigzag(maxIntAbs+1))...)...)},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.b); err == nil {
			t.Errorf("%s: Decode accepted", tc.name)
		}
	}
}

func TestDecodeRejectsNonCanonicalCompression(t *testing.T) {
	// Frame a valid body with stored (level-0) DEFLATE instead of the
	// canonical level: decompresses fine, but is not what Encode emits.
	schema := Schema{Cols: []string{"a"}}
	body := append(binary.LittleEndian.AppendUint32(nil, 1), colModeInt, 0x02)
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.NoCompression)
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(body)
	fw.Close()
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(comp.Len()))
	frame = append(frame, comp.Bytes()...)
	frame = binary.LittleEndian.AppendUint32(frame, checksum(frame))
	b := append(append([]byte(nil), schema.header()...), frame...)
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted non-canonical compression")
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ftdc")
	want := testRecording()
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: got %d want %d", got.NumRows(), want.NumRows())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestRecordingAccessors(t *testing.T) {
	r := testRecording()
	if n := r.NumRows(); n != 257 {
		t.Fatalf("NumRows = %d, want 257", n)
	}
	if i := r.ColumnIndex("counter"); i != 1 {
		t.Fatalf("ColumnIndex(counter) = %d", i)
	}
	if r.Column("nope") != nil {
		t.Fatal("Column(nope) non-nil")
	}
	col := r.Column("t_s")
	if len(col) != 257 || col[0] != 0 || col[256] != 256*250 {
		t.Fatalf("Column(t_s) wrong: len=%d first=%v last=%v", len(col), col[0], col[256])
	}
	rows := 0
	r.EachRow(func(i int, row []float64) {
		if i != rows {
			t.Fatalf("EachRow index %d, want %d", i, rows)
		}
		if row[0] != float64(i)*250 {
			t.Fatalf("row %d t_s = %v", i, row[0])
		}
		rows++
	})
	if rows != 257 {
		t.Fatalf("EachRow visited %d rows", rows)
	}
}
