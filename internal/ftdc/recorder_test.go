package ftdc

import (
	"bytes"
	"path/filepath"
	"testing"
)

func newTestRecorder(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	r, err := NewRecorder(Schema{Cols: []string{"t_s", "count"}, PeriodS: 250, Seed: 7}, cfg)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	return r
}

func appendN(r *Recorder, n, from int) {
	row := make([]float64, 2)
	for i := 0; i < n; i++ {
		row[0] = float64(from+i) * 250
		row[1] = float64((from + i) * 3)
		r.Append(row)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := newTestRecorder(t, Config{ChunkRows: 100})
	appendN(r, 257, 0)
	if r.Rows() != 257 {
		t.Fatalf("Rows = %d", r.Rows())
	}
	if r.RetainedChunks() != 2 {
		t.Fatalf("RetainedChunks = %d, want 2 (57 pending)", r.RetainedChunks())
	}
	b, err := r.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	rec, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if rec.NumRows() != 257 {
		t.Fatalf("decoded rows = %d", rec.NumRows())
	}
	count := rec.Column("count")
	for i, v := range count {
		if v != float64(i*3) {
			t.Fatalf("count[%d] = %v", i, v)
		}
	}
	if rec.Schema.Seed != 7 || rec.Schema.PeriodS != 250 {
		t.Fatalf("schema: %+v", rec.Schema)
	}
}

func TestRecorderBytesIsNonMutating(t *testing.T) {
	r := newTestRecorder(t, Config{ChunkRows: 100})
	appendN(r, 150, 0)
	b1, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two Bytes() calls differ")
	}
	// Recording continues seamlessly after a capture.
	appendN(r, 50, 150)
	b3, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Decode(b3)
	if err != nil {
		t.Fatalf("Decode after continue: %v", err)
	}
	if rec.NumRows() != 200 {
		t.Fatalf("rows after continue = %d", rec.NumRows())
	}
}

func TestRecorderBlackBoxRetention(t *testing.T) {
	r := newTestRecorder(t, Config{ChunkRows: 10, KeepChunks: 3})
	appendN(r, 95, 0)
	if r.RetainedChunks() != 3 {
		t.Fatalf("RetainedChunks = %d, want 3", r.RetainedChunks())
	}
	if r.EvictedChunks() != 6 || r.EvictedRows() != 60 {
		t.Fatalf("evicted %d chunks / %d rows, want 6 / 60", r.EvictedChunks(), r.EvictedRows())
	}
	b, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Last 3 full chunks (rows 60..89) plus the 5 pending samples.
	if rec.NumRows() != 35 {
		t.Fatalf("retained rows = %d, want 35", rec.NumRows())
	}
	ts := rec.Column("t_s")
	if ts[0] != 60*250 || ts[len(ts)-1] != 94*250 {
		t.Fatalf("retained window [%v, %v]", ts[0], ts[len(ts)-1])
	}
}

func TestRecorderAppendStateNilSafe(t *testing.T) {
	var nilRec *Recorder
	if got := nilRec.AppendState(nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("nil AppendState = %v", got)
	}
	r := newTestRecorder(t, Config{ChunkRows: 10})
	s0 := r.AppendState(nil)
	if len(s0) == 0 || s0[0] != 1 {
		t.Fatalf("present marker missing: %v", s0)
	}
	appendN(r, 1, 0)
	s1 := r.AppendState(nil)
	if bytes.Equal(s0, s1) {
		t.Fatal("AppendState unchanged after a sample")
	}
	appendN(r, 10, 1) // cross a chunk boundary
	s2 := r.AppendState(nil)
	if bytes.Equal(s1, s2) {
		t.Fatal("AppendState unchanged after a chunk flush")
	}
}

func TestRecorderAppendArityPanics(t *testing.T) {
	r := newTestRecorder(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong arity did not panic")
		}
	}()
	r.Append([]float64{1})
}

func TestRecorderSteadyStateAllocs(t *testing.T) {
	r := newTestRecorder(t, Config{ChunkRows: maxChunkRows})
	row := []float64{0, 0}
	n := 0
	allocs := testing.AllocsPerRun(10000, func() {
		row[0] = float64(n) * 250
		row[1] = float64(n)
		r.Append(row)
		n++
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %v per op in steady state, want 0", allocs)
	}
}

func TestRecorderWriteFile(t *testing.T) {
	r := newTestRecorder(t, Config{ChunkRows: 10})
	appendN(r, 25, 0)
	path := filepath.Join(t.TempDir(), "rec.ftdc")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	rec, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if rec.NumRows() != 25 {
		t.Fatalf("rows = %d", rec.NumRows())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SamplePeriodS: -1},
		{ChunkRows: -1},
		{ChunkRows: maxChunkRows + 1},
		{KeepChunks: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	d := Config{Enabled: true}.WithDefaults()
	if d.SamplePeriodS != 250 || d.ChunkRows != 120 {
		t.Fatalf("defaults: %+v", d)
	}
	if z := (Config{}).WithDefaults(); z != (Config{}) {
		t.Fatalf("disabled config gained defaults: %+v", z)
	}
}
