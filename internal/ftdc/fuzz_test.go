package ftdc

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFTDCDecode drives the recording decoder with arbitrary mutations of
// valid captures, asserting the two defensive-codec properties the rest
// of the repo's binary formats also guarantee: the decoder never panics,
// and anything it accepts re-encodes byte-identically (canonical form).
func FuzzFTDCDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RRFD"))
	if b, err := Encode(testRecording()); err == nil {
		f.Add(b)
	}
	small := &Recording{
		Schema: Schema{Cols: []string{"t_s", "v"}, PeriodS: 250, Seed: 3},
		Chunks: []Chunk{{Rows: 3, Cols: [][]float64{{0, 250, 500}, {1, 1, 2}}}},
	}
	if b, err := Encode(small); err == nil {
		f.Add(b)
	}
	floaty := &Recording{
		Schema: Schema{Cols: []string{"f"}},
		Chunks: []Chunk{{Rows: 4, Cols: [][]float64{{0.5, math.NaN(), math.Inf(1), -0.0}}}},
	}
	if b, err := Encode(floaty); err == nil {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(rec)
		if err != nil {
			t.Fatalf("accepted recording does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted recording re-encodes differently:\n in: %x\nout: %x", data, re)
		}
	})
}
