package ftdc

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// promName sanitizes a column name into the Prometheus charset
// [a-zA-Z0-9_] and prefixes the simulator namespace (mirroring the
// telemetry exporter's convention).
func promName(name string) string {
	var b strings.Builder
	b.WriteString("roborepair_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// errWriter folds per-line write errors into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// WriteCSV renders the recording as CSV — the same shape as the
// telemetry exporter's time-series CSV: a header of column names, then
// one row per sample, %g-formatted.
func WriteCSV(w io.Writer, r *Recording) error {
	bw := &errWriter{w: w}
	for i, name := range r.Schema.Cols {
		if i > 0 {
			bw.printf(",")
		}
		bw.printf("%s", name)
	}
	bw.printf("\n")
	r.EachRow(func(_ int, row []float64) {
		for i, v := range row {
			if i > 0 {
				bw.printf(",")
			}
			bw.printf("%g", v)
		}
		bw.printf("\n")
	})
	return bw.err
}

// WritePrometheus renders the recording's final sample as gauges in the
// Prometheus text exposition format — the "state at capture" view of a
// banked black box.
func WritePrometheus(w io.Writer, r *Recording) error {
	bw := &errWriter{w: w}
	n := r.NumRows()
	if n == 0 {
		return bw.err
	}
	last := len(r.Chunks) - 1
	for c, name := range r.Schema.Cols {
		pn := promName(name)
		bw.printf("# TYPE %s gauge\n", pn)
		bw.printf("%s %g\n", pn, r.Chunks[last].Cols[c][r.Chunks[last].Rows-1])
	}
	return bw.err
}

// ColumnStats summarizes one column of a recording.
type ColumnStats struct {
	Name                  string
	Min, Max, Mean, First float64
	Last                  float64
}

// Stats computes per-column summaries over the whole recording.
func (r *Recording) Stats() []ColumnStats {
	out := make([]ColumnStats, len(r.Schema.Cols))
	n := r.NumRows()
	for c, name := range r.Schema.Cols {
		st := ColumnStats{Name: name, Min: math.Inf(1), Max: math.Inf(-1)}
		first := true
		sum := 0.0
		for i := range r.Chunks {
			for _, v := range r.Chunks[i].Cols[c] {
				if first {
					st.First = v
					first = false
				}
				st.Last = v
				st.Min = math.Min(st.Min, v)
				st.Max = math.Max(st.Max, v)
				sum += v
			}
		}
		if n > 0 {
			st.Mean = sum / float64(n)
		} else {
			st.Min, st.Max = 0, 0
		}
		out[c] = st
	}
	return out
}

// WriteSummary renders a human-oriented overview: schema identity, sample
// counts, and per-column min/mean/max/last.
func WriteSummary(w io.Writer, r *Recording) error {
	bw := &errWriter{w: w}
	hash := r.Schema.Hash()
	bw.printf("ftdc recording: %d columns, %d samples in %d chunks\n",
		len(r.Schema.Cols), r.NumRows(), len(r.Chunks))
	bw.printf("schema sha256=%x seed=%d period=%gs\n", hash[:8], r.Schema.Seed, r.Schema.PeriodS)
	bw.printf("%-24s %12s %12s %12s %12s\n", "column", "min", "mean", "max", "last")
	for _, st := range r.Stats() {
		bw.printf("%-24s %12g %12g %12g %12g\n", st.Name, st.Min, st.Mean, st.Max, st.Last)
	}
	return bw.err
}

// ColumnDiff reports how one column differs between two recordings.
type ColumnDiff struct {
	// Name is the column name.
	Name string
	// OnlyIn is "a" or "b" when the column exists in just one recording
	// (Rows/MaxAbs are then zero), "" when it exists in both.
	OnlyIn string
	// Rows is how many compared samples differ.
	Rows int
	// FirstRow is the index of the first differing sample (-1 if none).
	FirstRow int
	// MaxAbs is the largest absolute difference over compared samples
	// (NaN-vs-value counts as +Inf).
	MaxAbs float64
}

// String renders the diff as one report line.
func (d ColumnDiff) String() string {
	if d.OnlyIn != "" {
		return fmt.Sprintf("%-24s only in %s", d.Name, d.OnlyIn)
	}
	return fmt.Sprintf("%-24s %d rows differ, first at row %d, max |Δ| %g",
		d.Name, d.Rows, d.FirstRow, d.MaxAbs)
}

// Diff compares two recordings column-by-column over the samples both
// have, returning one entry per differing or unmatched column (empty when
// the recordings agree). A row-count mismatch is reported on the
// synthetic "(rows)" column.
func Diff(a, b *Recording) []ColumnDiff {
	var out []ColumnDiff
	if an, bn := a.NumRows(), b.NumRows(); an != bn {
		out = append(out, ColumnDiff{Name: "(rows)", Rows: abs(an - bn), FirstRow: min(an, bn)})
	}
	for _, name := range a.Schema.Cols {
		if b.ColumnIndex(name) < 0 {
			out = append(out, ColumnDiff{Name: name, OnlyIn: "a"})
			continue
		}
		av, bv := a.Column(name), b.Column(name)
		n := min(len(av), len(bv))
		d := ColumnDiff{Name: name, FirstRow: -1}
		for i := 0; i < n; i++ {
			x, y := av[i], bv[i]
			if x == y || (math.IsNaN(x) && math.IsNaN(y)) {
				continue
			}
			if d.FirstRow < 0 {
				d.FirstRow = i
			}
			d.Rows++
			delta := math.Abs(x - y)
			if math.IsNaN(delta) {
				delta = math.Inf(1)
			}
			d.MaxAbs = math.Max(d.MaxAbs, delta)
		}
		if d.Rows > 0 {
			out = append(out, d)
		}
	}
	for _, name := range b.Schema.Cols {
		if a.ColumnIndex(name) < 0 {
			out = append(out, ColumnDiff{Name: name, OnlyIn: "b"})
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
