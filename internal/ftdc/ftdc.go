// Package ftdc implements the flight recorder's compact binary
// time-series format — full-time diagnostic capture in the MongoDB FTDC
// tradition — and its strict canonical codec.
//
// A recording is a schema header followed by independent chunks. The
// header names the columns and carries the sampling cadence and run seed,
// guarded by a SHA-256 of the schema bytes and a CRC-32. Each chunk holds
// up to 64 Ki fixed-interval samples in columnar form: per column, either
// integer mode — the value stream transformed to second-order deltas
// (value, first delta, then delta-of-deltas), each zigzag-varint encoded —
// or float mode — IEEE-754 bit patterns XORed against the previous
// sample, uvarint encoded. In both modes a zero term is followed by a
// uvarint count of additional consecutive zeros (run-length encoding; a
// flat counter costs two bytes per chunk). The column blocks are
// concatenated, DEFLATE-compressed, and framed with raw/compressed
// lengths and a CRC-32, mirroring the internal/checkpoint section style.
//
// The decoder is defensive and canonical: it never panics, rejects
// truncated or bit-flipped input before allocating for it, and accepts
// only one encoding of any recording — minimal varints, maximal zero
// runs, integer mode whenever every value in the column qualifies, and
// byte-exact recompression. Every accepted buffer re-encodes to identical
// bytes (FuzzFTDCDecode locks both properties).
//
// Integer mode requires integral values with |v| ≤ 2^53 (exact in a
// float64); note -0.0 is deliberately disqualified so its sign survives
// float mode. Columns should prefer raw counters over derived rates —
// smooth integer series are what the second-order delta squeezes best.
package ftdc

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Version is the current recording format version. Decode rejects other
// versions: there is no cross-version compatibility promise, so the gate
// turns skew into a clean error instead of garbage columns.
const Version uint16 = 1

// magic identifies a recording file ("RoboRepair Flight Data").
var magic = [4]byte{'R', 'R', 'F', 'D'}

// Column encoding modes.
const (
	colModeInt   = 0 // second-order deltas, zigzag varint
	colModeFloat = 1 // XOR of IEEE-754 bit patterns, uvarint
)

// Format limits. The value bounds keep the integer-mode reconstruction
// inside int64 no matter what terms a hostile input supplies: |v| ≤ 2^53
// and |Δ| ≤ 2^54 imply |Δ²| ≤ 2^55, and 2^55 + 2^54 cannot overflow.
const (
	maxCols      = 1024
	maxNameLen   = 255
	maxChunkRows = 1 << 16
	maxChunkBody = 1 << 26 // 64 MiB of raw body is already absurd
	maxIntAbs    = int64(1) << 53
	maxDeltaAbs  = int64(1) << 54
	maxTermAbs   = int64(1) << 55
	flateLevel   = 6
)

// Decode errors. ErrCorrupt covers every structural or integrity failure;
// ErrVersion marks a structurally plausible recording from another format
// version.
var (
	ErrCorrupt = errors.New("ftdc: corrupt recording")
	ErrVersion = errors.New("ftdc: unsupported recording version")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Schema describes a recording: ordered column names plus the sampling
// cadence and run seed, for self-contained post-mortem decoding.
type Schema struct {
	// Cols are the column names, in sample order. Column 0 is by
	// convention the sample's simulated time.
	Cols []string
	// PeriodS is the sampling cadence in simulated seconds (0 = unknown).
	PeriodS float64
	// Seed is the run seed, so a banked recording names its run.
	Seed int64
}

// Validate reports the first invalid field of the schema.
func (s Schema) Validate() error {
	if len(s.Cols) == 0 || len(s.Cols) > maxCols {
		return fmt.Errorf("ftdc: column count %d outside (0, %d]", len(s.Cols), maxCols)
	}
	if math.IsNaN(s.PeriodS) || math.IsInf(s.PeriodS, 0) || s.PeriodS < 0 {
		return fmt.Errorf("ftdc: sample period %v not a finite non-negative value", s.PeriodS)
	}
	seen := make(map[string]bool, len(s.Cols))
	for i, name := range s.Cols {
		if len(name) == 0 || len(name) > maxNameLen {
			return fmt.Errorf("ftdc: column %d name length %d outside (0, %d]", i, len(name), maxNameLen)
		}
		if seen[name] {
			return fmt.Errorf("ftdc: duplicate column name %q", name)
		}
		seen[name] = true
	}
	return nil
}

// header renders the schema header: magic, version, column count, period,
// seed, names, then the SHA-256 of everything so far and a CRC-32 of
// everything including the hash.
func (s Schema) header() []byte {
	n := 4 + 2 + 2 + 8 + 8 + sha256.Size + 4
	for _, name := range s.Cols {
		n += 4 + len(name)
	}
	b := make([]byte, 0, n)
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Cols)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.PeriodS))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Seed))
	for _, name := range s.Cols {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(name)))
		b = append(b, name...)
	}
	sum := sha256.Sum256(b)
	b = append(b, sum[:]...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// Hash returns the SHA-256 over the schema bytes — the recording's
// identity for cross-checking two captures of the same configuration.
func (s Schema) Hash() [sha256.Size]byte {
	h := s.header()
	return [sha256.Size]byte(h[len(h)-sha256.Size-4 : len(h)-4])
}

// Chunk is one decoded block of samples: Rows samples across the schema's
// columns, Cols[c][i] being column c of sample i.
type Chunk struct {
	Rows int
	Cols [][]float64
}

// Recording is the decoded form of a capture. Chunk boundaries are
// preserved so an accepted recording re-encodes byte-identically.
type Recording struct {
	Schema Schema
	Chunks []Chunk
}

// NumRows returns the total sample count across chunks.
func (r *Recording) NumRows() int {
	n := 0
	for i := range r.Chunks {
		n += r.Chunks[i].Rows
	}
	return n
}

// ColumnIndex returns the index of the named column, or -1.
func (r *Recording) ColumnIndex(name string) int {
	for i, c := range r.Schema.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Column returns the named column flattened across chunks (a copy), or
// nil when the schema has no such column.
func (r *Recording) Column(name string) []float64 {
	c := r.ColumnIndex(name)
	if c < 0 {
		return nil
	}
	out := make([]float64, 0, r.NumRows())
	for i := range r.Chunks {
		out = append(out, r.Chunks[i].Cols[c]...)
	}
	return out
}

// EachRow calls fn for every sample in order with a reused row buffer
// (copy it to retain).
func (r *Recording) EachRow(fn func(i int, row []float64)) {
	row := make([]float64, len(r.Schema.Cols))
	n := 0
	for i := range r.Chunks {
		ch := &r.Chunks[i]
		for j := 0; j < ch.Rows; j++ {
			for c := range ch.Cols {
				row[c] = ch.Cols[c][j]
			}
			fn(n, row)
			n++
		}
	}
}

// Encode serializes the recording. It errors on malformed inputs (bad
// schema, ragged or oversized chunks) rather than emitting a buffer its
// own decoder would reject.
func Encode(r *Recording) ([]byte, error) {
	if err := r.Schema.Validate(); err != nil {
		return nil, err
	}
	b := r.Schema.header()
	enc := newChunkEncoder()
	for i := range r.Chunks {
		ch := &r.Chunks[i]
		if ch.Rows <= 0 || ch.Rows > maxChunkRows {
			return nil, fmt.Errorf("ftdc: chunk %d row count %d outside (0, %d]", i, ch.Rows, maxChunkRows)
		}
		if len(ch.Cols) != len(r.Schema.Cols) {
			return nil, fmt.Errorf("ftdc: chunk %d has %d columns, schema %d", i, len(ch.Cols), len(r.Schema.Cols))
		}
		for c := range ch.Cols {
			if len(ch.Cols[c]) != ch.Rows {
				return nil, fmt.Errorf("ftdc: chunk %d column %d has %d values, want %d", i, c, len(ch.Cols[c]), ch.Rows)
			}
		}
		var err error
		b, err = enc.appendChunk(b, ch.Cols, ch.Rows)
		if err != nil {
			return nil, fmt.Errorf("ftdc: chunk %d: %w", i, err)
		}
	}
	return b, nil
}

// chunkEncoder compresses chunk bodies with reusable buffers so the
// recorder's steady state allocates only the emitted frames.
type chunkEncoder struct {
	body []byte
	comp bytes.Buffer
	fw   *flate.Writer
}

func newChunkEncoder() *chunkEncoder {
	fw, err := flate.NewWriter(io.Discard, flateLevel)
	if err != nil {
		panic(err) // unreachable: flateLevel is a valid constant level
	}
	return &chunkEncoder{fw: fw}
}

// appendChunk appends one encoded chunk frame (lengths, compressed body,
// CRC) to dst.
func (e *chunkEncoder) appendChunk(dst []byte, cols [][]float64, rows int) ([]byte, error) {
	e.body = e.body[:0]
	e.body = binary.LittleEndian.AppendUint32(e.body, uint32(rows))
	for _, col := range cols {
		e.body = appendColumn(e.body, col[:rows])
	}
	if len(e.body) > maxChunkBody {
		return nil, fmt.Errorf("chunk body %d bytes exceeds %d", len(e.body), maxChunkBody)
	}
	e.comp.Reset()
	e.fw.Reset(&e.comp)
	if _, err := e.fw.Write(e.body); err != nil {
		return nil, err
	}
	if err := e.fw.Close(); err != nil {
		return nil, err
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.body)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.comp.Len()))
	dst = append(dst, e.comp.Bytes()...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
	return dst, nil
}

// recompress renders the canonical compression of body into e.comp.
func (e *chunkEncoder) recompress(body []byte) error {
	e.comp.Reset()
	e.fw.Reset(&e.comp)
	if _, err := e.fw.Write(body); err != nil {
		return err
	}
	return e.fw.Close()
}

// intQualified reports whether v belongs in integer mode: integral, exact
// in 2^53, and not negative zero (which only float mode preserves).
func intQualified(v float64) bool {
	if v != math.Trunc(v) { // also rejects NaN
		return false
	}
	if v < -float64(maxIntAbs) || v > float64(maxIntAbs) { // also rejects ±Inf
		return false
	}
	return !(v == 0 && math.Signbit(v))
}

func intQualifiedCol(col []float64) bool {
	for _, v := range col {
		if !intQualified(v) {
			return false
		}
	}
	return true
}

func appendColumn(b []byte, col []float64) []byte {
	if intQualifiedCol(col) {
		b = append(b, colModeInt)
		return appendIntTerms(b, col)
	}
	b = append(b, colModeFloat)
	return appendFloatTerms(b, col)
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// flushZeroRun emits a pending run of zero terms as (0, extra-count).
func flushZeroRun(b []byte, run *int) []byte {
	if *run > 0 {
		b = binary.AppendUvarint(b, 0)
		b = binary.AppendUvarint(b, uint64(*run-1))
		*run = 0
	}
	return b
}

func appendIntTerms(b []byte, col []float64) []byte {
	var prev, pd int64
	run := 0
	for i, v := range col {
		cur := int64(v)
		var term int64
		if i == 0 {
			term = cur
		} else {
			d := cur - prev
			if i == 1 {
				term = d
			} else {
				term = d - pd
			}
			pd = d
		}
		prev = cur
		if u := zigzag(term); u != 0 {
			b = flushZeroRun(b, &run)
			b = binary.AppendUvarint(b, u)
		} else {
			run++
		}
	}
	return flushZeroRun(b, &run)
}

func appendFloatTerms(b []byte, col []float64) []byte {
	var prev uint64
	run := 0
	for i, v := range col {
		bits := math.Float64bits(v)
		u := bits
		if i > 0 {
			u = bits ^ prev
		}
		prev = bits
		if u != 0 {
			b = flushZeroRun(b, &run)
			b = binary.AppendUvarint(b, u)
		} else {
			run++
		}
	}
	return flushZeroRun(b, &run)
}

// dec is a bounds-checked little-endian reader.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) bytes(n int) ([]byte, bool) {
	if n < 0 || d.remaining() < n {
		return nil, false
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, true
}

func (d *dec) u16() (uint16, bool) {
	b, ok := d.bytes(2)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint16(b), true
}

func (d *dec) u32() (uint32, bool) {
	b, ok := d.bytes(4)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b), true
}

func (d *dec) u64() (uint64, bool) {
	b, ok := d.bytes(8)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}

func (d *dec) u8() (byte, bool) {
	b, ok := d.bytes(1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

// uvarint reads a minimal-form varint; non-minimal encodings (a
// redundant zero continuation byte) are rejected for canonicality.
func (d *dec) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, corruptf("bad varint")
	}
	if n > 1 && d.b[d.off+n-1] == 0 {
		return 0, corruptf("non-minimal varint")
	}
	d.off += n
	return u, nil
}

// Decode parses and validates a recording buffer. It never panics; every
// acceptance implies the buffer re-encodes byte-identically (canonical
// form). Returned slices are copies — the caller may discard or mutate
// the input freely.
func Decode(b []byte) (*Recording, error) {
	d := &dec{b: b}
	m, ok := d.bytes(4)
	if !ok || [4]byte(m) != magic {
		return nil, corruptf("bad magic")
	}
	ver, ok := d.u16()
	if !ok {
		return nil, corruptf("truncated header")
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, ver, Version)
	}
	ncols, ok := d.u16()
	if !ok {
		return nil, corruptf("truncated header")
	}
	if ncols == 0 || ncols > maxCols {
		return nil, corruptf("column count %d outside (0, %d]", ncols, maxCols)
	}
	pbits, ok1 := d.u64()
	seed, ok2 := d.u64()
	if !ok1 || !ok2 {
		return nil, corruptf("truncated header")
	}
	period := math.Float64frombits(pbits)
	if math.IsNaN(period) || math.IsInf(period, 0) || period < 0 {
		return nil, corruptf("sample period %v not a finite non-negative value", period)
	}
	schema := Schema{
		Cols:    make([]string, 0, ncols),
		PeriodS: period,
		Seed:    int64(seed),
	}
	seen := make(map[string]bool, ncols)
	for i := 0; i < int(ncols); i++ {
		nlen, ok := d.u32()
		if !ok {
			return nil, corruptf("truncated column %d name length", i)
		}
		if nlen == 0 || nlen > maxNameLen {
			return nil, corruptf("column %d name length %d outside (0, %d]", i, nlen, maxNameLen)
		}
		name, ok := d.bytes(int(nlen))
		if !ok {
			return nil, corruptf("truncated column %d name", i)
		}
		if seen[string(name)] {
			return nil, corruptf("duplicate column name %q", name)
		}
		seen[string(name)] = true
		schema.Cols = append(schema.Cols, string(name))
	}
	hashEnd := d.off
	wantHash, ok := d.bytes(sha256.Size)
	if !ok {
		return nil, corruptf("truncated schema hash")
	}
	if sha256.Sum256(b[:hashEnd]) != [sha256.Size]byte(wantHash) {
		return nil, corruptf("schema hash mismatch")
	}
	crcEnd := d.off
	hcrc, ok := d.u32()
	if !ok {
		return nil, corruptf("truncated header CRC")
	}
	if crc32.ChecksumIEEE(b[:crcEnd]) != hcrc {
		return nil, corruptf("header CRC mismatch")
	}

	rec := &Recording{Schema: schema}
	enc := newChunkEncoder()
	for ci := 0; d.remaining() > 0; ci++ {
		start := d.off
		rawLen, ok1 := d.u32()
		compLen, ok2 := d.u32()
		if !ok1 || !ok2 {
			return nil, corruptf("truncated chunk %d header", ci)
		}
		if rawLen < 4 || rawLen > maxChunkBody {
			return nil, corruptf("chunk %d raw length %d outside [4, %d]", ci, rawLen, maxChunkBody)
		}
		comp, ok := d.bytes(int(compLen))
		if !ok {
			return nil, corruptf("truncated chunk %d body (%d bytes declared, %d left)", ci, compLen, d.remaining())
		}
		crcEnd := d.off
		ccrc, ok := d.u32()
		if !ok {
			return nil, corruptf("truncated chunk %d CRC", ci)
		}
		if crc32.ChecksumIEEE(b[start:crcEnd]) != ccrc {
			return nil, corruptf("chunk %d CRC mismatch", ci)
		}
		fr := flate.NewReader(bytes.NewReader(comp))
		body, err := io.ReadAll(io.LimitReader(fr, int64(rawLen)+1))
		if cerr := fr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, corruptf("chunk %d decompress: %v", ci, err)
		}
		if len(body) != int(rawLen) {
			return nil, corruptf("chunk %d decompresses to %d bytes, declared %d", ci, len(body), rawLen)
		}
		// Canonical compression: the frame must hold exactly the bytes our
		// own compressor emits for this body, or re-encoding would diverge.
		if err := enc.recompress(body); err != nil {
			return nil, corruptf("chunk %d recompress: %v", ci, err)
		}
		if !bytes.Equal(enc.comp.Bytes(), comp) {
			return nil, corruptf("chunk %d compression not canonical", ci)
		}
		chunk, err := decodeChunkBody(body, int(ncols))
		if err != nil {
			return nil, fmt.Errorf("%w (chunk %d)", err, ci)
		}
		rec.Chunks = append(rec.Chunks, chunk)
	}
	return rec, nil
}

func decodeChunkBody(body []byte, ncols int) (Chunk, error) {
	d := &dec{b: body}
	nrows, ok := d.u32()
	if !ok {
		return Chunk{}, corruptf("truncated chunk row count")
	}
	if nrows == 0 || nrows > maxChunkRows {
		return Chunk{}, corruptf("chunk row count %d outside (0, %d]", nrows, maxChunkRows)
	}
	ch := Chunk{Rows: int(nrows), Cols: make([][]float64, ncols)}
	for c := 0; c < ncols; c++ {
		mode, ok := d.u8()
		if !ok {
			return Chunk{}, corruptf("truncated column %d mode", c)
		}
		var vals []float64
		var err error
		switch mode {
		case colModeInt:
			vals, err = decodeIntCol(d, int(nrows))
		case colModeFloat:
			vals, err = decodeFloatCol(d, int(nrows))
			if err == nil && intQualifiedCol(vals) {
				err = corruptf("float mode for integer-qualified column")
			}
		default:
			err = corruptf("unknown column mode %d", mode)
		}
		if err != nil {
			return Chunk{}, fmt.Errorf("%w (column %d)", err, c)
		}
		ch.Cols[c] = vals
	}
	if d.remaining() != 0 {
		return Chunk{}, corruptf("%d trailing bytes in chunk body", d.remaining())
	}
	return ch, nil
}

func decodeIntCol(d *dec, n int) ([]float64, error) {
	out := make([]float64, 0, n)
	var prev, pd int64
	afterRun := false
	apply := func(term int64) error {
		i := len(out)
		var val int64
		if i == 0 {
			val = term
		} else {
			delta := term
			if i > 1 {
				delta = pd + term
			}
			if delta < -maxDeltaAbs || delta > maxDeltaAbs {
				return corruptf("delta %d exceeds ±2^54", delta)
			}
			val = prev + delta
			pd = delta
		}
		if val < -maxIntAbs || val > maxIntAbs {
			return corruptf("value %d exceeds ±2^53", val)
		}
		prev = val
		out = append(out, float64(val))
		return nil
	}
	for len(out) < n {
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if u == 0 {
			if afterRun {
				return nil, corruptf("zero run not maximal")
			}
			extra, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if extra >= uint64(n-len(out)) {
				return nil, corruptf("zero run overflows column")
			}
			for k := uint64(0); k <= extra; k++ {
				if err := apply(0); err != nil {
					return nil, err
				}
			}
			afterRun = true
			continue
		}
		afterRun = false
		term := unzigzag(u)
		if term < -maxTermAbs || term > maxTermAbs {
			return nil, corruptf("term %d exceeds ±2^55", term)
		}
		if err := apply(term); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func decodeFloatCol(d *dec, n int) ([]float64, error) {
	out := make([]float64, 0, n)
	var prev uint64
	afterRun := false
	apply := func(u uint64) {
		bits := u
		if len(out) > 0 {
			bits = prev ^ u
		}
		prev = bits
		out = append(out, math.Float64frombits(bits))
	}
	for len(out) < n {
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if u == 0 {
			if afterRun {
				return nil, corruptf("zero run not maximal")
			}
			extra, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if extra >= uint64(n-len(out)) {
				return nil, corruptf("zero run overflows column")
			}
			for k := uint64(0); k <= extra; k++ {
				apply(0)
			}
			afterRun = true
			continue
		}
		afterRun = false
		apply(u)
	}
	return out, nil
}

// WriteFile atomically writes the recording to path (temp file, sync,
// rename), so a crash mid-write never clobbers a previous capture.
func WriteFile(path string, r *Recording) error {
	b, err := Encode(r)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, b)
}

// ReadFile reads and decodes a recording file.
func ReadFile(path string) (*Recording, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

func writeFileAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
