// Package telemetry is the simulator's observability layer: log-bucketed
// latency histograms, named counters, a sim-time gauge sampler with ring
// buffers, and exporters (Prometheus text, CSV time-series, Chrome
// trace_event JSON).
//
// The layer is opt-in and near-zero-overhead: the zero Config disables
// everything, no Collector is built, and the instrumented hot paths reduce
// to a nil check — runs with telemetry off reproduce the untelemetered
// simulator's behavior and allocation counts bit-for-bit. All sampling is
// driven by the virtual clock and reads only deterministic simulation
// state, so telemetry output for a fixed (Config, Seed) is byte-identical
// whatever the worker count of the surrounding experiment grid.
package telemetry

import (
	"fmt"

	"roborepair/internal/sim"
)

// Config parameterizes the telemetry layer of one run. The zero value
// disables telemetry entirely.
type Config struct {
	// Enabled switches the whole layer on.
	Enabled bool `json:"enabled,omitempty"`
	// SamplePeriodS is the sim-time gauge sampling cadence in seconds
	// (default 250 when Enabled).
	SamplePeriodS float64 `json:"samplePeriodS,omitempty"`
	// RingCapacity bounds the retained time-series samples per gauge
	// (FIFO eviction; default 4096 when Enabled — enough for a 64000 s
	// run at the default cadence with a wide margin).
	RingCapacity int `json:"ringCapacity,omitempty"`
}

// WithDefaults fills unset knobs with the documented defaults.
func (c Config) WithDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.SamplePeriodS <= 0 {
		c.SamplePeriodS = 250
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = 4096
	}
	return c
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.SamplePeriodS < 0 {
		return fmt.Errorf("telemetry: sample period %v negative", c.SamplePeriodS)
	}
	if c.RingCapacity < 0 {
		return fmt.Errorf("telemetry: ring capacity %d negative", c.RingCapacity)
	}
	return nil
}

// Counter is a named monotonic count.
type Counter struct {
	name string
	n    uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.n += n }

// Value reports the count.
func (c *Counter) Value() uint64 { return c.n }

// Name reports the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Collector owns one run's telemetry: histograms, counters, and the gauge
// sampler. It is not safe for concurrent use (the simulation is
// single-threaded); distinct runs own distinct Collectors.
type Collector struct {
	cfg Config

	histNames    []string // registration order
	hists        map[string]*LogHistogram
	counterNames []string
	counters     map[string]*Counter

	sampler *Sampler
	samples *Counter
}

// NewCollector builds a collector for an enabled configuration.
func NewCollector(cfg Config) *Collector {
	cfg = cfg.WithDefaults()
	c := &Collector{
		cfg:      cfg,
		hists:    make(map[string]*LogHistogram),
		counters: make(map[string]*Counter),
		sampler:  newSampler(sim.Duration(cfg.SamplePeriodS), cfg.RingCapacity),
	}
	c.samples = c.Counter("telemetry_samples")
	return c
}

// Config reports the collector's effective (defaulted) configuration.
func (c *Collector) Config() Config { return c.cfg }

// LogHistogram returns (lazily creating) the named histogram. First/
// buckets apply only at creation; see NewLogHistogram.
func (c *Collector) LogHistogram(name string, first float64, buckets int) *LogHistogram {
	if h, ok := c.hists[name]; ok {
		return h
	}
	h := NewLogHistogram(first, buckets)
	h.name = name
	c.hists[name] = h
	c.histNames = append(c.histNames, name)
	return h
}

// Hist returns the named histogram, or nil when absent.
func (c *Collector) Hist(name string) *LogHistogram { return c.hists[name] }

// HistNames lists the registered histograms in registration order.
func (c *Collector) HistNames() []string { return append([]string(nil), c.histNames...) }

// Counter returns (lazily creating) the named counter.
func (c *Collector) Counter(name string) *Counter {
	if ct, ok := c.counters[name]; ok {
		return ct
	}
	ct := &Counter{name: name}
	c.counters[name] = ct
	c.counterNames = append(c.counterNames, name)
	return ct
}

// CounterNames lists the registered counters in registration order.
func (c *Collector) CounterNames() []string { return append([]string(nil), c.counterNames...) }

// Gauge registers a named gauge; fn is called at every sampling tick and
// must read only deterministic simulation state. Register all gauges
// before Start.
func (c *Collector) Gauge(name string, fn func() float64) {
	c.sampler.register(name, fn)
}

// Start arms the sampling ticker on the scheduler: one snapshot of every
// gauge at virtual time 0 (the baseline row) and every SamplePeriodS
// thereafter. Ring buffers are pre-sized here so steady-state sampling
// allocates nothing.
func (c *Collector) Start(sched *sim.Scheduler) error {
	return c.sampler.arm(sched, func() { c.samples.Add(1) })
}

// Sampler exposes the time-series sampler (for exporters).
func (c *Collector) Sampler() *Sampler { return c.sampler }

// Summary renders a compact human-readable digest of the histograms.
func (c *Collector) Summary() string {
	out := ""
	for _, name := range c.histNames {
		out += fmt.Sprintf("%-24s %s\n", name, c.hists[name])
	}
	out += fmt.Sprintf("%-24s n=%d (period %gs, %d gauges)\n",
		"timeseries_samples", c.sampler.Len(), float64(c.sampler.period), len(c.sampler.names))
	return out
}
