package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strings"
	"testing"

	"roborepair/internal/metrics"
	"roborepair/internal/sim"
)

// promLine matches one Prometheus exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func scrapeCheck(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty exposition")
	}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !promLine.MatchString(ln) {
			t.Fatalf("unscrapeable line: %q", ln)
		}
	}
}

func buildCollector(t *testing.T) *Collector {
	t.Helper()
	sched := sim.NewScheduler()
	c := NewCollector(Config{Enabled: true, SamplePeriodS: 50, RingCapacity: 64})
	h := c.LogHistogram("repair_delay_s", 8, 12)
	for _, v := range []float64{5, 30, 200, 9000} {
		h.Add(v)
	}
	c.Counter("events").Add(7)
	depth := 0.0
	c.Gauge("queue_depth", func() float64 { depth += 2; return depth })
	if err := c.Start(sched); err != nil {
		t.Fatal(err)
	}
	sched.Run(160)
	return c
}

func TestWritePrometheus(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.CountTx(metrics.CatBeacon, 123)
	reg.Observe(metrics.SeriesReportHops, 2)
	reg.Observe(metrics.SeriesReportHops, 4)
	reg.Histogram("repair_delay_hist", 30, 8).Add(45)

	c := buildCollector(t)
	var b bytes.Buffer
	if err := WritePrometheus(&b, reg, c); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	scrapeCheck(t, text)

	for _, want := range []string{
		`roborepair_tx_total{category="beacon"} 123`,
		"roborepair_report_hops_count 2",
		"roborepair_report_hops_sum 6",
		`roborepair_repair_delay_hist_bucket{le="+Inf"} 1`,
		"roborepair_events_total 7",
		`roborepair_repair_delay_s_bucket{le="8"} 1`,
		"roborepair_repair_delay_s_count 4",
		"# TYPE roborepair_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Histogram bucket counts must be cumulative.
	if !strings.Contains(text, `roborepair_repair_delay_s_bucket{le="256"} 3`) {
		t.Errorf("cumulative buckets wrong:\n%s", text)
	}

	// nil registry and nil collector are both fine.
	if err := WritePrometheus(&bytes.Buffer{}, nil, c); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&bytes.Buffer{}, reg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTimeSeriesCSV(t *testing.T) {
	c := buildCollector(t)
	var b bytes.Buffer
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[0] != "t_s,queue_depth" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+c.Sampler().Len() {
		t.Fatalf("rows = %d, want %d", len(lines)-1, c.Sampler().Len())
	}
	if lines[1] != "0,2" {
		t.Fatalf("baseline row = %q", lines[1])
	}

	// Prefixed variant (the sweep grid format).
	b.Reset()
	if err := WriteTimeSeriesCSV(&b, c.Sampler(), "alg,seed,", "dynamic,3,"); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(b.String(), "\n")
	if lines[0] != "alg,seed,t_s,queue_depth" {
		t.Fatalf("prefixed header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "dynamic,3,0,") {
		t.Fatalf("prefixed row = %q", lines[1])
	}
}

// failAfter accepts budget bytes, then short-writes with an error — the
// adversarial sink for exporter error-path coverage.
type failAfter struct {
	budget int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if len(p) <= f.budget {
		f.budget -= len(p)
		return len(p), nil
	}
	n := f.budget
	f.budget = 0
	return n, errors.New("sink full")
}

// TestExportersPropagateWriteErrors: a failing writer must surface as the
// exporter's returned error wherever mid-stream the failure lands — the
// sticky errWriter must not swallow short writes.
func TestExportersPropagateWriteErrors(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.CountTx(metrics.CatBeacon, 123)
	c := buildCollector(t)
	exporters := map[string]func(io.Writer) error{
		"WritePrometheus":     func(w io.Writer) error { return WritePrometheus(w, reg, c) },
		"WriteCSV":            c.WriteCSV,
		"WriteTimeSeriesRows": func(w io.Writer) error { return WriteTimeSeriesRows(w, c.Sampler(), "") },
		"WriteTimeSeriesHdr":  func(w io.Writer) error { return WriteTimeSeriesHeader(w, c.Sampler(), "") },
	}
	for name, render := range exporters {
		var full bytes.Buffer
		if err := render(&full); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Fail at the start, one byte in, mid-stream, and one byte short.
		for _, budget := range []int{0, 1, full.Len() / 2, full.Len() - 1} {
			if err := render(&failAfter{budget: budget}); err == nil {
				t.Fatalf("%s(budget=%d of %d): error lost", name, budget, full.Len())
			}
		}
		// A sink exactly large enough succeeds: the budgets above really
		// were mid-stream failures, not size mismatches.
		if err := render(&failAfter{budget: full.Len()}); err != nil {
			t.Fatalf("%s exact-budget sink failed: %v", name, err)
		}
	}
}

// TestWriteTimeSeriesCSVZeroSamples: a collector that never sampled still
// emits a well-formed header-only CSV.
func TestWriteTimeSeriesCSVZeroSamples(t *testing.T) {
	c := NewCollector(Config{Enabled: true})
	c.Gauge("queue_depth", func() float64 { return 1 })
	var b bytes.Buffer
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "t_s,queue_depth\n" {
		t.Fatalf("zero-sample CSV = %q", b.String())
	}
}

// TestWriteTimeSeriesCSVSingleSample: only the t=0 baseline sample.
func TestWriteTimeSeriesCSVSingleSample(t *testing.T) {
	sched := sim.NewScheduler()
	c := NewCollector(Config{Enabled: true, SamplePeriodS: 50})
	c.Gauge("queue_depth", func() float64 { return 3 })
	if err := c.Start(sched); err != nil {
		t.Fatal(err)
	}
	sched.Run(10) // before the first post-baseline tick
	var b bytes.Buffer
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "t_s,queue_depth\n0,3\n" {
		t.Fatalf("single-sample CSV = %q", b.String())
	}
}

// TestPrometheusDroppedRowsCounter: the exposition reports ring-eviction
// losses so scrapers (and telemetryck) can detect truncated series.
func TestPrometheusDroppedRowsCounter(t *testing.T) {
	sched := sim.NewScheduler()
	c := NewCollector(Config{Enabled: true, SamplePeriodS: 50, RingCapacity: 4})
	c.Gauge("queue_depth", func() float64 { return 1 })
	if err := c.Start(sched); err != nil {
		t.Fatal(err)
	}
	sched.Run(1000) // 21 samples into a 4-slot ring
	var b bytes.Buffer
	if err := WritePrometheus(&b, nil, c); err != nil {
		t.Fatal(err)
	}
	scrapeCheck(t, b.String())
	want := fmt.Sprintf("roborepair_telemetry_dropped_rows_total %d", c.Sampler().Dropped())
	if c.Sampler().Dropped() == 0 || !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q (dropped=%d):\n%s", want, c.Sampler().Dropped(), b.String())
	}
}
