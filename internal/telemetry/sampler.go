package telemetry

import (
	"roborepair/internal/sim"
)

// Sampler snapshots a set of registered gauges on a fixed sim-time cadence
// into pre-allocated ring buffers (one per gauge plus the timestamp
// column). When the ring fills, the oldest rows are evicted, keeping the
// most recent window. Steady-state sampling allocates nothing.
type Sampler struct {
	period sim.Duration
	cap    int

	names []string
	fns   []func() float64

	times []float64   // ring: sample timestamps (sim seconds)
	cols  [][]float64 // ring per gauge, parallel to times
	start int         // index of the oldest retained row
	n     int         // retained rows
	drops int         // evicted rows
}

func newSampler(period sim.Duration, capacity int) *Sampler {
	return &Sampler{period: period, cap: capacity}
}

// register adds a gauge; must run before start.
func (sp *Sampler) register(name string, fn func() float64) {
	sp.names = append(sp.names, name)
	sp.fns = append(sp.fns, fn)
}

// start sizes the rings and arms the ticker: a baseline snapshot at the
// current virtual time, then one per period.
func (sp *Sampler) arm(sched *sim.Scheduler, onSample func()) error {
	sp.times = make([]float64, sp.cap)
	sp.cols = make([][]float64, len(sp.fns))
	for i := range sp.cols {
		sp.cols[i] = make([]float64, sp.cap)
	}
	sample := func() {
		sp.snapshot(sched.Now())
		if onSample != nil {
			onSample()
		}
	}
	_, err := sched.NewTicker(0, sp.period, sample)
	return err
}

// snapshot appends one row of gauge readings at timestamp now.
func (sp *Sampler) snapshot(now sim.Time) {
	idx := (sp.start + sp.n) % sp.cap
	if sp.n == sp.cap {
		sp.start = (sp.start + 1) % sp.cap
		sp.drops++
	} else {
		sp.n++
	}
	sp.times[idx] = float64(now)
	for i, fn := range sp.fns {
		sp.cols[i][idx] = fn()
	}
}

// Period reports the sampling cadence in sim seconds.
func (sp *Sampler) Period() float64 { return float64(sp.period) }

// Len reports the retained row count.
func (sp *Sampler) Len() int { return sp.n }

// Dropped reports how many rows the ring evicted.
func (sp *Sampler) Dropped() int { return sp.drops }

// Names lists the gauge column names in registration order.
func (sp *Sampler) Names() []string { return append([]string(nil), sp.names...) }

// Each calls fn for every retained row in chronological order with the
// sample timestamp and one value per gauge. The vals slice is reused
// across calls; copy it to retain.
func (sp *Sampler) Each(fn func(t float64, vals []float64)) {
	vals := make([]float64, len(sp.cols))
	for i := 0; i < sp.n; i++ {
		idx := (sp.start + i) % sp.cap
		for j := range sp.cols {
			vals[j] = sp.cols[j][idx]
		}
		fn(sp.times[idx], vals)
	}
}

// Last reports the most recent value of the named gauge, or ok=false when
// the gauge is unknown or nothing was sampled yet.
func (sp *Sampler) Last(name string) (float64, bool) {
	if sp.n == 0 {
		return 0, false
	}
	for i, n := range sp.names {
		if n == name {
			idx := (sp.start + sp.n - 1) % sp.cap
			return sp.cols[i][idx], true
		}
	}
	return 0, false
}

// Series returns a copy of the named gauge's retained values in
// chronological order, or nil when the gauge is unknown.
func (sp *Sampler) Series(name string) []float64 {
	for i, n := range sp.names {
		if n != name {
			continue
		}
		out := make([]float64, sp.n)
		for j := 0; j < sp.n; j++ {
			out[j] = sp.cols[i][(sp.start+j)%sp.cap]
		}
		return out
	}
	return nil
}

// Times returns a copy of the retained sample timestamps.
func (sp *Sampler) Times() []float64 {
	out := make([]float64, sp.n)
	for j := 0; j < sp.n; j++ {
		out[j] = sp.times[(sp.start+j)%sp.cap]
	}
	return out
}

// MaxOf reports the maximum retained value of the named gauge (0 when
// empty or unknown).
func (sp *Sampler) MaxOf(name string) float64 {
	var max float64
	for _, v := range sp.Series(name) {
		if v > max {
			max = v
		}
	}
	return max
}
