package telemetry

import (
	"fmt"
	"io"
	"strings"

	"roborepair/internal/metrics"
)

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z0-9_] and prefixes the simulator namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("roborepair_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float in Prometheus exposition syntax.
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders one run's full accounting — the metrics
// registry's transmission counters, sample series, and fixed-width
// histograms, plus the collector's counters, log histograms, and latest
// gauge readings — in the Prometheus text exposition format. Either reg
// or c may be nil. Output order is fixed (sorted registry names,
// registration-ordered collector names), so the text is deterministic for
// a deterministic run.
func WritePrometheus(w io.Writer, reg *metrics.Registry, c *Collector) error {
	bw := &errWriter{w: w}
	if reg != nil {
		bw.printf("# TYPE roborepair_tx_total counter\n")
		for _, cat := range reg.Categories() {
			bw.printf("roborepair_tx_total{category=%q} %d\n", cat, reg.Tx(cat))
		}
		for _, s := range reg.SeriesNames() {
			acc := reg.Series(s)
			name := promName(s)
			bw.printf("# TYPE %s summary\n", name)
			bw.printf("%s_count %d\n", name, acc.N())
			bw.printf("%s_sum %s\n", name, promFloat(acc.Sum()))
			bw.printf("%s{quantile=\"0\"} %s\n", name, promFloat(acc.Min()))
			bw.printf("%s{quantile=\"1\"} %s\n", name, promFloat(acc.Max()))
		}
		for _, hn := range reg.HistNames() {
			h := reg.Hist(hn)
			name := promName(hn)
			bw.printf("# TYPE %s histogram\n", name)
			var cum uint64
			for i := 0; i < h.Buckets(); i++ {
				cum += h.Count(i)
				bw.printf("%s_bucket{le=%q} %d\n", name, promFloat(float64(i+1)*h.Width()), cum)
			}
			cum += h.Overflow()
			bw.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			bw.printf("%s_sum %s\n", name, promFloat(h.Sum()))
			bw.printf("%s_count %d\n", name, h.N())
		}
	}
	if c != nil {
		for _, cn := range c.counterNames {
			name := promName(cn) + "_total"
			bw.printf("# TYPE %s counter\n", name)
			bw.printf("%s %d\n", name, c.counters[cn].Value())
		}
		for _, hn := range c.histNames {
			h := c.hists[hn]
			name := promName(hn)
			bw.printf("# TYPE %s histogram\n", name)
			var cum uint64
			for i := 0; i < h.Buckets(); i++ {
				cum += h.Count(i)
				bw.printf("%s_bucket{le=%q} %d\n", name, promFloat(h.UpperBound(i)), cum)
			}
			cum += h.Overflow()
			bw.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			bw.printf("%s_sum %s\n", name, promFloat(h.Sum()))
			bw.printf("%s_count %d\n", name, h.N())
		}
		for _, gn := range c.sampler.names {
			if v, ok := c.sampler.Last(gn); ok {
				name := promName(gn)
				bw.printf("# TYPE %s gauge\n", name)
				bw.printf("%s %s\n", name, promFloat(v))
			}
		}
		// Ring-eviction losses: nonzero means the retained time-series
		// window is truncated (telemetryck warns on it).
		bw.printf("# TYPE roborepair_telemetry_dropped_rows_total counter\n")
		bw.printf("roborepair_telemetry_dropped_rows_total %d\n", c.sampler.Dropped())
	}
	return bw.err
}

// WriteTimeSeriesCSV renders the sampler's retained window as CSV: a
// header line `t_s,<gauge>,...` then one row per sample. The prefix
// columns (e.g. run-identifying fields in a sweep grid) are prepended
// verbatim to the header and every row.
func WriteTimeSeriesCSV(w io.Writer, sp *Sampler, prefixHeader string, prefixRow string) error {
	if err := WriteTimeSeriesHeader(w, sp, prefixHeader); err != nil {
		return err
	}
	return WriteTimeSeriesRows(w, sp, prefixRow)
}

// WriteTimeSeriesHeader renders just the CSV header line. Grid callers use
// it once, then WriteTimeSeriesRows per run, to share one header across
// many runs' series.
func WriteTimeSeriesHeader(w io.Writer, sp *Sampler, prefixHeader string) error {
	bw := &errWriter{w: w}
	bw.printf("%st_s", prefixHeader)
	for _, n := range sp.names {
		bw.printf(",%s", n)
	}
	bw.printf("\n")
	return bw.err
}

// WriteTimeSeriesRows renders the sample rows without a header.
func WriteTimeSeriesRows(w io.Writer, sp *Sampler, prefixRow string) error {
	bw := &errWriter{w: w}
	sp.Each(func(t float64, vals []float64) {
		bw.printf("%s%g", prefixRow, t)
		for _, v := range vals {
			bw.printf(",%g", v)
		}
		bw.printf("\n")
	})
	return bw.err
}

// WriteCSV renders the collector's time series with no prefix columns.
func (c *Collector) WriteCSV(w io.Writer) error {
	return WriteTimeSeriesCSV(w, c.sampler, "", "")
}

// errWriter folds per-line write errors into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
