package telemetry

import "roborepair/internal/checkpoint"

// AppendState serializes the collector's complete dynamic state in
// canonical order (checkpoint section payload): histograms and counters in
// registration order — registration order is itself deterministic per
// config — then the sampler's ring positions and retained rows. Nil-safe:
// a world with telemetry off appends a single absent marker, so the
// section is still present and comparable.
func (c *Collector) AppendState(b []byte) []byte {
	if c == nil {
		return checkpoint.AppendBool(b, false)
	}
	b = checkpoint.AppendBool(b, true)

	b = checkpoint.AppendU32(b, uint32(len(c.histNames)))
	for _, name := range c.histNames {
		h := c.hists[name]
		b = checkpoint.AppendString(b, name)
		b = checkpoint.AppendF64(b, h.first)
		b = checkpoint.AppendU32(b, uint32(len(h.counts)))
		for _, n := range h.counts {
			b = checkpoint.AppendU64(b, n)
		}
		b = checkpoint.AppendU64(b, h.overflow)
		b = checkpoint.AppendU64(b, h.n)
		b = checkpoint.AppendF64(b, h.sum)
		b = checkpoint.AppendF64(b, h.min)
		b = checkpoint.AppendF64(b, h.max)
	}

	b = checkpoint.AppendU32(b, uint32(len(c.counterNames)))
	for _, name := range c.counterNames {
		b = checkpoint.AppendString(b, name)
		b = checkpoint.AppendU64(b, c.counters[name].n)
	}

	sp := c.sampler
	b = checkpoint.AppendF64(b, float64(sp.period))
	b = checkpoint.AppendI64(b, int64(sp.cap))
	b = checkpoint.AppendI64(b, int64(sp.start))
	b = checkpoint.AppendI64(b, int64(sp.n))
	b = checkpoint.AppendI64(b, int64(sp.drops))
	b = checkpoint.AppendU32(b, uint32(len(sp.names)))
	for gi, name := range sp.names {
		b = checkpoint.AppendString(b, name)
		// Retained rows oldest-first, so the payload is a function of the
		// sample history alone, not of the ring's physical layout.
		for i := 0; i < sp.n; i++ {
			row := (sp.start + i) % sp.cap
			if gi == 0 {
				// Timestamps once, alongside the first gauge.
				b = checkpoint.AppendF64(b, sp.times[row])
			}
			b = checkpoint.AppendF64(b, sp.cols[gi][row])
		}
	}
	return b
}
