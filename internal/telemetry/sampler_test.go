package telemetry

import (
	"reflect"
	"strings"
	"testing"

	"roborepair/internal/sim"
)

func TestSamplerCadenceAndBaseline(t *testing.T) {
	sched := sim.NewScheduler()
	c := NewCollector(Config{Enabled: true, SamplePeriodS: 100, RingCapacity: 16})
	ticks := 0.0
	c.Gauge("ticks", func() float64 { ticks++; return ticks })
	c.Gauge("clock", func() float64 { return float64(sched.Now()) })
	if err := c.Start(sched); err != nil {
		t.Fatal(err)
	}
	sched.Run(450)
	// Baseline sample at t=0 plus one per 100 s: 0,100,200,300,400.
	if got := c.Sampler().Times(); !reflect.DeepEqual(got, []float64{0, 100, 200, 300, 400}) {
		t.Fatalf("sample times = %v", got)
	}
	if got := c.Sampler().Series("clock"); !reflect.DeepEqual(got, []float64{0, 100, 200, 300, 400}) {
		t.Fatalf("clock series = %v", got)
	}
	if v, ok := c.Sampler().Last("ticks"); !ok || v != 5 {
		t.Fatalf("last ticks = %v,%v", v, ok)
	}
	if c.Counter("telemetry_samples").Value() != 5 {
		t.Fatalf("samples counter = %d", c.Counter("telemetry_samples").Value())
	}
}

func TestSamplerRingEviction(t *testing.T) {
	sched := sim.NewScheduler()
	c := NewCollector(Config{Enabled: true, SamplePeriodS: 10, RingCapacity: 4})
	c.Gauge("clock", func() float64 { return float64(sched.Now()) })
	if err := c.Start(sched); err != nil {
		t.Fatal(err)
	}
	sched.Run(75) // samples at 0,10,...,70 → 8 rows, ring keeps last 4
	sp := c.Sampler()
	if sp.Len() != 4 {
		t.Fatalf("len = %d", sp.Len())
	}
	if sp.Dropped() != 4 {
		t.Fatalf("dropped = %d", sp.Dropped())
	}
	if got := sp.Times(); !reflect.DeepEqual(got, []float64{40, 50, 60, 70}) {
		t.Fatalf("times after eviction = %v", got)
	}
	if got := sp.MaxOf("clock"); got != 70 {
		t.Fatalf("MaxOf = %v", got)
	}
}

func TestSamplerUnknownGauge(t *testing.T) {
	sp := newSampler(10, 4)
	if s := sp.Series("nope"); s != nil {
		t.Fatalf("unknown series = %v", s)
	}
	if _, ok := sp.Last("nope"); ok {
		t.Fatal("unknown gauge reported a value")
	}
}

func TestCollectorSummary(t *testing.T) {
	c := NewCollector(Config{Enabled: true})
	c.LogHistogram("repair_delay_s", 8, 16).Add(42)
	s := c.Summary()
	if !strings.Contains(s, "repair_delay_s") || !strings.Contains(s, "timeseries_samples") {
		t.Fatalf("summary missing sections:\n%s", s)
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	var zero Config
	if zero.WithDefaults() != zero {
		t.Fatal("zero config must stay zero (disabled)")
	}
	d := Config{Enabled: true}.WithDefaults()
	if d.SamplePeriodS != 250 || d.RingCapacity != 4096 {
		t.Fatalf("defaults = %+v", d)
	}
	if err := (Config{SamplePeriodS: -1}).Validate(); err == nil {
		t.Fatal("negative period validated")
	}
	if err := (Config{RingCapacity: -1}).Validate(); err == nil {
		t.Fatal("negative capacity validated")
	}
}
