package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"roborepair/internal/radio"
	"roborepair/internal/trace"
)

// Chrome trace_event process ids: one lane group per subsystem.
const (
	chromePidField     = 1 // failures, faults, report traffic
	chromePidRobots    = 2 // one thread lane per robot
	chromePidManager   = 3 // the centralized manager (when present)
	chromePidTelemetry = 4 // sampler gauges as counter tracks
)

// ChromeOptions tunes the trace_event export.
type ChromeOptions struct {
	// TimeScale is trace microseconds per simulated second. The default
	// 1000 renders one sim second as one trace millisecond, so a 64000 s
	// run spans a comfortable 64 s of trace time in Perfetto.
	TimeScale float64
	// Collector, when non-nil, adds the sampler's gauges as counter
	// tracks.
	Collector *Collector
	// ManagerID labels the centralized manager's lane (0 when the run has
	// no manager).
	ManagerID radio.NodeID
}

func (o ChromeOptions) scale() float64 {
	if o.TimeScale <= 0 {
		return 1000
	}
	return o.TimeScale
}

// chromeEvent is one trace_event record. Field order is fixed, and Args
// maps marshal with sorted keys, so the export is byte-deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func meta(pid, tid int, kind, label string) chromeEvent {
	return chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": label}}
}

func instant(name string, ts float64, pid, tid int, args map[string]any) chromeEvent {
	return chromeEvent{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t", Args: args}
}

// repairSpan is a robot's trip for one failed node, from the first report
// of the failure to the replacement boot.
type repairSpan struct {
	robot      radio.NodeID
	node       radio.NodeID
	start, end float64
}

// WriteChromeTrace converts a causal event log into Chrome trace_event
// JSON that loads directly in chrome://tracing and ui.perfetto.dev:
// per-robot thread lanes carry repair slices (first report → replacement
// boot) and instant markers (location updates, breakdowns, takeovers,
// dispatches); the field process carries failure, fault, and report
// markers; the manager gets its own lane; and, when a Collector is
// supplied, every sampled gauge becomes a counter track. Repair slices on
// one robot lane are clamped to be non-overlapping (queue wait folds into
// the earliest running slice), keeping the JSON valid nesting-wise.
func WriteChromeTrace(w io.Writer, log *trace.Log, opt ChromeOptions) error {
	scale := opt.scale()
	events := log.Events()

	var out []chromeEvent
	out = append(out,
		meta(chromePidField, 0, "process_name", "field"),
		meta(chromePidField, 1, "thread_name", "failures"),
		meta(chromePidField, 2, "thread_name", "faults"),
		meta(chromePidField, 3, "thread_name", "reports"),
		meta(chromePidRobots, 0, "process_name", "robots"),
	)

	// Discover the robot lanes from every event attributable to a robot.
	robots := map[radio.NodeID]bool{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindLocationUpdate, trace.KindRobotFailure, trace.KindTakeover:
			robots[e.Node] = true
		case trace.KindReplacement, trace.KindDispatch, trace.KindRedispatch,
			trace.KindTaskStranded, trace.KindTaskRequeued:
			if e.Actor != 0 {
				robots[e.Actor] = true
			}
		}
	}
	robotIDs := make([]radio.NodeID, 0, len(robots))
	for id := range robots {
		robotIDs = append(robotIDs, id)
	}
	sort.Slice(robotIDs, func(i, j int) bool { return robotIDs[i] < robotIDs[j] })
	for _, id := range robotIDs {
		out = append(out, meta(chromePidRobots, int(id), "thread_name", fmt.Sprintf("robot-%d", id)))
	}
	if opt.ManagerID != 0 {
		out = append(out,
			meta(chromePidManager, 0, "process_name", "manager"),
			meta(chromePidManager, int(opt.ManagerID), "thread_name", fmt.Sprintf("manager-%d", opt.ManagerID)))
	}

	// Repair slices: first report (or the failure itself) → replacement.
	firstSeen := map[radio.NodeID]float64{} // node → earliest report/failure ts
	spansByRobot := map[radio.NodeID][]repairSpan{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindFailure, trace.KindReportSent:
			if _, ok := firstSeen[e.Node]; !ok {
				firstSeen[e.Node] = float64(e.At)
			}
		case trace.KindReplacement:
			if e.Actor == 0 {
				continue
			}
			start, ok := firstSeen[e.Node]
			if !ok {
				start = float64(e.At)
			}
			delete(firstSeen, e.Node) // a re-failure at the site starts fresh
			spansByRobot[e.Actor] = append(spansByRobot[e.Actor],
				repairSpan{robot: e.Actor, node: e.Node, start: start, end: float64(e.At)})
		}
	}
	for _, id := range robotIDs {
		spans := spansByRobot[id]
		sort.Slice(spans, func(i, j int) bool { return spans[i].end < spans[j].end })
		prevEnd := 0.0
		for _, s := range spans {
			start := s.start
			if start < prevEnd {
				start = prevEnd // fold queue wait into the running slice
			}
			if start > s.end {
				start = s.end
			}
			prevEnd = s.end
			dur := (s.end - start) * scale
			out = append(out, chromeEvent{
				Name: "repair", Ph: "X", Ts: start * scale, Dur: &dur,
				Pid: chromePidRobots, Tid: int(id),
				Args: map[string]any{"node": int(s.node), "reported_s": s.start, "done_s": s.end},
			})
		}
	}

	// Instant markers.
	for _, e := range events {
		ts := float64(e.At) * scale
		args := map[string]any{"node": int(e.Node), "x": e.Loc.X, "y": e.Loc.Y}
		switch e.Kind {
		case trace.KindFailure:
			out = append(out, instant("failure", ts, chromePidField, 1, args))
		case trace.KindFault:
			out = append(out, instant("fault", ts, chromePidField, 2, args))
		case trace.KindReportSent:
			out = append(out, instant("report-sent", ts, chromePidField, 3, args))
		case trace.KindReportRetx:
			out = append(out, instant("report-retx", ts, chromePidField, 3, args))
		case trace.KindReportDelivered:
			if opt.ManagerID != 0 && e.Actor == opt.ManagerID {
				out = append(out, instant("report-delivered", ts, chromePidManager, int(opt.ManagerID), args))
			} else {
				out = append(out, instant("report-delivered", ts, chromePidField, 3, args))
			}
		case trace.KindLocationUpdate:
			out = append(out, instant("loc-update", ts, chromePidRobots, int(e.Node), args))
		case trace.KindRobotFailure:
			out = append(out, instant("robot-failure", ts, chromePidRobots, int(e.Node), args))
		case trace.KindTakeover:
			out = append(out, instant("takeover", ts, chromePidRobots, int(e.Node), args))
		case trace.KindDispatch:
			out = append(out, instant("dispatch", ts, chromePidRobots, int(e.Actor), args))
		case trace.KindRedispatch:
			out = append(out, instant("redispatch", ts, chromePidRobots, int(e.Actor), args))
		case trace.KindTaskStranded:
			out = append(out, instant("task-stranded", ts, chromePidRobots, int(e.Actor), args))
		case trace.KindTaskRequeued:
			out = append(out, instant("task-requeued", ts, chromePidRobots, int(e.Actor), args))
		case trace.KindManagerCrash:
			if opt.ManagerID != 0 {
				out = append(out, instant("manager-crash", ts, chromePidManager, int(opt.ManagerID), args))
			} else {
				out = append(out, instant("manager-crash", ts, chromePidField, 2, args))
			}
		}
	}

	// Sampled gauges as counter tracks.
	if opt.Collector != nil {
		sp := opt.Collector.Sampler()
		names := sp.Names()
		out = append(out, meta(chromePidTelemetry, 0, "process_name", "telemetry"))
		sp.Each(func(t float64, vals []float64) {
			for i, v := range vals {
				out = append(out, chromeEvent{
					Name: names[i], Ph: "C", Ts: t * scale,
					Pid: chromePidTelemetry, Tid: 0,
					Args: map[string]any{"value": v},
				})
			}
		})
	}

	// Stable chronological order (metadata first at ts 0); the assembly
	// order above is deterministic, so the sort result is too.
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return out[i].Ts < out[j].Ts
	})

	ew := &errWriter{w: w}
	ew.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for i := range out {
		b, err := json.Marshal(out[i])
		if err != nil {
			return err
		}
		sep := ","
		if i == len(out)-1 {
			sep = ""
		}
		ew.printf(" %s%s\n", b, sep)
	}
	ew.printf("]}\n")
	return ew.err
}
