package telemetry

import (
	"fmt"
	"math"
)

// LogHistogram is a logarithmically-bucketed histogram: bucket 0 covers
// [0, first] and every following bucket doubles the upper bound, so a
// handful of buckets span the five decades between a 10 s repair and a
// multi-hour blackout backlog with constant relative error. Bucket
// boundaries are computed by exact float doubling, so a sample equal to a
// boundary always lands in the bucket the boundary closes.
type LogHistogram struct {
	name     string
	first    float64 // upper bound of bucket 0
	counts   []uint64
	overflow uint64

	n        uint64
	sum      float64
	min, max float64
}

// NewLogHistogram returns a histogram whose bucket 0 closes at first and
// whose last bucket closes at first·2^(buckets−1); larger samples land in
// overflow. Non-positive first defaults to 1; buckets is clamped to ≥ 1.
func NewLogHistogram(first float64, buckets int) *LogHistogram {
	if first <= 0 {
		first = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	return &LogHistogram{first: first, counts: make([]uint64, buckets)}
}

// Name reports the histogram's registered name (empty when standalone).
func (h *LogHistogram) Name() string { return h.name }

// Buckets reports the number of regular (non-overflow) buckets.
func (h *LogHistogram) Buckets() int { return len(h.counts) }

// UpperBound reports the inclusive upper bound of bucket i.
func (h *LogHistogram) UpperBound(i int) float64 {
	ub := h.first
	for ; i > 0; i-- {
		ub *= 2
	}
	return ub
}

// bucketIndex locates the bucket for x ≥ 0, or len(counts) for overflow.
func (h *LogHistogram) bucketIndex(x float64) int {
	ub := h.first
	for i := 0; i < len(h.counts); i++ {
		if x <= ub {
			return i
		}
		ub *= 2
	}
	return len(h.counts)
}

// Add ingests one sample. Negative samples clamp to bucket 0; NaN is
// dropped.
func (h *LogHistogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if h.n == 0 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
	h.n++
	h.sum += x
	if x < 0 {
		x = 0
	}
	if i := h.bucketIndex(x); i < len(h.counts) {
		h.counts[i]++
	} else {
		h.overflow++
	}
}

// N reports the number of samples.
func (h *LogHistogram) N() uint64 { return h.n }

// Sum reports the exact sample total.
func (h *LogHistogram) Sum() float64 { return h.sum }

// Mean reports the exact sample mean, or 0 with no samples.
func (h *LogHistogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min reports the smallest sample, or 0 with no samples.
func (h *LogHistogram) Min() float64 { return h.min }

// Max reports the largest sample, or 0 with no samples.
func (h *LogHistogram) Max() float64 { return h.max }

// Count reports the occupancy of bucket i.
func (h *LogHistogram) Count(i int) uint64 { return h.counts[i] }

// Overflow reports samples beyond the last bucket.
func (h *LogHistogram) Overflow() uint64 { return h.overflow }

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket holding the target rank; overflowed mass reports the observed
// maximum.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	ub := h.first
	for _, c := range h.counts {
		cum += c
		if cum >= target {
			return ub
		}
		ub *= 2
	}
	return h.max
}

// String summarizes the distribution.
func (h *LogHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}
