package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/sim"
	"roborepair/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenLog builds a small deterministic causal log: two failures, one
// dispatched repair, a robot breakdown, and a fault marker.
func goldenLog() *trace.Log {
	l := trace.New(-1)
	l.Record(trace.Event{At: 100, Kind: trace.KindFailure, Node: 101, Loc: geom.Pt(10, 20)})
	l.Record(trace.Event{At: 130, Kind: trace.KindReportSent, Node: 101, Actor: 102, Loc: geom.Pt(10, 20)})
	l.Record(trace.Event{At: 131, Kind: trace.KindReportDelivered, Node: 101, Actor: 5, Loc: geom.Pt(10, 20)})
	l.Record(trace.Event{At: 132, Kind: trace.KindDispatch, Node: 101, Actor: 1, Loc: geom.Pt(10, 20)})
	l.Record(trace.Event{At: 150, Kind: trace.KindLocationUpdate, Node: 1, Actor: 1, Loc: geom.Pt(30, 40)})
	l.Record(trace.Event{At: 200, Kind: trace.KindReplacement, Node: 101, Actor: 1, Loc: geom.Pt(10, 20)})
	l.Record(trace.Event{At: 250, Kind: trace.KindFault, Loc: geom.Pt(50, 50)})
	l.Record(trace.Event{At: 300, Kind: trace.KindFailure, Node: 103, Loc: geom.Pt(60, 60)})
	l.Record(trace.Event{At: 320, Kind: trace.KindReportSent, Node: 103, Actor: 104, Loc: geom.Pt(60, 60)})
	l.Record(trace.Event{At: 340, Kind: trace.KindRobotFailure, Node: 2, Actor: 2, Loc: geom.Pt(70, 70)})
	l.Record(trace.Event{At: 341, Kind: trace.KindTaskStranded, Node: 103, Actor: 2, Loc: geom.Pt(60, 60)})
	l.Record(trace.Event{At: 342, Kind: trace.KindTaskRequeued, Node: 103, Actor: 1, Loc: geom.Pt(60, 60)})
	l.Record(trace.Event{At: 400, Kind: trace.KindReplacement, Node: 103, Actor: 1, Loc: geom.Pt(60, 60)})
	return l
}

func goldenCollector(t *testing.T) *Collector {
	t.Helper()
	sched := sim.NewScheduler()
	c := NewCollector(Config{Enabled: true, SamplePeriodS: 100, RingCapacity: 16})
	v := 0.0
	c.Gauge("pending_failures", func() float64 { v++; return v })
	if err := c.Start(sched); err != nil {
		t.Fatal(err)
	}
	sched.Run(250)
	return c
}

// TestChromeTraceGolden locks the exporter's byte-exact output.
func TestChromeTraceGolden(t *testing.T) {
	var b bytes.Buffer
	err := WriteChromeTrace(&b, goldenLog(), ChromeOptions{
		ManagerID: 5,
		Collector: goldenCollector(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/telemetry -run Golden -update)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden; regenerate with -update if intended.\ngot:\n%s", b.String())
	}
}

// TestChromeTraceParses validates the structural contract every consumer
// (chrome://tracing, Perfetto) relies on.
func TestChromeTraceParses(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, goldenLog(), ChromeOptions{ManagerID: 5}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  int      `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	var repairs, lanes int
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			t.Fatalf("event missing name/ph: %+v", e)
		}
		if e.Ph == "X" {
			repairs++
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("X event without valid dur: %+v", e)
			}
		}
		if e.Ph == "M" && e.Name == "thread_name" && e.Pid == chromePidRobots {
			lanes++
		}
	}
	if repairs != 2 {
		t.Fatalf("repair slices = %d, want 2", repairs)
	}
	if lanes != 2 { // robot-1 and robot-2
		t.Fatalf("robot lanes = %d, want 2", lanes)
	}
}

// TestChromeTraceSlicesDoNotOverlap checks the per-lane clamping that
// keeps queued repairs from rendering as overlapping slices.
func TestChromeTraceSlicesDoNotOverlap(t *testing.T) {
	l := trace.New(-1)
	// Two failures reported back-to-back, served sequentially by robot 1.
	l.Record(trace.Event{At: 10, Kind: trace.KindReportSent, Node: 201})
	l.Record(trace.Event{At: 11, Kind: trace.KindReportSent, Node: 202})
	l.Record(trace.Event{At: 50, Kind: trace.KindReplacement, Node: 201, Actor: 1})
	l.Record(trace.Event{At: 90, Kind: trace.KindReplacement, Node: 202, Actor: 1})
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, l, ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string   `json:"ph"`
			Ts  float64  `json:"ts"`
			Dur *float64 `json:"dur"`
			Tid int      `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	end := -1.0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Ts < end {
			t.Fatalf("slice starting at %v overlaps previous end %v", e.Ts, end)
		}
		end = e.Ts + *e.Dur
	}
	if end < 0 {
		t.Fatal("no X slices emitted")
	}
}
