package telemetry

import (
	"math"
	"testing"
)

// TestLogHistogramBucketBoundaries pins the bucket-edge rule: bucket 0
// closes at first, every later bucket doubles, and a sample exactly on a
// boundary lands in the bucket that boundary closes.
func TestLogHistogramBucketBoundaries(t *testing.T) {
	h := NewLogHistogram(10, 4) // edges: 10, 20, 40, 80
	cases := []struct {
		x    float64
		want int // bucket index, or -1 for overflow
	}{
		{0, 0}, {5, 0}, {10, 0},
		{10.0001, 1}, {20, 1},
		{20.0001, 2}, {40, 2},
		{40.0001, 3}, {80, 3},
		{80.0001, -1}, {1e9, -1},
		{-3, 0}, // negatives clamp to bucket 0
	}
	for _, c := range cases {
		h := NewLogHistogram(10, 4)
		h.Add(c.x)
		if c.want < 0 {
			if h.Overflow() != 1 {
				t.Errorf("Add(%v): want overflow, got buckets %v", c.x, h.counts)
			}
			continue
		}
		if h.Count(c.want) != 1 {
			t.Errorf("Add(%v): want bucket %d, got %v overflow=%d", c.x, c.want, h.counts, h.Overflow())
		}
	}
	for i, want := range []float64{10, 20, 40, 80} {
		if got := h.UpperBound(i); got != want {
			t.Errorf("UpperBound(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestLogHistogramStatsAndQuantiles(t *testing.T) {
	h := NewLogHistogram(1, 10) // edges 1,2,4,...,512
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 50.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// p50 rank is 50 → bucket (32,64] → upper edge 64.
	if got := h.Quantile(0.5); got != 64 {
		t.Errorf("p50 = %v, want 64", got)
	}
	// p99 rank 99 → bucket (64,128] → 128.
	if got := h.Quantile(0.99); got != 128 {
		t.Errorf("p99 = %v, want 128", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want min", got)
	}
}

func TestLogHistogramOverflowQuantile(t *testing.T) {
	h := NewLogHistogram(1, 2) // edges 1, 2
	h.Add(0.5)
	h.Add(1000)
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	// The top quantile falls in overflowed mass → the observed max.
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("q1 = %v, want observed max 1000", got)
	}
}

func TestLogHistogramNaNDropped(t *testing.T) {
	h := NewLogHistogram(1, 4)
	h.Add(math.NaN())
	if h.N() != 0 {
		t.Fatalf("NaN was ingested: n=%d", h.N())
	}
}
