// Package radio simulates the shared wireless medium: a unit-disk
// propagation model with per-transmission accounting, optional per-hop
// latency and loss, and a uniform-grid spatial index for neighbor lookup.
//
// This replaces the paper's GloMoSim/802.11 substrate. The paper reports
// 100% delivery ("high density of sensor nodes and low traffic load"), so
// the default medium is lossless; Bernoulli loss can be injected for
// robustness experiments. Every call to Send counts exactly one wireless
// transmission in the run's metrics registry — the unit of the paper's
// messaging-overhead metric (Figure 4).
package radio

import (
	"fmt"
	"math"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/sim"
)

// NodeID identifies a station (sensor, robot, or manager) on the medium.
type NodeID int

// IDBroadcast addresses a frame to every station in transmission range.
const IDBroadcast NodeID = -1

// String formats the ID, naming the broadcast address.
func (id NodeID) String() string {
	if id == IDBroadcast {
		return "bcast"
	}
	return fmt.Sprintf("n%d", int(id))
}

// Frame is one link-layer transmission. Payload is interpreted by the
// network layer; Category attributes the transmission in the metrics
// registry.
type Frame struct {
	Src      NodeID
	Dst      NodeID // IDBroadcast for one-hop broadcast
	Category string
	Payload  any
}

// Station is anything attached to the medium.
type Station interface {
	// RadioID returns the station's medium address.
	RadioID() NodeID
	// RadioPos returns the station's current location.
	RadioPos() geom.Point
	// RadioRange returns the station's transmission range in meters.
	RadioRange() float64
	// RadioActive reports whether the station can send and receive
	// (failed sensors are inactive but remain attached).
	RadioActive() bool
	// HandleFrame delivers a received frame.
	HandleFrame(f Frame)
}

// Auditor observes the medium's transmissions and deliveries for
// conservation checking (the invariant layer). FrameSent fires once per
// accepted Send; FrameDelivered fires immediately before each
// Station.HandleFrame with the sender's position and range at
// transmission time, on both the direct and the contended delivery path.
// A nil auditor costs one pointer test per event.
type Auditor interface {
	// FrameSent records one accepted transmission.
	FrameSent(f Frame)
	// FrameDelivered records one reception about to be handed to dst.
	FrameDelivered(f Frame, from geom.Point, rng float64, dst Station)
	// FrameDuplicated records one extra reception injected by the hostile
	// channel (a duplicated or replayed frame), so the tx-conservation law
	// can credit the surplus. It fires before the matching FrameDelivered.
	FrameDuplicated(f Frame)
}

// Channel serializes frames at the medium boundary (hostile-channel
// extension). When installed, every accepted Send is encoded once and
// each reception is decoded independently, so injected byte corruption
// meets the same defensive decoding a real radio would need. Encode must
// return a fresh buffer each call; delivered buffers are never mutated.
type Channel interface {
	Encode(f Frame) ([]byte, error)
	Decode(b []byte) (Frame, error)
}

// Corrupter mutates in-flight frame bytes. Corrupt is called once per
// reception with the sender's encoding; it must never modify b in place
// (the buffer is shared across all receivers of one transmission) and
// returns the bytes to decode, whether they were mutated, and whether the
// frame additionally arrives a second time (duplication).
type Corrupter interface {
	Corrupt(b []byte) (out []byte, corrupted, dup bool)
}

// LossModel decides whether a particular reception is dropped.
type LossModel interface {
	// Drop reports whether the frame from src is lost at dst.
	Drop(src, dst NodeID) bool
}

// FrameLossModel is an optional refinement of LossModel: a loss model that
// also implements it is consulted with the full frame, so drops can depend
// on traffic category or payload (e.g. a test that loses exactly the first
// failure report, or a scripted loss burst).
type FrameLossModel interface {
	LossModel
	// DropFrame reports whether frame f is lost at dst.
	DropFrame(f Frame, dst NodeID) bool
}

// OutageModel silences regions of the field: a station whose position is
// silenced can neither be heard nor hear anything (a radio blackout, e.g.
// jamming or EMP in a disaster scenario). Implementations are typically
// driven by the simulation clock.
type OutageModel interface {
	// Silenced reports whether a station at pos is inside a blackout.
	Silenced(pos geom.Point) bool
}

// BernoulliLoss drops each reception independently with probability P,
// drawing from Rand. Rand must be non-nil whenever P > 0; NewMedium
// rejects a misconfigured model instead of panicking mid-run.
type BernoulliLoss struct {
	P    float64
	Rand interface{ Float64() float64 }
}

// Drop implements LossModel. A zero-probability model never drops, even
// without a random source.
func (l *BernoulliLoss) Drop(NodeID, NodeID) bool {
	if l.P <= 0 {
		return false
	}
	return l.Rand.Float64() < l.P
}

// Validate reports whether the model is usable.
func (l *BernoulliLoss) Validate() error {
	if l == nil {
		return nil
	}
	if l.P < 0 || l.P > 1 {
		return fmt.Errorf("radio: loss probability %v outside [0,1]", l.P)
	}
	if l.P > 0 && l.Rand == nil {
		return fmt.Errorf("radio: BernoulliLoss with P=%v needs a random source (Rand is nil)", l.P)
	}
	return nil
}

var _ LossModel = (*BernoulliLoss)(nil)

// Config parameterizes a Medium.
type Config struct {
	// CellSize is the spatial-index grid pitch in meters; it should be
	// close to the most common transmission range. Zero selects 63 m
	// (the paper's sensor range).
	CellSize float64
	// Latency is the virtual time between Send and delivery. Zero means
	// synchronous delivery within the same event. Ignored when the
	// contention model is enabled (airtime then governs timing).
	Latency sim.Duration
	// Loss optionally drops receptions. Nil means lossless.
	Loss LossModel
	// Outage optionally silences regions of the field. Nil means no
	// blackouts.
	Outage OutageModel
	// Contention optionally enables the MAC collision model.
	Contention ContentionConfig
	// Channel, when non-nil, serializes every frame on Send and decodes it
	// per reception (hostile-channel extension). Nil keeps the frames as
	// Go values, byte-for-byte reproducing the codec-free medium.
	Channel Channel
	// Corrupter, when non-nil, mutates in-flight bytes between Encode and
	// Decode. Requires Channel; NewMedium rejects the combination without
	// one.
	Corrupter Corrupter
}

// Medium is the shared wireless channel. It is single-threaded, driven by
// the simulation scheduler.
type Medium struct {
	sched    *sim.Scheduler
	reg      *metrics.Registry
	cfg      Config
	stations map[NodeID]Station
	grid     map[cellKey][]NodeID
	air      *air
	frameSeq uint64
	// scratch is the reusable neighbor buffer for broadcast delivery; it
	// keeps the per-Send []Station allocation off the hot path. Borrow it
	// with neighbors() and hand it back with recycle().
	scratch []Station
	// collisionCt is the pre-resolved handle for the contention model's
	// per-reception collision accounting.
	collisionCt *metrics.Counter
	// frameLoss caches the FrameLossModel view of cfg.Loss (nil when the
	// model only implements per-pair Drop), keeping the type assertion off
	// the delivery path.
	frameLoss FrameLossModel
	// audit, when non-nil, observes every transmission and delivery.
	audit Auditor
	// channelDrop, when non-nil, observes every frame the hostile channel
	// drops as malformed (telemetry feed; see SetChannelDropHook).
	channelDrop func(f Frame)
}

// sendSnapshot freezes the sender's position and range at Send time.
type sendSnapshot struct {
	pos geom.Point
	rng float64
}

type cellKey struct{ cx, cy int }

// NewMedium returns an empty medium using the given scheduler and metrics
// registry. It rejects a misconfigured loss model (any model exposing
// Validate, e.g. a BernoulliLoss whose Rand is nil) so the error surfaces
// at construction instead of as a panic on the first dropped reception.
func NewMedium(sched *sim.Scheduler, reg *metrics.Registry, cfg Config) (*Medium, error) {
	if cfg.CellSize <= 0 {
		cfg.CellSize = 63
	}
	if v, ok := cfg.Loss.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("radio: invalid loss model: %w", err)
		}
	}
	if cfg.Corrupter != nil && cfg.Channel == nil {
		return nil, fmt.Errorf("radio: a Corrupter needs a Channel to produce bytes to corrupt")
	}
	fl, _ := cfg.Loss.(FrameLossModel)
	return &Medium{
		sched:       sched,
		reg:         reg,
		cfg:         cfg,
		stations:    make(map[NodeID]Station),
		grid:        make(map[cellKey][]NodeID),
		air:         newAir(),
		collisionCt: reg.Counter(CatCollision),
		frameLoss:   fl,
	}, nil
}

// SetLoss replaces the medium's loss model (nil restores lossless
// delivery). Tests use it to wrap the configured model with targeted
// drops — e.g. losing exactly the first failure report of a run.
func (m *Medium) SetLoss(l LossModel) {
	m.cfg.Loss = l
	m.frameLoss, _ = l.(FrameLossModel)
}

// Loss returns the medium's current loss model (nil when lossless), so a
// wrapper installed via SetLoss can delegate to it.
func (m *Medium) Loss() LossModel { return m.cfg.Loss }

// SetAuditor installs (or, with nil, removes) the medium's delivery
// auditor.
func (m *Medium) SetAuditor(a Auditor) { m.audit = a }

// SetChannelDropHook installs (or, with nil, removes) an observer called
// once per frame the hostile channel drops as malformed. The frame passed
// is the sender's view (the received bytes failed to decode).
func (m *Medium) SetChannelDropHook(hook func(f Frame)) { m.channelDrop = hook }

// Attach registers a station at its current position. Attaching an ID that
// is already present replaces the previous station.
func (m *Medium) Attach(s Station) {
	if old, ok := m.stations[s.RadioID()]; ok {
		m.removeFromGrid(old.RadioID(), old.RadioPos())
	}
	m.stations[s.RadioID()] = s
	m.addToGrid(s.RadioID(), s.RadioPos())
}

// Detach removes a station from the medium entirely.
func (m *Medium) Detach(id NodeID) {
	s, ok := m.stations[id]
	if !ok {
		return
	}
	m.removeFromGrid(id, s.RadioPos())
	delete(m.stations, id)
}

// Moved must be called after a station's position changes so the spatial
// index stays consistent.
func (m *Medium) Moved(id NodeID, oldPos geom.Point) {
	s, ok := m.stations[id]
	if !ok {
		return
	}
	oldKey := m.keyOf(oldPos)
	newKey := m.keyOf(s.RadioPos())
	if oldKey == newKey {
		return
	}
	m.removeFromGridAt(id, oldKey)
	m.addToGrid(id, s.RadioPos())
}

// Station returns the attached station with the given ID, or nil.
func (m *Medium) Station(id NodeID) Station { return m.stations[id] }

// Len reports the number of attached stations.
func (m *Medium) Len() int { return len(m.stations) }

func (m *Medium) keyOf(p geom.Point) cellKey {
	return cellKey{
		cx: int(math.Floor(p.X / m.cfg.CellSize)),
		cy: int(math.Floor(p.Y / m.cfg.CellSize)),
	}
}

func (m *Medium) addToGrid(id NodeID, p geom.Point) {
	k := m.keyOf(p)
	m.grid[k] = append(m.grid[k], id)
}

func (m *Medium) removeFromGrid(id NodeID, p geom.Point) {
	m.removeFromGridAt(id, m.keyOf(p))
}

func (m *Medium) removeFromGridAt(id NodeID, k cellKey) {
	ids := m.grid[k]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			m.grid[k] = ids[:len(ids)-1]
			return
		}
	}
}

// InRange returns the active stations strictly within radius of p,
// excluding the station with ID exclude. Results are in deterministic
// (ID-sorted) order. The returned slice is freshly allocated; internal
// delivery paths use the reusable scratch buffer instead (see neighbors).
func (m *Medium) InRange(p geom.Point, radius float64, exclude NodeID) []Station {
	if radius <= 0 {
		return nil
	}
	return m.inRangeAppend(nil, p, radius, exclude)
}

// inRangeAppend appends the active stations strictly within radius of p
// (excluding exclude) to dst in ID-sorted order and returns the extended
// slice.
func (m *Medium) inRangeAppend(dst []Station, p geom.Point, radius float64, exclude NodeID) []Station {
	if radius <= 0 {
		return dst
	}
	base := len(dst)
	r2 := radius * radius
	lo := m.keyOf(geom.Pt(p.X-radius, p.Y-radius))
	hi := m.keyOf(geom.Pt(p.X+radius, p.Y+radius))
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, id := range m.grid[cellKey{cx, cy}] {
				if id == exclude {
					continue
				}
				s := m.stations[id]
				if s == nil || !s.RadioActive() {
					continue
				}
				if p.Dist2(s.RadioPos()) <= r2 {
					dst = append(dst, s)
				}
			}
		}
	}
	sortStations(dst[base:])
	return dst
}

// neighbors fills the medium's scratch buffer with the active stations in
// range. The caller owns the returned slice until it hands it back via
// recycle; taking ownership (nilling m.scratch) keeps reentrant Sends —
// flood relays retransmit synchronously from HandleFrame — from clobbering
// the buffer mid-iteration.
func (m *Medium) neighbors(p geom.Point, radius float64, exclude NodeID) []Station {
	buf := m.scratch[:0]
	m.scratch = nil
	return m.inRangeAppend(buf, p, radius, exclude)
}

// recycle returns a neighbors buffer for reuse, dropping station
// references so detached stations are not pinned. When reentrant delivery
// installed its own (smaller) buffer meanwhile, the larger one wins.
func (m *Medium) recycle(buf []Station) {
	for i := range buf {
		buf[i] = nil
	}
	if cap(buf) > cap(m.scratch) {
		m.scratch = buf[:0]
	}
}

func sortStations(ss []Station) {
	// Insertion sort: neighbor lists are short (tens of entries) and this
	// avoids the sort.Slice closure allocation on the hottest path.
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].RadioID() < ss[j-1].RadioID(); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Send transmits one frame from the station f.Src. The transmission is
// counted in f.Category regardless of how many stations receive it (a
// single wireless transmission reaches all neighbors). Inactive or
// detached senders transmit nothing.
func (m *Medium) Send(f Frame) {
	src, ok := m.stations[f.Src]
	if !ok || !src.RadioActive() {
		return
	}
	m.reg.CountTx(f.Category, 1)
	if m.audit != nil {
		m.audit.FrameSent(f)
	}
	// With a channel installed the frame is serialized exactly once per
	// transmission, into a fresh buffer (replay capture keeps references).
	var enc []byte
	if m.cfg.Channel != nil {
		b, err := m.cfg.Channel.Encode(f)
		if err != nil {
			// Only payloads outside the wire message set fail to encode —
			// a programming error, not a channel condition.
			panic(fmt.Sprintf("radio: unencodable %s frame: %v", f.Category, err))
		}
		enc = b
	}
	if m.cfg.Contention.Enabled() {
		m.sendContended(f, enc, sendSnapshot{pos: src.RadioPos(), rng: src.RadioRange()})
		return
	}
	if m.cfg.Latency <= 0 {
		m.deliver(f, enc, src.RadioPos(), src.RadioRange())
		return
	}
	pos, rng := src.RadioPos(), src.RadioRange()
	m.sched.After(m.cfg.Latency, func() { m.deliver(f, enc, pos, rng) })
}

// CatBlackout is the metrics category counting transmissions swallowed
// whole by a regional radio blackout (the sender was inside a silenced
// region). Receivers silently missing a frame are not counted, matching
// how range and loss drops are accounted.
const CatBlackout = "blackout_drop"

// lost reports whether frame f fails to decode at dst, consulting the
// frame-aware model when the configured loss model provides one.
func (m *Medium) lost(f Frame, dst NodeID) bool {
	if m.cfg.Loss == nil {
		return false
	}
	if m.frameLoss != nil {
		return m.frameLoss.DropFrame(f, dst)
	}
	return m.cfg.Loss.Drop(f.Src, dst)
}

// silenced reports whether a station at p is inside a blackout region.
func (m *Medium) silenced(p geom.Point) bool {
	return m.cfg.Outage != nil && m.cfg.Outage.Silenced(p)
}

func (m *Medium) deliver(f Frame, enc []byte, from geom.Point, rng float64) {
	if m.silenced(from) {
		m.reg.CountTx(CatBlackout, 1)
		return
	}
	if f.Dst != IDBroadcast {
		dst, ok := m.stations[f.Dst]
		if !ok || !dst.RadioActive() {
			return
		}
		if from.Dist2(dst.RadioPos()) > rng*rng {
			return
		}
		if m.silenced(dst.RadioPos()) {
			return
		}
		if m.lost(f, f.Dst) {
			return
		}
		m.handoff(f, enc, from, rng, dst)
		return
	}
	buf := m.neighbors(from, rng, f.Src)
	for _, s := range buf {
		if m.silenced(s.RadioPos()) {
			continue
		}
		if m.lost(f, s.RadioID()) {
			continue
		}
		m.handoff(f, enc, from, rng, s)
	}
	m.recycle(buf)
}

// CatCorruptFrame counts receptions whose bytes the hostile channel
// mutated (including injected duplicates and replays); CatMalformed
// counts receptions the defensive decoder then dropped — checksum
// failures, truncations, and misaddressed replays the NIC filter rejects.
const (
	CatCorruptFrame = "corrupt_frame"
	CatMalformed    = "drop_malformed"
)

// handoff passes one reception to a station. With no channel installed it
// reduces to the audit hook plus HandleFrame; otherwise the reception is
// independently corrupted and defensively decoded first.
func (m *Medium) handoff(f Frame, enc []byte, from geom.Point, rng float64, dst Station) {
	if enc == nil {
		if m.audit != nil {
			m.audit.FrameDelivered(f, from, rng, dst)
		}
		dst.HandleFrame(f)
		return
	}
	b, corrupted, dup := enc, false, false
	if m.cfg.Corrupter != nil {
		b, corrupted, dup = m.cfg.Corrupter.Corrupt(enc)
	}
	if corrupted || dup {
		m.reg.CountTx(CatCorruptFrame, 1)
	}
	g, err := m.cfg.Channel.Decode(b)
	if err != nil {
		// Checksum or structure failure: drop, count, never act on it.
		m.reg.CountTx(CatMalformed, 1)
		if m.channelDrop != nil {
			m.channelDrop(f)
		}
		return
	}
	// NIC address filter: a replayed frame captured elsewhere may carry a
	// unicast address for some other station; the hardware filter discards
	// it before the stack ever sees it.
	if g.Dst != IDBroadcast && g.Dst != dst.RadioID() {
		m.reg.CountTx(CatMalformed, 1)
		if m.channelDrop != nil {
			m.channelDrop(g)
		}
		return
	}
	if corrupted && m.audit != nil {
		// CRC-32/IEEE detects all 1–3-bit mutations at these frame sizes,
		// so a mutated frame that still decodes can only be a stale replay
		// of a previously valid frame — an extra delivery the
		// tx-conservation law must credit.
		m.audit.FrameDuplicated(g)
	}
	if m.audit != nil {
		m.audit.FrameDelivered(g, from, rng, dst)
	}
	dst.HandleFrame(g)
	if dup {
		if m.audit != nil {
			m.audit.FrameDuplicated(g)
			m.audit.FrameDelivered(g, from, rng, dst)
		}
		dst.HandleFrame(g)
	}
}

// Scheduler exposes the simulation scheduler driving this medium.
func (m *Medium) Scheduler() *sim.Scheduler { return m.sched }

// Metrics exposes the metrics registry transmissions are counted in.
func (m *Medium) Metrics() *metrics.Registry { return m.reg }
