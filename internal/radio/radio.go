// Package radio simulates the shared wireless medium: a unit-disk
// propagation model with per-transmission accounting, optional per-hop
// latency and loss, and a uniform-grid spatial index for neighbor lookup.
//
// This replaces the paper's GloMoSim/802.11 substrate. The paper reports
// 100% delivery ("high density of sensor nodes and low traffic load"), so
// the default medium is lossless; Bernoulli loss can be injected for
// robustness experiments. Every call to Send counts exactly one wireless
// transmission in the run's metrics registry — the unit of the paper's
// messaging-overhead metric (Figure 4).
package radio

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/sim"
)

// NodeID identifies a station (sensor, robot, or manager) on the medium.
type NodeID int

// IDBroadcast addresses a frame to every station in transmission range.
const IDBroadcast NodeID = -1

// String formats the ID, naming the broadcast address.
func (id NodeID) String() string {
	if id == IDBroadcast {
		return "bcast"
	}
	return fmt.Sprintf("n%d", int(id))
}

// Frame is one link-layer transmission. Payload is interpreted by the
// network layer; Category attributes the transmission in the metrics
// registry.
type Frame struct {
	Src      NodeID
	Dst      NodeID // IDBroadcast for one-hop broadcast
	Category string
	Payload  any
}

// Station is anything attached to the medium.
type Station interface {
	// RadioID returns the station's medium address.
	RadioID() NodeID
	// RadioPos returns the station's current location.
	RadioPos() geom.Point
	// RadioRange returns the station's transmission range in meters.
	RadioRange() float64
	// RadioActive reports whether the station can send and receive
	// (failed sensors are inactive but remain attached).
	RadioActive() bool
	// HandleFrame delivers a received frame.
	HandleFrame(f Frame)
}

// MobileStation marks a station whose position changes continuously
// between Moved notifications — robots interpolate along their travel
// legs, so only a live RadioPos call yields the exact position. The
// medium re-polls RadioPos on every query for a station reporting
// RadioMobile; for everything else it uses the position cached at Attach
// and refreshed at Moved, which keeps broadcasts from paying an interface
// call per candidate.
type MobileStation interface {
	Station
	// RadioMobile reports whether the station moves between Moved calls.
	RadioMobile() bool
}

// Auditor observes the medium's transmissions and deliveries for
// conservation checking (the invariant layer). FrameSent fires once per
// accepted Send; FrameDelivered fires immediately before each
// Station.HandleFrame with the sender's position and range at
// transmission time, on both the direct and the contended delivery path.
// A nil auditor costs one pointer test per event.
type Auditor interface {
	// FrameSent records one accepted transmission.
	FrameSent(f Frame)
	// FrameDelivered records one reception about to be handed to dst.
	FrameDelivered(f Frame, from geom.Point, rng float64, dst Station)
	// FrameDuplicated records one extra reception injected by the hostile
	// channel (a duplicated or replayed frame), so the tx-conservation law
	// can credit the surplus. It fires before the matching FrameDelivered.
	FrameDuplicated(f Frame)
}

// Channel serializes frames at the medium boundary (hostile-channel
// extension). When installed, every accepted Send is encoded once and
// each reception is decoded independently, so injected byte corruption
// meets the same defensive decoding a real radio would need. Encode must
// return a fresh buffer each call; delivered buffers are never mutated.
type Channel interface {
	Encode(f Frame) ([]byte, error)
	Decode(b []byte) (Frame, error)
}

// Corrupter mutates in-flight frame bytes. Corrupt is called once per
// reception with the sender's encoding; it must never modify b in place
// (the buffer is shared across all receivers of one transmission) and
// returns the bytes to decode, whether they were mutated, and whether the
// frame additionally arrives a second time (duplication).
type Corrupter interface {
	Corrupt(b []byte) (out []byte, corrupted, dup bool)
}

// LossModel decides whether a particular reception is dropped.
type LossModel interface {
	// Drop reports whether the frame from src is lost at dst.
	Drop(src, dst NodeID) bool
}

// FrameLossModel is an optional refinement of LossModel: a loss model that
// also implements it is consulted with the full frame, so drops can depend
// on traffic category or payload (e.g. a test that loses exactly the first
// failure report, or a scripted loss burst).
type FrameLossModel interface {
	LossModel
	// DropFrame reports whether frame f is lost at dst.
	DropFrame(f Frame, dst NodeID) bool
}

// OutageModel silences regions of the field: a station whose position is
// silenced can neither be heard nor hear anything (a radio blackout, e.g.
// jamming or EMP in a disaster scenario). Implementations are typically
// driven by the simulation clock.
type OutageModel interface {
	// Silenced reports whether a station at pos is inside a blackout.
	Silenced(pos geom.Point) bool
}

// BernoulliLoss drops each reception independently with probability P,
// drawing from Rand. Rand must be non-nil whenever P > 0; NewMedium
// rejects a misconfigured model instead of panicking mid-run.
type BernoulliLoss struct {
	P    float64
	Rand interface{ Float64() float64 }
}

// Drop implements LossModel. A zero-probability model never drops, even
// without a random source.
func (l *BernoulliLoss) Drop(NodeID, NodeID) bool {
	if l.P <= 0 {
		return false
	}
	return l.Rand.Float64() < l.P
}

// Validate reports whether the model is usable.
func (l *BernoulliLoss) Validate() error {
	if l == nil {
		return nil
	}
	if l.P < 0 || l.P > 1 {
		return fmt.Errorf("radio: loss probability %v outside [0,1]", l.P)
	}
	if l.P > 0 && l.Rand == nil {
		return fmt.Errorf("radio: BernoulliLoss with P=%v needs a random source (Rand is nil)", l.P)
	}
	return nil
}

var _ LossModel = (*BernoulliLoss)(nil)

// Config parameterizes a Medium.
type Config struct {
	// CellSize is the spatial-index grid pitch in meters; it should be
	// close to the most common transmission range. Zero selects 63 m
	// (the paper's sensor range).
	CellSize float64
	// Latency is the virtual time between Send and delivery. Zero means
	// synchronous delivery within the same event. Ignored when the
	// contention model is enabled (airtime then governs timing).
	Latency sim.Duration
	// Loss optionally drops receptions. Nil means lossless.
	Loss LossModel
	// Outage optionally silences regions of the field. Nil means no
	// blackouts.
	Outage OutageModel
	// Contention optionally enables the MAC collision model.
	Contention ContentionConfig
	// Channel, when non-nil, serializes every frame on Send and decodes it
	// per reception (hostile-channel extension). Nil keeps the frames as
	// Go values, byte-for-byte reproducing the codec-free medium.
	Channel Channel
	// Corrupter, when non-nil, mutates in-flight bytes between Encode and
	// Decode. Requires Channel; NewMedium rejects the combination without
	// one.
	Corrupter Corrupter
}

// Medium is the shared wireless channel. It is single-threaded, driven by
// the simulation scheduler.
//
// Per-station hot state lives in ID-indexed slices (struct-of-arrays):
// node IDs are small dense integers assigned by the world builder, so a
// slice index replaces a map lookup on every candidate the broadcast path
// touches. The cached position and activity are authoritative for
// everything except mobile stations' positions (see MobileStation);
// stations that change activity while attached must call SetActive.
type Medium struct {
	sched    *sim.Scheduler
	reg      *metrics.Registry
	cfg      Config
	stations []Station // indexed by NodeID; nil when not attached
	pos      []geom.Point
	active   []bool
	mobile   []bool
	cell     []cellKey // authoritative grid membership
	count    int
	grid     map[cellKey][]NodeID
	air      *air
	frameSeq uint64
	// scratch is the reusable neighbor buffer for broadcast delivery; it
	// keeps the per-Send slice allocation off the hot path. Borrow it
	// with neighbors() and hand it back with recycle().
	scratch []neighbor
	// collisionCt is the pre-resolved handle for the contention model's
	// per-reception collision accounting.
	collisionCt *metrics.Counter
	// frameLoss caches the FrameLossModel view of cfg.Loss (nil when the
	// model only implements per-pair Drop), keeping the type assertion off
	// the delivery path.
	frameLoss FrameLossModel
	// audit, when non-nil, observes every transmission and delivery.
	audit Auditor
	// channelDrop, when non-nil, observes every frame the hostile channel
	// drops as malformed (telemetry feed; see SetChannelDropHook).
	channelDrop func(f Frame)
}

// sendSnapshot freezes the sender's position and range at Send time.
type sendSnapshot struct {
	pos geom.Point
	rng float64
}

type cellKey struct{ cx, cy int }

// NewMedium returns an empty medium using the given scheduler and metrics
// registry. It rejects a misconfigured loss model (any model exposing
// Validate, e.g. a BernoulliLoss whose Rand is nil) so the error surfaces
// at construction instead of as a panic on the first dropped reception.
func NewMedium(sched *sim.Scheduler, reg *metrics.Registry, cfg Config) (*Medium, error) {
	if cfg.CellSize <= 0 {
		cfg.CellSize = 63
	}
	if v, ok := cfg.Loss.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("radio: invalid loss model: %w", err)
		}
	}
	if cfg.Corrupter != nil && cfg.Channel == nil {
		return nil, fmt.Errorf("radio: a Corrupter needs a Channel to produce bytes to corrupt")
	}
	fl, _ := cfg.Loss.(FrameLossModel)
	return &Medium{
		sched:       sched,
		reg:         reg,
		cfg:         cfg,
		grid:        make(map[cellKey][]NodeID),
		air:         newAir(),
		collisionCt: reg.Counter(CatCollision),
		frameLoss:   fl,
	}, nil
}

// SetLoss replaces the medium's loss model (nil restores lossless
// delivery). Tests use it to wrap the configured model with targeted
// drops — e.g. losing exactly the first failure report of a run.
func (m *Medium) SetLoss(l LossModel) {
	m.cfg.Loss = l
	m.frameLoss, _ = l.(FrameLossModel)
}

// Loss returns the medium's current loss model (nil when lossless), so a
// wrapper installed via SetLoss can delegate to it.
func (m *Medium) Loss() LossModel { return m.cfg.Loss }

// SetAuditor installs (or, with nil, removes) the medium's delivery
// auditor.
func (m *Medium) SetAuditor(a Auditor) { m.audit = a }

// SetChannelDropHook installs (or, with nil, removes) an observer called
// once per frame the hostile channel drops as malformed. The frame passed
// is the sender's view (the received bytes failed to decode).
func (m *Medium) SetChannelDropHook(hook func(f Frame)) { m.channelDrop = hook }

// ensureID grows the per-station state arrays to cover id.
func (m *Medium) ensureID(id NodeID) {
	need := int(id) + 1
	if need <= len(m.stations) {
		return
	}
	for len(m.stations) < need {
		m.stations = append(m.stations, nil)
		m.pos = append(m.pos, geom.Point{})
		m.active = append(m.active, false)
		m.mobile = append(m.mobile, false)
		m.cell = append(m.cell, cellKey{})
	}
}

// station returns the attached station with the given ID, or nil.
func (m *Medium) station(id NodeID) Station {
	if id < 0 || int(id) >= len(m.stations) {
		return nil
	}
	return m.stations[id]
}

// posOf returns a station's exact current position: the live RadioPos for
// mobile stations, the cached position for everything else.
func (m *Medium) posOf(id NodeID) geom.Point {
	if m.mobile[id] {
		return m.stations[id].RadioPos()
	}
	return m.pos[id]
}

// Attach registers a station at its current position. Attaching an ID that
// is already present replaces the previous station. IDs must be
// non-negative (the world builder assigns small dense integers).
func (m *Medium) Attach(s Station) {
	id := s.RadioID()
	if id < 0 {
		return
	}
	m.ensureID(id)
	if m.stations[id] != nil {
		m.removeFromGridAt(id, m.cell[id])
		m.count--
	}
	m.stations[id] = s
	ms, ok := s.(MobileStation)
	m.mobile[id] = ok && ms.RadioMobile()
	p := s.RadioPos()
	m.pos[id] = p
	m.active[id] = s.RadioActive()
	k := m.keyOf(p)
	m.cell[id] = k
	m.grid[k] = append(m.grid[k], id)
	m.count++
}

// Detach removes a station from the medium entirely.
func (m *Medium) Detach(id NodeID) {
	if m.station(id) == nil {
		return
	}
	m.removeFromGridAt(id, m.cell[id])
	m.stations[id] = nil
	m.active[id] = false
	m.mobile[id] = false
	m.count--
}

// SetActive updates the medium's activity cache for an attached station.
// Stations whose RadioActive answer changes while attached (sensor death,
// robot breakdown) must call this; the delivery paths consult only the
// cache.
func (m *Medium) SetActive(id NodeID, active bool) {
	if m.station(id) != nil {
		m.active[id] = active
	}
}

// Moved must be called after a station's position changes so the spatial
// index stays consistent. The old position is no longer needed — the
// medium tracks grid membership itself — but the parameter is kept so
// call sites read naturally.
func (m *Medium) Moved(id NodeID, oldPos geom.Point) {
	_ = oldPos
	s := m.station(id)
	if s == nil {
		return
	}
	p := s.RadioPos()
	m.pos[id] = p
	newKey := m.keyOf(p)
	if newKey == m.cell[id] {
		return
	}
	m.removeFromGridAt(id, m.cell[id])
	m.cell[id] = newKey
	m.grid[newKey] = append(m.grid[newKey], id)
}

// Station returns the attached station with the given ID, or nil.
func (m *Medium) Station(id NodeID) Station { return m.station(id) }

// Len reports the number of attached stations.
func (m *Medium) Len() int { return m.count }

func (m *Medium) keyOf(p geom.Point) cellKey {
	return cellKey{
		cx: int(math.Floor(p.X / m.cfg.CellSize)),
		cy: int(math.Floor(p.Y / m.cfg.CellSize)),
	}
}

func (m *Medium) removeFromGridAt(id NodeID, k cellKey) {
	ids := m.grid[k]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			m.grid[k] = ids[:len(ids)-1]
			return
		}
	}
}

// neighbor pairs a candidate's ID with its station for delivery, so the
// per-receiver loops never go back through a lookup.
type neighbor struct {
	id NodeID
	st Station
}

// InRange returns the active stations strictly within radius of p,
// excluding the station with ID exclude. Results are in deterministic
// (ID-sorted) order. The returned slice is freshly allocated; internal
// delivery paths use the reusable scratch buffer instead (see neighbors).
func (m *Medium) InRange(p geom.Point, radius float64, exclude NodeID) []Station {
	if radius <= 0 {
		return nil
	}
	ns := m.inRangeAppend(nil, p, radius, exclude)
	if ns == nil {
		return nil
	}
	out := make([]Station, len(ns))
	for i, n := range ns {
		out[i] = n.st
	}
	return out
}

// RangeEntry is one result of an in-range query: the station's ID and its
// current position, with no station reference — callers that only route by
// geometry avoid the interface loads entirely.
type RangeEntry struct {
	ID  NodeID
	Loc geom.Point
}

// AppendInRange appends the active stations strictly within radius of p
// (excluding exclude) to dst in ID-sorted order and returns the extended
// slice. Reusing dst across calls keeps the per-hop routing query
// allocation-free in the steady state.
func (m *Medium) AppendInRange(dst []RangeEntry, p geom.Point, radius float64, exclude NodeID) []RangeEntry {
	if radius <= 0 {
		return dst
	}
	base := len(dst)
	r2 := radius * radius
	lo := m.keyOf(geom.Pt(p.X-radius, p.Y-radius))
	hi := m.keyOf(geom.Pt(p.X+radius, p.Y+radius))
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, id := range m.grid[cellKey{cx, cy}] {
				if id == exclude || !m.active[id] {
					continue
				}
				q := m.pos[id]
				if m.mobile[id] {
					q = m.stations[id].RadioPos()
				}
				if p.Dist2(q) <= r2 {
					dst = append(dst, RangeEntry{ID: id, Loc: q})
				}
			}
		}
	}
	sortRangeEntries(dst[base:])
	return dst
}

// inRangeAppend appends the active stations strictly within radius of p
// (excluding exclude) to dst in ID-sorted order and returns the extended
// slice. Candidates resolve through the SoA caches: one bounds-checked
// slice load each for activity and position, no interface calls except for
// mobile stations.
func (m *Medium) inRangeAppend(dst []neighbor, p geom.Point, radius float64, exclude NodeID) []neighbor {
	if radius <= 0 {
		return dst
	}
	base := len(dst)
	r2 := radius * radius
	lo := m.keyOf(geom.Pt(p.X-radius, p.Y-radius))
	hi := m.keyOf(geom.Pt(p.X+radius, p.Y+radius))
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, id := range m.grid[cellKey{cx, cy}] {
				if id == exclude || !m.active[id] {
					continue
				}
				q := m.pos[id]
				if m.mobile[id] {
					q = m.stations[id].RadioPos()
				}
				if p.Dist2(q) <= r2 {
					dst = append(dst, neighbor{id: id, st: m.stations[id]})
				}
			}
		}
	}
	sortNeighbors(dst[base:])
	return dst
}

// neighbors fills the medium's scratch buffer with the active stations in
// range. The caller owns the returned slice until it hands it back via
// recycle; taking ownership (nilling m.scratch) keeps reentrant Sends —
// flood relays retransmit synchronously from HandleFrame — from clobbering
// the buffer mid-iteration.
func (m *Medium) neighbors(p geom.Point, radius float64, exclude NodeID) []neighbor {
	buf := m.scratch[:0]
	m.scratch = nil
	return m.inRangeAppend(buf, p, radius, exclude)
}

// recycle returns a neighbors buffer for reuse, dropping station
// references so detached stations are not pinned. When reentrant delivery
// installed its own (smaller) buffer meanwhile, the larger one wins.
func (m *Medium) recycle(buf []neighbor) {
	for i := range buf {
		buf[i] = neighbor{}
	}
	if cap(buf) > cap(m.scratch) {
		m.scratch = buf[:0]
	}
}

// sortCutover is the neighbor count above which sortNeighbors switches
// from insertion sort to slices.SortFunc: past a few dozen entries the
// quadratic cost of insertion sort overtakes pdqsort's overhead.
const sortCutover = 24

func sortNeighbors(ns []neighbor) {
	if len(ns) > sortCutover {
		slices.SortFunc(ns, func(a, b neighbor) int { return cmp.Compare(a.id, b.id) })
		return
	}
	// Insertion sort: typical neighbor lists are short, and this avoids
	// any sort-machinery overhead on the hottest path.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].id < ns[j-1].id; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func sortRangeEntries(ns []RangeEntry) {
	if len(ns) > sortCutover {
		slices.SortFunc(ns, func(a, b RangeEntry) int { return cmp.Compare(a.ID, b.ID) })
		return
	}
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].ID < ns[j-1].ID; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// Send transmits one frame from the station f.Src. The transmission is
// counted in f.Category regardless of how many stations receive it (a
// single wireless transmission reaches all neighbors). Inactive or
// detached senders transmit nothing.
func (m *Medium) Send(f Frame) {
	src := m.station(f.Src)
	if src == nil || !m.active[f.Src] {
		return
	}
	m.reg.CountTx(f.Category, 1)
	if m.audit != nil {
		m.audit.FrameSent(f)
	}
	// With a channel installed the frame is serialized exactly once per
	// transmission, into a fresh buffer (replay capture keeps references).
	var enc []byte
	if m.cfg.Channel != nil {
		b, err := m.cfg.Channel.Encode(f)
		if err != nil {
			// Only payloads outside the wire message set fail to encode —
			// a programming error, not a channel condition.
			panic(fmt.Sprintf("radio: unencodable %s frame: %v", f.Category, err))
		}
		enc = b
	}
	pos, rng := m.posOf(f.Src), src.RadioRange()
	if m.cfg.Contention.Enabled() {
		m.sendContended(f, enc, sendSnapshot{pos: pos, rng: rng})
		return
	}
	if m.cfg.Latency <= 0 {
		m.deliver(f, enc, pos, rng)
		return
	}
	m.sched.After(m.cfg.Latency, func() { m.deliver(f, enc, pos, rng) })
}

// CatBlackout is the metrics category counting transmissions swallowed
// whole by a regional radio blackout (the sender was inside a silenced
// region). Receivers silently missing a frame are not counted, matching
// how range and loss drops are accounted.
const CatBlackout = "blackout_drop"

// lost reports whether frame f fails to decode at dst, consulting the
// frame-aware model when the configured loss model provides one.
func (m *Medium) lost(f Frame, dst NodeID) bool {
	if m.cfg.Loss == nil {
		return false
	}
	if m.frameLoss != nil {
		return m.frameLoss.DropFrame(f, dst)
	}
	return m.cfg.Loss.Drop(f.Src, dst)
}

// silenced reports whether a station at p is inside a blackout region.
func (m *Medium) silenced(p geom.Point) bool {
	return m.cfg.Outage != nil && m.cfg.Outage.Silenced(p)
}

func (m *Medium) deliver(f Frame, enc []byte, from geom.Point, rng float64) {
	if m.silenced(from) {
		m.reg.CountTx(CatBlackout, 1)
		return
	}
	if f.Dst != IDBroadcast {
		dst := m.station(f.Dst)
		if dst == nil || !m.active[f.Dst] {
			return
		}
		dp := m.posOf(f.Dst)
		if from.Dist2(dp) > rng*rng {
			return
		}
		if m.silenced(dp) {
			return
		}
		if m.lost(f, f.Dst) {
			return
		}
		m.handoff(f, enc, from, rng, dst)
		return
	}
	buf := m.neighbors(from, rng, f.Src)
	checkOutage := m.cfg.Outage != nil
	for _, n := range buf {
		if checkOutage && m.cfg.Outage.Silenced(m.posOf(n.id)) {
			continue
		}
		if m.lost(f, n.id) {
			continue
		}
		m.handoff(f, enc, from, rng, n.st)
	}
	m.recycle(buf)
}

// CatCorruptFrame counts receptions whose bytes the hostile channel
// mutated (including injected duplicates and replays); CatMalformed
// counts receptions the defensive decoder then dropped — checksum
// failures, truncations, and misaddressed replays the NIC filter rejects.
const (
	CatCorruptFrame = "corrupt_frame"
	CatMalformed    = "drop_malformed"
)

// handoff passes one reception to a station. With no channel installed it
// reduces to the audit hook plus HandleFrame; otherwise the reception is
// independently corrupted and defensively decoded first.
func (m *Medium) handoff(f Frame, enc []byte, from geom.Point, rng float64, dst Station) {
	if enc == nil {
		if m.audit != nil {
			m.audit.FrameDelivered(f, from, rng, dst)
		}
		dst.HandleFrame(f)
		return
	}
	b, corrupted, dup := enc, false, false
	if m.cfg.Corrupter != nil {
		b, corrupted, dup = m.cfg.Corrupter.Corrupt(enc)
	}
	if corrupted || dup {
		m.reg.CountTx(CatCorruptFrame, 1)
	}
	g, err := m.cfg.Channel.Decode(b)
	if err != nil {
		// Checksum or structure failure: drop, count, never act on it.
		m.reg.CountTx(CatMalformed, 1)
		if m.channelDrop != nil {
			m.channelDrop(f)
		}
		return
	}
	// NIC address filter: a replayed frame captured elsewhere may carry a
	// unicast address for some other station; the hardware filter discards
	// it before the stack ever sees it.
	if g.Dst != IDBroadcast && g.Dst != dst.RadioID() {
		m.reg.CountTx(CatMalformed, 1)
		if m.channelDrop != nil {
			m.channelDrop(g)
		}
		return
	}
	if corrupted && m.audit != nil {
		// CRC-32/IEEE detects all 1–3-bit mutations at these frame sizes,
		// so a mutated frame that still decodes can only be a stale replay
		// of a previously valid frame — an extra delivery the
		// tx-conservation law must credit.
		m.audit.FrameDuplicated(g)
	}
	if m.audit != nil {
		m.audit.FrameDelivered(g, from, rng, dst)
	}
	dst.HandleFrame(g)
	if dup {
		if m.audit != nil {
			m.audit.FrameDuplicated(g)
			m.audit.FrameDelivered(g, from, rng, dst)
		}
		dst.HandleFrame(g)
	}
}

// Scheduler exposes the simulation scheduler driving this medium.
func (m *Medium) Scheduler() *sim.Scheduler { return m.sched }

// Metrics exposes the metrics registry transmissions are counted in.
func (m *Medium) Metrics() *metrics.Registry { return m.reg }
