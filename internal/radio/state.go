package radio

import (
	"sort"

	"roborepair/internal/checkpoint"
)

// AppendState serializes the medium's station table and MAC state in
// canonical order (checkpoint section payload): for every attached ID the
// cached position, activity, and mobility, then the contention model's
// frame counter and per-station audible intervals. Station behaviour
// (HandleFrame) is not serialized — a restored run re-attaches the
// stations by deterministic replay and this section verifies the rebuilt
// table matches.
func (m *Medium) AppendState(b []byte) []byte {
	b = checkpoint.AppendU32(b, uint32(m.count))
	for id := range m.stations {
		if m.stations[id] == nil {
			continue
		}
		b = checkpoint.AppendI64(b, int64(id))
		p := m.posOf(NodeID(id))
		b = checkpoint.AppendF64(b, p.X)
		b = checkpoint.AppendF64(b, p.Y)
		b = checkpoint.AppendBool(b, m.active[id])
		b = checkpoint.AppendBool(b, m.mobile[id])
	}

	b = checkpoint.AppendU64(b, m.frameSeq)
	ids := make([]NodeID, 0, len(m.air.byStation))
	for id, log := range m.air.byStation {
		if len(log) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = checkpoint.AppendU32(b, uint32(len(ids)))
	for _, id := range ids {
		log := m.air.byStation[id]
		b = checkpoint.AppendI64(b, int64(id))
		b = checkpoint.AppendU32(b, uint32(len(log)))
		for _, r := range log {
			b = checkpoint.AppendU64(b, r.frame)
			b = checkpoint.AppendF64(b, float64(r.start))
			b = checkpoint.AppendF64(b, float64(r.end))
		}
	}
	return b
}
