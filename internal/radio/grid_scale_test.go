package radio

import (
	"testing"

	"roborepair/internal/geom"
)

// gridRNG is a tiny deterministic generator for the scale test: math/rand
// sequences are not stable across Go releases, and this test's churn
// schedule must be reproducible.
type gridRNG uint64

func (r *gridRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = gridRNG(x)
	return x
}

func (r *gridRNG) float() float64 { return float64(r.next()%1_000_000) / 1_000_000 }

// TestGridIndexScaleChurn drives the spatial index with 100k stations
// through attach / move / deactivate / detach churn and checks sampled
// range queries against a brute-force oracle. This is the scale the
// megafield example runs at; the paper-sized tests never push the grid
// past a few hundred cells, so index bookkeeping bugs (stale cell
// membership after a boundary crossing, resurrecting detached IDs) would
// otherwise only surface as wrong simulation results.
func TestGridIndexScaleChurn(t *testing.T) {
	const (
		n      = 100_000
		side   = 6300.0 // 100x100 cells at the sensor range
		radius = 63.0
	)
	m, _, _ := newTestMedium(Config{CellSize: radius})

	// Ground-truth mirror of the medium's state.
	stations := make([]*fakeStation, n+1)
	attached := make([]bool, n+1)
	rng := gridRNG(0x9E3779B97F4A7C15)
	for id := 1; id <= n; id++ {
		s := &fakeStation{
			id:  NodeID(id),
			pos: geom.Pt(rng.float()*side, rng.float()*side),
			rng: radius,
		}
		stations[id] = s
		m.Attach(s)
		attached[id] = true
	}

	oracle := func(p geom.Point, exclude NodeID) []NodeID {
		var ids []NodeID
		for id := 1; id <= n; id++ {
			s := stations[id]
			if !attached[id] || s.inactive || NodeID(id) == exclude {
				continue
			}
			if p.Dist2(s.pos) <= radius*radius {
				ids = append(ids, NodeID(id))
			}
		}
		return ids
	}

	check := func(round int) {
		t.Helper()
		for q := 0; q < 8; q++ {
			p := geom.Pt(rng.float()*side, rng.float()*side)
			want := oracle(p, 0)
			got := m.AppendInRange(nil, p, radius, 0)
			if len(got) != len(want) {
				t.Fatalf("round %d query %v: got %d stations, oracle says %d",
					round, p, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i] {
					t.Fatalf("round %d query %v entry %d: got ID %d, want %d (order or membership)",
						round, p, i, got[i].ID, want[i])
				}
				if got[i].Loc != stations[got[i].ID].pos {
					t.Fatalf("round %d query %v: stale cached position for %d",
						round, p, got[i].ID)
				}
			}
		}
	}

	check(0)
	const rounds = 12
	for round := 1; round <= rounds; round++ {
		for op := 0; op < 20_000; op++ {
			id := NodeID(rng.next()%n + 1)
			s := stations[id]
			switch rng.next() % 8 {
			case 0, 1, 2, 3: // move — half the time across a cell boundary
				if !attached[id] {
					continue
				}
				old := s.pos
				if rng.next()%2 == 0 {
					s.pos = geom.Pt(rng.float()*side, rng.float()*side)
				} else {
					s.pos = geom.Pt(old.X+rng.float()*10-5, old.Y+rng.float()*10-5)
				}
				m.Moved(id, old)
			case 4, 5: // toggle activity
				if !attached[id] {
					continue
				}
				s.inactive = !s.inactive
				m.SetActive(id, !s.inactive)
			case 6: // detach
				if !attached[id] {
					continue
				}
				m.Detach(id)
				attached[id] = false
			case 7: // (re-)attach at a fresh position
				s.pos = geom.Pt(rng.float()*side, rng.float()*side)
				m.Attach(s)
				attached[id] = true
			}
		}
		check(round)
	}

	wantLen := 0
	for id := 1; id <= n; id++ {
		if attached[id] {
			wantLen++
		}
	}
	if m.Len() != wantLen {
		t.Fatalf("medium Len = %d, oracle says %d attached", m.Len(), wantLen)
	}
}

// TestAppendInRangeMatchesInRange pins the two query APIs to each other:
// same membership, same ID order, entry positions matching the stations.
func TestAppendInRangeMatchesInRange(t *testing.T) {
	m, _, _ := newTestMedium(Config{CellSize: 63})
	rng := gridRNG(42)
	for id := 1; id <= 500; id++ {
		m.Attach(&fakeStation{
			id:  NodeID(id),
			pos: geom.Pt(rng.float()*400, rng.float()*400),
			rng: 63,
		})
	}
	for q := 0; q < 50; q++ {
		p := geom.Pt(rng.float()*400, rng.float()*400)
		sts := m.InRange(p, 63, 3)
		ents := m.AppendInRange(nil, p, 63, 3)
		if len(sts) != len(ents) {
			t.Fatalf("query %v: InRange %d vs AppendInRange %d", p, len(sts), len(ents))
		}
		for i := range sts {
			if sts[i].RadioID() != ents[i].ID || sts[i].RadioPos() != ents[i].Loc {
				t.Fatalf("query %v entry %d: %v/%v vs %v",
					p, i, sts[i].RadioID(), sts[i].RadioPos(), ents[i])
			}
		}
	}
}
