package radio

import (
	"roborepair/internal/sim"
)

// Contention model: an optional refinement of the ideal medium that
// approximates the 802.11 MAC the paper ran on. Each transmission waits a
// random backoff, then occupies the air for a frame-length-dependent
// airtime; a receiver decodes a frame only if no other transmission it can
// hear overlaps the frame's airtime (collision otherwise). This is a
// slotted-ALOHA-with-backoff abstraction of CSMA: at the paper's traffic
// load (beacons every 10 s, sparse control traffic) collisions are rare
// and delivery stays ≈100%, matching the paper's observation, but the
// model lets robustness experiments crank the load until the MAC matters.

// CatCollision is the metrics category counting receptions lost to
// overlapping transmissions.
const CatCollision = "collision"

// ContentionConfig parameterizes the optional MAC model.
type ContentionConfig struct {
	// Airtime is how long one frame occupies the channel (e.g. a 1000 B
	// frame at 11 Mbit/s ≈ 0.73 ms).
	Airtime sim.Duration
	// MaxBackoff is the upper bound of the uniform random delay before a
	// transmission starts.
	MaxBackoff sim.Duration
	// Rand draws the backoffs.
	Rand interface{ Float64() float64 }
}

// Enabled reports whether the contention model is active.
func (c ContentionConfig) Enabled() bool {
	return c.Airtime > 0 && c.Rand != nil
}

// reception is one transmission interval audible at a station.
type reception struct {
	frame uint64
	start sim.Time
	end   sim.Time
}

// air tracks per-station audible transmission intervals.
type air struct {
	byStation map[NodeID][]reception
}

func newAir() *air {
	return &air{byStation: make(map[NodeID][]reception)}
}

// mark logs that a frame is audible at the station over [start, end).
func (a *air) mark(st NodeID, r reception) {
	log := a.byStation[st]
	// Prune entries that can no longer overlap anything in flight.
	cutoff := r.start - (r.end-r.start)*8
	keep := log[:0]
	for _, e := range log {
		if e.end > cutoff {
			keep = append(keep, e)
		}
	}
	a.byStation[st] = append(keep, r)
}

// collided reports whether any other audible interval overlaps the frame's
// interval at the station.
func (a *air) collided(st NodeID, frame uint64, start, end sim.Time) bool {
	for _, e := range a.byStation[st] {
		if e.frame == frame {
			continue
		}
		if e.start < end && start < e.end {
			return true
		}
	}
	return false
}

// busyUntil reports whether the channel is busy at the station at instant
// now, and when the ongoing transmission(s) end.
func (a *air) busyUntil(st NodeID, now sim.Time) (sim.Time, bool) {
	var until sim.Time
	busy := false
	for _, e := range a.byStation[st] {
		if e.start <= now && now < e.end {
			busy = true
			if e.end > until {
				until = e.end
			}
		}
	}
	return until, busy
}

// csmaMaxDefers bounds how often a transmission defers to a busy channel
// before it gives up waiting and transmits anyway (matching 802.11's
// retry-bounded behaviour while guaranteeing simulation progress).
const csmaMaxDefers = 16

// sendContended implements Send under the contention model: CSMA-style
// carrier sensing with random backoff, then the frame occupies the air for
// its airtime; receivers decode it only if nothing else they can hear
// overlaps (hidden terminals still collide, as in real 802.11).
func (m *Medium) sendContended(f Frame, enc []byte, pos sendSnapshot) {
	m.frameSeq++
	m.tryTransmit(f, enc, pos, m.frameSeq, 0)
}

func (m *Medium) backoff() sim.Duration {
	if m.cfg.Contention.MaxBackoff <= 0 {
		return 0
	}
	return sim.Duration(m.cfg.Contention.Rand.Float64()) * m.cfg.Contention.MaxBackoff
}

func (m *Medium) tryTransmit(f Frame, enc []byte, pos sendSnapshot, frameID uint64, defers int) {
	m.sched.After(m.backoff(), func() {
		now := m.sched.Now()
		// Carrier sense: defer while the channel is busy at the sender.
		if until, busy := m.air.busyUntil(f.Src, now); busy && defers < csmaMaxDefers {
			m.sched.After(until.Sub(now), func() {
				m.tryTransmit(f, enc, pos, frameID, defers+1)
			})
			return
		}
		start := m.sched.Now()
		end := start.Add(m.cfg.Contention.Airtime)
		// The frame is audible at every active station in range,
		// regardless of addressing — that is what causes collisions.
		audible := m.neighbors(pos.pos, pos.rng, f.Src)
		for _, n := range audible {
			m.air.mark(n.id, reception{frame: frameID, start: start, end: end})
		}
		m.recycle(audible)
		// The sender itself hears its own transmission (for carrier
		// sensing by its later frames).
		m.air.mark(f.Src, reception{frame: frameID, start: start, end: end})
		m.sched.After(m.cfg.Contention.Airtime, func() {
			m.deliverContended(f, enc, frameID, start, end, pos)
		})
	})
}

func (m *Medium) deliverContended(f Frame, enc []byte, frameID uint64, start, end sim.Time, pos sendSnapshot) {
	if m.silenced(pos.pos) {
		m.reg.CountTx(CatBlackout, 1)
		return
	}
	deliverTo := func(n neighbor) {
		if m.air.collided(n.id, frameID, start, end) {
			m.collisionCt.Add(1)
			return
		}
		if m.silenced(m.posOf(n.id)) {
			return
		}
		if m.lost(f, n.id) {
			return
		}
		m.handoff(f, enc, pos.pos, pos.rng, n.st)
	}
	if f.Dst != IDBroadcast {
		dst := m.station(f.Dst)
		if dst == nil || !m.active[f.Dst] {
			return
		}
		if pos.pos.Dist2(m.posOf(f.Dst)) > pos.rng*pos.rng {
			return
		}
		deliverTo(neighbor{id: f.Dst, st: dst})
		return
	}
	buf := m.neighbors(pos.pos, pos.rng, f.Src)
	for _, n := range buf {
		deliverTo(n)
	}
	m.recycle(buf)
}
