package radio

import (
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/sim"
)

// benchStation is a Station whose receive path does no bookkeeping, so
// the benchmarks measure the medium alone.
type benchStation struct {
	id  NodeID
	pos geom.Point
	rng float64
}

func (s *benchStation) RadioID() NodeID      { return s.id }
func (s *benchStation) RadioPos() geom.Point { return s.pos }
func (s *benchStation) RadioRange() float64  { return s.rng }
func (s *benchStation) RadioActive() bool    { return true }
func (s *benchStation) HandleFrame(Frame)    {}

// BenchmarkMediumBroadcast measures the broadcast hot path — spatial-index
// lookup, neighbor sort, and delivery — at the paper's sensor density
// (~50 sensors per 200 m × 200 m, 63 m range ⇒ ~15 neighbors per send).
// The allocs/op figure tracks the de-allocation work: with the reusable
// scratch buffer a steady-state broadcast should allocate nothing.
func BenchmarkMediumBroadcast(b *testing.B) {
	m, _, _ := newTestMedium(Config{CellSize: 63})
	const side = 200.0
	const n = 50
	// Deterministic jittered-grid deployment, no RNG needed.
	for i := 0; i < n; i++ {
		x := float64(i%7) * (side / 7)
		y := float64(i/7) * (side / 7)
		m.Attach(&benchStation{id: NodeID(i + 1), pos: geom.Pt(x, y), rng: 63})
	}
	f := Frame{Src: 1, Dst: IDBroadcast, Category: metrics.CatBeacon}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(f)
	}
}

// BenchmarkNeighborsDense measures a broadcast in a pathologically dense
// cell: 256 stations all within range of the sender, an order of magnitude
// past the sortCutover, so the neighbor sort runs through slices.SortFunc
// instead of the short-list insertion sort. Steady state must still be
// allocation-free.
func BenchmarkNeighborsDense(b *testing.B) {
	m, _, _ := newTestMedium(Config{CellSize: 63})
	const n = 256
	for i := 0; i < n; i++ {
		// A tight 16x16 cluster, 3 m pitch: every station hears every send.
		x := float64(i%16) * 3
		y := float64(i/16) * 3
		m.Attach(&benchStation{id: NodeID(i + 1), pos: geom.Pt(x, y), rng: 63})
	}
	f := Frame{Src: 1, Dst: IDBroadcast, Category: metrics.CatBeacon}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(f)
	}
}

// BenchmarkMediumUnicast is the point-to-point counterpart: one map
// lookup, one range check, one delivery.
func BenchmarkMediumUnicast(b *testing.B) {
	m, _, _ := newTestMedium(Config{CellSize: 63})
	m.Attach(&benchStation{id: 1, pos: geom.Pt(0, 0), rng: 63})
	m.Attach(&benchStation{id: 2, pos: geom.Pt(30, 0), rng: 63})
	f := Frame{Src: 1, Dst: 2, Category: metrics.CatFailureReport}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(f)
	}
}

// BenchmarkMediumBroadcastLatency exercises the deferred-delivery path,
// which schedules one event per send (pooled by the scheduler).
func BenchmarkMediumBroadcastLatency(b *testing.B) {
	sched := sim.NewScheduler()
	reg := metrics.NewRegistry()
	m, err := NewMedium(sched, reg, Config{CellSize: 63, Latency: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Attach(&benchStation{id: NodeID(i + 1), pos: geom.Pt(float64(i*3), 0), rng: 63})
	}
	f := Frame{Src: 1, Dst: IDBroadcast, Category: metrics.CatBeacon}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(f)
		sched.RunAll()
	}
}
