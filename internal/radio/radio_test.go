package radio

import (
	"testing"
	"testing/quick"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/rng"
	"roborepair/internal/sim"
)

// fakeStation is a minimal Station for medium tests.
type fakeStation struct {
	id       NodeID
	pos      geom.Point
	rng      float64
	inactive bool
	got      []Frame
}

func (s *fakeStation) RadioID() NodeID      { return s.id }
func (s *fakeStation) RadioPos() geom.Point { return s.pos }
func (s *fakeStation) RadioRange() float64  { return s.rng }
func (s *fakeStation) RadioActive() bool    { return !s.inactive }
func (s *fakeStation) HandleFrame(f Frame)  { s.got = append(s.got, f) }
func (s *fakeStation) count() int           { return len(s.got) }
func (s *fakeStation) last() Frame          { return s.got[len(s.got)-1] }

var _ Station = (*fakeStation)(nil)

func newTestMedium(cfg Config) (*Medium, *metrics.Registry, *sim.Scheduler) {
	sched := sim.NewScheduler()
	reg := metrics.NewRegistry()
	m, err := NewMedium(sched, reg, cfg)
	if err != nil {
		panic(err)
	}
	return m, reg, sched
}

func TestNewMediumRejectsLossWithoutRand(t *testing.T) {
	sched := sim.NewScheduler()
	reg := metrics.NewRegistry()
	if _, err := NewMedium(sched, reg, Config{Loss: &BernoulliLoss{P: 0.1}}); err == nil {
		t.Fatal("NewMedium accepted a BernoulliLoss with P>0 and nil Rand")
	}
	// P == 0 needs no random source: the model never draws.
	m, err := NewMedium(sched, reg, Config{Loss: &BernoulliLoss{P: 0}})
	if err != nil {
		t.Fatalf("NewMedium rejected a zero-probability loss model: %v", err)
	}
	if m.cfg.Loss.Drop(1, 2) {
		t.Fatal("zero-probability loss dropped a reception")
	}
	if _, err := NewMedium(sched, reg, Config{Loss: &BernoulliLoss{P: 1.5, Rand: rng.New(1)}}); err == nil {
		t.Fatal("NewMedium accepted loss probability outside [0,1)")
	}
}

func TestBroadcastReachesOnlyInRange(t *testing.T) {
	m, reg, _ := newTestMedium(Config{})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	b := &fakeStation{id: 2, pos: geom.Pt(50, 0), rng: 63}
	c := &fakeStation{id: 3, pos: geom.Pt(100, 0), rng: 63}
	for _, s := range []*fakeStation{a, b, c} {
		m.Attach(s)
	}
	m.Send(Frame{Src: 1, Dst: IDBroadcast, Category: metrics.CatBeacon})
	if b.count() != 1 {
		t.Fatalf("in-range station got %d frames", b.count())
	}
	if c.count() != 0 {
		t.Fatal("out-of-range station received a frame")
	}
	if a.count() != 0 {
		t.Fatal("sender received its own frame")
	}
	if reg.Tx(metrics.CatBeacon) != 1 {
		t.Fatalf("tx count = %d, want 1", reg.Tx(metrics.CatBeacon))
	}
}

func TestUnicastDelivery(t *testing.T) {
	m, _, _ := newTestMedium(Config{})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 100}
	b := &fakeStation{id: 2, pos: geom.Pt(50, 0), rng: 100}
	c := &fakeStation{id: 3, pos: geom.Pt(60, 0), rng: 100}
	for _, s := range []*fakeStation{a, b, c} {
		m.Attach(s)
	}
	m.Send(Frame{Src: 1, Dst: 2, Category: "x", Payload: "hello"})
	if b.count() != 1 || b.last().Payload != "hello" {
		t.Fatalf("unicast target frames = %v", b.got)
	}
	if c.count() != 0 {
		t.Fatal("non-target overheard a unicast (by design unicast delivers only to Dst)")
	}
}

func TestUnicastOutOfRangeDropped(t *testing.T) {
	m, reg, _ := newTestMedium(Config{})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	b := &fakeStation{id: 2, pos: geom.Pt(100, 0), rng: 63}
	m.Attach(a)
	m.Attach(b)
	m.Send(Frame{Src: 1, Dst: 2, Category: "x"})
	if b.count() != 0 {
		t.Fatal("out-of-range unicast delivered")
	}
	// The transmission still happened (and is counted).
	if reg.Tx("x") != 1 {
		t.Fatal("transmission not counted")
	}
}

func TestAsymmetricRanges(t *testing.T) {
	// Robot (250 m) can reach a sensor 200 m away, but the sensor (63 m)
	// cannot reach back — exactly the paper's asymmetry.
	m, _, _ := newTestMedium(Config{})
	robot := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 250}
	sensor := &fakeStation{id: 2, pos: geom.Pt(200, 0), rng: 63}
	m.Attach(robot)
	m.Attach(sensor)
	m.Send(Frame{Src: 1, Dst: IDBroadcast, Category: "x"})
	if sensor.count() != 1 {
		t.Fatal("robot broadcast did not reach distant sensor")
	}
	m.Send(Frame{Src: 2, Dst: IDBroadcast, Category: "x"})
	if robot.count() != 0 {
		t.Fatal("sensor with 63 m range reached robot 200 m away")
	}
}

func TestInactiveStationsNeitherSendNorReceive(t *testing.T) {
	m, reg, _ := newTestMedium(Config{})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	dead := &fakeStation{id: 2, pos: geom.Pt(10, 0), rng: 63, inactive: true}
	m.Attach(a)
	m.Attach(dead)
	m.Send(Frame{Src: 2, Dst: IDBroadcast, Category: "x"})
	if reg.Tx("x") != 0 {
		t.Fatal("inactive sender transmitted")
	}
	m.Send(Frame{Src: 1, Dst: IDBroadcast, Category: "x"})
	if dead.count() != 0 {
		t.Fatal("inactive station received")
	}
	m.Send(Frame{Src: 1, Dst: 2, Category: "x"})
	if dead.count() != 0 {
		t.Fatal("inactive station received unicast")
	}
}

func TestDetachedSenderIsSilent(t *testing.T) {
	m, reg, _ := newTestMedium(Config{})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	m.Attach(a)
	m.Detach(1)
	m.Send(Frame{Src: 1, Dst: IDBroadcast, Category: "x"})
	if reg.Tx("x") != 0 {
		t.Fatal("detached sender transmitted")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after detach", m.Len())
	}
}

func TestLatencyDefersDelivery(t *testing.T) {
	m, _, sched := newTestMedium(Config{Latency: 0.01})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	b := &fakeStation{id: 2, pos: geom.Pt(10, 0), rng: 63}
	m.Attach(a)
	m.Attach(b)
	m.Send(Frame{Src: 1, Dst: 2, Category: "x"})
	if b.count() != 0 {
		t.Fatal("latency>0 should defer delivery")
	}
	sched.RunAll()
	if b.count() != 1 {
		t.Fatal("deferred frame never delivered")
	}
	if sched.Now() != 0.01 {
		t.Fatalf("delivery at %v, want 0.01", sched.Now())
	}
}

func TestMovedUpdatesSpatialIndex(t *testing.T) {
	m, _, _ := newTestMedium(Config{CellSize: 63})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	b := &fakeStation{id: 2, pos: geom.Pt(500, 500), rng: 63}
	m.Attach(a)
	m.Attach(b)
	// Move b adjacent to a, then notify the medium.
	old := b.pos
	b.pos = geom.Pt(30, 0)
	m.Moved(2, old)
	m.Send(Frame{Src: 1, Dst: IDBroadcast, Category: "x"})
	if b.count() != 1 {
		t.Fatal("moved station not found by broadcast")
	}
	// And a is discoverable from b's new position.
	got := m.InRange(b.pos, 63, 2)
	if len(got) != 1 || got[0].RadioID() != 1 {
		t.Fatalf("InRange after move = %v", got)
	}
}

func TestInRangeDeterministicOrder(t *testing.T) {
	m, _, _ := newTestMedium(Config{})
	for i := 5; i >= 1; i-- {
		m.Attach(&fakeStation{id: NodeID(i), pos: geom.Pt(float64(i), 0), rng: 63})
	}
	got := m.InRange(geom.Pt(0, 0), 63, 0)
	for i := 1; i < len(got); i++ {
		if got[i].RadioID() < got[i-1].RadioID() {
			t.Fatalf("InRange not sorted: %v, %v", got[i-1].RadioID(), got[i].RadioID())
		}
	}
	if len(got) != 5 {
		t.Fatalf("found %d stations, want 5", len(got))
	}
}

func TestInRangeZeroRadius(t *testing.T) {
	m, _, _ := newTestMedium(Config{})
	m.Attach(&fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63})
	if got := m.InRange(geom.Pt(0, 0), 0, -2); got != nil {
		t.Fatalf("zero radius returned %v", got)
	}
}

func TestBernoulliLossAlwaysDrop(t *testing.T) {
	m, _, _ := newTestMedium(Config{Loss: &BernoulliLoss{P: 1, Rand: rng.New(1)}})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	b := &fakeStation{id: 2, pos: geom.Pt(10, 0), rng: 63}
	m.Attach(a)
	m.Attach(b)
	for i := 0; i < 10; i++ {
		m.Send(Frame{Src: 1, Dst: 2, Category: "x"})
		m.Send(Frame{Src: 1, Dst: IDBroadcast, Category: "x"})
	}
	if b.count() != 0 {
		t.Fatalf("P=1 loss delivered %d frames", b.count())
	}
}

func TestBernoulliLossPartial(t *testing.T) {
	m, _, _ := newTestMedium(Config{Loss: &BernoulliLoss{P: 0.5, Rand: rng.New(7)}})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	b := &fakeStation{id: 2, pos: geom.Pt(10, 0), rng: 63}
	m.Attach(a)
	m.Attach(b)
	const n = 2000
	for i := 0; i < n; i++ {
		m.Send(Frame{Src: 1, Dst: 2, Category: "x"})
	}
	frac := float64(b.count()) / n
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("P=0.5 loss delivered fraction %v", frac)
	}
}

func TestAttachReplacesExistingID(t *testing.T) {
	m, _, _ := newTestMedium(Config{})
	old := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	neu := &fakeStation{id: 1, pos: geom.Pt(5, 0), rng: 63}
	probe := &fakeStation{id: 2, pos: geom.Pt(10, 0), rng: 63}
	m.Attach(old)
	m.Attach(neu)
	m.Attach(probe)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Send(Frame{Src: 2, Dst: IDBroadcast, Category: "x"})
	if neu.count() != 1 || old.count() != 0 {
		t.Fatalf("replacement routing wrong: old=%d new=%d", old.count(), neu.count())
	}
}

// Property: InRange returns exactly the active stations whose distance is
// within the radius, for random layouts.
func TestPropertyInRangeExact(t *testing.T) {
	prop := func(seed int64) bool {
		r := rng.New(seed)
		m, _, _ := newTestMedium(Config{CellSize: 40})
		stations := make([]*fakeStation, 30)
		for i := range stations {
			stations[i] = &fakeStation{
				id:       NodeID(i + 1),
				pos:      geom.Pt(r.Uniform(0, 300), r.Uniform(0, 300)),
				rng:      63,
				inactive: r.Float64() < 0.2,
			}
			m.Attach(stations[i])
		}
		center := geom.Pt(r.Uniform(0, 300), r.Uniform(0, 300))
		radius := r.Uniform(10, 150)
		got := m.InRange(center, radius, 1)
		gotSet := make(map[NodeID]bool, len(got))
		for _, s := range got {
			gotSet[s.RadioID()] = true
		}
		for _, s := range stations {
			want := s.id != 1 && !s.inactive && center.Dist(s.pos) <= radius
			if want != gotSet[s.id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBroadcast800Sensors(b *testing.B) {
	m, _, _ := newTestMedium(Config{CellSize: 63})
	r := rng.New(1)
	for i := 0; i < 800; i++ {
		m.Attach(&fakeStation{
			id:  NodeID(i + 1),
			pos: geom.Pt(r.Uniform(0, 800), r.Uniform(0, 800)),
			rng: 63,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(Frame{Src: NodeID(i%800 + 1), Dst: IDBroadcast, Category: "bench"})
	}
}
