package radio

import (
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/metrics"
	"roborepair/internal/rng"
)

// zeroBackoff forces every transmission to start immediately, maximizing
// collisions.
type zeroBackoff struct{}

func (zeroBackoff) Float64() float64 { return 0 }

func contendedMedium(backoff interface{ Float64() float64 }) (*Medium, *metrics.Registry, *simScheduler) {
	m, reg, sched := newTestMedium(Config{
		Contention: ContentionConfig{
			Airtime:    0.001,
			MaxBackoff: 0.05,
			Rand:       backoff,
		},
	})
	return m, reg, &simScheduler{sched}
}

// simScheduler is a tiny wrapper so the helper above can return three
// values without exporting the sim package in these tests.
type simScheduler struct{ s interface{ RunAll() uint64 } }

func (w *simScheduler) RunAll() { w.s.RunAll() }

func TestContentionDelaysDelivery(t *testing.T) {
	m, _, sched := contendedMedium(zeroBackoff{})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	b := &fakeStation{id: 2, pos: geom.Pt(10, 0), rng: 63}
	m.Attach(a)
	m.Attach(b)
	m.Send(Frame{Src: 1, Dst: 2, Category: "x"})
	if b.count() != 0 {
		t.Fatal("delivery before airtime elapsed")
	}
	sched.RunAll()
	if b.count() != 1 {
		t.Fatal("uncontended frame not delivered")
	}
}

func TestHiddenTerminalsCollide(t *testing.T) {
	m, reg, sched := contendedMedium(zeroBackoff{})
	// The classic hidden-terminal setup: two senders out of range of each
	// other (so carrier sensing cannot help) transmit simultaneously at a
	// common receiver in the middle: both frames are lost there.
	s1 := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	s2 := &fakeStation{id: 2, pos: geom.Pt(100, 0), rng: 63}
	rx := &fakeStation{id: 3, pos: geom.Pt(50, 0), rng: 63}
	for _, s := range []*fakeStation{s1, s2, rx} {
		m.Attach(s)
	}
	m.Send(Frame{Src: 1, Dst: IDBroadcast, Category: "x"})
	m.Send(Frame{Src: 2, Dst: IDBroadcast, Category: "x"})
	sched.RunAll()
	if rx.count() != 0 {
		t.Fatalf("receiver decoded %d frames during a collision", rx.count())
	}
	if reg.Tx(CatCollision) == 0 {
		t.Fatal("collision not counted")
	}
	// Both transmissions are still counted as transmissions.
	if reg.Tx("x") != 2 {
		t.Fatalf("tx count = %d", reg.Tx("x"))
	}
}

func TestCarrierSensePreventsInRangeCollision(t *testing.T) {
	m, reg, sched := contendedMedium(zeroBackoff{})
	// Senders within range of each other: the second defers until the
	// first finishes, so the common receiver decodes both.
	s1 := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	s2 := &fakeStation{id: 2, pos: geom.Pt(40, 0), rng: 63}
	rx := &fakeStation{id: 3, pos: geom.Pt(20, 0), rng: 63}
	for _, s := range []*fakeStation{s1, s2, rx} {
		m.Attach(s)
	}
	m.Send(Frame{Src: 1, Dst: IDBroadcast, Category: "x"})
	m.Send(Frame{Src: 2, Dst: IDBroadcast, Category: "x"})
	sched.RunAll()
	if rx.count() != 2 {
		t.Fatalf("receiver decoded %d/2 frames; CSMA deferral failed", rx.count())
	}
	if reg.Tx(CatCollision) != 0 {
		t.Fatalf("collisions despite carrier sensing: %d", reg.Tx(CatCollision))
	}
}

func TestHiddenStationsDoNotCollide(t *testing.T) {
	m, _, sched := contendedMedium(zeroBackoff{})
	// Senders far apart, each with its own receiver: no overlap at either
	// receiver, both deliveries succeed even though they are simultaneous.
	s1 := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	r1 := &fakeStation{id: 2, pos: geom.Pt(20, 0), rng: 63}
	s2 := &fakeStation{id: 3, pos: geom.Pt(500, 0), rng: 63}
	r2 := &fakeStation{id: 4, pos: geom.Pt(520, 0), rng: 63}
	for _, s := range []*fakeStation{s1, r1, s2, r2} {
		m.Attach(s)
	}
	m.Send(Frame{Src: 1, Dst: 2, Category: "x"})
	m.Send(Frame{Src: 3, Dst: 4, Category: "x"})
	sched.RunAll()
	if r1.count() != 1 || r2.count() != 1 {
		t.Fatalf("spatially separated frames lost: %d, %d", r1.count(), r2.count())
	}
}

func TestBackoffSpreadsTransmissions(t *testing.T) {
	m, reg, sched := contendedMedium(rng.New(1))
	// Ten senders around one receiver; with random backoff over 50 ms and
	// 1 ms airtime, most frames should get through.
	rx := &fakeStation{id: 99, pos: geom.Pt(0, 0), rng: 63}
	m.Attach(rx)
	for i := 0; i < 10; i++ {
		m.Attach(&fakeStation{id: NodeID(i + 1), pos: geom.Pt(float64(i+1), 0), rng: 63})
	}
	for i := 0; i < 10; i++ {
		m.Send(Frame{Src: NodeID(i + 1), Dst: 99, Category: "x"})
	}
	sched.RunAll()
	if rx.count() < 7 {
		t.Fatalf("only %d/10 frames survived with backoff; collisions=%d",
			rx.count(), reg.Tx(CatCollision))
	}
}

func TestSequentialTransmissionsNeverCollide(t *testing.T) {
	m, reg, _ := newTestMedium(Config{
		Contention: ContentionConfig{Airtime: 0.001, MaxBackoff: 0, Rand: zeroBackoff{}},
	})
	a := &fakeStation{id: 1, pos: geom.Pt(0, 0), rng: 63}
	b := &fakeStation{id: 2, pos: geom.Pt(10, 0), rng: 63}
	m.Attach(a)
	m.Attach(b)
	for i := 0; i < 5; i++ {
		m.Send(Frame{Src: 1, Dst: 2, Category: "x"})
		m.Scheduler().RunAll() // let each frame finish before the next
	}
	if b.count() != 5 {
		t.Fatalf("sequential frames delivered %d/5", b.count())
	}
	if reg.Tx(CatCollision) != 0 {
		t.Fatalf("phantom collisions: %d", reg.Tx(CatCollision))
	}
}

func TestContentionConfigEnabled(t *testing.T) {
	if (ContentionConfig{}).Enabled() {
		t.Fatal("zero config should be disabled")
	}
	if !(ContentionConfig{Airtime: 0.001, Rand: zeroBackoff{}}).Enabled() {
		t.Fatal("configured model should be enabled")
	}
	if (ContentionConfig{Airtime: 0.001}).Enabled() {
		t.Fatal("model without Rand should be disabled")
	}
}
