// Package relocation implements the baseline the paper positions itself
// against: sensor self-relocation, where redundant *mobile* sensors fill
// coverage holes themselves (Wang et al., "Sensor Relocation in Mobile
// Sensor Networks", INFOCOM 2005 — reference [13]), including the
// cascading movement method that balances per-node energy against
// response time.
//
// The paper's core argument is economic: "mobility is an expensive
// feature ... Adding mobility to a large number of sensor nodes is
// expensive", so a few mobile robots should maintain many cheap static
// sensors. This package makes the comparison quantitative: it simulates
// the same failure process and reports how far sensors must move — in
// total, per node, and in wall-clock response — under direct and
// cascading relocation, for comparison against the robots' Figure 2
// numbers.
//
// The model is deliberately at the movement level (no radio simulation):
// reference [13]'s contribution is the movement strategy, and its
// messaging is a Grid-head protocol incomparable to ours; DESIGN.md
// records the substitution.
package relocation

import (
	"fmt"
	"math"
	"sort"

	"roborepair/internal/geom"
	"roborepair/internal/rng"
)

// Config parameterizes a relocation-baseline run.
type Config struct {
	// FieldSide is the square field's side in meters.
	FieldSide float64
	// Sensors is the base (non-spare) population.
	Sensors int
	// SpareFraction adds this fraction of redundant mobile sensors that
	// serve as replacement sources (10% in typical redundancy studies).
	SpareFraction float64
	// MeanLifetime is the exponential mean lifetime of base sensors (s).
	MeanLifetime float64
	// Horizon is the simulated duration (s).
	Horizon float64
	// Speed is the mobile sensors' travel speed (m/s).
	Speed float64
	// CascadeHop caps how far one sensor moves in a cascading step; the
	// cascade recruits intermediate sensors so nobody exceeds it.
	CascadeHop float64
	// Seed drives the deployment and failure draws.
	Seed int64
}

// DefaultConfig mirrors the paper's 4-robot scenario: a 400 m × 400 m
// field with 200 base sensors, 10% spares, and the §4.1 failure process.
func DefaultConfig() Config {
	return Config{
		FieldSide:     400,
		Sensors:       200,
		SpareFraction: 0.10,
		MeanLifetime:  16000,
		Horizon:       16000,
		Speed:         1,
		CascadeHop:    40,
		Seed:          1,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.FieldSide <= 0:
		return fmt.Errorf("relocation: field side %v not positive", c.FieldSide)
	case c.Sensors <= 0:
		return fmt.Errorf("relocation: sensors %d not positive", c.Sensors)
	case c.SpareFraction < 0:
		return fmt.Errorf("relocation: spare fraction %v negative", c.SpareFraction)
	case c.MeanLifetime <= 0:
		return fmt.Errorf("relocation: mean lifetime %v not positive", c.MeanLifetime)
	case c.Horizon <= 0:
		return fmt.Errorf("relocation: horizon %v not positive", c.Horizon)
	case c.Speed <= 0:
		return fmt.Errorf("relocation: speed %v not positive", c.Speed)
	case c.CascadeHop <= 0:
		return fmt.Errorf("relocation: cascade hop %v not positive", c.CascadeHop)
	}
	return nil
}

// Stats aggregates the baseline's movement costs.
type Stats struct {
	Failures int
	Filled   int
	Unfilled int // failures with no spare left

	// Direct relocation: the nearest spare moves the whole way.
	DirectDistPerFailure float64
	DirectResponseS      float64 // distance / speed

	// Cascading relocation: a chain of sensors each move ≤ CascadeHop.
	CascadeTotalPerFailure  float64 // sum of all chain moves
	CascadeMaxHopPerFailure float64 // energy-balance metric: longest single move
	CascadeMovesPerFailure  float64 // sensors disturbed per failure
	CascadeResponseS        float64 // max single move / speed (moves are concurrent)

	TotalMovement float64 // cascading total over the whole run
}

// Simulate runs the baseline: base sensors fail by the paper's exponential
// process; each failure is filled from the nearest remaining spare, both
// directly and by cascading (the two strategies are evaluated on the same
// failure sequence; positions evolve under the cascading strategy, the
// one [13] advocates).
func Simulate(cfg Config) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	deploy := rng.Split(cfg.Seed, "relocation-deploy")
	lifetimes := rng.Split(cfg.Seed, "relocation-lifetimes")

	type mobileSensor struct {
		pos   geom.Point
		spare bool
		dead  bool
	}
	spares := int(math.Round(float64(cfg.Sensors) * cfg.SpareFraction))
	population := make([]mobileSensor, 0, cfg.Sensors+spares)
	for i := 0; i < cfg.Sensors+spares; i++ {
		population = append(population, mobileSensor{
			pos:   geom.Pt(deploy.Uniform(0, cfg.FieldSide), deploy.Uniform(0, cfg.FieldSide)),
			spare: i >= cfg.Sensors,
		})
	}

	// Failure schedule: renewal process per base slot within the horizon.
	type failureEvent struct {
		at   float64
		slot int
	}
	var events []failureEvent
	for slot := 0; slot < cfg.Sensors; slot++ {
		t := lifetimes.Exponential(cfg.MeanLifetime)
		for t < cfg.Horizon {
			events = append(events, failureEvent{at: t, slot: slot})
			t += lifetimes.Exponential(cfg.MeanLifetime)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].slot < events[j].slot
	})

	var st Stats
	nearestSpare := func(p geom.Point) int {
		best, bestD := -1, math.Inf(1)
		for i := range population {
			s := &population[i]
			if !s.spare || s.dead {
				continue
			}
			if d := p.Dist2(s.pos); d < bestD {
				best, bestD = i, d
			}
		}
		return best
	}

	for _, ev := range events {
		hole := population[ev.slot].pos
		st.Failures++
		sp := nearestSpare(hole)
		if sp < 0 {
			st.Unfilled++
			continue
		}
		st.Filled++
		direct := population[sp].pos.Dist(hole)
		st.DirectDistPerFailure += direct

		total, maxHop, moves := cascadeFill(population[sp].pos, hole, cfg.CascadeHop)
		st.CascadeTotalPerFailure += total
		st.CascadeMaxHopPerFailure += maxHop
		st.CascadeMovesPerFailure += float64(moves)
		st.TotalMovement += total

		// Apply the cascading outcome: the spare is consumed (it joined
		// the sensing population at the chain's tail) and the failed slot
		// is re-armed as a fresh node at the hole.
		population[sp].spare = false
	}

	if st.Filled > 0 {
		f := float64(st.Filled)
		st.DirectDistPerFailure /= f
		st.CascadeTotalPerFailure /= f
		st.CascadeMaxHopPerFailure /= f
		st.CascadeMovesPerFailure /= f
		st.DirectResponseS = st.DirectDistPerFailure / cfg.Speed
		st.CascadeResponseS = st.CascadeMaxHopPerFailure / cfg.Speed
	}
	return st, nil
}

// cascadeFill computes the cascading chain from the spare's position to
// the hole. Intermediate waypoints are spaced at most hop apart along the
// spare→hole segment; each chain move shifts a sensor one waypoint toward
// the hole, so every participant moves ≤ hop and all moves run
// concurrently — the energy/time balance of [13]. It returns (total
// distance, max single move, number of moving sensors).
func cascadeFill(spare, hole geom.Point, hop float64) (total, maxHop float64, moves int) {
	dist := spare.Dist(hole)
	if dist == 0 {
		return 0, 0, 1
	}
	steps := int(math.Ceil(dist / hop))
	stepLen := dist / float64(steps)
	// Each of the `steps` participants moves stepLen; total ≈ dist, but
	// every participant's move is bounded by stepLen ≤ hop, and all moves
	// happen in parallel — the energy/time balance of [13].
	return dist, stepLen, steps
}
