package relocation

import (
	"math"
	"testing"
	"testing/quick"

	"roborepair/internal/geom"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.FieldSide = 0 },
		func(c *Config) { c.Sensors = 0 },
		func(c *Config) { c.SpareFraction = -0.1 },
		func(c *Config) { c.MeanLifetime = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Speed = 0 },
		func(c *Config) { c.CascadeHop = 0 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
		if _, err := Simulate(cfg); err == nil {
			t.Fatalf("Simulate accepted mutation %d", i)
		}
	}
}

func TestSimulateProducesFailures(t *testing.T) {
	st, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Failures == 0 {
		t.Fatal("no failures over a full mean lifetime")
	}
	// Renewal expectation: 200 slots over 1 mean lifetime ≈ 200 failures.
	if st.Failures < 120 || st.Failures > 300 {
		t.Fatalf("failures = %d, want ≈200", st.Failures)
	}
	if st.Filled+st.Unfilled != st.Failures {
		t.Fatalf("filled %d + unfilled %d ≠ failures %d", st.Filled, st.Unfilled, st.Failures)
	}
}

func TestSparesDeplete(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpareFraction = 0.02 // only 4 spares for ~200 failures
	st, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Filled > 4 {
		t.Fatalf("filled %d with only 4 spares", st.Filled)
	}
	if st.Unfilled == 0 {
		t.Fatal("expected unfilled failures after spare depletion")
	}
}

func TestZeroSparesFillsNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpareFraction = 0
	st, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Filled != 0 || st.TotalMovement != 0 {
		t.Fatalf("filled=%d movement=%v with zero spares", st.Filled, st.TotalMovement)
	}
}

func TestCascadeEnergyBalance(t *testing.T) {
	st, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cascading bounds every single move by the hop cap (energy balance),
	// so the max hop is below the direct distance...
	if st.CascadeMaxHopPerFailure > st.DirectDistPerFailure+1e-9 {
		t.Fatalf("cascade max hop %v exceeds direct distance %v",
			st.CascadeMaxHopPerFailure, st.DirectDistPerFailure)
	}
	// ...and below the configured cap.
	if st.CascadeMaxHopPerFailure > DefaultConfig().CascadeHop+1e-9 {
		t.Fatalf("cascade max hop %v exceeds cap %v",
			st.CascadeMaxHopPerFailure, DefaultConfig().CascadeHop)
	}
	// Total cascade distance matches the direct distance (straight-line
	// waypoints), so response time is the win, not total energy.
	if math.Abs(st.CascadeTotalPerFailure-st.DirectDistPerFailure) > 1e-6 {
		t.Fatalf("cascade total %v ≠ direct %v", st.CascadeTotalPerFailure, st.DirectDistPerFailure)
	}
	// Concurrent short moves respond faster than one long move.
	if st.CascadeResponseS >= st.DirectResponseS {
		t.Fatalf("cascade response %v not faster than direct %v",
			st.CascadeResponseS, st.DirectResponseS)
	}
	// But cascading disturbs more sensors.
	if st.CascadeMovesPerFailure < 1 {
		t.Fatalf("moves per failure = %v", st.CascadeMovesPerFailure)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, _ := Simulate(DefaultConfig())
	b, _ := Simulate(DefaultConfig())
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c, _ := Simulate(cfg)
	if a == c {
		t.Fatal("different seeds identical")
	}
}

func TestCascadeFillUnits(t *testing.T) {
	total, maxHop, moves := cascadeFill(geom.Pt(0, 0), geom.Pt(100, 0), 40)
	if moves != 3 {
		t.Fatalf("moves = %d, want 3 (ceil(100/40))", moves)
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("total = %v", total)
	}
	if math.Abs(maxHop-100.0/3) > 1e-9 {
		t.Fatalf("maxHop = %v", maxHop)
	}
	// Degenerate: spare already at the hole.
	total, maxHop, moves = cascadeFill(geom.Pt(5, 5), geom.Pt(5, 5), 40)
	if total != 0 || maxHop != 0 || moves != 1 {
		t.Fatalf("degenerate cascade = %v %v %d", total, maxHop, moves)
	}
}

// Property: for any geometry, the cascade's per-move bound holds and the
// total equals the straight-line distance.
func TestPropertyCascadeBounds(t *testing.T) {
	prop := func(x, y int16, hopRaw uint8) bool {
		hop := float64(hopRaw%60) + 1
		spare, hole := geom.Pt(0, 0), geom.Pt(float64(x), float64(y))
		total, maxHop, moves := cascadeFill(spare, hole, hop)
		dist := spare.Dist(hole)
		if math.Abs(total-dist) > 1e-6 {
			return false
		}
		if maxHop > hop+1e-9 {
			return false
		}
		return moves >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
