// Package invariant is the simulator's runtime conservation-law checker:
// an opt-in layer that observes kernel, medium, robot, and scenario events
// during a run and records structured violations when the simulation's
// bookkeeping breaks — time running backwards, events double-freed, robots
// teleporting, frames delivered outside the unit disk, failures repaired
// that were never injected.
//
// The layer follows the telemetry pattern: the zero Config disables it, no
// Checker is built, and every instrumented path reduces to a nil check, so
// runs with invariants off reproduce the unchecked simulator's behavior
// and allocations bit-for-bit. Checking reads only deterministic
// simulation state, so the violation list for a fixed (Config, Seed) is
// byte-identical whatever the worker count of the surrounding grid.
//
// Violations never stop a run: the checker records them (sim-time and
// entity IDs attached) and the caller decides — tests fail, cmd/invck
// exits nonzero, repairsim prints them.
package invariant

import (
	"fmt"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
)

// Law names, one per conservation law. The "pkg/name" form tells the
// reader which package enforces the law; see DESIGN.md §10 for the
// catalogue.
const (
	// LawClockMonotone: virtual time never decreases across event
	// dispatches (enforced inside the sim kernel).
	LawClockMonotone = "sim/clock-monotone"
	// LawFreeList: an event is released to the free list exactly once per
	// allocation — no double free (sim kernel).
	LawFreeList = "sim/free-list"
	// LawQueueIntegrity: the event queue never dispatches freed (stale-
	// generation) storage and heap indices stay consistent (sim kernel).
	LawQueueIntegrity = "sim/queue-integrity"
	// LawKinematics: a robot never moves farther than speed × elapsed
	// between position fixes — no teleports (robot package hook).
	LawKinematics = "robot/kinematics"
	// LawUnitDisk: no frame is delivered to a station outside the sender's
	// transmission range (radio medium hook).
	LawUnitDisk = "radio/unit-disk"
	// LawTxConservation: unicast deliveries never exceed unicast
	// transmissions (radio medium accounting).
	LawTxConservation = "radio/tx-conservation"
	// LawFailureConservation: every injected failure ends exactly once —
	// repaired, unrepaired at the horizon, or duplicate-suppressed — and
	// the Results counters sum to the injected total (scenario wiring).
	LawFailureConservation = "scenario/failure-conservation"
	// LawReportSeq: a reporter never reuses a failure-report sequence
	// number (node reliability hook). First transmissions of grace-delayed
	// reports may legitimately leave the reporter out of assignment order,
	// so the machine-checked form of "seq numbers monotone per reporter"
	// is uniqueness of the monotone assignment counter.
	LawReportSeq = "node/report-seq"
	// LawReportAck: every report ack a reporter accepts names a sequence
	// number that reporter actually transmitted (node reliability hook).
	LawReportAck = "node/report-ack"
	// LawEnergyConservation: a robot's battery ledger balances — spent +
	// remaining ≡ initial capacity + recharged — the energy spent covers
	// at least the motion the robot logged, and a dead robot never moves
	// again (battery-extension hooks).
	LawEnergyConservation = "robot/energy-conservation"
)

// Config parameterizes the invariant layer of one run. The zero value
// disables checking entirely.
type Config struct {
	// Enabled switches the whole layer on.
	Enabled bool `json:"enabled,omitempty"`
	// Limit caps the violations retained per run (default 100 when
	// Enabled); further violations are counted but not stored, so a
	// systematically broken run cannot exhaust memory with diagnostics.
	Limit int `json:"limit,omitempty"`
}

// WithDefaults fills unset knobs with the documented defaults.
func (c Config) WithDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.Limit <= 0 {
		c.Limit = 100
	}
	return c
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.Limit < 0 {
		return fmt.Errorf("invariant: violation limit %d negative", c.Limit)
	}
	return nil
}

// Violation is one detected conservation-law breach.
type Violation struct {
	// Law names the broken law (one of the Law* constants).
	Law string `json:"law"`
	// At is the virtual time the violation was detected.
	At sim.Time `json:"atS"`
	// Entity identifies the involved entity ("n17", "robot 3", "site
	// (12.0, 88.5)"); empty for run-global laws.
	Entity string `json:"entity,omitempty"`
	// Detail is the human-readable diagnosis with the numbers that
	// disagreed.
	Detail string `json:"detail"`
}

// First returns the earliest violation by detection time (ties keep the
// recorded order), for tools that replay a run from the snapshot nearest
// the first breach. ok is false when vs is empty.
func First(vs []Violation) (v Violation, ok bool) {
	for i, c := range vs {
		if i == 0 || c.At < v.At {
			v, ok = c, true
		}
	}
	return v, ok
}

// String renders the violation as a one-line diagnostic.
func (v Violation) String() string {
	if v.Entity == "" {
		return fmt.Sprintf("%s at %v: %s", v.Law, v.At, v.Detail)
	}
	return fmt.Sprintf("%s at %v [%s]: %s", v.Law, v.At, v.Entity, v.Detail)
}

// Totals carries the run-level Results counters into Finalize for the
// failure-conservation cross-check. It is a plain struct so the checker
// stays independent of the scenario package.
type Totals struct {
	// FailuresInjected is the run's injected-failure count.
	FailuresInjected int
	// Repairs is the run's completed-repair count.
	Repairs int
	// DuplicateRepairs is the run's duplicate-visit count.
	DuplicateRepairs int
	// UnrepairedFailures is the count of sites with no live sensor at the
	// horizon.
	UnrepairedFailures int
}

// siteState tracks the failure lifecycle at one deployment site.
type siteState struct {
	spawned int // sensors ever placed here (initial deploy + replacements)
	killed  int // sensors that died here
	open    int // injected failures not yet closed by a repair
}

// Checker accumulates violations for one run. It is single-threaded,
// driven by the simulation it observes; distinct runs own distinct
// Checkers. A nil *Checker is inert only through the wiring layer's nil
// checks — methods must not be called on nil.
type Checker struct {
	cfg Config
	now func() sim.Time

	violations []Violation
	dropped    int

	// Robot kinematics.
	robotSpeed float64

	// Battery extension: dead robots (battery exhaustion or injected
	// breakdown) must not move again, and the final ledgers are checked
	// against the motion-energy floor in joules per meter of travel.
	deadRobots  map[radio.NodeID]bool
	motionJPerM float64

	// Radio accounting. dupUnicast credits unicast deliveries the hostile
	// channel injected (duplicated or replayed frames) on top of real
	// transmissions.
	txUnicast  uint64
	rxUnicast  uint64
	dupUnicast uint64
	txTotal    uint64

	// Failure lifecycle, keyed by deployment site (replacements boot at
	// exactly the failed sensor's coordinates).
	sites          map[geom.Point]*siteState
	opened         int
	closed         int
	duplicates     int
	falsePositives int // repairs at sites with a live sensor and no open failure

	// Reliability protocol: per-reporter transmitted sequence numbers.
	sentSeqs map[radio.NodeID]map[uint64]bool
}

// NewChecker builds a checker for one run. now is the run's virtual
// clock (sim.Scheduler.Now).
func NewChecker(cfg Config, now func() sim.Time) *Checker {
	return &Checker{
		cfg:        cfg.WithDefaults(),
		now:        now,
		sites:      make(map[geom.Point]*siteState),
		sentSeqs:   make(map[radio.NodeID]map[uint64]bool),
		deadRobots: make(map[radio.NodeID]bool),
	}
}

// SetRobotSpeed declares the (uniform) robot travel speed the kinematics
// law checks against.
func (c *Checker) SetRobotSpeed(speed float64) { c.robotSpeed = speed }

// SetMotionEnergy declares the fleet's motion cost in joules per meter of
// travel; the energy-conservation law uses it as a lower bound on what a
// robot's odometer implies its battery must have spent.
func (c *Checker) SetMotionEnergy(joulesPerMeter float64) { c.motionJPerM = joulesPerMeter }

// RobotDied records that a robot is permanently down (battery exhaustion
// or injected breakdown); any later position fix with displacement is a
// violation — the dead do not walk.
func (c *Checker) RobotDied(id radio.NodeID) { c.deadRobots[id] = true }

// Violate records one violation, subject to the retention limit.
func (c *Checker) Violate(law, entity, detail string) {
	if len(c.violations) >= c.cfg.Limit {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		Law: law, At: c.now(), Entity: entity, Detail: detail,
	})
}

// Violations returns the recorded violations (nil when the run was clean).
func (c *Checker) Violations() []Violation { return c.violations }

// Dropped reports how many violations exceeded the retention limit.
func (c *Checker) Dropped() int { return c.dropped }

// Ok reports whether the run has been violation-free so far.
func (c *Checker) Ok() bool { return len(c.violations) == 0 && c.dropped == 0 }

// KernelAudit returns the sim-kernel audit adapter to install with
// sim.Scheduler.SetAudit: the kernel detects its own bookkeeping breaches
// (clock regression, double free, stale dispatch) and reports them here.
func (c *Checker) KernelAudit() *sim.Audit {
	return &sim.Audit{
		Violation: func(law string, _ sim.Time, detail string) {
			c.Violate(law, "", detail)
		},
	}
}

// kinematicsEps absorbs float64 rounding in anchor arithmetic: arrival
// times are quantized to the clock's resolution, so a leg's distance can
// exceed speed × elapsed by a few ulps, never by meters.
const kinematicsEps = 1e-6

// RobotMoved checks one robot position fix against the kinematics law:
// the robot was anchored at from since fromAt and now fixes at to, so the
// straight-line displacement must not exceed speed × elapsed.
func (c *Checker) RobotMoved(id radio.NodeID, from geom.Point, fromAt sim.Time, to geom.Point) {
	dist := from.Dist(to)
	if dist == 0 {
		return
	}
	if c.deadRobots[id] {
		c.Violate(LawEnergyConservation, id.String(), fmt.Sprintf(
			"dead robot moved %.6f m from %v to %v", dist, from, to))
		return
	}
	elapsed := float64(c.now().Sub(fromAt))
	allowed := c.robotSpeed*elapsed + kinematicsEps
	if dist > allowed {
		c.Violate(LawKinematics, id.String(), fmt.Sprintf(
			"moved %.6f m in %.6f s at speed %g m/s (max %.6f m): teleport from %v to %v",
			dist, elapsed, c.robotSpeed, allowed, from, to))
	}
}

// FrameSent implements radio.Auditor.
func (c *Checker) FrameSent(f radio.Frame) {
	c.txTotal++
	if f.Dst != radio.IDBroadcast {
		c.txUnicast++
	}
}

// FrameDuplicated implements radio.Auditor: the hostile channel injected
// an extra delivery of f (duplication or stale replay), which the
// matching FrameDelivered will count as a reception without a
// transmission behind it.
func (c *Checker) FrameDuplicated(f radio.Frame) {
	if f.Dst != radio.IDBroadcast {
		c.dupUnicast++
	}
}

// FrameDelivered implements radio.Auditor: the medium is about to hand f
// (transmitted at from with range rng) to dst.
func (c *Checker) FrameDelivered(f radio.Frame, from geom.Point, rng float64, dst radio.Station) {
	if f.Dst != radio.IDBroadcast {
		c.rxUnicast++
		if dst.RadioID() != f.Dst {
			c.Violate(LawTxConservation, dst.RadioID().String(), fmt.Sprintf(
				"unicast frame addressed to %v delivered to %v", f.Dst, dst.RadioID()))
		}
	}
	d2 := from.Dist2(dst.RadioPos())
	if d2 > rng*rng*(1+1e-9)+1e-9 {
		c.Violate(LawUnitDisk, dst.RadioID().String(), fmt.Sprintf(
			"frame %s→%s delivered over %.3f m, range %.3f m",
			f.Src, dst.RadioID(), from.Dist(dst.RadioPos()), rng))
	}
}

// site returns the lifecycle record for pos, creating it on first use.
func (c *Checker) site(pos geom.Point) *siteState {
	st := c.sites[pos]
	if st == nil {
		st = &siteState{}
		c.sites[pos] = st
	}
	return st
}

// SensorSpawned records a sensor placement (initial deployment or
// replacement) so the checker can tell false-positive repairs — a robot
// replacing a node that is still alive — from repairs of nothing.
func (c *Checker) SensorSpawned(_ radio.NodeID, pos geom.Point) {
	c.site(pos).spawned++
}

// FailureInjected records one injected sensor failure: it opens the
// failure's lifecycle record, to be closed exactly once by a repair or
// left open (unrepaired) at the horizon.
func (c *Checker) FailureInjected(_ radio.NodeID, pos geom.Point) {
	st := c.site(pos)
	st.killed++
	st.open++
	c.opened++
	if st.killed > st.spawned {
		c.Violate(LawFailureConservation, "site "+pos.String(), fmt.Sprintf(
			"%d failures injected at a site with only %d sensors ever placed",
			st.killed, st.spawned))
	}
}

// RepairCompleted records a completed repair at pos. A repair must close
// an open failure; replacing a live sensor (a blackout false positive
// under the fire-and-forget model) is benign and tracked separately, but
// a repair at a site with neither an open failure nor a live sensor
// breaks conservation.
func (c *Checker) RepairCompleted(_ radio.NodeID, pos geom.Point) {
	st := c.site(pos)
	switch {
	case st.open > 0:
		st.open--
		c.closed++
	case st.spawned > st.killed:
		c.falsePositives++
	default:
		c.Violate(LawFailureConservation, "site "+pos.String(),
			"repair completed with no open failure and no live sensor at the site")
	}
}

// DuplicateVisit records a robot visit to a site already covered by a
// live sensor where the trip was suppressed (no replacement deployed).
func (c *Checker) DuplicateVisit(pos geom.Point) {
	c.duplicates++
	if st := c.site(pos); st.spawned <= st.killed {
		c.Violate(LawFailureConservation, "site "+pos.String(),
			"visit suppressed as duplicate but no live sensor covers the site")
	}
}

// ReportSent records the first transmission of a numbered failure report
// and checks the sequence-number law.
func (c *Checker) ReportSent(reporter radio.NodeID, seq uint64) {
	if seq == 0 {
		c.Violate(LawReportSeq, reporter.String(), "numbered report sent with seq 0")
		return
	}
	seen := c.sentSeqs[reporter]
	if seen == nil {
		seen = make(map[uint64]bool)
		c.sentSeqs[reporter] = seen
	}
	if seen[seq] {
		c.Violate(LawReportSeq, reporter.String(), fmt.Sprintf(
			"seq %d reused for a new report", seq))
		return
	}
	seen[seq] = true
}

// ReportRetx checks that a retransmission re-sends a sequence number whose
// first transmission was observed.
func (c *Checker) ReportRetx(reporter radio.NodeID, seq uint64) {
	if !c.sentSeqs[reporter][seq] {
		c.Violate(LawReportSeq, reporter.String(), fmt.Sprintf(
			"retransmission of seq %d, which was never first-sent", seq))
	}
}

// ReportAcked checks that an accepted report ack names a transmitted
// sequence number.
func (c *Checker) ReportAcked(reporter radio.NodeID, seq uint64) {
	if !c.sentSeqs[reporter][seq] {
		c.Violate(LawReportAck, reporter.String(), fmt.Sprintf(
			"ack accepted for seq %d, which was never sent", seq))
	}
}

// RobotEnergy checks one robot's final battery ledger against the
// energy-conservation law. Two independent cross-checks: the double-entry
// ledger must balance (spent + remaining ≡ initial + recharged), and the
// spent side must cover at least the motion energy implied by the robot's
// separately-maintained odometer (every traveled meter was debited at the
// declared joules-per-meter motion cost; idle draw only adds on top).
// Call it once per robot at end of run, before reading Violations.
func (c *Checker) RobotEnergy(id radio.NodeID, initialJ, spentJ, remainingJ, rechargedJ, traveledM float64) {
	entity := id.String()
	budget := initialJ + rechargedJ
	eps := 1e-8*budget + 1e-6 // accumulated ulps over thousands of lazy accruals
	if diff := spentJ + remainingJ - budget; diff > eps || diff < -eps {
		c.Violate(LawEnergyConservation, entity, fmt.Sprintf(
			"ledger imbalance: spent %.6f J + remaining %.6f J != initial %.6f J + recharged %.6f J (off by %.6f J)",
			spentJ, remainingJ, initialJ, rechargedJ, diff))
	}
	if c.motionJPerM > 0 {
		floor := traveledM * c.motionJPerM
		if spentJ+1e-8*floor+1e-6 < floor {
			c.Violate(LawEnergyConservation, entity, fmt.Sprintf(
				"spent %.6f J but the odometer's %.3f m of travel alone costs %.6f J: a leg went undebited",
				spentJ, traveledM, floor))
		}
	}
}

// Finalize cross-checks the run's Results counters against the observed
// event stream; call it once, after the horizon, before reading
// Violations. Every injected failure must be accounted for exactly once:
// opened = closed + still-open, the Results counters must match the
// observed repairs and duplicates, and every unrepaired site must hold an
// open failure.
func (c *Checker) Finalize(t Totals) {
	if t.FailuresInjected != c.opened {
		c.Violate(LawFailureConservation, "", fmt.Sprintf(
			"Results.FailuresInjected=%d but the checker observed %d injected failures",
			t.FailuresInjected, c.opened))
	}
	if got := c.closed + c.falsePositives; t.Repairs != got {
		c.Violate(LawFailureConservation, "", fmt.Sprintf(
			"Results.Repairs=%d but the checker observed %d (%d closing an open failure, %d false-positive)",
			t.Repairs, got, c.closed, c.falsePositives))
	}
	if t.DuplicateRepairs != c.duplicates {
		c.Violate(LawFailureConservation, "", fmt.Sprintf(
			"Results.DuplicateRepairs=%d but the checker observed %d duplicate visits",
			t.DuplicateRepairs, c.duplicates))
	}
	stillOpen, sitesOpen := 0, 0
	for _, st := range c.sites {
		stillOpen += st.open
		if st.open > 0 {
			sitesOpen++
		}
	}
	if c.opened != c.closed+stillOpen {
		c.Violate(LawFailureConservation, "", fmt.Sprintf(
			"%d failures opened but %d closed + %d still open",
			c.opened, c.closed, stillOpen))
	}
	if t.UnrepairedFailures > sitesOpen {
		c.Violate(LawFailureConservation, "", fmt.Sprintf(
			"Results.UnrepairedFailures=%d exceeds the %d sites with an open failure",
			t.UnrepairedFailures, sitesOpen))
	}
	if c.rxUnicast > c.txUnicast+c.dupUnicast {
		c.Violate(LawTxConservation, "", fmt.Sprintf(
			"%d unicast deliveries exceed %d unicast transmissions + %d injected duplicates",
			c.rxUnicast, c.txUnicast, c.dupUnicast))
	}
}
