package invariant

import (
	"strings"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/sim"
)

func newTestChecker(t *testing.T) (*Checker, *sim.Time) {
	t.Helper()
	now := new(sim.Time)
	return NewChecker(Config{Enabled: true}, func() sim.Time { return *now }), now
}

func wantLaw(t *testing.T, c *Checker, law string) Violation {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Law == law {
			return v
		}
	}
	t.Fatalf("no %s violation recorded; got %v", law, c.Violations())
	return Violation{}
}

func wantClean(t *testing.T, c *Checker) {
	t.Helper()
	if !c.Ok() {
		t.Fatalf("unexpected violations: %v (dropped %d)", c.Violations(), c.Dropped())
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	if got := (Config{}).WithDefaults(); got.Limit != 0 {
		t.Fatalf("disabled config grew a limit: %+v", got)
	}
	if got := (Config{Enabled: true}).WithDefaults(); got.Limit != 100 {
		t.Fatalf("default limit = %d, want 100", got.Limit)
	}
	if got := (Config{Enabled: true, Limit: 7}).WithDefaults(); got.Limit != 7 {
		t.Fatalf("explicit limit overridden: %+v", got)
	}
	if err := (Config{Limit: -1}).Validate(); err == nil {
		t.Fatal("negative limit accepted")
	}
	if err := (Config{Enabled: true, Limit: 5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Law: LawUnitDisk, At: 12.5, Entity: "n3", Detail: "too far"}
	s := v.String()
	for _, want := range []string{LawUnitDisk, "12.500s", "n3", "too far"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q lacks %q", s, want)
		}
	}
	if s := (Violation{Law: LawFreeList, Detail: "x"}).String(); strings.Contains(s, "[") {
		t.Fatalf("entity-less violation renders brackets: %q", s)
	}
}

func TestViolationLimit(t *testing.T) {
	c := NewChecker(Config{Enabled: true, Limit: 2}, func() sim.Time { return 0 })
	for i := 0; i < 5; i++ {
		c.Violate(LawFreeList, "", "boom")
	}
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("retained %d violations, want 2", got)
	}
	if got := c.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if c.Ok() {
		t.Fatal("checker with dropped violations reports Ok")
	}
}

func TestKernelAuditForwards(t *testing.T) {
	c, now := newTestChecker(t)
	*now = 42
	a := c.KernelAudit()
	a.Violation("sim/clock-monotone", 42, "backwards")
	v := wantLaw(t, c, LawClockMonotone)
	if v.At != 42 {
		t.Fatalf("violation at %v, want 42", v.At)
	}
}

func TestKinematicsLaw(t *testing.T) {
	c, now := newTestChecker(t)
	c.SetRobotSpeed(1)
	*now = 10
	// 10 m in 10 s at 1 m/s: exactly allowed.
	c.RobotMoved(3, geom.Pt(0, 0), 0, geom.Pt(10, 0))
	// Zero displacement at zero elapsed: allowed.
	c.RobotMoved(3, geom.Pt(10, 0), 10, geom.Pt(10, 0))
	wantClean(t, c)
	// 11 m in 10 s: teleport.
	c.RobotMoved(3, geom.Pt(0, 0), 0, geom.Pt(11, 0))
	v := wantLaw(t, c, LawKinematics)
	if v.Entity != "n3" {
		t.Fatalf("entity = %q, want n3", v.Entity)
	}
}

type testStation struct {
	id  radio.NodeID
	pos geom.Point
}

func (s *testStation) RadioID() radio.NodeID   { return s.id }
func (s *testStation) RadioPos() geom.Point    { return s.pos }
func (s *testStation) RadioRange() float64     { return 100 }
func (s *testStation) RadioActive() bool       { return true }
func (s *testStation) HandleFrame(radio.Frame) {}

func TestRadioLaws(t *testing.T) {
	c, _ := newTestChecker(t)
	dst := &testStation{id: 2, pos: geom.Pt(50, 0)}
	uni := radio.Frame{Src: 1, Dst: 2}
	c.FrameSent(uni)
	c.FrameDelivered(uni, geom.Pt(0, 0), 100, dst)
	c.FrameSent(radio.Frame{Src: 1, Dst: radio.IDBroadcast})
	c.FrameDelivered(radio.Frame{Src: 1, Dst: radio.IDBroadcast}, geom.Pt(0, 0), 100, dst)
	wantClean(t, c)
	c.Finalize(Totals{})
	wantClean(t, c)

	// Delivery outside the disk.
	c.FrameDelivered(uni, geom.Pt(0, 0), 40, dst)
	wantLaw(t, c, LawUnitDisk)

	// Unicast delivered to the wrong station.
	c2, _ := newTestChecker(t)
	c2.FrameSent(uni)
	c2.FrameDelivered(radio.Frame{Src: 1, Dst: 9}, geom.Pt(0, 0), 100, dst)
	wantLaw(t, c2, LawTxConservation)

	// More unicast deliveries than transmissions.
	c3, _ := newTestChecker(t)
	c3.FrameDelivered(uni, geom.Pt(0, 0), 100, dst)
	c3.Finalize(Totals{})
	wantLaw(t, c3, LawTxConservation)
}

func TestFailureLifecycleConservation(t *testing.T) {
	site := geom.Pt(5, 5)
	c, _ := newTestChecker(t)
	c.SensorSpawned(10, site)
	c.FailureInjected(10, site)
	c.SensorSpawned(11, site) // replacement deploys before the task-done hook
	c.RepairCompleted(10, site)
	c.Finalize(Totals{FailuresInjected: 1, Repairs: 1})
	wantClean(t, c)
}

func TestFalsePositiveRepairIsBenign(t *testing.T) {
	site := geom.Pt(5, 5)
	c, _ := newTestChecker(t)
	c.SensorSpawned(10, site)
	// No failure: a blackout made the node look dead, and fire-and-forget
	// dispatch replaced it anyway.
	c.SensorSpawned(11, site)
	c.RepairCompleted(10, site)
	c.Finalize(Totals{Repairs: 1})
	wantClean(t, c)
}

func TestPhantomRepairViolates(t *testing.T) {
	c, _ := newTestChecker(t)
	c.RepairCompleted(99, geom.Pt(-3, -3))
	wantLaw(t, c, LawFailureConservation)
}

func TestKillWithoutSpawnViolates(t *testing.T) {
	c, _ := newTestChecker(t)
	c.FailureInjected(99, geom.Pt(1, 1))
	wantLaw(t, c, LawFailureConservation)
}

func TestDuplicateVisit(t *testing.T) {
	site := geom.Pt(2, 2)
	c, _ := newTestChecker(t)
	c.SensorSpawned(10, site)
	c.DuplicateVisit(site)
	c.Finalize(Totals{DuplicateRepairs: 1})
	wantClean(t, c)

	c2, _ := newTestChecker(t)
	c2.DuplicateVisit(site) // nothing alive there
	wantLaw(t, c2, LawFailureConservation)
}

func TestFinalizeCountMismatches(t *testing.T) {
	site := geom.Pt(1, 1)
	mk := func() *Checker {
		c, _ := newTestChecker(t)
		c.SensorSpawned(1, site)
		c.FailureInjected(1, site)
		return c
	}

	c := mk()
	c.Finalize(Totals{FailuresInjected: 2}) // counter disagrees with observed kills
	wantLaw(t, c, LawFailureConservation)

	c = mk()
	c.Finalize(Totals{FailuresInjected: 1, Repairs: 1}) // repair never observed
	wantLaw(t, c, LawFailureConservation)

	c = mk()
	c.Finalize(Totals{FailuresInjected: 1, DuplicateRepairs: 2})
	wantLaw(t, c, LawFailureConservation)

	c = mk()
	// One site holds the open failure; claiming two unrepaired sites breaks
	// the bound.
	c.Finalize(Totals{FailuresInjected: 1, UnrepairedFailures: 2})
	wantLaw(t, c, LawFailureConservation)

	c = mk()
	c.Finalize(Totals{FailuresInjected: 1, UnrepairedFailures: 1})
	wantClean(t, c)
}

func TestReportSeqLaws(t *testing.T) {
	c, _ := newTestChecker(t)
	c.ReportSent(7, 1)
	c.ReportSent(7, 2)
	c.ReportSent(8, 1) // same seq from another reporter is fine
	c.ReportRetx(7, 2)
	c.ReportAcked(7, 1)
	wantClean(t, c)

	c.ReportSent(7, 1) // reuse
	wantLaw(t, c, LawReportSeq)

	c2, _ := newTestChecker(t)
	c2.ReportSent(7, 0)
	wantLaw(t, c2, LawReportSeq)

	c3, _ := newTestChecker(t)
	c3.ReportRetx(7, 4)
	wantLaw(t, c3, LawReportSeq)

	c4, _ := newTestChecker(t)
	c4.ReportAcked(7, 4)
	wantLaw(t, c4, LawReportAck)
}
