package sim

import (
	"math"
	"slices"
)

// The ladder queue (Tang, Goh, Thng 2005) replaces the binary heap's
// O(log n) sift with amortized O(1) bucketed inserts. Events live in three
// tiers:
//
//   - bottom: a short (at, seq)-sorted run that pop consumes front to back;
//   - rungs: a stack of bucket arrays, finest (earliest) on top, each
//     covering a contiguous time span split into equal-width buckets;
//   - top: an unsorted overflow for events beyond the coarsest rung.
//
// When the bottom drains, the next bucket of the finest rung is sorted
// into it; an oversized bucket spawns a finer rung instead, and when every
// rung is spent the top is either swapped wholesale into the bottom (small
// tops — the steady-state path, which allocates nothing) or split into a
// fresh rung.
//
// Determinism: the kernel's (at, seq) order is strict and total, so the
// fire sequence is identical to the heap's whenever bucket membership is
// exact. Bucket boundaries are therefore always computed with the one
// expression base + width*Time(i) (lrung.boundary), and locate corrects
// the divided index against that exact predicate, so float rounding can
// never place an event across a boundary. Two invariants tie the tiers
// together: every bottom event has at <= bottomEnd, and every rung or top
// event has at >= bottomEnd.
//
// Cancellation is lazy: cancel marks the event dead and invalidates its
// handle; the storage is released back to the free list when a purge
// (pop, peek, or a bucket transfer) reaches it.
const (
	// maxBottom bounds the sorted bottom run: a transferred bucket larger
	// than this spawns a finer rung instead of being sorted wholesale, and
	// a top no larger than this is swapped straight into the bottom.
	maxBottom = 64
	// maxRungs bounds the rung stack; a bucket that is still oversized at
	// full depth is sorted directly.
	maxRungs = 8
	// maxRungBuckets caps one rung's bucket count.
	maxRungBuckets = 1 << 12
	// minSpawnSpan is the narrowest time span worth splitting into a rung;
	// tighter clusters (same-instant bursts) are sorted directly.
	minSpawnSpan Time = 1e-9
	// maxPooledBuckets caps the recycled bucket-slice pool.
	maxPooledBuckets = 1024
)

// lrung is one rung: len(buckets) equal-width time buckets covering
// [base, end], end inclusive. Bucket i spans [boundary(i), boundary(i+1)),
// except the last, whose upper bound is widened to end. Buckets below cur
// have been transferred out.
type lrung struct {
	base    Time
	width   Time
	end     Time // inclusive upper bound on member timestamps
	cur     int
	buckets [][]*event
}

// boundary is the single source of truth for bucket edges. Every
// membership decision uses this exact expression, which is what makes
// bucketing order-exact under float rounding.
func (r *lrung) boundary(i int) Time { return r.base + r.width*Time(i) }

// locate returns the bucket index for timestamp at, corrected against the
// exact boundary predicate and clamped to the unconsumed range.
func (r *lrung) locate(at Time) int {
	idx := 0
	if f := float64((at - r.base) / r.width); f > 0 {
		idx = int(f)
	}
	if idx >= len(r.buckets) {
		idx = len(r.buckets) - 1
	}
	for idx > 0 && at < r.boundary(idx) {
		idx--
	}
	for idx+1 < len(r.buckets) && at >= r.boundary(idx+1) {
		idx++
	}
	if idx < r.cur {
		// Unreachable while the tier invariants hold (at >= bottomEnd >=
		// boundary(cur)); clamping keeps a rounding surprise from writing
		// into a consumed slot.
		idx = r.cur
	}
	return idx
}

// ladderQueue implements kernel. See the package comment above for the
// tier structure and determinism argument.
type ladderQueue struct {
	s *Scheduler

	bottom    []*event
	bot0      int // first unconsumed bottom index
	bottomEnd Time

	rungs []lrung // rungs[len-1] is the finest (earliest)

	top   []*event
	count int // live (non-cancelled) events across all tiers

	bucketPool [][]*event
	rungPool   [][][]*event
}

func newLadderQueue(s *Scheduler) *ladderQueue {
	return &ladderQueue{s: s}
}

func (q *ladderQueue) len() int { return q.count }

func (q *ladderQueue) push(ev *event) {
	ev.index = 0 // any non-negative index keeps the handle Scheduled
	q.count++
	at := ev.at
	if at < q.bottomEnd {
		q.insertBottom(ev)
		return
	}
	for i := len(q.rungs) - 1; i >= 0; i-- {
		r := &q.rungs[i]
		if at < r.end {
			j := r.locate(at)
			if r.buckets[j] == nil {
				r.buckets[j] = q.getBucket()
			}
			r.buckets[j] = append(r.buckets[j], ev)
			return
		}
	}
	q.top = append(q.top, ev)
}

// insertBottom places ev at its sorted position. A new event carries the
// largest seq issued so far, so the slot is after every queued event with
// the same timestamp: the first index whose at is strictly greater.
func (q *ladderQueue) insertBottom(ev *event) {
	lo, hi := q.bot0, len(q.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.bottom[mid].at <= ev.at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.bottom = append(q.bottom, nil)
	copy(q.bottom[lo+1:], q.bottom[lo:])
	q.bottom[lo] = ev
}

func (q *ladderQueue) peek() *event {
	if !q.ensure() {
		return nil
	}
	return q.bottom[q.bot0]
}

func (q *ladderQueue) pop() *event {
	if !q.ensure() {
		return nil
	}
	ev := q.bottom[q.bot0]
	q.bottom[q.bot0] = nil
	q.bot0++
	ev.index = -1
	q.count--
	return ev
}

// cancel marks the event dead and invalidates its handle; the storage is
// physically released when a purge reaches it.
func (q *ladderQueue) cancel(ev *event) bool {
	ev.dead = true
	ev.fn = nil
	ev.gen++
	ev.index = -1
	q.count--
	return true
}

// ensure leaves a live event at the bottom front, refilling the bottom
// from the rungs and top as needed. It reports false when no live event
// remains anywhere.
func (q *ladderQueue) ensure() bool {
	for {
		for q.bot0 < len(q.bottom) {
			ev := q.bottom[q.bot0]
			if !ev.dead {
				return true
			}
			q.bottom[q.bot0] = nil
			q.bot0++
			q.s.release(ev)
		}
		q.bottom = q.bottom[:0]
		q.bot0 = 0
		if !q.refill() {
			return false
		}
	}
}

// refill moves the next span of events into the (empty) bottom run. It
// reports false when the rungs and top hold no live events.
func (q *ladderQueue) refill() bool {
	for {
		for ri := len(q.rungs) - 1; ri >= 0; ri = len(q.rungs) - 1 {
			r := &q.rungs[ri]
			if r.cur >= len(r.buckets) {
				q.bottomEnd = r.end
				q.putRung(r.buckets)
				r.buckets = nil
				q.rungs = q.rungs[:ri]
				continue
			}
			i := r.cur
			b := r.buckets[i]
			r.buckets[i] = nil
			bStart := r.boundary(i)
			bEnd := r.boundary(i + 1)
			if i == len(r.buckets)-1 {
				bEnd = r.end
			}
			r.cur++
			live := b[:0]
			for _, ev := range b {
				if ev.dead {
					q.s.release(ev)
				} else {
					live = append(live, ev)
				}
			}
			if len(live) == 0 {
				q.putBucket(live)
				q.bottomEnd = bEnd
				continue
			}
			if len(live) > maxBottom && len(q.rungs) < maxRungs &&
				q.spawnRung(bStart, bEnd, live) {
				// A finer rung now tops the stack; r may dangle after the
				// append inside spawnRung, so re-derive it.
				q.putBucket(live)
				continue
			}
			q.bottom = append(q.bottom, live...)
			slices.SortFunc(q.bottom, cmpEvent)
			q.putBucket(live)
			q.bottomEnd = bEnd
			return true
		}
		// Rungs spent: pull from the top tier.
		if len(q.top) == 0 {
			return false
		}
		lo, hi := TimeInf, Time(math.Inf(-1))
		live := q.top[:0]
		for _, ev := range q.top {
			if ev.dead {
				q.s.release(ev)
				continue
			}
			if ev.at < lo {
				lo = ev.at
			}
			if ev.at > hi {
				hi = ev.at
			}
			live = append(live, ev)
		}
		for i := len(live); i < len(q.top); i++ {
			q.top[i] = nil
		}
		q.top = live
		if len(q.top) == 0 {
			return false
		}
		if len(q.top) > maxBottom && !math.IsInf(float64(hi), 1) &&
			q.spawnRung(lo, hi, q.top) {
			for i := range q.top {
				q.top[i] = nil
			}
			q.top = q.top[:0]
			q.bottomEnd = lo
			continue
		}
		// Small (or same-instant, or infinite-horizon) top: swap it
		// straight into the bottom. The swap keeps both backing arrays
		// alive across schedule-one/fire-one cycles, so the steady state
		// allocates nothing.
		b := q.top
		q.top = q.bottom[:0]
		q.bottom = b
		q.bot0 = 0
		slices.SortFunc(q.bottom, cmpEvent)
		q.bottomEnd = hi
		return true
	}
}

// spawnRung splits evs, whose timestamps all lie in [start, end], into a
// new finest rung. It reports false when the span is too tight to split,
// leaving the caller to sort instead.
func (q *ladderQueue) spawnRung(start, end Time, evs []*event) bool {
	span := end - start
	if !(span > minSpawnSpan) {
		return false
	}
	nb := len(evs)
	if nb > maxRungBuckets {
		nb = maxRungBuckets
	}
	width := span / Time(nb)
	if width <= 0 || start+width == start {
		return false
	}
	q.rungs = append(q.rungs, lrung{base: start, width: width, end: end, buckets: q.getRung(nb)})
	r := &q.rungs[len(q.rungs)-1]
	for _, ev := range evs {
		j := r.locate(ev.at)
		if r.buckets[j] == nil {
			r.buckets[j] = q.getBucket()
		}
		r.buckets[j] = append(r.buckets[j], ev)
	}
	return true
}

func (q *ladderQueue) getBucket() []*event {
	if n := len(q.bucketPool); n > 0 {
		b := q.bucketPool[n-1]
		q.bucketPool[n-1] = nil
		q.bucketPool = q.bucketPool[:n-1]
		return b
	}
	return nil
}

func (q *ladderQueue) putBucket(b []*event) {
	if cap(b) == 0 || len(q.bucketPool) >= maxPooledBuckets {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = nil
	}
	q.bucketPool = append(q.bucketPool, b[:0])
}

func (q *ladderQueue) getRung(nb int) [][]*event {
	if n := len(q.rungPool); n > 0 {
		rb := q.rungPool[n-1]
		q.rungPool[n-1] = nil
		q.rungPool = q.rungPool[:n-1]
		if cap(rb) >= nb {
			rb = rb[:nb]
			for i := range rb {
				rb[i] = nil
			}
			return rb
		}
	}
	return make([][]*event, nb)
}

func (q *ladderQueue) putRung(rb [][]*event) {
	if cap(rb) == 0 || len(q.rungPool) >= maxRungs {
		return
	}
	q.rungPool = append(q.rungPool, rb[:0])
}
