package sim

import (
	"container/heap"
	"strings"
	"testing"
)

// recordingAudit collects kernel violations for inspection.
type recordingAudit struct {
	laws    []string
	details []string
}

func (a *recordingAudit) install(s *Scheduler) {
	s.SetAudit(&Audit{Violation: func(law string, _ Time, detail string) {
		a.laws = append(a.laws, law)
		a.details = append(a.details, detail)
	}})
}

func (a *recordingAudit) has(law string) bool {
	for _, l := range a.laws {
		if l == law {
			return true
		}
	}
	return false
}

// TestAuditCleanKernel: ordinary scheduling traffic — including cancels,
// reschedule-on-fire, and free-list reuse — raises no violations.
func TestAuditCleanKernel(t *testing.T) {
	s := NewScheduler()
	var a recordingAudit
	a.install(s)
	var fired int
	for i := 0; i < 50; i++ {
		at := Time(i % 7)
		ev, err := s.At(at, func() { fired++ })
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			s.Cancel(ev)
		}
	}
	s.After(1, func() { s.After(1, func() { fired++ }) })
	s.RunAll()
	if fired == 0 {
		t.Fatal("nothing fired")
	}
	if len(a.laws) != 0 {
		t.Fatalf("clean kernel raised violations: %v", a.laws)
	}
}

// TestAuditDoubleFree: releasing the same event storage twice (the bug the
// free list's generation counters exist to survive) is reported once the
// audit is installed, and the corrupting second append is suppressed.
func TestAuditDoubleFree(t *testing.T) {
	s := NewSchedulerKernel(KernelHeap)
	var a recordingAudit
	a.install(s)
	ev, err := s.At(5, func() {})
	if err != nil {
		t.Fatal(err)
	}
	hk := s.k.(*heapKernel)
	heap.Remove(&hk.q, ev.e.index)
	s.release(ev.e)
	free := len(s.free)
	s.release(ev.e) // the bug
	if !a.has("sim/free-list") {
		t.Fatalf("double free not reported; laws: %v", a.laws)
	}
	if len(s.free) != free {
		t.Fatal("double-freed event appended to the free list again")
	}
}

// TestAuditStaleDispatch: an event still queued after its storage was
// freed (a use-after-free in kernel terms) is flagged at dispatch.
func TestAuditStaleDispatch(t *testing.T) {
	s := NewScheduler()
	var a recordingAudit
	a.install(s)
	ev, err := s.At(5, func() {})
	if err != nil {
		t.Fatal(err)
	}
	ev.e.freed = true // simulate freed storage left in the heap
	s.Step()
	if !a.has("sim/queue-integrity") {
		t.Fatalf("stale dispatch not reported; laws: %v", a.laws)
	}
}

// TestAuditClockMonotone: an event timestamped before the current clock
// (impossible through At, which rejects past times) is flagged.
func TestAuditClockMonotone(t *testing.T) {
	s := NewScheduler()
	var a recordingAudit
	a.install(s)
	if _, err := s.At(10, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Step() // clock at 10
	ev := s.alloc()
	ev.at, ev.seq, ev.fn = 3, s.seq, func() {}
	s.seq++
	s.k.push(ev)
	s.Step()
	if !a.has("sim/clock-monotone") {
		t.Fatalf("clock regression not reported; laws: %v", a.laws)
	}
	if len(a.details) == 0 || !strings.Contains(a.details[0], "3") {
		t.Fatalf("detail lacks the offending timestamp: %v", a.details)
	}
}

// TestAuditCancelIntegrity: a handle whose heap index no longer points at
// its own storage is refused and reported instead of corrupting the heap.
func TestAuditCancelIntegrity(t *testing.T) {
	s := NewSchedulerKernel(KernelHeap)
	var a recordingAudit
	a.install(s)
	ev, err := s.At(5, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(6, func() {}); err != nil {
		t.Fatal(err)
	}
	ev.e.index = 1 // corrupt: points at the other event's slot
	if s.Cancel(ev) {
		t.Fatal("corrupted cancel succeeded")
	}
	if !a.has("sim/queue-integrity") {
		t.Fatalf("corrupted cancel not reported; laws: %v", a.laws)
	}
}

// TestNoAuditKeepsBehavior: without an installed audit the kernel runs the
// same traffic unchecked — the nil path must stay inert.
func TestNoAuditKeepsBehavior(t *testing.T) {
	s := NewScheduler()
	var fired int
	for i := 0; i < 20; i++ {
		s.After(Time(i), func() { fired++ })
	}
	s.RunAll()
	if fired != 20 {
		t.Fatalf("fired %d of 20", fired)
	}
}
