// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock measured in seconds (type Time) and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in scheduling order, which makes every run with the same inputs fully
// reproducible. All simulated subsystems (radio medium, sensor beaconing,
// robot motion, coordination algorithms) are driven from a single Scheduler.
//
// Two interchangeable queue kernels implement the same (at, seq) total
// order: the default ladder queue (amortized O(1) per operation, built for
// million-node fields) and the legacy binary heap (kept for differential
// testing). Because the order is a strict total order — seq is unique per
// event — every run is bit-identical under either kernel.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a virtual simulation timestamp in seconds since the start of the
// run. Virtual time is unrelated to wall-clock time: a 64000 s simulation
// completes in milliseconds of real time.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// TimeZero is the start of every simulation.
const TimeZero Time = 0

// TimeInf sorts after every reachable event time.
var TimeInf = Time(math.Inf(1))

// Seconds reports the timestamp as a plain float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Add returns the timestamp d seconds after t.
func (t Time) Add(d Duration) Time { return t + d }

// Sub returns the span between t and u (t − u).
func (t Time) Sub(u Time) Duration { return t - u }

// String formats the timestamp with millisecond resolution.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// ErrTimeInPast is returned when an event is scheduled before the current
// virtual time.
var ErrTimeInPast = errors.New("sim: event scheduled in the past")

// event is the scheduler-owned storage for one scheduled callback. Fired
// and cancelled events return to the scheduler's free list and are reused
// by later At/After calls, so steady-state scheduling allocates nothing.
// The generation counter makes stale Event handles inert after reuse.
type event struct {
	at    Time
	seq   uint64
	gen   uint32
	index int // heap index, -1 when not queued (ladder events use 0)
	freed bool
	dead  bool // lazily cancelled, awaiting physical removal (ladder)
	fn    func()
}

// Audit receives the kernel's self-checks. Install one with SetAudit and
// the scheduler verifies its own bookkeeping at every dispatch, release,
// and cancellation, reporting breaches through Violation; without one the
// checks reduce to a nil test. The law names match the catalogue in the
// invariant package ("sim/clock-monotone", "sim/free-list",
// "sim/queue-integrity").
type Audit struct {
	// Violation reports one detected breach: the broken law's name, the
	// clock reading at detection, and a diagnostic with the disagreeing
	// numbers. Must be non-nil.
	Violation func(law string, at Time, detail string)
}

// SetAudit installs (or, with nil, removes) the kernel's audit sink.
func (s *Scheduler) SetAudit(a *Audit) { s.audit = a }

// Event is a cancellable handle to a scheduled callback. The zero value
// refers to no event: it reports not scheduled, and cancelling it is a
// no-op. Handles stay safe after the event fires or is cancelled — the
// underlying storage is recycled, but a stale handle can never touch the
// event that reused it.
type Event struct {
	e   *event
	gen uint32
}

// At reports the virtual time the event fires at, or 0 once the event has
// fired or been cancelled.
func (ev Event) At() Time {
	if !ev.Scheduled() {
		return 0
	}
	return ev.e.at
}

// Scheduled reports whether the event is still pending.
func (ev Event) Scheduled() bool {
	return ev.e != nil && ev.gen == ev.e.gen && ev.e.index >= 0
}

// kernel is the pluggable priority-queue core behind a Scheduler. Both
// implementations honor the same strict (at, seq) total order, so the fire
// sequence — and therefore the whole simulation — is identical under
// either. pop and peek return nil when no live event remains; cancel owns
// the full cancellation bookkeeping for its representation.
type kernel interface {
	push(*event)
	pop() *event
	peek() *event
	cancel(*event) bool
	len() int
	// each visits every live pending event in unspecified order without
	// perturbing the queue (checkpoint surface; see snapshot.go).
	each(func(*event))
}

// Kernel selects a Scheduler's priority-queue implementation.
type Kernel int

const (
	// KernelLadder is the default ladder queue: time-bucketed rungs with a
	// sorted bottom run, amortized O(1) per operation.
	KernelLadder Kernel = iota
	// KernelHeap is the legacy container/heap binary heap, O(log n) per
	// operation. Kept for differential testing against the ladder.
	KernelHeap
)

// String names the kernel ("ladder" or "heap").
func (k Kernel) String() string {
	switch k {
	case KernelHeap:
		return "heap"
	default:
		return "ladder"
	}
}

// ParseKernel converts "ladder" or "heap" (or "", meaning the default)
// into a Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "ladder":
		return KernelLadder, nil
	case "heap":
		return KernelHeap, nil
	}
	return KernelLadder, fmt.Errorf("sim: unknown kernel %q (want ladder or heap)", s)
}

// cmpEvent orders events by the kernel's strict (at, seq) total order.
func cmpEvent(a, b *event) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.seq != b.seq {
		if a.seq < b.seq {
			return -1
		}
		return 1
	}
	return 0
}

// eventQueue is a min-heap ordered by (at, seq). The back-reference to the
// scheduler lets Push report a corrupted insert through the audit instead
// of silently dropping it.
type eventQueue struct {
	s   *Scheduler
	evs []*event
}

func (q *eventQueue) Len() int { return len(q.evs) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.evs[i], q.evs[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) {
	q.evs[i], q.evs[j] = q.evs[j], q.evs[i]
	q.evs[i].index = i
	q.evs[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		if q.s != nil && q.s.audit != nil {
			q.s.audit.Violation("sim/queue-integrity", q.s.now, fmt.Sprintf(
				"heap push of foreign value %T", x))
		}
		return
	}
	ev.index = len(q.evs)
	q.evs = append(q.evs, ev)
}

func (q *eventQueue) Pop() any {
	old := q.evs
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	q.evs = old[:n-1]
	return ev
}

// heapKernel adapts the legacy binary heap to the kernel interface.
type heapKernel struct {
	s *Scheduler
	q eventQueue
}

func (k *heapKernel) len() int { return len(k.q.evs) }

func (k *heapKernel) push(ev *event) { heap.Push(&k.q, ev) }

func (k *heapKernel) peek() *event {
	if len(k.q.evs) == 0 {
		return nil
	}
	return k.q.evs[0]
}

func (k *heapKernel) pop() *event {
	if len(k.q.evs) == 0 {
		return nil
	}
	ev, ok := heap.Pop(&k.q).(*event)
	if !ok {
		if k.s.audit != nil {
			k.s.audit.Violation("sim/queue-integrity", k.s.now, fmt.Sprintf(
				"heap pop yielded a foreign value %T", ev))
		}
		return nil
	}
	return ev
}

func (k *heapKernel) cancel(ev *event) bool {
	s := k.s
	if s.audit != nil && (ev.index >= len(k.q.evs) || k.q.evs[ev.index] != ev) {
		s.audit.Violation("sim/queue-integrity", s.now, fmt.Sprintf(
			"cancel of event seq=%d: heap index %d does not point back at the event",
			ev.seq, ev.index))
		return false
	}
	heap.Remove(&k.q, ev.index)
	s.release(ev)
	return true
}

// Scheduler owns the virtual clock and the pending event queue.
//
// A Scheduler is not safe for concurrent use; the whole simulation is
// single-threaded by design so that runs are deterministic.
type Scheduler struct {
	now       Time
	seq       uint64
	k         kernel
	free      []*event // recycled event storage
	fired     uint64
	highWater int // deepest the queue has ever been
	stopped   bool
	audit     *Audit
}

// alloc takes an event from the free list, or allocates one.
func (s *Scheduler) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.freed = false
		ev.dead = false
		return ev
	}
	return &event{}
}

// release returns a dequeued event to the free list. Bumping the
// generation invalidates every outstanding handle to it.
func (s *Scheduler) release(ev *event) {
	if s.audit != nil && ev.freed {
		s.audit.Violation("sim/free-list", s.now, fmt.Sprintf(
			"event seq=%d gen=%d released twice", ev.seq, ev.gen))
		return
	}
	ev.fn = nil
	ev.gen++
	ev.freed = true
	s.free = append(s.free, ev)
}

// NewScheduler returns a scheduler with the clock at TimeZero, running the
// default (ladder) kernel.
func NewScheduler() *Scheduler {
	return NewSchedulerKernel(KernelLadder)
}

// NewSchedulerKernel returns a scheduler driven by the chosen queue
// kernel. Runs are bit-identical across kernels; KernelHeap exists for
// differential testing and as an escape hatch.
func NewSchedulerKernel(k Kernel) *Scheduler {
	s := &Scheduler{}
	switch k {
	case KernelHeap:
		hk := &heapKernel{s: s}
		hk.q.s = s
		s.k = hk
	default:
		s.k = newLadderQueue(s)
	}
	return s
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of events still queued.
func (s *Scheduler) Pending() int { return s.k.len() }

// Fired reports the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// HighWater reports the deepest the event queue has ever been — the
// kernel-side pressure stat behind the telemetry layer's event_queue_depth
// gauge.
func (s *Scheduler) HighWater() int { return s.highWater }

// At schedules fn to run at the absolute virtual time at.
func (s *Scheduler) At(at Time, fn func()) (Event, error) {
	if at < s.now {
		return Event{}, fmt.Errorf("%w: at=%v now=%v", ErrTimeInPast, at, s.now)
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn = at, s.seq, fn
	s.seq++
	s.k.push(ev)
	if n := s.k.len(); n > s.highWater {
		s.highWater = n
	}
	return Event{e: ev, gen: ev.gen}, nil
}

// After schedules fn to run d seconds from now. A non-positive delay fires
// at the current instant, after all callbacks already queued for it.
func (s *Scheduler) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	ev, err := s.At(s.now.Add(d), fn)
	if err != nil {
		// Unreachable: now+d >= now for d >= 0.
		panic(err)
	}
	return ev
}

// Cancel removes a pending event. Cancelling a zero, already-fired, or
// already-cancelled event is a no-op and reports false.
func (s *Scheduler) Cancel(ev Event) bool {
	if !ev.Scheduled() {
		return false
	}
	return s.k.cancel(ev.e)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	ev := s.k.pop()
	if ev == nil {
		return false
	}
	if s.audit != nil {
		if ev.at < s.now {
			s.audit.Violation("sim/clock-monotone", s.now, fmt.Sprintf(
				"event seq=%d fires at %v with the clock already at %v", ev.seq, ev.at, s.now))
		}
		if ev.freed {
			s.audit.Violation("sim/queue-integrity", s.now, fmt.Sprintf(
				"dispatch of freed event storage seq=%d gen=%d", ev.seq, ev.gen))
		}
	}
	s.now = ev.at
	s.fired++
	fn := ev.fn
	// Recycle before running the callback so a reschedule-on-fire pattern
	// (tickers, retry timers) reuses this event's storage immediately.
	s.release(ev)
	if fn != nil {
		fn()
	}
	return true
}

// Run executes events until no events remain or the next event is strictly
// after until; the clock is left at min(until, last event time). It returns
// the number of events executed.
func (s *Scheduler) Run(until Time) uint64 {
	s.stopped = false
	var n uint64
	for !s.stopped {
		ev := s.k.peek()
		if ev == nil || ev.at > until {
			break
		}
		s.Step()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes every pending event, including events scheduled by the
// events themselves, and returns the count executed.
func (s *Scheduler) RunAll() uint64 {
	s.stopped = false
	var n uint64
	for s.k.len() > 0 && !s.stopped {
		s.Step()
		n++
	}
	return n
}

// Stop makes the active Run/RunAll return after the current event finishes.
func (s *Scheduler) Stop() { s.stopped = true }

// Ticker fires a callback at a fixed period until stopped.
type Ticker struct {
	s      *Scheduler
	period Duration
	fn     func()
	fire   func() // t.tick bound once, so re-arming allocates nothing
	ev     Event
	stop   bool
}

// NewTicker schedules fn every period seconds, first firing at now+offset.
// Period must be positive.
func (s *Scheduler) NewTicker(offset, period Duration, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period %v not positive", period)
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.fire = t.tick
	if offset < 0 {
		offset = 0
	}
	t.ev = s.After(offset, t.fire)
	return t, nil
}

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.fn()
	if !t.stop {
		t.ev = t.s.After(t.period, t.fire)
	}
}

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	t.s.Cancel(t.ev)
}

// Active reports whether the ticker will fire again.
func (t *Ticker) Active() bool { return !t.stop }
