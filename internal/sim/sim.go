// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock measured in seconds (type Time) and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in scheduling order, which makes every run with the same inputs fully
// reproducible. All simulated subsystems (radio medium, sensor beaconing,
// robot motion, coordination algorithms) are driven from a single Scheduler.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a virtual simulation timestamp in seconds since the start of the
// run. Virtual time is unrelated to wall-clock time: a 64000 s simulation
// completes in milliseconds of real time.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// TimeZero is the start of every simulation.
const TimeZero Time = 0

// TimeInf sorts after every reachable event time.
var TimeInf = Time(math.Inf(1))

// Seconds reports the timestamp as a plain float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Add returns the timestamp d seconds after t.
func (t Time) Add(d Duration) Time { return t + d }

// Sub returns the span between t and u (t − u).
func (t Time) Sub(u Time) Duration { return t - u }

// String formats the timestamp with millisecond resolution.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// ErrTimeInPast is returned when an event is scheduled before the current
// virtual time.
var ErrTimeInPast = errors.New("sim: event scheduled in the past")

// event is the scheduler-owned storage for one scheduled callback. Fired
// and cancelled events return to the scheduler's free list and are reused
// by later At/After calls, so steady-state scheduling allocates nothing.
// The generation counter makes stale Event handles inert after reuse.
type event struct {
	at    Time
	seq   uint64
	gen   uint32
	index int // heap index, -1 when not queued
	freed bool
	fn    func()
}

// Audit receives the kernel's self-checks. Install one with SetAudit and
// the scheduler verifies its own bookkeeping at every dispatch, release,
// and cancellation, reporting breaches through Violation; without one the
// checks reduce to a nil test. The law names match the catalogue in the
// invariant package ("sim/clock-monotone", "sim/free-list",
// "sim/queue-integrity").
type Audit struct {
	// Violation reports one detected breach: the broken law's name, the
	// clock reading at detection, and a diagnostic with the disagreeing
	// numbers. Must be non-nil.
	Violation func(law string, at Time, detail string)
}

// SetAudit installs (or, with nil, removes) the kernel's audit sink.
func (s *Scheduler) SetAudit(a *Audit) { s.audit = a }

// Event is a cancellable handle to a scheduled callback. The zero value
// refers to no event: it reports not scheduled, and cancelling it is a
// no-op. Handles stay safe after the event fires or is cancelled — the
// underlying storage is recycled, but a stale handle can never touch the
// event that reused it.
type Event struct {
	e   *event
	gen uint32
}

// At reports the virtual time the event fires at, or 0 once the event has
// fired or been cancelled.
func (ev Event) At() Time {
	if !ev.Scheduled() {
		return 0
	}
	return ev.e.at
}

// Scheduled reports whether the event is still pending.
func (ev Event) Scheduled() bool {
	return ev.e != nil && ev.gen == ev.e.gen && ev.e.index >= 0
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler owns the virtual clock and the pending event queue.
//
// A Scheduler is not safe for concurrent use; the whole simulation is
// single-threaded by design so that runs are deterministic.
type Scheduler struct {
	now       Time
	seq       uint64
	queue     eventQueue
	free      []*event // recycled event storage
	fired     uint64
	highWater int // deepest the queue has ever been
	stopped   bool
	audit     *Audit
}

// alloc takes an event from the free list, or allocates one.
func (s *Scheduler) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.freed = false
		return ev
	}
	return &event{}
}

// release returns a dequeued event to the free list. Bumping the
// generation invalidates every outstanding handle to it.
func (s *Scheduler) release(ev *event) {
	if s.audit != nil && ev.freed {
		s.audit.Violation("sim/free-list", s.now, fmt.Sprintf(
			"event seq=%d gen=%d released twice", ev.seq, ev.gen))
		return
	}
	ev.fn = nil
	ev.gen++
	ev.freed = true
	s.free = append(s.free, ev)
}

// NewScheduler returns a scheduler with the clock at TimeZero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of events still queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired reports the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// HighWater reports the deepest the event queue has ever been — the
// kernel-side pressure stat behind the telemetry layer's event_queue_depth
// gauge.
func (s *Scheduler) HighWater() int { return s.highWater }

// At schedules fn to run at the absolute virtual time at.
func (s *Scheduler) At(at Time, fn func()) (Event, error) {
	if at < s.now {
		return Event{}, fmt.Errorf("%w: at=%v now=%v", ErrTimeInPast, at, s.now)
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn = at, s.seq, fn
	s.seq++
	heap.Push(&s.queue, ev)
	if len(s.queue) > s.highWater {
		s.highWater = len(s.queue)
	}
	return Event{e: ev, gen: ev.gen}, nil
}

// After schedules fn to run d seconds from now. A non-positive delay fires
// at the current instant, after all callbacks already queued for it.
func (s *Scheduler) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	ev, err := s.At(s.now.Add(d), fn)
	if err != nil {
		// Unreachable: now+d >= now for d >= 0.
		panic(err)
	}
	return ev
}

// Cancel removes a pending event. Cancelling a zero, already-fired, or
// already-cancelled event is a no-op and reports false.
func (s *Scheduler) Cancel(ev Event) bool {
	if !ev.Scheduled() {
		return false
	}
	if s.audit != nil && (ev.e.index >= len(s.queue) || s.queue[ev.e.index] != ev.e) {
		s.audit.Violation("sim/queue-integrity", s.now, fmt.Sprintf(
			"cancel of event seq=%d: heap index %d does not point back at the event",
			ev.e.seq, ev.e.index))
		return false
	}
	heap.Remove(&s.queue, ev.e.index)
	s.release(ev.e)
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev, ok := heap.Pop(&s.queue).(*event)
	if !ok {
		return false
	}
	if s.audit != nil {
		if ev.at < s.now {
			s.audit.Violation("sim/clock-monotone", s.now, fmt.Sprintf(
				"event seq=%d fires at %v with the clock already at %v", ev.seq, ev.at, s.now))
		}
		if ev.freed {
			s.audit.Violation("sim/queue-integrity", s.now, fmt.Sprintf(
				"dispatch of freed event storage seq=%d gen=%d", ev.seq, ev.gen))
		}
	}
	s.now = ev.at
	s.fired++
	fn := ev.fn
	// Recycle before running the callback so a reschedule-on-fire pattern
	// (tickers, retry timers) reuses this event's storage immediately.
	s.release(ev)
	if fn != nil {
		fn()
	}
	return true
}

// Run executes events until no events remain or the next event is strictly
// after until; the clock is left at min(until, last event time). It returns
// the number of events executed.
func (s *Scheduler) Run(until Time) uint64 {
	s.stopped = false
	var n uint64
	for len(s.queue) > 0 && !s.stopped {
		if s.queue[0].at > until {
			break
		}
		s.Step()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes every pending event, including events scheduled by the
// events themselves, and returns the count executed.
func (s *Scheduler) RunAll() uint64 {
	s.stopped = false
	var n uint64
	for len(s.queue) > 0 && !s.stopped {
		s.Step()
		n++
	}
	return n
}

// Stop makes the active Run/RunAll return after the current event finishes.
func (s *Scheduler) Stop() { s.stopped = true }

// Ticker fires a callback at a fixed period until stopped.
type Ticker struct {
	s      *Scheduler
	period Duration
	fn     func()
	ev     Event
	stop   bool
}

// NewTicker schedules fn every period seconds, first firing at now+offset.
// Period must be positive.
func (s *Scheduler) NewTicker(offset, period Duration, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period %v not positive", period)
	}
	t := &Ticker{s: s, period: period, fn: fn}
	if offset < 0 {
		offset = 0
	}
	t.ev = s.After(offset, t.tick)
	return t, nil
}

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.fn()
	if !t.stop {
		t.ev = t.s.After(t.period, t.tick)
	}
}

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	t.s.Cancel(t.ev)
}

// Active reports whether the ticker will fire again.
func (t *Ticker) Active() bool { return !t.stop }
