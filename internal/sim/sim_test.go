package sim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Time
		want Time
	}{
		{"add", Time(10).Add(5), 15},
		{"add negative", Time(10).Add(-3), 7},
		{"sub", Time(10).Sub(4), 6},
		{"zero add", TimeZero.Add(0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Fatalf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestTimeComparisons(t *testing.T) {
	if !Time(1).Before(2) {
		t.Error("1 should be before 2")
	}
	if Time(2).Before(2) {
		t.Error("2 should not be before itself")
	}
	if !Time(3).After(2) {
		t.Error("3 should be after 2")
	}
	if !TimeInf.After(1e300) {
		t.Error("TimeInf should be after any finite time")
	}
}

func TestTimeString(t *testing.T) {
	if got, want := Time(1.5).String(), "1.500s"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := Time(42.25).Seconds(); got != 42.25 {
		t.Fatalf("Seconds() = %v, want 42.25", got)
	}
}

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(3, func() { order = append(order, 3) })
	s.After(1, func() { order = append(order, 1) })
	s.After(2, func() { order = append(order, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
}

func TestSchedulerTieBreakIsFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5, func() { order = append(order, i) })
	}
	s.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestSchedulerAtRejectsPast(t *testing.T) {
	s := NewScheduler()
	s.After(10, func() {})
	s.RunAll()
	if _, err := s.At(5, func() {}); !errors.Is(err, ErrTimeInPast) {
		t.Fatalf("At(past) error = %v, want ErrTimeInPast", err)
	}
}

func TestSchedulerAfterNegativeDelayFiresNow(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-5, func() { fired = true })
	s.RunAll()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v for a negative delay", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	ev := s.After(1, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	if !s.Cancel(ev) {
		t.Fatal("Cancel reported failure for a pending event")
	}
	if ev.Scheduled() {
		t.Fatal("event still scheduled after cancel")
	}
	if s.Cancel(ev) {
		t.Fatal("second Cancel should be a no-op")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerCancelZero(t *testing.T) {
	s := NewScheduler()
	if s.Cancel(Event{}) {
		t.Fatal("Cancel of the zero Event should report false")
	}
}

func TestSchedulerCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var got []int
	events := make([]Event, 0, 20)
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.After(Duration(i), func() { got = append(got, i) }))
	}
	// Cancel every third event, including heap-internal nodes.
	for i := 0; i < 20; i += 3 {
		s.Cancel(events[i])
	}
	s.RunAll()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("fired %d events, want 13", len(got))
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Duration{1, 2, 3, 4, 5} {
		at := at
		s.After(at, func() { fired = append(fired, Time(at)) })
	}
	n := s.Run(3)
	if n != 3 {
		t.Fatalf("Run(3) executed %d events, want 3", n)
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
}

func TestSchedulerRunAdvancesClockToUntil(t *testing.T) {
	s := NewScheduler()
	s.Run(100)
	if s.Now() != 100 {
		t.Fatalf("empty Run(100) left clock at %v", s.Now())
	}
}

func TestSchedulerEventsScheduleEvents(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(1, recurse)
		}
	}
	s.After(1, recurse)
	s.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.After(Duration(i+1), func() {
			count++
			if count == 4 {
				s.Stop()
			}
		})
	}
	s.RunAll()
	if count != 4 {
		t.Fatalf("Stop did not halt the loop: count = %d", count)
	}
	if s.Pending() != 6 {
		t.Fatalf("Pending() = %d, want 6", s.Pending())
	}
}

func TestSchedulerFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.After(1, func() {})
	}
	s.RunAll()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	s := NewScheduler()
	var times []Time
	tk, err := s.NewTicker(0, 10, func() { times = append(times, s.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	s.Run(35)
	tk.Stop()
	want := []Time{0, 10, 20, 30}
	if len(times) != len(want) {
		t.Fatalf("ticker fired %d times, want %d: %v", len(times), len(want), times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTickerOffset(t *testing.T) {
	s := NewScheduler()
	var first Time = -1
	tk, err := s.NewTicker(3, 10, func() {
		if first < 0 {
			first = s.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	tk.Stop()
	if first != 3 {
		t.Fatalf("first tick at %v, want 3", first)
	}
}

func TestTickerStopPreventsFutureTicks(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tk *Ticker
	var err error
	tk, err = s.NewTicker(0, 1, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", count)
	}
	if tk.Active() {
		t.Fatal("ticker still active after Stop")
	}
}

func TestTickerRejectsNonPositivePeriod(t *testing.T) {
	s := NewScheduler()
	if _, err := s.NewTicker(0, 0, func() {}); err == nil {
		t.Fatal("NewTicker(period=0) should fail")
	}
	if _, err := s.NewTicker(0, -1, func() {}); err == nil {
		t.Fatal("NewTicker(period=-1) should fail")
	}
}

func TestTickerNegativeOffsetClamped(t *testing.T) {
	s := NewScheduler()
	var first Time = -1
	_, err := s.NewTicker(-5, 10, func() {
		if first < 0 {
			first = s.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	if first != 0 {
		t.Fatalf("first tick at %v, want 0", first)
	}
}

// Property: for any set of non-negative delays, RunAll fires events in
// non-decreasing time order and ends with the clock at the maximum delay.
func TestPropertySchedulerOrdering(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewScheduler()
		var fired []Time
		var maxAt Time
		for _, r := range raw {
			at := Duration(r % 1000)
			if Time(at) > maxAt {
				maxAt = Time(at)
			}
			s.After(at, func() { fired = append(fired, s.Now()) })
		}
		s.RunAll()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == maxAt
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling any subset of events fires exactly the complement.
func TestPropertyCancelComplement(t *testing.T) {
	prop := func(delays []uint8, mask []bool) bool {
		s := NewScheduler()
		firedCount := 0
		events := make([]Event, len(delays))
		for i, d := range delays {
			events[i] = s.After(Duration(d), func() { firedCount++ })
		}
		cancelled := 0
		for i, ev := range events {
			if i < len(mask) && mask[i] {
				if s.Cancel(ev) {
					cancelled++
				}
			}
		}
		s.RunAll()
		return firedCount == len(delays)-cancelled
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeInfIsInfinite(t *testing.T) {
	if !math.IsInf(float64(TimeInf), 1) {
		t.Fatal("TimeInf is not +Inf")
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}

func TestEventAccessors(t *testing.T) {
	s := NewScheduler()
	ev := s.After(5, func() {})
	if ev.At() != 5 {
		t.Fatalf("At() = %v", ev.At())
	}
	if !ev.Scheduled() {
		t.Fatal("pending event should report scheduled")
	}
	s.RunAll()
	if ev.Scheduled() {
		t.Fatal("fired event should not report scheduled")
	}
	var zero Event
	if zero.Scheduled() {
		t.Fatal("zero event should not report scheduled")
	}
}

// TestEventHandleStaleAfterReuse guards the free-list pool: a handle to a
// fired event must stay inert even after the scheduler reuses the event's
// storage for a new callback.
func TestEventHandleStaleAfterReuse(t *testing.T) {
	s := NewScheduler()
	stale := s.After(1, func() {})
	s.RunAll() // fires and recycles the event storage
	fired := false
	fresh := s.After(1, func() { fired = true }) // reuses the freed storage
	if stale.Scheduled() {
		t.Fatal("stale handle reports scheduled after storage reuse")
	}
	if s.Cancel(stale) {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if !fresh.Scheduled() {
		t.Fatal("fresh event lost")
	}
	s.RunAll()
	if !fired {
		t.Fatal("fresh event never fired (stale cancel hit it)")
	}
}

// TestSchedulerReusesEventStorage asserts the pool actually recycles:
// steady-state schedule/fire cycles must not grow allocations.
func TestSchedulerReusesEventStorage(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm the pool.
	s.After(1, fn)
	s.Step()
	allocs := testing.AllocsPerRun(100, func() {
		s.After(1, fn)
		s.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/fire allocates %.1f objects per cycle, want 0", allocs)
	}
}

func TestSchedulerRunResumable(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, d := range []Duration{1, 5, 9} {
		d := d
		s.After(d, func() { fired = append(fired, Time(d)) })
	}
	s.Run(4)
	if len(fired) != 1 {
		t.Fatalf("after Run(4): fired %v", fired)
	}
	s.Run(20)
	if len(fired) != 3 {
		t.Fatalf("after Run(20): fired %v", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("Now() = %v", s.Now())
	}
}

func TestSchedulerAtExactNow(t *testing.T) {
	s := NewScheduler()
	s.After(10, func() {})
	s.RunAll()
	fired := false
	if _, err := s.At(10, func() { fired = true }); err != nil {
		t.Fatalf("At(now) rejected: %v", err)
	}
	s.RunAll()
	if !fired {
		t.Fatal("At(now) event never fired")
	}
}
