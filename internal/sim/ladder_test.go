package sim

import (
	"testing"
)

// xorshift64 is a tiny in-test PRNG so workloads are identical across Go
// versions (math/rand's stream is not covered by the compatibility
// promise).
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// kernelTrace is the observable outcome of a workload: which callbacks
// fired, in what order, at what clock readings.
type kernelTrace struct {
	labels []int
	times  []Time
	fired  uint64
	now    Time
}

func (tr *kernelTrace) equal(o *kernelTrace) bool {
	if len(tr.labels) != len(o.labels) || tr.fired != o.fired || tr.now != o.now {
		return false
	}
	for i := range tr.labels {
		if tr.labels[i] != o.labels[i] || tr.times[i] != o.times[i] {
			return false
		}
	}
	return true
}

// runKernelWorkload drives one scheduler through a PRNG-derived mix of
// schedules (including same-instant bursts), cancels, steps, bounded runs,
// and ticker reschedule-on-fire, then drains it. The PRNG draw sequence is
// independent of kernel behavior, so two kernels see the same operations
// and any trace divergence is an ordering bug.
func runKernelWorkload(kn Kernel, seed uint64, nops int) *kernelTrace {
	s := NewSchedulerKernel(kn)
	rng := xorshift64(seed | 1)
	tr := &kernelTrace{}
	var handles []Event
	label := 0
	schedule := func(d Duration) {
		l := label
		label++
		handles = append(handles, s.After(d, func() {
			tr.labels = append(tr.labels, l)
			tr.times = append(tr.times, s.Now())
		}))
	}
	for op := 0; op < nops; op++ {
		switch r := rng.next() % 100; {
		case r < 35:
			schedule(Duration(rng.next()%4000) / 8)
		case r < 45:
			d := Duration(rng.next() % 200)
			for i := 0; i < 5; i++ {
				schedule(d) // same-instant burst: FIFO tie-break territory
			}
		case r < 50:
			schedule(0) // fires at the current instant
		case r < 65:
			if len(handles) > 0 {
				s.Cancel(handles[rng.next()%uint64(len(handles))])
			}
		case r < 78:
			s.Step()
		case r < 90:
			s.Run(s.Now() + Duration(rng.next()%250))
		default:
			l := label
			label++
			remaining := int(rng.next()%4) + 1
			var tk *Ticker
			tk, _ = s.NewTicker(Duration(rng.next()%10), 1+Duration(rng.next()%20), func() {
				tr.labels = append(tr.labels, l)
				tr.times = append(tr.times, s.Now())
				remaining--
				if remaining == 0 {
					tk.Stop()
				}
			})
		}
	}
	s.RunAll()
	tr.fired = s.Fired()
	tr.now = s.Now()
	return tr
}

// TestKernelDifferential locks the ladder to the heap: over randomized
// workloads both kernels must fire the exact same callbacks at the exact
// same clock readings in the exact same order.
func TestKernelDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		heapTr := runKernelWorkload(KernelHeap, seed, 400)
		ladTr := runKernelWorkload(KernelLadder, seed, 400)
		if !heapTr.equal(ladTr) {
			i := 0
			for i < len(heapTr.labels) && i < len(ladTr.labels) &&
				heapTr.labels[i] == ladTr.labels[i] && heapTr.times[i] == ladTr.times[i] {
				i++
			}
			t.Fatalf("seed %d: kernels diverge at fire #%d (heap fired %d, ladder %d; heap now %v, ladder %v)",
				seed, i, heapTr.fired, ladTr.fired, heapTr.now, ladTr.now)
		}
	}
}

// applyKernelOps drives a scheduler with an op stream decoded from raw
// bytes — the fuzz-facing twin of runKernelWorkload.
func applyKernelOps(kn Kernel, data []byte) *kernelTrace {
	s := NewSchedulerKernel(kn)
	tr := &kernelTrace{}
	var handles []Event
	label := 0
	schedule := func(d Duration) {
		l := label
		label++
		handles = append(handles, s.After(d, func() {
			tr.labels = append(tr.labels, l)
			tr.times = append(tr.times, s.Now())
		}))
	}
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		switch op % 8 {
		case 0, 1:
			schedule(Duration(arg) / 4)
		case 2:
			for j := 0; j < 3; j++ {
				schedule(Duration(arg))
			}
		case 3:
			schedule(0)
		case 4:
			if len(handles) > 0 {
				s.Cancel(handles[int(arg)%len(handles)])
			}
		case 5:
			s.Step()
		case 6:
			s.Run(s.Now() + Duration(arg))
		case 7:
			l := label
			label++
			remaining := int(arg%3) + 1
			var tk *Ticker
			tk, _ = s.NewTicker(Duration(arg%8), 1+Duration(arg%16), func() {
				tr.labels = append(tr.labels, l)
				tr.times = append(tr.times, s.Now())
				remaining--
				if remaining == 0 {
					tk.Stop()
				}
			})
		}
	}
	s.RunAll()
	tr.fired = s.Fired()
	tr.now = s.Now()
	return tr
}

// FuzzKernelOps feeds arbitrary op streams to both kernels and requires
// identical traces. `go test -fuzz=FuzzKernelOps ./internal/sim` explores;
// the corpus below seeds the interesting shapes.
func FuzzKernelOps(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 5, 0, 4, 0, 2, 7, 6, 50})
	f.Add([]byte{7, 9, 2, 0, 3, 0, 5, 0, 5, 0, 6, 255})
	f.Add([]byte{0, 255, 1, 1, 4, 1, 4, 0, 6, 3, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			data = data[:1024]
		}
		heapTr := applyKernelOps(KernelHeap, data)
		ladTr := applyKernelOps(KernelLadder, data)
		if !heapTr.equal(ladTr) {
			t.Fatalf("kernels diverge: heap fired %d (now %v), ladder fired %d (now %v)",
				heapTr.fired, heapTr.now, ladTr.fired, ladTr.now)
		}
	})
}

// TestLadderDeepRungs forces the rung-spawning path: a dense burst of
// events inside a narrow window behind a huge same-window population makes
// the first transfer bucket oversized repeatedly.
func TestLadderDeepRungs(t *testing.T) {
	s := NewScheduler()
	rng := xorshift64(7)
	const n = 20000
	var fired []Time
	for i := 0; i < n; i++ {
		at := Time(rng.next()%1000) / 64
		s.After(at, func() { fired = append(fired, s.Now()) })
	}
	s.RunAll()
	if len(fired) != n {
		t.Fatalf("fired %d of %d", len(fired), n)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("clock regressed at fire %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
}

// TestLadderCancelHeavy exercises lazy cancellation across every tier:
// cancel a large random subset before and between drains.
func TestLadderCancelHeavy(t *testing.T) {
	s := NewScheduler()
	rng := xorshift64(11)
	const n = 5000
	events := make([]Event, n)
	firedCount := 0
	for i := range events {
		events[i] = s.After(Duration(rng.next()%500), func() { firedCount++ })
	}
	cancelled := 0
	for i := range events {
		if rng.next()%3 == 0 {
			if s.Cancel(events[i]) {
				cancelled++
			}
		}
	}
	s.Run(250)
	for i := range events {
		if rng.next()%7 == 0 {
			if s.Cancel(events[i]) {
				cancelled++
			}
		}
	}
	s.RunAll()
	if firedCount != n-cancelled {
		t.Fatalf("fired %d, want %d (cancelled %d)", firedCount, n-cancelled, cancelled)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after RunAll", s.Pending())
	}
}

// TestKernelParse round-trips the kernel names.
func TestKernelParse(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", KernelLadder, true},
		{"ladder", KernelLadder, true},
		{"heap", KernelHeap, true},
		{"splay", KernelLadder, false},
	} {
		got, err := ParseKernel(tt.in)
		if (err == nil) != tt.ok || got != tt.want {
			t.Fatalf("ParseKernel(%q) = %v, %v", tt.in, got, err)
		}
	}
	if KernelLadder.String() != "ladder" || KernelHeap.String() != "heap" {
		t.Fatal("Kernel.String names wrong")
	}
}

// benchSchedulerHotLoop measures the steady-state schedule-one/fire-one
// cycle against a deep standing population — the regime a large field puts
// the kernel in (every sensor holds a pending beacon timer).
func benchSchedulerHotLoop(b *testing.B, kn Kernel) {
	s := NewSchedulerKernel(kn)
	rng := xorshift64(12345)
	fn := func() {}
	const standing = 1 << 16
	for i := 0; i < standing; i++ {
		s.After(Duration(rng.next()%100000)/100, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Duration(rng.next()%10000)/100, fn)
		s.Step()
	}
}

func BenchmarkSchedulerHotLoop(b *testing.B)     { benchSchedulerHotLoop(b, KernelLadder) }
func BenchmarkSchedulerHotLoopHeap(b *testing.B) { benchSchedulerHotLoop(b, KernelHeap) }
