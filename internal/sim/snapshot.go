package sim

import "slices"

// Checkpoint surface: the kernel's dynamic state, minus the callbacks.
// Event callbacks are Go closures and cannot be serialized; what CAN be
// captured exactly is every pending event's position in the strict
// (at, seq) total order plus the clock and sequence counters. A restored
// run re-creates the callbacks by deterministically replaying to the
// checkpoint time, then verifies the replayed kernel reproduces this
// state byte for byte (see internal/scenario and internal/checkpoint).

// EventStamp is the serializable identity of one pending event in the
// kernel's total order.
type EventStamp struct {
	At  Time
	Seq uint64
}

// KernelState is the scheduler's complete serializable state: clock,
// counters, and the (at, seq) stamp of every live pending event in total
// order. Both queue kernels produce identical KernelStates for the same
// run — the ladder/heap differential locks that.
type KernelState struct {
	Now       Time
	Seq       uint64
	Fired     uint64
	HighWater int
	Pending   []EventStamp
}

// SnapshotState captures the scheduler's state. The scheduler is not
// perturbed: lazily-cancelled ladder events are skipped, not purged.
func (s *Scheduler) SnapshotState() KernelState {
	st := KernelState{
		Now:       s.now,
		Seq:       s.seq,
		Fired:     s.fired,
		HighWater: s.highWater,
		Pending:   make([]EventStamp, 0, s.k.len()),
	}
	s.k.each(func(ev *event) {
		st.Pending = append(st.Pending, EventStamp{At: ev.at, Seq: ev.seq})
	})
	slices.SortFunc(st.Pending, func(a, b EventStamp) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		if a.Seq != b.Seq {
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		}
		return 0
	})
	return st
}

// each visits every live pending event in unspecified order.
func (k *heapKernel) each(fn func(*event)) {
	// The heap removes cancelled events eagerly: everything stored is live.
	for _, ev := range k.q.evs {
		fn(ev)
	}
}

// each visits every live pending event in unspecified order, skipping
// lazily-cancelled storage awaiting physical removal.
func (q *ladderQueue) each(fn func(*event)) {
	visit := func(evs []*event) {
		for _, ev := range evs {
			if ev != nil && !ev.dead {
				fn(ev)
			}
		}
	}
	visit(q.bottom[q.bot0:])
	for i := range q.rungs {
		r := &q.rungs[i]
		for j := r.cur; j < len(r.buckets); j++ {
			visit(r.buckets[j])
		}
	}
	visit(q.top)
}
