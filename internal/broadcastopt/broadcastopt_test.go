package broadcastopt

import (
	"math"
	"testing"
	"testing/quick"

	"roborepair/internal/geom"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
	"roborepair/internal/rng"
)

func nb(id radio.NodeID, x, y float64) netstack.Neighbor {
	return netstack.Neighbor{ID: id, Loc: geom.Pt(x, y)}
}

func TestSelectRelaysEmpty(t *testing.T) {
	if got := SelectRelays(geom.Pt(0, 0), nil, 6); got != nil {
		t.Fatalf("empty neighbors → %v", got)
	}
	if got := SelectRelays(geom.Pt(0, 0), []netstack.Neighbor{nb(1, 1, 0)}, 0); got != nil {
		t.Fatalf("zero sectors → %v", got)
	}
}

func TestSelectRelaysOnePerSector(t *testing.T) {
	self := geom.Pt(0, 0)
	// Two neighbors in the same (first) sector: only the farther relays.
	neighbors := []netstack.Neighbor{
		nb(1, 10, 1),
		nb(2, 50, 5),
		nb(3, -30, 1), // opposite sector
	}
	got := SelectRelays(self, neighbors, 6)
	if len(got) != 2 {
		t.Fatalf("relays = %v, want 2 sectors covered", got)
	}
	if !Contains(got, 2) || !Contains(got, 3) || Contains(got, 1) {
		t.Fatalf("relays = %v, want {2,3}", got)
	}
}

func TestSelectRelaysCapBySectors(t *testing.T) {
	self := geom.Pt(0, 0)
	var neighbors []netstack.Neighbor
	for i := 0; i < 100; i++ {
		ang := float64(i) / 100 * 2 * math.Pi
		neighbors = append(neighbors, nb(radio.NodeID(i+1), 50*math.Cos(ang), 50*math.Sin(ang)))
	}
	got := SelectRelays(self, neighbors, 6)
	if len(got) != 6 {
		t.Fatalf("relays = %d, want exactly 6 with all sectors populated", len(got))
	}
}

func TestSelectRelaysSkipsCoincident(t *testing.T) {
	self := geom.Pt(5, 5)
	got := SelectRelays(self, []netstack.Neighbor{nb(1, 5, 5)}, 6)
	if got != nil {
		t.Fatalf("coincident neighbor selected: %v", got)
	}
}

func TestSelectRelaysSorted(t *testing.T) {
	self := geom.Pt(0, 0)
	neighbors := []netstack.Neighbor{
		nb(9, 10, 0), nb(3, 0, 10), nb(7, -10, 0), nb(1, 0, -10),
	}
	got := SelectRelays(self, neighbors, 4)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("unsorted relays: %v", got)
		}
	}
}

func TestContains(t *testing.T) {
	if !Contains(nil, 5) {
		t.Fatal("nil set designates everyone")
	}
	set := []radio.NodeID{2, 5, 9}
	if !Contains(set, 5) || Contains(set, 4) {
		t.Fatal("membership wrong")
	}
	if Contains([]radio.NodeID{}, 5) {
		t.Fatal("empty (non-nil) set designates nobody")
	}
}

// Property: relay count never exceeds the sector count, and every relay is
// an actual neighbor.
func TestPropertyRelayBounds(t *testing.T) {
	prop := func(seed int64, sectorRaw uint8) bool {
		sectors := int(sectorRaw%8) + 1
		r := rng.New(seed)
		self := geom.Pt(100, 100)
		ids := map[radio.NodeID]bool{}
		var neighbors []netstack.Neighbor
		for i := 0; i < 20; i++ {
			id := radio.NodeID(i + 1)
			ids[id] = true
			neighbors = append(neighbors, nb(id, r.Uniform(50, 150), r.Uniform(50, 150)))
		}
		got := SelectRelays(self, neighbors, sectors)
		if len(got) > sectors {
			return false
		}
		for _, id := range got {
			if !ids[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the farthest neighbor overall is always designated (it is the
// farthest in its own sector).
func TestPropertyFarthestAlwaysDesignated(t *testing.T) {
	prop := func(seed int64) bool {
		r := rng.New(seed)
		self := geom.Pt(0, 0)
		var neighbors []netstack.Neighbor
		var farthest radio.NodeID
		best := -1.0
		for i := 0; i < 15; i++ {
			n := nb(radio.NodeID(i+1), r.Uniform(-60, 60), r.Uniform(-60, 60))
			neighbors = append(neighbors, n)
			if d := self.Dist(n.Loc); d > best {
				best, farthest = d, n.ID
			}
		}
		if best <= 0 {
			return true
		}
		return Contains(SelectRelays(self, neighbors, 6), farthest)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
