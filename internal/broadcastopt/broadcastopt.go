// Package broadcastopt implements the more efficient broadcast scheme the
// paper suggests in §4.3.2: "The high messaging overhead in the two
// distributed algorithms can be reduced by using more efficient broadcast
// schemes (e.g. [12]) which require only a subset of the sensors in each
// subarea to relay the location update messages."
//
// The scheme here is sender-designated angular relay selection, a
// localized position-based technique from the family surveyed by
// Stojmenovic and Wu [12]: a relaying sensor designates at most one
// forwarder per angular sector — the farthest neighbor in the sector,
// because its transmission disk adds the most new area. With six 60°
// sectors the designated disks cover the sender's entire 2-hop
// neighborhood in dense deployments, so coverage is preserved while the
// relay count per hop drops from "every neighbor" to at most six.
package broadcastopt

import (
	"math"
	"sort"

	"roborepair/internal/geom"
	"roborepair/internal/netstack"
	"roborepair/internal/radio"
)

// DefaultSectors is the standard six-sector configuration; 60° sectors
// with farthest-neighbor selection preserve flooding coverage on unit-disk
// graphs of the paper's density.
const DefaultSectors = 6

// SelectRelays picks at most one designated forwarder per angular sector
// around self: the farthest neighbor in that sector. Results are sorted by
// ID. Fewer than `sectors` relays are returned when sectors are empty.
func SelectRelays(self geom.Point, neighbors []netstack.Neighbor, sectors int) []radio.NodeID {
	if sectors <= 0 || len(neighbors) == 0 {
		return nil
	}
	type pick struct {
		id   radio.NodeID
		dist float64
		ok   bool
	}
	picks := make([]pick, sectors)
	width := 2 * math.Pi / float64(sectors)
	for _, n := range neighbors {
		if n.Loc.Eq(self) {
			continue
		}
		ang := self.Angle(n.Loc) // (−π, π]
		if ang < 0 {
			ang += 2 * math.Pi
		}
		idx := int(ang / width)
		if idx >= sectors {
			idx = sectors - 1
		}
		d := self.Dist(n.Loc)
		p := &picks[idx]
		if !p.ok || d > p.dist || (d == p.dist && n.ID < p.id) {
			*p = pick{id: n.ID, dist: d, ok: true}
		}
	}
	var out []radio.NodeID
	for _, p := range picks {
		if p.ok {
			out = append(out, p.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether id is in the designated relay set. A nil set
// designates everyone (blind flooding).
func Contains(relays []radio.NodeID, id radio.NodeID) bool {
	if relays == nil {
		return true
	}
	i := sort.Search(len(relays), func(i int) bool { return relays[i] >= id })
	return i < len(relays) && relays[i] == id
}
