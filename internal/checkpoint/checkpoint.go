// Package checkpoint defines the versioned, CRC-guarded binary snapshot
// format for full simulator state, and its defensive decoder.
//
// A snapshot is a header (format version, run seed, checkpoint time, and
// the complete scenario configuration as canonical JSON plus its SHA-256)
// followed by typed sections, each individually CRC-32-guarded. Sections
// carry the serialized dynamic state of one subsystem — kernel event
// stamps, RNG stream positions, sensor/robot/manager state vectors, the
// radio grid, chaos windows, telemetry ring positions — in the repo's wire
// conventions: fixed-width little-endian scalars, float64 bit patterns,
// strict 0/1 booleans, u32-length-prefixed byte strings.
//
// Restore does not deserialize closures (event callbacks cannot be
// serialized): the scenario layer rebuilds the world from the embedded
// config and deterministically replays to the checkpoint time, then
// re-serializes every section and byte-compares it against the snapshot.
// The sections are therefore both the verification oracle — any config
// drift, version skew, or undetected corruption fails the restore — and a
// self-contained record of the simulator's state for debugging tools.
//
// The decoder is defensive: it never panics, rejects truncated or
// bit-flipped input (magic, version gate, per-section CRCs, config hash),
// and accepts only canonical encodings — every accepted buffer re-encodes
// to identical bytes (FuzzSnapshotDecode locks both properties).
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Version is the current snapshot format version. Decode rejects other
// versions: snapshot state mirrors internal struct layouts, so there is no
// cross-version compatibility promise — the gate turns skew into a clean
// error instead of a garbage restore.
const Version uint16 = 1

// magic identifies a snapshot file ("RoboRepair SNapshot").
var magic = [4]byte{'R', 'R', 'S', 'N'}

// SectionID names one serialized subsystem.
type SectionID uint16

// Section IDs. The explicit values are the format contract: never
// renumber, only extend.
const (
	SecKernel    SectionID = 1  // scheduler clock, counters, pending event stamps
	SecRNG       SectionID = 2  // named stream positions
	SecCounters  SectionID = 3  // scenario-level counters and ledgers
	SecSensors   SectionID = 4  // per-sensor state vectors, ID-ascending
	SecRobots    SectionID = 5  // per-robot state vectors, ID-ascending
	SecManager   SectionID = 6  // central manager state (empty when absent)
	SecRadio     SectionID = 7  // medium station table: active flags, positions
	SecChaos     SectionID = 8  // fault-plan dynamic state (corrupter capture ring)
	SecMetrics   SectionID = 9  // metrics registry counters and accumulators
	SecTelemetry SectionID = 10 // telemetry histograms and sampler ring positions
	SecFTDC      SectionID = 11 // flight recorder chunks and pending sample tail
)

// String names the section for diagnostics.
func (id SectionID) String() string {
	switch id {
	case SecKernel:
		return "kernel"
	case SecRNG:
		return "rng"
	case SecCounters:
		return "counters"
	case SecSensors:
		return "sensors"
	case SecRobots:
		return "robots"
	case SecManager:
		return "manager"
	case SecRadio:
		return "radio"
	case SecChaos:
		return "chaos"
	case SecMetrics:
		return "metrics"
	case SecTelemetry:
		return "telemetry"
	case SecFTDC:
		return "ftdc"
	default:
		return fmt.Sprintf("section(%d)", uint16(id))
	}
}

// Section is one CRC-guarded state blob.
type Section struct {
	ID      SectionID
	Payload []byte
}

// Snapshot is the in-memory form of one checkpoint.
type Snapshot struct {
	// Seed is the run seed (duplicated from the config for cheap access).
	Seed int64
	// T is the simulated time the snapshot was taken at.
	T float64
	// ConfigJSON is the complete scenario configuration, canonical JSON.
	ConfigJSON []byte
	// Sections holds the per-subsystem state, in ascending SectionID order.
	Sections []Section
}

// Section returns the payload of the section with the given ID.
func (s *Snapshot) Section(id SectionID) ([]byte, bool) {
	for i := range s.Sections {
		if s.Sections[i].ID == id {
			return s.Sections[i].Payload, true
		}
	}
	return nil, false
}

// ConfigHash returns the SHA-256 of a canonical config JSON — the content
// hash used by the snapshot header and the sweep resume journal.
func ConfigHash(configJSON []byte) [sha256.Size]byte {
	return sha256.Sum256(configJSON)
}

// Limits that bound what the defensive decoder will allocate before the
// CRCs have vouched for the input.
const (
	maxSections   = 64
	maxConfigJSON = 1 << 20 // 1 MiB of config JSON is already absurd
)

// Decode errors. ErrCorrupt covers every structural or integrity failure;
// callers gate on it to count rejected snapshots.
var (
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrVersion marks a structurally plausible snapshot from another
	// format version.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Encode serializes the snapshot. It errors on malformed inputs (sections
// out of order, duplicate or zero IDs, oversized blobs) rather than
// emitting a buffer its own decoder would reject.
func Encode(s *Snapshot) ([]byte, error) {
	if len(s.ConfigJSON) == 0 || len(s.ConfigJSON) > maxConfigJSON {
		return nil, fmt.Errorf("checkpoint: config JSON length %d outside (0, %d]", len(s.ConfigJSON), maxConfigJSON)
	}
	if len(s.Sections) == 0 || len(s.Sections) > maxSections {
		return nil, fmt.Errorf("checkpoint: section count %d outside (0, %d]", len(s.Sections), maxSections)
	}
	if math.IsNaN(s.T) || math.IsInf(s.T, 0) || s.T < 0 {
		return nil, fmt.Errorf("checkpoint: snapshot time %v not a finite non-negative value", s.T)
	}
	b := make([]byte, 0, 256+len(s.ConfigJSON))
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Sections)))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Seed))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.T))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.ConfigJSON)))
	b = append(b, s.ConfigJSON...)
	hash := ConfigHash(s.ConfigJSON)
	b = append(b, hash[:]...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))

	last := SectionID(0)
	for _, sec := range s.Sections {
		if sec.ID <= last {
			return nil, fmt.Errorf("checkpoint: section %v out of ascending order (after %v)", sec.ID, last)
		}
		last = sec.ID
		if len(sec.Payload) > math.MaxUint32 {
			return nil, fmt.Errorf("checkpoint: section %v payload too large", sec.ID)
		}
		start := len(b)
		b = binary.LittleEndian.AppendUint16(b, uint16(sec.ID))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sec.Payload)))
		b = append(b, sec.Payload...)
		b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
	}
	return b, nil
}

// dec is a bounds-checked little-endian reader.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) bytes(n int) ([]byte, bool) {
	if n < 0 || d.remaining() < n {
		return nil, false
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, true
}

func (d *dec) u16() (uint16, bool) {
	b, ok := d.bytes(2)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint16(b), true
}

func (d *dec) u32() (uint32, bool) {
	b, ok := d.bytes(4)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b), true
}

func (d *dec) u64() (uint64, bool) {
	b, ok := d.bytes(8)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}

// Decode parses and validates a snapshot buffer. It never panics; every
// acceptance implies the buffer re-encodes byte-identically (canonical
// form). Returned slices are copies — the caller may discard or mutate the
// input freely.
func Decode(b []byte) (*Snapshot, error) {
	d := &dec{b: b}
	m, ok := d.bytes(4)
	if !ok || [4]byte(m) != magic {
		return nil, corruptf("bad magic")
	}
	ver, ok := d.u16()
	if !ok {
		return nil, corruptf("truncated header")
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, ver, Version)
	}
	nsec, ok := d.u16()
	if !ok {
		return nil, corruptf("truncated header")
	}
	if nsec == 0 || nsec > maxSections {
		return nil, corruptf("section count %d outside (0, %d]", nsec, maxSections)
	}
	seed, ok1 := d.u64()
	tbits, ok2 := d.u64()
	clen, ok3 := d.u32()
	if !ok1 || !ok2 || !ok3 {
		return nil, corruptf("truncated header")
	}
	t := math.Float64frombits(tbits)
	if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		return nil, corruptf("snapshot time %v not a finite non-negative value", t)
	}
	if clen == 0 || clen > maxConfigJSON {
		return nil, corruptf("config JSON length %d outside (0, %d]", clen, maxConfigJSON)
	}
	cfg, ok := d.bytes(int(clen))
	if !ok {
		return nil, corruptf("truncated config JSON")
	}
	wantHash, ok := d.bytes(sha256.Size)
	if !ok {
		return nil, corruptf("truncated config hash")
	}
	if ConfigHash(cfg) != [sha256.Size]byte(wantHash) {
		return nil, corruptf("config hash mismatch")
	}
	headerEnd := d.off
	hcrc, ok := d.u32()
	if !ok {
		return nil, corruptf("truncated header CRC")
	}
	if crc32.ChecksumIEEE(b[:headerEnd]) != hcrc {
		return nil, corruptf("header CRC mismatch")
	}

	snap := &Snapshot{
		Seed:       int64(seed),
		T:          t,
		ConfigJSON: append([]byte(nil), cfg...),
		Sections:   make([]Section, 0, nsec),
	}
	last := SectionID(0)
	for i := 0; i < int(nsec); i++ {
		start := d.off
		id16, ok := d.u16()
		if !ok {
			return nil, corruptf("truncated section %d header", i)
		}
		id := SectionID(id16)
		if id <= last {
			return nil, corruptf("section %v out of ascending order", id)
		}
		last = id
		plen, ok := d.u32()
		if !ok {
			return nil, corruptf("truncated section %v length", id)
		}
		payload, ok := d.bytes(int(plen))
		if !ok {
			return nil, corruptf("truncated section %v payload (%d bytes declared, %d left)", id, plen, d.remaining())
		}
		bodyEnd := d.off
		scrc, ok := d.u32()
		if !ok {
			return nil, corruptf("truncated section %v CRC", id)
		}
		if crc32.ChecksumIEEE(b[start:bodyEnd]) != scrc {
			return nil, corruptf("section %v CRC mismatch", id)
		}
		snap.Sections = append(snap.Sections, Section{ID: id, Payload: append([]byte(nil), payload...)})
	}
	if d.remaining() != 0 {
		return nil, corruptf("%d trailing bytes after last section", d.remaining())
	}
	return snap, nil
}

// WriteFile atomically writes the snapshot to path (temp file + rename),
// so a crash mid-write never leaves a torn snapshot under the final name.
func WriteFile(path string, s *Snapshot) error {
	b, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}
