package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Seed:       -42,
		T:          1234.5,
		ConfigJSON: []byte(`{"seed":-42,"simTime":3600}`),
		Sections: []Section{
			{ID: SecKernel, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{ID: SecRNG, Payload: []byte("rng-state")},
			{ID: SecSensors, Payload: nil}, // empty payloads are legal
			{ID: SecTelemetry, Payload: bytes.Repeat([]byte{0xAB}, 300)},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	b, err := Encode(want)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Seed != want.Seed || got.T != want.T {
		t.Fatalf("header round-trip: got seed=%d t=%v, want seed=%d t=%v", got.Seed, got.T, want.Seed, want.T)
	}
	if !bytes.Equal(got.ConfigJSON, want.ConfigJSON) {
		t.Fatalf("config JSON round-trip mismatch")
	}
	if len(got.Sections) != len(want.Sections) {
		t.Fatalf("section count %d, want %d", len(got.Sections), len(want.Sections))
	}
	for i := range want.Sections {
		if got.Sections[i].ID != want.Sections[i].ID {
			t.Fatalf("section %d id %v, want %v", i, got.Sections[i].ID, want.Sections[i].ID)
		}
		if !bytes.Equal(got.Sections[i].Payload, want.Sections[i].Payload) {
			t.Fatalf("section %v payload mismatch", got.Sections[i].ID)
		}
	}

	// Canonical: re-encoding the decoded snapshot is byte-identical.
	b2, err := Encode(got)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("re-encode not byte-identical")
	}
}

func TestSectionLookup(t *testing.T) {
	s := sampleSnapshot()
	if p, ok := s.Section(SecRNG); !ok || string(p) != "rng-state" {
		t.Fatalf("Section(SecRNG) = %q, %v", p, ok)
	}
	if _, ok := s.Section(SecChaos); ok {
		t.Fatalf("Section(SecChaos) unexpectedly present")
	}
}

// TestTruncationAtEveryBoundary: every strict prefix of a valid snapshot
// must be cleanly rejected, never accepted and never a panic.
func TestTruncationAtEveryBoundary(t *testing.T) {
	b, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(b))
		}
	}
}

// TestBitFlips: flipping any single bit must be rejected (the CRCs cover
// every byte of the encoding).
func TestBitFlips(t *testing.T) {
	b, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := 0; i < len(b); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), b...)
			mut[i] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	b, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(append(b, 0)); err == nil {
		t.Fatalf("trailing byte accepted")
	}
}

func TestVersionGate(t *testing.T) {
	b, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Bump the version field (offset 4..6) and fix up the header CRC by
	// re-decoding: simplest is to corrupt and check for ErrVersion before
	// the CRC check. Version is validated before the header CRC, so a bare
	// field edit is enough.
	mut := append([]byte(nil), b...)
	mut[4] = 99
	_, err = Decode(mut)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

func TestEncodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		s    *Snapshot
	}{
		{"no config", &Snapshot{Sections: []Section{{ID: SecKernel}}}},
		{"no sections", &Snapshot{ConfigJSON: []byte("{}")}},
		{"zero section id", &Snapshot{ConfigJSON: []byte("{}"), Sections: []Section{{ID: 0}}}},
		{"duplicate ids", &Snapshot{ConfigJSON: []byte("{}"), Sections: []Section{{ID: SecRNG}, {ID: SecRNG}}}},
		{"descending ids", &Snapshot{ConfigJSON: []byte("{}"), Sections: []Section{{ID: SecRobots}, {ID: SecKernel}}}},
		{"negative time", &Snapshot{T: -1, ConfigJSON: []byte("{}"), Sections: []Section{{ID: SecKernel}}}},
	}
	for _, tc := range cases {
		if _, err := Encode(tc.s); err == nil {
			t.Errorf("%s: Encode accepted", tc.name)
		}
	}
}

func TestErrCorruptClassification(t *testing.T) {
	if _, err := Decode([]byte("not a snapshot")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage: got %v, want ErrCorrupt", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil: got %v, want ErrCorrupt", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	want := sampleSnapshot()
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.T != want.T || !bytes.Equal(got.ConfigJSON, want.ConfigJSON) {
		t.Fatalf("file round-trip mismatch")
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries after WriteFile, want 1", len(ents))
	}
}

func TestSectionIDStrings(t *testing.T) {
	for id := SecKernel; id <= SecTelemetry; id++ {
		if s := id.String(); s == "" || s[:3] == "sec" {
			t.Fatalf("SectionID(%d).String() = %q", id, s)
		}
	}
	if s := SectionID(999).String(); s != "section(999)" {
		t.Fatalf("unknown id string = %q", s)
	}
}
