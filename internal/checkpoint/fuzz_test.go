package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode locks the decoder's two defensive properties:
// it never panics on arbitrary input, and anything it accepts is in
// canonical form (re-encodes byte-identically).
func FuzzSnapshotDecode(f *testing.F) {
	// Seed corpus: a valid snapshot, prefixes of it, mutations, and junk.
	valid, err := Encode(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:16])
	mut := append([]byte(nil), valid...)
	mut[len(mut)-1] ^= 0xFF
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte("RRSN"))
	f.Add(bytes.Repeat([]byte{0}, 128))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted ⇒ canonical: the re-encoding reproduces the input.
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical: %d in vs %d out bytes", len(data), len(re))
		}
	})
}
