package checkpoint

import (
	"encoding/binary"
	"math"
)

// Little-endian append helpers for section payloads. Every subsystem's
// AppendState method builds its payload with these, so all sections share
// one wire convention: fixed-width LE scalars, float64 bit patterns,
// strict 0/1 booleans, u32-length-prefixed strings. The payloads exist to
// be byte-compared (snapshot vs. replayed state), so canonical encoding —
// sorted map iteration at the call sites, no varints, no padding — is the
// whole point.

// AppendU16 appends v as 2 little-endian bytes.
func AppendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }

// AppendU32 appends v as 4 little-endian bytes.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends v as 8 little-endian bytes.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendI64 appends v as 8 little-endian two's-complement bytes.
func AppendI64(b []byte, v int64) []byte { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

// AppendF64 appends v's IEEE-754 bit pattern as 8 little-endian bytes.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBool appends a strict 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends p with a u32 length prefix.
func AppendBytes(b, p []byte) []byte {
	b = AppendU32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendString appends s with a u32 length prefix.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}
