package chaos

import (
	"roborepair/internal/rng"
	"roborepair/internal/sim"
)

// FrameCorrupter implements radio.Corrupter from the plan's corruption
// windows: inside a window each reception's bytes are mutated with the
// window's probability, drawing every decision from the corrupter's own
// seeded stream. It also keeps a small capture ring of recently seen
// encodings for the replay mode. Buffers handed to Corrupt are never
// modified in place — mutations copy first — so the ring can hold
// references (the medium encodes each transmission into a fresh buffer).
type FrameCorrupter struct {
	entries []Corruption
	now     func() sim.Time
	rand    *rng.Source

	ring    [8][]byte
	ringN   int // occupied slots
	ringPos int // next slot to overwrite
}

// NewFrameCorrupter builds the corrupter for the plan's corruption
// windows driven by the clock now, drawing from src. It returns nil when
// there are no windows; callers should then leave radio.Config.Corrupter
// unset.
func NewFrameCorrupter(entries []Corruption, now func() sim.Time, src *rng.Source) *FrameCorrupter {
	if len(entries) == 0 {
		return nil
	}
	return &FrameCorrupter{entries: entries, now: now, rand: src}
}

// active returns the corruption entry in force, resolving overlapping
// windows to the highest probability so a plan is order-independent.
func (c *FrameCorrupter) active(now float64) (Corruption, bool) {
	var best Corruption
	ok := false
	for _, e := range c.entries {
		if now >= e.From && now < e.To && (!ok || e.P > best.P) {
			best, ok = e, true
		}
	}
	return best, ok
}

// Corrupt implements radio.Corrupter.
func (c *FrameCorrupter) Corrupt(b []byte) (out []byte, corrupted, dup bool) {
	// Capture before deciding so the replay ring has history by the time
	// a window opens.
	c.ring[c.ringPos] = b
	c.ringPos = (c.ringPos + 1) % len(c.ring)
	if c.ringN < len(c.ring) {
		c.ringN++
	}
	e, ok := c.active(float64(c.now()))
	if !ok || c.rand.Float64() >= e.P {
		return b, false, false
	}
	mode := e.Mode
	if mode == "" || mode == "mix" {
		mode = [...]string{"bitflip", "truncate", "garbage", "duplicate", "replay"}[c.rand.Intn(5)]
	}
	switch mode {
	case "truncate":
		return b[:c.rand.Intn(len(b))], true, false
	case "garbage":
		g := make([]byte, len(b), len(b)+8)
		copy(g, b)
		for n := 1 + c.rand.Intn(8); n > 0; n-- {
			g = append(g, byte(c.rand.Intn(256)))
		}
		return g, true, false
	case "duplicate":
		return b, false, true
	case "replay":
		// The ring always holds at least the current frame; replaying it
		// is indistinguishable from duplication, which is fine.
		return c.ring[c.rand.Intn(c.ringN)], true, false
	default: // bitflip
		g := make([]byte, len(b))
		copy(g, b)
		for n := 1 + c.rand.Intn(3); n > 0; n-- {
			bit := c.rand.Intn(len(g) * 8)
			g[bit/8] ^= 1 << (bit % 8)
		}
		return g, true, false
	}
}
