package chaos

import (
	"reflect"
	"testing"
)

// FuzzChaosParse drives Parse with arbitrary specs. Properties: Parse
// never panics; whatever it accepts renders back through String into a
// spec that re-parses to a deeply equal plan; an accepted-but-empty plan
// renders to the empty spec.
func FuzzChaosParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"robot@8000=0;burst@8000-12000=0.05;mgr@16000",
		"blackout@2000-4000=100,100,80",
		"burst@1e-05-3000=0.3",
		"mgr@0",
		"robot@+Inf=1",
		"burst@0.125-0.25=1;burst@0.125-0.25=0",
		"blackout@1-2=-3.5,0.0625,1e-06",
		"robot@1=2;;;robot@3=4",
		"quake@100=9",
		"burst@NaN-100=0.5",
		"corrupt@1000-2000=0.05",
		"corrupt@500-2500=0.2,replay",
		"corrupt@1-2=0.5,gremlins",
		"burst@100-200=0.1;corrupt@100-200=0.1,mix",
		"drain@1000-2000=0.5",
		"drain@1000-2000=0.5,2",
		"drain@1e-05-3000=1.25",
		"drain@1-2=NaN",
		"drain@1-2=0.5,-1",
		"drain@100-500=0.0625;robot@500=0;mgr@900",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil || p == nil {
			return
		}
		rendered := p.String()
		if p.Empty() {
			if rendered != "" {
				t.Fatalf("empty plan renders %q", rendered)
			}
			return
		}
		q, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted plan %+v renders unparseable spec %q: %v", p, rendered, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip through %q:\n got %+v\nwant %+v", rendered, q, p)
		}
	})
}
