package chaos

import (
	"encoding/json"
	"reflect"
	"testing"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/rng"
	"roborepair/internal/sim"
)

func samplePlan() *FaultPlan {
	return &FaultPlan{
		RobotFailures:  []RobotFailure{{At: 8000, Robot: 0}},
		LossBursts:     []LossBurst{{From: 8000, To: 12000, P: 0.05}},
		Blackouts:      []Blackout{{From: 2000, To: 4000, Center: geom.Pt(100, 100), Radius: 80}},
		ManagerCrashAt: 16000,
	}
}

func TestParseRoundTrip(t *testing.T) {
	want := samplePlan()
	got, err := Parse(want.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", want.String(), err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if p, err := Parse("  "); err != nil || p != nil {
		t.Fatalf("empty spec: plan=%v err=%v", p, err)
	}
	bad := []string{
		"robot=0",            // missing @
		"robot@100",          // missing index
		"burst@100=0.5",      // missing window end
		"burst@100-50=0.5",   // inverted window
		"burst@100-200=1.5",  // probability out of range
		"blackout@1-2=3,4",   // missing radius
		"blackout@1-2=3,4,0", // zero radius
		"mgr@-5",             // negative time
		"quake@100=9",        // unknown kind
		"robot@1=x",          // non-numeric index
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	want := samplePlan()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got := &FaultPlan{}
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("json round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestValidateRobotIndex(t *testing.T) {
	p := &FaultPlan{RobotFailures: []RobotFailure{{At: 10, Robot: 4}}}
	if err := p.Validate(4); err == nil {
		t.Fatal("robot index 4 accepted for a team of 4")
	}
	if err := p.Validate(5); err != nil {
		t.Fatalf("robot index 4 rejected for a team of 5: %v", err)
	}
	if err := (*FaultPlan)(nil).Validate(4); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
}

func TestEmptyAndFirstFault(t *testing.T) {
	if !(*FaultPlan)(nil).Empty() || !(&FaultPlan{}).Empty() {
		t.Fatal("nil/zero plan not Empty")
	}
	p := samplePlan()
	if p.Empty() {
		t.Fatal("sample plan Empty")
	}
	at, ok := p.FirstFaultAt()
	if !ok || at != 2000 {
		t.Fatalf("FirstFaultAt = %v,%v want 2000,true", at, ok)
	}
	if _, ok := (&FaultPlan{}).FirstFaultAt(); ok {
		t.Fatal("empty plan has a first fault")
	}
}

// clock is a settable time source for model tests.
type clock struct{ t sim.Time }

func (c *clock) now() sim.Time { return c.t }

func TestLossInjectorWindows(t *testing.T) {
	c := &clock{}
	inj := NewLossInjector(
		[]LossBurst{{From: 100, To: 200, P: 1}},
		nil, c.now, rng.Split(1, "test"),
	)
	c.t = 50
	if inj.Drop(1, 2) {
		t.Fatal("dropped outside burst with nil base")
	}
	c.t = 150
	if !inj.Drop(1, 2) {
		t.Fatal("P=1 burst did not drop")
	}
	c.t = 200 // window is half-open
	if inj.Drop(1, 2) {
		t.Fatal("dropped at burst end")
	}
}

// alwaysDrop is a base model that drops everything.
type alwaysDrop struct{}

func (alwaysDrop) Drop(_, _ radio.NodeID) bool { return true }

func TestLossInjectorDelegatesToBase(t *testing.T) {
	c := &clock{t: 500}
	inj := NewLossInjector(
		[]LossBurst{{From: 100, To: 200, P: 0}},
		alwaysDrop{}, c.now, rng.Split(1, "test"),
	)
	if !inj.Drop(1, 2) {
		t.Fatal("base model not consulted outside burst")
	}
	if !inj.DropFrame(radio.Frame{Src: 1}, 2) {
		t.Fatal("DropFrame did not delegate to base")
	}
	c.t = 150 // a P=0 burst is a no-op: bursts add loss, the base still rules
	if !inj.Drop(1, 2) {
		t.Fatal("zero-probability burst suppressed the base model")
	}
}

func TestLossInjectorOverlapTakesMax(t *testing.T) {
	c := &clock{t: 150}
	inj := NewLossInjector(
		[]LossBurst{{From: 100, To: 200, P: 0}, {From: 140, To: 160, P: 1}},
		nil, c.now, rng.Split(1, "test"),
	)
	if !inj.Drop(1, 2) {
		t.Fatal("overlapping bursts did not resolve to the higher probability")
	}
}

func TestRegionOutage(t *testing.T) {
	c := &clock{}
	o := NewRegionOutage([]Blackout{{From: 100, To: 200, Center: geom.Pt(0, 0), Radius: 50}}, c.now)
	c.t = 150
	if !o.Silenced(geom.Pt(30, 0)) {
		t.Fatal("inside region not silenced during window")
	}
	if o.Silenced(geom.Pt(60, 0)) {
		t.Fatal("outside region silenced")
	}
	c.t = 50
	if o.Silenced(geom.Pt(30, 0)) {
		t.Fatal("silenced before window")
	}
	if NewRegionOutage(nil, c.now) != nil {
		t.Fatal("no blackouts should yield a nil outage")
	}
	var nilOutage *RegionOutage
	if nilOutage.Silenced(geom.Pt(0, 0)) {
		t.Fatal("nil outage silenced something")
	}
}
