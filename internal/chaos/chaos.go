// Package chaos injects faults into a simulation run from a declarative,
// seeded plan: scheduled robot breakdowns, message-loss bursts, regional
// radio blackouts, battery drains, and a central-manager crash. A plan is
// plain data —
// JSON-serializable and parseable from a compact flag syntax — so any run
// or sweep can be replayed deterministically under the same faults.
//
// The package only describes and models faults; wiring them into a world
// (killing the robots, installing the loss and outage models) is the
// scenario layer's job, which keeps chaos free of dependencies on the
// simulation entities.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"roborepair/internal/geom"
	"roborepair/internal/radio"
	"roborepair/internal/rng"
	"roborepair/internal/sim"
)

// RobotFailure breaks one robot down permanently at time At. Robot is the
// zero-based index into the scenario's robot team (not a radio NodeID, so
// plans stay valid across team sizes and ID layouts).
type RobotFailure struct {
	At    float64 `json:"at"`
	Robot int     `json:"robot"`
}

// LossBurst raises the message-loss probability to P for every reception
// in the window [From, To).
type LossBurst struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	P    float64 `json:"p"`
}

// Blackout silences every station within Radius of Center during
// [From, To): nothing inside the region sends or receives.
type Blackout struct {
	From   float64    `json:"from"`
	To     float64    `json:"to"`
	Center geom.Point `json:"center"`
	Radius float64    `json:"radius"`
}

// Corruption mutates in-flight frame bytes with probability P per
// reception during [From, To) (hostile-channel extension). Mode selects
// the mutation: "bitflip", "truncate", "garbage", "duplicate", "replay",
// or "mix" (the default when empty), which draws one of the five per
// corrupted frame.
type Corruption struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	P    float64 `json:"p"`
	Mode string  `json:"mode,omitempty"`
}

// Drain bleeds robot batteries during [From, To): the targeted robots lose
// an extra Fraction of their battery capacity, spread uniformly over the
// window (an adversarial load — stuck actuators, headwinds, a parasitic
// payload). Robot is the zero-based team index to target, or -1 for the
// whole fleet. The directive is inert when the run has no battery layer
// (Config.Battery unset), mirroring mgr@ on manager-less algorithms.
type Drain struct {
	From     float64 `json:"from"`
	To       float64 `json:"to"`
	Fraction float64 `json:"fraction"`
	Robot    int     `json:"robot"` // -1 = all robots
}

// corruptionModes is the accepted Mode set ("" selects mix).
var corruptionModes = map[string]bool{
	"": true, "bitflip": true, "truncate": true, "garbage": true,
	"duplicate": true, "replay": true, "mix": true,
}

// FaultPlan is a declarative schedule of injected faults. The zero value
// (and nil) injects nothing.
type FaultPlan struct {
	RobotFailures []RobotFailure `json:"robotFailures,omitempty"`
	LossBursts    []LossBurst    `json:"lossBursts,omitempty"`
	Blackouts     []Blackout     `json:"blackouts,omitempty"`
	Corruptions   []Corruption   `json:"corruptions,omitempty"`
	Drains        []Drain        `json:"drains,omitempty"`
	// ManagerCrashAt kills the central manager at this time. Zero means
	// never; the field is ignored by algorithms without a central manager.
	ManagerCrashAt float64 `json:"managerCrashAt,omitempty"`
}

// Empty reports whether the plan injects no faults at all.
func (p *FaultPlan) Empty() bool {
	return p == nil ||
		(len(p.RobotFailures) == 0 && len(p.LossBursts) == 0 &&
			len(p.Blackouts) == 0 && len(p.Corruptions) == 0 &&
			len(p.Drains) == 0 && p.ManagerCrashAt == 0)
}

// Validate checks the plan's internal consistency. robots is the size of
// the robot team the plan will run against (≤ 0 skips the index check).
func (p *FaultPlan) Validate(robots int) error {
	if p == nil {
		return nil
	}
	for i, rf := range p.RobotFailures {
		if !(rf.At >= 0) { // also rejects NaN
			return fmt.Errorf("chaos: robot failure %d: bad time %v", i, rf.At)
		}
		if rf.Robot < 0 {
			return fmt.Errorf("chaos: robot failure %d: negative robot index %d", i, rf.Robot)
		}
		if robots > 0 && rf.Robot >= robots {
			return fmt.Errorf("chaos: robot failure %d: robot index %d out of range (team of %d)", i, rf.Robot, robots)
		}
	}
	for i, b := range p.LossBursts {
		if !(b.From >= 0 && b.To > b.From) { // also rejects NaN bounds
			return fmt.Errorf("chaos: loss burst %d: bad window [%v,%v)", i, b.From, b.To)
		}
		if !(b.P >= 0 && b.P <= 1) { // also rejects NaN
			return fmt.Errorf("chaos: loss burst %d: probability %v outside [0,1]", i, b.P)
		}
	}
	for i, b := range p.Blackouts {
		if !(b.From >= 0 && b.To > b.From) { // also rejects NaN bounds
			return fmt.Errorf("chaos: blackout %d: bad window [%v,%v)", i, b.From, b.To)
		}
		if !(b.Radius > 0) { // also rejects NaN
			return fmt.Errorf("chaos: blackout %d: radius %v not positive", i, b.Radius)
		}
		if math.IsNaN(b.Center.X) || math.IsNaN(b.Center.Y) {
			return fmt.Errorf("chaos: blackout %d: center %v is not a point", i, b.Center)
		}
	}
	for i, c := range p.Corruptions {
		if !(c.From >= 0 && c.To > c.From) { // also rejects NaN bounds
			return fmt.Errorf("chaos: corruption %d: bad window [%v,%v)", i, c.From, c.To)
		}
		if !(c.P >= 0 && c.P <= 1) { // also rejects NaN
			return fmt.Errorf("chaos: corruption %d: probability %v outside [0,1]", i, c.P)
		}
		if !corruptionModes[c.Mode] {
			return fmt.Errorf("chaos: corruption %d: unknown mode %q", i, c.Mode)
		}
	}
	for i, d := range p.Drains {
		if !(d.From >= 0 && d.To > d.From) { // also rejects NaN bounds
			return fmt.Errorf("chaos: drain %d: bad window [%v,%v)", i, d.From, d.To)
		}
		if !(d.Fraction > 0) || math.IsInf(d.Fraction, 0) { // also rejects NaN
			return fmt.Errorf("chaos: drain %d: fraction %v not positive and finite", i, d.Fraction)
		}
		if d.Robot < -1 {
			return fmt.Errorf("chaos: drain %d: bad robot index %d (want -1 for all)", i, d.Robot)
		}
		if robots > 0 && d.Robot >= robots {
			return fmt.Errorf("chaos: drain %d: robot index %d out of range (team of %d)", i, d.Robot, robots)
		}
	}
	if !(p.ManagerCrashAt >= 0) { // also rejects NaN
		return fmt.Errorf("chaos: bad manager crash time %v", p.ManagerCrashAt)
	}
	return nil
}

// String renders the plan in the compact syntax accepted by Parse.
func (p *FaultPlan) String() string {
	if p.Empty() {
		return ""
	}
	var parts []string
	for _, rf := range p.RobotFailures {
		parts = append(parts, fmt.Sprintf("robot@%s=%d", ftoa(rf.At), rf.Robot))
	}
	for _, b := range p.LossBursts {
		parts = append(parts, fmt.Sprintf("burst@%s-%s=%s", ftoa(b.From), ftoa(b.To), ftoa(b.P)))
	}
	for _, b := range p.Blackouts {
		parts = append(parts, fmt.Sprintf("blackout@%s-%s=%s,%s,%s",
			ftoa(b.From), ftoa(b.To), ftoa(b.Center.X), ftoa(b.Center.Y), ftoa(b.Radius)))
	}
	for _, c := range p.Corruptions {
		s := fmt.Sprintf("corrupt@%s-%s=%s", ftoa(c.From), ftoa(c.To), ftoa(c.P))
		if c.Mode != "" {
			s += "," + c.Mode
		}
		parts = append(parts, s)
	}
	for _, d := range p.Drains {
		s := fmt.Sprintf("drain@%s-%s=%s", ftoa(d.From), ftoa(d.To), ftoa(d.Fraction))
		if d.Robot >= 0 {
			s += "," + strconv.Itoa(d.Robot)
		}
		parts = append(parts, s)
	}
	if p.ManagerCrashAt > 0 {
		parts = append(parts, fmt.Sprintf("mgr@%s", ftoa(p.ManagerCrashAt)))
	}
	return strings.Join(parts, ";")
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Parse builds a plan from the compact semicolon-separated syntax used by
// the -fault CLI flags:
//
//	robot@T=IDX              robot IDX breaks down at time T
//	burst@T1-T2=P            loss probability P during [T1,T2)
//	blackout@T1-T2=X,Y,R     radius-R blackout around (X,Y) during [T1,T2)
//	corrupt@T1-T2=P[,mode]   corrupt each reception's bytes with
//	                         probability P during [T1,T2); mode is one of
//	                         bitflip|truncate|garbage|duplicate|replay|mix
//	                         (default mix)
//	drain@T1-T2=F[,IDX]      bleed fraction F of battery capacity from
//	                         robot IDX (all robots when omitted), spread
//	                         uniformly over [T1,T2); inert without
//	                         Config.Battery
//	mgr@T                    central manager crashes at time T
//
// Example: "robot@8000=0;burst@8000-12000=0.05;mgr@16000". An empty spec
// yields a nil plan.
func Parse(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &FaultPlan{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, rest, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: entry %q: want kind@spec", entry)
		}
		var err error
		switch kind {
		case "robot":
			err = parseRobot(p, rest)
		case "burst":
			err = parseBurst(p, rest)
		case "blackout":
			err = parseBlackout(p, rest)
		case "corrupt":
			err = parseCorrupt(p, rest)
		case "drain":
			err = parseDrain(p, rest)
		case "mgr":
			p.ManagerCrashAt, err = atof(rest)
		default:
			err = fmt.Errorf("unknown fault kind %q", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: entry %q: %w", entry, err)
		}
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return p, nil
}

func parseRobot(p *FaultPlan, rest string) error {
	at, idx, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("want T=IDX")
	}
	t, err := atof(at)
	if err != nil {
		return err
	}
	i, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return fmt.Errorf("robot index %q: %w", idx, err)
	}
	p.RobotFailures = append(p.RobotFailures, RobotFailure{At: t, Robot: i})
	return nil
}

func parseBurst(p *FaultPlan, rest string) error {
	window, prob, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("want T1-T2=P")
	}
	from, to, err := parseWindow(window)
	if err != nil {
		return err
	}
	pr, err := atof(prob)
	if err != nil {
		return err
	}
	p.LossBursts = append(p.LossBursts, LossBurst{From: from, To: to, P: pr})
	return nil
}

func parseBlackout(p *FaultPlan, rest string) error {
	window, region, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("want T1-T2=X,Y,R")
	}
	from, to, err := parseWindow(window)
	if err != nil {
		return err
	}
	parts := strings.Split(region, ",")
	if len(parts) != 3 {
		return fmt.Errorf("region %q: want X,Y,R", region)
	}
	x, err := atof(parts[0])
	if err != nil {
		return err
	}
	y, err := atof(parts[1])
	if err != nil {
		return err
	}
	r, err := atof(parts[2])
	if err != nil {
		return err
	}
	p.Blackouts = append(p.Blackouts, Blackout{From: from, To: to, Center: geom.Pt(x, y), Radius: r})
	return nil
}

func parseCorrupt(p *FaultPlan, rest string) error {
	window, spec, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("want T1-T2=P[,mode]")
	}
	from, to, err := parseWindow(window)
	if err != nil {
		return err
	}
	prob, mode, hasMode := strings.Cut(spec, ",")
	pr, err := atof(prob)
	if err != nil {
		return err
	}
	mode = strings.TrimSpace(mode)
	if hasMode && mode == "" {
		return fmt.Errorf("empty corruption mode after comma")
	}
	if !corruptionModes[mode] {
		return fmt.Errorf("unknown corruption mode %q", mode)
	}
	p.Corruptions = append(p.Corruptions, Corruption{From: from, To: to, P: pr, Mode: mode})
	return nil
}

func parseDrain(p *FaultPlan, rest string) error {
	window, spec, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("want T1-T2=F[,IDX]")
	}
	from, to, err := parseWindow(window)
	if err != nil {
		return err
	}
	frac, idx, hasIdx := strings.Cut(spec, ",")
	f, err := atof(frac)
	if err != nil {
		return err
	}
	robot := -1 // all robots unless an index follows
	if hasIdx {
		robot, err = strconv.Atoi(strings.TrimSpace(idx))
		if err != nil {
			return fmt.Errorf("robot index %q: %w", idx, err)
		}
		if robot < 0 {
			return fmt.Errorf("robot index %d: want >= 0 (omit the index to target all robots)", robot)
		}
	}
	p.Drains = append(p.Drains, Drain{From: from, To: to, Fraction: f, Robot: robot})
	return nil
}

func parseWindow(s string) (from, to float64, err error) {
	// Split at the first '-' that can belong to neither number: not a
	// leading sign, and not the exponent sign of scientific notation (the
	// plan renderer emits times like 1e-05, so "1e-05-3000" must split
	// before "3000", not inside the exponent).
	cut := -1
	for i := 1; i < len(s); i++ {
		if s[i] == '-' && s[i-1] != 'e' && s[i-1] != 'E' {
			cut = i
			break
		}
	}
	if cut < 0 {
		return 0, 0, fmt.Errorf("window %q: want T1-T2", s)
	}
	if from, err = atof(s[:cut]); err != nil {
		return 0, 0, err
	}
	if to, err = atof(s[cut+1:]); err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

func atof(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("number %q: %w", s, err)
	}
	return v, nil
}

// FirstFaultAt returns the time of the plan's earliest fault, or ok=false
// for an empty plan.
func (p *FaultPlan) FirstFaultAt() (float64, bool) {
	var times []float64
	if p == nil {
		return 0, false
	}
	for _, rf := range p.RobotFailures {
		times = append(times, rf.At)
	}
	for _, b := range p.LossBursts {
		times = append(times, b.From)
	}
	for _, b := range p.Blackouts {
		times = append(times, b.From)
	}
	for _, c := range p.Corruptions {
		times = append(times, c.From)
	}
	for _, d := range p.Drains {
		times = append(times, d.From)
	}
	if p.ManagerCrashAt > 0 {
		times = append(times, p.ManagerCrashAt)
	}
	if len(times) == 0 {
		return 0, false
	}
	sort.Float64s(times)
	return times[0], true
}

// LossInjector layers the plan's loss bursts over a base loss model: inside
// a burst window receptions drop with the burst's probability (drawn from
// the injector's own seeded stream, so burst draws never perturb the base
// model's stream); outside every window the base model decides alone.
// A nil base model behaves as lossless outside bursts.
type LossInjector struct {
	bursts []LossBurst
	base   radio.LossModel
	now    func() sim.Time
	rand   *rng.Source
}

// NewLossInjector builds an injector over base (may be nil) driven by the
// clock now, drawing burst losses from src.
func NewLossInjector(bursts []LossBurst, base radio.LossModel, now func() sim.Time, src *rng.Source) *LossInjector {
	return &LossInjector{bursts: bursts, base: base, now: now, rand: src}
}

// burstP returns the active burst probability, or ok=false outside every
// window. Overlapping windows resolve to the highest probability so a plan
// is order-independent.
func (l *LossInjector) burstP(now float64) (float64, bool) {
	p, active := 0.0, false
	for _, b := range l.bursts {
		if now >= b.From && now < b.To && b.P > p {
			p, active = b.P, true
		}
	}
	return p, active
}

// Drop implements radio.LossModel.
func (l *LossInjector) Drop(src, dst radio.NodeID) bool {
	if p, active := l.burstP(float64(l.now())); active {
		return l.rand.Float64() < p
	}
	if l.base == nil {
		return false
	}
	return l.base.Drop(src, dst)
}

// DropFrame implements radio.FrameLossModel, passing the full frame to a
// frame-aware base model outside burst windows.
func (l *LossInjector) DropFrame(f radio.Frame, dst radio.NodeID) bool {
	if p, active := l.burstP(float64(l.now())); active {
		return l.rand.Float64() < p
	}
	switch base := l.base.(type) {
	case nil:
		return false
	case radio.FrameLossModel:
		return base.DropFrame(f, dst)
	default:
		return base.Drop(f.Src, dst)
	}
}

var _ radio.FrameLossModel = (*LossInjector)(nil)

// RegionOutage implements radio.OutageModel from the plan's blackout
// windows: a position is silenced while any blackout covering it is open.
type RegionOutage struct {
	blackouts []Blackout
	now       func() sim.Time
}

// NewRegionOutage builds the outage model for the plan's blackouts driven
// by the clock now. It returns nil when there are no blackouts; callers
// should then leave radio.Config.Outage unset (a typed-nil interface value
// would still cost an interface call per delivery).
func NewRegionOutage(blackouts []Blackout, now func() sim.Time) *RegionOutage {
	if len(blackouts) == 0 {
		return nil
	}
	return &RegionOutage{blackouts: blackouts, now: now}
}

// Silenced implements radio.OutageModel. It is nil-safe: a nil outage
// silences nothing.
func (o *RegionOutage) Silenced(pos geom.Point) bool {
	if o == nil {
		return false
	}
	now := float64(o.now())
	for _, b := range o.blackouts {
		if now >= b.From && now < b.To && pos.Dist2(b.Center) <= b.Radius*b.Radius {
			return true
		}
	}
	return false
}
