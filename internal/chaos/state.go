package chaos

import "roborepair/internal/checkpoint"

// AppendState serializes the corrupter's dynamic state — the replay
// capture ring, oldest occupied slot first — in canonical order
// (checkpoint section payload). The plan entries are config, not state;
// the RNG stream is captured in the RNG section. Nil-safe: a world without
// corruption windows appends an empty ring.
func (c *FrameCorrupter) AppendState(b []byte) []byte {
	if c == nil {
		return checkpoint.AppendU32(b, 0)
	}
	b = checkpoint.AppendU32(b, uint32(c.ringN))
	// ringPos is the next slot to overwrite; with ringN slots occupied the
	// oldest entry sits at ringPos-ringN (mod len). Walking oldest-first
	// makes the payload a function of capture history alone.
	for i := 0; i < c.ringN; i++ {
		slot := (c.ringPos - c.ringN + i + len(c.ring)) % len(c.ring)
		b = checkpoint.AppendBytes(b, c.ring[slot])
	}
	return b
}
