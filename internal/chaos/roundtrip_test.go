package chaos

import (
	"math"
	"reflect"
	"testing"

	"roborepair/internal/geom"
)

// TestStringParseRoundTripTable locks Parse(String(p)) == p over the
// plan-shape edge cases, including the scientific-notation times whose
// negative exponents used to split the T1-T2 window in the wrong place
// ("1e-05-3000" parsed as "1e" / "05-3000").
func TestStringParseRoundTripTable(t *testing.T) {
	cases := []struct {
		name string
		plan *FaultPlan
	}{
		{"small-exponent burst start", &FaultPlan{
			LossBursts: []LossBurst{{From: 1e-05, To: 3000, P: 0.3}},
		}},
		{"small-exponent blackout window", &FaultPlan{
			Blackouts: []Blackout{{From: 2.5e-07, To: 1e-03, Center: geom.Pt(10, 20), Radius: 5}},
		}},
		{"large-exponent times", &FaultPlan{
			LossBursts: []LossBurst{{From: 1e+20, To: 3e+20, P: 1}},
		}},
		{"overlapping bursts", &FaultPlan{
			LossBursts: []LossBurst{
				{From: 100, To: 500, P: 0.2},
				{From: 300, To: 700, P: 0.8},
				{From: 300, To: 700, P: 0.1},
			},
		}},
		{"all kinds", &FaultPlan{
			RobotFailures:  []RobotFailure{{At: 8000, Robot: 0}, {At: 9000.5, Robot: 3}},
			LossBursts:     []LossBurst{{From: 8000, To: 12000, P: 0.05}},
			Blackouts:      []Blackout{{From: 2000, To: 4000, Center: geom.Pt(100.25, 100), Radius: 80}},
			ManagerCrashAt: 16000,
		}},
		{"fractional everything", &FaultPlan{
			Blackouts: []Blackout{{From: 0.125, To: 0.25, Center: geom.Pt(-3.5, 0.0625), Radius: 1e-06}},
		}},
		{"infinite robot failure time", &FaultPlan{
			RobotFailures: []RobotFailure{{At: math.Inf(1), Robot: 1}},
		}},
		{"corruption default mode", &FaultPlan{
			Corruptions: []Corruption{{From: 1000, To: 2000, P: 0.05}},
		}},
		{"corruption explicit modes", &FaultPlan{
			Corruptions: []Corruption{
				{From: 1e-05, To: 3000, P: 1, Mode: "replay"},
				{From: 100, To: 200, P: 0.125, Mode: "bitflip"},
				{From: 100, To: 200, P: 0.25, Mode: "mix"},
			},
		}},
		{"corruption alongside other faults", &FaultPlan{
			LossBursts:  []LossBurst{{From: 100, To: 500, P: 0.2}},
			Corruptions: []Corruption{{From: 100, To: 500, P: 0.2, Mode: "truncate"}},
		}},
		{"drain whole fleet", &FaultPlan{
			Drains: []Drain{{From: 1000, To: 2000, Fraction: 0.5, Robot: -1}},
		}},
		{"drain single robot", &FaultPlan{
			Drains: []Drain{{From: 1e-05, To: 3000, Fraction: 1.25, Robot: 2}},
		}},
		{"drain alongside other faults", &FaultPlan{
			RobotFailures: []RobotFailure{{At: 500, Robot: 0}},
			Drains: []Drain{
				{From: 100, To: 500, Fraction: 0.0625, Robot: -1},
				{From: 300, To: 700, Fraction: 2, Robot: 4},
			},
			ManagerCrashAt: 900,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.plan.String()
			got, err := Parse(spec)
			if err != nil {
				t.Fatalf("Parse(%q): %v", spec, err)
			}
			if !reflect.DeepEqual(got, tc.plan) {
				t.Fatalf("round trip of %q:\n got %+v\nwant %+v", spec, got, tc.plan)
			}
		})
	}
}

// TestParseRejectsDegenerateWindows: boundary and degenerate shapes must
// be parse errors, not silently inert faults.
func TestParseRejectsDegenerateWindows(t *testing.T) {
	bad := []string{
		"burst@100-100=0.5",        // T1 == T2: empty window
		"blackout@100-100=10,10,5", // same, blackout flavor
		"blackout@1-2=3,4,0",       // zero-radius blackout
		"blackout@1-2=3,4,-7",      // negative radius
		"burst@1e-05=0.5",          // window with no separator after the fix
		"burst@NaN-100=0.5",        // NaN window bound
		"burst@100-200=NaN",        // NaN probability
		"blackout@1-2=NaN,4,5",     // NaN center
		"robot@NaN=0",              // NaN failure time
		"mgr@NaN",                  // NaN crash time
		"corrupt@100-100=0.5",      // T1 == T2: empty corruption window
		"corrupt@1-2=NaN",          // NaN corruption probability
		"corrupt@1-2=2",            // probability above 1
		"corrupt@1-2=-0.1",         // negative probability
		"corrupt@1-2=0.5,gremlins", // unknown mutation mode
		"corrupt@1-2=0.5,",         // empty mode after the comma
		"drain@100-100=0.5",        // T1 == T2: empty drain window
		"drain@1-2=0",              // zero fraction drains nothing
		"drain@1-2=-0.5",           // negative fraction
		"drain@1-2=NaN",            // NaN fraction
		"drain@1-2=+Inf",           // infinite fraction
		"drain@1-2=0.5,",           // empty robot index after the comma
		"drain@1-2=0.5,x",          // non-numeric robot index
		"drain@1-2=0.5,-1",         // explicit negative index (omit for all)
		"drain@1-2",                // missing =F part
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

// TestValidateRejectsNaN covers plans built in code (bypassing Parse):
// every float field must refuse NaN, which passes ordinary range
// comparisons and would poison the scheduler.
func TestValidateRejectsNaN(t *testing.T) {
	nan := math.NaN()
	plans := []*FaultPlan{
		{RobotFailures: []RobotFailure{{At: nan}}},
		{LossBursts: []LossBurst{{From: nan, To: 10, P: 0.5}}},
		{LossBursts: []LossBurst{{From: 0, To: nan, P: 0.5}}},
		{LossBursts: []LossBurst{{From: 0, To: 10, P: nan}}},
		{Blackouts: []Blackout{{From: nan, To: 10, Radius: 5}}},
		{Blackouts: []Blackout{{From: 0, To: 10, Radius: nan}}},
		{Blackouts: []Blackout{{From: 0, To: 10, Radius: 5, Center: geom.Pt(nan, 0)}}},
		{Blackouts: []Blackout{{From: 0, To: 10, Radius: 5, Center: geom.Pt(0, nan)}}},
		{ManagerCrashAt: nan},
		{Corruptions: []Corruption{{From: nan, To: 10, P: 0.5}}},
		{Corruptions: []Corruption{{From: 0, To: nan, P: 0.5}}},
		{Corruptions: []Corruption{{From: 0, To: 10, P: nan}}},
		{Corruptions: []Corruption{{From: 0, To: 10, P: 0.5, Mode: "gremlins"}}},
		{Drains: []Drain{{From: nan, To: 10, Fraction: 0.5, Robot: -1}}},
		{Drains: []Drain{{From: 0, To: nan, Fraction: 0.5, Robot: -1}}},
		{Drains: []Drain{{From: 0, To: 10, Fraction: nan, Robot: -1}}},
		{Drains: []Drain{{From: 0, To: 10, Fraction: 0.5, Robot: -2}}},
	}
	for i, p := range plans {
		if err := p.Validate(0); err == nil {
			t.Errorf("plan %d: NaN accepted: %+v", i, p)
		}
	}
}
