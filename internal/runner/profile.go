package runner

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles manages the optional pprof outputs of an experiment command.
// Start it before the grid runs and Stop it after; either path may be
// empty to disable that profile.
type Profiles struct {
	cpuFile *os.File
	memPath string
}

// StartProfiles begins CPU profiling to cpuPath (when non-empty) and
// arranges for a heap profile to be written to memPath at Stop.
func StartProfiles(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("runner: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: start cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop finishes the CPU profile and writes the heap profile, if enabled.
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("runner: close cpu profile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return fmt.Errorf("runner: create mem profile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("runner: write mem profile: %w", err)
		}
	}
	return nil
}
