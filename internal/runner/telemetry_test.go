package runner

import (
	"bytes"
	"testing"

	"roborepair/internal/core"
)

// TestTelemetryTimeSeriesDeterministicAcrossWorkerCounts locks the sweep
// contract behind `sweep -timeseries`: the CSV rendered from each run's
// sampler is byte-identical whether the grid ran on 1 worker or several,
// because sampling is driven by sim time and reads only sim state.
func TestTelemetryTimeSeriesDeterministicAcrossWorkerCounts(t *testing.T) {
	var jobs []Job
	for seed := int64(1); seed <= 3; seed++ {
		cfg := tinyConfig(core.Dynamic, seed)
		cfg.Telemetry.Enabled = true
		jobs = append(jobs, Job{Config: cfg})
	}
	render := func(procs int) []byte {
		results, _, err := Run(jobs, Options{Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, r := range results {
			if err := r.Res.Telemetry.WriteCSV(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.Bytes()
	}
	serial, parallel := render(1), render(3)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("time series differ between 1 and 3 workers:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}
