package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"roborepair/internal/core"
	"roborepair/internal/ftdc"
	"roborepair/internal/invariant"
	"roborepair/internal/scenario"
	"roborepair/internal/sim"
)

// withRunWorld swaps the world driver for the duration of the test. Like
// withRunJob, stubbed tests must not run in parallel with real-simulator
// ones.
func withRunWorld(t *testing.T, fn func(*scenario.World) scenario.Results) {
	t.Helper()
	orig := runWorld
	runWorld = fn
	t.Cleanup(func() { runWorld = orig })
}

// TestFTDCCleanGridLeavesNoDumps: with FTDCDir set, healthy jobs arm the
// black box but write nothing, and results stay bit-identical to an
// unarmed grid.
func TestFTDCCleanGridLeavesNoDumps(t *testing.T) {
	dir := t.TempDir()
	jobs := Expand(tinyConfig(core.Dynamic, 0), Seeds(2))
	plain, _, err := Run(jobs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	armed, stats, err := Run(jobs, Options{Procs: 1, FTDCDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FTDCDumps != 0 {
		t.Fatalf("FTDCDumps = %d, want 0", stats.FTDCDumps)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("clean grid left files behind: %v", entries)
	}
	for i := range jobs {
		// The echoed config shows the runner-armed recorder; every
		// reported quantity must be untouched.
		armed[i].Res.Config.Recorder = ftdc.Config{}
		a, b := fingerprint(t, plain[i].Res), fingerprint(t, armed[i].Res)
		if a != b {
			t.Fatalf("job %d: armed black box changed results:\n%s\n%s", i, a, b)
		}
	}
}

// TestFTDCDumpOnPanic: a job that panics mid-run still gets its retained
// recording written, because the recorder pointer is captured before the
// run starts.
func TestFTDCDumpOnPanic(t *testing.T) {
	withRunWorld(t, func(w *scenario.World) scenario.Results {
		if w.Cfg.Seed == 2 {
			w.Sched.Run(sim.Time(w.Cfg.SimTime / 2)) // record some samples first
			panic("poisoned configuration")
		}
		return w.Run()
	})
	dir := t.TempDir()
	jobs := Expand(tinyConfig(core.Dynamic, 0), Seeds(3))
	results, stats, err := Run(jobs, Options{Procs: 1, FTDCDir: dir})
	if err == nil {
		t.Fatal("expected the panicking job's error")
	}
	if stats.PanicRecoveries != 1 || stats.FTDCDumps != 1 {
		t.Fatalf("PanicRecoveries = %d, FTDCDumps = %d, want 1, 1", stats.PanicRecoveries, stats.FTDCDumps)
	}
	if results[1].Err == nil {
		t.Fatal("panicking job carries no error")
	}
	rec, err := ftdc.ReadFile(filepath.Join(dir, "job-000001.ftdc"))
	if err != nil {
		t.Fatalf("dump unreadable: %v", err)
	}
	if rec.NumRows() == 0 {
		t.Fatal("dump holds no samples")
	}
	ts := rec.Column(scenario.FTDCColTime)
	if last := ts[len(ts)-1]; last < 1000 {
		t.Fatalf("dump ends at t=%v, want samples up to the panic point", last)
	}
	for _, i := range []int{0, 2} {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("job-%06d.ftdc", i))); !os.IsNotExist(err) {
			t.Fatalf("healthy job %d left a dump", i)
		}
	}
}

// TestFTDCDumpOnViolation: a job whose results carry invariant
// violations gets its recording banked even though the run completed.
func TestFTDCDumpOnViolation(t *testing.T) {
	withRunWorld(t, func(w *scenario.World) scenario.Results {
		res := w.Run()
		if w.Cfg.Seed == 1 {
			res.Violations = append(res.Violations, invariant.Violation{
				Law: "test", Detail: "synthetic violation",
			})
		}
		return res
	})
	dir := t.TempDir()
	jobs := Expand(tinyConfig(core.Fixed, 0), Seeds(2))
	_, stats, err := Run(jobs, Options{Procs: 1, FTDCDir: dir})
	if err != nil {
		t.Fatal(err) // violations are data, not run errors
	}
	if stats.FTDCDumps != 1 {
		t.Fatalf("FTDCDumps = %d, want 1", stats.FTDCDumps)
	}
	rec, err := ftdc.ReadFile(filepath.Join(dir, "job-000000.ftdc"))
	if err != nil {
		t.Fatalf("dump unreadable: %v", err)
	}
	// The full run was recorded in black-box mode; the retained window
	// must end at the horizon.
	ts := rec.Column(scenario.FTDCColTime)
	if got := ts[len(ts)-1]; got != jobs[0].Config.SimTime {
		t.Fatalf("dump ends at t=%v, want %v", got, jobs[0].Config.SimTime)
	}
}
