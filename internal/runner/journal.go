// Crash-safe sweep journal: an append-only file of completed jobs, fsynced
// per entry, so a killed grid resumes by replaying finished results and
// re-running only the rest. The header binds the journal to one exact grid
// (a hash of every job's config), and reads tolerate a torn trailing line —
// the one write a crash can interrupt.
package runner

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"roborepair/internal/scenario"
)

// ErrJournalMismatch reports that an existing journal was written for a
// different grid (different configs, order, or job count) and cannot be
// used to resume this one.
var ErrJournalMismatch = errors.New("runner: journal does not match this grid")

// GridHash fingerprints a job grid: the SHA-256 over every job's config
// JSON in input order. Tags are caller-side metadata and deliberately
// excluded — they are re-supplied by the resuming process.
func GridHash(jobs []Job) (string, error) {
	h := sha256.New()
	for _, j := range jobs {
		b, err := json.Marshal(j.Config)
		if err != nil {
			return "", fmt.Errorf("runner: hash grid: %w", err)
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

type journalHeader struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	GridHash string `json:"gridHash"`
	Jobs     int    `json:"jobs"`
}

const (
	journalMagic   = "roborepair-sweep-journal"
	journalVersion = 1
)

type journalEntry struct {
	Index int               `json:"index"`
	Err   string            `json:"err,omitempty"`
	Res   *scenario.Results `json:"res,omitempty"`
}

// Journal is an open sweep journal. Safe for concurrent Record calls.
type Journal struct {
	f       *os.File
	entries map[int]journalEntry
}

// OpenJournal opens (or creates) the journal at path for the given grid.
// A fresh file gets a header binding it to the grid; an existing file is
// validated against the grid — ErrJournalMismatch if it was written for a
// different one — and its completed entries are loaded for replay. A torn
// trailing line (interrupted final write) is discarded and overwritten; a
// torn line anywhere else is corruption and rejected.
func OpenJournal(path string, jobs []Job) (*Journal, error) {
	hash, err := GridHash(jobs)
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return createJournal(path, hash, len(jobs))
	case err != nil:
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}

	lines := bytes.Split(raw, []byte{'\n'})
	// A well-formed file ends with '\n', leaving one empty trailing
	// element; anything after the last newline is a torn final write.
	if len(lines) == 0 || len(lines[0]) == 0 {
		return nil, fmt.Errorf("runner: journal %s: missing header", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("runner: journal %s: header: %w", path, err)
	}
	if hdr.Magic != journalMagic || hdr.Version != journalVersion {
		return nil, fmt.Errorf("runner: journal %s: not a v%d sweep journal", path, journalVersion)
	}
	if hdr.GridHash != hash || hdr.Jobs != len(jobs) {
		return nil, fmt.Errorf("%w: journal is for %d jobs with grid hash %.12s…, this grid has %d jobs with hash %.12s…",
			ErrJournalMismatch, hdr.Jobs, hdr.GridHash, len(jobs), hash)
	}

	entries := make(map[int]journalEntry)
	keep := len(lines[0]) + 1 // bytes of the file to preserve: header line so far
	for li := 1; li < len(lines); li++ {
		line := lines[li]
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Index < 0 || e.Index >= len(jobs) {
			if li == len(lines)-1 {
				break // torn final write: discard and overwrite
			}
			return nil, fmt.Errorf("runner: journal %s: corrupt entry on line %d", path, li+1)
		}
		entries[e.Index] = e
		keep += len(line) + 1
	}

	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	// Drop the torn tail (if any) so the next entry starts on its own line.
	if err := f.Truncate(int64(keep)); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	if _, err := f.Seek(int64(keep), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	return &Journal{f: f, entries: entries}, nil
}

func createJournal(path, hash string, jobs int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: create journal: %w", err)
	}
	w := bufio.NewWriter(f)
	hdr := journalHeader{Magic: journalMagic, Version: journalVersion, GridHash: hash, Jobs: jobs}
	if err := json.NewEncoder(w).Encode(hdr); err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: create journal: %w", err)
	}
	return &Journal{f: f, entries: make(map[int]journalEntry)}, nil
}

// Completed reports how many jobs the journal already holds.
func (j *Journal) Completed() int { return len(j.entries) }

// lookup returns the journaled outcome for job i, if present.
func (j *Journal) lookup(i int) (scenario.Results, error, bool) {
	e, ok := j.entries[i]
	if !ok {
		return scenario.Results{}, nil, false
	}
	if e.Err != "" {
		return scenario.Results{}, errors.New(e.Err), true
	}
	var res scenario.Results
	if e.Res != nil {
		res = *e.Res
	}
	return res, nil, true
}

// record durably appends one completed job. The entry is a single JSON
// line followed by fsync: a crash leaves at most one torn trailing line,
// which the next OpenJournal discards.
func (j *Journal) record(r Result) error {
	e := journalEntry{Index: r.Index}
	if r.Err != nil {
		e.Err = r.Err.Error()
	} else {
		res := r.Res
		e.Res = &res
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runner: journal entry %d: %w", r.Index, err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("runner: journal entry %d: %w", r.Index, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: journal entry %d: %w", r.Index, err)
	}
	return nil
}

// Close releases the journal file. The journal stays on disk; delete it to
// start the grid over.
func (j *Journal) Close() error { return j.f.Close() }
